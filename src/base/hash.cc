#include "src/base/hash.h"

#include <vector>

#include "src/base/strings.h"

namespace protego {

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string MakeSalt(uint64_t seed) {
  static const char kAlphabet[] =
      "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
  std::string salt;
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (int i = 0; i < 8; ++i) {
    state ^= state >> 30;
    state *= 0xbf58476d1ce4e5b9ULL;
    state ^= state >> 27;
    salt.push_back(kAlphabet[state % 64]);
  }
  return salt;
}

std::string CryptPassword(std::string_view password, std::string_view salt) {
  // Iterated FNV over salt||password; iteration makes the structure of a
  // KDF visible in traces without pretending to be one.
  std::string material = std::string(salt) + "$" + std::string(password);
  uint64_t h = Fnv1a(material);
  for (int round = 0; round < 1000; ++round) {
    h = Fnv1a(StrFormat("%016llx", static_cast<unsigned long long>(h)) + material);
  }
  return StrFormat("$sim$%s$%016llx", std::string(salt).c_str(),
                   static_cast<unsigned long long>(h));
}

bool VerifyPassword(std::string_view password, std::string_view hash) {
  // Expected layout: $sim$<salt>$<hex>
  auto parts = Split(std::string(hash), '$');
  if (parts.size() != 4 || !parts[0].empty() || parts[1] != "sim") {
    return false;
  }
  return CryptPassword(password, parts[2]) == hash;
}

}  // namespace protego
