#include "src/base/clock.h"

// Header-only today; this TU anchors the library target.
