#include "src/base/lexer.h"

#include <cctype>

#include "src/base/strings.h"

namespace protego {

std::vector<ConfigLine> LexConfig(std::string_view content) {
  std::vector<ConfigLine> out;
  std::string pending;
  int pending_start = 0;
  int line_number = 0;

  auto flush = [&]() {
    std::string_view trimmed = Trim(pending);
    if (!trimmed.empty()) {
      out.push_back(ConfigLine{pending_start, std::string(trimmed)});
    }
    pending.clear();
  };

  size_t pos = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    std::string_view raw = (eol == std::string_view::npos) ? content.substr(pos)
                                                           : content.substr(pos, eol - pos);
    ++line_number;

    // Strip comment: first '#' not inside double quotes.
    bool in_quotes = false;
    size_t comment = raw.size();
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '"') {
        in_quotes = !in_quotes;
      } else if (raw[i] == '#' && !in_quotes) {
        comment = i;
        break;
      }
    }
    std::string_view line = raw.substr(0, comment);

    bool continued = false;
    std::string_view body = Trim(line);
    if (!body.empty() && body.back() == '\\') {
      continued = true;
      body = Trim(body.substr(0, body.size() - 1));
    }

    if (pending.empty()) {
      pending_start = line_number;
    }
    if (!body.empty()) {
      if (!pending.empty()) {
        pending.push_back(' ');
      }
      pending.append(body);
    }
    if (!continued) {
      flush();
    }

    if (eol == std::string_view::npos) {
      break;
    }
    pos = eol + 1;
  }
  flush();
  return out;
}

std::vector<std::string> LexFields(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool have_field = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '\\' && i + 1 < line.size()) {
        current.push_back(line[++i]);
        continue;
      }
      if (c == '"') {
        in_quotes = false;
        continue;
      }
      current.push_back(c);
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      have_field = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (have_field) {
        fields.push_back(current);
        current.clear();
        have_field = false;
      }
      continue;
    }
    current.push_back(c);
    have_field = true;
  }
  if (have_field) {
    fields.push_back(current);
  }
  return fields;
}

}  // namespace protego
