#include "src/base/metrics.h"

#include <algorithm>
#include <map>

#include "src/base/strings.h"

namespace protego {

namespace {

enum class FamilyType { kCounter, kGauge, kHistogram };

const char* FamilyTypeName(FamilyType t) {
  switch (t) {
    case FamilyType::kCounter: return "counter";
    case FamilyType::kGauge: return "gauge";
    case FamilyType::kHistogram: return "histogram";
  }
  return "untyped";
}

struct Sample {
  MetricLabels labels;
  double value = 0;       // counter/gauge
  Histogram histogram;    // histogram
  std::vector<MetricExemplar> exemplars;  // histogram tail exemplars
};

struct Family {
  std::string help;
  FamilyType type = FamilyType::kCounter;
  std::vector<Sample> samples;
};

// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatLabels(const MetricLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += StrFormat("%s=\"%s\"", labels[i].first.c_str(),
                     EscapeLabelValue(labels[i].second).c_str());
  }
  out += "}";
  return out;
}

// Labels with one extra pair appended (the histogram `le` label).
std::string FormatLabelsWith(const MetricLabels& labels, const std::string& key,
                             const std::string& value) {
  MetricLabels extended = labels;
  extended.emplace_back(key, value);
  return FormatLabels(extended);
}

// Counters and integral gauges must not print in scientific notation.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%g", v);
}

// Collects samples into name-keyed families (std::map: sorted output).
class SnapshotBuilder : public MetricsBuilder {
 public:
  void Counter(const std::string& name, const std::string& help, MetricLabels labels,
               uint64_t value) override {
    Sample s;
    s.labels = std::move(labels);
    s.value = static_cast<double>(value);
    Add(name, help, FamilyType::kCounter, std::move(s));
  }

  void Gauge(const std::string& name, const std::string& help, MetricLabels labels,
             double value) override {
    Sample s;
    s.labels = std::move(labels);
    s.value = value;
    Add(name, help, FamilyType::kGauge, std::move(s));
  }

  void Histo(const std::string& name, const std::string& help, MetricLabels labels,
             const Histogram& h) override {
    Sample s;
    s.labels = std::move(labels);
    s.histogram = h;
    Add(name, help, FamilyType::kHistogram, std::move(s));
  }

  void HistoEx(const std::string& name, const std::string& help, MetricLabels labels,
               const Histogram& h, std::vector<MetricExemplar> exemplars) override {
    Sample s;
    s.labels = std::move(labels);
    s.histogram = h;
    s.exemplars = std::move(exemplars);
    Add(name, help, FamilyType::kHistogram, std::move(s));
  }

  const std::map<std::string, Family>& families() const { return families_; }

 private:
  void Add(const std::string& name, const std::string& help, FamilyType type,
           Sample sample) {
    auto [it, inserted] = families_.try_emplace(name);
    if (inserted) {
      it->second.help = help;
      it->second.type = type;
    }
    it->second.samples.push_back(std::move(sample));
  }

  std::map<std::string, Family> families_;
};

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  SnapshotBuilder snapshot;
  for (const Collector& collect : SnapshotCollectors()) {
    collect(snapshot);
  }

  std::string out;
  for (const auto& [name, family] : snapshot.families()) {
    out += StrFormat("# HELP %s %s\n", name.c_str(), family.help.c_str());
    out += StrFormat("# TYPE %s %s\n", name.c_str(), FamilyTypeName(family.type));
    for (const Sample& s : family.samples) {
      if (family.type != FamilyType::kHistogram) {
        out += StrFormat("%s%s %s\n", name.c_str(), FormatLabels(s.labels).c_str(),
                         FormatValue(s.value).c_str());
        continue;
      }
      const Histogram& h = s.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < Histogram::kBuckets; ++i) {
        cumulative += h.bucket(i);
        // Skip interior empty buckets to keep the exposition readable; the
        // mandatory +Inf bucket is always emitted.
        bool last = i == Histogram::kBuckets - 1;
        if (h.bucket(i) == 0 && !last) {
          continue;
        }
        std::string le =
            last ? "+Inf" : StrFormat("%llu", (unsigned long long)Histogram::BucketBound(i));
        out += StrFormat("%s_bucket%s %llu", name.c_str(),
                         FormatLabelsWith(s.labels, "le", le).c_str(),
                         (unsigned long long)cumulative);
        // OpenMetrics-style exemplar on the bucket the observation fell
        // into: " # {labels} value". At most one per bucket line (the
        // largest value that maps there), per the exposition contract.
        const MetricExemplar* pick = nullptr;
        for (const MetricExemplar& ex : s.exemplars) {
          if (Histogram::BucketIndex(ex.value) != i) {
            continue;
          }
          if (pick == nullptr || ex.value > pick->value) {
            pick = &ex;
          }
        }
        if (pick != nullptr) {
          std::string exl = pick->labels.empty() ? "{}" : FormatLabels(pick->labels);
          out += StrFormat(" # %s %llu", exl.c_str(), (unsigned long long)pick->value);
        }
        out += "\n";
      }
      out += StrFormat("%s_sum%s %llu\n", name.c_str(), FormatLabels(s.labels).c_str(),
                       (unsigned long long)h.sum());
      out += StrFormat("%s_count%s %llu\n", name.c_str(), FormatLabels(s.labels).c_str(),
                       (unsigned long long)h.count());
    }
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  SnapshotBuilder snapshot;
  for (const Collector& collect : SnapshotCollectors()) {
    collect(snapshot);
  }

  auto json_escape = [](const std::string& v) {
    std::string out;
    for (char c : v) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    return out;
  };
  auto labels_json = [&](const MetricLabels& labels) {
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += StrFormat("\"%s\":\"%s\"", json_escape(labels[i].first).c_str(),
                       json_escape(labels[i].second).c_str());
    }
    return out + "}";
  };

  std::string out = "{\"families\":[";
  bool first_family = true;
  for (const auto& [name, family] : snapshot.families()) {
    if (!first_family) {
      out += ",";
    }
    first_family = false;
    out += StrFormat("{\"name\":\"%s\",\"type\":\"%s\",\"samples\":[", name.c_str(),
                     FamilyTypeName(family.type));
    for (size_t i = 0; i < family.samples.size(); ++i) {
      const Sample& s = family.samples[i];
      if (i > 0) {
        out += ",";
      }
      if (family.type != FamilyType::kHistogram) {
        out += StrFormat("{\"labels\":%s,\"value\":%s}", labels_json(s.labels).c_str(),
                         FormatValue(s.value).c_str());
        continue;
      }
      const Histogram& h = s.histogram;
      out += StrFormat("{\"labels\":%s,\"count\":%llu,\"sum\":%llu,\"buckets\":[",
                       labels_json(s.labels).c_str(), (unsigned long long)h.count(),
                       (unsigned long long)h.sum());
      bool first_bucket = true;
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (h.bucket(b) == 0) {
          continue;
        }
        if (!first_bucket) {
          out += ",";
        }
        first_bucket = false;
        std::string le = b == Histogram::kBuckets - 1
                             ? "\"+Inf\""
                             : StrFormat("%llu", (unsigned long long)Histogram::BucketBound(b));
        out += StrFormat("{\"le\":%s,\"n\":%llu}", le.c_str(),
                         (unsigned long long)h.bucket(b));
      }
      out += "]";
      if (!s.exemplars.empty()) {
        out += ",\"exemplars\":[";
        for (size_t e = 0; e < s.exemplars.size(); ++e) {
          if (e > 0) {
            out += ",";
          }
          out += StrFormat("{\"labels\":%s,\"value\":%llu}",
                           labels_json(s.exemplars[e].labels).c_str(),
                           (unsigned long long)s.exemplars[e].value);
        }
        out += "]";
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::JsonExcerpt(size_t max_samples_per_family) const {
  SnapshotBuilder snapshot;
  for (const Collector& collect : SnapshotCollectors()) {
    collect(snapshot);
  }

  auto json_escape = [](const std::string& v) {
    std::string out;
    for (char c : v) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    return out;
  };
  auto labels_json = [&](const MetricLabels& labels) {
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += StrFormat("\"%s\":\"%s\"", json_escape(labels[i].first).c_str(),
                       json_escape(labels[i].second).c_str());
    }
    return out + "}";
  };

  std::string out = "{\"families\":[";
  bool first_family = true;
  for (const auto& [name, family] : snapshot.families()) {
    if (!first_family) {
      out += ",";
    }
    first_family = false;
    // Serialize each sample, sort by the serialized form (deterministic
    // regardless of collector emission order), then bound the count.
    std::vector<std::string> rendered;
    rendered.reserve(family.samples.size());
    for (const Sample& s : family.samples) {
      if (family.type != FamilyType::kHistogram) {
        rendered.push_back(StrFormat("{\"labels\":%s,\"value\":%s}",
                                     labels_json(s.labels).c_str(),
                                     FormatValue(s.value).c_str()));
      } else {
        rendered.push_back(StrFormat("{\"labels\":%s,\"count\":%llu,\"sum\":%llu}",
                                     labels_json(s.labels).c_str(),
                                     (unsigned long long)s.histogram.count(),
                                     (unsigned long long)s.histogram.sum()));
      }
    }
    std::sort(rendered.begin(), rendered.end());
    size_t keep = std::min(rendered.size(), max_samples_per_family);
    out += StrFormat("{\"name\":\"%s\",\"type\":\"%s\",\"samples\":[", name.c_str(),
                     FamilyTypeName(family.type));
    for (size_t i = 0; i < keep; ++i) {
      if (i > 0) {
        out += ",";
      }
      out += rendered[i];
    }
    out += "]";
    if (keep < rendered.size()) {
      out += StrFormat(",\"omitted\":%llu",
                       (unsigned long long)(rendered.size() - keep));
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace protego
