#include "src/base/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace protego {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::optional<uint64_t> ParseUint(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  // Single-pass fast path: most callers (trace events, audit lines, proc
  // rows) fit comfortably in a stack buffer; only oversized results pay a
  // second vsnprintf.
  char buf[512];
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    if (static_cast<size_t>(needed) < sizeof(buf)) {
      out.assign(buf, static_cast<size_t>(needed));
    } else {
      out.resize(static_cast<size_t>(needed));
      std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
  }
  va_end(args_copy);
  return out;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative wildcard match with backtracking over the most recent '*'.
  size_t p = 0;
  size_t t = 0;
  size_t star = std::string_view::npos;
  size_t star_text = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_text = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_text;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

}  // namespace protego
