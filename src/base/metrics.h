// The metrics registry: counters, gauges, and log2-bucket latency histograms,
// exported in Prometheus text exposition format (/proc/protego/metrics) and
// as JSON (for the bench harness).
//
// Design: instrumented components keep their own flat-array hot-path storage
// (the syscall gate's per-syscall counters, the LSM stack's per-hook tallies)
// and register a *collector* callback here. Export walks the collectors and
// assembles one consistent snapshot — so /proc/protego/metrics, the legacy
// /proc files, and the C++ accessors all read the same underlying counters,
// with zero extra cost on the syscall path.
//
// Histogram is the embeddable hot-path type: fixed power-of-two buckets
// (0, 1, 2, 4, ..., 2^30, +Inf), one clz and three relaxed atomic
// increments per Observe — lock-free, so parallel-mode tasks observe
// latencies concurrently without contending on anything wider than the
// cache line.

#ifndef SRC_BASE_METRICS_H_
#define SRC_BASE_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace protego {

// Log2-bucket histogram. Upper bounds: 0, 1, 2, 4, ..., 2^30, +Inf.
// Observe is lock-free (relaxed atomics); readers see a statistically
// consistent view (sum/count/buckets may momentarily disagree by one
// in-flight observation, which Prometheus scrape semantics tolerate).
class Histogram {
 public:
  // Bucket 0 holds exact zeros; buckets 1..31 hold (2^(i-2), 2^(i-1)];
  // the last bucket is +Inf.
  static constexpr size_t kBuckets = 33;

  Histogram() = default;
  // Copying snapshots bucket-by-bucket with relaxed loads: the export path
  // copies live histograms while hot paths keep observing, and a scrape
  // momentarily off by an in-flight observation is fine.
  Histogram(const Histogram& other) { *this = other; }
  Histogram& operator=(const Histogram& other) {
    if (this == &other) {
      return *this;
    }
    for (size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    sum_.store(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    count_.store(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  void Observe(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  static size_t BucketIndex(uint64_t v) {
    if (v == 0) {
      return 0;
    }
    size_t idx = 1 + static_cast<size_t>(std::bit_width(v - 1));
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  // Upper bound of bucket `i`; the last is reported as "+Inf".
  static uint64_t BucketBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  uint64_t bucket(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  void Reset() {
    for (std::atomic<uint64_t>& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

  // Adds `other`'s buckets/sum/count into this histogram (relaxed loads on
  // both sides: used by sharded collectors merging per-thread histograms on
  // the read path).
  void Merge(const Histogram& other) {
    for (size_t i = 0; i < kBuckets; ++i) {
      uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) {
        buckets_[i].fetch_add(n, std::memory_order_relaxed);
      }
    }
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

// Label set, e.g. {{"syscall", "open"}}. Order is preserved in the output.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// One exemplar attached to a histogram sample: a concrete observation
// (value) with identifying labels (span id, pid), rendered OpenMetrics-
// style after the bucket line its value falls into:
//   name_bucket{...,le="64"} 12 # {span="17",pid="3"} 41
// The tail-exemplar reservoir uses this to pin the K slowest spans per
// syscall to their latency buckets, so a rare slow path stays explainable
// even when head sampling dropped its trace.
struct MetricExemplar {
  MetricLabels labels;
  uint64_t value = 0;
};

// Collectors report samples through this interface; the registry assembles
// them into families. Repeated calls with the same name append samples to
// the same family (help/type from the first call win).
class MetricsBuilder {
 public:
  virtual ~MetricsBuilder() = default;
  virtual void Counter(const std::string& name, const std::string& help,
                       MetricLabels labels, uint64_t value) = 0;
  virtual void Gauge(const std::string& name, const std::string& help,
                     MetricLabels labels, double value) = 0;
  virtual void Histo(const std::string& name, const std::string& help,
                     MetricLabels labels, const Histogram& h) = 0;
  // Histogram with exemplars. Default implementation drops the exemplars so
  // existing MetricsBuilder implementations keep compiling unchanged.
  virtual void HistoEx(const std::string& name, const std::string& help,
                       MetricLabels labels, const Histogram& h,
                       std::vector<MetricExemplar> exemplars) {
    (void)exemplars;
    Histo(name, help, std::move(labels), h);
  }
};

class MetricsRegistry {
 public:
  using Collector = std::function<void(MetricsBuilder&)>;

  // Registers a collector invoked on every export, in registration order.
  // Thread-safe: fleet workers boot kernel instances (which register their
  // collectors) concurrently.
  void AddCollector(Collector collector) {
    std::lock_guard<std::mutex> lk(mu_);
    collectors_.push_back(std::move(collector));
  }

  size_t collector_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return collectors_.size();
  }

  // Prometheus text exposition format: # HELP / # TYPE headers, escaped
  // label values, cumulative histogram buckets ending in le="+Inf" plus
  // _sum and _count. Families are emitted sorted by name.
  std::string PrometheusText() const;

  // The same snapshot as JSON, for the bench harness.
  std::string Json() const;

  // A stable, sorted, size-bounded JSON excerpt for embedding in bench
  // artifacts: families sorted by name, samples sorted by serialized
  // labels, at most `max_samples_per_family` samples each (with an
  // "omitted" count when truncated), and histograms reduced to
  // {count, sum} — so the blob diffs reviewably run to run.
  std::string JsonExcerpt(size_t max_samples_per_family) const;

 protected:
  // Snapshot for export: collectors run outside the lock (they may take
  // subsystem locks of their own).
  std::vector<Collector> SnapshotCollectors() const {
    std::lock_guard<std::mutex> lk(mu_);
    return collectors_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Collector> collectors_;
};

}  // namespace protego

#endif  // SRC_BASE_METRICS_H_
