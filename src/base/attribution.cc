#include "src/base/attribution.h"

#include <algorithm>
#include <map>

#include "src/base/clock.h"
#include "src/base/strings.h"

namespace protego {

namespace {

// 4 bits per path level: layer ordinal + 1 so an empty level is 0.
constexpr uint64_t kPathBits = 4;
static_assert(kLayerCount + 1 <= (1u << kPathBits), "layer ordinal must fit a path nibble");

}  // namespace

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kGate: return "gate";
    case Layer::kSeccomp: return "seccomp";
    case Layer::kDac: return "dac";
    case Layer::kLsm: return "lsm";
    case Layer::kDecisionCache: return "decision_cache";
    case Layer::kVfs: return "vfs";
    case Layer::kNetfilter: return "netfilter";
    case Layer::kFaultRegistry: return "fault_registry";
    case Layer::kObserver: return "observer";
    case Layer::kCount: break;
  }
  return "?";
}

LayerProfiler::LayerProfiler() {
  static std::atomic<uint64_t> next_profiler_id{1};
  id_ = next_profiler_id.fetch_add(1, std::memory_order_relaxed);
}

LayerProfiler::Shard& LayerProfiler::MyShard() {
  struct TlCache {
    uint64_t profiler_id = 0;
    Shard* shard = nullptr;
  };
  thread_local TlCache cache;
  if (cache.profiler_id == id_) {
    return *cache.shard;
  }
  std::lock_guard<std::mutex> lk(shards_mu_);
  std::thread::id me = std::this_thread::get_id();
  for (const std::unique_ptr<Shard>& s : shards_) {
    if (s->owner == me) {
      cache = {id_, s.get()};
      return *s;
    }
  }
  shards_.push_back(std::make_unique<Shard>());
  Shard& shard = *shards_.back();
  shard.owner = me;
  cache = {id_, &shard};
  return shard;
}

void LayerProfiler::Enter(Layer layer) {
  Shard& shard = MyShard();
  if (shard.depth >= kMaxDepth) {
    // Too deep to attribute: count the drop but keep the stack balanced by
    // tracking the phantom depth (Exit decrements it back).
    shard.dropped.fetch_add(1, std::memory_order_relaxed);
    ++shard.depth;
    return;
  }
  Frame& f = shard.stack[shard.depth];
  f.layer = layer;
  f.start_ns = MonotonicNanos();
  f.child_ns = 0;
  uint64_t parent_path = shard.depth == 0 ? 0 : shard.stack[shard.depth - 1].path;
  f.path = (parent_path << kPathBits) | (static_cast<uint64_t>(layer) + 1);
  ++shard.depth;
}

void LayerProfiler::Exit() {
  Shard& shard = MyShard();
  if (shard.depth == 0) {
    return;  // unbalanced Exit (enable raced a scope); tolerate
  }
  --shard.depth;
  if (shard.depth >= kMaxDepth) {
    return;  // closing a phantom overflow frame
  }
  Frame& f = shard.stack[shard.depth];
  uint64_t dur = MonotonicNanos() - f.start_ns;
  uint64_t self = dur > f.child_ns ? dur - f.child_ns : 0;
  PerLayer& layer = shard.layers[static_cast<size_t>(f.layer)];
  layer.count.fetch_add(1, std::memory_order_relaxed);
  layer.self_ns.fetch_add(self, std::memory_order_relaxed);
  layer.self_ns_hist.Observe(self);
  Fold(shard, f.path, self);
  if (shard.depth == 0) {
    shard.root_ns.fetch_add(dur, std::memory_order_relaxed);
    shard.root_count.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard.stack[shard.depth - 1].child_ns += dur;
  }
}

void LayerProfiler::Fold(Shard& shard, uint64_t path, uint64_t self_ns) {
  // Open addressing, single writer per shard. Fibonacci hashing spreads the
  // dense low-nibble paths across the table.
  size_t idx = static_cast<size_t>((path * 0x9e3779b97f4a7c15ull) >> 32) % kFoldedSlots;
  for (size_t probe = 0; probe < kFoldedSlots; ++probe) {
    FoldedCell& cell = shard.folded[(idx + probe) % kFoldedSlots];
    uint64_t key = cell.path.load(std::memory_order_relaxed);
    if (key == 0) {
      cell.path.store(path, std::memory_order_relaxed);
      key = path;
    }
    if (key == path) {
      cell.count.fetch_add(1, std::memory_order_relaxed);
      cell.self_ns.fetch_add(self_ns, std::memory_order_relaxed);
      return;
    }
  }
  shard.dropped.fetch_add(1, std::memory_order_relaxed);
}

std::string LayerProfiler::PathString(uint64_t path) {
  // Decode the nibbles root-first.
  uint64_t nibbles[kMaxDepth];
  size_t n = 0;
  while (path != 0 && n < kMaxDepth) {
    nibbles[n++] = path & ((1u << kPathBits) - 1);
    path >>= kPathBits;
  }
  std::string out;
  for (size_t i = n; i-- > 0;) {
    if (!out.empty()) {
      out += ";";
    }
    out += LayerName(static_cast<Layer>(nibbles[i] - 1));
  }
  return out;
}

LayerProfiler::LayerTotals LayerProfiler::Totals(Layer layer) const {
  LayerTotals out;
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const PerLayer& pl = shard->layers[static_cast<size_t>(layer)];
    out.count += pl.count.load(std::memory_order_relaxed);
    out.self_ns += pl.self_ns.load(std::memory_order_relaxed);
    out.self_ns_hist.Merge(pl.self_ns_hist);
  }
  return out;
}

uint64_t LayerProfiler::root_ns() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->root_ns.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LayerProfiler::root_count() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->root_count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LayerProfiler::dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<LayerProfiler::FoldedEntry> LayerProfiler::Folded() const {
  std::map<uint64_t, FoldedEntry> merged;
  {
    std::lock_guard<std::mutex> lk(shards_mu_);
    for (const std::unique_ptr<Shard>& shard : shards_) {
      for (const FoldedCell& cell : shard->folded) {
        uint64_t path = cell.path.load(std::memory_order_relaxed);
        if (path == 0) {
          continue;
        }
        FoldedEntry& e = merged[path];
        e.count += cell.count.load(std::memory_order_relaxed);
        e.self_ns += cell.self_ns.load(std::memory_order_relaxed);
      }
    }
  }
  std::vector<FoldedEntry> out;
  out.reserve(merged.size());
  for (auto& [path, entry] : merged) {
    entry.stack = PathString(path);
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const FoldedEntry& a, const FoldedEntry& b) { return a.stack < b.stack; });
  return out;
}

std::string LayerProfiler::FormatProfile() const {
  std::string out;
  out += StrFormat("# layer-profile enabled=%d\n", enabled() ? 1 : 0);
  uint64_t self_total = 0;
  for (size_t i = 0; i < kLayerCount; ++i) {
    LayerTotals t = Totals(static_cast<Layer>(i));
    if (t.count == 0) {
      continue;
    }
    self_total += t.self_ns;
    out += StrFormat("# layer %s count=%llu self_ns=%llu\n",
                     LayerName(static_cast<Layer>(i)), (unsigned long long)t.count,
                     (unsigned long long)t.self_ns);
  }
  out += StrFormat("# roots count=%llu total_ns=%llu self_sum_ns=%llu dropped=%llu\n",
                   (unsigned long long)root_count(), (unsigned long long)root_ns(),
                   (unsigned long long)self_total, (unsigned long long)dropped());
  // Folded-stack body: flamegraph input, one "path count self_ns" per line.
  for (const FoldedEntry& e : Folded()) {
    out += StrFormat("%s %llu %llu\n", e.stack.c_str(), (unsigned long long)e.count,
                     (unsigned long long)e.self_ns);
  }
  return out;
}

void LayerProfiler::Reset() {
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (PerLayer& pl : shard->layers) {
      pl.count.store(0, std::memory_order_relaxed);
      pl.self_ns.store(0, std::memory_order_relaxed);
      pl.self_ns_hist.Reset();
    }
    for (FoldedCell& cell : shard->folded) {
      cell.path.store(0, std::memory_order_relaxed);
      cell.count.store(0, std::memory_order_relaxed);
      cell.self_ns.store(0, std::memory_order_relaxed);
    }
    shard->root_ns.store(0, std::memory_order_relaxed);
    shard->root_count.store(0, std::memory_order_relaxed);
    shard->dropped.store(0, std::memory_order_relaxed);
  }
}

void LayerProfiler::CollectMetrics(MetricsBuilder& b) const {
  uint64_t self_total = 0;
  for (size_t i = 0; i < kLayerCount; ++i) {
    Layer layer = static_cast<Layer>(i);
    LayerTotals t = Totals(layer);
    if (t.count == 0) {
      continue;
    }
    self_total += t.self_ns;
    MetricLabels labels = {{"layer", LayerName(layer)}};
    b.Counter("protego_layer_entries_total",
              "Attribution frames closed per layer", labels, t.count);
    b.Counter("protego_layer_self_ns_total",
              "Summed per-layer self time in nanoseconds", labels, t.self_ns);
    b.Histo("protego_layer_self_time_ns",
            "Per-frame layer self time in nanoseconds", labels, t.self_ns_hist);
  }
  b.Counter("protego_layer_root_ns_total",
            "Inclusive wall time of top-level attribution frames", {}, root_ns());
  b.Counter("protego_layer_root_frames_total",
            "Top-level attribution frames closed", {}, root_count());
  b.Counter("protego_layer_dropped_total",
            "Attribution frames lost to stack or folded-table overflow", {}, dropped());
  // The observer's self-accounting: the instrumentation cost the pipeline
  // metered on itself, plus its share of the attributed total.
  uint64_t observer_ns = Totals(Layer::kObserver).self_ns;
  b.Counter("protego_observer_self_ns_total",
            "Self time the observability pipeline spent on its own bookkeeping", {},
            observer_ns);
  uint64_t roots = root_ns();
  b.Gauge("protego_observer_overhead_ratio",
          "Observer self time as a fraction of attributed root time", {},
          roots > 0 ? static_cast<double>(observer_ns) / static_cast<double>(roots) : 0.0);
}

}  // namespace protego
