// Per-layer latency attribution: where does a syscall's time actually go?
//
// A LayerProfiler maintains, per thread, a small stack of open layer frames
// (gate, seccomp filter, DAC, LSM module walk, decision-cache probe, VFS
// resolution, netfilter, fault registry, plus the observability pipeline's
// own bookkeeping). Each frame accumulates SELF time — its wall-clock
// duration minus the durations of the frames nested inside it — so the
// per-layer totals telescope: summed over every layer they equal the total
// inclusive time of the top-level (gate) frames. That identity is the
// self-check the observability bench enforces ("summed per-layer self-time
// within 10% of end-to-end span time").
//
// Each exit also folds the frame's layer PATH (gate;lsm;decision_cache)
// into a fixed-size per-shard table, which /proc/protego/profile renders as
// a folded-stack profile — the flamegraph input format, one line per
// distinct path with its hit count and self nanoseconds.
//
// Shard discipline mirrors the Tracer: one shard per emitting thread with a
// single writer, created under a mutex on first use and found through a
// thread-local one-entry cache keyed on the profiler's process-unique id.
// All accumulators are relaxed atomics, so a metrics scrape racing live
// frames reads torn-free values; exact totals (like the trace ring) expect
// emitters to be quiescent. The folded table is open-addressed with a fixed
// slot count — no rehash, no allocation, no reader/writer UB — and paths
// beyond its capacity or deeper than the frame stack are counted as drops,
// never silently lost.
//
// Self-time uses the monotonic wall clock, not the virtual clock: the
// virtual clock only moves when a test advances it, so layer attribution in
// ticks would read all-zero on every real workload. Consequently the ns
// totals vary run to run; the deterministic quantities (frame counts and
// the set of folded paths) are what the determinism tests compare.
//
// Disabled (the default), Enter/Exit are never called: LayerScope checks
// one relaxed atomic and stays inert, so the hot path pays a pointer test
// and a load per instrumented region.

#ifndef SRC_BASE_ATTRIBUTION_H_
#define SRC_BASE_ATTRIBUTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/metrics.h"

namespace protego {

// The attribution layers, in rough syscall-path order. Adding one means
// adding a name in attribution.cc and wrapping the code in a LayerScope.
enum class Layer : uint8_t {
  kGate = 0,        // syscall gate entry/exit bookkeeping (the root frame)
  kSeccomp,         // per-task seccomp filter consultation
  kDac,             // discretionary access control (mode bits + capability)
  kLsm,             // LSM stack module walk (hook dispatch)
  kDecisionCache,   // stack-level decision-cache probe
  kVfs,             // VFS path resolution
  kNetfilter,       // netfilter chain evaluation
  kFaultRegistry,   // fault-injection site evaluation
  kObserver,        // the observability pipeline's own cost (self-accounting)
  kCount,           // sentinel
};

inline constexpr size_t kLayerCount = static_cast<size_t>(Layer::kCount);

const char* LayerName(Layer layer);

class LayerProfiler {
 public:
  // Frame stack depth per thread; nested Spawn/Execve chains re-enter the
  // gate, so the budget allows several full gate->leaf nestings.
  static constexpr size_t kMaxDepth = 16;
  // Folded-path table slots per shard. Distinct layer paths number in the
  // dozens (the layer alphabet is 9 wide and stacks are shallow), so 128
  // slots leave generous headroom; overflow is counted in dropped().
  static constexpr size_t kFoldedSlots = 128;

  LayerProfiler();
  LayerProfiler(const LayerProfiler&) = delete;
  LayerProfiler& operator=(const LayerProfiler&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Opens/closes a frame on the calling thread. Call only while enabled —
  // LayerScope (below) captures engagement at entry so a mid-span toggle
  // cannot unbalance the stack.
  void Enter(Layer layer);
  void Exit();

  // --- Read side (merged across shards; exact when emitters are quiescent) --

  struct LayerTotals {
    uint64_t count = 0;    // frames closed for this layer
    uint64_t self_ns = 0;  // summed self time
    Histogram self_ns_hist;
  };
  LayerTotals Totals(Layer layer) const;

  // Inclusive wall time and count of top-level frames (depth-0 exits). By
  // the telescoping identity, sum over layers of self_ns == root_ns when
  // every frame closed inside a root.
  uint64_t root_ns() const;
  uint64_t root_count() const;
  // Frames lost to stack-depth or folded-table overflow.
  uint64_t dropped() const;

  struct FoldedEntry {
    std::string stack;  // "gate;lsm;decision_cache"
    uint64_t count = 0;
    uint64_t self_ns = 0;
  };
  // Merged folded profile, sorted by stack string for stable output.
  std::vector<FoldedEntry> Folded() const;

  // The /proc/protego/profile body: a per-layer self-time table (comment
  // lines) followed by folded-stack lines ("gate;lsm 42 123456").
  std::string FormatProfile() const;

  // Zeroes every shard's accumulators (emitters must be quiescent).
  void Reset();

  // protego_layer_self_time_ns{layer=...} histograms, per-layer entry
  // counters, root totals, and the observer self-accounting counter.
  void CollectMetrics(MetricsBuilder& b) const;

 private:
  struct Frame {
    Layer layer = Layer::kGate;
    uint64_t start_ns = 0;
    uint64_t child_ns = 0;  // inclusive time of already-closed children
    uint64_t path = 0;      // packed layer path, 4 bits per level
  };

  struct PerLayer {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> self_ns{0};
    Histogram self_ns_hist;
  };

  // One open-addressed folded-path cell. The owner thread is the only
  // writer; `path` is atomic so a concurrent reader never sees a torn key.
  struct FoldedCell {
    std::atomic<uint64_t> path{0};  // 0 = empty
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> self_ns{0};
  };

  struct Shard {
    std::thread::id owner;
    Frame stack[kMaxDepth];
    size_t depth = 0;  // owner-thread only; may exceed kMaxDepth (overflow)
    PerLayer layers[kLayerCount];
    FoldedCell folded[kFoldedSlots];
    std::atomic<uint64_t> root_ns{0};
    std::atomic<uint64_t> root_count{0};
    std::atomic<uint64_t> dropped{0};
  };

  Shard& MyShard();
  static void Fold(Shard& shard, uint64_t path, uint64_t self_ns);
  static std::string PathString(uint64_t path);

  std::atomic<bool> enabled_{false};
  uint64_t id_;  // process-unique, for the thread-local shard cache
  mutable std::mutex shards_mu_;  // guards shards_ growth
  std::vector<std::unique_ptr<Shard>> shards_;
};

// RAII layer frame. Engagement is decided ONCE at construction (profiler
// attached and enabled), so a concurrent enable/disable cannot unbalance
// Enter/Exit pairs.
class LayerScope {
 public:
  LayerScope(LayerProfiler* profiler, Layer layer) {
    if (profiler != nullptr && profiler->enabled()) {
      profiler_ = profiler;
      profiler_->Enter(layer);
    }
  }
  ~LayerScope() {
    if (profiler_ != nullptr) {
      profiler_->Exit();
    }
  }
  LayerScope(const LayerScope&) = delete;
  LayerScope& operator=(const LayerScope&) = delete;

 private:
  LayerProfiler* profiler_ = nullptr;
};

}  // namespace protego

#endif  // SRC_BASE_ATTRIBUTION_H_
