// Kernel-wide tracepoints: a static registry of typed decision points with
// per-point enable bits and a sharded structured event ring, modeled on
// ftrace/perf_events.
//
// Every instrumented site (syscall gate, LSM hook dispatch, VFS permission
// walks, netfilter verdicts, cred transitions) emits TraceEvents into the
// same logical ring, so /proc/protego/trace can interleave them in causal
// order.
//
// Causal decision spans: each syscall entry allocates a span id (a stack,
// since syscalls nest via Spawn/Execve). Every event emitted while a span is
// open is stamped with the innermost span id; the syscall's own event — the
// span root — is emitted at exit. The Format() renderer groups child events
// under their root, producing the full allow/deny derivation tree for one
// call: the strace line plus the hook verdicts underneath it.
//
// Parallel mode: the ring is sharded per emitting thread (ftrace's per-CPU
// buffers). Each shard has exactly one writer — the thread that owns it — so
// the emission path takes no lock; a global atomic sequence counter gives
// events a total order and Snapshot() merge-sorts the shards by it. Read
// operations (Snapshot/Format/Clear) expect emitters to be quiescent, which
// every caller guarantees by joining task threads first; the per-shard
// emitted counters are atomic so concurrent metric reads stay clean.
//
// Hot-path discipline: Enabled(tp) is a master-bit AND a per-point-bit test
// (two relaxed loads, one branch) — the only cost when tracing is off. Event
// slots are preallocated and reused; the name/detail/value fields that always
// come from string literals (hook names, module names, verdict names) are
// stored as const char* so the LSM fast path allocates nothing. Only
// free-form payloads (syscall args, paths, rule comments) use the
// std::string fields, which reuse slot capacity.

#ifndef SRC_BASE_TRACEPOINT_H_
#define SRC_BASE_TRACEPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/clock.h"

namespace protego {

// The static tracepoint registry. Adding a decision point means adding an
// id here and a renderer arm in tracepoint.cc.
enum class TracepointId : uint8_t {
  kSyscall = 0,     // syscall completion (the span root; strace-shaped)
  kLsmHook,         // one module's verdict for one hook dispatch
  kLsmDecision,     // the stack's combined verdict (+ cache hit/miss)
  kCapable,         // security_capable() consultation
  kVfsPermission,   // DAC+LSM inode_permission walk outcome
  kVfsMount,        // mount table change (attach/detach)
  kNetfilter,       // chain verdict for one packet
  kCredChange,      // setuid/setgid/execve credential transition
  kContextSwitch,   // deterministic scheduler handed the token to a task
  kFileLock,        // advisory flock acquire/release/block outcome
  kFaultInject,     // deterministic fault-injection site fired
  kCount,           // sentinel
};

inline constexpr size_t kTracepointCount = static_cast<size_t>(TracepointId::kCount);

const char* TracepointName(TracepointId tp);

// TraceEvent.flags bits.
inline constexpr uint32_t kTraceFlagSeccompDenied = 1u << 0;  // killed at entry
inline constexpr uint32_t kTraceFlagCacheHit = 1u << 1;       // decision-cache hit
inline constexpr uint32_t kTraceFlagCacheMiss = 1u << 2;      // decision-cache miss
inline constexpr uint32_t kTraceFlagDenied = 1u << 3;         // outcome was a refusal

// One ring slot. Which fields are meaningful depends on `tp`; the renderer
// in tracepoint.cc is the authoritative decoding.
struct TraceEvent {
  uint64_t seq = 0;     // monotonically increasing since last Clear()
  uint64_t tick = 0;    // virtual clock at emission
  uint64_t span = 0;    // innermost open span (0 = outside any syscall)
  uint64_t parent = 0;  // enclosing span (only meaningful for span roots)
  TracepointId tp = TracepointId::kSyscall;
  int pid = 0;
  int code = 0;         // errno (syscall/vfs) or boolean outcome (capable)
  uint32_t flags = 0;
  uint64_t a = 0;       // scalar payload: sysno, may-mask, capability, ...
  uint64_t dur = 0;     // nanoseconds (syscall roots, when timing is on)
  // Static-string payloads — MUST point at string literals or other
  // immortal storage; never freed, never copied.
  const char* sname = "";   // syscall/hook/chain/transition name
  const char* sdetail = ""; // module name, verdict, errno name
  const char* svalue = "";  // combined verdict, secondary outcome
  // Free-form payloads; assignment reuses the slot's capacity.
  std::string comm;
  std::string detail;  // syscall args, path, rule comment
};

// Read-side filter for Format(), set via /proc/protego/trace writes
// ("?pid=N&syscall=name&span=N&since=N"). Default-constructed = match
// everything.
struct TraceFilter {
  int pid = -1;         // -1 = any
  std::string syscall;  // empty = any (matches the span root's name)
  uint64_t span = 0;    // 0 = any
  // Cursor for incremental polls: only top-level entries whose own seq is
  // >= since are rendered (a qualifying root still renders its whole
  // subtree, including child events emitted before the cursor). Pollers
  // chase the "# next:" trailer. 0 = no cursor.
  uint64_t since = 0;

  bool active() const {
    return pid >= 0 || !syscall.empty() || span != 0 || since != 0;
  }
};

class Tracer {
 public:
  explicit Tracer(const Clock* clock, size_t capacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Master switch (the /proc/protego/trace "on"/"off" toggle).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
    BumpConfigGen();
  }

  // Per-point enable bits.
  bool point_enabled(TracepointId tp) const {
    return (point_mask_.load(std::memory_order_relaxed) &
            (1u << static_cast<unsigned>(tp))) != 0;
  }
  void set_point_enabled(TracepointId tp, bool on) {
    if (on) {
      point_mask_.fetch_or(1u << static_cast<unsigned>(tp), std::memory_order_relaxed);
    } else {
      point_mask_.fetch_and(~(1u << static_cast<unsigned>(tp)),
                            std::memory_order_relaxed);
    }
    BumpConfigGen();
  }

  // The hot-path guard every instrumented site tests before formatting
  // anything: master bit AND per-point bit.
  bool Enabled(TracepointId tp) const {
    return enabled_.load(std::memory_order_relaxed) &&
           (point_mask_.load(std::memory_order_relaxed) &
            (1u << static_cast<unsigned>(tp))) != 0;
  }

  // Bumped by every enable/sampling configuration change. Consumers that
  // precompute dispatch state from the tracer config (the syscall gate's
  // per-syscall dispatch table) cache this and rebuild lazily on mismatch.
  uint64_t config_gen() const { return config_gen_.load(std::memory_order_relaxed); }

  // --- Seeded sampling -------------------------------------------------------
  //
  // 1-in-N head sampling per tracepoint. Decisions come from per-shard
  // (per-thread) splitmix64 streams, all seeded from one recorded seed — so
  // a run is replayable exactly like the fault registry: one task = one OS
  // thread in both exec modes, each thread's draw sequence is a pure
  // function of (seed, that thread's event sequence), and the same seed
  // reproduces the identical keep/drop decisions run after run. A rate or
  // seed change reseeds every stream at its next draw.

  uint32_t sample_rate(TracepointId tp) const {
    return sample_rate_[static_cast<size_t>(tp)].load(std::memory_order_relaxed);
  }
  // rate <= 1 keeps every event (sampling off for that point).
  void set_sample_rate(TracepointId tp, uint32_t rate) {
    sample_rate_[static_cast<size_t>(tp)].store(rate == 0 ? 1 : rate,
                                                std::memory_order_relaxed);
    sample_gen_.fetch_add(1, std::memory_order_relaxed);
    BumpConfigGen();
  }
  void set_all_sample_rates(uint32_t rate);

  uint64_t sample_seed() const { return sample_seed_.load(std::memory_order_relaxed); }
  void set_sample_seed(uint64_t seed) {
    sample_seed_.store(seed, std::memory_order_relaxed);
    sample_gen_.fetch_add(1, std::memory_order_relaxed);
    BumpConfigGen();
  }

  // Draws this thread's next sampling decision for `tp`. True = keep. A
  // dropped event is tallied in sampled_out(tp). rate <= 1 is a single
  // relaxed load. NOTE: the draw is consumed even for points the caller
  // later decides not to emit — callers gate on Enabled() FIRST (ShouldEmit
  // does) so disabled points never consume stream positions.
  bool SampleKeep(TracepointId tp);

  // The emission guard for sampled sites: Enabled(tp) && SampleKeep(tp).
  bool ShouldEmit(TracepointId tp) {
    if (!Enabled(tp)) {
      return false;
    }
    if (tls_muted_ && tp != TracepointId::kContextSwitch &&
        tp != TracepointId::kFaultInject) {
      return false;
    }
    return SampleKeep(tp);
  }

  // --- Thread mute (per-syscall dispatch) ------------------------------------
  //
  // An untraced syscall (dispatch word with the trace bit clear) mutes the
  // span-scoped decision points on its thread for its duration: nested
  // hook/permission/netfilter events belong to the enclosing span, and with
  // no span open they would render as orphan noise while still paying a
  // sampling draw apiece — exactly the cost per-syscall dispatch exists to
  // avoid. Ambient points that legitimately fire outside spans (context
  // switches, fault injections) are exempt. The flag is a plain
  // thread_local — only one gate window is open on a thread at a time —
  // and nested syscalls (Spawn/Execve) save/restore the previous value.
  static bool SwapThreadMute(bool muted) {
    bool prev = tls_muted_;
    tls_muted_ = muted;
    return prev;
  }
  static bool ThreadMuted() { return tls_muted_; }

  // Events suppressed by sampling since boot (per tracepoint).
  uint64_t sampled_out(TracepointId tp) const {
    return sampled_out_[static_cast<size_t>(tp)].load(std::memory_order_relaxed);
  }
  uint64_t total_sampled_out() const;

  // --- Decision spans --------------------------------------------------------
  //
  // Span stacks are per-pid: under the deterministic scheduler two tasks'
  // syscalls interleave at yield points, and a single global stack would
  // nest task B's span under whatever task A still has open. Keying the
  // stack by pid keeps each derivation tree attached to the task that
  // produced it regardless of the schedule. In parallel mode the pid keying
  // doubles as thread keying (one task = one thread); the map itself is
  // mutex-guarded.

  // Opens a span nested inside `pid`'s current one; returns its id (never 0).
  uint64_t BeginSpan(int pid);
  // Closes `span`. Tolerates mismatched ids (pops only if it is innermost
  // for `pid`).
  void EndSpan(int pid, uint64_t span);
  // Innermost open span id for `pid`, or 0.
  uint64_t current_span(int pid) const;

  // --- Emission --------------------------------------------------------------

  // Claims the calling thread's next shard slot, stamps seq/tick/pid and
  // `pid`'s current span, and resets the payload fields. Callers fill in the
  // rest; the slot has a single writer (this thread), so filling it after
  // return is race-free. Callers MUST gate on Enabled(tp) themselves.
  TraceEvent& Emit(TracepointId tp, int pid);

  // Emission variant for span roots (syscall exit): the event is stamped
  // with `span` itself (not the innermost open span) and with that span's
  // parent, so nested syscalls chain correctly.
  TraceEvent& EmitSpanRoot(TracepointId tp, int pid, uint64_t span);

  // --- Read side -------------------------------------------------------------
  //
  // Snapshot/Format/Clear merge the shards; emitters must be quiescent
  // (parallel-mode callers join their task threads first).

  // Retained events, merged across shards, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  void Clear();

  size_t capacity() const { return capacity_; }
  uint64_t seq() const { return seq_.load(std::memory_order_relaxed); }
  // Events overwritten since the last Clear(). With multiple shards this is
  // a lower bound (each shard retains up to `capacity_` events, but the
  // merged view is cropped to the newest `capacity_`).
  uint64_t dropped() const {
    uint64_t s = seq();
    return s > capacity_ ? s - capacity_ : 0;
  }

  void set_read_filter(TraceFilter filter) { read_filter_ = std::move(filter); }
  const TraceFilter& read_filter() const { return read_filter_; }

  // The /proc/protego/trace body: decision trees (span roots with their
  // child events indented beneath), oldest first, honoring read_filter().
  std::string Format() const;

 private:
  struct OpenSpan {
    uint64_t id = 0;
    uint64_t parent = 0;
  };

  // One per-thread ring. `emitted` counts events this shard's owner wrote;
  // it is atomic only so quiescent readers and concurrent metric exports
  // load it cleanly — the owner is the sole writer. `sample_state` is the
  // thread's private splitmix64 stream, lazily (re)seeded when its
  // `sample_key` no longer matches the tracer's sampling generation.
  struct Shard {
    std::thread::id owner;
    std::vector<TraceEvent> ring;
    std::atomic<uint64_t> emitted{0};
    uint64_t sample_state = 0;
    uint64_t sample_key = 0;  // sampling generation the state was seeded for
  };

  // The calling thread's shard, created on first emission. A thread-local
  // single-entry cache keyed by the tracer's unique id (NOT its address —
  // fleet runs create and destroy thousands of tracers, and a recycled
  // address must not hit a stale cache entry) makes the common case two
  // loads and a compare.
  Shard& MyShard();

  void BumpConfigGen() { config_gen_.fetch_add(1, std::memory_order_relaxed); }

  const Clock* clock_;
  size_t capacity_;
  uint64_t id_;  // process-unique tracer id for the thread-local shard cache
  std::atomic<bool> enabled_{true};
  std::atomic<uint32_t> point_mask_{0};
  std::atomic<uint64_t> config_gen_{1};  // any enable/sampling config change
  std::atomic<uint64_t> sample_gen_{1};  // sampling rate/seed changes only
  std::atomic<uint64_t> sample_seed_{1};
  static thread_local bool tls_muted_;
  std::atomic<uint32_t> sample_rate_[kTracepointCount] = {};
  std::atomic<uint64_t> sampled_out_[kTracepointCount] = {};
  std::atomic<uint64_t> seq_{0};  // next global sequence number
  mutable std::mutex shards_mu_;  // guards shards_ growth
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex spans_mu_;  // guards open_spans_ and next_span_
  uint64_t next_span_ = 1;       // span ids survive Clear() (spans may be open)
  std::unordered_map<int, std::vector<OpenSpan>> open_spans_;  // keyed by pid
  TraceFilter read_filter_;
};

}  // namespace protego

#endif  // SRC_BASE_TRACEPOINT_H_
