// Hashing utilities: FNV-1a for table keys and a salted iterated hash used
// as the simulated crypt(3) for /etc/shadow entries.
//
// The password hash is NOT cryptographically strong; the simulation only
// needs the structural properties of crypt() — deterministic, salted,
// one-way-shaped — so that authentication flows (login, sudo recency,
// password-protected groups) behave like the real system.

#ifndef SRC_BASE_HASH_H_
#define SRC_BASE_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace protego {

// 64-bit FNV-1a.
uint64_t Fnv1a(std::string_view data);

// Produces a shadow-style hash string "$sim$<salt>$<hex>".
std::string CryptPassword(std::string_view password, std::string_view salt);

// Verifies `password` against a "$sim$..." hash produced by CryptPassword.
// Returns false for malformed hashes.
bool VerifyPassword(std::string_view password, std::string_view hash);

// Derives a printable 8-char salt from a seed (deterministic).
std::string MakeSalt(uint64_t seed);

}  // namespace protego

#endif  // SRC_BASE_HASH_H_
