// Deterministic virtual time for the simulated system.
//
// All authentication-recency decisions (the paper's 5-minute sudo window,
// §4.3) and file mtimes run off this clock so that tests can advance time
// explicitly and replays are reproducible.

#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace protego {

// Real monotonic wall-clock nanoseconds (std::chrono::steady_clock). Used
// only for latency accounting in the syscall gate — never for simulation
// semantics, which stay on the virtual Clock below.
uint64_t MonotonicNanos();

// Monotonic virtual clock with second granularity (matches the granularity
// sudo uses for its timestamp files).
class Clock {
 public:
  Clock() = default;

  // Current virtual time in seconds since simulation boot.
  uint64_t Now() const { return now_.load(std::memory_order_relaxed); }

  // Advances virtual time; never goes backwards.
  void Advance(uint64_t seconds) { now_.fetch_add(seconds, std::memory_order_relaxed); }

  // Resets to boot time. Only tests should call this.
  void Reset() { now_.store(0, std::memory_order_relaxed); }

 private:
  // Relaxed atomic: parallel-mode tasks stamp trace events and mtimes off
  // this clock while tests (or other tasks, via nanosleep-style advances)
  // move it forward.
  std::atomic<uint64_t> now_{0};
};

}  // namespace protego

#endif  // SRC_BASE_CLOCK_H_
