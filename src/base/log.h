// Minimal leveled logger. The simulated kernel logs audit events (LSM denials,
// setuid transitions, policy reloads) through this; tests capture the sink.

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace protego {

enum class LogLevel {
  kDebug,
  kInfo,
  kAudit,  // security-relevant: denials, privilege transitions
  kWarn,
  kError,
};

const char* LogLevelName(LogLevel level);

// Process-wide logger. A sink can be installed to capture records (used by
// audit tests); by default records at kWarn and above go to stderr.
class Logger {
 public:
  struct Record {
    LogLevel level;
    std::string message;
  };

  static Logger& Get();

  void Log(LogLevel level, std::string message);

  // Replaces the sink. Passing nullptr restores the default stderr sink.
  void SetSink(std::function<void(const Record&)> sink);

  // Keeps the most recent records in a ring for post-hoc inspection.
  const std::vector<Record>& recent() const { return recent_; }
  void ClearRecent() { recent_.clear(); }

 private:
  Logger() = default;
  std::function<void(const Record&)> sink_;
  std::vector<Record> recent_;
};

void LogDebug(std::string message);
void LogInfo(std::string message);
void LogAudit(std::string message);
void LogWarn(std::string message);
void LogError(std::string message);

}  // namespace protego

#endif  // SRC_BASE_LOG_H_
