// Line-oriented lexer shared by every configuration-file parser (fstab,
// sudoers, /etc/bind, ppp options, the /proc/protego grammars).
//
// Handles the conventions those formats share: '#' comments, blank lines,
// trailing-backslash continuation (sudoers), and field splitting.

#ifndef SRC_BASE_LEXER_H_
#define SRC_BASE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace protego {

// One logical (continuation-joined) line of a config file.
struct ConfigLine {
  int line_number = 0;  // 1-based line of the first physical line
  std::string text;     // comment-stripped, trimmed
};

// Splits file `content` into logical config lines. Comments begin at an
// unquoted '#' and run to end of line. A line ending in '\' is joined with
// the next. Blank (post-strip) lines are dropped.
std::vector<ConfigLine> LexConfig(std::string_view content);

// Splits a logical line into whitespace-separated fields, honoring double
// quotes ("two words" is one field) and backslash escapes within quotes.
std::vector<std::string> LexFields(std::string_view line);

}  // namespace protego

#endif  // SRC_BASE_LEXER_H_
