// Error model shared by every layer of the simulated system.
//
// The simulated kernel mirrors the Linux syscall contract: a call either
// succeeds with a value or fails with an errno. `Result<T>` is the C++
// carrier for that contract; `Errno` enumerates the subset of Linux error
// numbers the simulation uses, with their real numeric values so that traces
// and tests read like strace output.

#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace protego {

// Linux errno values used by the simulated syscall surface.
enum class Errno : int {
  kOk = 0,
  kEPERM = 1,    // Operation not permitted
  kENOENT = 2,   // No such file or directory
  kESRCH = 3,    // No such process
  kEINTR = 4,    // Interrupted system call
  kEIO = 5,      // I/O error
  kENXIO = 6,    // No such device or address
  kE2BIG = 7,    // Argument list too long
  kENOEXEC = 8,  // Exec format error
  kEBADF = 9,    // Bad file number
  kECHILD = 10,  // No child processes
  kEAGAIN = 11,  // Try again
  kENOMEM = 12,  // Out of memory
  kEACCES = 13,  // Permission denied
  kEFAULT = 14,  // Bad address
  kEBUSY = 16,   // Device or resource busy
  kEEXIST = 17,  // File exists
  kEXDEV = 18,   // Cross-device link
  kENODEV = 19,  // No such device
  kENOTDIR = 20,   // Not a directory
  kEISDIR = 21,    // Is a directory
  kEINVAL = 22,    // Invalid argument
  kENFILE = 23,    // File table overflow
  kEMFILE = 24,    // Too many open files
  kENOTTY = 25,    // Not a typewriter
  kETXTBSY = 26,   // Text file busy
  kEFBIG = 27,     // File too large
  kENOSPC = 28,    // No space left on device
  kESPIPE = 29,    // Illegal seek
  kEROFS = 30,     // Read-only file system
  kEMLINK = 31,    // Too many links
  kEPIPE = 32,     // Broken pipe
  kERANGE = 34,    // Math result not representable
  kEDEADLK = 35,   // Resource deadlock would occur
  kENAMETOOLONG = 36,  // File name too long
  kENOSYS = 38,        // Function not implemented
  kENOTEMPTY = 39,     // Directory not empty
  kELOOP = 40,         // Too many symbolic links encountered
  kENOPROTOOPT = 92,   // Protocol not available
  kEPROTONOSUPPORT = 93,  // Protocol not supported
  kEOPNOTSUPP = 95,       // Operation not supported
  kEAFNOSUPPORT = 97,     // Address family not supported
  kEADDRINUSE = 98,       // Address already in use
  kEADDRNOTAVAIL = 99,    // Cannot assign requested address
  kENETUNREACH = 101,     // Network is unreachable
  kECONNRESET = 104,      // Connection reset by peer
  kEISCONN = 106,         // Socket is already connected
  kENOTCONN = 107,        // Socket is not connected
  kETIMEDOUT = 110,       // Connection timed out
  kECONNREFUSED = 111,    // Connection refused
  kEHOSTUNREACH = 113,    // No route to host
};

// Short symbolic name ("EPERM") for an errno; used in traces and messages.
const char* ErrnoName(Errno e);

// Human-readable description mirroring strerror().
const char* ErrnoMessage(Errno e);

// Reverse lookup of ErrnoName ("EPERM" -> kEPERM); nullopt for unknown
// names. Used by control-file parsers (fault injection directives).
std::optional<Errno> ErrnoFromName(std::string_view name);

// A failed operation: errno plus optional context describing what failed.
class Error {
 public:
  explicit Error(Errno code) : code_(code) {}
  Error(Errno code, std::string context) : code_(code), context_(std::move(context)) {}

  Errno code() const { return code_; }
  const std::string& context() const { return context_; }

  // "EPERM (Operation not permitted): <context>"
  std::string ToString() const;

 private:
  Errno code_;
  std::string context_;
};

// Value-or-error carrier for syscall-shaped APIs. Modeled on std::expected
// (unavailable in C++20). `Result<void>` is expressed as Result<Unit>.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a success value or an Error keeps call sites
  // syscall-shaped: `return fd;` / `return Error(Errno::kEBADF);`.
  Result(T value) : state_(std::move(value)) {}
  Result(Error error) : state_(std::move(error)) {}
  Result(Errno code) : state_(Error(code)) {}

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(state_);
  }
  T take() {
    assert(ok());
    return std::move(std::get<T>(state_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(state_);
  }
  Errno code() const { return ok() ? Errno::kOk : error().code(); }

  // Value if present, otherwise `fallback`.
  T value_or(T fallback) const { return ok() ? std::get<T>(state_) : std::move(fallback); }

 private:
  std::variant<T, Error> state_;
};

// Unit type for operations that succeed with no payload.
struct Unit {
  friend bool operator==(Unit, Unit) { return true; }
};

// Canonical success value for Result<Unit> returns.
inline Result<Unit> OkUnit() { return Unit{}; }

// Propagate an error from a nested Result call. Usage:
//   ASSIGN_OR_RETURN(int fd, sys.Open(...));
#define PROTEGO_CONCAT_INNER(a, b) a##b
#define PROTEGO_CONCAT(a, b) PROTEGO_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN(decl, expr)                       \
  auto PROTEGO_CONCAT(result_, __LINE__) = (expr);         \
  if (!PROTEGO_CONCAT(result_, __LINE__).ok()) {           \
    return PROTEGO_CONCAT(result_, __LINE__).error();      \
  }                                                        \
  decl = PROTEGO_CONCAT(result_, __LINE__).take()

#define RETURN_IF_ERROR(expr)                              \
  do {                                                     \
    auto result_tmp_ = (expr);                             \
    if (!result_tmp_.ok()) {                               \
      return result_tmp_.error();                          \
    }                                                      \
  } while (0)

}  // namespace protego

#endif  // SRC_BASE_RESULT_H_
