#include "src/base/tracepoint.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/base/result.h"
#include "src/base/strings.h"

namespace protego {

thread_local bool Tracer::tls_muted_ = false;

const char* TracepointName(TracepointId tp) {
  switch (tp) {
    case TracepointId::kSyscall: return "syscall";
    case TracepointId::kLsmHook: return "lsm_hook";
    case TracepointId::kLsmDecision: return "lsm_decision";
    case TracepointId::kCapable: return "capable";
    case TracepointId::kVfsPermission: return "vfs_permission";
    case TracepointId::kVfsMount: return "vfs_mount";
    case TracepointId::kNetfilter: return "netfilter";
    case TracepointId::kCredChange: return "cred_change";
    case TracepointId::kContextSwitch: return "context_switch";
    case TracepointId::kFileLock: return "file_lock";
    case TracepointId::kFaultInject: return "fault_inject";
    case TracepointId::kCount: break;
  }
  return "?";
}

Tracer::Tracer(const Clock* clock, size_t capacity)
    : clock_(clock), capacity_(capacity) {
  static std::atomic<uint64_t> next_tracer_id{1};
  id_ = next_tracer_id.fetch_add(1, std::memory_order_relaxed);
  point_mask_.store((1u << kTracepointCount) - 1,
                    std::memory_order_relaxed);  // all points on at boot
  for (std::atomic<uint32_t>& rate : sample_rate_) {
    rate.store(1, std::memory_order_relaxed);  // sampling off at boot
  }
}

namespace {

// splitmix64 (same generator as the fault registry and the deterministic
// scheduler): tiny, platform-identical, and each call advances the state by
// a fixed gamma — the per-thread stream position IS the draw count.
uint64_t SampleMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Tracer::set_all_sample_rates(uint32_t rate) {
  for (std::atomic<uint32_t>& r : sample_rate_) {
    r.store(rate == 0 ? 1 : rate, std::memory_order_relaxed);
  }
  sample_gen_.fetch_add(1, std::memory_order_relaxed);
  BumpConfigGen();
}

bool Tracer::SampleKeep(TracepointId tp) {
  uint32_t rate = sample_rate_[static_cast<size_t>(tp)].load(std::memory_order_relaxed);
  if (rate <= 1) {
    return true;
  }
  Shard& shard = MyShard();
  uint64_t gen = sample_gen_.load(std::memory_order_relaxed);
  if (shard.sample_key != gen) {
    // Lazy (re)seed: every thread starts the identical stream from the
    // recorded seed, so replays line up per thread.
    shard.sample_state = sample_seed_.load(std::memory_order_relaxed);
    shard.sample_key = gen;
  }
  if (SampleMix64(&shard.sample_state) % rate == 0) {
    return true;
  }
  sampled_out_[static_cast<size_t>(tp)].fetch_add(1, std::memory_order_relaxed);
  return false;
}

uint64_t Tracer::total_sampled_out() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& n : sampled_out_) {
    total += n.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Tracer::BeginSpan(int pid) {
  std::lock_guard<std::mutex> lk(spans_mu_);
  std::vector<OpenSpan>& stack = open_spans_[pid];
  OpenSpan s;
  s.id = next_span_++;
  s.parent = stack.empty() ? 0 : stack.back().id;
  stack.push_back(s);
  return s.id;
}

void Tracer::EndSpan(int pid, uint64_t span) {
  std::lock_guard<std::mutex> lk(spans_mu_);
  auto it = open_spans_.find(pid);
  if (it == open_spans_.end()) {
    return;
  }
  std::vector<OpenSpan>& stack = it->second;
  if (!stack.empty() && stack.back().id == span) {
    stack.pop_back();
  }
  if (stack.empty()) {
    open_spans_.erase(it);  // reaped tasks leave no residue in the map
  }
}

uint64_t Tracer::current_span(int pid) const {
  std::lock_guard<std::mutex> lk(spans_mu_);
  auto it = open_spans_.find(pid);
  if (it == open_spans_.end() || it->second.empty()) {
    return 0;
  }
  return it->second.back().id;
}

Tracer::Shard& Tracer::MyShard() {
  struct TlCache {
    uint64_t tracer_id = 0;
    Shard* shard = nullptr;
  };
  thread_local TlCache cache;
  if (cache.tracer_id == id_) {
    return *cache.shard;
  }
  std::lock_guard<std::mutex> lk(shards_mu_);
  std::thread::id me = std::this_thread::get_id();
  for (const std::unique_ptr<Shard>& s : shards_) {
    if (s->owner == me) {
      cache = {id_, s.get()};
      return *s;
    }
  }
  shards_.push_back(std::make_unique<Shard>());
  Shard& shard = *shards_.back();
  shard.owner = me;
  shard.ring.resize(capacity_);
  cache = {id_, &shard};
  return shard;
}

TraceEvent& Tracer::Emit(TracepointId tp, int pid) {
  uint64_t span = 0;
  uint64_t parent = 0;
  {
    std::lock_guard<std::mutex> lk(spans_mu_);
    auto it = open_spans_.find(pid);
    if (it != open_spans_.end() && !it->second.empty()) {
      span = it->second.back().id;
      parent = it->second.back().parent;
    }
  }
  Shard& shard = MyShard();
  uint64_t emitted = shard.emitted.load(std::memory_order_relaxed);
  TraceEvent& ev = shard.ring[emitted % capacity_];
  shard.emitted.store(emitted + 1, std::memory_order_relaxed);
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.tick = clock_->Now();
  ev.span = span;
  ev.parent = parent;
  ev.tp = tp;
  ev.pid = pid;
  ev.code = 0;
  ev.flags = 0;
  ev.a = 0;
  ev.dur = 0;
  ev.sname = "";
  ev.sdetail = "";
  ev.svalue = "";
  ev.comm.clear();
  ev.detail.clear();
  return ev;
}

TraceEvent& Tracer::EmitSpanRoot(TracepointId tp, int pid, uint64_t span) {
  TraceEvent& ev = Emit(tp, pid);
  ev.span = span;
  ev.parent = 0;
  // The span is normally still open (roots are emitted at syscall exit,
  // just before EndSpan), so its parent is on `pid`'s open stack.
  std::lock_guard<std::mutex> lk(spans_mu_);
  auto sit = open_spans_.find(pid);
  if (sit != open_spans_.end()) {
    const std::vector<OpenSpan>& stack = sit->second;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->id == span) {
        ev.parent = it->parent;
        break;
      }
    }
  }
  return ev;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(shards_mu_);
    for (const std::unique_ptr<Shard>& shard : shards_) {
      uint64_t emitted = shard->emitted.load(std::memory_order_relaxed);
      uint64_t count = std::min<uint64_t>(emitted, capacity_);
      for (uint64_t s = emitted - count; s < emitted; ++s) {
        out.push_back(shard->ring[s % capacity_]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  // Crop the merged view to the newest `capacity_` events so the single-
  // shard case behaves exactly like the historical single ring.
  uint64_t total = seq_.load(std::memory_order_relaxed);
  if (total > capacity_) {
    uint64_t first = total - capacity_;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [first](const TraceEvent& ev) { return ev.seq < first; }),
              out.end());
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (TraceEvent& ev : shard->ring) {
      ev = TraceEvent{};
    }
    shard->emitted.store(0, std::memory_order_relaxed);
  }
  seq_.store(0, std::memory_order_relaxed);
  // next_span_ is NOT reset: spans may still be open (the very write(2)
  // performing the clear), and stale ids must never be reissued.
}

namespace {

std::string RenderEvent(const TraceEvent& ev, bool orphan) {
  std::string line;
  switch (ev.tp) {
    case TracepointId::kSyscall: {
      std::string result = ev.code == 0
                               ? "0"
                               : StrFormat("-1 %s", ErrnoName(static_cast<Errno>(ev.code)));
      if (ev.flags & kTraceFlagSeccompDenied) {
        result += " (seccomp)";
      }
      line = StrFormat("%llu t=%llu span=%llu pid=%d %s %s(%s) = %s dur_ns=%llu",
                       (unsigned long long)ev.seq, (unsigned long long)ev.tick,
                       (unsigned long long)ev.span, ev.pid, ev.comm.c_str(), ev.sname,
                       ev.detail.c_str(), result.c_str(), (unsigned long long)ev.dur);
      break;
    }
    case TracepointId::kLsmHook:
      line = StrFormat("%llu lsm:%s module=%s -> %s", (unsigned long long)ev.seq,
                       ev.sname, ev.sdetail, ev.svalue);
      break;
    case TracepointId::kLsmDecision: {
      const char* cache = (ev.flags & kTraceFlagCacheHit)    ? "hit"
                          : (ev.flags & kTraceFlagCacheMiss) ? "miss"
                                                             : "-";
      line = StrFormat("%llu lsm:%s verdict=%s cache=%s", (unsigned long long)ev.seq,
                       ev.sname, ev.svalue, cache);
      break;
    }
    case TracepointId::kCapable:
      line = StrFormat("%llu capable %s -> %s", (unsigned long long)ev.seq, ev.sname,
                       ev.code != 0 ? "granted" : "denied");
      break;
    case TracepointId::kVfsPermission:
      line = StrFormat("%llu vfs:inode_permission \"%s\" may=0x%llx -> %s",
                       (unsigned long long)ev.seq, ev.detail.c_str(),
                       (unsigned long long)ev.a,
                       ev.code == 0 ? "ok" : ErrnoName(static_cast<Errno>(ev.code)));
      break;
    case TracepointId::kVfsMount:
      line = StrFormat("%llu vfs:%s %s", (unsigned long long)ev.seq, ev.sname,
                       ev.detail.c_str());
      break;
    case TracepointId::kNetfilter:
      line = StrFormat("%llu netfilter chain=%s -> %s", (unsigned long long)ev.seq,
                       ev.sname, ev.sdetail);
      if (!ev.detail.empty()) {
        line += StrFormat(" rule=\"%s\"", ev.detail.c_str());
      }
      break;
    case TracepointId::kCredChange:
      line = StrFormat("%llu cred:%s pid=%d %s", (unsigned long long)ev.seq, ev.sname,
                       ev.pid, ev.detail.c_str());
      break;
    case TracepointId::kContextSwitch:
      // a = schedule step index, code = pid the token came from (0 at start).
      line = StrFormat("%llu sched:switch step=%llu pid=%d->%d %s",
                       (unsigned long long)ev.seq, (unsigned long long)ev.a, ev.code,
                       ev.pid, ev.comm.c_str());
      break;
    case TracepointId::kFileLock:
      // a = inode number, sname = operation, svalue = outcome.
      line = StrFormat("%llu flock:%s \"%s\" ino=%llu -> %s", (unsigned long long)ev.seq,
                       ev.sname, ev.detail.c_str(), (unsigned long long)ev.a, ev.svalue);
      break;
    case TracepointId::kFaultInject:
      // sname = site name, sdetail = injected errno name, a = injection count.
      line = StrFormat("%llu fault:%s inject=%s hit=%llu", (unsigned long long)ev.seq,
                       ev.sname, ev.sdetail, (unsigned long long)ev.a);
      if (!ev.detail.empty()) {
        line += StrFormat(" %s", ev.detail.c_str());
      }
      break;
    case TracepointId::kCount:
      break;
  }
  if (orphan) {
    line += StrFormat(" [orphan span=%llu]", (unsigned long long)ev.span);
  }
  return line;
}

}  // namespace

std::string Tracer::Format() const {
  std::vector<TraceEvent> events = Snapshot();

  // Spans whose root (kSyscall) event is still retained.
  std::unordered_set<uint64_t> rooted;
  for (const TraceEvent& ev : events) {
    if (ev.tp == TracepointId::kSyscall && ev.span != 0) {
      rooted.insert(ev.span);
    }
  }
  // Children of a span: its non-root events, plus nested span roots.
  std::unordered_map<uint64_t, std::vector<size_t>> kids;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    uint64_t under = ev.tp == TracepointId::kSyscall ? ev.parent : ev.span;
    if (under != 0 && rooted.count(under) != 0) {
      kids[under].push_back(i);
    }
  }

  const TraceFilter& f = read_filter_;
  std::string out;
  auto indent = [&out](int depth) { out.append(static_cast<size_t>(depth) * 2, ' '); };

  // Render `idx` and, if it is a span root, its subtree.
  auto render = [&](auto&& self, size_t idx, int depth) -> void {
    const TraceEvent& ev = events[idx];
    bool orphan = ev.tp != TracepointId::kSyscall && ev.span != 0 &&
                  rooted.count(ev.span) == 0;
    indent(depth);
    out += RenderEvent(ev, orphan);
    out += "\n";
    if (ev.tp == TracepointId::kSyscall) {
      auto it = kids.find(ev.span);
      if (it != kids.end()) {
        for (size_t child : it->second) {
          self(self, child, depth + 1);
        }
      }
    }
  };

  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    bool is_root = ev.tp == TracepointId::kSyscall &&
                   (ev.parent == 0 || rooted.count(ev.parent) == 0);
    bool is_standalone = ev.tp != TracepointId::kSyscall &&
                         (ev.span == 0 || rooted.count(ev.span) == 0);
    if (!is_root && !is_standalone) {
      continue;  // rendered under its span root
    }
    if (f.pid >= 0 && ev.pid != f.pid) {
      continue;
    }
    if (!f.syscall.empty() && (ev.tp != TracepointId::kSyscall || f.syscall != ev.sname)) {
      continue;
    }
    if (f.span != 0 && ev.span != f.span) {
      continue;
    }
    // The `since` cursor applies to top-level entries only: a root that
    // completed at/after the cursor renders its FULL subtree (its children
    // predate the root's seq by construction — trees would otherwise be
    // torn across polls).
    if (f.since != 0 && ev.seq < f.since) {
      continue;
    }
    render(render, i, 0);
  }
  if (dropped() > 0) {
    out += StrFormat("# dropped: %llu\n", (unsigned long long)dropped());
  }
  if (f.active()) {
    out += StrFormat("# filter: pid=%d syscall=%s span=%llu since=%llu\n", f.pid,
                     f.syscall.empty() ? "*" : f.syscall.c_str(),
                     (unsigned long long)f.span, (unsigned long long)f.since);
  }
  if (f.since != 0) {
    // The cursor a poller writes back (as ?since=N) to fetch only what
    // lands after this read.
    out += StrFormat("# next: %llu\n", (unsigned long long)seq());
  }
  return out;
}

}  // namespace protego
