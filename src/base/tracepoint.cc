#include "src/base/tracepoint.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/base/result.h"
#include "src/base/strings.h"

namespace protego {

const char* TracepointName(TracepointId tp) {
  switch (tp) {
    case TracepointId::kSyscall: return "syscall";
    case TracepointId::kLsmHook: return "lsm_hook";
    case TracepointId::kLsmDecision: return "lsm_decision";
    case TracepointId::kCapable: return "capable";
    case TracepointId::kVfsPermission: return "vfs_permission";
    case TracepointId::kVfsMount: return "vfs_mount";
    case TracepointId::kNetfilter: return "netfilter";
    case TracepointId::kCredChange: return "cred_change";
    case TracepointId::kContextSwitch: return "context_switch";
    case TracepointId::kFileLock: return "file_lock";
    case TracepointId::kFaultInject: return "fault_inject";
    case TracepointId::kCount: break;
  }
  return "?";
}

uint64_t Tracer::BeginSpan(int pid) {
  std::vector<OpenSpan>& stack = open_spans_[pid];
  OpenSpan s;
  s.id = next_span_++;
  s.parent = stack.empty() ? 0 : stack.back().id;
  stack.push_back(s);
  return s.id;
}

void Tracer::EndSpan(int pid, uint64_t span) {
  auto it = open_spans_.find(pid);
  if (it == open_spans_.end()) {
    return;
  }
  std::vector<OpenSpan>& stack = it->second;
  if (!stack.empty() && stack.back().id == span) {
    stack.pop_back();
  }
  if (stack.empty()) {
    open_spans_.erase(it);  // reaped tasks leave no residue in the map
  }
}

uint64_t Tracer::current_span(int pid) const {
  auto it = open_spans_.find(pid);
  if (it == open_spans_.end() || it->second.empty()) {
    return 0;
  }
  return it->second.back().id;
}

TraceEvent& Tracer::Emit(TracepointId tp, int pid) {
  auto it = open_spans_.find(pid);
  const std::vector<OpenSpan>* stack =
      it == open_spans_.end() ? nullptr : &it->second;
  TraceEvent& ev = ring_[seq_ % capacity_];
  ev.seq = seq_++;
  ev.tick = clock_->Now();
  ev.span = stack == nullptr || stack->empty() ? 0 : stack->back().id;
  ev.parent = stack == nullptr || stack->empty() ? 0 : stack->back().parent;
  ev.tp = tp;
  ev.pid = pid;
  ev.code = 0;
  ev.flags = 0;
  ev.a = 0;
  ev.dur = 0;
  ev.sname = "";
  ev.sdetail = "";
  ev.svalue = "";
  ev.comm.clear();
  ev.detail.clear();
  return ev;
}

TraceEvent& Tracer::EmitSpanRoot(TracepointId tp, int pid, uint64_t span) {
  TraceEvent& ev = Emit(tp, pid);
  ev.span = span;
  ev.parent = 0;
  // The span is normally still open (roots are emitted at syscall exit,
  // just before EndSpan), so its parent is on `pid`'s open stack.
  auto sit = open_spans_.find(pid);
  if (sit != open_spans_.end()) {
    const std::vector<OpenSpan>& stack = sit->second;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->id == span) {
        ev.parent = it->parent;
        break;
      }
    }
  }
  return ev;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  size_t count = std::min<uint64_t>(seq_, capacity_);
  out.reserve(count);
  uint64_t first = seq_ - count;
  for (uint64_t s = first; s < seq_; ++s) {
    out.push_back(ring_[s % capacity_]);
  }
  return out;
}

void Tracer::Clear() {
  for (TraceEvent& ev : ring_) {
    ev = TraceEvent{};
  }
  seq_ = 0;
  // next_span_ is NOT reset: spans may still be open (the very write(2)
  // performing the clear), and stale ids must never be reissued.
}

namespace {

std::string RenderEvent(const TraceEvent& ev, bool orphan) {
  std::string line;
  switch (ev.tp) {
    case TracepointId::kSyscall: {
      std::string result = ev.code == 0
                               ? "0"
                               : StrFormat("-1 %s", ErrnoName(static_cast<Errno>(ev.code)));
      if (ev.flags & kTraceFlagSeccompDenied) {
        result += " (seccomp)";
      }
      line = StrFormat("%llu t=%llu span=%llu pid=%d %s %s(%s) = %s dur_ns=%llu",
                       (unsigned long long)ev.seq, (unsigned long long)ev.tick,
                       (unsigned long long)ev.span, ev.pid, ev.comm.c_str(), ev.sname,
                       ev.detail.c_str(), result.c_str(), (unsigned long long)ev.dur);
      break;
    }
    case TracepointId::kLsmHook:
      line = StrFormat("%llu lsm:%s module=%s -> %s", (unsigned long long)ev.seq,
                       ev.sname, ev.sdetail, ev.svalue);
      break;
    case TracepointId::kLsmDecision: {
      const char* cache = (ev.flags & kTraceFlagCacheHit)    ? "hit"
                          : (ev.flags & kTraceFlagCacheMiss) ? "miss"
                                                             : "-";
      line = StrFormat("%llu lsm:%s verdict=%s cache=%s", (unsigned long long)ev.seq,
                       ev.sname, ev.svalue, cache);
      break;
    }
    case TracepointId::kCapable:
      line = StrFormat("%llu capable %s -> %s", (unsigned long long)ev.seq, ev.sname,
                       ev.code != 0 ? "granted" : "denied");
      break;
    case TracepointId::kVfsPermission:
      line = StrFormat("%llu vfs:inode_permission \"%s\" may=0x%llx -> %s",
                       (unsigned long long)ev.seq, ev.detail.c_str(),
                       (unsigned long long)ev.a,
                       ev.code == 0 ? "ok" : ErrnoName(static_cast<Errno>(ev.code)));
      break;
    case TracepointId::kVfsMount:
      line = StrFormat("%llu vfs:%s %s", (unsigned long long)ev.seq, ev.sname,
                       ev.detail.c_str());
      break;
    case TracepointId::kNetfilter:
      line = StrFormat("%llu netfilter chain=%s -> %s", (unsigned long long)ev.seq,
                       ev.sname, ev.sdetail);
      if (!ev.detail.empty()) {
        line += StrFormat(" rule=\"%s\"", ev.detail.c_str());
      }
      break;
    case TracepointId::kCredChange:
      line = StrFormat("%llu cred:%s pid=%d %s", (unsigned long long)ev.seq, ev.sname,
                       ev.pid, ev.detail.c_str());
      break;
    case TracepointId::kContextSwitch:
      // a = schedule step index, code = pid the token came from (0 at start).
      line = StrFormat("%llu sched:switch step=%llu pid=%d->%d %s",
                       (unsigned long long)ev.seq, (unsigned long long)ev.a, ev.code,
                       ev.pid, ev.comm.c_str());
      break;
    case TracepointId::kFileLock:
      // a = inode number, sname = operation, svalue = outcome.
      line = StrFormat("%llu flock:%s \"%s\" ino=%llu -> %s", (unsigned long long)ev.seq,
                       ev.sname, ev.detail.c_str(), (unsigned long long)ev.a, ev.svalue);
      break;
    case TracepointId::kFaultInject:
      // sname = site name, sdetail = injected errno name, a = injection count.
      line = StrFormat("%llu fault:%s inject=%s hit=%llu", (unsigned long long)ev.seq,
                       ev.sname, ev.sdetail, (unsigned long long)ev.a);
      if (!ev.detail.empty()) {
        line += StrFormat(" %s", ev.detail.c_str());
      }
      break;
    case TracepointId::kCount:
      break;
  }
  if (orphan) {
    line += StrFormat(" [orphan span=%llu]", (unsigned long long)ev.span);
  }
  return line;
}

}  // namespace

std::string Tracer::Format() const {
  std::vector<TraceEvent> events = Snapshot();

  // Spans whose root (kSyscall) event is still retained.
  std::unordered_set<uint64_t> rooted;
  for (const TraceEvent& ev : events) {
    if (ev.tp == TracepointId::kSyscall && ev.span != 0) {
      rooted.insert(ev.span);
    }
  }
  // Children of a span: its non-root events, plus nested span roots.
  std::unordered_map<uint64_t, std::vector<size_t>> kids;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    uint64_t under = ev.tp == TracepointId::kSyscall ? ev.parent : ev.span;
    if (under != 0 && rooted.count(under) != 0) {
      kids[under].push_back(i);
    }
  }

  const TraceFilter& f = read_filter_;
  std::string out;
  auto indent = [&out](int depth) { out.append(static_cast<size_t>(depth) * 2, ' '); };

  // Render `idx` and, if it is a span root, its subtree.
  auto render = [&](auto&& self, size_t idx, int depth) -> void {
    const TraceEvent& ev = events[idx];
    bool orphan = ev.tp != TracepointId::kSyscall && ev.span != 0 &&
                  rooted.count(ev.span) == 0;
    indent(depth);
    out += RenderEvent(ev, orphan);
    out += "\n";
    if (ev.tp == TracepointId::kSyscall) {
      auto it = kids.find(ev.span);
      if (it != kids.end()) {
        for (size_t child : it->second) {
          self(self, child, depth + 1);
        }
      }
    }
  };

  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    bool is_root = ev.tp == TracepointId::kSyscall &&
                   (ev.parent == 0 || rooted.count(ev.parent) == 0);
    bool is_standalone = ev.tp != TracepointId::kSyscall &&
                         (ev.span == 0 || rooted.count(ev.span) == 0);
    if (!is_root && !is_standalone) {
      continue;  // rendered under its span root
    }
    if (f.pid >= 0 && ev.pid != f.pid) {
      continue;
    }
    if (!f.syscall.empty() && (ev.tp != TracepointId::kSyscall || f.syscall != ev.sname)) {
      continue;
    }
    if (f.span != 0 && ev.span != f.span) {
      continue;
    }
    render(render, i, 0);
  }
  if (dropped() > 0) {
    out += StrFormat("# dropped: %llu\n", (unsigned long long)dropped());
  }
  if (f.active()) {
    out += StrFormat("# filter: pid=%d syscall=%s span=%llu\n", f.pid,
                     f.syscall.empty() ? "*" : f.syscall.c_str(),
                     (unsigned long long)f.span);
  }
  return out;
}

}  // namespace protego
