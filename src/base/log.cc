#include "src/base/log.h"

#include <cstdio>

namespace protego {

namespace {
constexpr size_t kMaxRecent = 256;
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kAudit: return "AUDIT";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, std::string message) {
  Record record{level, std::move(message)};
  if (recent_.size() >= kMaxRecent) {
    recent_.erase(recent_.begin());
  }
  recent_.push_back(record);
  if (sink_) {
    sink_(record);
    return;
  }
  if (level >= LogLevel::kWarn) {
    std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), record.message.c_str());
  }
}

void Logger::SetSink(std::function<void(const Record&)> sink) { sink_ = std::move(sink); }

void LogDebug(std::string message) { Logger::Get().Log(LogLevel::kDebug, std::move(message)); }
void LogInfo(std::string message) { Logger::Get().Log(LogLevel::kInfo, std::move(message)); }
void LogAudit(std::string message) { Logger::Get().Log(LogLevel::kAudit, std::move(message)); }
void LogWarn(std::string message) { Logger::Get().Log(LogLevel::kWarn, std::move(message)); }
void LogError(std::string message) { Logger::Get().Log(LogLevel::kError, std::move(message)); }

}  // namespace protego
