// Small string utilities shared by the config parsers, the VFS path walker,
// and report formatting. Kept dependency-free (only <string>/<vector>).

#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace protego {

// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Parses a non-negative decimal integer; nullopt on any non-digit or empty.
std::optional<uint64_t> ParseUint(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Simple glob match supporting '*' (any run, including '/') and '?'.
// Used by sudoers command specs and AppArmor-style path profiles.
bool GlobMatch(std::string_view pattern, std::string_view text);

}  // namespace protego

#endif  // SRC_BASE_STRINGS_H_
