#include "src/base/result.h"

namespace protego {

const char* ErrnoName(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kEPERM: return "EPERM";
    case Errno::kENOENT: return "ENOENT";
    case Errno::kESRCH: return "ESRCH";
    case Errno::kEINTR: return "EINTR";
    case Errno::kEIO: return "EIO";
    case Errno::kENXIO: return "ENXIO";
    case Errno::kE2BIG: return "E2BIG";
    case Errno::kENOEXEC: return "ENOEXEC";
    case Errno::kEBADF: return "EBADF";
    case Errno::kECHILD: return "ECHILD";
    case Errno::kEAGAIN: return "EAGAIN";
    case Errno::kENOMEM: return "ENOMEM";
    case Errno::kEACCES: return "EACCES";
    case Errno::kEFAULT: return "EFAULT";
    case Errno::kEBUSY: return "EBUSY";
    case Errno::kEEXIST: return "EEXIST";
    case Errno::kEXDEV: return "EXDEV";
    case Errno::kENODEV: return "ENODEV";
    case Errno::kENOTDIR: return "ENOTDIR";
    case Errno::kEISDIR: return "EISDIR";
    case Errno::kEINVAL: return "EINVAL";
    case Errno::kENFILE: return "ENFILE";
    case Errno::kEMFILE: return "EMFILE";
    case Errno::kENOTTY: return "ENOTTY";
    case Errno::kETXTBSY: return "ETXTBSY";
    case Errno::kEFBIG: return "EFBIG";
    case Errno::kENOSPC: return "ENOSPC";
    case Errno::kESPIPE: return "ESPIPE";
    case Errno::kEROFS: return "EROFS";
    case Errno::kEMLINK: return "EMLINK";
    case Errno::kEPIPE: return "EPIPE";
    case Errno::kERANGE: return "ERANGE";
    case Errno::kEDEADLK: return "EDEADLK";
    case Errno::kENAMETOOLONG: return "ENAMETOOLONG";
    case Errno::kENOSYS: return "ENOSYS";
    case Errno::kENOTEMPTY: return "ENOTEMPTY";
    case Errno::kELOOP: return "ELOOP";
    case Errno::kENOPROTOOPT: return "ENOPROTOOPT";
    case Errno::kEPROTONOSUPPORT: return "EPROTONOSUPPORT";
    case Errno::kEOPNOTSUPP: return "EOPNOTSUPP";
    case Errno::kEAFNOSUPPORT: return "EAFNOSUPPORT";
    case Errno::kEADDRINUSE: return "EADDRINUSE";
    case Errno::kEADDRNOTAVAIL: return "EADDRNOTAVAIL";
    case Errno::kENETUNREACH: return "ENETUNREACH";
    case Errno::kECONNRESET: return "ECONNRESET";
    case Errno::kEISCONN: return "EISCONN";
    case Errno::kENOTCONN: return "ENOTCONN";
    case Errno::kETIMEDOUT: return "ETIMEDOUT";
    case Errno::kECONNREFUSED: return "ECONNREFUSED";
    case Errno::kEHOSTUNREACH: return "EHOSTUNREACH";
  }
  return "E???";
}

const char* ErrnoMessage(Errno e) {
  switch (e) {
    case Errno::kOk: return "Success";
    case Errno::kEPERM: return "Operation not permitted";
    case Errno::kENOENT: return "No such file or directory";
    case Errno::kESRCH: return "No such process";
    case Errno::kEINTR: return "Interrupted system call";
    case Errno::kEIO: return "Input/output error";
    case Errno::kENXIO: return "No such device or address";
    case Errno::kE2BIG: return "Argument list too long";
    case Errno::kENOEXEC: return "Exec format error";
    case Errno::kEBADF: return "Bad file descriptor";
    case Errno::kECHILD: return "No child processes";
    case Errno::kEAGAIN: return "Resource temporarily unavailable";
    case Errno::kENOMEM: return "Cannot allocate memory";
    case Errno::kEACCES: return "Permission denied";
    case Errno::kEFAULT: return "Bad address";
    case Errno::kEBUSY: return "Device or resource busy";
    case Errno::kEEXIST: return "File exists";
    case Errno::kEXDEV: return "Invalid cross-device link";
    case Errno::kENODEV: return "No such device";
    case Errno::kENOTDIR: return "Not a directory";
    case Errno::kEISDIR: return "Is a directory";
    case Errno::kEINVAL: return "Invalid argument";
    case Errno::kENFILE: return "Too many open files in system";
    case Errno::kEMFILE: return "Too many open files";
    case Errno::kENOTTY: return "Inappropriate ioctl for device";
    case Errno::kETXTBSY: return "Text file busy";
    case Errno::kEFBIG: return "File too large";
    case Errno::kENOSPC: return "No space left on device";
    case Errno::kESPIPE: return "Illegal seek";
    case Errno::kEROFS: return "Read-only file system";
    case Errno::kEMLINK: return "Too many links";
    case Errno::kEPIPE: return "Broken pipe";
    case Errno::kERANGE: return "Numerical result out of range";
    case Errno::kEDEADLK: return "Resource deadlock would occur";
    case Errno::kENAMETOOLONG: return "File name too long";
    case Errno::kENOSYS: return "Function not implemented";
    case Errno::kENOTEMPTY: return "Directory not empty";
    case Errno::kELOOP: return "Too many levels of symbolic links";
    case Errno::kENOPROTOOPT: return "Protocol not available";
    case Errno::kEPROTONOSUPPORT: return "Protocol not supported";
    case Errno::kEOPNOTSUPP: return "Operation not supported";
    case Errno::kEAFNOSUPPORT: return "Address family not supported by protocol";
    case Errno::kEADDRINUSE: return "Address already in use";
    case Errno::kEADDRNOTAVAIL: return "Cannot assign requested address";
    case Errno::kENETUNREACH: return "Network is unreachable";
    case Errno::kECONNRESET: return "Connection reset by peer";
    case Errno::kEISCONN: return "Transport endpoint is already connected";
    case Errno::kENOTCONN: return "Transport endpoint is not connected";
    case Errno::kETIMEDOUT: return "Connection timed out";
    case Errno::kECONNREFUSED: return "Connection refused";
    case Errno::kEHOSTUNREACH: return "No route to host";
  }
  return "Unknown error";
}

std::optional<Errno> ErrnoFromName(std::string_view name) {
  static constexpr Errno kAll[] = {
      Errno::kOk,           Errno::kEPERM,         Errno::kENOENT,
      Errno::kESRCH,        Errno::kEINTR,         Errno::kEIO,
      Errno::kENXIO,        Errno::kE2BIG,         Errno::kENOEXEC,
      Errno::kEBADF,        Errno::kECHILD,        Errno::kEAGAIN,
      Errno::kENOMEM,       Errno::kEACCES,        Errno::kEFAULT,
      Errno::kEBUSY,        Errno::kEEXIST,        Errno::kEXDEV,
      Errno::kENODEV,       Errno::kENOTDIR,       Errno::kEISDIR,
      Errno::kEINVAL,       Errno::kENFILE,        Errno::kEMFILE,
      Errno::kENOTTY,       Errno::kETXTBSY,       Errno::kEFBIG,
      Errno::kENOSPC,       Errno::kESPIPE,        Errno::kEROFS,
      Errno::kEMLINK,       Errno::kEPIPE,         Errno::kERANGE,
      Errno::kEDEADLK,      Errno::kENAMETOOLONG,  Errno::kENOSYS,
      Errno::kENOTEMPTY,    Errno::kELOOP,         Errno::kENOPROTOOPT,
      Errno::kEPROTONOSUPPORT, Errno::kEOPNOTSUPP, Errno::kEAFNOSUPPORT,
      Errno::kEADDRINUSE,   Errno::kEADDRNOTAVAIL, Errno::kENETUNREACH,
      Errno::kECONNRESET,   Errno::kEISCONN,       Errno::kENOTCONN,
      Errno::kETIMEDOUT,    Errno::kECONNREFUSED,  Errno::kEHOSTUNREACH,
  };
  for (Errno e : kAll) {
    if (name == ErrnoName(e)) {
      return e;
    }
  }
  return std::nullopt;
}

std::string Error::ToString() const {
  std::string out = ErrnoName(code_);
  out += " (";
  out += ErrnoMessage(code_);
  out += ")";
  if (!context_.empty()) {
    out += ": ";
    out += context_;
  }
  return out;
}

}  // namespace protego
