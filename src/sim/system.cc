#include "src/sim/system.h"

#include "src/base/hash.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/lsm/apparmor.h"
#include "src/lsm/capability_module.h"
#include "src/net/ioctl_codes.h"
#include "src/protego/default_rules.h"
#include "src/protego/proc_iface.h"
#include "src/userland/daemon_utils.h"
#include "src/userland/install.h"

namespace protego {

namespace {

// Aborts on bootstrap failure: a half-built machine is useless and every
// caller would just crash later with a worse message.
template <typename T>
void Must(const Result<T>& r, const char* what) {
  if (!r.ok()) {
    LogError(std::string("SimSystem bootstrap: ") + what + ": " + r.error().ToString());
    abort();
  }
}

}  // namespace

const char* SimModeName(SimMode mode) {
  switch (mode) {
    case SimMode::kLinux: return "linux";
    case SimMode::kSetcap: return "setcap";
    case SimMode::kProtego: return "protego";
  }
  return "?";
}

SimSystem::SimSystem(SimMode mode) : mode_(mode) {
  // LSM stack: commoncap first (as on Linux), then AppArmor, then Protego.
  kernel_.lsm().Register(std::make_unique<CapabilityModule>());
  auto apparmor = std::make_unique<AppArmorModule>();
  apparmor_ = apparmor.get();
  kernel_.lsm().Register(std::move(apparmor));
  if (mode_ == SimMode::kProtego) {
    auto lsm = std::make_unique<ProtegoLsm>(&kernel_);
    lsm_ = lsm.get();
    kernel_.lsm().Register(std::move(lsm));
  }

  users_ = {
      {"root", 0, 0, "rootpw", "/bin/sh"},
      {"alice", 1000, 1000, "alicepw", "/bin/sh"},
      {"bob", 1001, 1001, "bobpw", "/bin/sh"},
      {"charlie", 1002, 1002, "charliepw", "/bin/sh"},
      {"exim", kEximUid, 101, "", "/bin/sh"},
      {"www-data", kWwwDataUid, 33, "", "/bin/sh"},
  };

  // Namespace semantics track the kernel version the mode models: the
  // stock baseline is Linux 3.6 (pre-3.8: sandboxing needs setuid root);
  // the Protego system assumes the 3.8+ semantics §4.6 points to.
  kernel_.set_unprivileged_userns_enabled(mode_ == SimMode::kProtego);

  BootstrapFilesystem();
  BootstrapUsers();
  BootstrapConfigs();
  BootstrapDevices();
  BootstrapNetwork();
  BootstrapProcFiles();
  Must(InstallUserland(&kernel_, mode_ == SimMode::kProtego, mode_ == SimMode::kSetcap),
       "userland");

  if (mode_ == SimMode::kProtego) {
    Must(InstallProtegoProcFiles(&kernel_, lsm_), "proc interface");
    InstallDefaultRawSocketRules(&kernel_.net().netfilter());
    auth_ = std::make_unique<AuthService>(&kernel_);
    Must(auth_->Install(), "auth service");
    daemon_ = std::make_unique<MonitorDaemon>(&kernel_);
    Must(daemon_->Start(), "monitor daemon");
  }
}

void SimSystem::BootstrapFilesystem() {
  Vfs& vfs = kernel_.vfs();
  for (const char* dir :
       {"/etc", "/etc/ppp", "/etc/ssh", "/etc/sudoers.d", "/dev", "/proc", "/sys", "/home",
        "/media", "/media/cdrom", "/media/usb", "/var", "/var/run", "/var/run/sudo",
        "/var/mail", "/var/log", "/tmp", "/bin", "/sbin", "/usr", "/usr/bin", "/usr/sbin",
        "/usr/lib", "/mnt"}) {
    Must(vfs.EnsureDirs(dir), dir);
  }
  // World-writable sticky temp dir; group-mail spool dir (§4.4's
  // "file system permissions" technique).
  Must(vfs.Resolve("/tmp"), "/tmp");
  vfs.Resolve("/tmp").value()->inode().mode = kIfDir | 01777;
  Vnode* mail = vfs.Resolve("/var/mail").value();
  mail->inode().gid = kMailGid;
  mail->inode().mode = kIfDir | 0775;
  Must(vfs.CreateFile("/etc/hosts", 0644, kRootUid, kRootGid,
                      "127.0.0.1 localhost\n10.0.0.2 gateway\n"),
       "/etc/hosts");
  Must(vfs.CreateFile("/etc/shells", 0644, kRootUid, kRootGid, "/bin/sh\n/bin/bash\n"),
       "/etc/shells");
  Must(vfs.CreateFile("/etc/ssh/ssh_host_key", 0600, kRootUid, kRootGid,
                      "SIMULATED-HOST-PRIVATE-KEY-0xc0ffee\n"),
       "host key");
  Must(vfs.CreateFile("/var/log/syslog", 0640, kRootUid, kRootGid, ""), "syslog");
  // The at spool: group-writable by `daemon` so the setgid at(1) can queue
  // jobs without any root involvement (§3.1).
  Must(vfs.EnsureDirs("/var/spool/atjobs"), "at spool");
  {
    Vnode* spool = vfs.Resolve("/var/spool/atjobs").value();
    spool->inode().gid = 1;  // daemon
    spool->inode().mode = kIfDir | 0770;
  }
}

void SimSystem::BootstrapUsers() {
  Vfs& vfs = kernel_.vfs();
  // Group database: per-user primary groups plus the shared system groups.
  struct GroupSpec {
    const char* name;
    Gid gid;
    std::vector<std::string> members;  // first member is the group admin
    const char* password;              // newgrp password-protected groups
  };
  std::vector<GroupSpec> groups = {
      {"root", 0, {}, ""},
      {"alice", 1000, {}, ""},
      {"bob", 1001, {}, ""},
      {"charlie", 1002, {}, ""},
      {"exim", 101, {}, ""},
      {"www-data", 33, {}, ""},
      {"daemon", 1, {}, ""},
      {"mail", kMailGid, {"exim"}, ""},
      {"staff", 50, {"alice"}, "staffpw"},  // password-protected (newgrp)
      {"admin", 115, {"alice"}, ""},
  };

  std::vector<PasswdEntry> passwd;
  std::vector<ShadowEntry> shadow;
  std::vector<GroupEntry> group_entries;

  for (const SimUser& u : users_) {
    PasswdEntry p;
    p.name = u.name;
    p.uid = u.uid;
    p.gid = u.gid;
    p.gecos = u.name;
    p.home = u.uid == 0 ? "/root" : "/home/" + u.name;
    p.shell = u.shell;
    passwd.push_back(p);

    ShadowEntry s;
    s.name = u.name;
    s.hash = u.password.empty() ? "!" : CryptPassword(u.password, MakeSalt(u.uid + 7));
    shadow.push_back(s);

    if (u.uid != 0) {
      Must(vfs.EnsureDirs(p.home), "home");
      vfs.Resolve(p.home).value()->inode().uid = u.uid;
      vfs.Resolve(p.home).value()->inode().gid = u.gid;
      // Mail spool: owner + group mail, group-writable so a deprivileged
      // mail server (group mail) can deliver.
      Must(vfs.CreateFile("/var/mail/" + u.name, 0660, u.uid, kMailGid, ""), "spool");
    }
  }
  for (const GroupSpec& g : groups) {
    GroupEntry e;
    e.name = g.name;
    e.gid = g.gid;
    e.members = g.members;
    e.password_hash = g.password[0] == '\0' ? "" : CryptPassword(g.password, MakeSalt(g.gid + 3));
    group_entries.push_back(e);
  }

  // Legacy shared databases (both modes need them; in Protego mode the
  // monitoring daemon keeps them in sync with the fragments).
  Must(vfs.CreateFile("/etc/passwd", 0644, kRootUid, kRootGid, SerializePasswd(passwd)),
       "/etc/passwd");
  Must(vfs.CreateFile("/etc/shadow", 0600, kRootUid, kRootGid, SerializeShadow(shadow)),
       "/etc/shadow");
  Must(vfs.CreateFile("/etc/group", 0644, kRootUid, kRootGid, SerializeGroup(group_entries)),
       "/etc/group");

  if (mode_ == SimMode::kProtego) {
    // Fragmented databases (§4.4): one record per file, owner-writable;
    // the directories are root-owned so users cannot add accounts.
    for (const char* dir : {"/etc/passwds", "/etc/shadows", "/etc/groups"}) {
      Must(vfs.CreateDir(dir, 0755, kRootUid, kRootGid), dir);
    }
    for (const PasswdEntry& p : passwd) {
      Must(vfs.CreateFile("/etc/passwds/" + p.name, 0644, p.uid, p.gid, p.ToLine() + "\n"),
           "passwd fragment");
    }
    for (const ShadowEntry& s : shadow) {
      Uid owner = 0;
      for (const PasswdEntry& p : passwd) {
        if (p.name == s.name) {
          owner = p.uid;
        }
      }
      Must(vfs.CreateFile("/etc/shadows/" + s.name, 0600, owner, owner, s.ToLine() + "\n"),
           "shadow fragment");
    }
    for (const GroupEntry& g : group_entries) {
      // The fragment is owned by the group administrator (first member).
      Uid admin = kRootUid;
      if (!g.members.empty()) {
        for (const PasswdEntry& p : passwd) {
          if (p.name == g.members[0]) {
            admin = p.uid;
          }
        }
      }
      Must(vfs.CreateFile("/etc/groups/" + g.name, 0644, admin, g.gid, g.ToLine() + "\n"),
           "group fragment");
    }
  }
}

void SimSystem::BootstrapConfigs() {
  Vfs& vfs = kernel_.vfs();
  // /etc/fstab: the administrator permits users to mount the CD-ROM and
  // the USB stick; /mnt/backup is root-only.
  Must(vfs.CreateFile("/etc/fstab", 0644, kRootUid, kRootGid,
                      "/dev/sda1 / ext4 defaults\n"
                      "/dev/cdrom /media/cdrom iso9660 ro,user\n"
                      "/dev/sdb1 /media/usb vfat rw,users\n"
                      "/dev/sda2 /mnt/backup ext4 rw\n"
                      "fuse /home/*/mnt fuse rw,user\n"),
       "/etc/fstab");

  // /etc/sudoers: the system delegation policy. The Protego extension
  // rules live in sudoers.d fragments.
  Must(vfs.CreateFile("/etc/sudoers", 0440, kRootUid, kRootGid,
                      "Defaults timestamp_timeout=5\n"
                      "Defaults env_keep=\"PATH TERM HOME USER LANG\"\n"
                      "%admin ALL=(ALL) ALL\n"
                      "bob ALL=(alice) /usr/bin/lpr /home/alice/*\n"
                      "charlie ALL=(root) NOPASSWD: /usr/bin/id\n"),
       "/etc/sudoers");
  // su/login semantics and the policies explicated from other setuid
  // binaries (§4.3: "policies currently encoded in setuid binaries are
  // explicated in additional /etc/sudoers rules").
  Must(vfs.CreateFile("/etc/sudoers.d/protego", 0440, kRootUid, kRootGid,
                      "# su/login: anyone may become a user whose password they know\n"
                      "ALL ALL=(ALL) TARGETPW: ALL\n"
                      "# newgrp: password-protected groups\n"
                      "Group_Auth staff\n"
                      "# ssh-keysign may read the host key without privilege\n"
                      "File_Delegate /usr/lib/ssh-keysign /etc/ssh/ssh_host_key r\n"
                      "# trusted services read shadow fragments\n"
                      "File_Delegate /sbin/protego-auth /etc/shadows/* r\n"
                      "File_Delegate /sbin/protego-auth /etc/groups/* r\n"
                      "File_Delegate /sbin/protego-monitord /etc/shadows/* r\n"
                      "# reading a shadow fragment requires fresh authentication\n"
                      "Reauth_Read /etc/shadows/*\n"),
       "sudoers.d/protego");

  // /etc/bind (§4.1.3): SMTP belongs to exim, HTTP to www-data.
  Must(vfs.CreateFile("/etc/bind", 0644, kRootUid, kRootGid,
                      StrFormat("25 /usr/sbin/eximd %u\n80 /usr/sbin/httpd %u\n", kEximUid,
                                kWwwDataUid)),
       "/etc/bind");

  // /etc/ppp/options (§4.1.2).
  Must(vfs.CreateFile("/etc/ppp/options", 0644, kRootUid, kRootGid,
                      "userroutes\nuserdialout\n"),
       "ppp options");
}

void SimSystem::BootstrapDevices() {
  Vfs& vfs = kernel_.vfs();
  Must(vfs.CreateFile("/dev/null", 0666, kRootUid, kRootGid, ""), "/dev/null");
  Must(vfs.CreateDevice("/dev/sda1", 0660, kRootUid, kRootGid, true, 8, 1), "/dev/sda1");
  Must(vfs.CreateDevice("/dev/sda2", 0660, kRootUid, kRootGid, true, 8, 2), "/dev/sda2");
  Must(vfs.CreateDevice("/dev/sda3", 0660, kRootUid, kRootGid, true, 8, 3), "/dev/sda3");
  Must(vfs.CreateDevice("/dev/cdrom", 0660, kRootUid, kRootGid, true, 11, 0), "/dev/cdrom");
  Must(vfs.CreateDevice("/dev/sdb1", 0660, kRootUid, kRootGid, true, 8, 17), "/dev/sdb1");
  // §4.1.2: Protego makes /dev/ppp more permissive, replacing a capability
  // check with device-file permissions.
  Must(vfs.CreateDevice("/dev/ppp", mode_ == SimMode::kProtego ? 0666 : 0600, kRootUid,
                        kRootGid, false, 108, 0),
       "/dev/ppp");

  // Filesystem images for mountable media.
  kernel_.RegisterFsType("iso9660", [](const std::string& source) -> Result<MountPopulator> {
    if (source != "/dev/cdrom") {
      return Error(Errno::kENODEV, source);
    }
    return MountPopulator([](Vnode* root) {
      Inode readme;
      readme.mode = kIfReg | 0444;
      readme.data = "CD-ROM contents: protego-install-media\n";
      (void)root->AddChild("README", std::move(readme));
    });
  });
  kernel_.RegisterFsType("vfat", [](const std::string& source) -> Result<MountPopulator> {
    if (source != "/dev/sdb1") {
      return Error(Errno::kENODEV, source);
    }
    return MountPopulator([](Vnode* root) {
      Inode photo;
      photo.mode = kIfReg | 0666;
      photo.data = "JFIF photo.jpg\n";
      (void)root->AddChild("photo.jpg", std::move(photo));
    });
  });
  kernel_.RegisterFsType("ext4", [](const std::string& source) -> Result<MountPopulator> {
    (void)source;
    return MountPopulator(nullptr);
  });
  kernel_.RegisterFsType("tmpfs", [](const std::string& source) -> Result<MountPopulator> {
    (void)source;
    return MountPopulator(nullptr);
  });
  kernel_.RegisterFsType("fuse", [](const std::string& source) -> Result<MountPopulator> {
    (void)source;
    return MountPopulator([](Vnode* root) {
      Inode hello;
      hello.mode = kIfReg | 0644;
      hello.data = "fuse says hello\n";
      (void)root->AddChild("hello", std::move(hello));
    });
  });
  kernel_.RegisterFsType("nfs", [](const std::string& source) -> Result<MountPopulator> {
    (void)source;
    return MountPopulator(nullptr);
  });

  // PPP driver (char 108:0): unit allocation, session options, connect.
  ProtegoLsm* lsm = lsm_;
  Kernel* kernel = &kernel_;
  kernel_.RegisterIoctlHandler(108, 0, [kernel, lsm](Task& task, uint32_t request,
                                                     const std::string& arg,
                                                     HookVerdict verdict) -> Result<std::string> {
    bool admin = kernel->Capable(task, Capability::kNetAdmin);
    if (!admin && verdict != HookVerdict::kAllow) {
      return Error(Errno::kEPERM, "ppp configuration requires CAP_NET_ADMIN");
    }
    switch (request) {
      case kPppIocNewUnit: {
        PppChannel& chan = kernel->net().NewPppUnit();
        chan.configured_by = task.cred.ruid;
        return StrFormat("unit=%d", chan.unit);
      }
      case kPppIocSFlags:
      case kPppIocSCompress: {
        auto fields = SplitWhitespace(arg);
        if (fields.size() < 2) {
          return Error(Errno::kEINVAL, "expected: <unit> <option>");
        }
        auto unit = ParseUint(fields[0]);
        PppChannel* chan = unit ? kernel->net().FindPppUnit(static_cast<int>(*unit)) : nullptr;
        if (chan == nullptr) {
          return Error(Errno::kENXIO, "no such ppp unit");
        }
        if (chan->in_use && chan->configured_by != task.cred.ruid && !admin) {
          return Error(Errno::kEBUSY, "ppp unit in use");
        }
        // Unprivileged callers may only set safe session options (§4.1.2).
        if (!admin) {
          // ppp_options() returns a copy of the current policy snapshot's
          // table (RCU accessors are by-value); default options when no LSM.
          PppOptions options;
          if (lsm != nullptr) {
            options = lsm->ppp_options();
          }
          if (!options.IsSafeOption(fields[1])) {
            return Error(Errno::kEPERM, "option '" + fields[1] + "' is privileged");
          }
        }
        chan->configured = true;
        if (fields[1] == "bsdcomp" || fields[1] == "deflate") {
          chan->compression = true;
        }
        return std::string("ok");
      }
      case kPppIocConnect: {
        auto fields = SplitWhitespace(arg);
        if (fields.size() != 3) {
          return Error(Errno::kEINVAL, "expected: <unit> <local> <remote>");
        }
        auto unit = ParseUint(fields[0]);
        PppChannel* chan = unit ? kernel->net().FindPppUnit(static_cast<int>(*unit)) : nullptr;
        if (chan == nullptr) {
          return Error(Errno::kENXIO, "no such ppp unit");
        }
        auto local = ParseIpv4(fields[1]);
        auto remote = ParseIpv4(fields[2]);
        if (!local || !remote) {
          return Error(Errno::kEINVAL, "bad address");
        }
        chan->local_ip = *local;
        chan->remote_ip = *remote;
        chan->in_use = true;
        kernel->net().AddLocalAddress(*local);
        return std::string("connected");
      }
      default:
        return Error(Errno::kENOTTY);
    }
  });

  // Video control state (§4.5). Pre-KMS (Linux mode): a root-only file the
  // setuid X server writes directly. KMS (Protego mode): world-writable
  // because the KERNEL validates and context-switches video state.
  Must(vfs.EnsureDirs("/sys/video"), "/sys/video");
  if (mode_ == SimMode::kLinux) {
    Must(vfs.CreateFile("/sys/video/mode", 0600, kRootUid, kRootGid, "1024x768\n"),
         "video mode");
  } else {
    SyntheticOps kms_ops;
    auto mode_state = std::make_shared<std::string>("1024x768\n");
    kms_ops.read = [mode_state]() { return *mode_state; };
    kms_ops.write = [mode_state](std::string_view data) -> Result<Unit> {
      // KMS validates the requested mode; userspace cannot wedge the card.
      std::string_view body = Trim(data);
      size_t x = body.find('x');
      if (x == std::string_view::npos || !ParseUint(body.substr(0, x)) ||
          !ParseUint(body.substr(x + 1))) {
        return Error(Errno::kEINVAL, "bad video mode");
      }
      *mode_state = std::string(body) + "\n";
      return OkUnit();
    };
    Must(vfs.CreateSynthetic("/sys/video/mode", 0666, std::move(kms_ops)), "video mode");
  }

  // dm-crypt volume: dm-0 is an encrypted /dev/sda3.
  dmcrypt_ = std::make_shared<DmCryptTable>();
  dmcrypt_->AddVolume({"dm-0", "/dev/sda3", "deadbeefcafef00d"});
  Must(InstallDmCrypt(&kernel_, dmcrypt_), "dmcrypt");
}

void SimSystem::BootstrapNetwork() {
  Network& net = kernel_.net();
  net.AddLocalAddress(kSimLocalIp);
  Must(net.routes().Add(RouteEntry{MakeIp(10, 0, 0, 0), 24, 0, "eth0", kRootUid}), "lan route");
  Must(net.routes().Add(RouteEntry{MakeIp(93, 184, 216, 0), 24, kSimGatewayIp, "eth0",
                                   kRootUid}),
       "web route");

  RemoteHost gateway;
  gateway.ip = kSimGatewayIp;
  gateway.name = "gateway";
  gateway.hops_away = 1;
  gateway.udp_echo = {7};
  net.AddRemoteHost(gateway);

  RemoteHost mail_peer;
  mail_peer.ip = kSimMailPeerIp;
  mail_peer.name = "mail-peer";
  mail_peer.hops_away = 1;
  mail_peer.tcp_listening = {25};
  net.AddRemoteHost(mail_peer);

  RemoteHost web;
  web.ip = kSimWebServerIp;
  web.name = "example.com";
  web.hops_away = 4;
  web.tcp_listening = {80, 443};
  net.AddRemoteHost(web);
}

void SimSystem::BootstrapProcFiles() {
  Vfs& vfs = kernel_.vfs();
  Vfs* vfs_ptr = &vfs;
  SyntheticOps mounts_ops;
  mounts_ops.read = [vfs_ptr]() {
    std::string out;
    for (const auto& m : vfs_ptr->mounts()) {
      out += StrFormat("%s %s %s %s %u\n", m->source.c_str(), m->mountpoint.c_str(),
                       m->fstype.c_str(),
                       m->options.empty() ? "defaults" : Join(m->options, ",").c_str(),
                       m->mounter);
    }
    return out;
  };
  Must(vfs.CreateSynthetic("/proc/mounts", 0444, std::move(mounts_ops)), "/proc/mounts");

  Network* net = &kernel_.net();
  SyntheticOps route_ops;
  route_ops.read = [net]() {
    std::string out;
    for (const RouteEntry& e : net->routes().entries()) {
      out += StrFormat("%s/%d %s %s %u\n", IpToString(e.dst).c_str(), e.prefix_len,
                       IpToString(e.gateway).c_str(), e.dev.c_str(), e.added_by);
    }
    return out;
  };
  Must(vfs.CreateSynthetic("/proc/net/route", 0444, std::move(route_ops)), "/proc/net/route");
}

const SimUser* SimSystem::FindUser(const std::string& name) const {
  for (const SimUser& u : users_) {
    if (u.name == name) {
      return &u;
    }
  }
  return nullptr;
}

Task& SimSystem::Login(const std::string& user) {
  const SimUser* u = FindUser(user);
  if (u == nullptr) {
    LogError("SimSystem::Login: no such user " + user);
    abort();
  }
  terminals_.push_back(std::make_unique<Terminal>());
  Cred cred = Cred::ForUser(u->uid, u->gid);
  // Supplementary groups from the group database.
  auto group_file = kernel_.vfs().ReadFile("/etc/group");
  if (group_file.ok()) {
    auto groups = ParseGroup(group_file.value());
    if (groups.ok()) {
      for (const GroupEntry& g : groups.value()) {
        for (const std::string& m : g.members) {
          if (m == user) {
            cred.groups.push_back(g.gid);
          }
        }
      }
    }
  }
  Task& task = kernel_.CreateTask(user + "-shell", cred, terminals_.back().get());
  task.exe_path = "/bin/sh";
  task.cwd = u->uid == 0 ? "/root" : "/home/" + user;
  if (!kernel_.vfs().Resolve(task.cwd).ok()) {
    task.cwd = "/";
  }
  return task;
}

Result<int> SimSystem::Run(Task& session, const std::string& path, std::vector<std::string> argv,
                           std::map<std::string, std::string> env) {
  if (env.find("PATH") == env.end()) {
    env["PATH"] = "/usr/bin:/bin:/usr/sbin:/sbin";
  }
  if (argv.empty()) {
    argv.push_back(path);
  }
  return kernel_.Spawn(session, path, std::move(argv), std::move(env));
}

SimSystem::RunOutput SimSystem::RunCapture(Task& session, const std::string& path,
                                           std::vector<std::string> argv,
                                           std::map<std::string, std::string> env) {
  session.stdout_buf.clear();
  session.stderr_buf.clear();
  RunOutput out;
  auto code = Run(session, path, std::move(argv), std::move(env));
  if (code.ok()) {
    out.exit_code = code.value();
  } else {
    out.error = code.error().code();
  }
  out.out = session.stdout_buf;
  out.err = session.stderr_buf;
  return out;
}

}  // namespace protego
