// SimSystem: a fully-populated simulated machine — users, filesystem,
// devices, network topology, LSM stack, trusted services, and userland —
// bootable in either of two configurations:
//
//   SimMode::kLinux   — the paper's baseline: Linux 3.6 semantics with
//                       AppArmor loaded and the studied binaries setuid root.
//   SimMode::kProtego — the same machine with the Protego LSM, deprivileged
//                       binaries, fragmented credential databases, the
//                       monitoring daemon, and the authentication utility.
//
// Tests, benchmarks, and examples all start from here.

#ifndef SRC_SIM_SYSTEM_H_
#define SRC_SIM_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/lsm/apparmor.h"
#include "src/protego/dmcrypt.h"
#include "src/protego/protego_lsm.h"
#include "src/services/auth_service.h"
#include "src/services/monitor_daemon.h"

namespace protego {

enum class SimMode {
  kLinux,    // Linux 3.6 + AppArmor, studied binaries setuid root
  kSetcap,   // the §3.1 "Capabilities" hardening: setuid bit replaced by
             // per-binary file capabilities (Fedora's RemoveSETUID approach)
  kProtego,  // the paper's system
};

const char* SimModeName(SimMode mode);

// A user account provisioned at boot.
struct SimUser {
  std::string name;
  Uid uid = 0;
  Gid gid = 0;
  std::string password;  // plaintext; hashed into the shadow database
  std::string shell = "/bin/sh";
};

// Well-known simulated addresses.
inline constexpr Ipv4 kSimLocalIp = MakeIp(10, 0, 0, 1);
inline constexpr Ipv4 kSimGatewayIp = MakeIp(10, 0, 0, 2);
inline constexpr Ipv4 kSimMailPeerIp = MakeIp(10, 0, 0, 3);
inline constexpr Ipv4 kSimWebServerIp = MakeIp(93, 184, 216, 34);  // 4 hops away
inline constexpr Ipv4 kSimFarHostIp = MakeIp(203, 0, 113, 9);      // unrouted by default

class SimSystem {
 public:
  explicit SimSystem(SimMode mode);

  SimSystem(const SimSystem&) = delete;
  SimSystem& operator=(const SimSystem&) = delete;

  SimMode mode() const { return mode_; }
  Kernel& kernel() { return kernel_; }
  // The unified syscall entry path (counters, trace ring, seccomp).
  SyscallGate& syscalls() { return kernel_.syscalls(); }
  // The Protego module, or nullptr in Linux mode.
  ProtegoLsm* lsm() { return lsm_; }
  AppArmorModule* apparmor() { return apparmor_; }
  MonitorDaemon* daemon() { return daemon_.get(); }
  AuthService* auth() { return auth_.get(); }
  std::shared_ptr<DmCryptTable> dmcrypt() { return dmcrypt_; }

  // Default accounts: alice (1000), bob (1001), charlie (1002), plus the
  // system users exim and www-data. Passwords are "<name>pw".
  const std::vector<SimUser>& users() const { return users_; }
  const SimUser* FindUser(const std::string& name) const;

  // Starts a login session: a shell task for `user` with its own terminal.
  Task& Login(const std::string& user);
  Terminal& TerminalOf(Task& task) { return *task.terminal; }

  // Runs a program as a child of `session` and returns its exit status;
  // stdout/stderr accumulate on the session task.
  Result<int> Run(Task& session, const std::string& path, std::vector<std::string> argv,
                  std::map<std::string, std::string> env = {});

  // Run + return what the child wrote to stdout (clears the buffers first).
  struct RunOutput {
    int exit_code = -1;
    Errno error = Errno::kOk;  // non-kOk when the exec itself failed
    std::string out;
    std::string err;
  };
  RunOutput RunCapture(Task& session, const std::string& path, std::vector<std::string> argv,
                       std::map<std::string, std::string> env = {});

 private:
  void BootstrapFilesystem();
  void BootstrapUsers();
  void BootstrapConfigs();
  void BootstrapDevices();
  void BootstrapNetwork();
  void BootstrapProcFiles();

  SimMode mode_;
  Kernel kernel_;
  ProtegoLsm* lsm_ = nullptr;          // owned by the LSM stack
  AppArmorModule* apparmor_ = nullptr; // owned by the LSM stack
  std::shared_ptr<DmCryptTable> dmcrypt_;
  std::unique_ptr<AuthService> auth_;
  std::unique_ptr<MonitorDaemon> daemon_;
  std::vector<SimUser> users_;
  std::vector<std::unique_ptr<Terminal>> terminals_;
};

}  // namespace protego

#endif  // SRC_SIM_SYSTEM_H_
