// ioctl request codes used by the simulation, with Linux's numeric values
// where they exist so traces read naturally.

#ifndef SRC_NET_IOCTL_CODES_H_
#define SRC_NET_IOCTL_CODES_H_

#include <cstdint>

namespace protego {

// Routing-table ioctls (on sockets).
inline constexpr uint32_t kSiocAddRt = 0x890B;  // SIOCADDRT
inline constexpr uint32_t kSiocDelRt = 0x890C;  // SIOCDELRT

// Interface configuration.
inline constexpr uint32_t kSiocSifFlags = 0x8914;  // SIOCSIFFLAGS (up/down)
inline constexpr uint32_t kSiocSifAddr = 0x8916;   // SIOCSIFADDR

// PPP channel configuration (on /dev/ppp).
inline constexpr uint32_t kPppIocSFlags = 0x40047459;   // PPPIOCSFLAGS
inline constexpr uint32_t kPppIocSCompress = 0x4010744d; // PPPIOCSCOMPRESS
inline constexpr uint32_t kPppIocNewUnit = 0xc004743e;  // PPPIOCNEWUNIT
inline constexpr uint32_t kPppIocConnect = 0x4004743a;  // PPPIOCCONNECT

// Netfilter control (the iptables path; simulation-local codes).
inline constexpr uint32_t kSiocNfAppend = 0x89F0;
inline constexpr uint32_t kSiocNfDelete = 0x89F1;  // arg: comment tag
inline constexpr uint32_t kSiocNfList = 0x89F2;

// Device-mapper (on /dev/mapper/control): the problematic interface that
// returns both the underlying device AND the encryption key (§4 Table 4).
inline constexpr uint32_t kDmTableStatus = 0xc138fd0c;  // DM_TABLE_STATUS

// Symbolic name for a request code, for syscall traces ("ioctl(3, SIOCADDRT)").
inline const char* IoctlName(uint32_t request) {
  switch (request) {
    case kSiocAddRt: return "SIOCADDRT";
    case kSiocDelRt: return "SIOCDELRT";
    case kSiocSifFlags: return "SIOCSIFFLAGS";
    case kSiocSifAddr: return "SIOCSIFADDR";
    case kPppIocSFlags: return "PPPIOCSFLAGS";
    case kPppIocSCompress: return "PPPIOCSCOMPRESS";
    case kPppIocNewUnit: return "PPPIOCNEWUNIT";
    case kPppIocConnect: return "PPPIOCCONNECT";
    case kSiocNfAppend: return "SIOCNFAPPEND";
    case kSiocNfDelete: return "SIOCNFDELETE";
    case kSiocNfList: return "SIOCNFLIST";
    case kDmTableStatus: return "DM_TABLE_STATUS";
    default: return "IOC_UNKNOWN";
  }
}

}  // namespace protego

#endif  // SRC_NET_IOCTL_CODES_H_
