// The netfilter engine: ordered rule chains evaluated against every packet.
//
// Includes the paper's ~100-line extension for raw sockets (§4.1.1): rules
// can match on whether a packet was constructed via a raw/packet socket and
// on whether its claimed TCP/UDP source port is owned by a different user's
// socket (the spoofing case Protego's default ruleset drops).

#ifndef SRC_NET_NETFILTER_H_
#define SRC_NET_NETFILTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/attribution.h"
#include "src/base/tracepoint.h"
#include "src/fault/fault.h"
#include "src/net/packet.h"

namespace protego {

enum class NfChain {
  kOutput,
  kInput,
};

enum class NfVerdict {
  kAccept,
  kDrop,
};

// Rule match criteria; unset fields match anything.
struct NfMatch {
  std::optional<int> l4_proto;
  std::optional<int> icmp_type;
  std::optional<uint16_t> dst_port_min;
  std::optional<uint16_t> dst_port_max;
  std::optional<Uid> sender_uid;

  // --- Protego raw-socket extensions ---
  // Match only packets built through raw/packet sockets.
  std::optional<bool> from_raw_socket;
  // Match packets whose TCP/UDP source port is bound by a socket belonging
  // to a different uid than the sender (spoofing attempt).
  bool src_port_owned_by_other = false;
};

struct NfRule {
  NfChain chain = NfChain::kOutput;
  NfMatch match;
  NfVerdict verdict = NfVerdict::kAccept;
  std::string comment;
};

class Netfilter {
 public:
  // Resolves (proto, port) to the uid owning a bound socket, if any.
  // Installed by the Network so the spoofing match can consult port state.
  using PortOwnerFn = std::function<std::optional<Uid>(int proto, uint16_t port)>;

  void set_port_owner_fn(PortOwnerFn fn) { port_owner_ = std::move(fn); }

  // Attaches the kernel-wide tracer: every Evaluate() emits a kNetfilter
  // event (chain, verdict, matched rule) under the calling syscall's span.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Per-layer latency attribution: chain evaluation runs under a
  // `netfilter` frame.
  void set_profiler(LayerProfiler* profiler) { profiler_ = profiler; }

  // Attaches the fault-injection registry. A fault at the netfilter_eval
  // site makes the chain fail CLOSED: the packet is dropped without
  // consulting any rule (counted in fail_closed_drops()).
  void set_faults(FaultRegistry* faults) { faults_ = faults; }

  // Appends a rule to its chain (iptables -A).
  void Append(NfRule rule);

  // Inserts at the head of its chain (iptables -I).
  void Insert(NfRule rule);

  // Removes all rules whose comment equals `comment`; returns count.
  int DeleteByComment(const std::string& comment);

  void Flush();
  size_t RuleCount(NfChain chain) const;

  // Returns a copy so callers never iterate concurrently with a rule edit.
  std::vector<NfRule> rules() const {
    std::shared_lock<std::shared_mutex> lk(rules_mu_);
    return rules_;
  }

  // Runs `packet` through `chain`; first matching rule decides, default
  // policy ACCEPT.
  NfVerdict Evaluate(NfChain chain, const Packet& packet) const;

  // One rule per line, in evaluation order (iptables -L).
  std::string ListRules() const;

  // Counters for tests/benchmarks.
  uint64_t evaluated() const { return evaluated_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  // Packets dropped because a fault was injected mid-evaluation (subset of
  // dropped()).
  uint64_t fail_closed_drops() const {
    return fail_closed_drops_.load(std::memory_order_relaxed);
  }

 private:
  bool Matches(const NfMatch& match, const Packet& packet) const;

  const char* ChainName(NfChain chain) const;

  // Rule edits (the iptables control path) take rules_mu_ unique; Evaluate
  // walks the chain under a shared lock, so packet evaluation from many
  // task threads proceeds concurrently. The port-owner callback runs with
  // the shared lock held — it re-enters Network, whose recursive lock the
  // calling Send() already owns; Network never calls back into rule edits,
  // so the order Network::mu_ -> rules_mu_ is acyclic.
  mutable std::shared_mutex rules_mu_;
  std::vector<NfRule> rules_;
  PortOwnerFn port_owner_;
  Tracer* tracer_ = nullptr;
  LayerProfiler* profiler_ = nullptr;
  FaultRegistry* faults_ = nullptr;
  mutable std::atomic<uint64_t> evaluated_{0};
  mutable std::atomic<uint64_t> dropped_{0};
  mutable std::atomic<uint64_t> fail_closed_drops_{0};
};

// Wire grammar for rules crossing the kernel boundary (the iptables
// control path). Token form, e.g.:
//   "chain=OUTPUT proto=udp dport=33434: raw=1 verdict=DROP comment=x"
// dport accepts "min:max", "min:" (open top), or a single port.
Result<NfRule> ParseNfRule(std::string_view spec);
std::string SerializeNfRule(const NfRule& rule);

}  // namespace protego

#endif  // SRC_NET_NETFILTER_H_
