// IPv4 routing table with longest-prefix-match lookup and the overlap
// ("conflict") test Protego's ioctl hook applies to route additions from
// unprivileged pppd sessions (§4.1.2).

#ifndef SRC_NET_ROUTING_H_
#define SRC_NET_ROUTING_H_

#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/net/packet.h"

namespace protego {

struct RouteEntry {
  Ipv4 dst = 0;          // network address
  int prefix_len = 0;    // 0..32 (0 = default route)
  Ipv4 gateway = 0;      // 0 = directly connected
  std::string dev;       // outgoing interface ("eth0", "ppp0")
  Uid added_by = kRootUid;

  std::string ToString() const;
};

class RoutingTable {
 public:
  // True if `candidate` overlaps any existing route: one network contains
  // the other. This is the paper's definition of a conflicting route — a new
  // PPP route may only cover address space that was previously unreachable.
  bool Conflicts(const RouteEntry& candidate) const;

  // Appends a route. EEXIST on an exact (dst,prefix) duplicate.
  Result<Unit> Add(RouteEntry entry);

  // Removes the exact (dst,prefix) route. ESRCH if absent (Linux uses
  // ESRCH for missing routes).
  Result<Unit> Remove(Ipv4 dst, int prefix_len);

  // Longest-prefix-match; nullopt when unroutable.
  std::optional<RouteEntry> Lookup(Ipv4 dst) const;

  // Returns a copy: callers iterate without holding the table lock, so a
  // concurrent route add/remove cannot invalidate their iterators.
  std::vector<RouteEntry> entries() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return entries_;
  }
  void Clear() {
    std::unique_lock<std::shared_mutex> lk(mu_);
    entries_.clear();
  }

  static bool PrefixContains(Ipv4 net, int prefix_len, Ipv4 addr);

 private:
  // Readers (Conflicts/Lookup/entries) take shared; mutators take unique.
  // Note Protego's check-then-add across two acquisitions (Conflicts in the
  // ioctl hook, Add in the handler) is itself a TOCTTOU window — that is the
  // semantic race the corpus exercises; the lock only keeps memory safe.
  mutable std::shared_mutex mu_;
  std::vector<RouteEntry> entries_;
};

// Parses dotted-quad "a.b.c.d"; nullopt on malformed input.
std::optional<Ipv4> ParseIpv4(std::string_view s);

// Parses "a.b.c.d[/prefix]" (default /32).
Result<std::pair<Ipv4, int>> ParseDstSpec(std::string_view s);

// Parses a SIOCADDRT argument "dst[/prefix] gateway dev".
Result<RouteEntry> ParseRouteSpec(std::string_view arg);

}  // namespace protego

#endif  // SRC_NET_ROUTING_H_
