#include "src/net/routing.h"

#include "src/base/strings.h"

namespace protego {

std::string RouteEntry::ToString() const {
  return StrFormat("%s/%d via %s dev %s", IpToString(dst).c_str(), prefix_len,
                   IpToString(gateway).c_str(), dev.c_str());
}

bool RoutingTable::PrefixContains(Ipv4 net, int prefix_len, Ipv4 addr) {
  if (prefix_len == 0) {
    return true;
  }
  uint32_t mask = prefix_len >= 32 ? 0xffffffffu : ~((uint32_t{1} << (32 - prefix_len)) - 1);
  return (net & mask) == (addr & mask);
}

bool RoutingTable::Conflicts(const RouteEntry& candidate) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  for (const RouteEntry& e : entries_) {
    int shorter = std::min(e.prefix_len, candidate.prefix_len);
    if (PrefixContains(e.dst, shorter, candidate.dst) ||
        PrefixContains(candidate.dst, shorter, e.dst)) {
      return true;
    }
  }
  return false;
}

Result<Unit> RoutingTable::Add(RouteEntry entry) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  for (const RouteEntry& e : entries_) {
    if (e.dst == entry.dst && e.prefix_len == entry.prefix_len) {
      return Error(Errno::kEEXIST, entry.ToString());
    }
  }
  entries_.push_back(std::move(entry));
  return OkUnit();
}

Result<Unit> RoutingTable::Remove(Ipv4 dst, int prefix_len) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->dst == dst && it->prefix_len == prefix_len) {
      entries_.erase(it);
      return OkUnit();
    }
  }
  return Error(Errno::kESRCH, "no such route");
}

std::optional<RouteEntry> RoutingTable::Lookup(Ipv4 dst) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  const RouteEntry* best = nullptr;
  for (const RouteEntry& e : entries_) {
    if (PrefixContains(e.dst, e.prefix_len, dst)) {
      if (best == nullptr || e.prefix_len > best->prefix_len) {
        best = &e;
      }
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return *best;
}

}  // namespace protego

namespace protego {

std::optional<Ipv4> ParseIpv4(std::string_view s) {
  std::vector<std::string> quads = Split(s, '.');
  if (quads.size() != 4) {
    return std::nullopt;
  }
  Ipv4 ip = 0;
  for (const std::string& q : quads) {
    auto v = ParseUint(q);
    if (!v || *v > 255) {
      return std::nullopt;
    }
    ip = (ip << 8) | static_cast<Ipv4>(*v);
  }
  return ip;
}

Result<std::pair<Ipv4, int>> ParseDstSpec(std::string_view s) {
  std::vector<std::string> parts = Split(s, '/');
  if (parts.empty() || parts.size() > 2) {
    return Error(Errno::kEINVAL, "dst spec: " + std::string(s));
  }
  auto ip = ParseIpv4(parts[0]);
  if (!ip) {
    return Error(Errno::kEINVAL, "dst spec: " + std::string(s));
  }
  int prefix = 32;
  if (parts.size() == 2) {
    auto p = ParseUint(parts[1]);
    if (!p || *p > 32) {
      return Error(Errno::kEINVAL, "dst spec: " + std::string(s));
    }
    prefix = static_cast<int>(*p);
  }
  return std::make_pair(*ip, prefix);
}

Result<RouteEntry> ParseRouteSpec(std::string_view arg) {
  std::vector<std::string> fields = SplitWhitespace(arg);
  if (fields.size() != 3) {
    return Error(Errno::kEINVAL, "route spec: " + std::string(arg));
  }
  ASSIGN_OR_RETURN(auto dst, ParseDstSpec(fields[0]));
  auto gw = ParseIpv4(fields[1]);
  if (!gw) {
    return Error(Errno::kEINVAL, "route spec: " + std::string(arg));
  }
  RouteEntry route;
  route.dst = dst.first;
  route.prefix_len = dst.second;
  route.gateway = *gw;
  route.dev = fields[2];
  return route;
}

}  // namespace protego
