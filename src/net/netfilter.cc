#include "src/net/netfilter.h"

#include <algorithm>

#include "src/base/strings.h"

namespace protego {

std::string IpToString(Ipv4 ip) {
  return StrFormat("%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff, (ip >> 8) & 0xff,
                   ip & 0xff);
}

std::string Packet::ToString() const {
  std::string proto;
  switch (l4_proto) {
    case kProtoIcmp: proto = StrFormat("icmp(type=%d)", icmp_type); break;
    case kProtoTcp: proto = "tcp"; break;
    case kProtoUdp: proto = "udp"; break;
    case kProtoArp: proto = "arp"; break;
    default: proto = StrFormat("proto=%d", l4_proto); break;
  }
  return StrFormat("%s %s:%u -> %s:%u uid=%u%s", proto.c_str(), IpToString(src_ip).c_str(),
                   src_port, IpToString(dst_ip).c_str(), dst_port, sender_uid,
                   from_raw_socket ? " raw" : "");
}

void Netfilter::Append(NfRule rule) {
  std::unique_lock<std::shared_mutex> lk(rules_mu_);
  rules_.push_back(std::move(rule));
}

void Netfilter::Insert(NfRule rule) {
  std::unique_lock<std::shared_mutex> lk(rules_mu_);
  rules_.insert(rules_.begin(), std::move(rule));
}

int Netfilter::DeleteByComment(const std::string& comment) {
  std::unique_lock<std::shared_mutex> lk(rules_mu_);
  size_t before = rules_.size();
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const NfRule& r) { return r.comment == comment; }),
               rules_.end());
  return static_cast<int>(before - rules_.size());
}

void Netfilter::Flush() {
  std::unique_lock<std::shared_mutex> lk(rules_mu_);
  rules_.clear();
}

size_t Netfilter::RuleCount(NfChain chain) const {
  std::shared_lock<std::shared_mutex> lk(rules_mu_);
  size_t n = 0;
  for (const NfRule& r : rules_) {
    if (r.chain == chain) {
      ++n;
    }
  }
  return n;
}

bool Netfilter::Matches(const NfMatch& match, const Packet& packet) const {
  // Raw-socket scoping first: it rejects most (rule, packet) pairs with one
  // compare, keeping the raw-socket ruleset nearly free for normal traffic.
  if (match.from_raw_socket && *match.from_raw_socket != packet.from_raw_socket) {
    return false;
  }
  if (match.l4_proto && *match.l4_proto != packet.l4_proto) {
    return false;
  }
  if (match.icmp_type && (packet.l4_proto != kProtoIcmp || *match.icmp_type != packet.icmp_type)) {
    return false;
  }
  if (match.dst_port_min && packet.dst_port < *match.dst_port_min) {
    return false;
  }
  if (match.dst_port_max && packet.dst_port > *match.dst_port_max) {
    return false;
  }
  if (match.sender_uid && *match.sender_uid != packet.sender_uid) {
    return false;
  }
  if (match.src_port_owned_by_other) {
    if (packet.l4_proto != kProtoTcp && packet.l4_proto != kProtoUdp) {
      return false;
    }
    if (!port_owner_) {
      return false;
    }
    std::optional<Uid> owner = port_owner_(packet.l4_proto, packet.src_port);
    if (!owner || *owner == packet.sender_uid) {
      return false;
    }
  }
  return true;
}

const char* Netfilter::ChainName(NfChain chain) const {
  return chain == NfChain::kOutput ? "OUTPUT" : "INPUT";
}

NfVerdict Netfilter::Evaluate(NfChain chain, const Packet& packet) const {
  LayerScope netfilter_scope(profiler_, Layer::kNetfilter);
  evaluated_.fetch_add(1, std::memory_order_relaxed);
  // Fail closed: if chain evaluation faults, the packet is dropped — a
  // filtering layer that cannot decide must not pass traffic.
  if (faults_ != nullptr && faults_->any_enabled() &&
      faults_->Evaluate(FaultSite::kNetfilterEval) != Errno::kOk) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    fail_closed_drops_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr && tracer_->ShouldEmit(TracepointId::kNetfilter)) {
      TraceEvent& ev = tracer_->Emit(TracepointId::kNetfilter, 0);
      ev.sname = ChainName(chain);
      ev.sdetail = "DROP";
      ev.flags |= kTraceFlagDenied;
      ev.detail = "(fail-closed: fault injected)";
    }
    return NfVerdict::kDrop;
  }
  std::shared_lock<std::shared_mutex> lk(rules_mu_);
  for (const NfRule& rule : rules_) {
    if (rule.chain != chain) {
      continue;
    }
    if (Matches(rule.match, packet)) {
      if (rule.verdict == NfVerdict::kDrop) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      if (tracer_ != nullptr && tracer_->ShouldEmit(TracepointId::kNetfilter)) {
        TraceEvent& ev = tracer_->Emit(TracepointId::kNetfilter, 0);
        ev.sname = ChainName(chain);
        ev.sdetail = rule.verdict == NfVerdict::kDrop ? "DROP" : "ACCEPT";
        if (rule.verdict == NfVerdict::kDrop) {
          ev.flags |= kTraceFlagDenied;
        }
        ev.detail = rule.comment;
      }
      return rule.verdict;
    }
  }
  if (tracer_ != nullptr && tracer_->ShouldEmit(TracepointId::kNetfilter)) {
    TraceEvent& ev = tracer_->Emit(TracepointId::kNetfilter, 0);
    ev.sname = ChainName(chain);
    ev.sdetail = "ACCEPT";
    ev.detail = "(default policy)";
  }
  return NfVerdict::kAccept;  // default policy
}

std::string Netfilter::ListRules() const {
  std::shared_lock<std::shared_mutex> lk(rules_mu_);
  std::string out;
  for (const NfRule& rule : rules_) {
    out += SerializeNfRule(rule);
    out += "\n";
  }
  return out;
}

std::string SerializeNfRule(const NfRule& rule) {
  std::string out = "chain=";
  out += rule.chain == NfChain::kOutput ? "OUTPUT" : "INPUT";
  const NfMatch& m = rule.match;
  if (m.l4_proto) {
    switch (*m.l4_proto) {
      case kProtoIcmp: out += " proto=icmp"; break;
      case kProtoTcp: out += " proto=tcp"; break;
      case kProtoUdp: out += " proto=udp"; break;
      case kProtoArp: out += " proto=arp"; break;
      default: out += StrFormat(" proto=%d", *m.l4_proto); break;
    }
  }
  if (m.icmp_type) {
    out += StrFormat(" icmptype=%d", *m.icmp_type);
  }
  if (m.dst_port_min || m.dst_port_max) {
    out += StrFormat(" dport=%u:%s", m.dst_port_min.value_or(0),
                     m.dst_port_max ? StrFormat("%u", *m.dst_port_max).c_str() : "");
  }
  if (m.sender_uid) {
    out += StrFormat(" uid=%u", *m.sender_uid);
  }
  if (m.from_raw_socket) {
    out += StrFormat(" raw=%d", *m.from_raw_socket ? 1 : 0);
  }
  if (m.src_port_owned_by_other) {
    out += " spoofed-src=1";
  }
  out += std::string(" verdict=") + (rule.verdict == NfVerdict::kDrop ? "DROP" : "ACCEPT");
  if (!rule.comment.empty()) {
    out += " comment=" + rule.comment;
  }
  return out;
}

Result<NfRule> ParseNfRule(std::string_view spec) {
  NfRule rule;
  bool have_chain = false;
  bool have_verdict = false;
  for (const std::string& token : SplitWhitespace(spec)) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Error(Errno::kEINVAL, "netfilter rule token: " + token);
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "chain") {
      if (value == "OUTPUT") {
        rule.chain = NfChain::kOutput;
      } else if (value == "INPUT") {
        rule.chain = NfChain::kInput;
      } else {
        return Error(Errno::kEINVAL, "netfilter chain: " + value);
      }
      have_chain = true;
    } else if (key == "proto") {
      if (value == "icmp") {
        rule.match.l4_proto = kProtoIcmp;
      } else if (value == "tcp") {
        rule.match.l4_proto = kProtoTcp;
      } else if (value == "udp") {
        rule.match.l4_proto = kProtoUdp;
      } else if (value == "arp") {
        rule.match.l4_proto = kProtoArp;
      } else {
        auto v = ParseUint(value);
        if (!v) {
          return Error(Errno::kEINVAL, "netfilter proto: " + value);
        }
        rule.match.l4_proto = static_cast<int>(*v);
      }
    } else if (key == "icmptype") {
      auto v = ParseUint(value);
      if (!v) {
        return Error(Errno::kEINVAL, "netfilter icmptype: " + value);
      }
      rule.match.icmp_type = static_cast<int>(*v);
    } else if (key == "dport") {
      auto range = Split(value, ':');
      if (range.size() == 1) {
        auto v = ParseUint(range[0]);
        if (!v || *v > 65535) {
          return Error(Errno::kEINVAL, "netfilter dport: " + value);
        }
        rule.match.dst_port_min = static_cast<uint16_t>(*v);
        rule.match.dst_port_max = static_cast<uint16_t>(*v);
      } else if (range.size() == 2) {
        if (!range[0].empty()) {
          auto lo = ParseUint(range[0]);
          if (!lo || *lo > 65535) {
            return Error(Errno::kEINVAL, "netfilter dport: " + value);
          }
          rule.match.dst_port_min = static_cast<uint16_t>(*lo);
        }
        if (!range[1].empty()) {
          auto hi = ParseUint(range[1]);
          if (!hi || *hi > 65535) {
            return Error(Errno::kEINVAL, "netfilter dport: " + value);
          }
          rule.match.dst_port_max = static_cast<uint16_t>(*hi);
        }
      } else {
        return Error(Errno::kEINVAL, "netfilter dport: " + value);
      }
    } else if (key == "uid") {
      auto v = ParseUint(value);
      if (!v) {
        return Error(Errno::kEINVAL, "netfilter uid: " + value);
      }
      rule.match.sender_uid = static_cast<Uid>(*v);
    } else if (key == "raw") {
      rule.match.from_raw_socket = value == "1";
    } else if (key == "spoofed-src") {
      rule.match.src_port_owned_by_other = value == "1";
    } else if (key == "verdict") {
      if (value == "ACCEPT") {
        rule.verdict = NfVerdict::kAccept;
      } else if (value == "DROP") {
        rule.verdict = NfVerdict::kDrop;
      } else {
        return Error(Errno::kEINVAL, "netfilter verdict: " + value);
      }
      have_verdict = true;
    } else if (key == "comment") {
      rule.comment = value;
    } else {
      return Error(Errno::kEINVAL, "netfilter key: " + key);
    }
  }
  if (!have_chain || !have_verdict) {
    return Error(Errno::kEINVAL, "netfilter rule needs chain= and verdict=");
  }
  return rule;
}

}  // namespace protego
