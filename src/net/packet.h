// Packet and address-family model for the simulated network stack.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>
#include <string>

#include "src/vfs/types.h"

namespace protego {

// Address families (Linux values).
inline constexpr int kAfInet = 2;
inline constexpr int kAfPacket = 17;

// Socket types (Linux values).
inline constexpr int kSockStream = 1;
inline constexpr int kSockDgram = 2;
inline constexpr int kSockRaw = 3;

// L4 protocols (Linux IPPROTO_*).
inline constexpr int kProtoIcmp = 1;
inline constexpr int kProtoTcp = 6;
inline constexpr int kProtoUdp = 17;
// Pseudo-protocol for AF_PACKET ARP frames.
inline constexpr int kProtoArp = 0x0806;

// ICMP message types used by the ping/traceroute family.
inline constexpr int kIcmpEchoReply = 0;
inline constexpr int kIcmpDestUnreachable = 3;
inline constexpr int kIcmpEchoRequest = 8;
inline constexpr int kIcmpTimeExceeded = 11;

// IPv4 address as host-order u32. 10.0.0.x is the simulated LAN.
using Ipv4 = uint32_t;

constexpr Ipv4 MakeIp(uint32_t a, uint32_t b, uint32_t c, uint32_t d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

inline constexpr Ipv4 kLocalhostIp = MakeIp(127, 0, 0, 1);

std::string IpToString(Ipv4 ip);

// A simulated network packet carrying the header fields policy cares about,
// plus the sender metadata the netfilter owner/raw-socket extensions match.
struct Packet {
  int l4_proto = 0;  // kProtoIcmp/Tcp/Udp/Arp
  Ipv4 src_ip = 0;
  Ipv4 dst_ip = 0;
  uint16_t src_port = 0;  // TCP/UDP only
  uint16_t dst_port = 0;
  int icmp_type = -1;  // ICMP only
  uint8_t ttl = 64;
  std::string payload;

  // Sender metadata (conntrack-style, consulted by netfilter matches).
  Uid sender_uid = 0;
  bool from_raw_socket = false;  // built by a SOCK_RAW/AF_PACKET socket

  std::string ToString() const;
};

}  // namespace protego

#endif  // SRC_NET_PACKET_H_
