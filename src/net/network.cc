#include "src/net/network.h"

#include <algorithm>

namespace protego {

Network::Network() {
  netfilter_.set_port_owner_fn(
      [this](int proto, uint16_t port) { return PortOwner(proto, port); });
  // Loopback is always routable.
  (void)routes_.Add(RouteEntry{MakeIp(127, 0, 0, 0), 8, 0, "lo", kRootUid});
  local_addrs_.push_back(kLocalhostIp);
}

Socket& Network::CreateSocket(int family, int type, int protocol, Uid owner,
                              const std::string& owner_binary, int netns) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  auto sock = std::make_unique<Socket>();
  sock->id = next_socket_id_++;
  sock->family = family;
  sock->type = type;
  sock->protocol = protocol;
  sock->owner = owner;
  sock->owner_binary = owner_binary;
  sock->netns = netns;
  Socket* raw = sock.get();
  sockets_.emplace(raw->id, std::move(sock));
  return *raw;
}

Socket* Network::FindSocket(int id) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  auto it = sockets_.find(id);
  return it == sockets_.end() ? nullptr : it->second.get();
}

void Network::RefSocket(int id) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  Socket* sock = FindSocket(id);
  if (sock != nullptr) {
    ++sock->refcount;
  }
}

void Network::DestroySocket(int id) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  Socket* sock = FindSocket(id);
  if (sock != nullptr && --sock->refcount <= 0) {
    sockets_.erase(id);
  }
}

Result<Unit> Network::Bind(Socket& sock, uint16_t port) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (port == 0) {
    return Error(Errno::kEINVAL, "bind to port 0");
  }
  int proto = sock.type == kSockStream ? kProtoTcp : kProtoUdp;
  if (PortOwner(proto, port, sock.netns).has_value()) {
    return Error(Errno::kEADDRINUSE);
  }
  sock.bound_port = port;
  return OkUnit();
}

Result<Unit> Network::Listen(Socket& sock) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (sock.type != kSockStream) {
    return Error(Errno::kEOPNOTSUPP);
  }
  if (sock.bound_port == 0) {
    return Error(Errno::kEINVAL, "listen on unbound socket");
  }
  sock.listening = true;
  return OkUnit();
}

std::optional<Uid> Network::PortOwner(int proto, uint16_t port, int netns) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  for (const auto& [id, sock] : sockets_) {
    int sock_proto = sock->type == kSockStream ? kProtoTcp : kProtoUdp;
    if (sock->netns == netns && sock->bound_port == port && sock_proto == proto &&
        (sock->type == kSockStream || sock->type == kSockDgram)) {
      return sock->owner;
    }
  }
  return std::nullopt;
}

Result<Unit> Network::Connect(Socket& sock, Ipv4 dst, uint16_t port) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (sock.type != kSockStream) {
    return Error(Errno::kEOPNOTSUPP);
  }
  if (!IsLocalAddress(dst)) {
    if (!routes_.Lookup(dst).has_value()) {
      return Error(Errno::kENETUNREACH, IpToString(dst));
    }
    const RemoteHost* host = FindHost(dst);
    if (host == nullptr) {
      return Error(Errno::kEHOSTUNREACH, IpToString(dst));
    }
    if (std::find(host->tcp_listening.begin(), host->tcp_listening.end(), port) ==
        host->tcp_listening.end()) {
      return Error(Errno::kECONNREFUSED);
    }
  } else {
    // Local destination: someone must be listening.
    bool found = false;
    for (const auto& [id, other] : sockets_) {
      if (other->listening && other->bound_port == port) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Error(Errno::kECONNREFUSED);
    }
  }
  sock.peer_ip = dst;
  sock.peer_port = port;
  sock.connected = true;
  return OkUnit();
}

bool Network::IsLocalAddress(Ipv4 ip) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  return std::find(local_addrs_.begin(), local_addrs_.end(), ip) != local_addrs_.end();
}

void Network::AddRemoteHost(RemoteHost host) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  hosts_.push_back(std::move(host));
}

const RemoteHost* Network::FindHost(Ipv4 ip) const {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  for (const RemoteHost& host : hosts_) {
    if (host.ip == ip) {
      return &host;
    }
  }
  return nullptr;
}

PppChannel& Network::NewPppUnit() {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  PppChannel chan;
  chan.unit = static_cast<int>(ppp_units_.size());
  ppp_units_.push_back(chan);
  return ppp_units_.back();
}

PppChannel* Network::FindPppUnit(int unit) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (unit < 0 || static_cast<size_t>(unit) >= ppp_units_.size()) {
    return nullptr;
  }
  return &ppp_units_[unit];
}

std::optional<Packet> Network::RemoteRespond(const RemoteHost& host, const Packet& packet) {
  // TTL check first: traceroute probes expire in transit.
  if (packet.ttl < host.hops_away) {
    Packet reply;
    reply.l4_proto = kProtoIcmp;
    reply.icmp_type = kIcmpTimeExceeded;
    // The expiring router is modeled as the first `ttl` hops toward the host.
    reply.src_ip = host.ip - (host.hops_away - packet.ttl);
    reply.dst_ip = packet.src_ip;
    reply.payload = packet.payload;
    return reply;
  }
  switch (packet.l4_proto) {
    case kProtoIcmp:
      if (packet.icmp_type == kIcmpEchoRequest && host.replies_icmp_echo) {
        Packet reply;
        reply.l4_proto = kProtoIcmp;
        reply.icmp_type = kIcmpEchoReply;
        reply.src_ip = host.ip;
        reply.dst_ip = packet.src_ip;
        reply.payload = packet.payload;
        return reply;
      }
      return std::nullopt;
    case kProtoArp:
      if (host.replies_arp) {
        Packet reply;
        reply.l4_proto = kProtoArp;
        reply.src_ip = host.ip;
        reply.dst_ip = packet.src_ip;
        reply.payload = "arp-reply";
        return reply;
      }
      return std::nullopt;
    case kProtoUdp: {
      if (std::find(host.udp_echo.begin(), host.udp_echo.end(), packet.dst_port) !=
          host.udp_echo.end()) {
        Packet reply;
        reply.l4_proto = kProtoUdp;
        reply.src_ip = host.ip;
        reply.dst_ip = packet.src_ip;
        reply.src_port = packet.dst_port;
        reply.dst_port = packet.src_port;
        reply.payload = packet.payload;
        return reply;
      }
      // Closed UDP port: port unreachable (traceroute's terminal signal).
      Packet reply;
      reply.l4_proto = kProtoIcmp;
      reply.icmp_type = kIcmpDestUnreachable;
      reply.src_ip = host.ip;
      reply.dst_ip = packet.src_ip;
      reply.payload = packet.payload;
      return reply;
    }
    default:
      return std::nullopt;
  }
}

void Network::DeliverLocal(const Packet& packet, int netns) {
  // Netfilter tables are per-namespace; fresh sandbox namespaces have none.
  if (netns == 0 && netfilter_.Evaluate(NfChain::kInput, packet) == NfVerdict::kDrop) {
    return;
  }
  for (auto& [id, sock] : sockets_) {
    if (sock->netns != netns) {
      continue;
    }
    bool match = false;
    if (sock->type == kSockRaw || sock->family == kAfPacket) {
      // Raw sockets see matching-protocol traffic (ICMP sniffing for ping).
      match = sock->protocol == 0 || sock->protocol == packet.l4_proto;
    } else {
      int proto = sock->type == kSockStream ? kProtoTcp : kProtoUdp;
      match = proto == packet.l4_proto && sock->bound_port == packet.dst_port;
    }
    if (match) {
      sock->rx_queue.push_back(packet);
      packets_delivered_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Result<Unit> Network::Send(Socket& sock, Packet packet) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  packet.sender_uid = sock.owner;
  packet.from_raw_socket = (sock.type == kSockRaw || sock.family == kAfPacket);
  if (!packet.from_raw_socket && sock.bound_port != 0) {
    packet.src_port = sock.bound_port;
  }
  packets_sent_.fetch_add(1, std::memory_order_relaxed);

  // A sandbox network namespace contains only its own loopback: local
  // delivery within the namespace works, the outside world does not exist
  // (§6: "a fake network with no routes to the outside world").
  if (sock.netns != 0) {
    if (packet.dst_ip == kLocalhostIp) {
      DeliverLocal(packet, sock.netns);
      return OkUnit();
    }
    return Error(Errno::kENETUNREACH, "no routes in this network namespace");
  }

  if (netfilter_.Evaluate(NfChain::kOutput, packet) == NfVerdict::kDrop) {
    // Silent drop, as on Linux: the syscall succeeds, the packet vanishes.
    return OkUnit();
  }

  if (IsLocalAddress(packet.dst_ip)) {
    DeliverLocal(packet, /*netns=*/0);
    return OkUnit();
  }

  if (!routes_.Lookup(packet.dst_ip).has_value()) {
    return Error(Errno::kENETUNREACH, IpToString(packet.dst_ip));
  }

  const RemoteHost* host = FindHost(packet.dst_ip);
  if (host == nullptr) {
    return OkUnit();  // routable but nobody home: packet lost
  }
  std::optional<Packet> reply = RemoteRespond(*host, packet);
  if (reply.has_value()) {
    reply->sender_uid = 0;
    if (netfilter_.Evaluate(NfChain::kInput, *reply) == NfVerdict::kAccept) {
      sock.rx_queue.push_back(std::move(*reply));
      packets_delivered_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return OkUnit();
}

std::optional<Packet> Network::Receive(Socket& sock) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  if (sock.rx_queue.empty()) {
    return std::nullopt;
  }
  Packet p = std::move(sock.rx_queue.front());
  sock.rx_queue.erase(sock.rx_queue.begin());
  return p;
}

}  // namespace protego
