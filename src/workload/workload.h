// Macro workload engine: deterministic, seeded replays of the paper's
// evaluation workloads (Tables 5-7) at traffic scale.
//
// A WorkloadSpec names a syscall MIX — a fixed per-unit op sequence with
// seeded parameters (which header to stat, which recipient to deliver to) —
// plus a task count, a total op budget, and an execution mode. RunWorkload
// boots a SimSystem in the requested mode (stock Linux vs Protego), splits
// the budget into whole units across N concurrent tasks, drives them under
// either the deterministic scheduler or real OS threads, and reports
// throughput plus the per-syscall histogram the gate observed.
//
// Determinism contract: every unit issues exactly OpsPerUnit(mix) syscalls
// (failed ops still go through the gate and are counted issued), every
// task's parameters come from its own splitmix64 stream seeded from
// (spec.seed, task index), and all touched resources — spool directories,
// object files, ports — are task-private. So for a fixed spec the unit
// count, issued-op count, failure count, and syscall profile are identical
// run to run and identical across BOTH exec modes; only wall-clock numbers
// vary. That is what makes the engine usable as a regression gate: the
// overhead table regenerates bit-identically except for timings.
//
// The mixes (per unit):
//   kCompile     make(1)'s profile: 8 stats + 2 header open/read/close +
//                1 compiler spawn + object open/write/close — as alice on
//                both stacks. 18 ops.
//   kWebServe    a static server's profile: bind/close churn, page
//                open/read/close, and a request/response datagram exchange
//                — as root on stock Linux, as www-data under Protego (the
//                paper's deprivileged httpd). 10 ops.
//   kMail        an MTA spool delivery: seteuid to the recipient, write
//                the spool tmp file, rename into place, stat, unlink,
//                seteuid back — as root on stock Linux, as exim under
//                Protego, where both seteuid calls fail EPERM (the
//                transition the paper obviates) and are counted as failed
//                ops. 8 ops.
//   kSetuidBurst the §5 microbenchmark shape: tight seteuid toggles
//                interleaved with getpid and stat — as root on both
//                stacks. 6 ops.

#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/kernel/exec_mode.h"
#include "src/kernel/syscall.h"
#include "src/sim/system.h"

namespace protego::workload {

enum class Mix {
  kCompile = 0,
  kWebServe,
  kMail,
  kSetuidBurst,
};

inline constexpr int kMixCount = 4;

const char* MixName(Mix mix);
std::optional<Mix> MixFromName(std::string_view name);

// Exact syscalls one unit of `mix` issues (the unit bodies are structured
// so failures never short-circuit an op: a failed open still attempts the
// dependent write/close with fd -1, which the gate counts like any EBADF).
uint64_t OpsPerUnit(Mix mix);

struct WorkloadSpec {
  Mix mix = Mix::kCompile;
  int tasks = 8;              // concurrent sessions driving units
  uint64_t total_ops = 100000;  // op budget, rounded DOWN to whole units
                                // per task (tasks * units * OpsPerUnit)
  uint64_t seed = 1;          // parameter streams + DetScheduler seed
  ExecMode exec_mode = ExecMode::kDeterministic;

  // --- Observability knobs ----------------------------------------------------
  // Default: tracer fully off during the measured region (the engine prices
  // the syscall machinery, not trace formatting). With `trace` on, the
  // tracer stays enabled with every point's head-sampling rate set to
  // `sample_rate` (0 = keep everything) and its streams seeded from `seed`,
  // so sampling decisions replay run to run.
  bool trace = false;
  uint32_t sample_rate = 0;
  // Arms the per-layer latency profiler over the measured region; the
  // report's attrib_* fields are filled from it.
  bool profile = false;
};

// Per-syscall call counts harvested from the gate over the timed region.
// Includes syscalls nested under Spawn/Execve (the compile mix's compiler
// children), so total() >= the workload-level issued count.
struct SyscallProfile {
  std::array<uint64_t, kSysnoSlots> calls{};

  uint64_t total() const;
  size_t distinct() const;  // syscall numbers with a nonzero count
  void Merge(const SyscallProfile& other);
  bool operator==(const SyscallProfile& other) const { return calls == other.calls; }

  // "stat:8000 open:3000 ..." — nonzero entries, descending by count.
  std::string Format() const;
  // {"stat": 8000, "open": 3000, ...} — nonzero entries, ascending sysno.
  std::string FormatJson() const;
};

struct MixReport {
  Mix mix = Mix::kCompile;
  SimMode sim_mode = SimMode::kLinux;
  ExecMode exec_mode = ExecMode::kDeterministic;
  int tasks = 0;
  uint64_t seed = 0;
  uint64_t units = 0;       // work units completed (messages, TUs, requests)
  uint64_t ops_issued = 0;  // workload-level syscall attempts (== units * OpsPerUnit)
  uint64_t ops_failed = 0;  // attempts that returned an error
  double wall_seconds = 0;
  double ops_per_sec = 0;    // ops_issued / wall_seconds
  double units_per_sec = 0;  // units / wall_seconds
  SyscallProfile profile;

  // Observability capture (meaningful when the spec's knobs were on).
  std::string metrics_text;        // full Prometheus export, post-run (trace||profile)
  uint64_t trace_sampled_out = 0;  // events dropped by head sampling
  uint64_t attrib_self_ns = 0;     // summed per-layer self time
  uint64_t attrib_root_ns = 0;     // inclusive time of gate-root frames;
                                   // telescoping: self ≈ root when profiled
};

// Boots SimSystem(sim_mode), provisions the mix's fixtures untimed (spool
// dirs, headers, pages, persistent sockets), then runs the spec's budget
// across `tasks` sessions under the spec's scheduler and measures only the
// unit-driving region.
MixReport RunWorkload(const WorkloadSpec& spec, SimMode sim_mode);

// Paper-style relative overhead from two throughputs, in percent: positive
// means the Protego stack is slower. 0 when the baseline is degenerate.
double RelativeOverheadPct(double stock_ops_per_sec, double protego_ops_per_sec);

// One row of the paper-style table: the same spec run on the stock stack
// (SimMode::kLinux) and under Protego, with the throughput delta.
struct OverheadRow {
  MixReport stock;
  MixReport protego;
  double overhead_pct = 0;  // RelativeOverheadPct over ops_per_sec
};

OverheadRow CompareStacks(const WorkloadSpec& spec);

}  // namespace protego::workload

#endif  // SRC_WORKLOAD_WORKLOAD_H_
