#include "src/workload/workload.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/base/clock.h"
#include "src/conc/scheduler.h"
#include "src/conc/thread_sched.h"
#include "src/net/packet.h"

namespace protego::workload {
namespace {

// Same generator as the deterministic scheduler and the fault registry:
// each task owns a private stream seeded from (spec.seed, task index), so
// parameter draws are independent of scheduling order.
uint64_t NextRand(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t TaskSeed(uint64_t seed, int task_index) {
  return seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(task_index + 1));
}

// All state one driving task owns: its session, its parameter stream, its
// private resources (ports, spool dir, object file), and its op ledger.
struct TaskCtx {
  Task* session = nullptr;
  uint64_t rng = 0;
  Uid home_euid = 0;
  // kWebServe: persistent server/client sockets, set up untimed.
  int srv_fd = -1;
  int cli_fd = -1;
  uint16_t srv_port = 0;
  uint16_t cli_port = 0;
  uint16_t churn_port = 0;
  // kMail: task-private 1777 spool directory.
  std::string spool_tmp;
  std::string spool_final;
  // kCompile: task-private object file.
  std::string obj_path;

  uint64_t units = 0;
  uint64_t issued = 0;
  uint64_t failed = 0;

  template <typename T>
  void Count(const Result<T>& r) {
    ++issued;
    if (!r.ok()) {
      ++failed;
    }
  }
  void CountOk(bool ok) {
    ++issued;
    if (!ok) {
      ++failed;
    }
  }
  // Open variant: a failed open still hands -1 to the dependent ops so the
  // unit's op count never depends on outcomes.
  int CountFd(const Result<int>& r) {
    ++issued;
    if (!r.ok()) {
      ++failed;
      return -1;
    }
    return r.value();
  }
};

const char* SessionUser(Mix mix, SimMode sim_mode) {
  switch (mix) {
    case Mix::kCompile:
      return "alice";
    case Mix::kWebServe:
      // The paper's web story: httpd runs as root on stock Linux (it must
      // bind privileged ports), directly as www-data under Protego.
      return sim_mode == SimMode::kLinux ? "root" : "www-data";
    case Mix::kMail:
      // Likewise exim: root on stock Linux, the deprivileged exim user
      // under Protego.
      return sim_mode == SimMode::kLinux ? "root" : "exim";
    case Mix::kSetuidBurst:
      return "root";
  }
  return "root";
}

// --- Unit bodies (exactly OpsPerUnit syscall attempts each) -----------------

// make(1): stat the include closure, read a couple of headers, run the
// compiler driver, write the object file. 18 ops.
void CompileUnit(SimSystem& sys, Kernel& k, TaskCtx& t) {
  Task& s = *t.session;
  for (int i = 0; i < 8; ++i) {
    const auto n = NextRand(t.rng) % 6;
    t.Count(k.Stat(s, "/usr/include/hdr" + std::to_string(n) + ".h"));
  }
  for (int i = 0; i < 2; ++i) {
    const auto n = NextRand(t.rng) % 6;
    int fd = t.CountFd(k.Open(s, "/usr/include/hdr" + std::to_string(n) + ".h", kORdOnly));
    t.Count(k.Read(s, fd));
    t.Count(k.Close(s, fd));
  }
  s.stdout_buf.clear();  // bound the session buffer across thousands of units
  t.Count(k.Spawn(s, "/bin/sh", {"sh", "-c", "cc"}, {}));
  int ofd = t.CountFd(k.Open(s, t.obj_path, kOWrOnly | kOCreat, 0644));
  t.Count(k.Write(s, ofd, "object-code"));
  t.Count(k.Close(s, ofd));
  (void)sys;
}

// Static file serving: bind/close churn on a task-private port, a page
// open/read/close, and a request/response datagram exchange between the
// task's persistent client and server sockets. 10 ops.
void WebServeUnit(SimSystem& sys, Kernel& k, TaskCtx& t) {
  Task& s = *t.session;
  int churn = t.CountFd(k.SocketCall(s, kAfInet, kSockDgram, 0));
  t.Count(k.BindCall(s, churn, t.churn_port));
  t.Count(k.Close(s, churn));

  const auto n = NextRand(t.rng) % 4;
  int fd = t.CountFd(k.Open(s, "/var/www/page" + std::to_string(n) + ".html", kORdOnly));
  t.Count(k.Read(s, fd));
  t.Count(k.Close(s, fd));

  Packet request;
  request.l4_proto = kProtoUdp;
  request.dst_ip = kLocalhostIp;
  request.dst_port = t.srv_port;
  request.payload = "GET /page" + std::to_string(n) + ".html";
  t.Count(k.SendCall(s, t.cli_fd, request));
  t.Count(k.RecvCall(s, t.srv_fd));
  Packet reply;
  reply.l4_proto = kProtoUdp;
  reply.dst_ip = kLocalhostIp;
  reply.dst_port = t.cli_port;  // known a priori: the reply path never
                                // depends on what recv returned
  reply.payload = std::string(1024, 'R');
  t.Count(k.SendCall(s, t.srv_fd, reply));
  t.Count(k.RecvCall(s, t.cli_fd));
  (void)sys;
}

// MTA spool delivery: become the recipient, write the spool tmp file,
// rename into place, stat, unlink, switch back. Under Protego the session
// is the unprivileged exim user, so both seteuid attempts fail EPERM —
// exactly the transition the paper obviates — and count as failed ops.
// 8 ops.
void MailUnit(SimSystem& sys, Kernel& k, TaskCtx& t) {
  Task& s = *t.session;
  const Uid recipient = static_cast<Uid>(1000 + NextRand(t.rng) % 3);
  t.Count(k.Seteuid(s, recipient));
  int fd = t.CountFd(k.Open(s, t.spool_tmp, kOWrOnly | kOCreat, 0600));
  t.Count(k.Write(s, fd, "Received: by protego-sim; benchmark message body\n"));
  t.Count(k.Close(s, fd));
  t.Count(k.Rename(s, t.spool_tmp, t.spool_final));
  t.Count(k.Stat(s, t.spool_final));
  t.Count(k.Unlink(s, t.spool_final));
  // Return to the MTA's privileged identity. On stock Linux the session IS
  // root, so this restores euid 0 for the next delivery; under Protego the
  // regain-root transition is the second obviated seteuid and fails EPERM.
  t.Count(k.Seteuid(s, 0));
  (void)sys;
}

// Tight credential-transition microburst: seteuid toggles interleaved with
// the cheapest syscalls, pricing the cred-change path itself. 6 ops.
void SetuidBurstUnit(SimSystem& sys, Kernel& k, TaskCtx& t) {
  Task& s = *t.session;
  const Uid target = static_cast<Uid>(1000 + NextRand(t.rng) % 3);
  t.Count(k.Seteuid(s, target));
  t.CountOk(k.GetPid(s) >= 0);
  t.Count(k.Stat(s, "/etc/passwd"));
  t.Count(k.Seteuid(s, t.home_euid));
  t.CountOk(k.GetPid(s) >= 0);
  t.Count(k.Stat(s, "/etc/passwd"));
  (void)sys;
}

void RunUnit(Mix mix, SimSystem& sys, Kernel& k, TaskCtx& t) {
  switch (mix) {
    case Mix::kCompile: CompileUnit(sys, k, t); break;
    case Mix::kWebServe: WebServeUnit(sys, k, t); break;
    case Mix::kMail: MailUnit(sys, k, t); break;
    case Mix::kSetuidBurst: SetuidBurstUnit(sys, k, t); break;
  }
  ++t.units;
}

// Untimed provisioning: fixtures the units read (headers, pages), the
// task-private resources they own (spool dirs, sockets), and the sessions
// themselves. Everything here is excluded from the measured region.
void SetupFixtures(SimSystem& sys, Kernel& k, Mix mix, Task& root,
                   std::vector<TaskCtx>& ctxs) {
  switch (mix) {
    case Mix::kCompile:
      (void)k.vfs().EnsureDirs("/usr/include");
      for (int i = 0; i < 6; ++i) {
        (void)k.WriteWholeFile(root, "/usr/include/hdr" + std::to_string(i) + ".h",
                               std::string(512, 'h'));
      }
      for (size_t t = 0; t < ctxs.size(); ++t) {
        ctxs[t].obj_path = "/tmp/wlobj" + std::to_string(t) + ".o";
      }
      break;
    case Mix::kWebServe: {
      (void)k.vfs().EnsureDirs("/var/www");
      for (int i = 0; i < 4; ++i) {
        (void)k.WriteWholeFile(root, "/var/www/page" + std::to_string(i) + ".html",
                               std::string(1024, 'R'));
      }
      for (size_t t = 0; t < ctxs.size(); ++t) {
        TaskCtx& c = ctxs[t];
        c.srv_port = static_cast<uint16_t>(8000 + t);
        c.cli_port = static_cast<uint16_t>(18000 + t);
        c.churn_port = static_cast<uint16_t>(12000 + t);
        Task& s = *c.session;
        auto srv = k.SocketCall(s, kAfInet, kSockDgram, 0);
        if (srv.ok()) {
          c.srv_fd = srv.value();
          (void)k.BindCall(s, c.srv_fd, c.srv_port);
        }
        auto cli = k.SocketCall(s, kAfInet, kSockDgram, 0);
        if (cli.ok()) {
          c.cli_fd = cli.value();
          (void)k.BindCall(s, c.cli_fd, c.cli_port);
        }
      }
      break;
    }
    case Mix::kMail: {
      (void)k.vfs().EnsureDirs("/var/spool/wl");
      for (size_t t = 0; t < ctxs.size(); ++t) {
        const std::string dir = "/var/spool/wl/q" + std::to_string(t);
        (void)k.vfs().EnsureDirs(dir);
        (void)k.Chmod(root, dir, 01777);
        ctxs[t].spool_tmp = dir + "/in.tmp";
        ctxs[t].spool_final = dir + "/msg";
      }
      break;
    }
    case Mix::kSetuidBurst:
      break;
  }
  (void)sys;
}

}  // namespace

const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kCompile: return "compile";
    case Mix::kWebServe: return "web-serve";
    case Mix::kMail: return "mail";
    case Mix::kSetuidBurst: return "setuid-burst";
  }
  return "?";
}

std::optional<Mix> MixFromName(std::string_view name) {
  for (int i = 0; i < kMixCount; ++i) {
    Mix mix = static_cast<Mix>(i);
    if (name == MixName(mix)) {
      return mix;
    }
  }
  return std::nullopt;
}

uint64_t OpsPerUnit(Mix mix) {
  switch (mix) {
    case Mix::kCompile: return 18;
    case Mix::kWebServe: return 10;
    case Mix::kMail: return 8;
    case Mix::kSetuidBurst: return 6;
  }
  return 0;
}

uint64_t SyscallProfile::total() const {
  uint64_t sum = 0;
  for (uint64_t c : calls) {
    sum += c;
  }
  return sum;
}

size_t SyscallProfile::distinct() const {
  size_t n = 0;
  for (uint64_t c : calls) {
    if (c != 0) {
      ++n;
    }
  }
  return n;
}

void SyscallProfile::Merge(const SyscallProfile& other) {
  for (size_t i = 0; i < calls.size(); ++i) {
    calls[i] += other.calls[i];
  }
}

std::string SyscallProfile::Format() const {
  std::vector<std::pair<uint64_t, Sysno>> rows;
  for (Sysno nr : AllSysnos()) {
    uint64_t c = calls[static_cast<size_t>(nr)];
    if (c != 0) {
      rows.emplace_back(c, nr);
    }
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::string out;
  for (const auto& [count, nr] : rows) {
    if (!out.empty()) {
      out += ' ';
    }
    out += SysnoName(nr);
    out += ':';
    out += std::to_string(count);
  }
  return out;
}

std::string SyscallProfile::FormatJson() const {
  std::string out = "{";
  bool first = true;
  for (Sysno nr : AllSysnos()) {
    uint64_t c = calls[static_cast<size_t>(nr)];
    if (c == 0) {
      continue;
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    out += '"';
    out += SysnoName(nr);
    out += "\": ";
    out += std::to_string(c);
  }
  out += '}';
  return out;
}

MixReport RunWorkload(const WorkloadSpec& spec, SimMode sim_mode) {
  SimSystem sys(sim_mode);
  Kernel& k = sys.kernel();
  // The engine measures the syscall machinery, not trace-string formatting;
  // the tracer's enable-check cost is already priced by BENCH_syscall_gate.
  // With spec.trace the tracer instead runs live under head sampling seeded
  // from the workload seed, so the sampled event stream replays exactly.
  if (spec.trace) {
    k.tracer().set_sample_seed(spec.seed);
    k.tracer().set_all_sample_rates(spec.sample_rate);
  } else {
    k.tracer().set_enabled(false);
  }
  if (spec.profile) {
    k.profiler().set_enabled(true);
  }

  const int tasks = spec.tasks > 0 ? spec.tasks : 1;
  const uint64_t per_unit = OpsPerUnit(spec.mix);
  const uint64_t units_per_task =
      std::max<uint64_t>(1, spec.total_ops / (static_cast<uint64_t>(tasks) * per_unit));

  Task& root = sys.Login("root");
  std::vector<TaskCtx> ctxs(static_cast<size_t>(tasks));
  for (int t = 0; t < tasks; ++t) {
    TaskCtx& c = ctxs[static_cast<size_t>(t)];
    c.session = &sys.Login(SessionUser(spec.mix, sim_mode));
    c.home_euid = c.session->cred.euid;
    c.rng = TaskSeed(spec.seed, t);
  }
  SetupFixtures(sys, k, spec.mix, root, ctxs);

  auto body = [&](int t) {
    TaskCtx& c = ctxs[static_cast<size_t>(t)];
    for (uint64_t u = 0; u < units_per_task; ++u) {
      RunUnit(spec.mix, sys, k, c);
    }
  };

  // Only the unit-driving region is timed and profiled: boot, logins, and
  // fixture provisioning stay outside both the clock and the gate counters.
  k.syscalls().ResetStats();
  uint64_t t0 = 0;
  uint64_t t1 = 0;
  if (spec.exec_mode == ExecMode::kParallel) {
    conc::ThreadScheduler sched;
    k.set_scheduler(&sched);
    t0 = MonotonicNanos();
    for (int t = 0; t < tasks; ++t) {
      sched.StartTask(ctxs[static_cast<size_t>(t)].session->pid, [&body, t] { body(t); });
    }
    sched.Join();
    t1 = MonotonicNanos();
    k.set_scheduler(nullptr);
  } else {
    conc::DetScheduler sched;
    sched.set_mode(conc::SchedMode::kRandom);
    sched.set_seed(spec.seed);
    // Millions of ops: recording one SchedDecision per yield would dwarf
    // the workload itself.
    sched.set_record_decisions(false);
    k.set_scheduler(&sched);
    for (int t = 0; t < tasks; ++t) {
      sched.StartTask(ctxs[static_cast<size_t>(t)].session->pid, [&body, t] { body(t); });
    }
    t0 = MonotonicNanos();
    sched.Run();
    t1 = MonotonicNanos();
    k.set_scheduler(nullptr);
  }

  MixReport report;
  report.mix = spec.mix;
  report.sim_mode = sim_mode;
  report.exec_mode = spec.exec_mode;
  report.tasks = tasks;
  report.seed = spec.seed;
  for (const TaskCtx& c : ctxs) {
    report.units += c.units;
    report.ops_issued += c.issued;
    report.ops_failed += c.failed;
  }
  report.wall_seconds = static_cast<double>(t1 - t0) / 1e9;
  if (report.wall_seconds > 0) {
    report.ops_per_sec = static_cast<double>(report.ops_issued) / report.wall_seconds;
    report.units_per_sec = static_cast<double>(report.units) / report.wall_seconds;
  }
  for (Sysno nr : AllSysnos()) {
    report.profile.calls[static_cast<size_t>(nr)] =
        k.syscalls().stats(nr).calls.load(std::memory_order_relaxed);
  }
  if (spec.trace) {
    report.trace_sampled_out = k.tracer().total_sampled_out();
  }
  if (spec.profile) {
    report.attrib_root_ns = k.profiler().root_ns();
    for (size_t i = 0; i < kLayerCount; ++i) {
      report.attrib_self_ns += k.profiler().Totals(static_cast<Layer>(i)).self_ns;
    }
  }
  if (spec.trace || spec.profile) {
    // Captured after the timed region: the export itself (and its linting
    // in tests) never perturbs the measured throughput.
    report.metrics_text = k.metrics().PrometheusText();
  }
  return report;
}

double RelativeOverheadPct(double stock_ops_per_sec, double protego_ops_per_sec) {
  if (stock_ops_per_sec <= 0) {
    return 0;
  }
  return 100.0 * (stock_ops_per_sec - protego_ops_per_sec) / stock_ops_per_sec;
}

OverheadRow CompareStacks(const WorkloadSpec& spec) {
  OverheadRow row;
  row.stock = RunWorkload(spec, SimMode::kLinux);
  row.protego = RunWorkload(spec, SimMode::kProtego);
  row.overhead_pct = RelativeOverheadPct(row.stock.ops_per_sec, row.protego.ops_per_sec);
  return row;
}

}  // namespace protego::workload
