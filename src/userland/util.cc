#include "src/userland/util.h"

#include "src/base/strings.h"
#include "src/net/ioctl_codes.h"

namespace protego {

FileLockGuard::FileLockGuard(ProcessContext& ctx, const std::string& path, bool exclusive)
    : ctx_(ctx) {
  auto opt_out = ctx.env.find("PROTEGO_NO_FLOCK");
  if (opt_out != ctx.env.end() && opt_out->second == "1") {
    return;
  }
  auto fd = ctx.kernel.Open(ctx.task, path, kORdOnly, 0);
  if (!fd.ok()) {
    return;  // nothing to lock against; the caller's own read will fail
  }
  fd_ = fd.value();
  locked_ = ctx.kernel.Flock(ctx.task, fd_, exclusive ? kLockEx : kLockSh).ok();
}

FileLockGuard::~FileLockGuard() {
  if (fd_ >= 0) {
    if (locked_) {
      (void)ctx_.kernel.Flock(ctx_.task, fd_, kLockUn);
    }
    (void)ctx_.kernel.Close(ctx_.task, fd_);
  }
}

std::optional<PasswdEntry> LookupUser(ProcessContext& ctx, const std::string& name_or_uid) {
  FileLockGuard lock(ctx, "/etc/passwd", /*exclusive=*/false);
  auto content = ctx.kernel.ReadWholeFile(ctx.task, "/etc/passwd");
  if (!content.ok()) {
    return std::nullopt;
  }
  auto entries = ParsePasswd(content.value());
  if (!entries.ok()) {
    return std::nullopt;
  }
  auto as_uid = ParseUint(name_or_uid);
  for (const PasswdEntry& e : entries.value()) {
    if (e.name == name_or_uid || (as_uid && e.uid == *as_uid)) {
      return e;
    }
  }
  return std::nullopt;
}

std::optional<PasswdEntry> LookupUserByUid(ProcessContext& ctx, Uid uid) {
  return LookupUser(ctx, StrFormat("%u", uid));
}

std::optional<GroupEntry> LookupGroup(ProcessContext& ctx, const std::string& name) {
  auto content = ctx.kernel.ReadWholeFile(ctx.task, "/etc/group");
  if (!content.ok()) {
    return std::nullopt;
  }
  auto entries = ParseGroup(content.value());
  if (!entries.ok()) {
    return std::nullopt;
  }
  for (const GroupEntry& e : entries.value()) {
    if (e.name == name) {
      return e;
    }
  }
  return std::nullopt;
}

bool ExploitTriggered(const ProcessContext& ctx, const std::string& cve_id) {
  auto flag = ctx.Flag("exploit");
  if (flag.has_value() && *flag == cve_id) {
    return true;
  }
  auto env = ctx.env.find("EXPLOIT");
  return env != ctx.env.end() && env->second == cve_id;
}

int ExploitPayload(ProcessContext& ctx) {
  Kernel& kernel = ctx.kernel;
  Task& task = ctx.task;
  auto report = [&ctx](const char* action, bool ok) {
    ctx.Out(StrFormat("EXPLOIT %s=%s\n", action, ok ? "ok" : "err"));
  };

  // 1. Overwrite the shared shadow database (change root's password).
  {
    auto r = kernel.WriteWholeFile(task, "/etc/shadow",
                                   "root:$sim$attacker$0000000000000000:0:::::\n");
    report("overwrite_shadow", r.ok());
  }
  // 2. Install a rootkit binary in a trusted directory.
  {
    auto r = kernel.WriteWholeFile(task, "/sbin/rootkit", "\177ELF rootkit", /*append=*/false,
                                   /*create_mode=*/0755);
    report("install_rootkit", r.ok());
  }
  // 3. Tamper with trusted configuration.
  {
    auto r = kernel.WriteWholeFile(task, "/etc/hosts", "10.66.66.66 security-updates\n");
    report("tamper_etc", r.ok());
  }
  // 4. Squat on a well-known port (become the mail server).
  {
    bool ok = false;
    auto fd = kernel.SocketCall(task, kAfInet, kSockStream, 0);
    if (fd.ok()) {
      ok = kernel.BindCall(task, fd.value(), 25).ok();
      (void)kernel.Close(task, fd.value());
    }
    report("bind_smtp", ok);
  }
  // 5. Become root outright.
  {
    auto r = kernel.Setuid(task, kRootUid);
    report("setuid_root", r.ok() && task.cred.euid == kRootUid);
  }
  // 6. Graft a filesystem over trusted configuration (what CAP_SYS_ADMIN
  //    buys an attacker — "the new root"). Restored on success so the
  //    harness can keep replaying exploits on the same system.
  {
    auto r = kernel.Mount(task, "tmpfs", "/etc", "tmpfs", {});
    report("mount_over_etc", r.ok());
    if (r.ok()) {
      (void)kernel.vfs().RemoveMount("/etc");
    }
  }
  // 7. Hijack the system's default route (what CAP_NET_ADMIN buys).
  {
    bool ok = false;
    auto fd = kernel.SocketCall(task, kAfInet, kSockDgram, 0);
    if (fd.ok()) {
      ok = kernel.Ioctl(task, fd.value(), kSiocAddRt, "0.0.0.0/0 10.66.66.66 eth0").ok();
      if (ok) {
        (void)kernel.net().routes().Remove(0, 0);  // harness hygiene
      }
      (void)kernel.Close(task, fd.value());
    }
    report("hijack_route", ok);
  }
  return 99;  // the utility is considered hijacked from here on
}

}  // namespace protego
