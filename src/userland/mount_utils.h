// The mount family: mount, umount, fusermount, eject.
//
// Each factory returns the program for one of two builds of the same source:
//   protego_mode=false — the stock setuid-root binary: it verifies the
//     invoking user against /etc/fstab ITSELF, performs the privileged
//     mount with euid 0, then drops privilege.
//   protego_mode=true — the deprivileged binary: the hard-coded euid==0
//     checks are removed (the paper's "-25 lines") and the syscall is
//     issued with the user's own credentials; the kernel enforces policy.

#ifndef SRC_USERLAND_MOUNT_UTILS_H_
#define SRC_USERLAND_MOUNT_UTILS_H_

#include "src/kernel/kernel.h"

namespace protego {

ProgramMain MakeMountMain(bool protego_mode);
ProgramMain MakeUmountMain(bool protego_mode);
ProgramMain MakeFusermountMain(bool protego_mode);
ProgramMain MakeEjectMain(bool protego_mode);

// Block lists for the coverage registry (Table 7).
void DeclareMountCoverage();

}  // namespace protego

#endif  // SRC_USERLAND_MOUNT_UTILS_H_
