// Sandboxing and setgid-nonroot hardening utilities:
//
//   * chromium-sandbox (§4.6/§6): creates user+network namespaces, then
//     installs a seccomp-style allow list that drops socket(2) — and
//     seccomp(2) itself, latching the filter shut. On pre-3.8 kernels the
//     binary must be setuid root; 3.8+ lets any user do it — which is why
//     the namespace rows of Table 8 need no Protego work at all.
//   * at (§3.1, "File system permissions"): job submission deprivileged by
//     making the spool group-writable and installing the binary setgid to a
//     NON-root group — the hardening technique distributions already use.

#ifndef SRC_USERLAND_SANDBOX_UTILS_H_
#define SRC_USERLAND_SANDBOX_UTILS_H_

#include "src/kernel/kernel.h"

namespace protego {

// The daemon group that owns the at spool.
inline constexpr Gid kDaemonGid = 1;

ProgramMain MakeChromiumSandboxMain(bool protego_mode);
ProgramMain MakeAtMain();
ProgramMain MakeAtqMain();

}  // namespace protego

#endif  // SRC_USERLAND_SANDBOX_UTILS_H_
