#include "src/userland/install.h"

#include "src/base/strings.h"
#include "src/userland/account_utils.h"
#include "src/userland/coverage.h"
#include "src/userland/daemon_utils.h"
#include "src/userland/delegation_utils.h"
#include "src/userland/mount_utils.h"
#include "src/userland/net_utils.h"
#include "src/userland/sandbox_utils.h"
#include "src/userland/util.h"

namespace protego {

namespace {

ProgramMain IdMain() {
  return [](ProcessContext& ctx) -> int {
    const Cred& c = ctx.task.cred;
    ctx.Out(StrFormat("uid=%u gid=%u euid=%u egid=%u\n", c.ruid, c.rgid, c.euid, c.egid));
    return 0;
  };
}

ProgramMain ShMain() {
  return [](ProcessContext& ctx) -> int {
    // Minimal shell: `sh -c <text>` echoes; bare sh reports its identity.
    for (size_t i = 1; i + 1 < ctx.argv.size(); ++i) {
      if (ctx.argv[i] == "-c") {
        ctx.Out(ctx.argv[i + 1] + "\n");
        return 0;
      }
    }
    ctx.Out(StrFormat("sh: uid=%u euid=%u\n", ctx.task.cred.ruid, ctx.task.cred.euid));
    return 0;
  };
}

ProgramMain TeeMain() {
  return [](ProcessContext& ctx) -> int {
    // tee <file> <content>
    if (ctx.argv.size() < 3) {
      ctx.Err("usage: tee <file> <content>\n");
      return 1;
    }
    auto w = ctx.kernel.WriteWholeFile(ctx.task, ctx.argv[1], ctx.argv[2] + "\n");
    if (!w.ok()) {
      ctx.Err("tee: " + w.error().ToString() + "\n");
      return 1;
    }
    ctx.Out(ctx.argv[2] + "\n");
    return 0;
  };
}

ProgramMain CatMain() {
  return [](ProcessContext& ctx) -> int {
    if (ctx.argv.size() < 2) {
      ctx.Err("usage: cat <file>\n");
      return 1;
    }
    auto content = ctx.kernel.ReadWholeFile(ctx.task, ctx.argv[1]);
    if (!content.ok()) {
      ctx.Err("cat: " + ctx.argv[1] + ": " + content.error().ToString() + "\n");
      return 1;
    }
    ctx.Out(content.value());
    return 0;
  };
}

ProgramMain LprMain() {
  return [](ProcessContext& ctx) -> int {
    if (ctx.argv.size() < 2) {
      ctx.Err("usage: lpr <file>\n");
      return 1;
    }
    auto content = ctx.kernel.ReadWholeFile(ctx.task, ctx.argv[1]);
    if (!content.ok()) {
      ctx.Err("lpr: " + content.error().ToString() + "\n");
      return 1;
    }
    ctx.Out(StrFormat("lpr: printed %s as uid=%u\n", ctx.argv[1].c_str(), ctx.task.cred.euid));
    return 0;
  };
}

}  // namespace

Result<Unit> InstallUserland(Kernel* kernel, bool protego_mode, bool setcap_mode) {
  // Stock mode installs the trusted binaries setuid root; Protego mode
  // clears the bit — the headline deliverable of the paper. A setcap
  // deployment also clears the bit but grants file capabilities below.
  const uint32_t setuid_mode = (protego_mode || setcap_mode) ? 0755 : 04755;

  struct Entry {
    const char* path;
    uint32_t mode;
    ProgramMain main;
  };
  const Entry entries[] = {
      {"/bin/mount", setuid_mode, MakeMountMain(protego_mode)},
      {"/bin/umount", setuid_mode, MakeUmountMain(protego_mode)},
      {"/usr/bin/fusermount", setuid_mode, MakeFusermountMain(protego_mode)},
      {"/usr/bin/eject", setuid_mode, MakeEjectMain(protego_mode)},
      {"/bin/ping", setuid_mode, MakePingMain(protego_mode)},
      {"/bin/ping6", setuid_mode, MakePingMain(protego_mode)},
      {"/usr/bin/fping", setuid_mode, MakePingMain(protego_mode)},
      {"/usr/bin/traceroute", setuid_mode, MakeTracerouteMain(protego_mode)},
      {"/usr/bin/tracepath", setuid_mode, MakeTracerouteMain(protego_mode)},
      {"/usr/bin/arping", setuid_mode, MakeArpingMain(protego_mode)},
      {"/usr/bin/mtr", setuid_mode, MakeMtrMain(protego_mode)},
      {"/usr/sbin/pppd", setuid_mode, MakePppdMain(protego_mode)},
      {"/usr/bin/sudo", setuid_mode, MakeSudoMain(protego_mode)},
      {"/usr/bin/sudoedit", setuid_mode, MakeSudoeditMain(protego_mode)},
      {"/bin/su", setuid_mode, MakeSuMain(protego_mode)},
      {"/usr/bin/newgrp", setuid_mode, MakeNewgrpMain(protego_mode)},
      {"/bin/login", setuid_mode, MakeLoginMain(protego_mode)},
      {"/usr/bin/passwd", setuid_mode, MakePasswdMain(protego_mode)},
      {"/usr/bin/chsh", setuid_mode, MakeChshMain(protego_mode)},
      {"/usr/bin/chfn", setuid_mode, MakeChfnMain(protego_mode)},
      {"/usr/bin/gpasswd", setuid_mode, MakeGpasswdMain(protego_mode)},
      {"/usr/sbin/vipw", setuid_mode, MakeVipwMain(protego_mode)},
      {"/usr/lib/ssh-keysign", setuid_mode, MakeSshKeysignMain(protego_mode)},
      {"/usr/bin/dmcrypt-get-device", setuid_mode, MakeDmcryptGetDeviceMain(protego_mode)},
      {"/usr/bin/pkexec", setuid_mode, MakePkexecMain(protego_mode)},
      {"/usr/lib/dbus-daemon-launch-helper", setuid_mode, MakePkexecMain(protego_mode)},
      {"/usr/bin/xserver", setuid_mode, MakeXserverMain(protego_mode)},
      // Pre-3.8 kernels (the stock baseline) force the sandbox helper to be
      // setuid root; with 3.8+ namespace semantics it needs nothing.
      {"/usr/lib/chromium-sandbox", setuid_mode, MakeChromiumSandboxMain(protego_mode)},
      // Daemons are launched by init, not setuid, in both modes.
      {"/usr/sbin/eximd", 0755, MakeEximdMain(protego_mode)},
      {"/usr/sbin/sendmail", 0755, MakeEximdMain(protego_mode)},
      {"/usr/sbin/httpd", 0755, MakeHttpdMain(protego_mode)},
      // Administrator tools (run via root/sudo; the kernel gate is
      // CAP_NET_ADMIN, not the binary).
      {"/sbin/iptables", 0755, MakeIptablesMain()},
      // Unprivileged helpers, identical in both modes.
      {"/usr/bin/id", 0755, IdMain()},
      {"/bin/sh", 0755, ShMain()},
      {"/usr/bin/tee", 0755, TeeMain()},
      {"/bin/cat", 0755, CatMain()},
      {"/usr/bin/lpr", 0755, LprMain()},
  };
  for (const Entry& e : entries) {
    RETURN_IF_ERROR(kernel->InstallBinary(e.path, e.mode, kRootUid, kRootGid, e.main));
  }

  // The §3.1 setgid-NONroot hardening technique: at/atq run setgid to the
  // daemon group (gid 1), never as root, in BOTH modes.
  RETURN_IF_ERROR(
      kernel->InstallBinary("/usr/bin/at", 02755, kRootUid, kDaemonGid, MakeAtMain()));
  RETURN_IF_ERROR(
      kernel->InstallBinary("/usr/bin/atq", 02755, kRootUid, kDaemonGid, MakeAtqMain()));

  if (setcap_mode) {
    // The file-capability assignments a setcap hardening pass would make
    // (cf. §3.2's capability lists; passwd needs six, X needs four).
    struct CapAssignment {
      const char* path;
      CapSet caps;
    };
    const CapSet net_raw = CapSet::Of({Capability::kNetRaw});
    const CapSet sys_admin = CapSet::Of({Capability::kSysAdmin});
    const CapSet delegation =
        CapSet::Of({Capability::kSetuid, Capability::kSetgid, Capability::kDacOverride,
                    Capability::kDacReadSearch});
    const CapAssignment assignments[] = {
        {"/bin/ping", net_raw},
        {"/bin/ping6", net_raw},
        {"/usr/bin/fping", net_raw},
        {"/usr/bin/traceroute", net_raw},
        {"/usr/bin/tracepath", net_raw},
        {"/usr/bin/arping", net_raw},
        {"/usr/bin/mtr", net_raw},
        {"/bin/mount", sys_admin},
        {"/bin/umount", sys_admin},
        {"/usr/bin/fusermount", sys_admin},
        {"/usr/bin/eject", sys_admin},
        {"/usr/bin/dmcrypt-get-device", sys_admin},
        {"/usr/lib/chromium-sandbox", sys_admin},
        {"/usr/sbin/pppd", CapSet::Of({Capability::kNetAdmin})},
        {"/usr/bin/sudo", delegation},
        {"/usr/bin/sudoedit", delegation},
        {"/bin/su", delegation},
        {"/usr/bin/newgrp", delegation},
        {"/bin/login", delegation},
        {"/usr/bin/pkexec", delegation},
        {"/usr/lib/dbus-daemon-launch-helper", delegation},
        // passwd's six capabilities (§3.2 / §4.4).
        {"/usr/bin/passwd",
         CapSet::Of({Capability::kSysAdmin, Capability::kChown, Capability::kDacOverride,
                     Capability::kSetuid, Capability::kDacReadSearch, Capability::kFowner})},
        {"/usr/bin/chsh",
         CapSet::Of({Capability::kDacOverride, Capability::kFowner, Capability::kChown})},
        {"/usr/bin/chfn",
         CapSet::Of({Capability::kDacOverride, Capability::kFowner, Capability::kChown})},
        {"/usr/bin/gpasswd",
         CapSet::Of({Capability::kDacOverride, Capability::kFowner, Capability::kChown})},
        {"/usr/sbin/vipw",
         CapSet::Of({Capability::kDacOverride, Capability::kFowner, Capability::kChown})},
        // X's four capabilities (§3.2).
        {"/usr/bin/xserver",
         CapSet::Of({Capability::kChown, Capability::kDacOverride, Capability::kSysRawio,
                     Capability::kSysAdmin})},
        {"/usr/lib/ssh-keysign", CapSet::Of({Capability::kDacReadSearch})},
    };
    for (const CapAssignment& a : assignments) {
      kernel->SetFileCaps(a.path, a.caps);
    }
  }

  DeclareMountCoverage();
  DeclareNetCoverage();
  DeclareDelegationCoverage();
  DeclareAccountCoverage();
  return OkUnit();
}

}  // namespace protego
