// The network family: ping, traceroute, arping, mtr (raw/packet sockets,
// §4.1.1) and pppd (modem + routing ioctls, §4.1.2).
//
// protego_mode=false builds the stock setuid-root binaries that create the
// privileged socket with euid 0 and then drop privilege (privilege
// bracketing); protego_mode=true builds the deprivileged binaries that
// create raw sockets with the user's own credentials.

#ifndef SRC_USERLAND_NET_UTILS_H_
#define SRC_USERLAND_NET_UTILS_H_

#include "src/kernel/kernel.h"

namespace protego {

ProgramMain MakePingMain(bool protego_mode);
ProgramMain MakeTracerouteMain(bool protego_mode);
ProgramMain MakeArpingMain(bool protego_mode);
ProgramMain MakeMtrMain(bool protego_mode);
ProgramMain MakePppdMain(bool protego_mode);

void DeclareNetCoverage();

// iptables: the administrator's interface to the netfilter engine,
// including the Protego raw-socket match extensions (--raw, --spoofed-src).
// Requires CAP_NET_ADMIN; identical in both deployment modes.
ProgramMain MakeIptablesMain();

}  // namespace protego

#endif  // SRC_USERLAND_NET_UTILS_H_
