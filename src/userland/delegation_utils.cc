#include "src/userland/delegation_utils.h"

#include "src/base/hash.h"
#include "src/base/strings.h"
#include "src/config/sudoers.h"
#include "src/userland/coverage.h"
#include "src/userland/util.h"

namespace protego {

namespace {

std::vector<std::string> Positionals(const ProcessContext& ctx) {
  std::vector<std::string> out;
  for (size_t i = 1; i < ctx.argv.size(); ++i) {
    if (!StartsWith(ctx.argv[i], "--")) {
      out.push_back(ctx.argv[i]);
    }
  }
  return out;
}

// --- Stock (setuid-root) policy machinery: what Protego deprivileges -----------

Result<SudoersPolicy> StockReadSudoers(ProcessContext& ctx) {
  ASSIGN_OR_RETURN(std::string main_content, ctx.kernel.ReadWholeFile(ctx.task, "/etc/sudoers"));
  std::vector<std::string> fragments;
  auto names = ctx.kernel.ReadDir(ctx.task, "/etc/sudoers.d");
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      auto frag = ctx.kernel.ReadWholeFile(ctx.task, "/etc/sudoers.d/" + name);
      if (frag.ok()) {
        fragments.push_back(frag.take());
      }
    }
  }
  return ParseSudoersWithFragments(main_content, fragments);
}

bool StockRuleSubjectMatches(ProcessContext& ctx, const SudoRule& rule,
                             const std::string& user_name) {
  if (rule.user == "ALL" || rule.user == user_name) {
    return true;
  }
  if (!rule.user.empty() && rule.user[0] == '%') {
    auto group = LookupGroup(ctx, rule.user.substr(1));
    if (group.has_value()) {
      for (const std::string& m : group->members) {
        if (m == user_name) {
          return true;
        }
      }
    }
  }
  return false;
}

// Stock password check against /etc/shadow (readable because euid == 0),
// honoring the sudo timestamp file.
bool StockAuthenticate(ProcessContext& ctx, const std::string& account_name,
                       uint64_t timeout_sec, bool use_timestamp) {
  uint64_t now = ctx.kernel.clock().Now();
  std::string ts_path = StrFormat("/var/run/sudo/%u", ctx.task.cred.ruid);
  if (use_timestamp) {
    auto ts = ctx.kernel.ReadWholeFile(ctx.task, ts_path);
    if (ts.ok()) {
      auto last = ParseUint(Trim(ts.value()));
      if (last && now - *last <= timeout_sec) {
        return true;
      }
    }
  }
  auto shadow = ctx.kernel.ReadWholeFile(ctx.task, "/etc/shadow");
  if (!shadow.ok()) {
    return false;
  }
  std::string hash;
  for (const std::string& line : Split(shadow.value(), '\n')) {
    auto f = Split(line, ':');
    if (f.size() >= 2 && f[0] == account_name) {
      hash = f[1];
      break;
    }
  }
  if (hash.empty() || hash[0] == '!') {
    return false;
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    ctx.Out("[sudo] password for " + account_name + ": ");
    auto password = ctx.ReadLine();
    if (!password.has_value()) {
      return false;
    }
    if (VerifyPassword(*password, hash)) {
      if (use_timestamp) {
        (void)ctx.kernel.WriteWholeFile(ctx.task, ts_path, StrFormat("%llu",
                                        (unsigned long long)now), false, 0600);
      }
      return true;
    }
    ctx.Out("Sorry, try again.\n");
  }
  return false;
}

void SanitizeEnv(std::map<std::string, std::string>* env,
                 const std::vector<std::string>& keep) {
  for (auto it = env->begin(); it != env->end();) {
    bool kept = false;
    for (const std::string& k : keep) {
      if (it->first == k) {
        kept = true;
        break;
      }
    }
    it = kept ? std::next(it) : env->erase(it);
  }
}

}  // namespace

std::string ResolveBinaryPath(ProcessContext& ctx, const std::string& name) {
  if (!name.empty() && name[0] == '/') {
    return name;
  }
  for (const char* dir : {"/usr/bin", "/bin", "/usr/sbin", "/sbin"}) {
    std::string candidate = std::string(dir) + "/" + name;
    if (ctx.kernel.Stat(ctx.task, candidate).ok()) {
      return candidate;
    }
  }
  return name;
}

void DeclareDelegationCoverage() {
  Coverage::Get().Declare(
      "sudo", {"parse_args", "resolve_target", "resolve_command", "read_sudoers", "match_rule",
               "check_timestamp", "authenticate", "sanitize_env", "do_setuid", "do_exec",
               "report_ok", "err_usage", "err_no_user", "err_not_allowed", "err_auth",
               "err_exec", "exploit_env"});
  Coverage::Get().Declare("sudoedit", {"parse_args", "read_content", "delegate", "report_ok",
                                       "err_usage", "err_denied"});
  Coverage::Get().Declare("su", {"parse_args", "resolve_target", "authenticate", "do_setuid",
                                 "run_command", "report_ok", "err_no_user", "err_auth",
                                 "err_setuid"});
  Coverage::Get().Declare("newgrp", {"parse_args", "resolve_group", "member_check",
                                     "group_password", "do_setgid", "report_ok", "err_usage",
                                     "err_no_group", "err_denied"});
}

ProgramMain MakeSudoMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("sudo", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      Cov("sudo", "err_usage");
      ctx.Err("usage: sudo [--user=<user>] command [args]\n");
      return 1;
    }

    // Environment handling — sudo's historically vulnerable surface
    // (CVE-2002-0184 prompt overflow, CVE-2009-0034 group matching, ...).
    if (ExploitTriggered(ctx, "CVE-2001-0279") || ExploitTriggered(ctx, "CVE-2002-0043") ||
        ExploitTriggered(ctx, "CVE-2002-0184") || ExploitTriggered(ctx, "CVE-2009-0034") ||
        ExploitTriggered(ctx, "CVE-2010-2956")) {
      Cov("sudo", "exploit_env");
      return ExploitPayload(ctx);
    }

    Cov("sudo", "resolve_target");
    std::string target_name = ctx.Flag("user").value_or("root");
    auto target = LookupUser(ctx, target_name);
    if (!target.has_value()) {
      Cov("sudo", "err_no_user");
      ctx.Err("sudo: unknown user: " + target_name + "\n");
      return 1;
    }
    Cov("sudo", "resolve_command");
    std::string command_path = ResolveBinaryPath(ctx, args[0]);
    std::vector<std::string> command_argv = args;
    command_argv[0] = command_path;
    std::string command_line = Join(command_argv, " ");

    if (!protego_mode) {
      // Stock sudo: the trusted binary IS the policy engine.
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("sudo: must be setuid root\n");
        return 1;
      }
      Cov("sudo", "read_sudoers");
      auto invoker = LookupUserByUid(ctx, ctx.task.cred.ruid);
      auto policy = StockReadSudoers(ctx);
      if (!invoker.has_value() || !policy.ok()) {
        ctx.Err("sudo: cannot read policy\n");
        return 1;
      }
      Cov("sudo", "match_rule");
      // Prefer NOPASSWD grants, then invoker-password, then target-password.
      auto rule_score = [](const SudoRule& r) {
        return r.nopasswd ? 3 : (r.targetpw ? 1 : 2);
      };
      const SudoRule* granted = nullptr;
      for (const SudoRule& rule : policy.value().rules) {
        if (StockRuleSubjectMatches(ctx, rule, invoker->name) &&
            rule.RunasMatches(target->name) && rule.CommandMatches(command_line) &&
            (granted == nullptr || rule_score(rule) > rule_score(*granted))) {
          granted = &rule;
        }
      }
      if (granted == nullptr) {
        Cov("sudo", "err_not_allowed");
        ctx.Err(StrFormat("sudo: %s is not allowed to run '%s' as %s\n",
                          invoker->name.c_str(), command_line.c_str(), target->name.c_str()));
        return 1;
      }
      if (!granted->nopasswd) {
        Cov("sudo", "check_timestamp");
        Cov("sudo", "authenticate");
        std::string account = granted->targetpw ? target->name : invoker->name;
        if (!StockAuthenticate(ctx, account, policy.value().timestamp_timeout_sec,
                               /*use_timestamp=*/!granted->targetpw)) {
          Cov("sudo", "err_auth");
          ctx.Err("sudo: authentication failure\n");
          return 1;
        }
      }
      Cov("sudo", "sanitize_env");
      std::map<std::string, std::string> env = ctx.env;
      SanitizeEnv(&env, policy.value().env_keep);
      Cov("sudo", "do_setuid");
      // Group first, then uid — dropping uid first would discard the
      // CAP_SETGID needed for the group switch ("Setuid Demystified").
      (void)ctx.kernel.Setgid(ctx.task, target->gid);
      auto s = ctx.kernel.Setuid(ctx.task, target->uid);
      if (!s.ok()) {
        ctx.Err("sudo: setuid: " + s.error().ToString() + "\n");
        return 1;
      }
      Cov("sudo", "do_exec");
      auto code = ctx.kernel.Spawn(ctx.task, command_path, command_argv, env);
      if (!code.ok()) {
        Cov("sudo", "err_exec");
        ctx.Err("sudo: " + command_path + ": " + code.error().ToString() + "\n");
        return 1;
      }
      Cov("sudo", "report_ok");
      return code.value();
    }

    // Protego sudo: request the transition; the kernel owns the policy.
    Cov("sudo", "do_setuid");
    auto s = ctx.kernel.Setuid(ctx.task, target->uid);
    if (!s.ok()) {
      Cov("sudo", "err_not_allowed");
      ctx.Err(StrFormat("sudo: you are not allowed to run commands as %s\n",
                        target->name.c_str()));
      return 1;
    }
    Cov("sudo", "do_exec");
    auto code = ctx.kernel.Spawn(ctx.task, command_path, command_argv, ctx.env);
    if (!code.ok()) {
      Cov("sudo", "err_exec");
      ctx.Err(StrFormat("sudo: %s: %s\n", command_line.c_str(),
                        code.error().ToString().c_str()));
      return 1;
    }
    Cov("sudo", "report_ok");
    return code.value();
  };
}

ProgramMain MakeSudoeditMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("sudoedit", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      Cov("sudoedit", "err_usage");
      ctx.Err("usage: sudoedit <file>\n");
      return 1;
    }
    if (ExploitTriggered(ctx, "CVE-2004-1689")) {
      return ExploitPayload(ctx);
    }
    Cov("sudoedit", "read_content");
    auto content = ctx.ReadLine();
    if (!content.has_value()) {
      ctx.Err("sudoedit: no content provided\n");
      return 1;
    }
    // Editing as root is delegated through tee, so the sudoers command rule
    // is enforced on the actual write.
    Cov("sudoedit", "delegate");
    std::vector<std::string> argv = {"sudo", "--user=root", "/usr/bin/tee", args[0], *content};
    auto code = ctx.kernel.Spawn(ctx.task, protego_mode ? "/usr/bin/sudo" : "/usr/bin/sudo",
                                 argv, ctx.env);
    if (!code.ok() || code.value() != 0) {
      Cov("sudoedit", "err_denied");
      ctx.Err("sudoedit: editing " + args[0] + " denied\n");
      return 1;
    }
    Cov("sudoedit", "report_ok");
    ctx.Out("sudoedit: wrote " + args[0] + "\n");
    return 0;
  };
}

ProgramMain MakeSuMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("su", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    std::string target_name = args.empty() ? "root" : args[0];
    if (ExploitTriggered(ctx, "CVE-2000-0996") || ExploitTriggered(ctx, "CVE-2002-0816")) {
      return ExploitPayload(ctx);
    }
    Cov("su", "resolve_target");
    auto target = LookupUser(ctx, target_name);
    if (!target.has_value()) {
      Cov("su", "err_no_user");
      ctx.Err("su: user " + target_name + " does not exist\n");
      return 1;
    }

    if (!protego_mode) {
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("su: must be setuid root\n");
        return 1;
      }
      // su asks for the TARGET user's password (unless invoked by root).
      if (ctx.task.cred.ruid != kRootUid) {
        Cov("su", "authenticate");
        if (!StockAuthenticate(ctx, target->name, 0, /*use_timestamp=*/false)) {
          Cov("su", "err_auth");
          ctx.Err("su: Authentication failure\n");
          return 1;
        }
      }
      (void)ctx.kernel.Setgid(ctx.task, target->gid);
    }

    Cov("su", "do_setuid");
    auto s = ctx.kernel.Setuid(ctx.task, target->uid);
    if (!s.ok()) {
      Cov("su", "err_setuid");
      ctx.Err("su: Authentication failure\n");
      return 1;
    }
    // Run the command — or the target's login shell — as the new identity.
    // (In Protego mode the transition may be deferred; it lands at this
    // exec, which is why su always execs.)
    Cov("su", "run_command");
    std::vector<std::string> argv;
    if (args.size() > 1) {
      argv.assign(args.begin() + 1, args.end());
      argv[0] = ResolveBinaryPath(ctx, argv[0]);
    } else {
      argv = {target->shell.empty() ? "/bin/sh" : target->shell};
    }
    auto code = ctx.kernel.Spawn(ctx.task, argv[0], argv, ctx.env);
    if (!code.ok()) {
      Cov("su", "err_setuid");
      ctx.Err("su: Authentication failure\n");
      return 1;
    }
    Cov("su", "report_ok");
    return code.value();
  };
}

ProgramMain MakeNewgrpMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("newgrp", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      Cov("newgrp", "err_usage");
      ctx.Err("usage: newgrp <group>\n");
      return 1;
    }
    if (ExploitTriggered(ctx, "CVE-1999-0050") || ExploitTriggered(ctx, "CVE-2000-0730") ||
        ExploitTriggered(ctx, "CVE-2000-0755") || ExploitTriggered(ctx, "CVE-2001-0379") ||
        ExploitTriggered(ctx, "CVE-2004-1328") || ExploitTriggered(ctx, "CVE-2005-0816")) {
      return ExploitPayload(ctx);
    }
    Cov("newgrp", "resolve_group");
    auto group = LookupGroup(ctx, args[0]);
    if (!group.has_value()) {
      Cov("newgrp", "err_no_group");
      ctx.Err("newgrp: group '" + args[0] + "' does not exist\n");
      return 1;
    }

    if (!protego_mode) {
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("newgrp: must be setuid root\n");
        return 1;
      }
      Cov("newgrp", "member_check");
      auto self = LookupUserByUid(ctx, ctx.task.cred.ruid);
      bool member = false;
      if (self.has_value()) {
        for (const std::string& m : group->members) {
          if (m == self->name) {
            member = true;
            break;
          }
        }
      }
      if (!member) {
        Cov("newgrp", "group_password");
        bool ok = false;
        if (!group->password_hash.empty() && group->password_hash[0] != '!') {
          for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
            ctx.Out("Password: ");
            auto password = ctx.ReadLine();
            if (!password.has_value()) {
              break;
            }
            ok = VerifyPassword(*password, group->password_hash);
          }
        }
        if (!ok) {
          Cov("newgrp", "err_denied");
          ctx.Err("newgrp: Permission denied\n");
          (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
          return 1;
        }
      }
      auto r = ctx.kernel.Setgid(ctx.task, group->gid);
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
      if (!r.ok()) {
        ctx.Err("newgrp: " + r.error().ToString() + "\n");
        return 1;
      }
      Cov("newgrp", "do_setgid");
      Cov("newgrp", "report_ok");
      ctx.Out(StrFormat("newgrp: now gid=%u(%s)\n", ctx.task.cred.egid, group->name.c_str()));
      return 0;
    }

    Cov("newgrp", "do_setgid");
    auto r = ctx.kernel.Setgid(ctx.task, group->gid);
    if (!r.ok()) {
      Cov("newgrp", "err_denied");
      ctx.Err("newgrp: Permission denied\n");
      return 1;
    }
    Cov("newgrp", "report_ok");
    ctx.Out(StrFormat("newgrp: now gid=%u(%s)\n", ctx.task.cred.egid, group->name.c_str()));
    return 0;
  };
}

ProgramMain MakeLoginMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      ctx.Err("usage: login <user>\n");
      return 1;
    }
    auto target = LookupUser(ctx, args[0]);
    if (!target.has_value()) {
      ctx.Err("login: unknown user\n");
      return 1;
    }
    if (!protego_mode) {
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("login: must run as root\n");
        return 1;
      }
      if (!StockAuthenticate(ctx, target->name, 0, /*use_timestamp=*/false)) {
        ctx.Err("Login incorrect\n");
        return 1;
      }
      (void)ctx.kernel.Setgid(ctx.task, target->gid);
    }
    auto s = ctx.kernel.Setuid(ctx.task, target->uid);
    if (!s.ok()) {
      ctx.Err("Login incorrect\n");
      return 1;
    }
    // Start the session shell; a deferred Protego transition lands here.
    std::string shell = target->shell.empty() ? "/bin/sh" : target->shell;
    auto code = ctx.kernel.Spawn(ctx.task, shell, {shell}, ctx.env);
    if (!code.ok()) {
      ctx.Err("Login incorrect\n");
      return 1;
    }
    ctx.Out(StrFormat("Welcome %s\n", target->name.c_str()));
    return code.value();
  };
}

}  // namespace protego

namespace protego {

ProgramMain MakePkexecMain(bool protego_mode) {
  ProgramMain sudo_main = MakeSudoMain(protego_mode);
  return [sudo_main](ProcessContext& ctx) -> int {
    // PolicyKit's historical holes: argv handling (CVE-2011-1485 race,
    // CVE-2011-4945, dbus activation helper CVE-2012-3524).
    if (ExploitTriggered(ctx, "CVE-2011-1485") || ExploitTriggered(ctx, "CVE-2011-4945") ||
        ExploitTriggered(ctx, "CVE-2012-3524")) {
      return ExploitPayload(ctx);
    }
    std::vector<std::string> argv = {"sudo", "--user=root"};
    for (size_t i = 1; i < ctx.argv.size(); ++i) {
      argv.push_back(ctx.argv[i]);
    }
    ctx.argv = std::move(argv);
    return sudo_main(ctx);
  };
}

}  // namespace protego
