#include "src/userland/sandbox_utils.h"

#include "src/base/strings.h"
#include "src/userland/util.h"

namespace protego {

ProgramMain MakeChromiumSandboxMain(bool protego_mode) {
  (void)protego_mode;  // identical in both modes on a 3.8+ kernel
  return [](ProcessContext& ctx) -> int {
    Kernel& k = ctx.kernel;
    // 1. Create the sandbox: a fresh user + network namespace pair.
    auto unshared = k.Unshare(ctx.task, Kernel::kCloneNewUser | Kernel::kCloneNewNet);
    if (!unshared.ok()) {
      // Pre-3.8 behaviour: only a setuid-root build can sandbox.
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("chromium-sandbox: unshare: " + unshared.error().ToString() + "\n");
        return 1;
      }
      (void)k.Unshare(ctx.task, Kernel::kCloneNewUser | Kernel::kCloneNewNet);
    }
    // Stock pre-3.8 builds drop the setuid privilege once sandboxed.
    if (ctx.task.cred.ruid != ctx.task.cred.euid) {
      (void)k.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    ctx.Out(StrFormat("sandbox: user_ns=%d net_ns=%d\n", ctx.task.ns.user_ns,
                      ctx.task.ns.net_ns));

    // 2. Inside the sandbox the renderer appears to hold CAP_NET_RAW: a raw
    //    socket over the FAKE network works without privilege...
    auto raw = k.SocketCall(ctx.task, kAfInet, kSockRaw, kProtoIcmp);
    ctx.Out(std::string("sandbox: raw socket ") + (raw.ok() ? "ok" : "denied") + "\n");

    // 3. ...and it may squat on "port 80" — of its own namespace.
    auto tcp = k.SocketCall(ctx.task, kAfInet, kSockStream, 0);
    bool bound = tcp.ok() && k.BindCall(ctx.task, tcp.value(), 80).ok();
    ctx.Out(std::string("sandbox: bind 80 ") + (bound ? "ok" : "denied") + "\n");

    // 4. But the outside world does not exist: the fake network has no
    //    routes out (§6's core argument).
    bool outside_reachable = false;
    if (raw.ok()) {
      Packet probe;
      probe.l4_proto = kProtoIcmp;
      probe.icmp_type = kIcmpEchoRequest;
      probe.dst_ip = MakeIp(10, 0, 0, 2);
      auto sent = k.SendCall(ctx.task, raw.value(), probe);
      auto reply = sent.ok() ? k.RecvCall(ctx.task, raw.value())
                             : Result<std::optional<Packet>>(sent.error());
      outside_reachable = reply.ok() && reply.value().has_value();
    }
    ctx.Out(std::string("sandbox: outside world ") +
            (outside_reachable ? "REACHABLE (?!)" : "unreachable") + "\n");

    // 5. Finally drop syscall access itself (§4.6): once the namespaces and
    //    probe sockets exist, the renderer only ever needs read/write/close.
    //    The allow list below omits socket(2) — and seccomp(2) itself, so
    //    the filter can never be loosened again.
    auto filtered = k.SeccompSetFilter(
        ctx.task, {Sysno::kRead, Sysno::kWrite, Sysno::kClose, Sysno::kSendTo,
                   Sysno::kRecvFrom, Sysno::kGetPid});
    ctx.Out(std::string("sandbox: seccomp filter ") +
            (filtered.ok() ? "installed" : "FAILED") + "\n");
    auto post = k.SocketCall(ctx.task, kAfInet, kSockStream, 0);
    bool seccomp_blocked = !post.ok() && post.code() == Errno::kEPERM;
    ctx.Out(std::string("sandbox: socket after seccomp ") +
            (seccomp_blocked ? "denied (EPERM)" : "ALLOWED (?!)") + "\n");
    return 0;
  };
}

ProgramMain MakeAtMain() {
  return [](ProcessContext& ctx) -> int {
    // argv: at <when> <command...>  — queues a job file in the spool.
    if (ctx.argv.size() < 3) {
      ctx.Err("usage: at <when> <command>\n");
      return 1;
    }
    // The binary is setgid `daemon`, so egid grants spool access while the
    // USER identity is unchanged — no root anywhere.
    std::string job = StrFormat("user=%u when=%s cmd=", ctx.task.cred.ruid,
                                ctx.argv[1].c_str());
    for (size_t i = 2; i < ctx.argv.size(); ++i) {
      job += (i > 2 ? " " : "") + ctx.argv[i];
    }
    std::string path = StrFormat("/var/spool/atjobs/job-%u-%llu", ctx.task.cred.ruid,
                                 static_cast<unsigned long long>(ctx.kernel.clock().Now()));
    auto w = ctx.kernel.WriteWholeFile(ctx.task, path, job + "\n", /*append=*/false,
                                       /*create_mode=*/0640);
    if (!w.ok()) {
      ctx.Err("at: cannot queue job: " + w.error().ToString() + "\n");
      return 1;
    }
    ctx.Out("job queued\n");
    return 0;
  };
}

ProgramMain MakeAtqMain() {
  return [](ProcessContext& ctx) -> int {
    // Lists the invoking user's own queued jobs (the spool directory is
    // group-readable via the setgid bit; job files belong to their owners).
    auto names = ctx.kernel.ReadDir(ctx.task, "/var/spool/atjobs");
    if (!names.ok()) {
      ctx.Err("atq: " + names.error().ToString() + "\n");
      return 1;
    }
    int mine = 0;
    std::string prefix = StrFormat("job-%u-", ctx.task.cred.ruid);
    for (const std::string& name : names.value()) {
      if (StartsWith(name, prefix)) {
        auto content = ctx.kernel.ReadWholeFile(ctx.task, "/var/spool/atjobs/" + name);
        if (content.ok()) {
          ctx.Out(name + ": " + content.value());
          ++mine;
        }
      }
    }
    ctx.Out(StrFormat("%d job(s)\n", mine));
    return 0;
  };
}

}  // namespace protego
