// Basic-block coverage instrumentation for the simulated userland binaries
// (the gcov analog behind Table 7). Each utility declares its named blocks
// at registration time; executing code marks blocks hit. The Table 7
// harness reports hit/declared per binary after running the
// functional-equivalence suite.

#ifndef SRC_USERLAND_COVERAGE_H_
#define SRC_USERLAND_COVERAGE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace protego {

class Coverage {
 public:
  static Coverage& Get();

  // Declares the full block list for `binary` (idempotent).
  void Declare(const std::string& binary, std::vector<std::string> blocks);

  // Marks a block as executed. Unknown blocks are ignored (defensive).
  void Hit(const std::string& binary, const std::string& block);

  // Percentage of declared blocks hit; 0 when nothing is declared.
  double Percent(const std::string& binary) const;

  std::vector<std::string> MissedBlocks(const std::string& binary) const;
  std::vector<std::string> Binaries() const;

  void ResetHits();

 private:
  Coverage() = default;
  struct PerBinary {
    std::vector<std::string> declared;
    std::set<std::string> hit;
  };
  std::map<std::string, PerBinary> data_;
};

// Convenience marker used inside utility mains.
inline void Cov(const std::string& binary, const std::string& block) {
  Coverage::Get().Hit(binary, block);
}

}  // namespace protego

#endif  // SRC_USERLAND_COVERAGE_H_
