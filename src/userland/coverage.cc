#include "src/userland/coverage.h"

#include <algorithm>

namespace protego {

Coverage& Coverage::Get() {
  static Coverage instance;
  return instance;
}

void Coverage::Declare(const std::string& binary, std::vector<std::string> blocks) {
  PerBinary& pb = data_[binary];
  if (pb.declared.empty()) {
    pb.declared = std::move(blocks);
  }
}

void Coverage::Hit(const std::string& binary, const std::string& block) {
  auto it = data_.find(binary);
  if (it == data_.end()) {
    return;
  }
  if (std::find(it->second.declared.begin(), it->second.declared.end(), block) !=
      it->second.declared.end()) {
    it->second.hit.insert(block);
  }
}

double Coverage::Percent(const std::string& binary) const {
  auto it = data_.find(binary);
  if (it == data_.end() || it->second.declared.empty()) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(it->second.hit.size()) /
         static_cast<double>(it->second.declared.size());
}

std::vector<std::string> Coverage::MissedBlocks(const std::string& binary) const {
  std::vector<std::string> missed;
  auto it = data_.find(binary);
  if (it == data_.end()) {
    return missed;
  }
  for (const std::string& b : it->second.declared) {
    if (it->second.hit.count(b) == 0) {
      missed.push_back(b);
    }
  }
  return missed;
}

std::vector<std::string> Coverage::Binaries() const {
  std::vector<std::string> out;
  for (const auto& [name, pb] : data_) {
    out.push_back(name);
  }
  return out;
}

void Coverage::ResetHits() {
  for (auto& [name, pb] : data_) {
    pb.hit.clear();
  }
}

}  // namespace protego
