#include "src/userland/account_utils.h"

#include "src/base/hash.h"
#include "src/base/strings.h"
#include "src/config/passwd_db.h"
#include "src/userland/coverage.h"
#include "src/userland/util.h"

namespace protego {

namespace {

std::vector<std::string> Positionals(const ProcessContext& ctx) {
  std::vector<std::string> out;
  for (size_t i = 1; i < ctx.argv.size(); ++i) {
    if (!StartsWith(ctx.argv[i], "--")) {
      out.push_back(ctx.argv[i]);
    }
  }
  return out;
}

// Rewrites one user's record inside the shared /etc/passwd (stock path).
// The exclusive flock spans the whole read-modify-write (lckpwdf(3)-style)
// so a concurrent updater can neither interleave its rewrite inside ours
// (lost update) nor observe the truncate-then-write window.
Result<Unit> StockUpdatePasswdRecord(ProcessContext& ctx, const std::string& user,
                                     const std::function<void(PasswdEntry*)>& edit) {
  FileLockGuard lock(ctx, "/etc/passwd", /*exclusive=*/true);
  ASSIGN_OR_RETURN(std::string content, ctx.kernel.ReadWholeFile(ctx.task, "/etc/passwd"));
  ASSIGN_OR_RETURN(auto entries, ParsePasswd(content));
  bool found = false;
  for (PasswdEntry& e : entries) {
    if (e.name == user) {
      edit(&e);
      found = true;
    }
  }
  if (!found) {
    return Error(Errno::kENOENT, user);
  }
  return ctx.kernel.WriteWholeFile(ctx.task, "/etc/passwd", SerializePasswd(entries));
}

// Edits the user's own fragment (Protego path).
Result<Unit> FragmentUpdatePasswdRecord(ProcessContext& ctx, const std::string& user,
                                        const std::function<void(PasswdEntry*)>& edit) {
  std::string path = "/etc/passwds/" + user;
  ASSIGN_OR_RETURN(std::string line, ctx.kernel.ReadWholeFile(ctx.task, path));
  ASSIGN_OR_RETURN(PasswdEntry entry, ParsePasswdLine(Trim(line)));
  edit(&entry);
  return ctx.kernel.WriteWholeFile(ctx.task, path, entry.ToLine() + "\n");
}

bool ValidShell(ProcessContext& ctx, const std::string& shell) {
  auto shells = ctx.kernel.ReadWholeFile(ctx.task, "/etc/shells");
  if (!shells.ok()) {
    return false;
  }
  for (const std::string& line : Split(shells.value(), '\n')) {
    if (Trim(line) == shell) {
      return true;
    }
  }
  return false;
}

}  // namespace

void DeclareAccountCoverage() {
  Coverage::Get().Declare("passwd", {"parse_args", "resolve_target", "check_self_or_root",
                                     "verify_old", "prompt_new", "hash_new", "write_db",
                                     "report_ok", "err_no_user", "err_not_permitted",
                                     "err_auth", "err_write", "exploit_gecos"});
  Coverage::Get().Declare("chsh", {"parse_args", "resolve_target", "check_self_or_root",
                                   "validate_shell", "write_db", "report_ok", "err_usage",
                                   "err_bad_shell", "err_not_permitted", "err_write",
                                   "exploit_arg"});
  Coverage::Get().Declare("chfn", {"parse_args", "resolve_target", "check_self_or_root",
                                   "write_db", "report_ok", "err_usage", "err_not_permitted",
                                   "err_write", "exploit_gecos"});
  Coverage::Get().Declare("gpasswd", {"parse_args", "resolve_group", "admin_check",
                                      "hash_new", "write_db", "report_ok", "err_usage",
                                      "err_no_group", "err_not_permitted", "err_write"});
}

ProgramMain MakePasswdMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("passwd", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    // GECOS/argument parsing — passwd's historical soft spot (CVE-2006-3378).
    if (ExploitTriggered(ctx, "CVE-2006-3378") || ExploitTriggered(ctx, "CVE-2003-0784")) {
      Cov("passwd", "exploit_gecos");
      return ExploitPayload(ctx);
    }
    Cov("passwd", "resolve_target");
    auto self = LookupUserByUid(ctx, ctx.task.cred.ruid);
    if (!self.has_value()) {
      Cov("passwd", "err_no_user");
      ctx.Err("passwd: cannot determine your user name\n");
      return 1;
    }
    std::string target_name = args.empty() ? self->name : args[0];
    Cov("passwd", "check_self_or_root");
    if (target_name != self->name && ctx.task.cred.ruid != kRootUid) {
      Cov("passwd", "err_not_permitted");
      ctx.Err("passwd: You may not view or modify password information for " + target_name +
              ".\n");
      return 1;
    }

    if (!protego_mode) {
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("passwd: must be setuid root\n");
        return 1;
      }
      // Verify the current password (root skips). The lock spans the whole
      // read-verify-rewrite so a concurrent passwd run cannot interleave its
      // own rewrite inside ours and lose one of the updates.
      FileLockGuard shadow_lock(ctx, "/etc/shadow", /*exclusive=*/true);
      auto shadow = ctx.kernel.ReadWholeFile(ctx.task, "/etc/shadow");
      if (!shadow.ok()) {
        ctx.Err("passwd: cannot read shadow database\n");
        return 1;
      }
      auto entries = ParseShadow(shadow.value());
      if (!entries.ok()) {
        ctx.Err("passwd: corrupt shadow database\n");
        return 1;
      }
      std::string old_hash;
      for (const ShadowEntry& e : entries.value()) {
        if (e.name == target_name) {
          old_hash = e.hash;
        }
      }
      if (ctx.task.cred.ruid != kRootUid) {
        Cov("passwd", "verify_old");
        ctx.Out("Current password: ");
        auto old_password = ctx.ReadLine();
        if (!old_password.has_value() || !VerifyPassword(*old_password, old_hash)) {
          Cov("passwd", "err_auth");
          ctx.Err("passwd: Authentication token manipulation error\n");
          return 1;
        }
      }
      Cov("passwd", "prompt_new");
      ctx.Out("New password: ");
      auto new_password = ctx.ReadLine();
      if (!new_password.has_value()) {
        ctx.Err("passwd: password unchanged\n");
        return 1;
      }
      Cov("passwd", "hash_new");
      std::string new_hash =
          CryptPassword(*new_password, MakeSalt(ctx.kernel.clock().Now() + ctx.task.pid));
      Cov("passwd", "write_db");
      // The dangerous operation Protego eliminates: a setuid binary
      // rewriting the WHOLE shared shadow database.
      std::vector<ShadowEntry> updated = entries.take();
      for (ShadowEntry& e : updated) {
        if (e.name == target_name) {
          e.hash = new_hash;
          e.last_change = ctx.kernel.clock().Now();
        }
      }
      auto w = ctx.kernel.WriteWholeFile(ctx.task, "/etc/shadow", SerializeShadow(updated));
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
      if (!w.ok()) {
        Cov("passwd", "err_write");
        ctx.Err("passwd: " + w.error().ToString() + "\n");
        return 1;
      }
      Cov("passwd", "report_ok");
      ctx.Out("passwd: password updated successfully\n");
      return 0;
    }

    // Protego passwd: the read of the user's own shadow fragment is gated by
    // kernel-enforced reauthentication (the Reauth_Read rule); passing that
    // gate IS the current-password check.
    std::string shadow_path = "/etc/shadows/" + target_name;
    Cov("passwd", "verify_old");
    auto current = ctx.kernel.ReadWholeFile(ctx.task, shadow_path);
    if (!current.ok()) {
      Cov("passwd", "err_auth");
      ctx.Err("passwd: Authentication token manipulation error\n");
      return 1;
    }
    auto entry = ParseShadowLine(Trim(current.value()));
    if (!entry.ok()) {
      ctx.Err("passwd: corrupt shadow record\n");
      return 1;
    }
    Cov("passwd", "prompt_new");
    ctx.Out("New password: ");
    auto new_password = ctx.ReadLine();
    if (!new_password.has_value()) {
      ctx.Err("passwd: password unchanged\n");
      return 1;
    }
    Cov("passwd", "hash_new");
    ShadowEntry updated = entry.take();
    updated.hash = CryptPassword(*new_password, MakeSalt(ctx.kernel.clock().Now() + ctx.task.pid));
    updated.last_change = ctx.kernel.clock().Now();
    Cov("passwd", "write_db");
    auto w = ctx.kernel.WriteWholeFile(ctx.task, shadow_path, updated.ToLine() + "\n");
    if (!w.ok()) {
      Cov("passwd", "err_write");
      ctx.Err("passwd: " + w.error().ToString() + "\n");
      return 1;
    }
    Cov("passwd", "report_ok");
    ctx.Out("passwd: password updated successfully\n");
    return 0;
  };
}

ProgramMain MakeChshMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("chsh", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      Cov("chsh", "err_usage");
      ctx.Err("usage: chsh <shell> [user]\n");
      return 1;
    }
    if (ExploitTriggered(ctx, "CVE-2002-1616") || ExploitTriggered(ctx, "CVE-2005-1335") ||
        ExploitTriggered(ctx, "CVE-2011-0721")) {
      Cov("chsh", "exploit_arg");
      return ExploitPayload(ctx);
    }
    const std::string& shell = args[0];
    Cov("chsh", "resolve_target");
    auto self = LookupUserByUid(ctx, ctx.task.cred.ruid);
    if (!self.has_value()) {
      ctx.Err("chsh: unknown user\n");
      return 1;
    }
    std::string target = args.size() > 1 ? args[1] : self->name;
    Cov("chsh", "check_self_or_root");
    if (target != self->name && ctx.task.cred.ruid != kRootUid) {
      Cov("chsh", "err_not_permitted");
      ctx.Err("chsh: you may not change the shell for " + target + "\n");
      return 1;
    }
    Cov("chsh", "validate_shell");
    if (!ValidShell(ctx, shell)) {
      Cov("chsh", "err_bad_shell");
      ctx.Err("chsh: " + shell + " is not listed in /etc/shells\n");
      return 1;
    }
    Cov("chsh", "write_db");
    Result<Unit> w = protego_mode
        ? FragmentUpdatePasswdRecord(ctx, target, [&](PasswdEntry* e) { e->shell = shell; })
        : StockUpdatePasswdRecord(ctx, target, [&](PasswdEntry* e) { e->shell = shell; });
    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    if (!w.ok()) {
      Cov("chsh", "err_write");
      ctx.Err("chsh: " + w.error().ToString() + "\n");
      return 1;
    }
    Cov("chsh", "report_ok");
    ctx.Out("chsh: shell changed to " + shell + "\n");
    return 0;
  };
}

ProgramMain MakeChfnMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("chfn", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      Cov("chfn", "err_usage");
      ctx.Err("usage: chfn <full-name> [user]\n");
      return 1;
    }
    if (ExploitTriggered(ctx, "CVE-2002-1616") || ExploitTriggered(ctx, "CVE-2005-1335") ||
        ExploitTriggered(ctx, "CVE-2011-0721")) {
      Cov("chfn", "exploit_gecos");
      return ExploitPayload(ctx);
    }
    const std::string& gecos = args[0];
    Cov("chfn", "resolve_target");
    auto self = LookupUserByUid(ctx, ctx.task.cred.ruid);
    if (!self.has_value()) {
      ctx.Err("chfn: unknown user\n");
      return 1;
    }
    std::string target = args.size() > 1 ? args[1] : self->name;
    Cov("chfn", "check_self_or_root");
    if (target != self->name && ctx.task.cred.ruid != kRootUid) {
      Cov("chfn", "err_not_permitted");
      ctx.Err("chfn: you may not change information for " + target + "\n");
      return 1;
    }
    Cov("chfn", "write_db");
    Result<Unit> w = protego_mode
        ? FragmentUpdatePasswdRecord(ctx, target, [&](PasswdEntry* e) { e->gecos = gecos; })
        : StockUpdatePasswdRecord(ctx, target, [&](PasswdEntry* e) { e->gecos = gecos; });
    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    if (!w.ok()) {
      Cov("chfn", "err_write");
      ctx.Err("chfn: " + w.error().ToString() + "\n");
      return 1;
    }
    Cov("chfn", "report_ok");
    ctx.Out("chfn: information changed\n");
    return 0;
  };
}

ProgramMain MakeGpasswdMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("gpasswd", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.size() < 2) {
      Cov("gpasswd", "err_usage");
      ctx.Err("usage: gpasswd <group> <new-password>\n");
      return 1;
    }
    const std::string& group_name = args[0];
    const std::string& new_password = args[1];
    Cov("gpasswd", "resolve_group");
    auto group = LookupGroup(ctx, group_name);
    if (!group.has_value()) {
      Cov("gpasswd", "err_no_group");
      ctx.Err("gpasswd: group '" + group_name + "' does not exist\n");
      return 1;
    }
    // The group administrator is its first member.
    Cov("gpasswd", "admin_check");
    auto self = LookupUserByUid(ctx, ctx.task.cred.ruid);
    bool is_admin = ctx.task.cred.ruid == kRootUid ||
                    (self.has_value() && !group->members.empty() &&
                     group->members[0] == self->name);

    Cov("gpasswd", "hash_new");
    std::string new_hash =
        CryptPassword(new_password, MakeSalt(ctx.kernel.clock().Now() + ctx.task.pid));

    if (!protego_mode) {
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("gpasswd: must be setuid root\n");
        return 1;
      }
      if (!is_admin) {
        Cov("gpasswd", "err_not_permitted");
        ctx.Err("gpasswd: Permission denied\n");
        (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
        return 1;
      }
      Cov("gpasswd", "write_db");
      auto content = ctx.kernel.ReadWholeFile(ctx.task, "/etc/group");
      if (!content.ok()) {
        ctx.Err("gpasswd: cannot read group database\n");
        return 1;
      }
      auto entries = ParseGroup(content.value());
      if (!entries.ok()) {
        ctx.Err("gpasswd: corrupt group database\n");
        return 1;
      }
      std::vector<GroupEntry> updated = entries.take();
      for (GroupEntry& e : updated) {
        if (e.name == group_name) {
          e.password_hash = new_hash;
        }
      }
      auto w = ctx.kernel.WriteWholeFile(ctx.task, "/etc/group", SerializeGroup(updated));
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
      if (!w.ok()) {
        Cov("gpasswd", "err_write");
        ctx.Err("gpasswd: " + w.error().ToString() + "\n");
        return 1;
      }
      Cov("gpasswd", "report_ok");
      ctx.Out("gpasswd: password for group " + group_name + " changed\n");
      return 0;
    }

    // Protego gpasswd: edit the group fragment; DAC on the fragment (owned
    // by the group administrator) enforces who may do this.
    Cov("gpasswd", "write_db");
    std::string path = "/etc/groups/" + group_name;
    GroupEntry updated = *group;
    updated.password_hash = new_hash;
    auto w = ctx.kernel.WriteWholeFile(ctx.task, path, updated.ToLine() + "\n");
    if (!w.ok()) {
      Cov("gpasswd", "err_not_permitted");
      ctx.Err("gpasswd: Permission denied\n");
      return 1;
    }
    Cov("gpasswd", "report_ok");
    ctx.Out("gpasswd: password for group " + group_name + " changed\n");
    return 0;
  };
}

ProgramMain MakeVipwMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    // The "editor" input: one passwd(5) line from the terminal.
    auto line = ctx.ReadLine();
    if (!line.has_value()) {
      ctx.Err("vipw: no input\n");
      return 1;
    }
    auto entry = ParsePasswdLine(Trim(*line));
    if (!entry.ok()) {
      ctx.Err("vipw: invalid passwd record\n");
      return 1;
    }
    if (!protego_mode) {
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("vipw: must be setuid root\n");
        return 1;
      }
      // Stock vipw rewrites the SHARED database.
      auto w = StockUpdatePasswdRecord(ctx, entry.value().name, [&](PasswdEntry* e) {
        *e = entry.value();
      });
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
      if (!w.ok()) {
        ctx.Err("vipw: " + w.error().ToString() + "\n");
        return 1;
      }
      ctx.Out("vipw: record updated\n");
      return 0;
    }
    // Protego vipw (+40 lines in the paper): edits the per-user file; file
    // permissions decide whether this caller may touch this record.
    std::string path = "/etc/passwds/" + entry.value().name;
    auto w = ctx.kernel.WriteWholeFile(ctx.task, path, entry.value().ToLine() + "\n");
    if (!w.ok()) {
      ctx.Err("vipw: " + w.error().ToString() + "\n");
      return 1;
    }
    ctx.Out("vipw: record updated\n");
    return 0;
  };
}

}  // namespace protego
