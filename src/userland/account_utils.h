// The credential-database family: passwd, chsh, chfn, gpasswd, vipw (§4.4).
//
// protego_mode=false builds the stock setuid-root binaries that rewrite the
// SHARED database files (/etc/passwd, /etc/shadow, /etc/group) after
// validating the change themselves; protego_mode=true builds the
// deprivileged binaries that edit the user's own fragment under
// /etc/passwds//etc/shadows//etc/groups, where ordinary file permissions
// enforce record-level access control.

#ifndef SRC_USERLAND_ACCOUNT_UTILS_H_
#define SRC_USERLAND_ACCOUNT_UTILS_H_

#include "src/kernel/kernel.h"

namespace protego {

ProgramMain MakePasswdMain(bool protego_mode);
ProgramMain MakeChshMain(bool protego_mode);
ProgramMain MakeChfnMain(bool protego_mode);
ProgramMain MakeGpasswdMain(bool protego_mode);
ProgramMain MakeVipwMain(bool protego_mode);

void DeclareAccountCoverage();

}  // namespace protego

#endif  // SRC_USERLAND_ACCOUNT_UTILS_H_
