// Shared helpers for the simulated userland binaries: user/group lookups via
// the legacy databases, privilege bracketing, and the exploit payload used
// by the Table 6 security evaluation.

#ifndef SRC_USERLAND_UTIL_H_
#define SRC_USERLAND_UTIL_H_

#include <optional>
#include <string>

#include "src/config/passwd_db.h"
#include "src/kernel/kernel.h"

namespace protego {

// Reads the legacy /etc/passwd through the calling task and resolves a user
// name (or numeric string) to its entry.
std::optional<PasswdEntry> LookupUser(ProcessContext& ctx, const std::string& name_or_uid);
std::optional<PasswdEntry> LookupUserByUid(ProcessContext& ctx, Uid uid);
std::optional<GroupEntry> LookupGroup(ProcessContext& ctx, const std::string& name);

// Advisory flock bracket over a shared database file, lckpwdf(3)-style:
// readers hold a shared lock, updaters hold an exclusive lock across their
// whole read-modify-write so concurrent rewrites can neither interleave
// (lost update) nor expose the truncate-then-write window to readers.
// PROTEGO_NO_FLOCK=1 in the environment skips locking; the interleaving
// explorer uses that to reproduce the unlocked races.
class FileLockGuard {
 public:
  FileLockGuard(ProcessContext& ctx, const std::string& path, bool exclusive);
  ~FileLockGuard();

  FileLockGuard(const FileLockGuard&) = delete;
  FileLockGuard& operator=(const FileLockGuard&) = delete;

 private:
  ProcessContext& ctx_;
  int fd_ = -1;
  bool locked_ = false;
};

// The attacker payload for the historical-CVE study (Table 6). A utility
// whose documented vulnerable point is reached with the exploit trigger set
// calls this; the payload then attempts every privilege-escalation action
// an attacker would, WITH THE UTILITY'S CURRENT CREDENTIALS:
//   * overwrite /etc/shadow (set root's password)
//   * install a rootkit at /sbin/rootkit
//   * replace /etc/hosts (tamper with trusted config)
//   * bind the SMTP port
//   * setuid(0)
// It prints one "EXPLOIT <action>=ok|err" line per attempt; the harness
// declares privilege escalation iff any action succeeded that the invoking
// user could not already perform.
int ExploitPayload(ProcessContext& ctx);

// True when this invocation carries the exploit trigger for `cve_id`
// (argv --exploit=<cve_id> or env EXPLOIT=<cve_id>).
bool ExploitTriggered(const ProcessContext& ctx, const std::string& cve_id);

}  // namespace protego

#endif  // SRC_USERLAND_UTIL_H_
