#include "src/userland/daemon_utils.h"

#include "src/base/hash.h"
#include "src/base/strings.h"
#include "src/net/ioctl_codes.h"
#include "src/userland/coverage.h"
#include "src/userland/util.h"

namespace protego {

ProgramMain MakeEximdMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    // argv: eximd [--deliver=<user>:<message>]...
    // Stock exim starts as root: it binds the SMTP port with privilege and
    // historically delivered local mail with root privilege (to cope with
    // spool and ~/.forward permissions). Protego exim runs as the exim user
    // throughout: /etc/bind covers port 25 and group-mail spool permissions
    // cover delivery.
    if (!protego_mode && ctx.task.cred.euid != kRootUid) {
      ctx.Err("eximd: must start as root\n");
      return 1;
    }

    auto fd = ctx.kernel.SocketCall(ctx.task, kAfInet, kSockStream, 0);
    if (!fd.ok()) {
      ctx.Err("eximd: socket: " + fd.error().ToString() + "\n");
      return 1;
    }
    auto bind = ctx.kernel.BindCall(ctx.task, fd.value(), 25);
    if (!bind.ok()) {
      ctx.Err("eximd: bind 25: " + bind.error().ToString() + "\n");
      return 1;
    }
    (void)ctx.kernel.ListenCall(ctx.task, fd.value());
    ctx.Out("eximd: listening on port 25\n");

    int delivered = 0;
    for (size_t i = 1; i < ctx.argv.size(); ++i) {
      if (!StartsWith(ctx.argv[i], "--deliver=")) {
        continue;
      }
      std::string spec = ctx.argv[i].substr(10);
      size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        ctx.Err("eximd: bad --deliver\n");
        continue;
      }
      std::string user = spec.substr(0, colon);
      std::string message = spec.substr(colon + 1);
      // Message parsing — exim's historically vulnerable surface
      // (CVE-2010-2023/2024 local privilege escalation).
      if (ExploitTriggered(ctx, "CVE-2010-2023") || ExploitTriggered(ctx, "CVE-2010-2024") ||
          ExploitTriggered(ctx, "CVE-1999-0130") || ExploitTriggered(ctx, "CVE-1999-0203") ||
          ExploitTriggered(ctx, "CVE-2000-0506")) {
        return ExploitPayload(ctx);
      }
      auto w = ctx.kernel.WriteWholeFile(ctx.task, "/var/mail/" + user,
                                         "From eximd\n" + message + "\n", /*append=*/true,
                                         /*create_mode=*/0660);
      if (!w.ok()) {
        ctx.Err("eximd: delivery to " + user + " failed: " + w.error().ToString() + "\n");
        continue;
      }
      ++delivered;
      ctx.Out("eximd: delivered to " + user + "\n");
    }

    if (!protego_mode) {
      // Stock exim drops privilege once the privileged work is done.
      (void)ctx.kernel.Setgid(ctx.task, kMailGid);
      (void)ctx.kernel.Setuid(ctx.task, kEximUid);
    }
    (void)ctx.kernel.Close(ctx.task, fd.value());
    ctx.Out(StrFormat("eximd: %d message(s) delivered\n", delivered));
    return 0;
  };
}

ProgramMain MakeHttpdMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    if (!protego_mode && ctx.task.cred.euid != kRootUid) {
      ctx.Err("httpd: must start as root\n");
      return 1;
    }
    auto fd = ctx.kernel.SocketCall(ctx.task, kAfInet, kSockStream, 0);
    if (!fd.ok()) {
      ctx.Err("httpd: socket: " + fd.error().ToString() + "\n");
      return 1;
    }
    uint16_t port = static_cast<uint16_t>(
        ParseUint(ctx.Flag("port").value_or("80")).value_or(80));
    auto bind = ctx.kernel.BindCall(ctx.task, fd.value(), port);
    if (!bind.ok()) {
      ctx.Err(StrFormat("httpd: bind %u: %s\n", port, bind.error().ToString().c_str()));
      return 1;
    }
    (void)ctx.kernel.ListenCall(ctx.task, fd.value());
    if (!protego_mode) {
      (void)ctx.kernel.Setuid(ctx.task, kWwwDataUid);
    }
    ctx.Out(StrFormat("httpd: listening on port %u\n", port));
    return 0;
  };
}

ProgramMain MakeSshKeysignMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    // argv: ssh-keysign <public-key-blob>
    if (ctx.argv.size() < 2) {
      ctx.Err("usage: ssh-keysign <data>\n");
      return 1;
    }
    if (!protego_mode && ctx.task.cred.euid != kRootUid) {
      ctx.Err("ssh-keysign: must be setuid root\n");
      return 1;
    }
    // Stock: readable because euid==0. Protego: readable because of the
    // File_Delegate rule granting THIS binary access to THIS file.
    auto key = ctx.kernel.ReadWholeFile(ctx.task, "/etc/ssh/ssh_host_key");
    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    if (!key.ok()) {
      ctx.Err("ssh-keysign: cannot read host key: " + key.error().ToString() + "\n");
      return 1;
    }
    uint64_t signature = Fnv1a(key.value() + ctx.argv[1]);
    ctx.Out(StrFormat("signature %016llx\n", static_cast<unsigned long long>(signature)));
    return 0;
  };
}

ProgramMain MakeDmcryptGetDeviceMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    // argv: dmcrypt-get-device <dm-name>
    if (ctx.argv.size() < 2) {
      ctx.Err("usage: dmcrypt-get-device <name>\n");
      return 1;
    }
    const std::string& name = ctx.argv[1];

    if (!protego_mode) {
      // Stock: the privileged ioctl returns device AND key; the binary must
      // be setuid root and is trusted to discard the key.
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("dmcrypt-get-device: must be setuid root\n");
        return 1;
      }
      auto fd = ctx.kernel.Open(ctx.task, "/dev/mapper/control", kORdWr);
      if (!fd.ok()) {
        ctx.Err("dmcrypt-get-device: " + fd.error().ToString() + "\n");
        return 1;
      }
      auto status = ctx.kernel.Ioctl(ctx.task, fd.value(), kDmTableStatus, name);
      (void)ctx.kernel.Close(ctx.task, fd.value());
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
      if (!status.ok()) {
        ctx.Err("dmcrypt-get-device: " + status.error().ToString() + "\n");
        return 1;
      }
      // Exploitable parse of the blob means the key was in this process.
      if (ExploitTriggered(ctx, "CVE-SIM-DMCRYPT")) {
        ctx.Out("EXPLOIT leak=" + status.value() + "\n");
        return ExploitPayload(ctx);
      }
      // Trusted to print only the device portion.
      auto fields = SplitWhitespace(status.value());
      ctx.Out(fields.empty() ? "?" : fields[0].substr(7));
      ctx.Out("\n");
      return 0;
    }

    // Protego (the paper's 4-line change): read the /sys file that only
    // discloses the physical device. No privilege, no key in memory.
    auto slaves = ctx.kernel.ReadWholeFile(ctx.task, "/sys/block/" + name + "/slaves");
    if (!slaves.ok()) {
      ctx.Err("dmcrypt-get-device: " + slaves.error().ToString() + "\n");
      return 1;
    }
    ctx.Out(slaves.value());
    return 0;
  };
}

}  // namespace protego

namespace protego {

ProgramMain MakeXserverMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    // argv: xserver [--mode=<WxH>]
    std::string mode = ctx.Flag("mode").value_or("1024x768");
    // Input parsing — X's historically vulnerable surface (CVE-2002-0517
    // transport parsing, CVE-2006-4447 setuid-related).
    if (ExploitTriggered(ctx, "CVE-2002-0517") || ExploitTriggered(ctx, "CVE-2006-4447")) {
      return ExploitPayload(ctx);
    }
    if (!protego_mode && ctx.task.cred.euid != kRootUid) {
      ctx.Err("xserver: must be setuid root to program the video card\n");
      return 1;
    }
    // Pre-KMS: a privileged write directly to video control state.
    // KMS: the same file is world-writable because the KERNEL validates and
    // context-switches the hardware state.
    auto w = ctx.kernel.WriteWholeFile(ctx.task, "/sys/video/mode", mode + "\n");
    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    if (!w.ok()) {
      ctx.Err("xserver: cannot set video mode: " + w.error().ToString() + "\n");
      return 1;
    }
    ctx.Out("xserver: display up at " + mode + "\n");
    return 0;
  };
}

}  // namespace protego
