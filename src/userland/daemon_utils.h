// Network daemons and special-purpose trusted binaries: eximd (mail, bind
// §4.1.3 + spool permissions §4.4), httpd (web), ssh-keysign (host-key
// delegation §4.6), dmcrypt-get-device (interface design §4, Table 4).

#ifndef SRC_USERLAND_DAEMON_UTILS_H_
#define SRC_USERLAND_DAEMON_UTILS_H_

#include "src/kernel/kernel.h"

namespace protego {

// Well-known service uids (Debian conventions).
inline constexpr Uid kEximUid = 101;
inline constexpr Gid kMailGid = 8;
inline constexpr Uid kWwwDataUid = 33;

ProgramMain MakeEximdMain(bool protego_mode);
ProgramMain MakeHttpdMain(bool protego_mode);
ProgramMain MakeSshKeysignMain(bool protego_mode);
ProgramMain MakeDmcryptGetDeviceMain(bool protego_mode);

// The X server (§4.5): pre-KMS it must be setuid root to program the video
// hardware (/sys/video/mode is root-only); with KMS the kernel owns video
// state and the same binary runs unprivileged.
ProgramMain MakeXserverMain(bool protego_mode);

}  // namespace protego

#endif  // SRC_USERLAND_DAEMON_UTILS_H_
