// The delegation family: sudo, sudoedit, su, newgrp, login (§4.3).
//
// protego_mode=false builds the stock setuid-root binaries, which parse
// /etc/sudoers, authenticate, and validate THEMSELVES before calling
// setuid() with full CAP_SETUID; protego_mode=true builds the deprivileged
// binaries that simply request the transition and let the kernel enforce
// delegation, authentication recency, and command restrictions.

#ifndef SRC_USERLAND_DELEGATION_UTILS_H_
#define SRC_USERLAND_DELEGATION_UTILS_H_

#include "src/kernel/kernel.h"

namespace protego {

ProgramMain MakeSudoMain(bool protego_mode);

// pkexec / dbus-daemon-launch-helper: PolicyKit-style run-as-root helpers.
// Protego encodes their policies as sudoers delegation rules (§4.3), so the
// deprivileged build is a thin shim over the same kernel mechanism.
ProgramMain MakePkexecMain(bool protego_mode);
ProgramMain MakeSudoeditMain(bool protego_mode);
ProgramMain MakeSuMain(bool protego_mode);
ProgramMain MakeNewgrpMain(bool protego_mode);
ProgramMain MakeLoginMain(bool protego_mode);

void DeclareDelegationCoverage();

// Resolves a command name against /usr/bin:/bin:/usr/sbin:/sbin.
std::string ResolveBinaryPath(ProcessContext& ctx, const std::string& name);

}  // namespace protego

#endif  // SRC_USERLAND_DELEGATION_UTILS_H_
