#include "src/userland/net_utils.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/config/ppp_options.h"
#include "src/net/ioctl_codes.h"
#include "src/net/routing.h"
#include "src/userland/coverage.h"
#include "src/userland/util.h"

namespace protego {

namespace {

std::vector<std::string> Positionals(const ProcessContext& ctx) {
  std::vector<std::string> out;
  for (size_t i = 1; i < ctx.argv.size(); ++i) {
    if (!StartsWith(ctx.argv[i], "--")) {
      out.push_back(ctx.argv[i]);
    }
  }
  return out;
}

// Opens the privileged socket with the setuid-granted identity. The stock
// binaries modeled here match the CVE-era versions in Table 6, which held
// root privilege through reply parsing; privilege is dropped only at exit
// (modern iputils brackets more tightly — the paper credits exactly that
// bracketing for the low escalation rate, §5.2).
Result<int> OpenRawSocket(ProcessContext& ctx, bool protego_mode, int family, int type,
                          int protocol) {
  (void)protego_mode;
  return ctx.kernel.SocketCall(ctx.task, family, type, protocol);
}

void DropPrivilegeAtExit(ProcessContext& ctx, bool protego_mode) {
  if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
    (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
  }
}

}  // namespace

void DeclareNetCoverage() {
  Coverage::Get().Declare("ping", {"parse_args", "open_socket", "send_probe",
                                   "recv_reply", "parse_reply", "report_reply", "report_summary",
                                   "err_usage", "err_socket", "err_send", "err_timeout",
                                   "err_bad_addr"});
}

ProgramMain MakePingMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("ping", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      Cov("ping", "err_usage");
      ctx.Err("Usage: ping <address> [count]\n");
      return 2;
    }
    auto dst = ParseIpv4(args[0]);
    if (!dst) {
      Cov("ping", "err_bad_addr");
      ctx.Err("ping: unknown host " + args[0] + "\n");
      return 2;
    }
    int count = static_cast<int>(
        args.size() > 1 ? ParseUint(args[1]).value_or(1) : 1);

    Cov("ping", "open_socket");
    auto fd = OpenRawSocket(ctx, protego_mode, kAfInet, kSockRaw, kProtoIcmp);
    if (!fd.ok()) {
      Cov("ping", "err_socket");
      ctx.Err("ping: socket: " + fd.error().ToString() + "\n");
      return 2;
    }

    ctx.Out(StrFormat("PING %s 56(84) bytes of data.\n", args[0].c_str()));
    int received = 0;
    for (int seq = 1; seq <= count; ++seq) {
      Cov("ping", "send_probe");
      Packet probe;
      probe.l4_proto = kProtoIcmp;
      probe.icmp_type = kIcmpEchoRequest;
      probe.dst_ip = *dst;
      probe.payload = StrFormat("seq=%d", seq);
      auto send = ctx.kernel.SendCall(ctx.task, fd.value(), probe);
      if (!send.ok()) {
        Cov("ping", "err_send");
        ctx.Err("ping: sendmsg: " + send.error().ToString() + "\n");
        continue;
      }
      Cov("ping", "recv_reply");
      auto reply = ctx.kernel.RecvCall(ctx.task, fd.value());
      if (!reply.ok() || !reply.value().has_value()) {
        Cov("ping", "err_timeout");
        continue;  // request timed out (filtered or host down)
      }
      // Parsing the attacker-controlled reply — the historically vulnerable
      // surface (e.g. CVE-2000-1213 buffer overflow in reply handling).
      Cov("ping", "parse_reply");
      if (ExploitTriggered(ctx, "CVE-2000-1213") || ExploitTriggered(ctx, "CVE-1999-1208") ||
          ExploitTriggered(ctx, "CVE-2000-1214") || ExploitTriggered(ctx, "CVE-2001-0499")) {
        return ExploitPayload(ctx);
      }
      const Packet& r = *reply.value();
      if (r.l4_proto == kProtoIcmp && r.icmp_type == kIcmpEchoReply) {
        Cov("ping", "report_reply");
        ++received;
        ctx.Out(StrFormat("64 bytes from %s: icmp_seq=%d ttl=64\n",
                          IpToString(r.src_ip).c_str(), seq));
      }
    }
    Cov("ping", "report_summary");
    ctx.Out(StrFormat("%d packets transmitted, %d received\n", count, received));
    (void)ctx.kernel.Close(ctx.task, fd.value());
    DropPrivilegeAtExit(ctx, protego_mode);
    return received > 0 ? 0 : 1;
  };
}

ProgramMain MakeTracerouteMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      ctx.Err("Usage: traceroute <address>\n");
      return 2;
    }
    auto dst = ParseIpv4(args[0]);
    if (!dst) {
      ctx.Err("traceroute: unknown host " + args[0] + "\n");
      return 2;
    }
    auto fd = OpenRawSocket(ctx, protego_mode, kAfInet, kSockRaw, kProtoUdp);
    if (!fd.ok()) {
      ctx.Err("traceroute: socket: " + fd.error().ToString() + "\n");
      return 2;
    }
    ctx.Out(StrFormat("traceroute to %s, 30 hops max\n", args[0].c_str()));
    for (uint8_t ttl = 1; ttl <= 30; ++ttl) {
      Packet probe;
      probe.l4_proto = kProtoUdp;
      probe.dst_ip = *dst;
      probe.dst_port = static_cast<uint16_t>(33434 + ttl);
      probe.ttl = ttl;
      probe.payload = "probe";
      if (!ctx.kernel.SendCall(ctx.task, fd.value(), probe).ok()) {
        break;
      }
      auto reply = ctx.kernel.RecvCall(ctx.task, fd.value());
      if (!reply.ok() || !reply.value().has_value()) {
        ctx.Out(StrFormat("%2d  * * *\n", ttl));
        continue;
      }
      if (ExploitTriggered(ctx, "CVE-2005-2071") || ExploitTriggered(ctx, "CVE-2011-0765")) {
        return ExploitPayload(ctx);
      }
      const Packet& r = *reply.value();
      ctx.Out(StrFormat("%2d  %s\n", ttl, IpToString(r.src_ip).c_str()));
      if (r.icmp_type == kIcmpDestUnreachable || r.l4_proto == kProtoUdp) {
        (void)ctx.kernel.Close(ctx.task, fd.value());
        DropPrivilegeAtExit(ctx, protego_mode);
        return 0;  // reached the destination
      }
    }
    (void)ctx.kernel.Close(ctx.task, fd.value());
    DropPrivilegeAtExit(ctx, protego_mode);
    return 0;
  };
}

ProgramMain MakeArpingMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      ctx.Err("Usage: arping <address>\n");
      return 2;
    }
    auto dst = ParseIpv4(args[0]);
    if (!dst) {
      ctx.Err("arping: bad address " + args[0] + "\n");
      return 2;
    }
    auto fd = OpenRawSocket(ctx, protego_mode, kAfPacket, kSockRaw, kProtoArp);
    if (!fd.ok()) {
      ctx.Err("arping: socket: " + fd.error().ToString() + "\n");
      return 2;
    }
    Packet probe;
    probe.l4_proto = kProtoArp;
    probe.dst_ip = *dst;
    probe.payload = "who-has";
    if (!ctx.kernel.SendCall(ctx.task, fd.value(), probe).ok()) {
      ctx.Err("arping: send failed\n");
      return 1;
    }
    auto reply = ctx.kernel.RecvCall(ctx.task, fd.value());
    (void)ctx.kernel.Close(ctx.task, fd.value());
    if (reply.ok() && reply.value().has_value()) {
      ctx.Out(StrFormat("Unicast reply from %s\n", IpToString(reply.value()->src_ip).c_str()));
      return 0;
    }
    ctx.Out("Timeout\n");
    return 1;
  };
}

ProgramMain MakeMtrMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      ctx.Err("Usage: mtr <address>\n");
      return 2;
    }
    auto dst = ParseIpv4(args[0]);
    if (!dst) {
      ctx.Err("mtr: bad address\n");
      return 2;
    }
    auto fd = OpenRawSocket(ctx, protego_mode, kAfInet, kSockRaw, kProtoIcmp);
    if (!fd.ok()) {
      ctx.Err("mtr: socket: " + fd.error().ToString() + "\n");
      return 2;
    }
    if (ExploitTriggered(ctx, "CVE-2000-0172") || ExploitTriggered(ctx, "CVE-2002-0497") ||
        ExploitTriggered(ctx, "CVE-2004-1224")) {
      return ExploitPayload(ctx);
    }
    int received = 0;
    constexpr int kRounds = 3;
    for (int i = 0; i < kRounds; ++i) {
      Packet probe;
      probe.l4_proto = kProtoIcmp;
      probe.icmp_type = kIcmpEchoRequest;
      probe.dst_ip = *dst;
      if (!ctx.kernel.SendCall(ctx.task, fd.value(), probe).ok()) {
        continue;
      }
      auto reply = ctx.kernel.RecvCall(ctx.task, fd.value());
      if (reply.ok() && reply.value().has_value()) {
        ++received;
      }
    }
    (void)ctx.kernel.Close(ctx.task, fd.value());
    ctx.Out(StrFormat("mtr: %s loss %d%%\n", args[0].c_str(),
                      100 * (kRounds - received) / kRounds));
    return 0;
  };
}

ProgramMain MakePppdMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    // argv: pppd [--opt=<name>]... [--connect=<local>,<remote>] [--route=<dst/prefix>]
    if (!protego_mode && ctx.task.cred.euid != kRootUid) {
      ctx.Err("pppd: must be setuid root\n");
      return 1;
    }
    auto dev = ctx.kernel.Open(ctx.task, "/dev/ppp", kORdWr);
    if (!dev.ok()) {
      ctx.Err("pppd: /dev/ppp: " + dev.error().ToString() + "\n");
      return 1;
    }
    auto unit_reply = ctx.kernel.Ioctl(ctx.task, dev.value(), kPppIocNewUnit, "");
    if (!unit_reply.ok()) {
      ctx.Err("pppd: PPPIOCNEWUNIT: " + unit_reply.error().ToString() + "\n");
      return 1;
    }
    std::string unit = unit_reply.value();  // "unit=N" -> keep the number
    unit = unit.substr(unit.find('=') + 1);

    // Stock pppd enforces its policy in userspace when invoked by a
    // non-root user: only safe session options, only non-conflicting
    // routes. (This is the ~10k-line trusted code Protego deprivileges.)
    PppOptions stock_policy;
    bool stock_user = !protego_mode && ctx.task.cred.ruid != kRootUid;
    if (stock_user) {
      auto content = ctx.kernel.ReadWholeFile(ctx.task, "/etc/ppp/options");
      if (content.ok()) {
        auto parsed = ParsePppOptions(content.value());
        if (parsed.ok()) {
          stock_policy = parsed.take();
        }
      }
    }

    // Session options (compression etc.).
    for (size_t i = 1; i < ctx.argv.size(); ++i) {
      if (StartsWith(ctx.argv[i], "--opt=")) {
        std::string opt = ctx.argv[i].substr(6);
        if (stock_user && !stock_policy.IsSafeOption(opt)) {
          ctx.Err("pppd: option '" + opt + "' is privileged\n");
          return 1;
        }
        auto r = ctx.kernel.Ioctl(ctx.task, dev.value(), kPppIocSFlags, unit + " " + opt);
        if (!r.ok()) {
          ctx.Err("pppd: option '" + opt + "': " + r.error().ToString() + "\n");
          return 1;
        }
      }
    }

    // Bring up the link.
    if (auto c = ctx.Flag("connect"); c.has_value()) {
      auto parts = Split(*c, ',');
      if (parts.size() != 2) {
        ctx.Err("pppd: bad --connect\n");
        return 1;
      }
      auto r = ctx.kernel.Ioctl(ctx.task, dev.value(), kPppIocConnect,
                                unit + " " + parts[0] + " " + parts[1]);
      if (!r.ok()) {
        ctx.Err("pppd: connect: " + r.error().ToString() + "\n");
        return 1;
      }
      ctx.Out("ppp" + unit + ": link established\n");
    }

    // Optional route over the new link.
    if (auto route = ctx.Flag("route"); route.has_value()) {
      if (stock_user) {
        if (!stock_policy.user_routes) {
          ctx.Err("pppd: user routes not permitted\n");
          return 1;
        }
        // Userspace conflict check against /proc/net/route.
        auto table = ctx.kernel.ReadWholeFile(ctx.task, "/proc/net/route");
        auto candidate = ParseDstSpec(*route);
        if (table.ok() && candidate.ok()) {
          for (const std::string& line : Split(table.value(), '\n')) {
            auto fields = SplitWhitespace(line);
            if (fields.empty()) {
              continue;
            }
            auto existing = ParseDstSpec(fields[0]);
            if (!existing.ok()) {
              continue;
            }
            int shorter = std::min(existing.value().second, candidate.value().second);
            if (RoutingTable::PrefixContains(existing.value().first, shorter,
                                             candidate.value().first) ||
                RoutingTable::PrefixContains(candidate.value().first, shorter,
                                             existing.value().first)) {
              ctx.Err("pppd: route conflicts with existing route\n");
              return 1;
            }
          }
        }
      }
      auto sock = ctx.kernel.SocketCall(ctx.task, kAfInet, kSockDgram, 0);
      if (!sock.ok()) {
        ctx.Err("pppd: socket: " + sock.error().ToString() + "\n");
        return 1;
      }
      auto r = ctx.kernel.Ioctl(ctx.task, sock.value(), kSiocAddRt,
                                *route + " 0.0.0.0 ppp" + unit);
      (void)ctx.kernel.Close(ctx.task, sock.value());
      if (!r.ok()) {
        ctx.Err("pppd: route: " + r.error().ToString() + "\n");
        return 1;
      }
      ctx.Out("route " + *route + " via ppp" + unit + "\n");
    }

    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    (void)ctx.kernel.Close(ctx.task, dev.value());
    ctx.Out("pppd: done\n");
    return 0;
  };
}

ProgramMain MakeIptablesMain() {
  return [](ProcessContext& ctx) -> int {
    // argv: iptables -A|-I <rule tokens...> | -D <comment> | -L
    // Rule tokens use the kernel wire grammar directly (chain=, proto=,
    // dport=, icmptype=, raw=, spoofed-src=, verdict=, comment=).
    if (ctx.argv.size() < 2) {
      ctx.Err("usage: iptables -A <rule...> | -D <comment> | -L\n");
      return 2;
    }
    auto sock = ctx.kernel.SocketCall(ctx.task, kAfInet, kSockDgram, 0);
    if (!sock.ok()) {
      ctx.Err("iptables: socket: " + sock.error().ToString() + "\n");
      return 1;
    }
    const std::string& op = ctx.argv[1];
    Result<std::string> reply = Error(Errno::kEINVAL, "bad operation");
    if (op == "-L") {
      reply = ctx.kernel.Ioctl(ctx.task, sock.value(), kSiocNfList, "");
    } else if (op == "-D" && ctx.argv.size() >= 3) {
      reply = ctx.kernel.Ioctl(ctx.task, sock.value(), kSiocNfDelete, ctx.argv[2]);
    } else if (op == "-A" && ctx.argv.size() >= 3) {
      std::string spec;
      for (size_t i = 2; i < ctx.argv.size(); ++i) {
        spec += (i > 2 ? " " : "") + ctx.argv[i];
      }
      reply = ctx.kernel.Ioctl(ctx.task, sock.value(), kSiocNfAppend, spec);
    } else {
      ctx.Err("iptables: unknown operation " + op + "\n");
      (void)ctx.kernel.Close(ctx.task, sock.value());
      return 2;
    }
    (void)ctx.kernel.Close(ctx.task, sock.value());
    if (!reply.ok()) {
      ctx.Err("iptables: " + reply.error().ToString() + "\n");
      return 1;
    }
    ctx.Out(reply.value());
    if (!reply.value().empty() && reply.value().back() != '\n') {
      ctx.Out("\n");
    }
    return 0;
  };
}

}  // namespace protego
