#include "src/userland/mount_utils.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/config/fstab.h"
#include "src/userland/coverage.h"
#include "src/userland/util.h"

namespace protego {

namespace {

// Positional (non-flag) arguments after argv[0].
std::vector<std::string> Positionals(const ProcessContext& ctx) {
  std::vector<std::string> out;
  for (size_t i = 1; i < ctx.argv.size(); ++i) {
    const std::string& a = ctx.argv[i];
    if (StartsWith(a, "--")) {
      continue;
    }
    out.push_back(a);
  }
  return out;
}

Result<std::vector<FstabEntry>> ReadFstab(ProcessContext& ctx) {
  ASSIGN_OR_RETURN(std::string content, ctx.kernel.ReadWholeFile(ctx.task, "/etc/fstab"));
  return ParseFstab(content);
}

const FstabEntry* MatchFstab(const std::vector<FstabEntry>& entries, const std::string& what) {
  for (const FstabEntry& e : entries) {
    if (e.device == what || e.mountpoint == what) {
      return &e;
    }
  }
  return nullptr;
}

// Reads the kernel mount table through /proc/mounts.
struct ProcMount {
  std::string source, mountpoint, fstype, options;
  Uid mounter = 0;
};

std::vector<ProcMount> ReadProcMounts(ProcessContext& ctx) {
  std::vector<ProcMount> out;
  auto content = ctx.kernel.ReadWholeFile(ctx.task, "/proc/mounts");
  if (!content.ok()) {
    return out;
  }
  for (const std::string& line : Split(content.value(), '\n')) {
    auto f = SplitWhitespace(line);
    if (f.size() == 5) {
      ProcMount m;
      m.source = f[0];
      m.mountpoint = f[1];
      m.fstype = f[2];
      m.options = f[3];
      m.mounter = static_cast<Uid>(ParseUint(f[4]).value_or(0));
      out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace

void DeclareMountCoverage() {
  Coverage::Get().Declare("mount", {"parse_args", "parse_options", "read_fstab", "match_entry",
                                    "user_check", "do_mount", "drop_priv", "report_ok",
                                    "err_usage", "err_not_root", "err_no_entry",
                                    "err_not_permitted", "err_mount_failed", "err_bad_fstab"});
  Coverage::Get().Declare("umount", {"parse_args", "read_mtab", "find_mount", "user_check",
                                     "do_umount", "drop_priv", "report_ok", "err_usage",
                                     "err_not_mounted", "err_not_permitted", "err_umount_failed",
                                     "read_fstab_for_user"});
}

ProgramMain MakeMountMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("mount", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      Cov("mount", "err_usage");
      ctx.Err("Usage: mount <device|mountpoint> [options]\n");
      return 1;
    }

    // Option parsing — the historically vulnerable surface (e.g.
    // CVE-2006-2183: heap corruption parsing user-supplied options).
    Cov("mount", "parse_options");
    std::vector<std::string> extra_options;
    if (auto o = ctx.Flag("options"); o.has_value()) {
      if (ExploitTriggered(ctx, "CVE-2006-2183") || ExploitTriggered(ctx, "CVE-2007-5191")) {
        return ExploitPayload(ctx);
      }
      extra_options = Split(*o, ',');
    }

    Cov("mount", "read_fstab");
    auto fstab = ReadFstab(ctx);
    if (!fstab.ok()) {
      Cov("mount", "err_bad_fstab");
      ctx.Err("mount: cannot read /etc/fstab: " + fstab.error().ToString() + "\n");
      return 1;
    }
    Cov("mount", "match_entry");
    const FstabEntry* entry = MatchFstab(fstab.value(), args[0]);

    std::string source = args.size() > 1 ? args[0] : (entry ? entry->device : args[0]);
    std::string target = args.size() > 1 ? args[1] : (entry ? entry->mountpoint : "");
    std::string fstype = ctx.Flag("types").value_or(entry ? entry->fstype : "");
    std::vector<std::string> options = entry ? entry->options : std::vector<std::string>{};
    for (const std::string& o : extra_options) {
      options.push_back(o);
    }
    if (target.empty() || fstype.empty()) {
      Cov("mount", "err_no_entry");
      ctx.Err("mount: can't find " + args[0] + " in /etc/fstab\n");
      return 1;
    }

    if (!protego_mode) {
      // Stock mount: the trusted binary enforces the fstab policy itself.
      if (ctx.task.cred.euid != kRootUid) {
        Cov("mount", "err_not_root");
        ctx.Err("mount: must be setuid root\n");
        return 1;
      }
      if (ctx.task.cred.ruid != kRootUid) {
        Cov("mount", "user_check");
        if (entry == nullptr || !entry->UserMountable()) {
          Cov("mount", "err_not_permitted");
          ctx.Err("mount: only root can mount " + source + "\n");
          return 32;
        }
      }
    }

    Cov("mount", "do_mount");
    auto r = ctx.kernel.Mount(ctx.task, source, target, fstype, options);
    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      Cov("mount", "drop_priv");
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    if (!r.ok()) {
      Cov("mount", "err_mount_failed");
      ctx.Err("mount: " + r.error().ToString() + "\n");
      return 32;
    }
    Cov("mount", "report_ok");
    ctx.Out(source + " mounted on " + target + "\n");
    return 0;
  };
}

ProgramMain MakeUmountMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    Cov("umount", "parse_args");
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      Cov("umount", "err_usage");
      ctx.Err("Usage: umount <mountpoint>\n");
      return 1;
    }
    Cov("umount", "read_mtab");
    std::vector<ProcMount> mounts = ReadProcMounts(ctx);
    Cov("umount", "find_mount");
    const ProcMount* mounted = nullptr;
    for (const ProcMount& m : mounts) {
      if (m.mountpoint == args[0] || m.source == args[0]) {
        mounted = &m;
        break;
      }
    }
    if (mounted == nullptr) {
      Cov("umount", "err_not_mounted");
      ctx.Err("umount: " + args[0] + ": not mounted\n");
      return 1;
    }

    if (!protego_mode && ctx.task.cred.ruid != kRootUid) {
      Cov("umount", "user_check");
      Cov("umount", "read_fstab_for_user");
      auto fstab = ReadFstab(ctx);
      const FstabEntry* entry =
          fstab.ok() ? MatchFstab(fstab.value(), mounted->mountpoint) : nullptr;
      bool permitted = entry != nullptr && entry->UserMountable() &&
                       (entry->AnyUserMayUnmount() || mounted->mounter == ctx.task.cred.ruid);
      if (!permitted) {
        Cov("umount", "err_not_permitted");
        ctx.Err("umount: only root can unmount " + mounted->mountpoint + "\n");
        return 1;
      }
    }

    Cov("umount", "do_umount");
    auto r = ctx.kernel.Umount(ctx.task, mounted->mountpoint);
    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      Cov("umount", "drop_priv");
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    if (!r.ok()) {
      Cov("umount", "err_umount_failed");
      ctx.Err("umount: " + r.error().ToString() + "\n");
      return 1;
    }
    Cov("umount", "report_ok");
    ctx.Out(mounted->mountpoint + " unmounted\n");
    return 0;
  };
}

ProgramMain MakeFusermountMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    std::vector<std::string> args = Positionals(ctx);
    if (args.empty()) {
      ctx.Err("Usage: fusermount <mountpoint>\n");
      return 1;
    }
    const std::string& target = args[0];
    if (!protego_mode) {
      if (ctx.task.cred.euid != kRootUid) {
        ctx.Err("fusermount: must be setuid root\n");
        return 1;
      }
      // Stock fusermount's own policy: the mountpoint must belong to the
      // invoking user.
      auto st = ctx.kernel.Stat(ctx.task, target);
      if (!st.ok() || st.value().uid != ctx.task.cred.ruid) {
        ctx.Err("fusermount: mountpoint not owned by user\n");
        return 1;
      }
    }
    auto r = ctx.kernel.Mount(ctx.task, "fuse", target, "fuse", {"user"});
    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    if (!r.ok()) {
      ctx.Err("fusermount: " + r.error().ToString() + "\n");
      return 1;
    }
    ctx.Out("fuse mounted on " + target + "\n");
    return 0;
  };
}

ProgramMain MakeEjectMain(bool protego_mode) {
  return [protego_mode](ProcessContext& ctx) -> int {
    std::vector<std::string> args = Positionals(ctx);
    std::string device = args.empty() ? "/dev/cdrom" : args[0];
    // If the medium is mounted, unmount it first (as eject(1) does).
    std::vector<ProcMount> mounts = ReadProcMounts(ctx);
    for (const ProcMount& m : mounts) {
      if (m.source == device) {
        if (!protego_mode && ctx.task.cred.euid != kRootUid) {
          ctx.Err("eject: must be setuid root\n");
          return 1;
        }
        auto r = ctx.kernel.Umount(ctx.task, m.mountpoint);
        if (!r.ok()) {
          ctx.Err("eject: " + r.error().ToString() + "\n");
          return 1;
        }
      }
    }
    if (!protego_mode && ctx.task.cred.ruid != ctx.task.cred.euid) {
      (void)ctx.kernel.Setuid(ctx.task, ctx.task.cred.ruid);
    }
    ctx.Out(device + ": ejected\n");
    return 0;
  };
}

}  // namespace protego
