// Installs the full simulated userland into a kernel: the 20 studied
// utilities (in stock-setuid or deprivileged-Protego builds) plus the small
// helper binaries (id, sh, tee, cat, lpr) used by tests and delegation.

#ifndef SRC_USERLAND_INSTALL_H_
#define SRC_USERLAND_INSTALL_H_

#include "src/base/result.h"
#include "src/kernel/kernel.h"

namespace protego {

// protego_mode=false installs the binaries setuid-root (mode 4755) with
// their userspace policy checks active; protego_mode=true installs them
// mode 0755 with the hard-coded euid checks removed. setcap_mode (only
// meaningful with protego_mode=false) clears the setuid bit and instead
// grants each binary the file capabilities a setcap deployment would
// (§3.1) — the configuration whose residual risk §3.2 analyzes.
Result<Unit> InstallUserland(Kernel* kernel, bool protego_mode, bool setcap_mode = false);

}  // namespace protego

#endif  // SRC_USERLAND_INSTALL_H_
