// Deterministic fault injection, modeled on Linux's CONFIG_FAULT_INJECTION
// (failslab / fail_page_alloc / fail_make_request).
//
// A FaultRegistry holds one slot per named fault *site* — a choke point in
// the kernel where an operation can be made to fail with a configured errno:
// VFS vnode allocation, VFS block allocation, fd-table slot allocation,
// syscall-gate entry, LSM hook dispatch, netfilter chain evaluation, policy
// table compilation, and the auth-service round trip. Instrumented code asks
// `Evaluate(site)` at the choke point; when the site's filters match and its
// probability/interval/times gates fire, the call returns the configured
// errno and the caller fails exactly as if the real resource had run out.
//
// Determinism is the whole point: probability decisions come from a per-site
// seeded splitmix64 stream (the same generator the deterministic scheduler
// uses), interval/times counters are exact, and no wall-clock or global
// randomness is consulted. A recorded {seed, site-config} tuple replays to
// the identical injection sequence — under the deterministic scheduler, to
// the identical system state. Every injection is stamped into the decision
// trace via the kFaultInject tracepoint, so /proc/protego/trace shows *why*
// a syscall failed.
//
// Hot-path discipline: when no site is enabled, Evaluate() is one counter
// load and one branch (`enabled_count_ == 0`), so the disabled-site overhead
// on the syscall path is ≈ 0. When sites ARE armed, evaluations of sites
// that are not enabled cost one thread-local mask test: each thread caches
// two per-site bitmasks keyed on (registry id, arm generation) — armed
// context-free sites, and armed sites carrying pid/sysno filters. The masks
// depend only on the configuration (never on the syscall context), so they
// stay valid across context swaps and are recomputed only after
// Configure/Disable/Reset. A context-free hit proceeds straight to the
// injection gates; a filtered hit re-checks pid/sysno against the current
// context and declines without touching shared site state on a miss (see
// bench/fault_bench).

#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/attribution.h"
#include "src/base/metrics.h"
#include "src/base/result.h"
#include "src/base/tracepoint.h"

namespace protego {

// The static inventory of fault sites. Adding a site means adding an id
// here, a name in fault.cc, and an Evaluate() call at the choke point.
enum class FaultSite : uint8_t {
  kVfsVnodeAlloc = 0,  // Vfs::CreateNode — vnode/inode allocation (ENOMEM)
  kVfsBlockAlloc,      // Vfs::WriteNode — data block allocation (ENOSPC)
  kFdAlloc,            // FdTable slot allocation (EMFILE/ENFILE)
  kSyscallEntry,       // SyscallGate::Run, before the syscall body
  kLsmHook,            // LsmStack dispatch — hooks fail CLOSED (deny)
  kNetfilterEval,      // Netfilter::Evaluate — chains fail CLOSED (drop)
  kPolicyCompile,      // PolicyEngine build during a /proc/protego swap
  kAuthRoundTrip,      // auth-service credential check round trip
  kCount,              // sentinel
};

inline constexpr size_t kFaultSiteCount = static_cast<size_t>(FaultSite::kCount);

const char* FaultSiteName(FaultSite site);
std::optional<FaultSite> FaultSiteFromName(std::string_view name);

// One site's configuration, set via /proc/protego/fault_inject. All gates
// are ANDed: an evaluation injects only if the pid/sysno/hook filters match,
// the times budget is not exhausted, the interval counter fires, and the
// probability draw succeeds.
struct FaultConfig {
  bool enabled = false;
  Errno error = Errno::kEIO;  // errno returned on injection
  // Inject with probability prob_num/prob_den (seeded splitmix64 draw).
  // Defaults to 1/1 = always.
  uint64_t prob_num = 1;
  uint64_t prob_den = 1;
  uint64_t interval = 1;  // inject on every Nth *matching* evaluation
  uint64_t times = 0;     // stop after N injections (0 = unlimited)
  int pid = -1;           // only this pid (-1 = any)
  int sysno = -1;         // only within this syscall (-1 = any)
  int hook = -1;          // only this LSM hook (kLsmHook site; -1 = any)
  uint64_t seed = 1;      // splitmix64 stream seed (recorded for replay)
};

// The execution context the syscall gate stamps before running a syscall
// body; pid/sysno filters match against it. The slot is thread-local: under
// DetScheduler one task runs at a time, and in parallel mode each task owns
// an OS thread, so "the syscall currently executing on this thread" is
// exactly the context its nested fault sites must match. Swap/restore
// nesting (Spawn/Execve) is per-thread stack discipline either way.
struct FaultContext {
  int pid = 0;
  int sysno = -1;
};

class FaultRegistry {
 public:
  FaultRegistry();
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  // Injections are stamped into the kernel-wide decision trace.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Per-layer latency attribution: armed evaluations run under a
  // `fault_registry` frame (the disabled fast path stays scope-free).
  void set_profiler(LayerProfiler* profiler) { profiler_ = profiler; }

  // --- Configuration (the /proc/protego/fault_inject write side) ----------

  // Installs `config` for `site`, resetting the site's counters and seeding
  // its splitmix64 stream from config.seed. EINVAL on a zero denominator,
  // num > den, or a zero interval.
  Result<Unit> Configure(FaultSite site, const FaultConfig& config);

  // Disables one site (its counters are kept for post-mortem reads).
  void Disable(FaultSite site);

  // Disables every site and zeroes all counters.
  void Reset();

  const FaultConfig& config(FaultSite site) const {
    return sites_[static_cast<size_t>(site)].config;
  }

  // --- Hot path -------------------------------------------------------------

  // True iff at least one site is enabled; the guard instrumented code
  // tests before doing any per-site work.
  bool any_enabled() const { return enabled_count_ != 0; }

  // Evaluates `site` against the current context. Returns kOk (no fault) or
  // the configured errno, in which case the injection has been counted and
  // traced. `hook` is the LSM hook id for kLsmHook evaluations.
  Errno Evaluate(FaultSite site, int hook = -1);

  // Result-shaped convenience: Error(errno, "fault-injected at <what>") on
  // injection, OkUnit() otherwise.
  Result<Unit> Check(FaultSite site, const char* what, int hook = -1);

  // The gate stamps the context at syscall entry and restores the previous
  // one at exit (syscalls nest via Spawn/Execve). The cached armed masks
  // depend only on the configuration — filtered sites re-check pid/sysno
  // per evaluation — so a swap never invalidates them.
  FaultContext SwapContext(const FaultContext& ctx) {
    FaultContext prev = tls_context_;
    tls_context_ = ctx;
    return prev;
  }
  const FaultContext& context() const { return tls_context_; }

  // --- Read side ------------------------------------------------------------

  // Evaluations that reached the site while it was enabled AND its
  // pid/sysno filters matched the context (filter-excluded calls return at
  // the armed-mask test without touching the site's counters).
  uint64_t evaluations(FaultSite site) const {
    return sites_[static_cast<size_t>(site)].evaluations;
  }
  uint64_t injected(FaultSite site) const {
    return sites_[static_cast<size_t>(site)].injected;
  }
  uint64_t total_injected() const;

  // The /proc/protego/fault_inject body: one re-writable directive line per
  // enabled site (the recorded {seed, site-config} tuple), followed by
  // per-site counter comments.
  std::string Format() const;

  // protego_fault_{evaluations,injections}_total{site=...} counters.
  void CollectMetrics(MetricsBuilder& mb) const;

 private:
  // Counters and the rng stream are relaxed atomics: parallel-mode tasks
  // cross armed sites concurrently. The interval/times/probability gates
  // stay exact under DetScheduler (fetch_adds serialize with the token) and
  // are reserved via CAS in parallel mode so a `times` budget never
  // over-delivers.
  struct SiteState {
    FaultConfig config;
    std::atomic<uint64_t> evaluations{0};  // passed the armed mask (see above)
    std::atomic<uint64_t> matched{0};      // ...and passed the hook filter too
    std::atomic<uint64_t> injected{0};     // faults actually delivered
    std::atomic<uint64_t> rng{0};          // splitmix64 state, seeded at Configure()
  };

  static_assert(kFaultSiteCount <= 32, "armed mask is a uint32_t bitset");

  // Per-thread cache of "which sites are armed for this (registry,
  // configuration)". `key` packs the owning registry's unique id with its
  // arm generation; a configuration change bumps the generation, and a key
  // mismatch is the only recompute trigger. `mask` holds armed context-free
  // sites (one bit test admits them); `ctx_mask` holds armed sites with a
  // pid/sysno filter, which Evaluate() re-checks against the live context.
  struct TlsArm {
    uint64_t key = 0;  // (registry id << 32) | arm generation; 0 = invalid
    uint32_t mask = 0;
    uint32_t ctx_mask = 0;
  };

  uint64_t ArmKey() const {
    return (static_cast<uint64_t>(id_) << 32) |
           arm_gen_.load(std::memory_order_acquire);
  }
  // Re-derives tls_arm_ for this registry from the current configuration;
  // called only on a key mismatch.
  void RecomputeArmMask();
  // Bumps the arm generation after any configuration change
  // (Configure/Disable/Reset).
  void InvalidateArmMasks();

  Tracer* tracer_ = nullptr;
  LayerProfiler* profiler_ = nullptr;
  // Thread-local (not per-registry): the value is only live between a
  // gate's stamp and restore on one thread, so registries of different
  // kernel instances on the same thread cannot observe each other's.
  static thread_local FaultContext tls_context_;
  static thread_local TlsArm tls_arm_;
  const uint32_t id_;  // process-unique, so a stale TlsArm from a destroyed
                       // registry at the same address can never validate
  std::atomic<uint32_t> arm_gen_{1};
  std::atomic<size_t> enabled_count_{0};
  SiteState sites_[kFaultSiteCount];
};

}  // namespace protego

#endif  // SRC_FAULT_FAULT_H_
