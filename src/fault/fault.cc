#include "src/fault/fault.h"

#include "src/base/strings.h"

namespace protego {

namespace {

// Same generator as the deterministic scheduler's kRandom mode: replaying a
// recorded seed reproduces the identical draw sequence. The state advance is
// a single atomic fetch_add (splitmix64's whole point: the stream position
// is just state + n*gamma), so concurrent draws each get a distinct,
// deterministic position.
uint64_t SplitMix64(std::atomic<uint64_t>* state) {
  uint64_t z = state->fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Process-unique registry ids: a TlsArm cached for a destroyed registry can
// never validate against a new registry allocated at the same address.
std::atomic<uint32_t> g_next_registry_id{1};

}  // namespace

thread_local FaultContext FaultRegistry::tls_context_;
thread_local FaultRegistry::TlsArm FaultRegistry::tls_arm_;

FaultRegistry::FaultRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

void FaultRegistry::InvalidateArmMasks() {
  // Release pairs with the acquire in ArmKey(): a thread that sees the new
  // generation recomputes from the new configuration.
  arm_gen_.fetch_add(1, std::memory_order_release);
  tls_arm_.key = 0;  // this thread re-derives immediately
}

void FaultRegistry::RecomputeArmMask() {
  // Snapshot the key BEFORE reading configs: if a concurrent Configure()
  // bumps the generation mid-recompute, we store the pre-bump key with a
  // possibly mixed mask, the next Evaluate() sees a mismatch, and the work
  // is redone against the settled configuration.
  const uint64_t key = ArmKey();
  uint32_t mask = 0;
  uint32_t ctx_mask = 0;
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const FaultConfig& c = sites_[i].config;
    if (!c.enabled) {
      continue;
    }
    if (c.pid >= 0 || c.sysno >= 0) {
      ctx_mask |= 1u << i;  // armed, but gated on the live context
    } else {
      mask |= 1u << i;
    }
  }
  tls_arm_.mask = mask;
  tls_arm_.ctx_mask = ctx_mask;
  tls_arm_.key = key;
}

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kVfsVnodeAlloc: return "vfs_vnode_alloc";
    case FaultSite::kVfsBlockAlloc: return "vfs_block_alloc";
    case FaultSite::kFdAlloc: return "fd_alloc";
    case FaultSite::kSyscallEntry: return "syscall_entry";
    case FaultSite::kLsmHook: return "lsm_hook";
    case FaultSite::kNetfilterEval: return "netfilter_eval";
    case FaultSite::kPolicyCompile: return "policy_compile";
    case FaultSite::kAuthRoundTrip: return "auth_round_trip";
    case FaultSite::kCount: break;
  }
  return "?";
}

std::optional<FaultSite> FaultSiteFromName(std::string_view name) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    if (name == FaultSiteName(site)) {
      return site;
    }
  }
  return std::nullopt;
}

Result<Unit> FaultRegistry::Configure(FaultSite site, const FaultConfig& config) {
  if (config.prob_den == 0 || config.prob_num > config.prob_den) {
    return Error(Errno::kEINVAL, "fault probability must be num/den with num <= den");
  }
  if (config.interval == 0) {
    return Error(Errno::kEINVAL, "fault interval must be >= 1");
  }
  if (config.error == Errno::kOk) {
    return Error(Errno::kEINVAL, "fault error must be a nonzero errno");
  }
  SiteState& st = sites_[static_cast<size_t>(site)];
  if (st.config.enabled && !config.enabled) {
    enabled_count_.fetch_sub(1, std::memory_order_relaxed);
  } else if (!st.config.enabled && config.enabled) {
    enabled_count_.fetch_add(1, std::memory_order_relaxed);
  }
  st.config = config;
  st.evaluations.store(0, std::memory_order_relaxed);
  st.matched.store(0, std::memory_order_relaxed);
  st.injected.store(0, std::memory_order_relaxed);
  st.rng.store(config.seed, std::memory_order_relaxed);
  InvalidateArmMasks();
  return OkUnit();
}

void FaultRegistry::Disable(FaultSite site) {
  SiteState& st = sites_[static_cast<size_t>(site)];
  if (st.config.enabled) {
    st.config.enabled = false;
    enabled_count_.fetch_sub(1, std::memory_order_relaxed);
    InvalidateArmMasks();
  }
}

void FaultRegistry::Reset() {
  for (SiteState& st : sites_) {
    st.config = FaultConfig{};
    st.evaluations.store(0, std::memory_order_relaxed);
    st.matched.store(0, std::memory_order_relaxed);
    st.injected.store(0, std::memory_order_relaxed);
    st.rng.store(0, std::memory_order_relaxed);
  }
  enabled_count_.store(0, std::memory_order_relaxed);
  InvalidateArmMasks();
}

Errno FaultRegistry::Evaluate(FaultSite site, int hook) {
  if (enabled_count_ == 0) {
    return Errno::kOk;  // the only cost with injection off: one load+branch
  }
  // Attribution starts after the disabled fast path so a registry with no
  // enabled sites keeps paying exactly one load+branch.
  LayerScope fault_scope(profiler_, Layer::kFaultRegistry);
  // Armed registry: one thread-local mask test decides whether this site can
  // inject. Sites that are not enabled return here without touching the
  // (shared, contended) site state; armed sites carrying a pid/sysno filter
  // re-check the live context and likewise decline untallied on a miss.
  if (tls_arm_.key != ArmKey()) {
    RecomputeArmMask();
  }
  const uint32_t bit = 1u << static_cast<size_t>(site);
  SiteState& st = sites_[static_cast<size_t>(site)];
  const FaultConfig& c = st.config;
  if ((tls_arm_.mask & bit) == 0) {
    if ((tls_arm_.ctx_mask & bit) == 0) {
      return Errno::kOk;
    }
    if (c.pid >= 0 && tls_context_.pid != c.pid) {
      return Errno::kOk;
    }
    if (c.sysno >= 0 && tls_context_.sysno != c.sysno) {
      return Errno::kOk;
    }
  }
  const uint64_t eval_seq =
      st.evaluations.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t match_seq = eval_seq;
  if (c.hook >= 0) {
    // The hook id is per-call (not per-context), so it cannot be folded
    // into the mask; sites without a hook filter skip the `matched` counter
    // entirely (it would always equal `evaluations`).
    if (hook != c.hook) {
      return Errno::kOk;
    }
    match_seq = st.matched.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  if (c.times != 0 && st.injected.load(std::memory_order_relaxed) >= c.times) {
    return Errno::kOk;
  }
  if (c.interval > 1 && match_seq % c.interval != 0) {
    return Errno::kOk;
  }
  if (c.prob_num < c.prob_den) {
    if (SplitMix64(&st.rng) % c.prob_den >= c.prob_num) {
      return Errno::kOk;
    }
  }
  uint64_t delivered;
  if (c.times != 0) {
    // Reserve a budget slot: concurrent winners CAS so the site delivers
    // exactly `times` faults, never more.
    uint64_t cur = st.injected.load(std::memory_order_relaxed);
    do {
      if (cur >= c.times) {
        return Errno::kOk;
      }
    } while (!st.injected.compare_exchange_weak(cur, cur + 1,
                                                std::memory_order_relaxed));
    delivered = cur + 1;
  } else {
    delivered = st.injected.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  if (tracer_ != nullptr && tracer_->ShouldEmit(TracepointId::kFaultInject)) {
    TraceEvent& ev = tracer_->Emit(TracepointId::kFaultInject, tls_context_.pid);
    ev.sname = FaultSiteName(site);
    ev.sdetail = ErrnoName(c.error);
    ev.code = static_cast<int>(c.error);
    ev.flags = kTraceFlagDenied;
    ev.a = delivered;
  }
  return c.error;
}

Result<Unit> FaultRegistry::Check(FaultSite site, const char* what, int hook) {
  Errno e = Evaluate(site, hook);
  if (e == Errno::kOk) {
    return OkUnit();
  }
  return Error(e, StrFormat("fault-injected at %s", what));
}

uint64_t FaultRegistry::total_injected() const {
  uint64_t total = 0;
  for (const SiteState& st : sites_) {
    total += st.injected;
  }
  return total;
}

std::string FaultRegistry::Format() const {
  std::string out;
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const SiteState& st = sites_[i];
    const FaultConfig& c = st.config;
    if (!c.enabled) {
      continue;
    }
    out += StrFormat("site=%s error=%s prob=%llu/%llu interval=%llu times=%llu seed=%llu",
                     FaultSiteName(static_cast<FaultSite>(i)), ErrnoName(c.error),
                     (unsigned long long)c.prob_num, (unsigned long long)c.prob_den,
                     (unsigned long long)c.interval, (unsigned long long)c.times,
                     (unsigned long long)c.seed);
    if (c.pid >= 0) {
      out += StrFormat(" pid=%d", c.pid);
    }
    if (c.sysno >= 0) {
      out += StrFormat(" sysno=%d", c.sysno);
    }
    if (c.hook >= 0) {
      out += StrFormat(" hook=%d", c.hook);
    }
    out += "\n";
  }
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const SiteState& st = sites_[i];
    if (st.evaluations == 0 && st.injected == 0) {
      continue;
    }
    // Sites without a hook filter don't maintain `matched` (it always
    // equals `evaluations`); reconstruct it for the report.
    const uint64_t matched =
        st.config.hook >= 0 ? st.matched.load() : st.evaluations.load();
    out += StrFormat("# %s: evaluations=%llu matched=%llu injected=%llu\n",
                     FaultSiteName(static_cast<FaultSite>(i)),
                     (unsigned long long)st.evaluations, (unsigned long long)matched,
                     (unsigned long long)st.injected);
  }
  if (out.empty()) {
    out = "# no fault sites enabled\n";
  }
  return out;
}

void FaultRegistry::CollectMetrics(MetricsBuilder& mb) const {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const SiteState& st = sites_[i];
    const std::string site = FaultSiteName(static_cast<FaultSite>(i));
    mb.Counter("protego_fault_evaluations_total",
               "Fault-site evaluations while the site was enabled",
               {{"site", site}}, st.evaluations);
    mb.Counter("protego_fault_injections_total", "Faults actually injected",
               {{"site", site}}, st.injected);
  }
}

}  // namespace protego
