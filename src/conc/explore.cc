#include "src/conc/explore.h"

#include "src/base/strings.h"
#include "src/conc/thread_sched.h"

namespace protego::conc {

namespace {

struct RunOutcome {
  std::optional<std::string> violation;
  std::vector<SchedDecision> decisions;
  std::vector<uint32_t> executed;
};

RunOutcome RunOnce(const ScenarioFactory& factory, SchedMode mode, uint64_t seed,
                   const std::vector<uint32_t>* choices) {
  std::unique_ptr<ScenarioRun> run = factory();
  DetScheduler sched(&run->kernel().tracer());
  sched.set_mode(mode);
  sched.set_seed(seed);
  if (choices != nullptr) {
    sched.set_choices(*choices);
  }
  run->kernel().set_scheduler(&sched);
  run->RegisterTasks(sched);
  sched.Run();
  run->kernel().set_scheduler(nullptr);

  RunOutcome out;
  out.violation = run->CheckInvariant();
  out.decisions = sched.decisions();
  out.executed = sched.executed_choices();
  return out;
}

// Choosing `choice` at decision `d` preempts iff the previous token holder
// was still runnable and a different unit was picked. Switches forced by
// blocking or exit are not preemptions — that is the CHESS bound semantics.
bool IsPreemption(const SchedDecision& d, uint32_t choice) {
  if (d.prev_pid == 0) {
    return false;  // initial dispatch
  }
  bool prev_runnable = false;
  for (int pid : d.runnable) {
    if (pid == d.prev_pid) {
      prev_runnable = true;
      break;
    }
  }
  return prev_runnable && d.runnable[choice] != d.prev_pid;
}

}  // namespace

const char* ExploreModeName(ExploreMode mode) {
  switch (mode) {
    case ExploreMode::kRoundRobin: return "round-robin";
    case ExploreMode::kRandom: return "random";
    case ExploreMode::kExhaustive: return "exhaustive";
  }
  return "?";
}

std::string FormatTrace(const ScheduleTrace& trace) {
  std::string out = StrFormat("mode=%s seed=%llu choices=[", SchedModeName(trace.mode),
                              static_cast<unsigned long long>(trace.seed));
  for (size_t i = 0; i < trace.choices.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%u", trace.choices[i]);
  }
  out += "]";
  return out;
}

ExploreResult Explore(const ScenarioFactory& factory, const ExploreOptions& options) {
  ExploreResult result;

  switch (options.mode) {
    case ExploreMode::kRoundRobin: {
      RunOutcome out = RunOnce(factory, SchedMode::kRoundRobin, 0, nullptr);
      result.schedules_run = 1;
      if (out.violation.has_value()) {
        result.violation_found = true;
        result.detail = *out.violation;
        result.violating = {SchedMode::kRoundRobin, 0, out.executed};
      }
      return result;
    }

    case ExploreMode::kRandom: {
      for (uint32_t i = 0; i < options.num_seeds; ++i) {
        uint64_t seed = options.seed + i;
        RunOutcome out = RunOnce(factory, SchedMode::kRandom, seed, nullptr);
        ++result.schedules_run;
        if (out.violation.has_value()) {
          result.violation_found = true;
          result.detail = *out.violation;
          result.violating = {SchedMode::kRandom, seed, out.executed};
          return result;
        }
      }
      result.exhausted = true;  // budget spent without a violation
      return result;
    }

    case ExploreMode::kExhaustive:
      break;  // below
  }

  // Bounded-exhaustive enumeration. Each executed run expands into sibling
  // runs: at every decision at or past its prefix with more than one
  // runnable unit, every untaken choice (within the preemption bound) forms
  // a new prefix. Because the continuation past a prefix is deterministic
  // and adds no preemptions, each distinct complete schedule is executed
  // exactly once.
  std::vector<std::vector<uint32_t>> stack;
  stack.push_back({});
  while (!stack.empty()) {
    if (result.schedules_run >= options.max_schedules) {
      return result;  // budget hit; exhausted stays false
    }
    std::vector<uint32_t> prefix = std::move(stack.back());
    stack.pop_back();

    RunOutcome out = RunOnce(factory, SchedMode::kFixed, 0, &prefix);
    ++result.schedules_run;
    if (out.violation.has_value()) {
      result.violation_found = true;
      result.detail = *out.violation;
      result.violating = {SchedMode::kFixed, 0, out.executed};
      return result;
    }

    // Preemptions accumulated by the executed schedule up to (exclusive)
    // each decision index.
    std::vector<uint32_t> preempts(out.decisions.size() + 1, 0);
    for (size_t i = 0; i < out.decisions.size(); ++i) {
      preempts[i + 1] =
          preempts[i] + (IsPreemption(out.decisions[i], out.decisions[i].chosen_index) ? 1 : 0);
    }

    for (size_t i = prefix.size(); i < out.decisions.size(); ++i) {
      const SchedDecision& d = out.decisions[i];
      if (d.runnable.size() < 2) {
        continue;  // forced
      }
      for (uint32_t alt = 0; alt < d.runnable.size(); ++alt) {
        if (alt == d.chosen_index) continue;
        if (preempts[i] + (IsPreemption(d, alt) ? 1 : 0) > options.preemption_bound) {
          continue;
        }
        std::vector<uint32_t> child(out.executed.begin(), out.executed.begin() + i);
        child.push_back(alt);
        stack.push_back(std::move(child));
      }
    }
  }
  result.exhausted = true;
  return result;
}

std::optional<std::string> Replay(const ScenarioFactory& factory, const ScheduleTrace& trace,
                                  std::vector<SchedDecision>* decisions_out) {
  const std::vector<uint32_t>* choices =
      trace.mode == SchedMode::kFixed ? &trace.choices : nullptr;
  RunOutcome out = RunOnce(factory, trace.mode, trace.seed, choices);
  if (decisions_out != nullptr) {
    *decisions_out = std::move(out.decisions);
  }
  return out.violation;
}

ParallelRunResult RunParallel(const ScenarioFactory& factory, int reps) {
  ParallelRunResult result;
  for (int i = 0; i < reps; ++i) {
    std::unique_ptr<ScenarioRun> run = factory();
    ThreadScheduler sched;
    run->kernel().set_scheduler(&sched);
    run->RegisterTasks(sched);
    sched.Join();
    // The invariant may still WaitPid; all tasks have exited by now, so it
    // collects exit records without blocking, but the scheduler stays
    // attached until it is done.
    std::optional<std::string> violation = run->CheckInvariant();
    run->kernel().set_scheduler(nullptr);
    ++result.runs;
    if (violation.has_value()) {
      result.violation_found = true;
      result.detail = *violation;
      return result;
    }
  }
  return result;
}

}  // namespace protego::conc
