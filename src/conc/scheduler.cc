#include "src/conc/scheduler.h"

#include <algorithm>

namespace protego::conc {

namespace {

// Identity of the managed unit running on this thread. The kernel passes a
// pid to OnSyscallEntry/WaitOn, but that pid can differ from the unit's own:
// a unit that performs a synchronous Spawn runs its grandchild's syscalls on
// the same OS thread. The thread, not the pid argument, is the schedulable
// entity.
thread_local DetScheduler* tls_scheduler = nullptr;
thread_local int tls_pid = 0;

}  // namespace

const char* SchedModeName(SchedMode mode) {
  switch (mode) {
    case SchedMode::kRoundRobin: return "round-robin";
    case SchedMode::kRandom: return "random";
    case SchedMode::kFixed: return "fixed";
  }
  return "?";
}

DetScheduler::DetScheduler(Tracer* tracer) : tracer_(tracer) {}

DetScheduler::~DetScheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
    for (auto& u : units_) {
      u->cv.notify_all();
    }
  }
  for (auto& u : units_) {
    if (u->thread.joinable()) {
      u->thread.join();
    }
  }
}

void DetScheduler::set_seed(uint64_t seed) {
  seed_ = seed;
  rng_state_ = seed;
}

uint64_t DetScheduler::NextRand() {
  // splitmix64: tiny, high-quality, and identical on every platform — the
  // same seed replays the same schedule everywhere (std::mt19937 would too,
  // but distributions are not portable; raw modulo of this stream is).
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d649bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<uint32_t> DetScheduler::executed_choices() const {
  std::vector<uint32_t> out;
  out.reserve(decisions_.size());
  for (const SchedDecision& d : decisions_) {
    out.push_back(d.chosen_index);
  }
  return out;
}

void DetScheduler::StartTask(int pid, std::function<void()> body) {
  std::lock_guard<std::mutex> lk(mu_);
  auto unit = std::make_unique<Unit>();
  unit->pid = pid;
  unit->body = std::move(body);
  Unit* u = unit.get();
  units_.push_back(std::move(unit));
  u->thread = std::thread([this, u] { ThreadMain(u); });
}

void DetScheduler::ThreadMain(Unit* unit) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    unit->cv.wait(lk, [&] { return unit->active || shutdown_; });
    if (!unit->active) {
      unit->finished = true;  // destroyed before ever being scheduled
      return;
    }
  }
  tls_scheduler = this;
  tls_pid = unit->pid;
  unit->body();
  tls_scheduler = nullptr;
  tls_pid = 0;

  std::unique_lock<std::mutex> lk(mu_);
  unit->finished = true;
  unit->active = false;
  FinishHandoff(unit);
}

DetScheduler::Unit* DetScheduler::ChooseNext(Unit* self, bool self_runnable) {
  int prev_pid = self != nullptr ? self->pid : current_pid_;
  // Candidates in registration order, remembering each one's registration
  // index for the round-robin walk.
  std::vector<std::pair<size_t, Unit*>> runnable;
  for (size_t i = 0; i < units_.size(); ++i) {
    Unit* u = units_[i].get();
    if (u->finished || u->waiting_on != 0) continue;
    if (u == self && !self_runnable) continue;
    runnable.emplace_back(i, u);
  }
  if (runnable.empty()) {
    return nullptr;
  }

  uint32_t chosen = 0;
  switch (mode_) {
    case SchedMode::kRoundRobin: {
      size_t start = 0;
      for (size_t i = 0; i < units_.size(); ++i) {
        if (units_[i]->pid == prev_pid) {
          start = i + 1;
          break;
        }
      }
      // First runnable unit at registration index >= start, wrapping.
      for (size_t j = 0; j < runnable.size(); ++j) {
        if (runnable[j].first >= start) {
          chosen = static_cast<uint32_t>(j);
          break;
        }
      }
      break;  // all below start: wrap to runnable[0]
    }
    case SchedMode::kRandom:
      chosen = static_cast<uint32_t>(NextRand() % runnable.size());
      break;
    case SchedMode::kFixed: {
      if (next_choice_ < choices_.size()) {
        chosen = choices_[next_choice_] % static_cast<uint32_t>(runnable.size());
      } else {
        // Default continuation past the choice list: keep the previous unit
        // if still runnable, else lowest index. Adds no preemptions, which
        // keeps prefix enumeration sound under a preemption bound.
        for (size_t j = 0; j < runnable.size(); ++j) {
          if (runnable[j].second->pid == prev_pid) {
            chosen = static_cast<uint32_t>(j);
            break;
          }
        }
      }
      break;
    }
  }
  ++next_choice_;

  if (record_decisions_) {
    SchedDecision d;
    d.prev_pid = prev_pid;
    d.runnable.reserve(runnable.size());
    for (const auto& [idx, u] : runnable) {
      d.runnable.push_back(u->pid);
    }
    d.chosen_index = chosen;
    decisions_.push_back(std::move(d));
  }
  return runnable[chosen].second;
}

void DetScheduler::Activate(Unit* next, int from_pid) {
  ++steps_;
  if (tracer_ != nullptr && tracer_->ShouldEmit(TracepointId::kContextSwitch)) {
    TraceEvent& ev = tracer_->Emit(TracepointId::kContextSwitch, next->pid);
    ev.comm = SchedModeName(mode_);
    ev.a = steps_;
    ev.code = from_pid;
  }
  current_pid_ = next->pid;
  next->active = true;
  next->cv.notify_one();
}

void DetScheduler::OnSyscallEntry(int /*pid*/, Sysno /*nr*/) {
  if (tls_scheduler != this) {
    return;  // syscall from an unmanaged thread (the driving test)
  }
  std::unique_lock<std::mutex> lk(mu_);
  Unit* self = nullptr;
  for (auto& u : units_) {
    if (u->pid == tls_pid) {
      self = u.get();
      break;
    }
  }
  if (self == nullptr || !self->active) {
    return;
  }
  // Entering a fresh syscall is forward progress: the unit is again a
  // candidate for deadlock-probe wake-ups.
  self->spurious = false;
  Unit* next = ChooseNext(self, /*self_runnable=*/true);
  if (next == nullptr || next == self) {
    return;  // decision recorded; token stays put
  }
  self->active = false;
  Activate(next, self->pid);
  self->cv.wait(lk, [&] { return self->active; });
}

bool DetScheduler::WaitOn(int /*pid*/, uint64_t resource) {
  if (tls_scheduler != this) {
    // The driving thread blocked on a kernel resource: run every pending
    // unit to completion, then let the caller re-check its predicate.
    bool pending = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto& u : units_) {
        if (!u->finished) {
          pending = true;
          break;
        }
      }
    }
    if (!pending) {
      return false;
    }
    Run();
    return true;
  }

  std::unique_lock<std::mutex> lk(mu_);
  Unit* self = nullptr;
  for (auto& u : units_) {
    if (u->pid == tls_pid) {
      self = u.get();
      break;
    }
  }
  if (self == nullptr) {
    return false;
  }
  self->waiting_on = resource;
  Unit* next = ChooseNext(self, /*self_runnable=*/false);
  if (next == nullptr) {
    // No runnable unit. Probe-wake waiters that have not already been
    // probe-woken: they re-check their predicates and either proceed or
    // block again (now marked spurious, hence not re-wakeable — which is
    // what terminates the probe cascade in a true deadlock).
    bool woke = false;
    for (auto& u : units_) {
      if (u.get() != self && !u->finished && u->waiting_on != 0 && !u->spurious) {
        u->waiting_on = 0;
        u->spurious = true;
        woke = true;
      }
    }
    if (woke) {
      next = ChooseNext(self, /*self_runnable=*/false);
    }
    if (next == nullptr) {
      // Deadlock: blocking would hang the whole system. Refuse; the kernel
      // fails the syscall with EDEADLK.
      self->waiting_on = 0;
      return false;
    }
  }
  self->active = false;
  Activate(next, self->pid);
  self->cv.wait(lk, [&] { return self->active; });
  return true;
}

void DetScheduler::Signal(uint64_t resource) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& u : units_) {
    if (!u->finished && u->waiting_on == resource) {
      u->waiting_on = 0;
      u->spurious = false;  // a real signal, not a deadlock probe
    }
  }
}

void DetScheduler::FinishHandoff(Unit* self) {
  Unit* next = ChooseNext(self, /*self_runnable=*/false);
  if (next == nullptr) {
    // Nothing runnable. Wake every remaining waiter (even spurious ones —
    // a finished unit released its locks and signaled its exit, so waiters
    // must re-check; those truly stuck fail with EDEADLK and terminate).
    bool woke = false;
    for (auto& u : units_) {
      if (!u->finished && u->waiting_on != 0) {
        u->waiting_on = 0;
        u->spurious = true;
        woke = true;
      }
    }
    if (woke) {
      next = ChooseNext(self, /*self_runnable=*/false);
    }
  }
  if (next != nullptr) {
    Activate(next, self->pid);
  } else {
    run_complete_ = true;
    main_cv_.notify_all();
  }
}

void DetScheduler::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  bool pending = false;
  for (auto& u : units_) {
    if (!u->finished) {
      pending = true;
      break;
    }
  }
  if (!pending) {
    return;
  }
  run_complete_ = false;
  current_pid_ = 0;
  Unit* first = ChooseNext(nullptr, false);
  if (first == nullptr) {
    // Only waiters remain (all blocked before Run was called): probe them.
    bool woke = false;
    for (auto& u : units_) {
      if (!u->finished && u->waiting_on != 0) {
        u->waiting_on = 0;
        u->spurious = true;
        woke = true;
      }
    }
    if (woke) {
      first = ChooseNext(nullptr, false);
    }
    if (first == nullptr) {
      return;
    }
  }
  Activate(first, 0);
  main_cv_.wait(lk, [&] { return run_complete_; });
}

}  // namespace protego::conc
