#include "src/conc/thread_sched.h"

#include <chrono>

namespace protego::conc {

void ThreadScheduler::StartTask(int /*pid*/, std::function<void()> body) {
  std::lock_guard<std::mutex> lk(mu_);
  threads_.emplace_back(std::move(body));
  ++started_;
}

bool ThreadScheduler::WaitOn(int /*pid*/, uint64_t resource) {
  std::unique_lock<std::mutex> lk(mu_);
  const uint64_t seen = epochs_[resource];
  cv_.wait_for(lk, std::chrono::milliseconds(2),
               [&] { return epochs_[resource] != seen; });
  return true;  // spurious-wakeup contract: the caller loops and re-checks
}

void ThreadScheduler::Signal(uint64_t resource) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++epochs_[resource];
  }
  cv_.notify_all();
}

void ThreadScheduler::Join() {
  // A joining thread may itself StartTask (task teardown spawning a child),
  // so drain in rounds until no new threads appear.
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (threads_.empty()) {
        return;
      }
      batch.swap(threads_);
    }
    for (std::thread& t : batch) {
      if (t.joinable()) {
        t.join();
      }
    }
  }
}

uint64_t ThreadScheduler::started() const {
  std::lock_guard<std::mutex> lk(mu_);
  return started_;
}

}  // namespace protego::conc
