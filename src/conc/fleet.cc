#include "src/conc/fleet.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"

namespace protego::conc {
namespace {

// One tenant: boot a kernel, run the op mix, tear down. Returns syscalls
// that completed successfully.
uint64_t RunInstance(int ops) {
  Kernel kernel;
  kernel.lsm().Register(std::make_unique<CapabilityModule>());
  (void)kernel.vfs().EnsureDirs("/tmp");
  Task& root = kernel.CreateTask("fleet-init", Cred::Root(), nullptr);

  uint64_t completed = 0;
  // The mix cycles: getpid, open(create), write, read, stat, close — six
  // syscalls per round, weighted toward the cheap gate path the way real
  // workloads are.
  for (int i = 0; i < ops; i += 6) {
    (void)kernel.GetPid(root);
    ++completed;
    auto fd = kernel.Open(root, "/tmp/f", kOWrOnly | kOCreat, 0644);
    if (!fd.ok()) {
      break;
    }
    ++completed;
    if (kernel.Write(root, fd.value(), "x").ok()) {
      ++completed;
    }
    if (kernel.Close(root, fd.value()).ok()) {
      ++completed;
    }
    auto rd = kernel.Open(root, "/tmp/f", kORdOnly);
    if (rd.ok()) {
      if (kernel.Read(root, rd.value()).ok()) {
        ++completed;
      }
      (void)kernel.Close(root, rd.value());
    }
    if (kernel.Stat(root, "/tmp/f").ok()) {
      ++completed;
    }
  }
  return completed;
}

}  // namespace

FleetReport RunFleet(const FleetOptions& options) {
  std::atomic<int> next{0};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> instances_run{0};

  auto worker = [&] {
    for (;;) {
      int index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= options.instances) {
        return;
      }
      total_ops.fetch_add(RunInstance(options.ops_per_instance),
                          std::memory_order_relaxed);
      instances_run.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(options.workers));
  for (int i = 0; i < options.workers; ++i) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  FleetReport report;
  report.instances_run = instances_run.load();
  report.total_ops = total_ops.load();
  report.wall_seconds = wall;
  report.ops_per_sec = wall > 0 ? static_cast<double>(report.total_ops) / wall : 0;
  return report;
}

}  // namespace protego::conc
