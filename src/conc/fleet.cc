#include "src/conc/fleet.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/lsm/capability_module.h"

namespace protego::conc {
namespace {

struct InstanceResult {
  uint64_t issued = 0;     // syscalls the instance actually entered the gate with
  uint64_t completed = 0;  // syscalls that returned success
};

// One tenant: boot a kernel, run the op mix, tear down.
InstanceResult RunInstance(int ops) {
  Kernel kernel;
  kernel.lsm().Register(std::make_unique<CapabilityModule>());
  (void)kernel.vfs().EnsureDirs("/tmp");
  Task& root = kernel.CreateTask("fleet-init", Cred::Root(), nullptr);

  InstanceResult result;
  const uint64_t issued_before = kernel.syscalls().TotalCalls();
  // The mix cycles eight syscalls per round — getpid, open(create), write,
  // close, open(read), read, close, stat — weighted toward the cheap gate
  // path the way real workloads are. Whole rounds only: an instance never
  // issues more than `ops` syscalls.
  for (int i = 0; i + 8 <= ops; i += 8) {
    (void)kernel.GetPid(root);
    ++result.completed;
    auto fd = kernel.Open(root, "/tmp/f", kOWrOnly | kOCreat, 0644);
    if (!fd.ok()) {
      break;
    }
    ++result.completed;
    if (kernel.Write(root, fd.value(), "x").ok()) {
      ++result.completed;
    }
    if (kernel.Close(root, fd.value()).ok()) {
      ++result.completed;
    }
    auto rd = kernel.Open(root, "/tmp/f", kORdOnly);
    if (rd.ok()) {
      ++result.completed;
      if (kernel.Read(root, rd.value()).ok()) {
        ++result.completed;
      }
      if (kernel.Close(root, rd.value()).ok()) {
        ++result.completed;
      }
    }
    if (kernel.Stat(root, "/tmp/f").ok()) {
      ++result.completed;
    }
  }
  // Issued is measured at the gate, not hand-counted: the two must agree
  // (minus short-circuited ops after a failure), which the regression test
  // in tests/parallel_test.cc asserts.
  result.issued = kernel.syscalls().TotalCalls() - issued_before;
  return result;
}

}  // namespace

FleetReport RunFleet(const FleetOptions& options) {
  std::atomic<int> next{0};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> total_issued{0};
  std::atomic<uint64_t> instances_run{0};

  auto worker = [&] {
    for (;;) {
      int index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= options.instances) {
        return;
      }
      InstanceResult r = RunInstance(options.ops_per_instance);
      total_ops.fetch_add(r.completed, std::memory_order_relaxed);
      total_issued.fetch_add(r.issued, std::memory_order_relaxed);
      instances_run.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(options.workers));
  for (int i = 0; i < options.workers; ++i) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  FleetReport report;
  report.instances_run = instances_run.load();
  report.total_ops = total_ops.load();
  report.total_issued = total_issued.load();
  report.wall_seconds = wall;
  report.ops_per_sec = wall > 0 ? static_cast<double>(report.total_ops) / wall : 0;
  return report;
}

}  // namespace protego::conc
