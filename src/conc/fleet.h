// Fleet multiplexer: drives thousands of independent kernel INSTANCES over
// a small worker pool. This is the other axis of "true parallel" — not N
// threads inside one kernel (thread_sched.h) but N kernels sharing one
// machine, the shape of a test farm or a per-tenant sandbox fleet. Each
// instance is fully isolated (own VFS, LSM stack, tasks), so the only
// shared state is the work queue; aggregate throughput measures per-kernel
// boot + syscall cost, not lock contention.

#ifndef SRC_CONC_FLEET_H_
#define SRC_CONC_FLEET_H_

#include <cstdint>

namespace protego::conc {

struct FleetOptions {
  int instances = 1000;       // kernels to boot and drive
  int workers = 4;            // pool threads pulling instances
  int ops_per_instance = 50;  // syscall budget per instance (whole 8-op
                              // rounds; beyond boot)
};

struct FleetReport {
  uint64_t instances_run = 0;
  uint64_t total_ops = 0;     // syscalls completed across all instances
  uint64_t total_issued = 0;  // syscalls entered at the gate (measured from
                              // per-kernel gate counters, not hand-counted)
  double wall_seconds = 0;
  double ops_per_sec = 0;
};

// Boots `instances` bare kernels (commoncap only), runs a fixed
// getpid/open/write/close/open/read/close/stat mix in each (whole rounds,
// never exceeding ops_per_instance), and reports aggregate syscall
// throughput. Every op's result is checked; failures are excluded from
// total_ops but still show up in total_issued.
FleetReport RunFleet(const FleetOptions& options);

}  // namespace protego::conc

#endif  // SRC_CONC_FLEET_H_
