// Deterministic cooperative scheduler for interleaving exploration.
//
// Each simulated task registered via StartTask runs on its own OS thread,
// but the threads never run concurrently: a single hand-off token (one
// mutex + per-unit condition variables) serializes them, and the token only
// moves at explicit yield points — syscall entry (SyscallGate calls
// OnSyscallEntry), blocking (WaitOn), and task exit. Because every
// scheduling decision happens at a yield point and is chosen by a
// deterministic policy, a schedule is fully described by the sequence of
// choices taken, and any run can be replayed bit-for-bit from its mode +
// seed or from its recorded choice list. This is the CHESS/dBug
// stateless-model-checking architecture scaled down to the simulated
// kernel.
//
// Thread-safety: at most one thread executes simulated kernel/userland code
// at any instant; the mutex hand-off establishes happens-before between
// consecutive quanta, so the whole arrangement is ThreadSanitizer-clean
// without any locking inside the kernel itself.

#ifndef SRC_CONC_SCHEDULER_H_
#define SRC_CONC_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/tracepoint.h"
#include "src/kernel/sched_iface.h"

namespace protego::conc {

// How the scheduler picks the next unit at a decision point.
enum class SchedMode {
  kRoundRobin,  // cycle through runnable units in registration order
  kRandom,      // seeded splitmix64; same seed => identical schedule
  kFixed,       // follow an explicit choice list (replay / enumeration)
};

const char* SchedModeName(SchedMode mode);

// One scheduling decision: who was runnable, who was picked. The recorded
// sequence of decisions both replays a schedule (feed chosen_index values
// back as kFixed choices) and drives bounded-exhaustive enumeration (each
// decision with |runnable| > 1 is a branch point).
struct SchedDecision {
  std::vector<int> runnable;  // pids runnable at this point, registration order
  uint32_t chosen_index = 0;  // index into `runnable` that received the token
  int prev_pid = 0;           // token holder before this decision (0 = none)
};

class DetScheduler : public TaskScheduler {
 public:
  explicit DetScheduler(Tracer* tracer = nullptr);
  ~DetScheduler() override;

  DetScheduler(const DetScheduler&) = delete;
  DetScheduler& operator=(const DetScheduler&) = delete;

  void set_mode(SchedMode mode) { mode_ = mode; }
  SchedMode mode() const { return mode_; }
  void set_seed(uint64_t seed);
  uint64_t seed() const { return seed_; }
  // Choice list for kFixed. Decisions beyond the end of the list fall back
  // to the default continuation: keep the previous unit if it is still
  // runnable, else take the lowest-index runnable unit. The default adds no
  // preemptions, which keeps prefix-based enumeration sound under a
  // preemption bound.
  void set_choices(std::vector<uint32_t> choices) { choices_ = std::move(choices); }
  // Benchmarks disable decision recording to measure pure hand-off cost.
  void set_record_decisions(bool record) { record_decisions_ = record; }

  // --- TaskScheduler interface (called by the kernel) ---------------------

  // Registers a unit and spawns its (parked) thread. Callable before Run()
  // or from a running unit (SpawnAsync); the new unit becomes runnable at
  // the next decision point.
  void StartTask(int pid, std::function<void()> body) override;

  // Yield point: called at every syscall entry. No-op on unmanaged threads
  // (the driving test thread is not a unit).
  void OnSyscallEntry(int pid, Sysno nr) override;

  // Blocks the calling unit until `resource` is signaled. Returns false if
  // blocking would leave the system with no runnable unit and no waiter
  // that could still be woken — i.e. a deadlock; the kernel then fails the
  // syscall with EDEADLK instead of hanging. On an unmanaged thread, runs
  // all pending units to completion and returns true so the caller
  // re-checks its predicate.
  bool WaitOn(int pid, uint64_t resource) override;

  // Marks every unit waiting on `resource` runnable (no token transfer —
  // woken units run when next chosen).
  void Signal(uint64_t resource) override;

  // --- Driver --------------------------------------------------------------

  // Runs every registered unit to completion. Returns when no unit remains
  // runnable or waiting (waiters that can never be woken are released with
  // spurious wake-ups so their syscalls fail with EDEADLK).
  void Run();

  // Decisions recorded this run, in order.
  const std::vector<SchedDecision>& decisions() const { return decisions_; }
  // The choice actually taken at each decision (replay list for kFixed).
  std::vector<uint32_t> executed_choices() const;
  // Scheduling steps (token hand-offs) performed.
  uint64_t steps() const { return steps_; }

 private:
  struct Unit {
    int pid = 0;
    std::function<void()> body;
    std::thread thread;
    std::condition_variable cv;
    bool active = false;    // holds the token
    bool finished = false;
    uint64_t waiting_on = 0;  // nonzero = blocked on this resource
    // Woken without a real Signal (deadlock-release probe). A unit that
    // re-blocks while still marked spurious is not re-wakeable until a real
    // Signal or fresh syscall arrives — this breaks the wake/re-block
    // livelock between two mutually-deadlocked units.
    bool spurious = false;
  };

  void ThreadMain(Unit* unit);
  // Picks the next unit per policy among runnable units; records the
  // decision. `self_runnable` includes the caller in the candidate set.
  // Returns nullptr when nothing is runnable. Caller holds mu_.
  Unit* ChooseNext(Unit* self, bool self_runnable);
  // Hands the token to `next` (caller holds mu_; caller must then wait on
  // its own cv or return to the pool).
  void Activate(Unit* next, int from_pid);
  // Called by a finishing unit (holding mu_): pass the token on, or wake
  // stuck waiters, or declare the run complete.
  void FinishHandoff(Unit* self);
  uint64_t NextRand();

  SchedMode mode_ = SchedMode::kRoundRobin;
  uint64_t seed_ = 1;
  uint64_t rng_state_ = 1;
  std::vector<uint32_t> choices_;
  bool record_decisions_ = true;
  Tracer* tracer_ = nullptr;

  std::mutex mu_;
  std::condition_variable main_cv_;
  bool run_complete_ = false;
  bool shutdown_ = false;
  std::vector<std::unique_ptr<Unit>> units_;  // registration order
  int current_pid_ = 0;  // token holder; 0 when the driver holds it
  std::vector<SchedDecision> decisions_;
  uint64_t steps_ = 0;
  size_t next_choice_ = 0;  // cursor into choices_ (kFixed)
};

}  // namespace protego::conc

#endif  // SRC_CONC_SCHEDULER_H_
