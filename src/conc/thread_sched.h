// ThreadScheduler: the ExecMode::kParallel task driver. Where DetScheduler
// (scheduler.h) advances exactly one task at a time from a seeded PRNG,
// ThreadScheduler backs every task with a real OS thread and lets them enter
// the kernel concurrently — throughput scales with cores, and the sharded /
// RCU kernel state is what keeps that safe.
//
// Blocking semantics differ deliberately from DetScheduler:
//   * WaitOn never reports deadlock (always returns true). A real kernel
//     blocks indefinitely too; EDEADLK detection is a property of the
//     deterministic mode, where the scheduler can see that no runnable task
//     remains. Parallel harnesses must not construct guaranteed deadlocks.
//   * Wakeups are edge-triggered per-resource epochs with a short timeout
//     fallback: a Signal that fires between a waiter's predicate check and
//     its sleep costs one timeout period, never a lost wakeup. This is
//     sound because every kernel wait site loops and re-checks its
//     predicate (see sched_iface.h).

#ifndef SRC_CONC_THREAD_SCHED_H_
#define SRC_CONC_THREAD_SCHED_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/kernel/sched_iface.h"

namespace protego::conc {

class ThreadScheduler : public TaskScheduler {
 public:
  ThreadScheduler() = default;
  ~ThreadScheduler() override { Join(); }

  ThreadScheduler(const ThreadScheduler&) = delete;
  ThreadScheduler& operator=(const ThreadScheduler&) = delete;

  // No yield points in parallel mode: the OS preempts wherever it likes,
  // which is exactly the interleaving space TSan audits.
  void OnSyscallEntry(int /*pid*/, Sysno /*nr*/) override {}

  // Launches the task body on its own thread immediately. Safe to call from
  // inside a running task (SpawnAsync spawns children mid-syscall).
  void StartTask(int pid, std::function<void()> body) override;

  // Blocks until `resource` is signalled or ~2ms elapse, then returns true
  // so the caller re-checks its predicate and loops.
  bool WaitOn(int pid, uint64_t resource) override;

  void Signal(uint64_t resource) override;

  // Joins every task thread, including ones started while joining (a task
  // may spawn children on its way out). Idempotent.
  void Join();

  // Tasks ever started (not currently-live count).
  uint64_t started() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Per-resource signal epochs. A waiter snapshots the epoch, then sleeps
  // until it moves; Signal bumps it under mu_, so the snapshot-then-sleep
  // window cannot lose a wakeup (it can only time out and retry).
  std::map<uint64_t, uint64_t> epochs_;
  std::vector<std::thread> threads_;
  uint64_t started_ = 0;
};

}  // namespace protego::conc

#endif  // SRC_CONC_THREAD_SCHED_H_
