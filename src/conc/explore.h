// Schedule exploration: run a concurrency scenario under many interleavings
// and report the first one that violates its invariant, as a replayable
// trace.
//
// A scenario is a factory producing fresh, isolated runs (each with its own
// simulated system). The explorer attaches a DetScheduler to the run's
// kernel, registers the scenario's tasks, runs them to completion under one
// schedule, and evaluates the invariant. Three strategies:
//
//   kRoundRobin  — the one canonical fair schedule (smoke check).
//   kRandom      — N seeded pseudo-random schedules; a violation reports
//                  the seed, and replaying that seed reproduces the run
//                  bit-for-bit.
//   kExhaustive  — bounded-exhaustive enumeration (dBug/CHESS style): every
//                  schedule with at most `preemption_bound` preemptions,
//                  each distinct interleaving executed exactly once.

#ifndef SRC_CONC_EXPLORE_H_
#define SRC_CONC_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/conc/scheduler.h"
#include "src/kernel/kernel.h"

namespace protego::conc {

// One isolated execution of a concurrency scenario. The factory builds a
// fresh instance per schedule, so runs cannot contaminate each other.
class ScenarioRun {
 public:
  virtual ~ScenarioRun() = default;

  // The kernel the scheduler attaches to.
  virtual Kernel& kernel() = 0;

  // Registers the scenario's tasks with the scheduler (directly via
  // StartTask or through Kernel::SpawnAsync). Called once, before the
  // schedule runs. Takes the scheduler INTERFACE so the same corpus runs
  // under DetScheduler (exploration) and ThreadScheduler (parallel mode).
  virtual void RegisterTasks(TaskScheduler& sched) = 0;

  // Evaluated after all tasks finish: nullopt if the run upheld the
  // invariant, else a description of the violation.
  virtual std::optional<std::string> CheckInvariant() = 0;
};

using ScenarioFactory = std::function<std::unique_ptr<ScenarioRun>()>;

enum class ExploreMode {
  kRoundRobin,
  kRandom,
  kExhaustive,
};

const char* ExploreModeName(ExploreMode mode);

// A schedule, in replayable form. For kRandom violations both the seed and
// the executed choice list are filled in; either replays the run (the
// choice list also replays schedules found by enumeration).
struct ScheduleTrace {
  SchedMode mode = SchedMode::kFixed;
  uint64_t seed = 0;
  std::vector<uint32_t> choices;
};

std::string FormatTrace(const ScheduleTrace& trace);

struct ExploreOptions {
  ExploreMode mode = ExploreMode::kExhaustive;
  uint64_t seed = 1;         // first seed tried (kRandom)
  uint32_t num_seeds = 16;   // schedules tried (kRandom)
  uint32_t preemption_bound = 2;  // max preemptions per schedule (kExhaustive)
  uint64_t max_schedules = 100000;  // safety valve for enumeration
};

struct ExploreResult {
  uint64_t schedules_run = 0;
  bool violation_found = false;
  ScheduleTrace violating;  // meaningful when violation_found
  std::string detail;       // the invariant's message
  // kExhaustive: the bounded space was fully enumerated (did not stop at
  // max_schedules or at a violation).
  bool exhausted = false;
};

// Explores schedules until a violation is found or the strategy's budget is
// spent. Stops at the first violation.
ExploreResult Explore(const ScenarioFactory& factory, const ExploreOptions& options);

// Re-executes a single schedule. Returns the invariant violation it
// produced (nullopt = clean run). `decisions_out`, when non-null, receives
// the run's full decision sequence (for trace inspection).
std::optional<std::string> Replay(const ScenarioFactory& factory, const ScheduleTrace& trace,
                                  std::vector<SchedDecision>* decisions_out = nullptr);

// The ExecMode::kParallel counterpart of Explore: runs the scenario `reps`
// times with every task on its own OS thread (ThreadScheduler) — the OS
// schedule IS the schedule, so runs are not replayable. Used to re-validate
// scenario invariants (and, under TSan, the sharded kernel state itself)
// with real concurrency. Stops at the first violation.
struct ParallelRunResult {
  uint64_t runs = 0;
  bool violation_found = false;
  std::string detail;  // the invariant's message (when violation_found)
};

ParallelRunResult RunParallel(const ScenarioFactory& factory, int reps);

}  // namespace protego::conc

#endif  // SRC_CONC_EXPLORE_H_
