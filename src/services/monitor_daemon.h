// The monitoring daemon (§2): a trusted root process that watches the
// legacy, policy-relevant configuration files and keeps the kernel policy
// (the /proc/protego files) synchronized with them. It also regenerates the
// legacy shared credential databases (/etc/passwd, /etc/shadow, /etc/group)
// from Protego's fragmented per-account files, for backward compatibility
// with applications that still read the shared files.
//
// The daemon is only required for backward compatibility: an administrator
// may instead write the /proc/protego files directly.

#ifndef SRC_SERVICES_MONITOR_DAEMON_H_
#define SRC_SERVICES_MONITOR_DAEMON_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/config/passwd_db.h"
#include "src/kernel/kernel.h"

namespace protego {

class MonitorDaemon {
 public:
  static constexpr const char* kBinaryPath = "/sbin/protego-monitord";

  explicit MonitorDaemon(Kernel* kernel) : kernel_(kernel) {}
  ~MonitorDaemon();

  // Installs the trusted binary, creates the daemon task, registers
  // filesystem watches, and performs an initial full synchronization.
  Result<Unit> Start();

  // Unregisters watches (the daemon "exits").
  void Stop();

  // Re-reads every watched file and pushes all policy tables.
  Result<Unit> SyncAll();

  uint64_t sync_count() const { return sync_count_; }
  const std::vector<std::string>& errors() const { return errors_; }

  // Individual sync steps (also used by tests).
  Result<Unit> SyncMounts();
  Result<Unit> SyncSudoers();
  Result<Unit> SyncPorts();
  Result<Unit> SyncPpp();
  Result<Unit> SyncUserDb();   // fragments -> /proc/protego/userdb
  Result<Unit> SyncLegacy();   // fragments -> /etc/passwd, /etc/shadow, /etc/group

 private:
  void OnEvent(FsEvent event, const std::string& path);
  void RecordError(const Error& error, const std::string& what);

  // Reads the fragmented credential directories into a UserDb.
  Result<UserDb> ReadFragments();

  Kernel* kernel_ = nullptr;
  Task* task_ = nullptr;
  std::vector<int> watch_ids_;
  uint64_t sync_count_ = 0;
  bool syncing_ = false;  // suppress events caused by our own writes
  std::vector<std::string> errors_;
};

}  // namespace protego

#endif  // SRC_SERVICES_MONITOR_DAEMON_H_
