#include "src/services/monitor_daemon.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/config/bindconf.h"
#include "src/config/fstab.h"
#include "src/config/ppp_options.h"
#include "src/config/sudoers.h"
#include "src/protego/proc_iface.h"

namespace protego {

MonitorDaemon::~MonitorDaemon() { Stop(); }

Result<Unit> MonitorDaemon::Start() {
  if (!kernel_->HasBinary(kBinaryPath)) {
    RETURN_IF_ERROR(kernel_->InstallBinary(kBinaryPath, 0755, kRootUid, kRootGid,
                                           [](ProcessContext&) { return 0; }));
  }
  task_ = &kernel_->CreateTask("protego-monitord", Cred::Root(), nullptr);
  task_->exe_path = kBinaryPath;

  const char* watched[] = {
      "/etc/fstab",   "/etc/sudoers", "/etc/sudoers.d", "/etc/bind",
      "/etc/ppp",     "/etc/passwds", "/etc/shadows",   "/etc/groups",
  };
  for (const char* path : watched) {
    watch_ids_.push_back(kernel_->vfs().AddWatch(
        path, [this](FsEvent event, const std::string& p) { OnEvent(event, p); }));
  }
  return SyncAll();
}

void MonitorDaemon::Stop() {
  for (int id : watch_ids_) {
    kernel_->vfs().RemoveWatch(id);
  }
  watch_ids_.clear();
}

void MonitorDaemon::RecordError(const Error& error, const std::string& what) {
  std::string message = "monitord: " + what + ": " + error.ToString();
  errors_.push_back(message);
  LogWarn(message);
}

void MonitorDaemon::OnEvent(FsEvent event, const std::string& path) {
  (void)event;
  if (syncing_) {
    return;  // triggered by our own legacy-file regeneration
  }
  syncing_ = true;
  Result<Unit> r = OkUnit();
  if (path == "/etc/fstab") {
    r = SyncMounts();
  } else if (StartsWith(path, "/etc/sudoers")) {
    r = SyncSudoers();
  } else if (path == "/etc/bind") {
    r = SyncPorts();
  } else if (StartsWith(path, "/etc/ppp")) {
    r = SyncPpp();
  } else if (StartsWith(path, "/etc/passwds") || StartsWith(path, "/etc/shadows") ||
             StartsWith(path, "/etc/groups")) {
    r = SyncUserDb();
    if (r.ok()) {
      r = SyncLegacy();
    }
  }
  if (!r.ok()) {
    RecordError(r.error(), "event sync for " + path);
  }
  syncing_ = false;
}

Result<Unit> MonitorDaemon::SyncAll() {
  syncing_ = true;
  Result<Unit> result = OkUnit();
  struct Step {
    const char* what;
    Result<Unit> (MonitorDaemon::*fn)();
  };
  const Step steps[] = {
      {"mounts", &MonitorDaemon::SyncMounts},   {"sudoers", &MonitorDaemon::SyncSudoers},
      {"ports", &MonitorDaemon::SyncPorts},     {"ppp", &MonitorDaemon::SyncPpp},
      {"userdb", &MonitorDaemon::SyncUserDb},   {"legacy", &MonitorDaemon::SyncLegacy},
  };
  for (const Step& step : steps) {
    Result<Unit> r = (this->*step.fn)();
    if (!r.ok()) {
      RecordError(r.error(), step.what);
      result = r;
    }
  }
  syncing_ = false;
  return result;
}

Result<Unit> MonitorDaemon::SyncMounts() {
  ASSIGN_OR_RETURN(std::string content, kernel_->ReadWholeFile(*task_, "/etc/fstab"));
  if (Trim(content).empty()) {
    return OkUnit();  // transient truncate-before-write state; wait for the write
  }
  // Validate before pushing so a bad fstab leaves kernel policy untouched.
  RETURN_IF_ERROR(ParseFstab(content));
  RETURN_IF_ERROR(kernel_->WriteWholeFile(*task_, "/proc/protego/mounts", content));
  ++sync_count_;
  return OkUnit();
}

Result<Unit> MonitorDaemon::SyncSudoers() {
  ASSIGN_OR_RETURN(std::string main_content, kernel_->ReadWholeFile(*task_, "/etc/sudoers"));
  if (Trim(main_content).empty()) {
    return OkUnit();  // transient truncate-before-write state
  }
  std::vector<std::string> fragments;
  auto names = kernel_->ReadDir(*task_, "/etc/sudoers.d");
  if (names.ok()) {
    std::vector<std::string> sorted = names.value();
    std::sort(sorted.begin(), sorted.end());
    for (const std::string& name : sorted) {
      ASSIGN_OR_RETURN(std::string frag,
                       kernel_->ReadWholeFile(*task_, "/etc/sudoers.d/" + name));
      fragments.push_back(std::move(frag));
    }
  }
  ASSIGN_OR_RETURN(SudoersPolicy policy, ParseSudoersWithFragments(main_content, fragments));
  RETURN_IF_ERROR(
      kernel_->WriteWholeFile(*task_, "/proc/protego/sudoers", SerializeSudoers(policy)));
  ++sync_count_;
  return OkUnit();
}

Result<Unit> MonitorDaemon::SyncPorts() {
  ASSIGN_OR_RETURN(std::string content, kernel_->ReadWholeFile(*task_, "/etc/bind"));
  if (Trim(content).empty()) {
    return OkUnit();  // transient truncate-before-write state
  }
  RETURN_IF_ERROR(ParseBindConf(content));
  RETURN_IF_ERROR(kernel_->WriteWholeFile(*task_, "/proc/protego/ports", content));
  ++sync_count_;
  return OkUnit();
}

Result<Unit> MonitorDaemon::SyncPpp() {
  ASSIGN_OR_RETURN(std::string content, kernel_->ReadWholeFile(*task_, "/etc/ppp/options"));
  if (Trim(content).empty()) {
    return OkUnit();  // transient truncate-before-write state
  }
  RETURN_IF_ERROR(ParsePppOptions(content));
  RETURN_IF_ERROR(kernel_->WriteWholeFile(*task_, "/proc/protego/ppp", content));
  ++sync_count_;
  return OkUnit();
}

Result<UserDb> MonitorDaemon::ReadFragments() {
  std::vector<PasswdEntry> users;
  std::vector<ShadowEntry> shadows;
  std::vector<GroupEntry> groups;
  // A fragment being rewritten is briefly empty (truncate, then write, two
  // inotify events); skip the transient state — the write event follows.
  auto user_names = kernel_->ReadDir(*task_, "/etc/passwds");
  if (user_names.ok()) {
    for (const std::string& name : user_names.value()) {
      ASSIGN_OR_RETURN(std::string line, kernel_->ReadWholeFile(*task_, "/etc/passwds/" + name));
      if (Trim(line).empty()) {
        continue;
      }
      ASSIGN_OR_RETURN(PasswdEntry entry, ParsePasswdLine(Trim(line)));
      users.push_back(std::move(entry));
    }
  }
  auto shadow_names = kernel_->ReadDir(*task_, "/etc/shadows");
  if (shadow_names.ok()) {
    for (const std::string& name : shadow_names.value()) {
      ASSIGN_OR_RETURN(std::string line, kernel_->ReadWholeFile(*task_, "/etc/shadows/" + name));
      if (Trim(line).empty()) {
        continue;
      }
      ASSIGN_OR_RETURN(ShadowEntry entry, ParseShadowLine(Trim(line)));
      shadows.push_back(std::move(entry));
    }
  }
  auto group_names = kernel_->ReadDir(*task_, "/etc/groups");
  if (group_names.ok()) {
    for (const std::string& name : group_names.value()) {
      ASSIGN_OR_RETURN(std::string line, kernel_->ReadWholeFile(*task_, "/etc/groups/" + name));
      if (Trim(line).empty()) {
        continue;
      }
      ASSIGN_OR_RETURN(GroupEntry entry, ParseGroupLine(Trim(line)));
      groups.push_back(std::move(entry));
    }
  }
  return UserDb(std::move(users), std::move(shadows), std::move(groups));
}

Result<Unit> MonitorDaemon::SyncUserDb() {
  ASSIGN_OR_RETURN(UserDb db, ReadFragments());
  RETURN_IF_ERROR(
      kernel_->WriteWholeFile(*task_, "/proc/protego/userdb", SerializeUserDbSections(db)));
  ++sync_count_;
  return OkUnit();
}

Result<Unit> MonitorDaemon::SyncLegacy() {
  ASSIGN_OR_RETURN(UserDb db, ReadFragments());
  RETURN_IF_ERROR(kernel_->WriteWholeFile(*task_, "/etc/passwd", SerializePasswd(db.users()),
                                          /*append=*/false, /*create_mode=*/0644));
  RETURN_IF_ERROR(kernel_->WriteWholeFile(*task_, "/etc/shadow", SerializeShadow(db.shadows()),
                                          /*append=*/false, /*create_mode=*/0600));
  RETURN_IF_ERROR(kernel_->WriteWholeFile(*task_, "/etc/group", SerializeGroup(db.groups()),
                                          /*append=*/false, /*create_mode=*/0644));
  ++sync_count_;
  return OkUnit();
}

}  // namespace protego
