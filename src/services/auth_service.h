// The trusted authentication utility (§4.3): a root service, launched by
// the kernel, that temporarily takes over the requesting task's terminal,
// asks for an account's password, verifies it against the fragmented
// credential database, and stamps the task's authentication-recency record.
//
// Refactored from the roles login and newgrp played on stock Linux (the
// paper's 1,200-line component). It also understands password-protected
// groups: accounts at or above kGroupAuthBase are gids.

#ifndef SRC_SERVICES_AUTH_SERVICE_H_
#define SRC_SERVICES_AUTH_SERVICE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/kernel/kernel.h"

namespace protego {

class AuthService {
 public:
  static constexpr const char* kBinaryPath = "/sbin/protego-auth";
  static constexpr int kMaxAttempts = 3;

  explicit AuthService(Kernel* kernel) : kernel_(kernel) {}

  // Installs the trusted binary, creates the service task, and registers
  // this service as the kernel's authentication agent.
  Result<Unit> Install();

  Task* task() { return task_; }
  uint64_t prompts_issued() const { return prompts_issued_; }
  uint64_t successes() const { return successes_; }
  uint64_t failures() const { return failures_; }

  // The agent entry point (also invocable directly by tests): prompts once
  // per attempt on `requester`'s terminal and verifies the typed password
  // against every candidate account; returns the account that matched.
  std::optional<Uid> Authenticate(Task& requester, const std::vector<Uid>& accounts);

 private:
  // Locates the stored hash for a uid (shadow fragment) or a group-auth
  // account (group fragment), reading through the service task's syscalls
  // so that policy (File_Delegate) is exercised, not bypassed.
  std::optional<std::string> LookupHash(Uid account, std::string* display_name);
  std::optional<std::string> UserNameForUid(Uid uid);

  Kernel* kernel_;
  Task* task_ = nullptr;
  uint64_t prompts_issued_ = 0;
  uint64_t successes_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace protego

#endif  // SRC_SERVICES_AUTH_SERVICE_H_
