#include "src/services/auth_service.h"

#include "src/base/hash.h"
#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/config/passwd_db.h"
#include "src/protego/protego_lsm.h"

namespace protego {

Result<Unit> AuthService::Install() {
  if (!kernel_->HasBinary(kBinaryPath)) {
    // The binary body never runs through exec; the inode exists so the
    // File_Delegate rules and audit trails have a real path to refer to.
    RETURN_IF_ERROR(kernel_->InstallBinary(kBinaryPath, 0755, kRootUid, kRootGid,
                                           [](ProcessContext&) { return 0; }));
  }
  task_ = &kernel_->CreateTask("protego-auth", Cred::Root(), nullptr);
  task_->exe_path = kBinaryPath;
  kernel_->SetAuthAgent([this](Task& requester, const std::vector<Uid>& accounts) {
    return Authenticate(requester, accounts);
  });
  return OkUnit();
}

std::optional<std::string> AuthService::UserNameForUid(Uid uid) {
  auto names = kernel_->ReadDir(*task_, "/etc/passwds");
  if (!names.ok()) {
    return std::nullopt;
  }
  for (const std::string& name : names.value()) {
    auto content = kernel_->ReadWholeFile(*task_, "/etc/passwds/" + name);
    if (!content.ok()) {
      continue;
    }
    auto entry = ParsePasswdLine(Trim(content.value()));
    if (entry.ok() && entry.value().uid == uid) {
      return entry.value().name;
    }
  }
  return std::nullopt;
}

std::optional<std::string> AuthService::LookupHash(Uid account, std::string* display_name) {
  if (account >= kGroupAuthBase) {
    Gid gid = account - kGroupAuthBase;
    auto names = kernel_->ReadDir(*task_, "/etc/groups");
    if (!names.ok()) {
      return std::nullopt;
    }
    for (const std::string& name : names.value()) {
      auto content = kernel_->ReadWholeFile(*task_, "/etc/groups/" + name);
      if (!content.ok()) {
        continue;
      }
      auto entry = ParseGroupLine(Trim(content.value()));
      if (entry.ok() && entry.value().gid == gid) {
        *display_name = "group " + entry.value().name;
        return entry.value().password_hash;
      }
    }
    return std::nullopt;
  }
  std::optional<std::string> user = UserNameForUid(account);
  if (!user.has_value()) {
    return std::nullopt;
  }
  auto content = kernel_->ReadWholeFile(*task_, "/etc/shadows/" + *user);
  if (!content.ok()) {
    return std::nullopt;
  }
  auto entry = ParseShadowLine(Trim(content.value()));
  if (!entry.ok()) {
    return std::nullopt;
  }
  *display_name = *user;
  return entry.value().hash;
}

std::optional<Uid> AuthService::Authenticate(Task& requester,
                                             const std::vector<Uid>& accounts) {
  if (requester.terminal == nullptr) {
    ++failures_;
    return std::nullopt;  // no way to ask a human
  }
  struct Candidate {
    Uid account;
    std::string name;
    std::string hash;
  };
  std::vector<Candidate> candidates;
  std::string prompt_names;
  for (Uid account : accounts) {
    std::string display_name;
    std::optional<std::string> hash = LookupHash(account, &display_name);
    if (!hash.has_value() || hash->empty() || (*hash)[0] == '!') {
      continue;  // unknown or locked account
    }
    if (!prompt_names.empty()) {
      prompt_names += " or ";
    }
    prompt_names += display_name;
    candidates.push_back(Candidate{account, display_name, *hash});
  }
  if (candidates.empty()) {
    ++failures_;
    return std::nullopt;
  }
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    requester.terminal->Write("[protego] password for " + prompt_names + ": ");
    ++prompts_issued_;
    std::optional<std::string> password = requester.terminal->ReadLine();
    if (!password.has_value()) {
      break;  // the human gave up
    }
    for (const Candidate& c : candidates) {
      if (VerifyPassword(*password, c.hash)) {
        requester.auth_times[c.account] = kernel_->clock().Now();
        // Terminal-scoped recency (sudo's 5-minute window) only proves the
        // INVOKING user is still at the keyboard; target-password grants
        // (su semantics) are never cached on the terminal.
        if (c.account == requester.cred.ruid) {
          requester.terminal->StampAuth(c.account, kernel_->clock().Now());
        }
        ++successes_;
        LogAudit(StrFormat("protego-auth: uid=%u authenticated as %s", requester.cred.ruid,
                           c.name.c_str()));
        return c.account;
      }
    }
    requester.terminal->Write("Sorry, try again.\n");
  }
  ++failures_;
  LogAudit(StrFormat("protego-auth: authentication FAILED for uid=%u as %s",
                     requester.cred.ruid, prompt_names.c_str()));
  return std::nullopt;
}

}  // namespace protego
