// Bounded ring buffer for kernel audit records.
//
// The audit log used to be an unbounded std::vector; on a long-lived system
// that is a slow memory leak. This ring keeps the most recent `capacity`
// records and counts what it overwrote, like the kernel's printk ring.
//
// Thread-safe: any task thread may Push while /proc readers Snapshot, so
// the ring serializes internally on a mutex (audit volume is far too low
// for this lock to matter; the hot syscall path never audits).

#ifndef SRC_KERNEL_AUDIT_RING_H_
#define SRC_KERNEL_AUDIT_RING_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace protego {

class AuditRing {
 public:
  explicit AuditRing(size_t capacity) : capacity_(capacity) {
    ring_.reserve(capacity);
  }

  void Push(std::string record) {
    std::lock_guard<std::mutex> lk(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
      return;
    }
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    dropped_++;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.size();
  }
  size_t capacity() const { return capacity_; }

  // Records overwritten because the ring was full.
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
  }

  // Retained records, oldest first.
  std::vector<std::string> Snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  size_t head_ = 0;  // oldest record once the ring is full
  uint64_t dropped_ = 0;
  std::vector<std::string> ring_;
};

}  // namespace protego

#endif  // SRC_KERNEL_AUDIT_RING_H_
