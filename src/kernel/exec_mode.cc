#include "src/kernel/exec_mode.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace protego {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kDeterministic: return "deterministic";
    case ExecMode::kParallel: return "parallel";
  }
  return "?";
}

ExecMode ExecModeFromEnv() {
  const char* value = std::getenv("PROTEGO_EXEC_MODE");
  if (value == nullptr || *value == '\0' ||
      std::strcmp(value, "deterministic") == 0) {
    return ExecMode::kDeterministic;
  }
  if (std::strcmp(value, "parallel") == 0) {
    return ExecMode::kParallel;
  }
  // A typo like PROTEGO_EXEC_MODE=parallell must not silently green-light
  // the deterministic driver: the caller asked for a specific mode and
  // would otherwise run (and gate CI on) the wrong one.
  std::fprintf(stderr,
               "protego: unrecognized PROTEGO_EXEC_MODE value \"%s\" "
               "(expected \"deterministic\" or \"parallel\")\n",
               value);
  std::abort();
}

}  // namespace protego
