#include "src/kernel/exec_mode.h"

#include <cstdlib>
#include <cstring>

namespace protego {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kDeterministic: return "deterministic";
    case ExecMode::kParallel: return "parallel";
  }
  return "?";
}

ExecMode ExecModeFromEnv() {
  const char* value = std::getenv("PROTEGO_EXEC_MODE");
  if (value != nullptr && std::strcmp(value, "parallel") == 0) {
    return ExecMode::kParallel;
  }
  return ExecMode::kDeterministic;
}

}  // namespace protego
