#include "src/kernel/kernel.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace protego {

void ProcessContext::Out(std::string_view text) {
  task.stdout_buf.append(text);
  if (task.terminal != nullptr) {
    task.terminal->Write(text);
  }
}

void ProcessContext::Err(std::string_view text) {
  task.stderr_buf.append(text);
  if (task.terminal != nullptr) {
    task.terminal->Write(text);
  }
}

std::optional<std::string> ProcessContext::ReadLine() {
  if (task.terminal == nullptr) {
    return std::nullopt;
  }
  return task.terminal->ReadLine();
}

std::optional<std::string> ProcessContext::Flag(std::string_view name) const {
  std::string prefix = "--" + std::string(name) + "=";
  for (const std::string& arg : argv) {
    if (StartsWith(arg, prefix)) {
      return arg.substr(prefix.size());
    }
  }
  return std::nullopt;
}

bool ProcessContext::HasFlag(std::string_view name) const {
  std::string flag = "--" + std::string(name);
  for (const std::string& arg : argv) {
    if (arg == flag) {
      return true;
    }
  }
  return false;
}

Kernel::Kernel() : vfs_(&clock_), gate_(&clock_) {
  gate_.set_audit_sink([this](std::string message) { Audit(std::move(message)); });
  // Every subsystem emits into the one kernel-wide tracer so a syscall's
  // decision span threads through LSM, VFS, and netfilter events.
  gate_.set_tracer(&tracer_);
  lsm_.AttachObservability(&tracer_, &clock_);
  vfs_.set_tracer(&tracer_);
  net_.netfilter().set_tracer(&tracer_);
  // The fault registry is threaded through every subsystem that hosts a
  // fault site; injections stamp kFaultInject events into the same tracer.
  faults_.set_tracer(&tracer_);
  gate_.set_faults(&faults_);
  vfs_.set_faults(&faults_);
  lsm_.set_faults(&faults_);
  net_.netfilter().set_faults(&faults_);
  // One kernel-wide layer profiler: the gate opens the root frame, every
  // subsystem nests its own layer inside it, and /proc/protego/profile
  // renders the folded result.
  gate_.set_profiler(&profiler_);
  lsm_.set_profiler(&profiler_);
  vfs_.set_profiler(&profiler_);
  net_.netfilter().set_profiler(&profiler_);
  faults_.set_profiler(&profiler_);
  metrics_.AddCollector([this](MetricsBuilder& b) {
    gate_.CollectMetrics(b);
    lsm_.CollectMetrics(b);
    faults_.CollectMetrics(b);
    profiler_.CollectMetrics(b);
    CollectKernelMetrics(b);
  });
}

void Kernel::CollectKernelMetrics(MetricsBuilder& b) const {
  b.Counter("protego_audit_records_total", "Audit records pushed since boot.", {},
            audit_ring_.size() + audit_ring_.dropped());
  b.Counter("protego_audit_dropped_total", "Audit records lost to ring overflow.", {},
            audit_ring_.dropped());
  b.Counter("protego_netfilter_evaluated_total", "Packets run through netfilter chains.", {},
            net_.netfilter().evaluated());
  b.Counter("protego_netfilter_dropped_total", "Packets dropped by netfilter rules.", {},
            net_.netfilter().dropped());
  b.Counter("protego_vfs_resolves_total", "VFS path resolutions since boot.", {},
            vfs_.resolves());
  b.Counter("protego_trace_events_total", "Trace events emitted since boot.", {},
            tracer_.seq());
  b.Counter("protego_trace_dropped_total", "Trace events overwritten in the ring.", {},
            tracer_.dropped());
  for (size_t i = 0; i < kTracepointCount; ++i) {
    TracepointId tp = static_cast<TracepointId>(i);
    uint64_t n = tracer_.sampled_out(tp);
    if (n == 0) {
      continue;
    }
    b.Counter("protego_trace_sampled_out_total",
              "Trace emissions dropped by head sampling, per tracepoint.",
              {{"point", TracepointName(tp)}}, n);
  }
  b.Counter("protego_lsm_fail_closed_total",
            "LSM hook dispatches denied because a fault was injected.", {},
            lsm_.fail_closed_denials());
  b.Gauge("protego_open_files", "Open file descriptions across all tasks.", {},
          static_cast<double>(OpenFileCount()));
  b.Gauge("protego_tasks", "Live tasks.", {},
          static_cast<double>(task_count_.load(std::memory_order_relaxed)));
}

Task& Kernel::CreateTask(std::string comm, Cred cred, Terminal* terminal, int ppid) {
  auto task = std::make_unique<Task>();
  task->pid = next_pid_.fetch_add(1, std::memory_order_relaxed);
  task->ppid = ppid;
  task->comm = std::move(comm);
  task->cred = std::move(cred);
  task->terminal = terminal;
  // Wire the fd table into the system-wide open-file counter before the
  // task becomes visible (and thus before it can open anything).
  task->fds.set_accounting(&open_files_);
  Task* raw = task.get();
  TaskShard& shard = ShardFor(raw->pid);
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.tasks.emplace(raw->pid, std::move(task));
  }
  task_count_.fetch_add(1, std::memory_order_relaxed);
  return *raw;
}

Task* Kernel::FindTask(int pid) {
  TaskShard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.tasks.find(pid);
  return it == shard.tasks.end() ? nullptr : it->second.get();
}

void Kernel::ReapTask(int pid) {
  TaskShard& shard = ShardFor(pid);
  std::unique_ptr<Task> victim;
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.tasks.find(pid);
    if (it == shard.tasks.end()) {
      return;
    }
    victim = std::move(it->second);
    shard.tasks.erase(it);
  }
  task_count_.fetch_sub(1, std::memory_order_relaxed);
  // Destruction happens outside the shard lock: closing sockets and waking
  // flock waiters re-enter other subsystems.
  // Process exit closes its descriptors; socket endpoints (and their port
  // bindings) must not outlive the task.
  for (const auto& [fd, entry] : victim->fds.entries()) {
    if (entry.kind == FdEntry::Kind::kSocket) {
      net_.DestroySocket(entry.socket_id);
    }
  }
  // Exit drops any advisory file locks the task still held.
  ReleaseFileLocks(pid);
}

Result<Unit> Kernel::InstallBinary(const std::string& path, uint32_t mode, Uid uid, Gid gid,
                                   ProgramMain main) {
  std::string normalized = Vfs::Normalize(path);
  size_t slash = normalized.find_last_of('/');
  if (slash > 0) {
    RETURN_IF_ERROR(vfs_.EnsureDirs(normalized.substr(0, slash)));
  }
  ASSIGN_OR_RETURN(Vnode * node,
                   vfs_.CreateFile(normalized, mode, uid, gid, "\177ELF " + normalized));
  vfs_.SetInodeMode(node, mode);
  std::unique_lock<std::shared_mutex> lk(registry_mu_);
  binaries_[normalized] = BinaryEntry{std::move(main), CapSet{}};
  return OkUnit();
}

void Kernel::SetFileCaps(const std::string& path, CapSet caps) {
  std::unique_lock<std::shared_mutex> lk(registry_mu_);
  auto it = binaries_.find(Vfs::Normalize(path));
  if (it != binaries_.end()) {
    it->second.file_caps = caps;
  }
}

bool Kernel::HasBinary(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lk(registry_mu_);
  return binaries_.count(Vfs::Normalize(path)) != 0;
}

std::string Kernel::JoinPath(const Task& task, const std::string& path) {
  if (!path.empty() && path[0] == '/') {
    return Vfs::Normalize(path);
  }
  return Vfs::Normalize(task.cwd + "/" + path);
}

bool Kernel::Capable(const Task& task, Capability cap) const {
  LayerScope lsm_scope(&profiler_, Layer::kLsm);
  bool ok = lsm_.Capable(task, cap);
  if (tracer_.ShouldEmit(TracepointId::kCapable)) {
    TraceEvent& ev = tracer_.Emit(TracepointId::kCapable, task.pid);
    ev.sname = CapabilityName(cap);
    ev.a = static_cast<uint64_t>(cap);
    ev.code = ok ? 1 : 0;
    if (!ok) {
      ev.flags |= kTraceFlagDenied;
    }
  }
  return ok;
}

void Kernel::Audit(std::string message) {
  audit_ring_.Push(message);
  LogAudit(std::move(message));
}

bool Kernel::Authenticate(Task& task, Uid account) {
  return AuthenticateAny(task, {account}).has_value();
}

std::optional<Uid> Kernel::AuthenticateAny(Task& task, const std::vector<Uid>& accounts) {
  if (!auth_agent_) {
    return std::nullopt;
  }
  // Fail closed: if the auth-service round trip faults (the daemon crashed,
  // the socket dropped), authentication DID NOT HAPPEN — never fall back to
  // an open gate.
  if (faults_.any_enabled() &&
      faults_.Evaluate(FaultSite::kAuthRoundTrip) != Errno::kOk) {
    Audit(StrFormat("auth: round-trip fault injected; denying authentication for pid %d",
                    task.pid));
    return std::nullopt;
  }
  std::optional<Uid> who = auth_agent_(task, accounts);
  if (auth_observer_) {
    auth_observer_(task.pid, accounts, who);
  }
  return who;
}

void Kernel::ForEachTask(const std::function<void(const Task&)>& fn) const {
  for (size_t s = 0; s < kTaskShards; ++s) {
    std::lock_guard<std::mutex> lk(task_shards_[s].mu);
    for (const auto& [pid, t] : task_shards_[s].tasks) {
      fn(*t);
    }
  }
}

Result<Unit> Kernel::CheckPermission(Task& task, const std::string& path, const Inode& inode,
                                     int may) {
  Result<Unit> r = CheckPermissionImpl(task, path, inode, may);
  if (tracer_.ShouldEmit(TracepointId::kVfsPermission)) {
    TraceEvent& ev = tracer_.Emit(TracepointId::kVfsPermission, task.pid);
    ev.detail = path;
    ev.a = static_cast<uint64_t>(may);
    ev.code = r.ok() ? 0 : static_cast<int>(r.code());
    if (!r.ok()) {
      ev.flags |= kTraceFlagDenied;
    }
  }
  return r;
}

void Kernel::EmitCredChange(const Task& task, const char* what, std::string detail) {
  TraceEvent& ev = tracer_.Emit(TracepointId::kCredChange, task.pid);
  ev.sname = what;
  ev.detail = std::move(detail);
}

Result<Unit> Kernel::CheckPermissionImpl(Task& task, const std::string& path, const Inode& inode,
                                         int may) {
  HookVerdict verdict = lsm_.InodePermission(task, path, inode, may);
  if (verdict == HookVerdict::kDeny) {
    return Error(Errno::kEACCES, path);
  }
  if (verdict == HookVerdict::kAllow) {
    return OkUnit();  // delegation rule bypasses DAC (e.g. ssh-keysign host key)
  }
  LayerScope dac_scope(&profiler_, Layer::kDac);
  const Cred& cred = task.cred;
  auto in_group = [&cred](Gid gid) { return cred.InGroup(gid); };
  if (DacPermits(inode, cred.fsuid, in_group, may)) {
    return OkUnit();
  }
  // CAP_DAC_OVERRIDE bypasses rw checks; exec still needs some x bit.
  if (Capable(task, Capability::kDacOverride)) {
    if (!(may & kMayExec) || (inode.mode & 0111) != 0 || inode.IsDir()) {
      return OkUnit();
    }
  }
  if ((may & (kMayWrite | kMayExec)) == 0 && Capable(task, Capability::kDacReadSearch)) {
    return OkUnit();
  }
  return Error(Errno::kEACCES, path);
}

// --- Files -------------------------------------------------------------------
//
// Each public syscall below is a thin wrapper routing the old body (now
// XxxImpl) through the gate: seccomp filter check first, then the body, then
// stats/trace accounting. The args lambda is only evaluated when tracing.

Result<int> Kernel::Open(Task& task, const std::string& path, int flags, uint32_t mode) {
  SyscallArgs sargs;
  sargs.path = &path;
  sargs.a[1] = static_cast<uint64_t>(static_cast<uint32_t>(flags));
  sargs.a[2] = mode;
  return gate_.Run<int>(
      task, Sysno::kOpen, sargs,
      [&] { return StrFormat("\"%s\", 0x%x, 0%o", path.c_str(), flags, mode); },
      [&] { return OpenImpl(task, path, flags, mode); });
}

Result<int> Kernel::OpenImpl(Task& task, const std::string& path, int flags, uint32_t mode) {
  // Linux allocates the fd slot before walking the path (get_unused_fd_flags
  // in do_sys_open), so resource exhaustion is reported before ENOENT.
  RETURN_IF_ERROR(CheckFdAvailable(task));
  std::string full = JoinPath(task, path);
  Vnode* node = nullptr;
  while (node == nullptr) {
    auto resolved = vfs_.Resolve(full);
    if (!resolved.ok()) {
      if (resolved.code() != Errno::kENOENT || !(flags & kOCreat)) {
        return resolved.error();
      }
      // Create: need write permission on the parent directory.
      ASSIGN_OR_RETURN(auto parent_leaf, vfs_.ResolveParent(full));
      auto [parent, leaf] = parent_leaf;
      RETURN_IF_ERROR(CheckPermission(task, vfs_.PathOf(parent), parent->inode(), kMayWrite));
      auto created = vfs_.CreateFile(full, mode, task.cred.fsuid, task.cred.fsgid);
      if (!created.ok()) {
        if (created.code() == Errno::kEEXIST && !(flags & kOExcl)) {
          // Lost an O_CREAT race to a concurrent creator; without O_EXCL
          // that is not an error — go open the winner's file.
          continue;
        }
        return created.error();
      }
      node = created.value();
    } else {
      node = resolved.value();
      if ((flags & kOCreat) && (flags & kOExcl)) {
        return Error(Errno::kEEXIST, full);
      }
    }
  }
  if (node->inode().IsDir() && (flags & kOAccMode) != kORdOnly) {
    return Error(Errno::kEISDIR, full);
  }
  int may = 0;
  switch (flags & kOAccMode) {
    case kORdOnly: may = kMayRead; break;
    case kOWrOnly: may = kMayWrite; break;
    default: may = kMayRead | kMayWrite; break;
  }
  RETURN_IF_ERROR(CheckPermission(task, full, node->inode(), may));
  if ((flags & kOTrunc) && (may & kMayWrite) && node->inode().IsReg() &&
      node->inode().synthetic == nullptr) {
    RETURN_IF_ERROR(vfs_.WriteNode(node, "", /*append=*/false));
  }
  FdEntry entry;
  entry.kind = FdEntry::Kind::kFile;
  entry.file = std::make_shared<OpenFile>();
  entry.file->node = node;
  entry.file->flags = flags;
  entry.cloexec = (flags & kOCloExec) != 0;
  return task.fds.Install(std::move(entry));
}

Result<Unit> Kernel::Close(Task& task, int fd) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  return gate_.Run<Unit>(
      task, Sysno::kClose, sargs, [&] { return StrFormat("%d", fd); },
      [&] { return CloseImpl(task, fd); });
}

Result<Unit> Kernel::CloseImpl(Task& task, int fd) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr) {
    return Error(Errno::kEBADF);
  }
  if (entry->kind == FdEntry::Kind::kSocket) {
    net_.DestroySocket(entry->socket_id);
  }
  return task.fds.Close(fd);
}

Result<std::string> Kernel::Read(Task& task, int fd) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  return gate_.Run<std::string>(
      task, Sysno::kRead, sargs, [&] { return StrFormat("%d", fd); },
      [&] { return ReadImpl(task, fd); });
}

Result<std::string> Kernel::ReadImpl(Task& task, int fd) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr || entry->kind != FdEntry::Kind::kFile) {
    return Error(Errno::kEBADF);
  }
  if ((entry->file->flags & kOAccMode) == kOWrOnly) {
    return Error(Errno::kEBADF, "write-only fd");
  }
  ASSIGN_OR_RETURN(std::string data, vfs_.ReadNode(entry->file->node));
  if (entry->file->offset >= data.size()) {
    return std::string();
  }
  std::string out = data.substr(entry->file->offset);
  entry->file->offset = data.size();
  return out;
}

Result<Unit> Kernel::Write(Task& task, int fd, std::string_view data) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  sargs.a[2] = data.size();
  return gate_.Run<Unit>(
      task, Sysno::kWrite, sargs,
      [&] { return StrFormat("%d, %zu bytes", fd, data.size()); },
      [&] { return WriteImpl(task, fd, data); });
}

Result<Unit> Kernel::WriteImpl(Task& task, int fd, std::string_view data) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr || entry->kind != FdEntry::Kind::kFile) {
    return Error(Errno::kEBADF);
  }
  if ((entry->file->flags & kOAccMode) == kORdOnly) {
    return Error(Errno::kEBADF, "read-only fd");
  }
  bool append = (entry->file->flags & kOAppend) != 0 || entry->file->offset > 0;
  RETURN_IF_ERROR(vfs_.WriteNode(entry->file->node, data, append));
  entry->file->offset += data.size();
  return OkUnit();
}

Result<KernelStat> Kernel::Stat(Task& task, const std::string& path) {
  SyscallArgs sargs;
  sargs.path = &path;
  return gate_.Run<KernelStat>(
      task, Sysno::kStat, sargs, [&]() -> std::string { return path; },
      [&] { return StatImpl(task, path); });
}

Result<KernelStat> Kernel::StatImpl(Task& task, const std::string& path) {
  std::string full = JoinPath(task, path);
  ASSIGN_OR_RETURN(Vnode * node, vfs_.Resolve(full));
  // Coherent copy under the VFS locks: a concurrent write may be growing
  // `data` while we stat.
  Inode inode = vfs_.SnapshotInode(node);
  KernelStat st;
  st.ino = inode.ino;
  st.mode = inode.mode;
  st.uid = inode.uid;
  st.gid = inode.gid;
  st.size = inode.data.size();
  st.mtime = inode.mtime;
  st.rdev_major = inode.rdev_major;
  st.rdev_minor = inode.rdev_minor;
  return st;
}

Result<Unit> Kernel::Chmod(Task& task, const std::string& path, uint32_t mode) {
  SyscallArgs sargs;
  sargs.path = &path;
  sargs.a[1] = mode;
  return gate_.Run<Unit>(
      task, Sysno::kChmod, sargs,
      [&] { return StrFormat("\"%s\", 0%o", path.c_str(), mode); },
      [&] { return ChmodImpl(task, path, mode); });
}

Result<Unit> Kernel::ChmodImpl(Task& task, const std::string& path, uint32_t mode) {
  std::string full = JoinPath(task, path);
  ASSIGN_OR_RETURN(Vnode * node, vfs_.Resolve(full));
  if (task.cred.fsuid != node->inode().uid && !Capable(task, Capability::kFowner)) {
    return Error(Errno::kEPERM, full);
  }
  vfs_.SetInodeMode(node, mode);
  return OkUnit();
}

Result<Unit> Kernel::Chown(Task& task, const std::string& path, Uid uid, Gid gid) {
  SyscallArgs sargs;
  sargs.path = &path;
  sargs.a[1] = uid;
  sargs.a[2] = gid;
  return gate_.Run<Unit>(
      task, Sysno::kChown, sargs,
      [&] { return StrFormat("\"%s\", %u, %u", path.c_str(), uid, gid); },
      [&] { return ChownImpl(task, path, uid, gid); });
}

Result<Unit> Kernel::ChownImpl(Task& task, const std::string& path, Uid uid, Gid gid) {
  std::string full = JoinPath(task, path);
  ASSIGN_OR_RETURN(Vnode * node, vfs_.Resolve(full));
  if (!Capable(task, Capability::kChown)) {
    return Error(Errno::kEPERM, full);
  }
  // Ownership change clears the setuid/setgid bits, as on Linux.
  vfs_.SetInodeOwner(node, uid, gid, /*clear_sbits=*/true);
  return OkUnit();
}

Result<Unit> Kernel::Mkdir(Task& task, const std::string& path, uint32_t mode) {
  SyscallArgs sargs;
  sargs.path = &path;
  sargs.a[1] = mode;
  return gate_.Run<Unit>(
      task, Sysno::kMkdir, sargs,
      [&] { return StrFormat("\"%s\", 0%o", path.c_str(), mode); },
      [&] { return MkdirImpl(task, path, mode); });
}

Result<Unit> Kernel::MkdirImpl(Task& task, const std::string& path, uint32_t mode) {
  std::string full = JoinPath(task, path);
  ASSIGN_OR_RETURN(auto parent_leaf, vfs_.ResolveParent(full));
  auto [parent, leaf] = parent_leaf;
  RETURN_IF_ERROR(CheckPermission(task, vfs_.PathOf(parent), parent->inode(), kMayWrite));
  RETURN_IF_ERROR(vfs_.CreateDir(full, mode, task.cred.fsuid, task.cred.fsgid));
  return OkUnit();
}

Result<Unit> Kernel::Unlink(Task& task, const std::string& path) {
  SyscallArgs sargs;
  sargs.path = &path;
  return gate_.Run<Unit>(
      task, Sysno::kUnlink, sargs, [&]() -> std::string { return path; },
      [&] { return UnlinkImpl(task, path); });
}

Result<Unit> Kernel::UnlinkImpl(Task& task, const std::string& path) {
  std::string full = JoinPath(task, path);
  ASSIGN_OR_RETURN(auto parent_leaf, vfs_.ResolveParent(full));
  auto [parent, leaf] = parent_leaf;
  RETURN_IF_ERROR(CheckPermission(task, vfs_.PathOf(parent), parent->inode(), kMayWrite));
  return vfs_.Unlink(full);
}

Result<Unit> Kernel::Rename(Task& task, const std::string& from, const std::string& to) {
  SyscallArgs sargs;
  sargs.path = &from;
  sargs.str1 = &to;
  return gate_.Run<Unit>(
      task, Sysno::kRename, sargs,
      [&] { return StrFormat("\"%s\", \"%s\"", from.c_str(), to.c_str()); },
      [&] { return RenameImpl(task, from, to); });
}

Result<Unit> Kernel::RenameImpl(Task& task, const std::string& from, const std::string& to) {
  std::string from_full = JoinPath(task, from);
  std::string to_full = JoinPath(task, to);
  ASSIGN_OR_RETURN(auto from_pl, vfs_.ResolveParent(from_full));
  RETURN_IF_ERROR(
      CheckPermission(task, vfs_.PathOf(from_pl.first), from_pl.first->inode(), kMayWrite));
  ASSIGN_OR_RETURN(auto to_pl, vfs_.ResolveParent(to_full));
  RETURN_IF_ERROR(CheckPermission(task, vfs_.PathOf(to_pl.first), to_pl.first->inode(), kMayWrite));
  return vfs_.Rename(from_full, to_full);
}

Result<Unit> Kernel::Symlink(Task& task, const std::string& target, const std::string& linkpath) {
  SyscallArgs sargs;
  sargs.path = &linkpath;
  sargs.str1 = &target;
  return gate_.Run<Unit>(
      task, Sysno::kSymlink, sargs,
      [&] { return StrFormat("\"%s\", \"%s\"", target.c_str(), linkpath.c_str()); },
      [&] { return SymlinkImpl(task, target, linkpath); });
}

Result<Unit> Kernel::SymlinkImpl(Task& task, const std::string& target,
                                 const std::string& linkpath) {
  std::string full = JoinPath(task, linkpath);
  ASSIGN_OR_RETURN(auto parent_leaf, vfs_.ResolveParent(full));
  auto [parent, leaf] = parent_leaf;
  RETURN_IF_ERROR(CheckPermission(task, vfs_.PathOf(parent), parent->inode(), kMayWrite));
  RETURN_IF_ERROR(vfs_.CreateSymlink(full, target, task.cred.fsuid, task.cred.fsgid));
  return OkUnit();
}

Result<Unit> Kernel::Flock(Task& task, int fd, int op) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  sargs.a[1] = static_cast<uint64_t>(static_cast<uint32_t>(op));
  return gate_.Run<Unit>(
      task, Sysno::kFlock, sargs, [&] { return StrFormat("%d, %d", fd, op); },
      [&] { return FlockImpl(task, fd, op); });
}

Result<Unit> Kernel::FlockImpl(Task& task, int fd, int op) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr || entry->kind != FdEntry::Kind::kFile) {
    return Error(Errno::kEBADF);
  }
  uint64_t ino = entry->file->node->inode().ino;
  std::string path = vfs_.PathOf(entry->file->node);

  if (op & kLockUn) {
    bool released = false;
    {
      std::lock_guard<std::mutex> lk(locks_mu_);
      auto it = file_locks_.find(ino);
      if (it != file_locks_.end()) {
        if (it->second.exclusive == task.pid) {
          it->second.exclusive = 0;
        }
        it->second.shared.erase(task.pid);
        if (it->second.exclusive == 0 && it->second.shared.empty()) {
          file_locks_.erase(it);
        }
        released = true;
      }
    }
    // Wake waiters after dropping locks_mu_ so a woken thread can
    // immediately re-check the lock table.
    if (released) {
      if (TaskScheduler* sched = gate_.scheduler()) {
        sched->Signal(kWaitKeyFileLock | ino);
      }
    }
    EmitFileLockEvent(task, "LOCK_UN", path, ino, "released");
    return OkUnit();
  }

  int op_base = op & ~kLockNb;
  if (op_base != kLockSh && op_base != kLockEx) {
    return Error(Errno::kEINVAL, StrFormat("flock op %d", op));
  }
  const char* op_name = op_base == kLockEx ? "LOCK_EX" : "LOCK_SH";
  while (true) {
    bool acquired = false;
    bool downgraded = false;
    {
      std::lock_guard<std::mutex> lk(locks_mu_);
      FileLockState& state = file_locks_[ino];
      bool other_exclusive = state.exclusive != 0 && state.exclusive != task.pid;
      bool other_shared = false;
      for (int holder : state.shared) {
        if (holder != task.pid) {
          other_shared = true;
          break;
        }
      }
      bool conflict =
          op_base == kLockEx ? (other_exclusive || other_shared) : other_exclusive;
      if (!conflict) {
        // Acquire; a holder re-locking converts its own lock (upgrade or
        // downgrade), as flock(2) specifies.
        if (op_base == kLockEx) {
          state.shared.erase(task.pid);
          state.exclusive = task.pid;
        } else {
          if (state.exclusive == task.pid) {
            state.exclusive = 0;
          }
          state.shared.insert(task.pid);
          downgraded = true;
        }
        acquired = true;
      }
    }
    if (acquired) {
      if (downgraded) {
        if (TaskScheduler* sched = gate_.scheduler()) {
          sched->Signal(kWaitKeyFileLock | ino);  // downgrade admits other readers
        }
      }
      EmitFileLockEvent(task, op_name, path, ino, "acquired");
      return OkUnit();
    }
    if (op & kLockNb) {
      EmitFileLockEvent(task, op_name, path, ino, "would-block");
      return Error(Errno::kEAGAIN, path);
    }
    EmitFileLockEvent(task, op_name, path, ino, "blocked");
    TaskScheduler* sched = gate_.scheduler();
    if (sched == nullptr || !sched->WaitOn(task.pid, kWaitKeyFileLock | ino)) {
      // No scheduler to block under, or blocking would leave no runnable
      // unit: the lock can never be released.
      EmitFileLockEvent(task, op_name, path, ino, "deadlock");
      return Error(Errno::kEDEADLK, path);
    }
  }
}

void Kernel::EmitFileLockEvent(const Task& task, const char* op, const std::string& path,
                               uint64_t ino, const char* outcome) {
  if (!tracer_.ShouldEmit(TracepointId::kFileLock)) {
    return;
  }
  TraceEvent& ev = tracer_.Emit(TracepointId::kFileLock, task.pid);
  ev.comm = task.comm;
  ev.sname = op;
  ev.detail = path;
  ev.a = ino;
  ev.svalue = outcome;
}

void Kernel::ReleaseFileLocks(int pid) {
  std::vector<uint64_t> changed_inos;
  {
    std::lock_guard<std::mutex> lk(locks_mu_);
    for (auto it = file_locks_.begin(); it != file_locks_.end();) {
      FileLockState& state = it->second;
      bool changed = false;
      if (state.exclusive == pid) {
        state.exclusive = 0;
        changed = true;
      }
      changed |= state.shared.erase(pid) > 0;
      uint64_t ino = it->first;
      if (state.exclusive == 0 && state.shared.empty()) {
        it = file_locks_.erase(it);
      } else {
        ++it;
      }
      if (changed) {
        changed_inos.push_back(ino);
      }
    }
  }
  if (!changed_inos.empty()) {
    if (TaskScheduler* sched = gate_.scheduler()) {
      for (uint64_t ino : changed_inos) {
        sched->Signal(kWaitKeyFileLock | ino);
      }
    }
  }
}

Result<std::vector<std::string>> Kernel::ReadDir(Task& task, const std::string& path) {
  SyscallArgs sargs;
  sargs.path = &path;
  return gate_.Run<std::vector<std::string>>(
      task, Sysno::kGetDents, sargs, [&]() -> std::string { return path; },
      [&] { return ReadDirImpl(task, path); });
}

Result<std::vector<std::string>> Kernel::ReadDirImpl(Task& task, const std::string& path) {
  std::string full = JoinPath(task, path);
  ASSIGN_OR_RETURN(Vnode * node, vfs_.Resolve(full));
  if (!node->inode().IsDir()) {
    return Error(Errno::kENOTDIR, full);
  }
  RETURN_IF_ERROR(CheckPermission(task, full, node->inode(), kMayRead));
  return vfs_.ListDir(node);
}

Result<Unit> Kernel::Access(Task& task, const std::string& path, int may) {
  SyscallArgs sargs;
  sargs.path = &path;
  sargs.a[1] = static_cast<uint64_t>(static_cast<uint32_t>(may));
  return gate_.Run<Unit>(
      task, Sysno::kAccess, sargs,
      [&] { return StrFormat("\"%s\", %d", path.c_str(), may); },
      [&] { return AccessImpl(task, path, may); });
}

Result<Unit> Kernel::AccessImpl(Task& task, const std::string& path, int may) {
  std::string full = JoinPath(task, path);
  ASSIGN_OR_RETURN(Vnode * node, vfs_.Resolve(full));
  return CheckPermission(task, full, node->inode(), may);
}

Result<std::string> Kernel::ReadWholeFile(Task& task, const std::string& path) {
  ASSIGN_OR_RETURN(int fd, Open(task, path, kORdOnly));
  auto data = Read(task, fd);
  (void)Close(task, fd);
  return data;
}

Result<Unit> Kernel::WriteWholeFile(Task& task, const std::string& path, std::string_view data,
                                    bool append, uint32_t create_mode) {
  int flags = kOWrOnly | kOCreat | (append ? kOAppend : kOTrunc);
  ASSIGN_OR_RETURN(int fd, Open(task, path, flags, create_mode));
  auto r = Write(task, fd, data);
  (void)Close(task, fd);
  if (!r.ok()) {
    return r.error();
  }
  return OkUnit();
}

// --- Mounts --------------------------------------------------------------------

void Kernel::RegisterFsType(const std::string& fstype, FsTypeFactory factory) {
  std::unique_lock<std::shared_mutex> lk(registry_mu_);
  fs_types_[fstype] = std::move(factory);
}

Result<Unit> Kernel::Mount(Task& task, const std::string& source, const std::string& target,
                           const std::string& fstype, std::vector<std::string> options) {
  SyscallArgs sargs;
  sargs.str1 = &source;
  sargs.path = &target;
  sargs.str2 = &fstype;
  sargs.list = &options;
  return gate_.Run<Unit>(
      task, Sysno::kMount, sargs,
      [&] {
        return StrFormat("\"%s\", \"%s\", \"%s\"", source.c_str(), target.c_str(),
                         fstype.c_str());
      },
      // Copied, not moved: sargs.list aliases `options`, and the gate reads
      // it after the body when a trace recorder is attached.
      [&] { return MountImpl(task, source, target, fstype, options); });
}

Result<Unit> Kernel::MountImpl(Task& task, const std::string& source, const std::string& target,
                               const std::string& fstype, std::vector<std::string> options) {
  std::string full_target = JoinPath(task, target);
  MountRequest req{source, full_target, fstype, options};
  HookVerdict verdict = lsm_.SbMount(task, req);
  if (verdict == HookVerdict::kDeny) {
    Audit(StrFormat("mount denied by LSM: %s on %s (uid=%u)", source.c_str(),
                       full_target.c_str(), task.cred.euid));
    return Error(Errno::kEPERM, "mount " + full_target);
  }
  if (verdict == HookVerdict::kDefault && !Capable(task, Capability::kSysAdmin)) {
    return Error(Errno::kEPERM, "mount requires CAP_SYS_ADMIN");
  }
  FsTypeFactory factory;
  {
    std::shared_lock<std::shared_mutex> lk(registry_mu_);
    auto it = fs_types_.find(fstype);
    if (it == fs_types_.end()) {
      return Error(Errno::kENODEV, "unknown filesystem type " + fstype);
    }
    factory = it->second;  // copy: the factory may nest syscalls
  }
  ASSIGN_OR_RETURN(MountPopulator populate, factory(source));
  return vfs_.AddMount(full_target, source, fstype, std::move(options), task.cred.ruid, populate);
}

Result<Unit> Kernel::Umount(Task& task, const std::string& target) {
  SyscallArgs sargs;
  sargs.path = &target;
  return gate_.Run<Unit>(
      task, Sysno::kUmount2, sargs, [&]() -> std::string { return target; },
      [&] { return UmountImpl(task, target); });
}

Result<Unit> Kernel::UmountImpl(Task& task, const std::string& target) {
  std::string full_target = JoinPath(task, target);
  if (vfs_.FindMount(full_target) == nullptr) {
    return Error(Errno::kEINVAL, "not mounted: " + full_target);
  }
  HookVerdict verdict = lsm_.SbUmount(task, full_target);
  if (verdict == HookVerdict::kDeny) {
    return Error(Errno::kEPERM, "umount " + full_target);
  }
  if (verdict == HookVerdict::kDefault && !Capable(task, Capability::kSysAdmin)) {
    return Error(Errno::kEPERM, "umount requires CAP_SYS_ADMIN");
  }
  return vfs_.RemoveMount(full_target);
}

// --- Namespaces --------------------------------------------------------------------

Result<Unit> Kernel::Unshare(Task& task, int flags) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(static_cast<uint32_t>(flags));
  return gate_.Run<Unit>(
      task, Sysno::kUnshare, sargs, [&] { return StrFormat("0x%x", flags); },
      [&] { return UnshareImpl(task, flags); });
}

Result<Unit> Kernel::UnshareImpl(Task& task, int flags) {
  if ((flags & ~(kCloneNewUser | kCloneNewNet)) != 0) {
    return Error(Errno::kEINVAL, "unsupported unshare flags");
  }
  bool want_user = (flags & kCloneNewUser) != 0;
  bool want_net = (flags & kCloneNewNet) != 0;
  if (!want_user && !want_net) {
    return OkUnit();
  }
  if (!unprivileged_userns_enabled_) {
    // Pre-3.8: every namespace type requires CAP_SYS_ADMIN — which is why
    // chromium-sandbox had to be setuid root (§4.6).
    if (!Capable(task, Capability::kSysAdmin)) {
      return Error(Errno::kEPERM, "unshare requires CAP_SYS_ADMIN");
    }
  } else if (want_net && !want_user && task.ns.user_ns == 0 &&
             !Capable(task, Capability::kSysAdmin)) {
    // 3.8+: user namespaces are free; other namespaces need CAP_SYS_ADMIN
    // in the current user namespace (i.e. ride along with CLONE_NEWUSER).
    return Error(Errno::kEPERM, "network namespace requires a user namespace");
  }
  if (want_user) {
    task.ns.user_ns = next_userns_.fetch_add(1, std::memory_order_relaxed);
  }
  if (want_net) {
    task.ns.net_ns = net_.NewNetNamespace();
  }
  Audit(StrFormat("unshare: pid=%d uid=%u user_ns=%d net_ns=%d", task.pid, task.cred.ruid,
                     task.ns.user_ns, task.ns.net_ns));
  return OkUnit();
}

// --- Credentials -----------------------------------------------------------------

void Kernel::RecomputeCapsAfterSetuid(Cred& cred, Uid old_euid) {
  if (old_euid == kRootUid && cred.euid != kRootUid) {
    cred.effective.Clear();
    if (cred.ruid != kRootUid && cred.suid != kRootUid) {
      cred.permitted.Clear();
    }
  }
  if (old_euid != kRootUid && cred.euid == kRootUid) {
    cred.effective = cred.permitted;
  }
}

Result<Unit> Kernel::Setuid(Task& task, Uid uid) {
  SyscallArgs sargs;
  sargs.a[0] = uid;
  return gate_.Run<Unit>(
      task, Sysno::kSetuid, sargs, [&] { return StrFormat("%u", uid); },
      [&] { return SetuidImpl(task, uid); });
}

Result<Unit> Kernel::SetuidImpl(Task& task, Uid uid) {
  SetuidRequest req;
  req.target_uid = uid;
  SetuidDisposition disposition;
  HookVerdict verdict = lsm_.TaskFixSetuid(task, req, &disposition);
  if (verdict == HookVerdict::kDeny) {
    Audit(StrFormat("setuid(%u) denied by LSM for uid=%u", uid, task.cred.ruid));
    return Error(Errno::kEPERM, "setuid");
  }
  Uid old_euid = task.cred.euid;
  Uid old_ruid = task.cred.ruid;
  if (verdict == HookVerdict::kAllow) {
    if (disposition.defer_to_exec) {
      // Protego setuid-on-exec: report success now, transition at execve.
      task.pending_setuid.active = true;
      task.pending_setuid.target_uid = uid;
      task.pending_setuid.has_gid = false;
      if (TraceCredOn()) {
        EmitCredChange(task, "setuid_deferred",
                       StrFormat("target uid=%u (transition at exec)", uid));
      }
      return OkUnit();
    }
    task.cred.ruid = task.cred.euid = task.cred.suid = task.cred.fsuid = uid;
    if (disposition.has_gid) {
      task.cred.rgid = task.cred.egid = task.cred.sgid = task.cred.fsgid = disposition.gid;
    }
    if (uid == kRootUid) {
      task.cred.effective = CapSet::All();
      task.cred.permitted = CapSet::All();
    } else {
      RecomputeCapsAfterSetuid(task.cred, old_euid);
    }
    task.lsm_cache.Clear();
    if (TraceCredOn()) {
      EmitCredChange(task, "setuid",
                     StrFormat("uid %u->%u euid %u->%u", old_ruid, uid, old_euid, uid));
    }
    return OkUnit();
  }
  // Legacy rule (stock Linux).
  if (Capable(task, Capability::kSetuid)) {
    task.cred.ruid = task.cred.euid = task.cred.suid = task.cred.fsuid = uid;
    RecomputeCapsAfterSetuid(task.cred, old_euid);
    task.lsm_cache.Clear();
    if (TraceCredOn()) {
      EmitCredChange(task, "setuid",
                     StrFormat("uid %u->%u euid %u->%u", old_ruid, uid, old_euid, uid));
    }
    return OkUnit();
  }
  if (uid == task.cred.ruid || uid == task.cred.suid) {
    task.cred.euid = task.cred.fsuid = uid;
    RecomputeCapsAfterSetuid(task.cred, old_euid);
    task.lsm_cache.Clear();
    if (TraceCredOn()) {
      EmitCredChange(task, "setuid", StrFormat("euid %u->%u", old_euid, uid));
    }
    return OkUnit();
  }
  return Error(Errno::kEPERM, "setuid");
}

Result<Unit> Kernel::Seteuid(Task& task, Uid uid) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(-1);
  sargs.a[1] = uid;
  return gate_.Run<Unit>(
      task, Sysno::kSetreuid, sargs, [&] { return StrFormat("-1, %u", uid); },
      [&] { return SeteuidImpl(task, uid); });
}

Result<Unit> Kernel::SeteuidImpl(Task& task, Uid uid) {
  if (Capable(task, Capability::kSetuid) || uid == task.cred.ruid || uid == task.cred.suid) {
    Uid old_euid = task.cred.euid;
    task.cred.euid = task.cred.fsuid = uid;
    RecomputeCapsAfterSetuid(task.cred, old_euid);
    task.lsm_cache.Clear();
    if (TraceCredOn()) {
      EmitCredChange(task, "seteuid", StrFormat("euid %u->%u", old_euid, uid));
    }
    return OkUnit();
  }
  return Error(Errno::kEPERM, "seteuid");
}

Result<Unit> Kernel::Setgid(Task& task, Gid gid) {
  SyscallArgs sargs;
  sargs.a[0] = gid;
  return gate_.Run<Unit>(
      task, Sysno::kSetgid, sargs, [&] { return StrFormat("%u", gid); },
      [&] { return SetgidImpl(task, gid); });
}

Result<Unit> Kernel::SetgidImpl(Task& task, Gid gid) {
  SetuidRequest req;
  req.is_gid = true;
  req.target_gid = gid;
  SetuidDisposition disposition;
  HookVerdict verdict = lsm_.TaskFixSetuid(task, req, &disposition);
  if (verdict == HookVerdict::kDeny) {
    return Error(Errno::kEPERM, "setgid");
  }
  Gid old_rgid = task.cred.rgid;
  Gid old_egid = task.cred.egid;
  if (verdict == HookVerdict::kAllow) {
    if (disposition.defer_to_exec) {
      task.pending_setuid.active = true;
      task.pending_setuid.target_uid = task.cred.ruid;
      task.pending_setuid.has_gid = true;
      task.pending_setuid.target_gid = gid;
      if (TraceCredOn()) {
        EmitCredChange(task, "setgid_deferred",
                       StrFormat("target gid=%u (transition at exec)", gid));
      }
      return OkUnit();
    }
    task.cred.rgid = task.cred.egid = task.cred.sgid = task.cred.fsgid = gid;
    task.lsm_cache.Clear();
    if (TraceCredOn()) {
      EmitCredChange(task, "setgid",
                     StrFormat("gid %u->%u egid %u->%u", old_rgid, gid, old_egid, gid));
    }
    return OkUnit();
  }
  if (Capable(task, Capability::kSetgid)) {
    task.cred.rgid = task.cred.egid = task.cred.sgid = task.cred.fsgid = gid;
    task.lsm_cache.Clear();
    if (TraceCredOn()) {
      EmitCredChange(task, "setgid",
                     StrFormat("gid %u->%u egid %u->%u", old_rgid, gid, old_egid, gid));
    }
    return OkUnit();
  }
  if (gid == task.cred.rgid || gid == task.cred.sgid) {
    task.cred.egid = task.cred.fsgid = gid;
    task.lsm_cache.Clear();
    if (TraceCredOn()) {
      EmitCredChange(task, "setgid", StrFormat("egid %u->%u", old_egid, gid));
    }
    return OkUnit();
  }
  return Error(Errno::kEPERM, "setgid");
}

// --- Resource limits -------------------------------------------------------------

Result<RLimit> Kernel::GetRlimit(Task& task, int resource) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(static_cast<uint32_t>(resource));
  return gate_.Run<RLimit>(
      task, Sysno::kGetRlimit, sargs, [&] { return StrFormat("%d", resource); },
      [&] { return GetRlimitImpl(task, resource); });
}

Result<RLimit> Kernel::GetRlimitImpl(Task& task, int resource) {
  if (resource != kRlimitNofile) {
    return Error(Errno::kEINVAL, StrFormat("getrlimit: unsupported resource %d", resource));
  }
  return task.rlimit_nofile;
}

Result<Unit> Kernel::SetRlimit(Task& task, int resource, RLimit limit) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(static_cast<uint32_t>(resource));
  sargs.a[1] = limit.cur;
  sargs.a[2] = limit.max;
  return gate_.Run<Unit>(
      task, Sysno::kSetRlimit, sargs,
      [&] {
        return StrFormat("%d, {cur=%llu, max=%llu}", resource,
                         (unsigned long long)limit.cur, (unsigned long long)limit.max);
      },
      [&] { return SetRlimitImpl(task, resource, limit); });
}

Result<Unit> Kernel::SetRlimitImpl(Task& task, int resource, RLimit limit) {
  if (resource != kRlimitNofile) {
    return Error(Errno::kEINVAL, StrFormat("setrlimit: unsupported resource %d", resource));
  }
  if (limit.cur > limit.max) {
    return Error(Errno::kEINVAL, "setrlimit: soft limit above hard limit");
  }
  if (limit.max > task.rlimit_nofile.max && !Capable(task, Capability::kSysResource)) {
    return Error(Errno::kEPERM, "setrlimit: raising the hard limit needs CAP_SYS_RESOURCE");
  }
  task.rlimit_nofile = limit;
  return OkUnit();
}

Result<Unit> Kernel::CheckFdAvailable(Task& task) {
  if (faults_.any_enabled()) {
    RETURN_IF_ERROR(faults_.Check(FaultSite::kFdAlloc, "fd-table slot allocation"));
  }
  if (task.fds.size() >= task.rlimit_nofile.cur) {
    return Error(Errno::kEMFILE,
                 StrFormat("RLIMIT_NOFILE: %zu open, limit %llu", task.fds.size(),
                           (unsigned long long)task.rlimit_nofile.cur));
  }
  if (OpenFileCount() >= file_max()) {
    return Error(Errno::kENFILE,
                 StrFormat("file-max: %llu open system-wide, limit %llu",
                           (unsigned long long)OpenFileCount(),
                           (unsigned long long)file_max()));
  }
  return OkUnit();
}

uint64_t Kernel::OpenFileCount() const {
  return open_files_.load(std::memory_order_relaxed);
}

Result<Unit> Kernel::Setgroups(Task& task, std::vector<Gid> groups) {
  SyscallArgs sargs;
  sargs.a[0] = groups.size();
  return gate_.Run<Unit>(
      task, Sysno::kSetgroups, sargs,
      [&] { return StrFormat("%zu groups", groups.size()); },
      [&] { return SetgroupsImpl(task, std::move(groups)); });
}

Result<Unit> Kernel::SetgroupsImpl(Task& task, std::vector<Gid> groups) {
  if (!Capable(task, Capability::kSetgid)) {
    return Error(Errno::kEPERM, "setgroups");
  }
  task.cred.groups = std::move(groups);
  task.lsm_cache.Clear();
  if (TraceCredOn()) {
    EmitCredChange(task, "setgroups", StrFormat("%zu groups", task.cred.groups.size()));
  }
  return OkUnit();
}

// --- Seccomp ---------------------------------------------------------------------

Result<Unit> Kernel::SeccompSetFilter(Task& task, const std::vector<Sysno>& allowed) {
  // Gated under its own number: a filter that omits Sysno::kSeccomp makes
  // this very call fail with EPERM next time — the latch locks itself.
  SyscallArgs sargs;
  sargs.a[0] = allowed.size();
  return gate_.Run<Unit>(
      task, Sysno::kSeccomp, sargs,
      [&] { return StrFormat("%zu syscalls allowed", allowed.size()); },
      [&] { return SeccompSetFilterImpl(task, SeccompFilter::AllowList(allowed)); });
}

Result<Unit> Kernel::SeccompSetFilterSpec(Task& task, const SeccompFilter::Spec& spec) {
  SyscallArgs sargs;
  sargs.a[0] = spec.allowed.count();
  return gate_.Run<Unit>(
      task, Sysno::kSeccomp, sargs,
      [&] {
        return StrFormat("%zu syscalls allowed (predicate spec)", spec.allowed.count());
      },
      [&]() -> Result<Unit> {
        ASSIGN_OR_RETURN(SeccompFilter filter, SeccompFilter::FromSpec(spec));
        return SeccompSetFilterImpl(task, std::move(filter));
      });
}

Result<Unit> Kernel::SeccompSetFilterImpl(Task& task, SeccompFilter filter) {
  if (task.seccomp != nullptr) {
    // One-way latch: the new filter can only narrow the existing one.
    filter.IntersectWith(*task.seccomp);
  }
  task.seccomp = std::make_shared<const SeccompFilter>(std::move(filter));
  Audit(StrFormat("seccomp: pid=%d comm=%s filter installed (%zu syscalls allowed, %zu rules)",
                  task.pid, task.comm.c_str(), task.seccomp->allowed_count(),
                  task.seccomp->rule_count()));
  return OkUnit();
}

void Kernel::RegisterBinaryFilter(const std::string& path, SeccompFilter filter) {
  std::unique_lock<std::shared_mutex> lk(registry_mu_);
  binary_filters_[Vfs::Normalize(path)] =
      std::make_shared<const SeccompFilter>(std::move(filter));
}

void Kernel::ClearBinaryFilters() {
  std::unique_lock<std::shared_mutex> lk(registry_mu_);
  binary_filters_.clear();
}

// --- exec ------------------------------------------------------------------------

Result<int> Kernel::Spawn(Task& parent, const std::string& path, std::vector<std::string> argv,
                          std::map<std::string, std::string> env) {
  SyscallArgs sargs;
  sargs.path = &path;
  // The body moves argv; observation needs its own copy, taken only when a
  // recorder is actually attached (synthesis runs, not the hot path).
  std::vector<std::string> argv_copy;
  if (gate_.recorder_attached()) {
    argv_copy = argv;
    sargs.list = &argv_copy;
  }
  return gate_.Run<int>(
      parent, Sysno::kClone, sargs, [&]() -> std::string { return path; },
      [&] { return SpawnImpl(parent, path, std::move(argv), std::move(env)); });
}

Task& Kernel::ForkTask(Task& parent) {
  // fork(): child inherits credentials, cwd, terminal, fds, and the Protego
  // security metadata (auth recency, pending setuid-on-exec, seccomp filter).
  Task& child = CreateTask(parent.comm, parent.cred, parent.terminal, parent.pid);
  child.cwd = parent.cwd;
  child.exe_path = parent.exe_path;
  child.rlimit_nofile = parent.rlimit_nofile;
  child.ns = parent.ns;
  child.auth_times = parent.auth_times;
  child.pending_setuid = parent.pending_setuid;
  child.seccomp = parent.seccomp;
  for (const auto& [fd, entry] : parent.fds.entries()) {
    if (entry.kind == FdEntry::Kind::kSocket) {
      net_.RefSocket(entry.socket_id);
    }
    child.fds.Install(entry);
  }
  // The parent's pending transition is consumed by the child's exec, as when
  // sudo execs the target in-process; clear it on the parent.
  parent.pending_setuid = PendingSetuid{};
  return child;
}

Result<int> Kernel::SpawnImpl(Task& parent, const std::string& path, std::vector<std::string> argv,
                              std::map<std::string, std::string> env) {
  Task& child = ForkTask(parent);
  auto status = Execve(child, path, std::move(argv), std::move(env));
  // waitpid(): surface the child's output on the parent, then reap.
  parent.stdout_buf += child.stdout_buf;
  parent.stderr_buf += child.stderr_buf;
  int child_pid = child.pid;
  if (!status.ok()) {
    ReapTask(child_pid);
    return status.error();
  }
  int code = status.value();
  ReapTask(child_pid);
  return code;
}

Result<int> Kernel::SpawnAsync(Task& parent, const std::string& path,
                               std::vector<std::string> argv,
                               std::map<std::string, std::string> env) {
  SyscallArgs sargs;
  sargs.path = &path;
  std::vector<std::string> argv_copy;
  if (gate_.recorder_attached()) {
    argv_copy = argv;
    sargs.list = &argv_copy;
  }
  return gate_.Run<int>(
      parent, Sysno::kClone, sargs, [&] { return path + " [async]"; },
      [&] { return SpawnAsyncImpl(parent, path, std::move(argv), std::move(env)); });
}

Result<int> Kernel::SpawnAsyncImpl(Task& parent, const std::string& path,
                                   std::vector<std::string> argv,
                                   std::map<std::string, std::string> env) {
  TaskScheduler* sched = gate_.scheduler();
  if (sched == nullptr) {
    return Error(Errno::kENOSYS, "SpawnAsync requires an attached scheduler");
  }
  Task& child = ForkTask(parent);
  int child_pid = child.pid;
  // The child's execve becomes a schedulable unit: it runs on the
  // scheduler's thread for this pid and interleaves with every other unit
  // at syscall-entry yield points. The task stays in the process table as a
  // zombie (exit status parked in exit_records_) until the parent's WaitPid.
  sched->StartTask(child_pid, [this, child_pid, path, argv = std::move(argv),
                               env = std::move(env)]() mutable {
    Task* child_task = FindTask(child_pid);
    if (child_task == nullptr) {
      return;  // reaped before ever being scheduled
    }
    auto status = Execve(*child_task, path, std::move(argv), std::move(env));
    ExitRecord rec;
    if (status.ok()) {
      rec.status = status.value();
    } else {
      rec.err = status.code();
      rec.context = status.error().context();
    }
    {
      // exit_mu_ also publishes the child's stdout/stderr buffers to the
      // parent thread that finds this record in WaitPid.
      std::lock_guard<std::mutex> lk(exit_mu_);
      exit_records_[child_pid] = std::move(rec);
    }
    ReleaseFileLocks(child_pid);  // exit drops advisory locks even pre-reap
    TaskScheduler* s = gate_.scheduler();
    if (s != nullptr) {
      s->Signal(kWaitKeyChildExit | static_cast<uint32_t>(child_pid));
    }
  });
  return child_pid;
}

Result<int> Kernel::WaitPid(Task& parent, int pid) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(pid);
  return gate_.Run<int>(
      parent, Sysno::kWait4, sargs, [&] { return StrFormat("%d", pid); },
      [&] { return WaitPidImpl(parent, pid); });
}

Result<int> Kernel::WaitPidImpl(Task& parent, int pid) {
  while (true) {
    std::optional<ExitRecord> rec;
    {
      std::lock_guard<std::mutex> lk(exit_mu_);
      auto rec_it = exit_records_.find(pid);
      if (rec_it != exit_records_.end()) {
        rec = std::move(rec_it->second);
        exit_records_.erase(rec_it);
      }
    }
    if (rec.has_value()) {
      // waitpid(): surface the child's output on the parent, then reap.
      // Safe to touch the child's buffers: it has exited (the record only
      // exists post-exit) and exit_mu_ ordered its final writes before us.
      if (Task* child = FindTask(pid)) {
        parent.stdout_buf += child->stdout_buf;
        parent.stderr_buf += child->stderr_buf;
      }
      ReapTask(pid);
      if (rec->err != Errno::kOk) {
        return Error(rec->err, rec->context);
      }
      return rec->status;
    }
    if (FindTask(pid) == nullptr) {
      return Error(Errno::kECHILD, StrFormat("pid %d", pid));
    }
    TaskScheduler* sched = gate_.scheduler();
    if (sched == nullptr ||
        !sched->WaitOn(parent.pid, kWaitKeyChildExit | static_cast<uint32_t>(pid))) {
      // No scheduler, or blocking would leave no runnable unit: the child
      // can never exit.
      return Error(Errno::kEDEADLK, StrFormat("wait4 pid %d", pid));
    }
  }
}

Result<int> Kernel::Execve(Task& task, const std::string& path, std::vector<std::string> argv,
                           std::map<std::string, std::string> env) {
  SyscallArgs sargs;
  sargs.path = &path;
  std::vector<std::string> argv_copy;
  if (gate_.recorder_attached()) {
    argv_copy = argv;
    sargs.list = &argv_copy;
  }
  return gate_.Run<int>(
      task, Sysno::kExecve, sargs, [&]() -> std::string { return path; },
      [&] { return ExecveImpl(task, path, std::move(argv), std::move(env)); });
}

Result<int> Kernel::ExecveImpl(Task& task, const std::string& path, std::vector<std::string> argv,
                               std::map<std::string, std::string> env) {
  std::string full = JoinPath(task, path);
  ASSIGN_OR_RETURN(Vnode * node, vfs_.Resolve(full));
  const Inode& inode = node->inode();
  if (!inode.IsReg()) {
    return Error(Errno::kEACCES, full);
  }
  RETURN_IF_ERROR(CheckPermission(task, full, inode, kMayExec));
  BinaryEntry bin;
  {
    std::shared_lock<std::shared_mutex> lk(registry_mu_);
    auto bin_it = binaries_.find(full);
    if (bin_it == binaries_.end()) {
      return Error(Errno::kENOEXEC, full);
    }
    bin = bin_it->second;  // copy: the program main runs for a long time
  }

  // Provisional post-exec credentials: the setuid/setgid bits (the exact
  // mechanism this paper is about) are applied here.
  Cred new_cred = task.cred;
  if (inode.IsSetUid()) {
    new_cred.euid = inode.uid;
  }
  if (inode.IsSetGid()) {
    new_cred.egid = inode.gid;
  }
  new_cred.suid = new_cred.euid;
  new_cred.sgid = new_cred.egid;
  new_cred.fsuid = new_cred.euid;
  new_cred.fsgid = new_cred.egid;
  if (new_cred.euid == kRootUid) {
    new_cred.permitted = CapSet::All();
    new_cred.effective = CapSet::All();
  } else {
    new_cred.permitted = bin.file_caps;
    new_cred.effective = bin.file_caps;
  }

  ExecControl control;
  control.cred = &new_cred;
  control.env = &env;
  HookVerdict verdict = lsm_.BprmCheck(task, full, inode, argv, &control);
  if (verdict == HookVerdict::kDeny) {
    // Deferred setuid-on-exec failures surface here as EACCES (§4.3's
    // documented error-behaviour change).
    task.pending_setuid = PendingSetuid{};
    Audit(StrFormat("exec of %s denied by LSM for uid=%u", full.c_str(), task.cred.ruid));
    return Error(Errno::kEACCES, "exec " + full);
  }
  task.pending_setuid = PendingSetuid{};

  Uid old_exec_euid = task.cred.euid;
  Gid old_exec_egid = task.cred.egid;
  task.cred = new_cred;
  task.exe_path = full;
  // Per-binary synthesized filter: an AppArmor-style profile TRANSITION —
  // the registered filter replaces the inherited one (sudo's filter must not
  // strangle the target it execs). Self-installs via SeccompSetFilter keep
  // the one-way intersection latch.
  {
    std::shared_lock<std::shared_mutex> lk(registry_mu_);
    if (!binary_filters_.empty()) {
      auto fit = binary_filters_.find(full);
      if (fit != binary_filters_.end()) {
        task.seccomp = fit->second;
      }
    }
  }
  if (TraceCredOn()) {
    EmitCredChange(task, "execve",
                   StrFormat("%s euid %u->%u egid %u->%u", full.c_str(), old_exec_euid,
                             new_cred.euid, old_exec_egid, new_cred.egid));
  }
  // Cached verdict signatures embed the old creds and exe_path.
  task.lsm_cache.Clear();
  size_t slash = full.find_last_of('/');
  task.comm = full.substr(slash + 1);
  // Dropped descriptors must release their network endpoints (ports) too.
  for (const auto& [fd, fd_entry] : task.fds.entries()) {
    if (fd_entry.kind == FdEntry::Kind::kSocket &&
        (fd_entry.cloexec || control.close_non_std_fds)) {
      net_.DestroySocket(fd_entry.socket_id);
    }
  }
  task.fds.CloseOnExec();
  if (control.close_non_std_fds) {
    task.fds.CloseAll();
  }

  ProcessContext ctx{*this, task, std::move(argv), std::move(env)};
  return bin.main(ctx);
}

// --- Network -----------------------------------------------------------------------

Result<int> Kernel::SocketCall(Task& task, int family, int type, int protocol) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(static_cast<uint32_t>(family));
  sargs.a[1] = static_cast<uint64_t>(static_cast<uint32_t>(type));
  sargs.a[2] = static_cast<uint64_t>(static_cast<uint32_t>(protocol));
  return gate_.Run<int>(
      task, Sysno::kSocket, sargs,
      [&] { return StrFormat("%d, %d, %d", family, type, protocol); },
      [&] { return SocketCallImpl(task, family, type, protocol); });
}

Result<int> Kernel::SocketCallImpl(Task& task, int family, int type, int protocol) {
  // Socket creation consumes an fd slot; same exhaustion contract as open.
  RETURN_IF_ERROR(CheckFdAvailable(task));
  SocketRequest req{family, type, protocol};
  HookVerdict verdict = lsm_.SocketCreate(task, req);
  if (verdict == HookVerdict::kDeny) {
    return Error(Errno::kEACCES, "socket");
  }
  bool raw = (type == kSockRaw || family == kAfPacket);
  if (raw && verdict == HookVerdict::kDefault && !Capable(task, Capability::kNetRaw)) {
    // Inside a sandbox created via a user namespace the task holds
    // CAP_NET_RAW over ITS OWN fake network (§6) — but only there.
    if (task.ns.net_ns == 0 || task.ns.user_ns == 0) {
      return Error(Errno::kEPERM, "raw socket requires CAP_NET_RAW");
    }
  }
  Socket& sock =
      net_.CreateSocket(family, type, protocol, task.cred.euid, task.exe_path, task.ns.net_ns);
  FdEntry entry;
  entry.kind = FdEntry::Kind::kSocket;
  entry.socket_id = sock.id;
  return task.fds.Install(std::move(entry));
}

Result<Unit> Kernel::BindCall(Task& task, int fd, uint16_t port) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  sargs.a[1] = port;
  return gate_.Run<Unit>(
      task, Sysno::kBind, sargs, [&] { return StrFormat("%d, port=%u", fd, port); },
      [&] { return BindCallImpl(task, fd, port); });
}

Result<Unit> Kernel::BindCallImpl(Task& task, int fd, uint16_t port) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr || entry->kind != FdEntry::Kind::kSocket) {
    return Error(Errno::kEBADF);
  }
  Socket* sock = net_.FindSocket(entry->socket_id);
  if (sock == nullptr) {
    return Error(Errno::kEBADF);
  }
  BindRequest req{port, task.exe_path, task.ns.net_ns};
  HookVerdict verdict = lsm_.SocketBind(task, req);
  if (verdict == HookVerdict::kDeny) {
    Audit(StrFormat("bind(%u) denied by LSM for %s uid=%u", port, task.exe_path.c_str(),
                       task.cred.euid));
    return Error(Errno::kEACCES, "bind");
  }
  if (port < 1024 && verdict == HookVerdict::kDefault &&
      !Capable(task, Capability::kNetBindService)) {
    // Low ports inside a user-namespace sandbox are the sandbox's own.
    if (task.ns.net_ns == 0 || task.ns.user_ns == 0) {
      return Error(Errno::kEACCES, "privileged port requires CAP_NET_BIND_SERVICE");
    }
  }
  return net_.Bind(*sock, port);
}

Result<Unit> Kernel::ListenCall(Task& task, int fd) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  return gate_.Run<Unit>(
      task, Sysno::kListen, sargs, [&] { return StrFormat("%d", fd); },
      [&] { return ListenCallImpl(task, fd); });
}

Result<Unit> Kernel::ListenCallImpl(Task& task, int fd) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr || entry->kind != FdEntry::Kind::kSocket) {
    return Error(Errno::kEBADF);
  }
  Socket* sock = net_.FindSocket(entry->socket_id);
  if (sock == nullptr) {
    return Error(Errno::kEBADF);
  }
  return net_.Listen(*sock);
}

Result<Unit> Kernel::ConnectCall(Task& task, int fd, Ipv4 ip, uint16_t port) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  sargs.a[1] = port;
  sargs.a[2] = ip;
  return gate_.Run<Unit>(
      task, Sysno::kConnect, sargs, [&] { return StrFormat("%d, port=%u", fd, port); },
      [&] { return ConnectCallImpl(task, fd, ip, port); });
}

Result<Unit> Kernel::ConnectCallImpl(Task& task, int fd, Ipv4 ip, uint16_t port) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr || entry->kind != FdEntry::Kind::kSocket) {
    return Error(Errno::kEBADF);
  }
  Socket* sock = net_.FindSocket(entry->socket_id);
  if (sock == nullptr) {
    return Error(Errno::kEBADF);
  }
  return net_.Connect(*sock, ip, port);
}

Result<Unit> Kernel::SendCall(Task& task, int fd, Packet packet) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  return gate_.Run<Unit>(
      task, Sysno::kSendTo, sargs, [&] { return StrFormat("%d", fd); },
      [&] { return SendCallImpl(task, fd, std::move(packet)); });
}

Result<Unit> Kernel::SendCallImpl(Task& task, int fd, Packet packet) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr || entry->kind != FdEntry::Kind::kSocket) {
    return Error(Errno::kEBADF);
  }
  Socket* sock = net_.FindSocket(entry->socket_id);
  if (sock == nullptr) {
    return Error(Errno::kEBADF);
  }
  return net_.Send(*sock, std::move(packet));
}

Result<std::optional<Packet>> Kernel::RecvCall(Task& task, int fd) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  return gate_.Run<std::optional<Packet>>(
      task, Sysno::kRecvFrom, sargs, [&] { return StrFormat("%d", fd); },
      [&] { return RecvCallImpl(task, fd); });
}

Result<std::optional<Packet>> Kernel::RecvCallImpl(Task& task, int fd) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr || entry->kind != FdEntry::Kind::kSocket) {
    return Error(Errno::kEBADF);
  }
  Socket* sock = net_.FindSocket(entry->socket_id);
  if (sock == nullptr) {
    return Error(Errno::kEBADF);
  }
  return net_.Receive(*sock);
}

// --- ioctl --------------------------------------------------------------------------

void Kernel::RegisterIoctlHandler(uint32_t major, uint32_t minor, IoctlHandler handler) {
  std::unique_lock<std::shared_mutex> lk(registry_mu_);
  ioctl_handlers_[(static_cast<uint64_t>(major) << 32) | minor] = std::move(handler);
}

Result<std::string> Kernel::Ioctl(Task& task, int fd, uint32_t request, const std::string& arg) {
  SyscallArgs sargs;
  sargs.a[0] = static_cast<uint64_t>(fd);
  sargs.a[1] = request;
  sargs.str1 = &arg;
  return gate_.Run<std::string>(
      task, Sysno::kIoctl, sargs,
      [&] { return StrFormat("%d, %s", fd, IoctlName(request)); },
      [&] { return IoctlImpl(task, fd, request, arg); });
}

Result<std::string> Kernel::IoctlImpl(Task& task, int fd, uint32_t request,
                                      const std::string& arg) {
  FdEntry* entry = task.fds.Get(fd);
  if (entry == nullptr) {
    return Error(Errno::kEBADF);
  }

  if (entry->kind == FdEntry::Kind::kSocket) {
    IoctlRequest ireq{"socket", request, arg};
    HookVerdict verdict = lsm_.FileIoctl(task, ireq);
    if (verdict == HookVerdict::kDeny) {
      return Error(Errno::kEPERM, "ioctl");
    }
    switch (request) {
      case kSiocAddRt: {
        if (verdict == HookVerdict::kDefault && !Capable(task, Capability::kNetAdmin)) {
          return Error(Errno::kEPERM, "SIOCADDRT requires CAP_NET_ADMIN");
        }
        ASSIGN_OR_RETURN(RouteEntry route, ParseRouteSpec(arg));
        route.added_by = task.cred.ruid;
        RETURN_IF_ERROR(net_.routes().Add(route));
        return std::string("route added");
      }
      case kSiocDelRt: {
        if (verdict == HookVerdict::kDefault && !Capable(task, Capability::kNetAdmin)) {
          return Error(Errno::kEPERM, "SIOCDELRT requires CAP_NET_ADMIN");
        }
        auto fields = SplitWhitespace(arg);
        if (fields.empty()) {
          return Error(Errno::kEINVAL, "route spec: " + arg);
        }
        ASSIGN_OR_RETURN(auto dst, ParseDstSpec(fields[0]));
        RETURN_IF_ERROR(net_.routes().Remove(dst.first, dst.second));
        return std::string("route removed");
      }
      case kSiocNfAppend: {
        // The iptables control path (the paper's 175-line extension).
        if (verdict == HookVerdict::kDefault && !Capable(task, Capability::kNetAdmin)) {
          return Error(Errno::kEPERM, "netfilter changes require CAP_NET_ADMIN");
        }
        ASSIGN_OR_RETURN(NfRule rule, ParseNfRule(arg));
        net_.netfilter().Append(std::move(rule));
        Audit(StrFormat("iptables: uid=%u appended rule: %s", task.cred.ruid, arg.c_str()));
        return std::string("rule appended");
      }
      case kSiocNfDelete: {
        if (verdict == HookVerdict::kDefault && !Capable(task, Capability::kNetAdmin)) {
          return Error(Errno::kEPERM, "netfilter changes require CAP_NET_ADMIN");
        }
        int removed = net_.netfilter().DeleteByComment(arg);
        if (removed == 0) {
          return Error(Errno::kESRCH, "no rules tagged: " + arg);
        }
        Audit(StrFormat("iptables: uid=%u deleted %d rule(s) tagged %s", task.cred.ruid,
                        removed, arg.c_str()));
        return StrFormat("%d rule(s) deleted", removed);
      }
      case kSiocNfList: {
        if (verdict == HookVerdict::kDefault && !Capable(task, Capability::kNetAdmin)) {
          return Error(Errno::kEPERM, "netfilter listing requires CAP_NET_ADMIN");
        }
        return net_.netfilter().ListRules();
      }
      default:
        return Error(Errno::kENOTTY);
    }
  }

  // Device ioctl: dispatch by device number.
  const Inode& inode = entry->file->node->inode();
  if (!inode.IsDevice()) {
    return Error(Errno::kENOTTY);
  }
  IoctlRequest ireq{vfs_.PathOf(entry->file->node), request, arg};
  HookVerdict verdict = lsm_.FileIoctl(task, ireq);
  if (verdict == HookVerdict::kDeny) {
    return Error(Errno::kEPERM, "ioctl " + ireq.target);
  }
  IoctlHandler handler;
  {
    std::shared_lock<std::shared_mutex> lk(registry_mu_);
    auto it = ioctl_handlers_.find((static_cast<uint64_t>(inode.rdev_major) << 32) |
                                   inode.rdev_minor);
    if (it == ioctl_handlers_.end()) {
      return Error(Errno::kENOTTY, ireq.target);
    }
    handler = it->second;  // copy: handlers nest syscalls (pppd's ioctls do)
  }
  return handler(task, request, arg, verdict);
}

}  // namespace protego
