#include "src/kernel/cred.h"

#include "src/base/strings.h"

namespace protego {

std::string Cred::ToString() const {
  std::string out = StrFormat("uid=%u euid=%u suid=%u gid=%u egid=%u", ruid, euid, suid, rgid,
                              egid);
  if (!groups.empty()) {
    out += " groups=";
    for (size_t i = 0; i < groups.size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      out += StrFormat("%u", groups[i]);
    }
  }
  out += " caps=" + effective.ToString();
  return out;
}

}  // namespace protego
