// Execution modes for the simulated kernel.
//
// The kernel's shared state is locked for real concurrency either way; the
// mode selects how tasks are DRIVEN:
//   * kDeterministic — tasks advance one at a time under a cooperative
//     scheduler (src/conc/scheduler.h) that picks the next runnable task at
//     every syscall-entry yield point from a seeded PRNG. Fully
//     reproducible; the interleaving explorer and race corpus run here.
//   * kParallel — tasks run on real OS threads (src/conc/thread_sched.h)
//     and enter the kernel concurrently; throughput scales with cores. The
//     race corpus and fault sweep re-run in this mode under TSan to prove
//     the sharded/RCU state safe, but interleavings are no longer
//     reproducible.
//
// Harnesses that support both read PROTEGO_EXEC_MODE at startup.

#ifndef SRC_KERNEL_EXEC_MODE_H_
#define SRC_KERNEL_EXEC_MODE_H_

namespace protego {

enum class ExecMode {
  kDeterministic,
  kParallel,
};

const char* ExecModeName(ExecMode mode);

// PROTEGO_EXEC_MODE=parallel selects kParallel; "deterministic", unset, or
// empty selects kDeterministic (the reproducible default). Any other value
// is a fatal error (stderr + abort): a typo must not silently select the
// wrong driver.
ExecMode ExecModeFromEnv();

}  // namespace protego

#endif  // SRC_KERNEL_EXEC_MODE_H_
