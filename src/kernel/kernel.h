// The simulated kernel: syscall surface, process table, binary registry,
// execve with real setuid-bit semantics, and the integration of DAC,
// capability checks, and the LSM stack at each decision point.
//
// Policy layering mirrors Linux: each syscall consults the LSM stack first;
// a kDeny refuses, a kAllow grants past the legacy capability check (the
// Protego kernel change), and kDefault falls back to the hard-coded
// capability test that stock Linux 3.6 applies.

#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/attribution.h"
#include "src/base/clock.h"
#include "src/base/metrics.h"
#include "src/base/result.h"
#include "src/base/tracepoint.h"
#include "src/fault/fault.h"
#include "src/kernel/audit_ring.h"
#include "src/kernel/syscall.h"
#include "src/kernel/task.h"
#include "src/lsm/stack.h"
#include "src/net/ioctl_codes.h"
#include "src/net/network.h"
#include "src/vfs/vfs.h"

namespace protego {

class Kernel;

// flock(2) operation bits (Linux values).
inline constexpr int kLockSh = 1;  // shared lock
inline constexpr int kLockEx = 2;  // exclusive lock
inline constexpr int kLockNb = 4;  // don't block; fail with EAGAIN
inline constexpr int kLockUn = 8;  // release

// Execution context handed to a simulated userspace program.
struct ProcessContext {
  Kernel& kernel;
  Task& task;
  std::vector<std::string> argv;
  std::map<std::string, std::string> env;

  // Writes to the program's stdout/stderr (mirrored to the terminal).
  void Out(std::string_view text);
  void Err(std::string_view text);
  // Reads a line from the controlling terminal (password prompts).
  std::optional<std::string> ReadLine();
  // First argv value for a "--flag=value" style option, if present.
  std::optional<std::string> Flag(std::string_view name) const;
  bool HasFlag(std::string_view name) const;
};

// Entry point of a simulated userspace binary.
using ProgramMain = std::function<int(ProcessContext&)>;

// stat(2) result.
struct KernelStat {
  uint64_t ino = 0;
  uint32_t mode = 0;
  Uid uid = 0;
  Gid gid = 0;
  size_t size = 0;
  uint64_t mtime = 0;
  uint32_t rdev_major = 0;
  uint32_t rdev_minor = 0;
};

// Per-device ioctl handler (e.g. /dev/ppp, /dev/mapper/control). Receives
// the combined LSM verdict so drivers can honor policy-granted access.
using IoctlHandler =
    std::function<Result<std::string>(Task&, uint32_t request, const std::string& arg,
                                      HookVerdict lsm_verdict)>;

// Produces the content populator for mounting `source` with some fstype.
using FsTypeFactory = std::function<Result<MountPopulator>(const std::string& source)>;

// Trusted user-session authenticator, installed by the authentication
// service. Asks the human (via the task's terminal) for a password and
// verifies it against any of the candidate accounts (e.g. the invoker for
// a sudo-style rule OR the target for a su-style rule); returns the account
// that authenticated and stamps task.auth_times.
using AuthAgent =
    std::function<std::optional<Uid>(Task& task, const std::vector<Uid>& accounts)>;

// Observer of authentication attempts (candidate accounts and outcome),
// used by the policy synthesizer to correlate password prompts with the
// credential transitions that follow them. Called after every agent round
// trip, success or failure.
using AuthObserver = std::function<void(int pid, const std::vector<Uid>& accounts,
                                        std::optional<Uid> authenticated)>;

class Kernel {
 public:
  Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Clock& clock() { return clock_; }
  Vfs& vfs() { return vfs_; }
  LsmStack& lsm() { return lsm_; }
  Network& net() { return net_; }

  // The unified syscall entry path every public syscall below routes
  // through (seccomp filtering, counters, latency, trace ring).
  SyscallGate& syscalls() { return gate_; }
  const SyscallGate& syscalls() const { return gate_; }

  // Attaches/detaches the deterministic scheduler (forwarded to the gate,
  // which owns the per-syscall yield point). Detach before destroying the
  // scheduler.
  void set_scheduler(TaskScheduler* scheduler) { gate_.set_scheduler(scheduler); }
  TaskScheduler* scheduler() { return gate_.scheduler(); }

  // The kernel-wide tracepoint ring (decision spans; /proc/protego/trace)
  // shared by the gate, the LSM stack, the VFS, and netfilter.
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // The per-layer latency profiler (/proc/protego/profile). Disabled by
  // default; enabling it attributes self time to gate/seccomp/dac/lsm/...
  // frames on every syscall.
  LayerProfiler& profiler() { return profiler_; }
  const LayerProfiler& profiler() const { return profiler_; }

  // The metrics registry exported at /proc/protego/metrics. The kernel
  // registers a collector for its own subsystems at construction; trusted
  // services (e.g. the Protego LSM's proc plumbing) may add more.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // The deterministic fault-injection registry, threaded through the gate,
  // VFS, LSM stack, and netfilter (configured at /proc/protego/fault_inject).
  FaultRegistry& faults() { return faults_; }
  const FaultRegistry& faults() const { return faults_; }

  // --- Processes -------------------------------------------------------------

  Task& CreateTask(std::string comm, Cred cred, Terminal* terminal, int ppid = 0);

  // getpid(2) analog: the cheapest possible syscall, used to measure bare
  // syscall-entry cost in the Table 5 reproduction. Returns -1 if the
  // task's seccomp filter denies it.
  int GetPid(const Task& task) const { return gate_.RunGetPid(task); }
  Task* FindTask(int pid);
  void ReapTask(int pid);

  // --- Binaries --------------------------------------------------------------

  // Installs a program: creates its VFS inode (mode decides the setuid bit)
  // and registers the entry point.
  Result<Unit> InstallBinary(const std::string& path, uint32_t mode, Uid uid, Gid gid,
                             ProgramMain main);
  // setcap analog: file capabilities granted at exec when not setuid-root.
  void SetFileCaps(const std::string& path, CapSet caps);
  bool HasBinary(const std::string& path) const;

  // fork + execve + waitpid in one step: runs `path` as a child of `parent`
  // and returns its exit status. This is how all simulated programs launch
  // other programs.
  Result<int> Spawn(Task& parent, const std::string& path, std::vector<std::string> argv,
                    std::map<std::string, std::string> env);

  // fork + execve without the wait: the child's exec runs as a schedulable
  // unit of the attached TaskScheduler (set_scheduler), interleaving with
  // other tasks at syscall-entry yield points. Returns the child pid
  // immediately; collect it with WaitPid. ENOSYS without a scheduler.
  Result<int> SpawnAsync(Task& parent, const std::string& path,
                         std::vector<std::string> argv,
                         std::map<std::string, std::string> env);

  // wait4(2) analog for SpawnAsync children: blocks (via the scheduler)
  // until `pid` exits, merges its captured output into `parent`, reaps it,
  // and returns its exit status. ECHILD if `pid` is not an un-reaped child;
  // EDEADLK if blocking could never be satisfied.
  Result<int> WaitPid(Task& parent, int pid);

  // execve(2) semantics applied to `task` itself (setuid bit, capability
  // recomputation, bprm LSM hook, close-on-exec), then runs the new image
  // to completion and returns its exit status.
  Result<int> Execve(Task& task, const std::string& path, std::vector<std::string> argv,
                     std::map<std::string, std::string> env);

  // --- Files -----------------------------------------------------------------

  Result<int> Open(Task& task, const std::string& path, int flags, uint32_t mode = 0644);
  Result<Unit> Close(Task& task, int fd);
  Result<std::string> Read(Task& task, int fd);
  Result<Unit> Write(Task& task, int fd, std::string_view data);
  Result<KernelStat> Stat(Task& task, const std::string& path);
  Result<Unit> Chmod(Task& task, const std::string& path, uint32_t mode);
  Result<Unit> Chown(Task& task, const std::string& path, Uid uid, Gid gid);
  Result<Unit> Mkdir(Task& task, const std::string& path, uint32_t mode);
  Result<Unit> Unlink(Task& task, const std::string& path);
  Result<Unit> Rename(Task& task, const std::string& from, const std::string& to);
  Result<std::vector<std::string>> ReadDir(Task& task, const std::string& path);
  Result<Unit> Access(Task& task, const std::string& path, int may);

  // symlink(2): creates `linkpath` pointing at `target` (which need not
  // exist). Needs write permission on linkpath's parent directory.
  Result<Unit> Symlink(Task& task, const std::string& target, const std::string& linkpath);

  // flock(2): advisory inode-level lock on an open fd. op is kLockSh /
  // kLockEx / kLockUn, optionally | kLockNb. Conflicting requests block via
  // the attached scheduler (EAGAIN with kLockNb, EDEADLK when blocking can
  // never succeed). Locks are tracked per (task, inode) and released on
  // kLockUn or task reap.
  Result<Unit> Flock(Task& task, int fd, int op);

  // Whole-file conveniences used heavily by utilities (open+read+close).
  Result<std::string> ReadWholeFile(Task& task, const std::string& path);
  Result<Unit> WriteWholeFile(Task& task, const std::string& path, std::string_view data,
                              bool append = false, uint32_t create_mode = 0644);

  // --- Mounts ----------------------------------------------------------------

  Result<Unit> Mount(Task& task, const std::string& source, const std::string& target,
                     const std::string& fstype, std::vector<std::string> options);
  Result<Unit> Umount(Task& task, const std::string& target);
  void RegisterFsType(const std::string& fstype, FsTypeFactory factory);

  // --- Credentials -----------------------------------------------------------

  // --- Namespaces (§4.6: unprivileged sandboxing since Linux 3.8) -----------

  // unshare(2) flags (Linux values).
  static constexpr int kCloneNewUser = 0x10000000;
  static constexpr int kCloneNewNet = 0x40000000;

  // Creates fresh namespaces for `task`. Pre-3.8 semantics (see
  // set_unprivileged_userns_enabled) require CAP_SYS_ADMIN for everything;
  // 3.8+ lets any user create a user namespace, and a network namespace
  // when combined with (or already inside) one.
  Result<Unit> Unshare(Task& task, int flags);

  // Models the kernel version: false = pre-3.8 (sandboxing utilities must
  // be setuid root), true (default) = 3.8+.
  void set_unprivileged_userns_enabled(bool enabled) {
    unprivileged_userns_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool unprivileged_userns_enabled() const {
    return unprivileged_userns_enabled_.load(std::memory_order_relaxed);
  }

  Result<Unit> Setuid(Task& task, Uid uid);
  Result<Unit> Seteuid(Task& task, Uid uid);
  Result<Unit> Setgid(Task& task, Gid gid);
  Result<Unit> Setgroups(Task& task, std::vector<Gid> groups);

  // --- Resource limits -------------------------------------------------------

  // The only modeled resource (RLIMIT_NOFILE's Linux value).
  static constexpr int kRlimitNofile = 7;

  // getrlimit(2)/setrlimit(2) analogs. Only kRlimitNofile is supported
  // (EINVAL otherwise). setrlimit enforces cur <= max and requires
  // CAP_SYS_RESOURCE to raise the hard limit (EPERM).
  Result<RLimit> GetRlimit(Task& task, int resource);
  Result<Unit> SetRlimit(Task& task, int resource, RLimit limit);

  // System-wide open-file ceiling (/proc/sys/fs/file-max analog): when the
  // sum of all tasks' fd-table sizes reaches it, fd allocation fails with
  // ENFILE.
  void set_file_max(uint64_t file_max) {
    file_max_.store(file_max, std::memory_order_relaxed);
  }
  uint64_t file_max() const { return file_max_.load(std::memory_order_relaxed); }
  // Open file descriptions across every task (the ENFILE numerator). A
  // counter maintained by every FdTable, not a walk over the task table —
  // O(1) and safe while other task threads mutate their own tables.
  uint64_t OpenFileCount() const;

  // --- Seccomp ---------------------------------------------------------------

  // seccomp(2)-style allow-list install, honored at syscall entry (before
  // DAC and the LSM stack). Installing over an existing filter intersects
  // with it — the prctl-style one-way latch: access only ever shrinks, and
  // a filter that omits Sysno::kSeccomp locks itself permanently. Filters
  // are inherited across Spawn and kept across Execve.
  Result<Unit> SeccompSetFilter(Task& task, const std::vector<Sysno>& allowed);

  // Argument-aware variant: installs a predicate filter built from `spec`
  // (per-syscall OR-of-AND rule lists + path-class prefix table). Same
  // one-way latch: intersects with any existing filter.
  Result<Unit> SeccompSetFilterSpec(Task& task, const SeccompFilter::Spec& spec);

  // Registers a synthesized per-binary filter, attached at execve of `path`
  // as a profile TRANSITION (replaces the inherited filter, AppArmor-style —
  // the latch applies to self-installs, not registry attachment).
  void RegisterBinaryFilter(const std::string& path, SeccompFilter filter);
  void ClearBinaryFilters();

  // --- Network ---------------------------------------------------------------

  Result<int> SocketCall(Task& task, int family, int type, int protocol);
  Result<Unit> BindCall(Task& task, int fd, uint16_t port);
  Result<Unit> ListenCall(Task& task, int fd);
  Result<Unit> ConnectCall(Task& task, int fd, Ipv4 ip, uint16_t port);
  Result<Unit> SendCall(Task& task, int fd, Packet packet);
  Result<std::optional<Packet>> RecvCall(Task& task, int fd);

  // --- ioctl -----------------------------------------------------------------

  Result<std::string> Ioctl(Task& task, int fd, uint32_t request, const std::string& arg);
  void RegisterIoctlHandler(uint32_t major, uint32_t minor, IoctlHandler handler);

  // --- Capability and authentication services ---------------------------------

  // security_capable() over the LSM stack.
  bool Capable(const Task& task, Capability cap) const;

  // Invokes the installed trusted authentication agent for `account`.
  bool Authenticate(Task& task, Uid account);

  // Multi-candidate variant: one password prompt, verified against every
  // candidate; returns the account that matched.
  std::optional<Uid> AuthenticateAny(Task& task, const std::vector<Uid>& accounts);
  void SetAuthAgent(AuthAgent agent) { auth_agent_ = std::move(agent); }
  void SetAuthObserver(AuthObserver observer) { auth_observer_ = std::move(observer); }

  // Visits every live task (all shards, under their locks). `fn` must not
  // call back into the kernel.
  void ForEachTask(const std::function<void(const Task&)>& fn) const;

  // Appends a security-audit record to the kernel's ring buffer (also
  // forwarded to the process logger). Exposed at /proc/protego/audit.
  void Audit(std::string message);
  // Snapshot of the retained audit records, oldest first.
  std::vector<std::string> audit_log() const { return audit_ring_.Snapshot(); }
  // Records lost to the bounded ring since boot.
  uint64_t audit_dropped() const { return audit_ring_.dropped(); }

  // Resolves a possibly-relative path against the task's cwd.
  static std::string JoinPath(const Task& task, const std::string& path);

  // DAC + LSM inode permission check used by every file syscall; public so
  // trusted services can probe policy.
  Result<Unit> CheckPermission(Task& task, const std::string& path, const Inode& inode, int may);

 private:
  struct BinaryEntry {
    ProgramMain main;
    CapSet file_caps;
  };

  // Applies Linux's capability recomputation when uids change via setuid().
  static void RecomputeCapsAfterSetuid(Cred& cred, Uid old_euid);

  // CheckPermission body; the public wrapper adds the kVfsPermission event.
  Result<Unit> CheckPermissionImpl(Task& task, const std::string& path, const Inode& inode,
                                   int may);

  // Emits a kCredChange event (callers gate on the tracepoint being on, so
  // the detail string is only built when traced).
  void EmitCredChange(const Task& task, const char* what, std::string detail);
  bool TraceCredOn() const { return tracer_.ShouldEmit(TracepointId::kCredChange); }

  // Registers the kernel-side metrics collector (gate, LSM, VFS, netfilter,
  // audit, tracer) on metrics_.
  void CollectKernelMetrics(MetricsBuilder& b) const;

  // Syscall bodies (DAC + LSM + work). The public methods above are thin
  // wrappers routing these through gate_.
  Result<int> SpawnImpl(Task& parent, const std::string& path, std::vector<std::string> argv,
                        std::map<std::string, std::string> env);
  Result<int> SpawnAsyncImpl(Task& parent, const std::string& path,
                             std::vector<std::string> argv,
                             std::map<std::string, std::string> env);
  Result<int> WaitPidImpl(Task& parent, int pid);
  // fork() half shared by Spawn and SpawnAsync: duplicates `parent` into a
  // fresh child task (credentials, cwd, fds, Protego metadata).
  Task& ForkTask(Task& parent);
  Result<Unit> SymlinkImpl(Task& task, const std::string& target, const std::string& linkpath);
  Result<Unit> FlockImpl(Task& task, int fd, int op);
  // Drops every advisory lock held by `pid` and wakes its waiters (process
  // exit semantics, called from ReapTask).
  void ReleaseFileLocks(int pid);
  void EmitFileLockEvent(const Task& task, const char* op, const std::string& path,
                         uint64_t ino, const char* outcome);
  Result<int> ExecveImpl(Task& task, const std::string& path, std::vector<std::string> argv,
                         std::map<std::string, std::string> env);
  Result<int> OpenImpl(Task& task, const std::string& path, int flags, uint32_t mode);
  Result<Unit> CloseImpl(Task& task, int fd);
  Result<std::string> ReadImpl(Task& task, int fd);
  Result<Unit> WriteImpl(Task& task, int fd, std::string_view data);
  Result<KernelStat> StatImpl(Task& task, const std::string& path);
  Result<Unit> ChmodImpl(Task& task, const std::string& path, uint32_t mode);
  Result<Unit> ChownImpl(Task& task, const std::string& path, Uid uid, Gid gid);
  Result<Unit> MkdirImpl(Task& task, const std::string& path, uint32_t mode);
  Result<Unit> UnlinkImpl(Task& task, const std::string& path);
  Result<Unit> RenameImpl(Task& task, const std::string& from, const std::string& to);
  Result<std::vector<std::string>> ReadDirImpl(Task& task, const std::string& path);
  Result<Unit> AccessImpl(Task& task, const std::string& path, int may);
  Result<Unit> MountImpl(Task& task, const std::string& source, const std::string& target,
                         const std::string& fstype, std::vector<std::string> options);
  Result<Unit> UmountImpl(Task& task, const std::string& target);
  Result<Unit> UnshareImpl(Task& task, int flags);
  Result<Unit> SetuidImpl(Task& task, Uid uid);
  Result<Unit> SeteuidImpl(Task& task, Uid uid);
  Result<Unit> SetgidImpl(Task& task, Gid gid);
  Result<Unit> SetgroupsImpl(Task& task, std::vector<Gid> groups);
  Result<RLimit> GetRlimitImpl(Task& task, int resource);
  Result<Unit> SetRlimitImpl(Task& task, int resource, RLimit limit);
  // The fd-allocation choke point: RLIMIT_NOFILE (EMFILE), the system-wide
  // file-max (ENFILE), and the fd_alloc fault site, checked before a new fd
  // is installed in `task`'s table.
  Result<Unit> CheckFdAvailable(Task& task);
  Result<Unit> SeccompSetFilterImpl(Task& task, SeccompFilter filter);
  Result<int> SocketCallImpl(Task& task, int family, int type, int protocol);
  Result<Unit> BindCallImpl(Task& task, int fd, uint16_t port);
  Result<Unit> ListenCallImpl(Task& task, int fd);
  Result<Unit> ConnectCallImpl(Task& task, int fd, Ipv4 ip, uint16_t port);
  Result<Unit> SendCallImpl(Task& task, int fd, Packet packet);
  Result<std::optional<Packet>> RecvCallImpl(Task& task, int fd);
  Result<std::string> IoctlImpl(Task& task, int fd, uint32_t request, const std::string& arg);

  // A child launched with SpawnAsync that has exited but not been reaped
  // (zombie-style): its status parks here until the parent's WaitPid.
  struct ExitRecord {
    Errno err = Errno::kOk;  // kOk -> `status` is the exit code
    int status = 0;
    std::string context;  // error context when err != kOk
  };

  // Advisory flock state for one inode: one exclusive holder XOR any number
  // of shared holders (pids). Linux tracks flock by open file description;
  // the simulation's (pid, inode) granularity is equivalent for programs
  // that open-lock-write-unlock-close, which is all the corpus does.
  struct FileLockState {
    int exclusive = 0;      // holder pid, 0 = none
    std::set<int> shared;   // shared holder pids
  };

  // One shard of the process table. Sharding by pid % kTaskShards keeps
  // task creation/lookup/reap on different pids contention-free when task
  // threads enter the kernel concurrently (ExecMode::kParallel); a task's
  // OWN fields (creds, fd table, cwd) are still single-writer — only the
  // owning task thread mutates them, which is the Linux model.
  static constexpr size_t kTaskShards = 16;
  struct TaskShard {
    mutable std::mutex mu;
    std::map<int, std::unique_ptr<Task>> tasks;
  };
  TaskShard& ShardFor(int pid) const {
    return task_shards_[static_cast<size_t>(pid) % kTaskShards];
  }

  Clock clock_;
  // mutable so const syscalls (GetPid) and const checks (Capable) can emit
  // trace events.
  mutable Tracer tracer_{&clock_, SyscallGate::kTraceCapacity};
  // mutable for the same reason: const checks (Capable) open layer frames.
  mutable LayerProfiler profiler_;
  MetricsRegistry metrics_;
  FaultRegistry faults_;
  Vfs vfs_;
  // mutable so const syscalls (GetPid) can account themselves.
  mutable SyscallGate gate_;
  LsmStack lsm_;
  Network net_;
  mutable TaskShard task_shards_[kTaskShards];
  std::atomic<uint64_t> task_count_{0};   // live tasks across all shards
  std::atomic<uint64_t> open_files_{0};   // fd-table entries across all tasks
  // Read-mostly registries: populated at boot (unique lock), consulted on
  // every execve/mount/ioctl (shared lock, entry copied out so the callable
  // runs lock-free — program mains nest further syscalls).
  mutable std::shared_mutex registry_mu_;
  std::map<std::string, BinaryEntry> binaries_;
  std::map<std::string, FsTypeFactory> fs_types_;
  std::map<uint64_t, IoctlHandler> ioctl_handlers_;  // (major<<32)|minor
  // Synthesized per-binary filters attached at execve (profile transition).
  std::map<std::string, std::shared_ptr<const SeccompFilter>> binary_filters_;
  AuthAgent auth_agent_;
  AuthObserver auth_observer_;
  std::mutex exit_mu_;  // guards exit_records_; also orders stdout_buf handoff
  std::map<int, ExitRecord> exit_records_;     // async children awaiting WaitPid
  std::mutex locks_mu_;  // guards file_locks_; Signal fires after unlock
  std::map<uint64_t, FileLockState> file_locks_;  // keyed by inode number
  AuditRing audit_ring_{512};
  std::atomic<int> next_pid_{1};
  std::atomic<int> next_userns_{1};
  std::atomic<bool> unprivileged_userns_enabled_{true};
  std::atomic<uint64_t> file_max_{1024};  // system-wide open-file ceiling (ENFILE)
};

}  // namespace protego

#endif  // SRC_KERNEL_KERNEL_H_
