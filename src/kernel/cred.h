// Process credentials: the uid/gid triples and capability sets that every
// policy decision in this system keys on.

#ifndef SRC_KERNEL_CRED_H_
#define SRC_KERNEL_CRED_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/kernel/capability.h"
#include "src/vfs/types.h"

namespace protego {

struct Cred {
  Uid ruid = 0, euid = 0, suid = 0, fsuid = 0;
  Gid rgid = 0, egid = 0, sgid = 0, fsgid = 0;
  std::vector<Gid> groups;  // supplementary groups

  CapSet effective;
  CapSet permitted;
  CapSet inheritable;

  static Cred ForUser(Uid uid, Gid gid, std::vector<Gid> supplementary = {}) {
    Cred c;
    c.ruid = c.euid = c.suid = c.fsuid = uid;
    c.rgid = c.egid = c.sgid = c.fsgid = gid;
    c.groups = std::move(supplementary);
    if (uid == kRootUid) {
      c.effective = CapSet::All();
      c.permitted = CapSet::All();
    }
    return c;
  }

  static Cred Root() { return ForUser(kRootUid, kRootGid); }

  bool InGroup(Gid gid) const {
    return egid == gid || std::find(groups.begin(), groups.end(), gid) != groups.end();
  }

  bool IsRootEuid() const { return euid == kRootUid; }

  // "uid=1000 euid=0 gid=1000 caps=CAP_SETUID" for audit messages.
  std::string ToString() const;
};

}  // namespace protego

#endif  // SRC_KERNEL_CRED_H_
