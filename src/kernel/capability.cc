#include "src/kernel/capability.h"

namespace protego {

const char* CapabilityName(Capability cap) {
  switch (cap) {
    case Capability::kChown: return "CAP_CHOWN";
    case Capability::kDacOverride: return "CAP_DAC_OVERRIDE";
    case Capability::kDacReadSearch: return "CAP_DAC_READ_SEARCH";
    case Capability::kFowner: return "CAP_FOWNER";
    case Capability::kFsetid: return "CAP_FSETID";
    case Capability::kKill: return "CAP_KILL";
    case Capability::kSetgid: return "CAP_SETGID";
    case Capability::kSetuid: return "CAP_SETUID";
    case Capability::kSetpcap: return "CAP_SETPCAP";
    case Capability::kLinuxImmutable: return "CAP_LINUX_IMMUTABLE";
    case Capability::kNetBindService: return "CAP_NET_BIND_SERVICE";
    case Capability::kNetBroadcast: return "CAP_NET_BROADCAST";
    case Capability::kNetAdmin: return "CAP_NET_ADMIN";
    case Capability::kNetRaw: return "CAP_NET_RAW";
    case Capability::kIpcLock: return "CAP_IPC_LOCK";
    case Capability::kIpcOwner: return "CAP_IPC_OWNER";
    case Capability::kSysModule: return "CAP_SYS_MODULE";
    case Capability::kSysRawio: return "CAP_SYS_RAWIO";
    case Capability::kSysChroot: return "CAP_SYS_CHROOT";
    case Capability::kSysPtrace: return "CAP_SYS_PTRACE";
    case Capability::kSysPacct: return "CAP_SYS_PACCT";
    case Capability::kSysAdmin: return "CAP_SYS_ADMIN";
    case Capability::kSysBoot: return "CAP_SYS_BOOT";
    case Capability::kSysNice: return "CAP_SYS_NICE";
    case Capability::kSysResource: return "CAP_SYS_RESOURCE";
    case Capability::kSysTime: return "CAP_SYS_TIME";
    case Capability::kSysTtyConfig: return "CAP_SYS_TTY_CONFIG";
    case Capability::kMknod: return "CAP_MKNOD";
    case Capability::kLease: return "CAP_LEASE";
    case Capability::kAuditWrite: return "CAP_AUDIT_WRITE";
    case Capability::kAuditControl: return "CAP_AUDIT_CONTROL";
    case Capability::kSetfcap: return "CAP_SETFCAP";
    case Capability::kMacOverride: return "CAP_MAC_OVERRIDE";
    case Capability::kMacAdmin: return "CAP_MAC_ADMIN";
    case Capability::kSyslog: return "CAP_SYSLOG";
    case Capability::kWakeAlarm: return "CAP_WAKE_ALARM";
    case Capability::kBlockSuspend: return "CAP_BLOCK_SUSPEND";
  }
  return "CAP_?";
}

std::string CapSet::ToString() const {
  if (Empty()) {
    return "-";
  }
  std::string out;
  for (int i = 0; i < kNumCapabilities; ++i) {
    if ((bits_ >> i) & 1) {
      if (!out.empty()) {
        out += "|";
      }
      out += CapabilityName(static_cast<Capability>(i));
    }
  }
  return out;
}

}  // namespace protego
