// Linux file-system capabilities (the coarse fragmentation of root privilege
// discussed in §3.2 of the paper). Values match include/uapi/linux/capability.h
// so that audit traces are comparable with real systems.

#ifndef SRC_KERNEL_CAPABILITY_H_
#define SRC_KERNEL_CAPABILITY_H_

#include <cstdint>
#include <string>

namespace protego {

enum class Capability : int {
  kChown = 0,
  kDacOverride = 1,
  kDacReadSearch = 2,
  kFowner = 3,
  kFsetid = 4,
  kKill = 5,
  kSetgid = 6,
  kSetuid = 7,
  kSetpcap = 8,
  kLinuxImmutable = 9,
  kNetBindService = 10,
  kNetBroadcast = 11,
  kNetAdmin = 12,
  kNetRaw = 13,
  kIpcLock = 14,
  kIpcOwner = 15,
  kSysModule = 16,
  kSysRawio = 17,
  kSysChroot = 18,
  kSysPtrace = 19,
  kSysPacct = 20,
  kSysAdmin = 21,
  kSysBoot = 22,
  kSysNice = 23,
  kSysResource = 24,
  kSysTime = 25,
  kSysTtyConfig = 26,
  kMknod = 27,
  kLease = 28,
  kAuditWrite = 29,
  kAuditControl = 30,
  kSetfcap = 31,
  kMacOverride = 32,
  kMacAdmin = 33,
  kSyslog = 34,
  kWakeAlarm = 35,
  kBlockSuspend = 36,
};

inline constexpr int kNumCapabilities = 37;

// "CAP_SYS_ADMIN" style name.
const char* CapabilityName(Capability cap);

// A set of capabilities (one of the effective/permitted/inheritable sets).
class CapSet {
 public:
  CapSet() = default;

  static CapSet All() {
    CapSet s;
    s.bits_ = (uint64_t{1} << kNumCapabilities) - 1;
    return s;
  }
  static CapSet Of(std::initializer_list<Capability> caps) {
    CapSet s;
    for (Capability c : caps) {
      s.Add(c);
    }
    return s;
  }

  bool Has(Capability cap) const { return (bits_ >> static_cast<int>(cap)) & 1; }
  void Add(Capability cap) { bits_ |= uint64_t{1} << static_cast<int>(cap); }
  void Remove(Capability cap) { bits_ &= ~(uint64_t{1} << static_cast<int>(cap)); }
  void Clear() { bits_ = 0; }
  bool Empty() const { return bits_ == 0; }
  uint64_t bits() const { return bits_; }

  // "CAP_SETUID|CAP_SETGID" for audit messages; "-" when empty.
  std::string ToString() const;

  friend bool operator==(const CapSet&, const CapSet&) = default;

 private:
  uint64_t bits_ = 0;
};

}  // namespace protego

#endif  // SRC_KERNEL_CAPABILITY_H_
