// The kernel-side scheduler interface.
//
// The kernel itself has no scheduling policy: Kernel::Spawn runs programs to
// completion synchronously, exactly as before. When a TaskScheduler is
// attached (SyscallGate::set_scheduler), three capabilities appear:
//
//   - preemption points: the gate reports every syscall entry via
//     OnSyscallEntry(), and the scheduler may park the calling OS thread
//     there and hand the execution token to another task (CHESS/dBug-style
//     cooperative determinism — see src/conc/scheduler.h);
//   - asynchronous tasks: Kernel::SpawnAsync registers the child program as
//     a schedulable unit via StartTask() instead of running it inline;
//   - blocking: syscalls that must sleep (waitpid on a live child, flock on
//     a held lock) call WaitOn(resource) and are removed from the runnable
//     set until Signal(resource); WaitOn returns false when blocking would
//     leave no runnable unit — the kernel surfaces that as EDEADLK.
//
// The interface lives in src/kernel (not src/conc) so the kernel never
// depends on the concurrency subsystem; src/conc implements it on top.

#ifndef SRC_KERNEL_SCHED_IFACE_H_
#define SRC_KERNEL_SCHED_IFACE_H_

#include <cstdint>
#include <functional>

namespace protego {

enum class Sysno : uint16_t;

// Resources a blocked task can wait on are identified by a uint64 key. The
// kernel uses disjoint key spaces for the two blocking syscalls it has.
inline constexpr uint64_t kWaitKeyChildExit = 1ull << 32;  // | child pid
inline constexpr uint64_t kWaitKeyFileLock = 2ull << 32;   // | inode number

class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;

  // Called by the SyscallGate at the top of every dispatched syscall, before
  // seccomp, accounting, or the body. A deterministic scheduler yields the
  // execution token here; for OS threads it does not manage, this must be a
  // no-op.
  virtual void OnSyscallEntry(int pid, Sysno nr) = 0;

  // Registers `body` as a schedulable unit for task `pid`. The body starts
  // executing only when the scheduler's run loop hands it the token.
  virtual void StartTask(int pid, std::function<void()> body) = 0;

  // Parks the calling unit until Signal(resource). Wakeups may be spurious —
  // callers re-check their predicate and loop. Returns false if parking
  // would deadlock (no runnable unit remains to ever signal), in which case
  // the caller still holds the token and must fail the syscall.
  virtual bool WaitOn(int pid, uint64_t resource) = 0;

  // Marks every unit parked on `resource` runnable again.
  virtual void Signal(uint64_t resource) = 0;
};

}  // namespace protego

#endif  // SRC_KERNEL_SCHED_IFACE_H_
