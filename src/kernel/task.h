// Task (process) state: credentials, fd table, controlling terminal, and the
// two pieces of security metadata Protego adds to task_struct —
// authentication recency and the pending setuid-on-exec record (§4.3).

#ifndef SRC_KERNEL_TASK_H_
#define SRC_KERNEL_TASK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/kernel/cred.h"
#include "src/kernel/syscall.h"
#include "src/lsm/decision_cache.h"
#include "src/vfs/vfs.h"

namespace protego {

// The controlling terminal of a session. The simulated "human" queues input
// lines (passwords, editor content); programs and the trusted authentication
// utility read them.
// Internally locked: several tasks can share one controlling terminal, and
// in parallel mode they run on different threads (one reads a password
// prompt while another writes output).
class Terminal {
 public:
  // Authentication recency per account for this terminal session — the
  // state behind sudo's "no password if entered on this terminal within
  // the last 5 minutes" behaviour. Stamped by the trusted authentication
  // utility alongside the per-task record.
  void StampAuth(Uid uid, uint64_t when) {
    std::lock_guard<std::mutex> lk(mu_);
    auth_times_[uid] = when;
  }
  std::optional<uint64_t> AuthTimeOf(Uid uid) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = auth_times_.find(uid);
    if (it == auth_times_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  void QueueInput(std::string line) {
    std::lock_guard<std::mutex> lk(mu_);
    input_.push_back(std::move(line));
  }

  // Next queued line, or nullopt if the human has nothing more to type.
  std::optional<std::string> ReadLine() {
    std::lock_guard<std::mutex> lk(mu_);
    if (input_.empty()) {
      return std::nullopt;
    }
    std::string line = std::move(input_.front());
    input_.pop_front();
    return line;
  }

  void Write(std::string_view text) {
    std::lock_guard<std::mutex> lk(mu_);
    output_.append(text);
  }
  // A copy: the buffer may grow on another thread while the caller scans it.
  std::string output() const {
    std::lock_guard<std::mutex> lk(mu_);
    return output_;
  }
  void ClearOutput() {
    std::lock_guard<std::mutex> lk(mu_);
    output_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<Uid, uint64_t> auth_times_;
  std::deque<std::string> input_;
  std::string output_;
};

// One open file description (shared across dup'ed fds). The offset is
// atomic because fork shares the description: parent and child advancing
// the same offset concurrently is the one field here that two task
// threads legitimately touch at once.
struct OpenFile {
  Vnode* node = nullptr;
  int flags = 0;
  std::atomic<size_t> offset{0};
};

// A file descriptor table entry: either a VFS file or a socket handle.
struct FdEntry {
  enum class Kind { kFile, kSocket };
  Kind kind = Kind::kFile;
  std::shared_ptr<OpenFile> file;
  int socket_id = -1;
  bool cloexec = false;
};

class FdTable {
 public:
  ~FdTable() { Account(-static_cast<int64_t>(table_.size())); }

  // Wires this table into the kernel's system-wide open-file counter (the
  // ENFILE numerator): every install/close adjusts it, replacing the old
  // walk over all task tables — which was both O(tasks) per fd allocation
  // and impossible to take safely while other task threads mutate their
  // own tables. Set once at task creation, before the task runs.
  void set_accounting(std::atomic<uint64_t>* counter) {
    counter_ = counter;
    Account(static_cast<int64_t>(table_.size()));
  }

  int Install(FdEntry entry) {
    int fd = next_fd_++;
    table_.emplace(fd, std::move(entry));
    Account(1);
    return fd;
  }

  FdEntry* Get(int fd) {
    auto it = table_.find(fd);
    return it == table_.end() ? nullptr : &it->second;
  }

  Result<Unit> Close(int fd) {
    if (table_.erase(fd) == 0) {
      return Error(Errno::kEBADF);
    }
    Account(-1);
    return OkUnit();
  }

  // Drops close-on-exec entries (called during execve).
  void CloseOnExec() {
    for (auto it = table_.begin(); it != table_.end();) {
      if (it->second.cloexec) {
        it = table_.erase(it);
        Account(-1);
      } else {
        ++it;
      }
    }
  }

  void CloseAll() {
    Account(-static_cast<int64_t>(table_.size()));
    table_.clear();
  }
  size_t size() const { return table_.size(); }
  const std::map<int, FdEntry>& entries() const { return table_; }

 private:
  void Account(int64_t delta) {
    if (counter_ != nullptr && delta != 0) {
      counter_->fetch_add(static_cast<uint64_t>(delta), std::memory_order_relaxed);
    }
  }

  std::map<int, FdEntry> table_;
  int next_fd_ = 3;  // 0/1/2 are the terminal
  std::atomic<uint64_t>* counter_ = nullptr;  // kernel-wide open-file count
};

// Namespace membership (§4.6/§6: Linux >= 3.8 lets unprivileged processes
// create sandboxed namespaces). Id 0 is the init namespace.
struct NamespaceSet {
  int net_ns = 0;
  int user_ns = 0;
};

// A struct rlimit analog: soft (enforced) and hard (ceiling) limits.
// Only RLIMIT_NOFILE (resource 7) is modeled; 0 in `max` means unlimited
// is NOT modeled — both fields are always concrete counts.
struct RLimit {
  uint64_t cur = 0;  // soft limit, enforced at fd allocation
  uint64_t max = 0;  // hard ceiling; raising it requires CAP_SYS_RESOURCE
};

// RLIMIT_NOFILE defaults, mirroring a typical login shell (ulimit -n) and
// its hard ceiling.
inline constexpr uint64_t kDefaultNofileCur = 256;
inline constexpr uint64_t kDefaultNofileMax = 4096;

// Pending deferred uid/gid transition: setuid() under a Protego delegation
// rule returns 0 but records the target here; the switch is validated and
// applied at the next execve (§4.3, "setuid-on-exec").
struct PendingSetuid {
  bool active = false;
  Uid target_uid = 0;
  bool has_gid = false;
  Gid target_gid = 0;
};

// A process.
struct Task {
  int pid = 0;
  int ppid = 0;
  std::string comm;      // short program name
  std::string exe_path;  // binary that is executing
  Cred cred;
  std::string cwd = "/";
  FdTable fds;
  Terminal* terminal = nullptr;

  // RLIMIT_NOFILE: fd allocation fails with EMFILE once the table holds
  // cur entries. Copied across fork, kept across exec (as on Linux).
  RLimit rlimit_nofile{kDefaultNofileCur, kDefaultNofileMax};

  // Namespace membership (copied across fork, kept across exec).
  NamespaceSet ns;

  // --- Protego security metadata (the paper's task_struct additions) ---
  // Last successful authentication time, per authenticated identity.
  std::map<Uid, uint64_t> auth_times;
  PendingSetuid pending_setuid;

  // Stack-level LSM verdict cache; the kernel clears it on credential
  // changes and exec (the cached request signatures embed the creds and
  // exe_path). mutable: hooks taking const Task& still insert. NOT copied
  // across fork — the child starts cold, which is always safe.
  mutable LsmDecisionCache lsm_cache;

  // Seccomp-style allow list; null means unfiltered. Shared (copy-on-install)
  // so fork is cheap; inherited across fork, kept across exec, and only ever
  // narrowed by Kernel::SeccompSetFilter.
  std::shared_ptr<const SeccompFilter> seccomp;

  // Captured standard streams (also mirrored to the terminal if any).
  std::string stdout_buf;
  std::string stderr_buf;

  bool RecentlyAuthenticated(Uid uid, uint64_t now, uint64_t window) const {
    auto it = auth_times.find(uid);
    if (it != auth_times.end() && now - it->second <= window) {
      return true;
    }
    if (terminal != nullptr) {
      std::optional<uint64_t> stamped = terminal->AuthTimeOf(uid);
      return stamped.has_value() && now - *stamped <= window;
    }
    return false;
  }
};

}  // namespace protego

#endif  // SRC_KERNEL_TASK_H_
