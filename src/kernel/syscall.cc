#include "src/kernel/syscall.h"

#include <algorithm>

#include "src/base/strings.h"

namespace protego {

const char* SysnoName(Sysno nr) {
  switch (nr) {
    case Sysno::kRead: return "read";
    case Sysno::kWrite: return "write";
    case Sysno::kOpen: return "open";
    case Sysno::kClose: return "close";
    case Sysno::kStat: return "stat";
    case Sysno::kIoctl: return "ioctl";
    case Sysno::kAccess: return "access";
    case Sysno::kGetPid: return "getpid";
    case Sysno::kSocket: return "socket";
    case Sysno::kConnect: return "connect";
    case Sysno::kSendTo: return "sendto";
    case Sysno::kRecvFrom: return "recvfrom";
    case Sysno::kBind: return "bind";
    case Sysno::kListen: return "listen";
    case Sysno::kClone: return "clone";
    case Sysno::kExecve: return "execve";
    case Sysno::kWait4: return "wait4";
    case Sysno::kFlock: return "flock";
    case Sysno::kGetDents: return "getdents";
    case Sysno::kRename: return "rename";
    case Sysno::kMkdir: return "mkdir";
    case Sysno::kUnlink: return "unlink";
    case Sysno::kSymlink: return "symlink";
    case Sysno::kChmod: return "chmod";
    case Sysno::kChown: return "chown";
    case Sysno::kGetRlimit: return "getrlimit";
    case Sysno::kSetRlimit: return "setrlimit";
    case Sysno::kSetuid: return "setuid";
    case Sysno::kSetgid: return "setgid";
    case Sysno::kSetreuid: return "setreuid";
    case Sysno::kSetgroups: return "setgroups";
    case Sysno::kMount: return "mount";
    case Sysno::kUmount2: return "umount2";
    case Sysno::kUnshare: return "unshare";
    case Sysno::kSeccomp: return "seccomp";
  }
  return "unknown";
}

const std::vector<Sysno>& AllSysnos() {
  static const std::vector<Sysno> kAll = {
      Sysno::kRead,      Sysno::kWrite,    Sysno::kOpen,     Sysno::kClose,
      Sysno::kStat,      Sysno::kIoctl,    Sysno::kAccess,   Sysno::kGetPid,
      Sysno::kSocket,    Sysno::kConnect,  Sysno::kSendTo,   Sysno::kRecvFrom,
      Sysno::kBind,      Sysno::kListen,   Sysno::kClone,    Sysno::kExecve,
      Sysno::kWait4,     Sysno::kFlock,    Sysno::kGetDents, Sysno::kRename,
      Sysno::kMkdir,     Sysno::kUnlink,   Sysno::kSymlink,  Sysno::kChmod,
      Sysno::kChown,     Sysno::kGetRlimit, Sysno::kSetuid,  Sysno::kSetgid,
      Sysno::kSetreuid,  Sysno::kSetgroups, Sysno::kSetRlimit, Sysno::kMount,
      Sysno::kUmount2,   Sysno::kUnshare,  Sysno::kSeccomp,
  };
  return kAll;
}

SeccompFilter SeccompFilter::AllowList(const std::vector<Sysno>& allowed) {
  SeccompFilter f;
  for (Sysno nr : allowed) {
    f.allowed_.set(static_cast<size_t>(nr));
  }
  return f;
}

SyscallGate::SyscallGate(const Clock* clock) : clock_(clock) {
  static std::atomic<uint64_t> next_gate_id{1};
  id_ = next_gate_id.fetch_add(1, std::memory_order_relaxed);
  // Default all-set: with no explicit syscall filter, the global toggles
  // alone decide, which is exactly the pre-dispatch behavior.
  traced_syscalls_.set();
  timed_syscalls_.set();
}

void SyscallGate::RebuildDispatch(uint64_t tracer_gen) {
  std::lock_guard<std::mutex> lk(dispatch_mu_);
  uint64_t local_gen = local_gen_.load(std::memory_order_relaxed);
  bool tracing = tracer_ != nullptr && tracer_->enabled() &&
                 tracer_->point_enabled(TracepointId::kSyscall);
  bool sampled = tracing && tracer_->sample_rate(TracepointId::kSyscall) > 1;
  // Exemplars ride the tracer master switch (not the kSyscall point or the
  // traced set): the reservoir annotates the latency HISTOGRAMS, which
  // cover every syscall, and must keep catching tails for calls whose
  // trace is filtered or sampled away.
  bool exemplars = exemplars_enabled_ && tracer_ != nullptr && tracer_->enabled();
  for (size_t i = 0; i < kSysnoSlots; ++i) {
    uint8_t word = 0;
    if (tracing && traced_syscalls_[i]) {
      word |= kDispatchTrace;
      if (sampled) {
        word |= kDispatchSampled;
      }
    }
    if (exemplars) {
      word |= kDispatchExemplar;
    }
    if (wallclock_timing_ && timed_syscalls_[i]) {
      word |= kDispatchTimed;
    }
    dispatch_[i].store(word, std::memory_order_relaxed);
  }
  // Publish the generations the table was built from LAST: a racing reader
  // that sees them early at worst rebuilds once more.
  built_local_gen_.store(local_gen, std::memory_order_relaxed);
  built_tracer_gen_.store(tracer_gen, std::memory_order_relaxed);
}

uint64_t SyscallGate::TotalCalls() const {
  uint64_t total = 0;
  for (Sysno nr : AllSysnos()) {
    total += stats_[static_cast<size_t>(nr)].calls;
  }
  return total;
}

void SyscallGate::ExitSyscall(SyscallContext& ctx, Errno err) {
  uint64_t dur_ns = 0;
  uint64_t dur_ticks = clock_->Now() - ctx.start_tick;
  // Lock-free stats path: relaxed atomic increments, no shared lock. In
  // parallel mode every task thread retires syscalls through here.
  PerSyscall& s = stats_[static_cast<size_t>(ctx.nr)];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  if (err != Errno::kOk) {
    s.errors.fetch_add(1, std::memory_order_relaxed);
  }
  s.total_ticks.fetch_add(dur_ticks, std::memory_order_relaxed);
  s.lat_ticks.Observe(dur_ticks);
  if ((ctx.dispatch & kDispatchTimed) != 0) {
    dur_ns = MonotonicNanos() - ctx.start_ns;
    s.total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
    s.lat_ns.Observe(dur_ns);
  }
  if ((ctx.dispatch & kDispatchTrace) != 0) {
    // Self-accounting: the trace emission and reservoir update are the
    // observability pipeline's own cost, metered under the observer layer.
    LayerScope observer_scope(profiler_, Layer::kObserver);
    if ((ctx.dispatch & kDispatchExemplar) != 0) {
      RecordExemplar(ctx.nr, dur_ticks, dur_ns, ctx.span, ctx.pid);
    }
    RecordTrace(ctx, err, dur_ns, /*seccomp_denied=*/false);
  } else if ((ctx.dispatch & kDispatchExemplar) != 0) {
    // Untraced call, exemplars still armed: the budgeted always-on path.
    // No span to close and no root event to emit, so skip RecordTrace
    // entirely — the reservoir compare is the only observer work.
    LayerScope observer_scope(profiler_, Layer::kObserver);
    RecordExemplar(ctx.nr, dur_ticks, dur_ns, ctx.span, ctx.pid);
  }
  Tracer::SwapThreadMute(ctx.prev_muted);
}

void SyscallGate::RecordDenial(SyscallContext& ctx) {
  // Seccomp-killed semantic (see the header): the call is counted, but its
  // latency is not — the body never ran. Same reasoning excludes it from
  // the tail-exemplar reservoir.
  PerSyscall& s = stats_[static_cast<size_t>(ctx.nr)];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  s.errors.fetch_add(1, std::memory_order_relaxed);
  s.seccomp_denied.fetch_add(1, std::memory_order_relaxed);
  {
    LayerScope observer_scope(profiler_, Layer::kObserver);
    RecordTrace(ctx, Errno::kEPERM, /*dur_ns=*/0, /*seccomp_denied=*/true);
  }
  if (audit_sink_) {
    audit_sink_(StrFormat("seccomp: pid=%d comm=%s denied %s(%d)", ctx.pid,
                          ctx.comm ? ctx.comm->c_str() : "?", SysnoName(ctx.nr),
                          static_cast<int>(ctx.nr)));
  }
}

void SyscallGate::RecordTrace(SyscallContext& ctx, Errno err, uint64_t dur_ns,
                              bool seccomp_denied) {
  if (tracer_ == nullptr) {
    return;
  }
  if ((ctx.dispatch & kDispatchTrace) != 0) {
    TraceEvent& ev = tracer_->EmitSpanRoot(TracepointId::kSyscall, ctx.pid, ctx.span);
    ev.a = static_cast<uint64_t>(ctx.nr);
    ev.code = static_cast<int>(err);
    ev.dur = dur_ns;
    ev.tick = ctx.start_tick;
    ev.sname = SysnoName(ctx.nr);
    if (seccomp_denied) {
      ev.flags |= kTraceFlagSeccompDenied | kTraceFlagDenied;
    } else if (err != Errno::kOk) {
      ev.flags |= kTraceFlagDenied;
    }
    if (ctx.comm != nullptr) {
      ev.comm.assign(*ctx.comm);  // reuses the slot's capacity
    } else {
      ev.comm.assign("?");
    }
    ev.detail = std::move(ctx.args);
  }
  if (ctx.span != 0) {
    tracer_->EndSpan(ctx.pid, ctx.span);
  }
}

SyscallGate::ExemplarShard& SyscallGate::MyExemplarShard() {
  struct TlCache {
    uint64_t gate_id = 0;
    ExemplarShard* shard = nullptr;
  };
  thread_local TlCache cache;
  if (cache.gate_id == id_) {
    return *cache.shard;
  }
  std::lock_guard<std::mutex> lk(exemplar_mu_);
  std::thread::id me = std::this_thread::get_id();
  for (const std::unique_ptr<ExemplarShard>& s : exemplar_shards_) {
    if (s->owner == me) {
      cache = {id_, s.get()};
      return *s;
    }
  }
  exemplar_shards_.push_back(std::make_unique<ExemplarShard>());
  ExemplarShard& shard = *exemplar_shards_.back();
  shard.owner = me;
  cache = {id_, &shard};
  return shard;
}

void SyscallGate::RecordExemplar(Sysno nr, uint64_t dur_ticks, uint64_t dur_ns,
                                 uint64_t span, int pid) {
  ExemplarShard& shard = MyExemplarShard();
  std::unique_ptr<SysnoExemplars>& slot = shard.per_sysno[static_cast<size_t>(nr)];
  if (slot == nullptr) {
    slot = std::make_unique<SysnoExemplars>();
  }
  SysnoExemplars& res = *slot;
  if (res.used < kExemplarSlots) {
    res.slots[res.used++] = {dur_ticks, dur_ns, span, pid};
  } else {
    // Warm-reservoir fast path: STRICTLY slower than the cached minimum
    // replaces it; ties keep the incumbent (earliest call wins), which is
    // what makes the kept set deterministic under a deterministic clock.
    if (dur_ticks < res.min_ticks ||
        (dur_ticks == res.min_ticks && dur_ns <= res.min_ns)) {
      return;
    }
    size_t min_idx = 0;
    for (size_t i = 1; i < kExemplarSlots; ++i) {
      const ExemplarRecord& a = res.slots[i];
      const ExemplarRecord& b = res.slots[min_idx];
      if (a.dur_ticks < b.dur_ticks ||
          (a.dur_ticks == b.dur_ticks && a.dur_ns < b.dur_ns)) {
        min_idx = i;
      }
    }
    res.slots[min_idx] = {dur_ticks, dur_ns, span, pid};
  }
  if (res.used < kExemplarSlots) {
    return;  // min cache only matters once the reservoir is full
  }
  res.min_ticks = res.slots[0].dur_ticks;
  res.min_ns = res.slots[0].dur_ns;
  for (size_t i = 1; i < kExemplarSlots; ++i) {
    const ExemplarRecord& a = res.slots[i];
    if (a.dur_ticks < res.min_ticks ||
        (a.dur_ticks == res.min_ticks && a.dur_ns < res.min_ns)) {
      res.min_ticks = a.dur_ticks;
      res.min_ns = a.dur_ns;
    }
  }
}

std::vector<SyscallGate::ExemplarRecord> SyscallGate::ExemplarsFor(Sysno nr) const {
  std::vector<ExemplarRecord> all;
  {
    std::lock_guard<std::mutex> lk(exemplar_mu_);
    for (const std::unique_ptr<ExemplarShard>& shard : exemplar_shards_) {
      const std::unique_ptr<SysnoExemplars>& res = shard->per_sysno[static_cast<size_t>(nr)];
      if (res == nullptr) {
        continue;
      }
      for (size_t i = 0; i < res->used; ++i) {
        all.push_back(res->slots[i]);
      }
    }
  }
  // Slowest first; span breaks ties so the merged top-K is stable.
  std::sort(all.begin(), all.end(), [](const ExemplarRecord& a, const ExemplarRecord& b) {
    if (a.dur_ticks != b.dur_ticks) return a.dur_ticks > b.dur_ticks;
    if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
    return a.span < b.span;
  });
  if (all.size() > kExemplarSlots) {
    all.resize(kExemplarSlots);
  }
  return all;
}

std::vector<SyscallGate::TraceRecord> SyscallGate::TraceSnapshot() const {
  std::vector<TraceRecord> out;
  if (tracer_ == nullptr) {
    return out;
  }
  for (const TraceEvent& ev : tracer_->Snapshot()) {
    if (ev.tp != TracepointId::kSyscall) {
      continue;
    }
    TraceRecord rec;
    rec.seq = ev.seq;
    rec.tick = ev.tick;
    rec.pid = ev.pid;
    rec.nr = static_cast<Sysno>(ev.a);
    rec.err = static_cast<Errno>(ev.code);
    rec.dur_ns = ev.dur;
    rec.seccomp_denied = (ev.flags & kTraceFlagSeccompDenied) != 0;
    rec.comm = ev.comm;
    rec.args = ev.detail;
    out.push_back(std::move(rec));
  }
  return out;
}

void SyscallGate::ClearTrace() {
  if (tracer_ != nullptr) {
    tracer_->Clear();
  }
}

void SyscallGate::ResetStats() {
  for (PerSyscall& s : stats_) {
    s.calls.store(0, std::memory_order_relaxed);
    s.errors.store(0, std::memory_order_relaxed);
    s.seccomp_denied.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    s.total_ticks.store(0, std::memory_order_relaxed);
    s.lat_ticks.Reset();
    s.lat_ns.Reset();
  }
  std::lock_guard<std::mutex> lk(exemplar_mu_);
  for (const std::unique_ptr<ExemplarShard>& shard : exemplar_shards_) {
    for (std::unique_ptr<SysnoExemplars>& res : shard->per_sysno) {
      res.reset();
    }
  }
}

std::string SyscallGate::FormatStats() const {
  // Stable columnar format, one row per syscall that has been called at
  // least once (plus a totals row), modeled on /proc/net/snmp.
  std::string out =
      "# nr name calls errors seccomp_denied total_ns total_ticks\n";
  uint64_t calls = 0, errors = 0, denied = 0;
  for (Sysno nr : AllSysnos()) {
    const PerSyscall& s = stats_[static_cast<size_t>(nr)];
    if (s.calls == 0) continue;
    calls += s.calls;
    errors += s.errors;
    denied += s.seccomp_denied;
    out += StrFormat("%d %s %llu %llu %llu %llu %llu\n", static_cast<int>(nr),
                     SysnoName(nr), (unsigned long long)s.calls,
                     (unsigned long long)s.errors,
                     (unsigned long long)s.seccomp_denied,
                     (unsigned long long)s.total_ns,
                     (unsigned long long)s.total_ticks);
  }
  out += StrFormat("total: calls=%llu errors=%llu seccomp_denied=%llu\n",
                   (unsigned long long)calls, (unsigned long long)errors,
                   (unsigned long long)denied);
  return out;
}

std::string SyscallGate::FormatTrace() const {
  return tracer_ != nullptr ? tracer_->Format() : std::string();
}

void SyscallGate::CollectMetrics(MetricsBuilder& b) const {
  for (Sysno nr : AllSysnos()) {
    const PerSyscall& s = stats_[static_cast<size_t>(nr)];
    if (s.calls == 0) {
      continue;
    }
    MetricLabels labels = {{"syscall", SysnoName(nr)}};
    b.Counter("protego_syscall_calls_total", "Syscalls dispatched through the gate",
              labels, s.calls);
    b.Counter("protego_syscall_errors_total", "Syscalls that returned an errno", labels,
              s.errors);
    b.Counter("protego_syscall_seccomp_denied_total",
              "Syscalls killed by the task seccomp filter at entry", labels,
              s.seccomp_denied);
    // The tick histogram carries the tail exemplars: each kept slowest-call
    // record renders on the bucket line its duration falls into, with span
    // and pid labels for cross-referencing the trace.
    std::vector<MetricExemplar> exemplars;
    for (const ExemplarRecord& ex : ExemplarsFor(nr)) {
      exemplars.push_back(MetricExemplar{
          {{"span", StrFormat("%llu", (unsigned long long)ex.span)},
           {"pid", StrFormat("%d", ex.pid)}},
          ex.dur_ticks});
    }
    b.HistoEx("protego_syscall_latency_ticks",
              "Per-syscall latency in virtual clock ticks", labels, s.lat_ticks,
              std::move(exemplars));
    if (s.lat_ns.count() > 0) {
      b.Histo("protego_syscall_latency_ns",
              "Per-syscall wall-clock latency in nanoseconds (profiling runs)", labels,
              s.lat_ns);
    }
  }
}

}  // namespace protego
