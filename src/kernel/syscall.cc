#include "src/kernel/syscall.h"

#include <algorithm>

#include "src/base/strings.h"

namespace protego {

const char* SysnoName(Sysno nr) {
  switch (nr) {
    case Sysno::kRead: return "read";
    case Sysno::kWrite: return "write";
    case Sysno::kOpen: return "open";
    case Sysno::kClose: return "close";
    case Sysno::kStat: return "stat";
    case Sysno::kIoctl: return "ioctl";
    case Sysno::kAccess: return "access";
    case Sysno::kGetPid: return "getpid";
    case Sysno::kSocket: return "socket";
    case Sysno::kConnect: return "connect";
    case Sysno::kSendTo: return "sendto";
    case Sysno::kRecvFrom: return "recvfrom";
    case Sysno::kBind: return "bind";
    case Sysno::kListen: return "listen";
    case Sysno::kClone: return "clone";
    case Sysno::kExecve: return "execve";
    case Sysno::kGetDents: return "getdents";
    case Sysno::kRename: return "rename";
    case Sysno::kMkdir: return "mkdir";
    case Sysno::kUnlink: return "unlink";
    case Sysno::kChmod: return "chmod";
    case Sysno::kChown: return "chown";
    case Sysno::kSetuid: return "setuid";
    case Sysno::kSetgid: return "setgid";
    case Sysno::kSetreuid: return "setreuid";
    case Sysno::kSetgroups: return "setgroups";
    case Sysno::kMount: return "mount";
    case Sysno::kUmount2: return "umount2";
    case Sysno::kUnshare: return "unshare";
    case Sysno::kSeccomp: return "seccomp";
  }
  return "unknown";
}

const std::vector<Sysno>& AllSysnos() {
  static const std::vector<Sysno> kAll = {
      Sysno::kRead,      Sysno::kWrite,    Sysno::kOpen,     Sysno::kClose,
      Sysno::kStat,      Sysno::kIoctl,    Sysno::kAccess,   Sysno::kGetPid,
      Sysno::kSocket,    Sysno::kConnect,  Sysno::kSendTo,   Sysno::kRecvFrom,
      Sysno::kBind,      Sysno::kListen,   Sysno::kClone,    Sysno::kExecve,
      Sysno::kGetDents,  Sysno::kRename,   Sysno::kMkdir,    Sysno::kUnlink,
      Sysno::kChmod,     Sysno::kChown,    Sysno::kSetuid,   Sysno::kSetgid,
      Sysno::kSetreuid,  Sysno::kSetgroups, Sysno::kMount,   Sysno::kUmount2,
      Sysno::kUnshare,   Sysno::kSeccomp,
  };
  return kAll;
}

SeccompFilter SeccompFilter::AllowList(const std::vector<Sysno>& allowed) {
  SeccompFilter f;
  for (Sysno nr : allowed) {
    f.allowed_.set(static_cast<size_t>(nr));
  }
  return f;
}

uint64_t SyscallGate::TotalCalls() const {
  uint64_t total = 0;
  for (Sysno nr : AllSysnos()) {
    total += stats_[static_cast<size_t>(nr)].calls;
  }
  return total;
}

void SyscallGate::ExitSyscall(SyscallContext& ctx, Errno err) {
  uint64_t dur_ns = 0;
  PerSyscall& s = stats_[static_cast<size_t>(ctx.nr)];
  s.calls++;
  if (err != Errno::kOk) {
    s.errors++;
  }
  s.total_ticks += clock_->Now() - ctx.start_tick;
  if (wallclock_timing_) {
    dur_ns = MonotonicNanos() - ctx.start_ns;
    s.total_ns += dur_ns;
  }
  if (trace_enabled_) {
    RecordTrace(ctx, err, dur_ns, /*seccomp_denied=*/false);
  }
}

void SyscallGate::RecordDenial(SyscallContext& ctx) {
  PerSyscall& s = stats_[static_cast<size_t>(ctx.nr)];
  s.calls++;
  s.errors++;
  s.seccomp_denied++;
  if (trace_enabled_) {
    RecordTrace(ctx, Errno::kEPERM, /*dur_ns=*/0, /*seccomp_denied=*/true);
  }
  if (audit_sink_) {
    audit_sink_(StrFormat("seccomp: pid=%d comm=%s denied %s(%d)", ctx.pid,
                          ctx.comm ? ctx.comm->c_str() : "?", SysnoName(ctx.nr),
                          static_cast<int>(ctx.nr)));
  }
}

void SyscallGate::RecordTrace(SyscallContext& ctx, Errno err, uint64_t dur_ns,
                              bool seccomp_denied) {
  TraceRecord& rec = trace_ring_[trace_seq_ % kTraceCapacity];
  rec.seq = trace_seq_++;
  rec.tick = ctx.start_tick;
  rec.pid = ctx.pid;
  rec.nr = ctx.nr;
  rec.err = err;
  rec.dur_ns = dur_ns;
  rec.seccomp_denied = seccomp_denied;
  if (ctx.comm != nullptr) {
    rec.comm.assign(*ctx.comm);  // reuses the slot's capacity
  } else {
    rec.comm.assign("?");
  }
  rec.args = std::move(ctx.args);
}

std::vector<SyscallGate::TraceRecord> SyscallGate::TraceSnapshot() const {
  std::vector<TraceRecord> out;
  size_t count = std::min<uint64_t>(trace_seq_, kTraceCapacity);
  out.reserve(count);
  uint64_t first = trace_seq_ - count;
  for (uint64_t seq = first; seq < trace_seq_; ++seq) {
    out.push_back(trace_ring_[seq % kTraceCapacity]);
  }
  return out;
}

void SyscallGate::ClearTrace() {
  for (TraceRecord& rec : trace_ring_) {
    rec = TraceRecord{};
  }
  trace_seq_ = 0;
}

void SyscallGate::ResetStats() {
  for (PerSyscall& s : stats_) {
    s = PerSyscall{};
  }
}

std::string SyscallGate::FormatStats() const {
  // Stable columnar format, one row per syscall that has been called at
  // least once (plus a totals row), modeled on /proc/net/snmp.
  std::string out =
      "# nr name calls errors seccomp_denied total_ns total_ticks\n";
  uint64_t calls = 0, errors = 0, denied = 0;
  for (Sysno nr : AllSysnos()) {
    const PerSyscall& s = stats_[static_cast<size_t>(nr)];
    if (s.calls == 0) continue;
    calls += s.calls;
    errors += s.errors;
    denied += s.seccomp_denied;
    out += StrFormat("%d %s %llu %llu %llu %llu %llu\n", static_cast<int>(nr),
                     SysnoName(nr), (unsigned long long)s.calls,
                     (unsigned long long)s.errors,
                     (unsigned long long)s.seccomp_denied,
                     (unsigned long long)s.total_ns,
                     (unsigned long long)s.total_ticks);
  }
  out += StrFormat("total: calls=%llu errors=%llu seccomp_denied=%llu\n",
                   (unsigned long long)calls, (unsigned long long)errors,
                   (unsigned long long)denied);
  return out;
}

std::string SyscallGate::FormatTrace() const {
  // strace-flavored: seq tick pid comm syscall(args) = result [dur].
  std::string out;
  for (const TraceRecord& rec : TraceSnapshot()) {
    std::string result =
        rec.err == Errno::kOk ? "0" : StrFormat("-1 %s", ErrnoName(rec.err));
    if (rec.seccomp_denied) {
      result += " (seccomp)";
    }
    out += StrFormat("%llu t=%llu pid=%d %s %s(%s) = %s dur_ns=%llu\n",
                     (unsigned long long)rec.seq, (unsigned long long)rec.tick,
                     rec.pid, rec.comm.c_str(), SysnoName(rec.nr),
                     rec.args.c_str(), result.c_str(),
                     (unsigned long long)rec.dur_ns);
  }
  if (trace_dropped() > 0) {
    out += StrFormat("# dropped: %llu\n", (unsigned long long)trace_dropped());
  }
  return out;
}

}  // namespace protego
