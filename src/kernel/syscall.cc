#include "src/kernel/syscall.h"

#include <algorithm>

#include "src/base/strings.h"

namespace protego {

const char* SysnoName(Sysno nr) {
  switch (nr) {
    case Sysno::kRead: return "read";
    case Sysno::kWrite: return "write";
    case Sysno::kOpen: return "open";
    case Sysno::kClose: return "close";
    case Sysno::kStat: return "stat";
    case Sysno::kIoctl: return "ioctl";
    case Sysno::kAccess: return "access";
    case Sysno::kGetPid: return "getpid";
    case Sysno::kSocket: return "socket";
    case Sysno::kConnect: return "connect";
    case Sysno::kSendTo: return "sendto";
    case Sysno::kRecvFrom: return "recvfrom";
    case Sysno::kBind: return "bind";
    case Sysno::kListen: return "listen";
    case Sysno::kClone: return "clone";
    case Sysno::kExecve: return "execve";
    case Sysno::kWait4: return "wait4";
    case Sysno::kFlock: return "flock";
    case Sysno::kGetDents: return "getdents";
    case Sysno::kRename: return "rename";
    case Sysno::kMkdir: return "mkdir";
    case Sysno::kUnlink: return "unlink";
    case Sysno::kSymlink: return "symlink";
    case Sysno::kChmod: return "chmod";
    case Sysno::kChown: return "chown";
    case Sysno::kGetRlimit: return "getrlimit";
    case Sysno::kSetRlimit: return "setrlimit";
    case Sysno::kSetuid: return "setuid";
    case Sysno::kSetgid: return "setgid";
    case Sysno::kSetreuid: return "setreuid";
    case Sysno::kSetgroups: return "setgroups";
    case Sysno::kMount: return "mount";
    case Sysno::kUmount2: return "umount2";
    case Sysno::kUnshare: return "unshare";
    case Sysno::kSeccomp: return "seccomp";
  }
  return "unknown";
}

const std::vector<Sysno>& AllSysnos() {
  static const std::vector<Sysno> kAll = {
      Sysno::kRead,      Sysno::kWrite,    Sysno::kOpen,     Sysno::kClose,
      Sysno::kStat,      Sysno::kIoctl,    Sysno::kAccess,   Sysno::kGetPid,
      Sysno::kSocket,    Sysno::kConnect,  Sysno::kSendTo,   Sysno::kRecvFrom,
      Sysno::kBind,      Sysno::kListen,   Sysno::kClone,    Sysno::kExecve,
      Sysno::kWait4,     Sysno::kFlock,    Sysno::kGetDents, Sysno::kRename,
      Sysno::kMkdir,     Sysno::kUnlink,   Sysno::kSymlink,  Sysno::kChmod,
      Sysno::kChown,     Sysno::kGetRlimit, Sysno::kSetuid,  Sysno::kSetgid,
      Sysno::kSetreuid,  Sysno::kSetgroups, Sysno::kSetRlimit, Sysno::kMount,
      Sysno::kUmount2,   Sysno::kUnshare,  Sysno::kSeccomp,
  };
  return kAll;
}

std::optional<Sysno> SysnoFromName(std::string_view name) {
  for (Sysno nr : AllSysnos()) {
    if (name == SysnoName(nr)) {
      return nr;
    }
  }
  return std::nullopt;
}

const char* SeccompCmpName(SeccompCmp cmp) {
  switch (cmp) {
    case SeccompCmp::kEq: return "eq";
    case SeccompCmp::kNe: return "ne";
    case SeccompCmp::kLt: return "lt";
    case SeccompCmp::kGe: return "ge";
    case SeccompCmp::kMaskedEq: return "masked_eq";
  }
  return "?";
}

namespace {

std::optional<SeccompCmp> CmpFromName(std::string_view s) {
  if (s == "eq") return SeccompCmp::kEq;
  if (s == "ne") return SeccompCmp::kNe;
  if (s == "lt") return SeccompCmp::kLt;
  if (s == "ge") return SeccompCmp::kGe;
  if (s == "masked_eq") return SeccompCmp::kMaskedEq;
  return std::nullopt;
}

// Accepts decimal or 0x-hex (Render emits masks in hex).
std::optional<uint64_t> ParseFilterUint(std::string_view s) {
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    uint64_t v = 0;
    for (char c : s.substr(2)) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return std::nullopt;
      }
      v = (v << 4) | static_cast<uint64_t>(digit);
    }
    return v;
  }
  return ParseUint(s);
}

bool PredHolds(const SeccompPredicate& p, uint64_t arg) {
  switch (p.cmp) {
    case SeccompCmp::kEq: return arg == p.value;
    case SeccompCmp::kNe: return arg != p.value;
    case SeccompCmp::kLt: return arg < p.value;
    case SeccompCmp::kGe: return arg >= p.value;
    case SeccompCmp::kMaskedEq: return (arg & p.mask) == p.value;
  }
  return false;
}

// Splits on whitespace.
std::vector<std::string> FilterTokens(std::string_view line) {
  std::vector<std::string> toks;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    if (i > start) {
      toks.emplace_back(line.substr(start, i - start));
    }
  }
  return toks;
}

// Orders the prefix table longest-first so a linear scan finds the longest
// match; ties break lexicographically for byte-stable rendering.
void SortPathClasses(std::vector<std::pair<std::string, uint64_t>>& classes) {
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) {
              if (a.first.size() != b.first.size()) {
                return a.first.size() > b.first.size();
              }
              return a.first < b.first;
            });
}

}  // namespace

SeccompFilter SeccompFilter::AllowList(const std::vector<Sysno>& allowed) {
  SeccompFilter f;
  for (Sysno nr : allowed) {
    f.allowed_.set(static_cast<size_t>(nr));
  }
  return f;
}

Result<SeccompFilter> SeccompFilter::FromSpec(const Spec& spec) {
  SeccompFilter f;
  f.allowed_ = spec.allowed;
  std::map<std::string, uint64_t> by_prefix;
  std::map<uint64_t, std::string> by_id;
  for (const auto& [prefix, id] : spec.path_classes) {
    if (prefix.empty() || prefix[0] != '/') {
      return Error(Errno::kEINVAL, "path class prefix must be absolute: " + prefix);
    }
    if (id == 0) {
      return Error(Errno::kEINVAL, "path class id 0 is reserved for 'no match'");
    }
    if (!by_prefix.emplace(prefix, id).second || !by_id.emplace(id, prefix).second) {
      return Error(Errno::kEINVAL, "duplicate path class: " + prefix);
    }
  }
  for (const auto& [nr, rules] : spec.rules) {
    if (nr >= kSysnoSlots || !spec.allowed[nr]) {
      return Error(Errno::kEINVAL,
                   StrFormat("rules for syscall %u which is not allowed", nr));
    }
    if (rules.empty()) {
      return Error(Errno::kEINVAL,
                   StrFormat("empty rule list for syscall %u (omit or deny instead)", nr));
    }
    for (const SeccompRule& rule : rules) {
      if (rule.preds.empty()) {
        return Error(Errno::kEINVAL, "rule with no predicates");
      }
      for (const SeccompPredicate& p : rule.preds) {
        if (p.arg > kSeccompArgPath) {
          return Error(Errno::kEINVAL, StrFormat("bad argument index %u", p.arg));
        }
        if (p.arg == kSeccompArgPath) {
          if (p.cmp != SeccompCmp::kEq) {
            return Error(Errno::kEINVAL,
                         "path-class predicates must use eq (intersection safety)");
          }
          if (by_id.count(p.value) == 0) {
            return Error(Errno::kEINVAL,
                         StrFormat("path predicate references unknown class %llu",
                                   (unsigned long long)p.value));
          }
        }
        if (p.cmp == SeccompCmp::kMaskedEq && (p.value & ~p.mask) != 0) {
          return Error(Errno::kEINVAL, "masked_eq value has bits outside the mask");
        }
      }
    }
    f.rules_[nr] = rules;
    f.has_rules_.set(nr);
  }
  f.path_classes_ = spec.path_classes;
  SortPathClasses(f.path_classes_);
  return f;
}

uint64_t SeccompFilter::PathClassOf(const SyscallArgs& args) const {
  if (args.path == nullptr) {
    return 0;
  }
  const std::string* path = args.path;
  std::string abs;
  if (path->empty() || (*path)[0] != '/') {
    abs = (args.cwd != nullptr ? *args.cwd : std::string("/")) + "/" + *path;
    path = &abs;
  }
  for (const auto& [prefix, id] : path_classes_) {
    if (path->compare(0, prefix.size(), prefix) == 0) {
      return id;
    }
  }
  return 0;
}

bool SeccompFilter::EvalRules(uint16_t nr, const SyscallArgs& args,
                              uint32_t* rule_evals) const {
  auto it = rules_.find(nr);
  if (it == rules_.end()) {
    return true;  // has_rules_ bit without storage cannot happen; be safe
  }
  // The path class is resolved at most once per call, lazily: rule lists
  // without path predicates never touch the prefix table.
  uint64_t path_class = 0;
  bool path_resolved = false;
  for (const SeccompRule& rule : it->second) {
    ++*rule_evals;
    bool match = true;
    for (const SeccompPredicate& p : rule.preds) {
      uint64_t arg;
      if (p.arg == kSeccompArgPath) {
        if (!path_resolved) {
          path_class = PathClassOf(args);
          path_resolved = true;
        }
        arg = path_class;
      } else {
        arg = args.a[p.arg];
      }
      if (!PredHolds(p, arg)) {
        match = false;
        break;
      }
    }
    if (match) {
      return true;
    }
  }
  return false;
}

size_t SeccompFilter::rule_count() const {
  size_t n = 0;
  for (const auto& [nr, rules] : rules_) {
    (void)nr;
    n += rules.size();
  }
  return n;
}

namespace {

// True when conjoining `preds` yields an obviously unsatisfiable rule —
// used to prune the intersection cross product. Conservative: rules it
// cannot prove contradictory are kept (they simply never match at runtime).
bool ObviouslyContradictory(const std::vector<SeccompPredicate>& preds) {
  for (size_t i = 0; i < preds.size(); ++i) {
    const SeccompPredicate& a = preds[i];
    if (a.cmp != SeccompCmp::kEq) {
      continue;
    }
    for (size_t j = 0; j < preds.size(); ++j) {
      if (i == j) {
        continue;
      }
      const SeccompPredicate& b = preds[j];
      if (b.arg != a.arg) {
        continue;
      }
      switch (b.cmp) {
        case SeccompCmp::kEq:
          if (b.value != a.value) return true;
          break;
        case SeccompCmp::kNe:
          if (b.value == a.value) return true;
          break;
        case SeccompCmp::kLt:
          if (a.value >= b.value) return true;
          break;
        case SeccompCmp::kGe:
          if (a.value < b.value) return true;
          break;
        case SeccompCmp::kMaskedEq:
          if ((a.value & b.mask) != b.value) return true;
          break;
      }
    }
  }
  return false;
}

void DedupePreds(std::vector<SeccompPredicate>& preds) {
  std::vector<SeccompPredicate> out;
  for (const SeccompPredicate& p : preds) {
    if (std::find(out.begin(), out.end(), p) == out.end()) {
      out.push_back(p);
    }
  }
  preds = std::move(out);
}

}  // namespace

void SeccompFilter::IntersectWith(const SeccompFilter& other) {
  allowed_ &= other.allowed_;
  if (!has_rules_.any() && !other.has_rules_.any()) {
    return;
  }

  // Merge the prefix tables by prefix string; remap both sides' class ids.
  // Ids are reassigned in sorted-prefix order so identical merges render
  // identically.
  std::map<std::string, uint64_t> merged;  // prefix -> new id
  for (const auto& [prefix, id] : path_classes_) {
    (void)id;
    merged.emplace(prefix, 0);
  }
  for (const auto& [prefix, id] : other.path_classes_) {
    (void)id;
    merged.emplace(prefix, 0);
  }
  uint64_t next_id = 1;
  for (auto& [prefix, id] : merged) {
    (void)prefix;
    id = next_id++;
  }
  auto remap = [&merged](const std::vector<std::pair<std::string, uint64_t>>& table,
                         const SeccompRule& rule) {
    SeccompRule out = rule;
    for (SeccompPredicate& p : out.preds) {
      if (p.arg == kSeccompArgPath) {
        for (const auto& [prefix, id] : table) {
          if (id == p.value) {
            p.value = merged.at(prefix);
            break;
          }
        }
      }
    }
    return out;
  };

  std::map<uint16_t, std::vector<SeccompRule>> result;
  std::bitset<kSysnoSlots> result_has;
  for (size_t i = 0; i < kSysnoSlots; ++i) {
    if (!allowed_[i]) {
      continue;
    }
    uint16_t nr = static_cast<uint16_t>(i);
    bool mine = has_rules_[i];
    bool theirs = other.has_rules_[i];
    if (!mine && !theirs) {
      continue;
    }
    std::vector<SeccompRule> rules;
    if (mine && !theirs) {
      for (const SeccompRule& r : rules_.at(nr)) {
        rules.push_back(remap(path_classes_, r));
      }
    } else if (!mine && theirs) {
      for (const SeccompRule& r : other.rules_.at(nr)) {
        rules.push_back(remap(other.path_classes_, r));
      }
    } else {
      // Both constrain this syscall: the exact AND of two OR-of-AND lists
      // is the pairwise conjunction. Obvious contradictions are pruned; an
      // oversized product denies the syscall outright (still a tightening).
      for (const SeccompRule& ra : rules_.at(nr)) {
        SeccompRule a = remap(path_classes_, ra);
        for (const SeccompRule& rb : other.rules_.at(nr)) {
          SeccompRule conj = a;
          SeccompRule b = remap(other.path_classes_, rb);
          conj.preds.insert(conj.preds.end(), b.preds.begin(), b.preds.end());
          DedupePreds(conj.preds);
          if (ObviouslyContradictory(conj.preds)) {
            continue;
          }
          if (std::find(rules.begin(), rules.end(), conj) == rules.end()) {
            rules.push_back(std::move(conj));
          }
        }
      }
      if (rules.empty() || rules.size() > kMaxRulesPerSysno) {
        allowed_.reset(i);
        continue;
      }
    }
    result[nr] = std::move(rules);
    result_has.set(i);
  }
  rules_ = std::move(result);
  has_rules_ = result_has;
  path_classes_.clear();
  for (const auto& [prefix, id] : merged) {
    path_classes_.emplace_back(prefix, id);
  }
  SortPathClasses(path_classes_);
}

std::string SeccompFilter::Render() const {
  std::string out = "# seccomp-filter v1\n";
  // Classes render in id order (stable: ids are unique).
  std::map<uint64_t, std::string> by_id;
  for (const auto& [prefix, id] : path_classes_) {
    by_id[id] = prefix;
  }
  for (const auto& [id, prefix] : by_id) {
    out += StrFormat("class %llu %s\n", (unsigned long long)id, prefix.c_str());
  }
  for (Sysno nr : AllSysnos()) {
    size_t i = static_cast<size_t>(nr);
    if (!allowed_[i]) {
      continue;
    }
    if (!has_rules_[i]) {
      out += StrFormat("allow %s\n", SysnoName(nr));
      continue;
    }
    for (const SeccompRule& rule : rules_.at(static_cast<uint16_t>(i))) {
      out += StrFormat("allow %s if", SysnoName(nr));
      bool first = true;
      for (const SeccompPredicate& p : rule.preds) {
        if (!first) {
          out += " &&";
        }
        first = false;
        const char* slot = p.arg == kSeccompArgPath
                               ? "path"
                               : (p.arg == 0 ? "arg0" : (p.arg == 1 ? "arg1" : "arg2"));
        if (p.cmp == SeccompCmp::kMaskedEq) {
          out += StrFormat(" %s masked_eq 0x%llx 0x%llx", slot,
                           (unsigned long long)p.mask, (unsigned long long)p.value);
        } else {
          out += StrFormat(" %s %s %llu", slot, SeccompCmpName(p.cmp),
                           (unsigned long long)p.value);
        }
      }
      out += "\n";
    }
  }
  return out;
}

Result<SeccompFilter::Spec> SeccompFilter::ParseSpec(std::string_view text) {
  Spec spec;
  size_t pos = 0;
  int lineno = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line =
        nl == std::string_view::npos ? text.substr(pos) : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> toks = FilterTokens(line);
    if (toks.empty()) {
      continue;
    }
    if (toks[0] == "class") {
      if (toks.size() != 3) {
        return Error(Errno::kEINVAL, StrFormat("line %d: class <id> <prefix>", lineno));
      }
      std::optional<uint64_t> id = ParseFilterUint(toks[1]);
      if (!id.has_value() || *id == 0) {
        return Error(Errno::kEINVAL, StrFormat("line %d: bad class id", lineno));
      }
      spec.path_classes.emplace_back(toks[2], *id);
      continue;
    }
    if (toks[0] != "allow") {
      return Error(Errno::kEINVAL,
                   StrFormat("line %d: expected 'allow' or 'class'", lineno));
    }
    if (toks.size() < 2) {
      return Error(Errno::kEINVAL, StrFormat("line %d: allow <syscall>", lineno));
    }
    std::optional<Sysno> nr = SysnoFromName(toks[1]);
    if (!nr.has_value()) {
      return Error(Errno::kEINVAL,
                   StrFormat("line %d: unknown syscall '%s'", lineno, toks[1].c_str()));
    }
    uint16_t num = static_cast<uint16_t>(*nr);
    spec.allowed.set(num);
    if (toks.size() == 2) {
      continue;  // unconditional allow
    }
    if (toks[2] != "if") {
      return Error(Errno::kEINVAL, StrFormat("line %d: expected 'if'", lineno));
    }
    SeccompRule rule;
    size_t t = 3;
    while (t < toks.size()) {
      SeccompPredicate p;
      const std::string& slot = toks[t];
      if (slot == "path") {
        p.arg = kSeccompArgPath;
      } else if (slot == "arg0" || slot == "arg1" || slot == "arg2") {
        p.arg = static_cast<uint8_t>(slot[3] - '0');
      } else {
        return Error(Errno::kEINVAL,
                     StrFormat("line %d: bad argument slot '%s'", lineno, slot.c_str()));
      }
      if (t + 1 >= toks.size()) {
        return Error(Errno::kEINVAL, StrFormat("line %d: missing comparator", lineno));
      }
      std::optional<SeccompCmp> cmp = CmpFromName(toks[t + 1]);
      if (!cmp.has_value()) {
        return Error(Errno::kEINVAL, StrFormat("line %d: bad comparator '%s'", lineno,
                                               toks[t + 1].c_str()));
      }
      p.cmp = *cmp;
      size_t consumed;
      if (*cmp == SeccompCmp::kMaskedEq) {
        if (t + 3 >= toks.size()) {
          return Error(Errno::kEINVAL,
                       StrFormat("line %d: masked_eq <mask> <value>", lineno));
        }
        std::optional<uint64_t> mask = ParseFilterUint(toks[t + 2]);
        std::optional<uint64_t> value = ParseFilterUint(toks[t + 3]);
        if (!mask.has_value() || !value.has_value()) {
          return Error(Errno::kEINVAL, StrFormat("line %d: bad masked_eq operand", lineno));
        }
        p.mask = *mask;
        p.value = *value;
        consumed = 4;
      } else {
        if (t + 2 >= toks.size()) {
          return Error(Errno::kEINVAL, StrFormat("line %d: missing value", lineno));
        }
        std::optional<uint64_t> value = ParseFilterUint(toks[t + 2]);
        if (!value.has_value()) {
          return Error(Errno::kEINVAL, StrFormat("line %d: bad value '%s'", lineno,
                                                 toks[t + 2].c_str()));
        }
        p.value = *value;
        consumed = 3;
      }
      rule.preds.push_back(p);
      t += consumed;
      if (t < toks.size()) {
        if (toks[t] != "&&") {
          return Error(Errno::kEINVAL,
                       StrFormat("line %d: expected '&&' between predicates", lineno));
        }
        ++t;
      }
    }
    if (rule.preds.empty()) {
      return Error(Errno::kEINVAL, StrFormat("line %d: 'if' with no predicates", lineno));
    }
    spec.rules[num].push_back(std::move(rule));
  }
  return spec;
}

SyscallGate::SyscallGate(const Clock* clock) : clock_(clock) {
  static std::atomic<uint64_t> next_gate_id{1};
  id_ = next_gate_id.fetch_add(1, std::memory_order_relaxed);
  // Default all-set: with no explicit syscall filter, the global toggles
  // alone decide, which is exactly the pre-dispatch behavior.
  traced_syscalls_.set();
  timed_syscalls_.set();
}

void SyscallGate::RebuildDispatch(uint64_t tracer_gen) {
  std::lock_guard<std::mutex> lk(dispatch_mu_);
  uint64_t local_gen = local_gen_.load(std::memory_order_relaxed);
  bool tracing = tracer_ != nullptr && tracer_->enabled() &&
                 tracer_->point_enabled(TracepointId::kSyscall);
  bool sampled = tracing && tracer_->sample_rate(TracepointId::kSyscall) > 1;
  // Exemplars ride the tracer master switch (not the kSyscall point or the
  // traced set): the reservoir annotates the latency HISTOGRAMS, which
  // cover every syscall, and must keep catching tails for calls whose
  // trace is filtered or sampled away.
  bool exemplars = exemplars_enabled_ && tracer_ != nullptr && tracer_->enabled();
  for (size_t i = 0; i < kSysnoSlots; ++i) {
    uint8_t word = 0;
    if (tracing && traced_syscalls_[i]) {
      word |= kDispatchTrace;
      if (sampled) {
        word |= kDispatchSampled;
      }
    }
    if (exemplars) {
      word |= kDispatchExemplar;
    }
    if (wallclock_timing_ && timed_syscalls_[i]) {
      word |= kDispatchTimed;
    }
    dispatch_[i].store(word, std::memory_order_relaxed);
  }
  // Publish the generations the table was built from LAST: a racing reader
  // that sees them early at worst rebuilds once more.
  built_local_gen_.store(local_gen, std::memory_order_relaxed);
  built_tracer_gen_.store(tracer_gen, std::memory_order_relaxed);
}

uint64_t SyscallGate::TotalCalls() const {
  uint64_t total = 0;
  for (Sysno nr : AllSysnos()) {
    total += stats_[static_cast<size_t>(nr)].calls;
  }
  return total;
}

void SyscallGate::ExitSyscall(SyscallContext& ctx, Errno err) {
  uint64_t dur_ns = 0;
  uint64_t dur_ticks = clock_->Now() - ctx.start_tick;
  // Lock-free stats path: relaxed atomic increments, no shared lock. In
  // parallel mode every task thread retires syscalls through here.
  PerSyscall& s = stats_[static_cast<size_t>(ctx.nr)];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  if (err != Errno::kOk) {
    s.errors.fetch_add(1, std::memory_order_relaxed);
  }
  s.total_ticks.fetch_add(dur_ticks, std::memory_order_relaxed);
  s.lat_ticks.Observe(dur_ticks);
  if ((ctx.dispatch & kDispatchTimed) != 0) {
    dur_ns = MonotonicNanos() - ctx.start_ns;
    s.total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
    s.lat_ns.Observe(dur_ns);
  }
  if ((ctx.dispatch & kDispatchTrace) != 0) {
    // Self-accounting: the trace emission and reservoir update are the
    // observability pipeline's own cost, metered under the observer layer.
    LayerScope observer_scope(profiler_, Layer::kObserver);
    if ((ctx.dispatch & kDispatchExemplar) != 0) {
      RecordExemplar(ctx.nr, dur_ticks, dur_ns, ctx.span, ctx.pid);
    }
    RecordTrace(ctx, err, dur_ns, /*seccomp_denied=*/false);
  } else if ((ctx.dispatch & kDispatchExemplar) != 0) {
    // Untraced call, exemplars still armed: the budgeted always-on path.
    // No span to close and no root event to emit, so skip RecordTrace
    // entirely — the reservoir compare is the only observer work.
    LayerScope observer_scope(profiler_, Layer::kObserver);
    RecordExemplar(ctx.nr, dur_ticks, dur_ns, ctx.span, ctx.pid);
  }
  Tracer::SwapThreadMute(ctx.prev_muted);
}

void SyscallGate::RecordDenial(SyscallContext& ctx) {
  // Seccomp-killed semantic (see the header): the call is counted, but its
  // latency is not — the body never ran. Same reasoning excludes it from
  // the tail-exemplar reservoir.
  PerSyscall& s = stats_[static_cast<size_t>(ctx.nr)];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  s.errors.fetch_add(1, std::memory_order_relaxed);
  s.seccomp_denied.fetch_add(1, std::memory_order_relaxed);
  {
    LayerScope observer_scope(profiler_, Layer::kObserver);
    RecordTrace(ctx, Errno::kEPERM, /*dur_ns=*/0, /*seccomp_denied=*/true);
  }
  if (audit_sink_) {
    audit_sink_(StrFormat("seccomp: pid=%d comm=%s denied %s(%d)", ctx.pid,
                          ctx.comm ? ctx.comm->c_str() : "?", SysnoName(ctx.nr),
                          static_cast<int>(ctx.nr)));
  }
}

void SyscallGate::RecordTrace(SyscallContext& ctx, Errno err, uint64_t dur_ns,
                              bool seccomp_denied) {
  if (tracer_ == nullptr) {
    return;
  }
  if ((ctx.dispatch & kDispatchTrace) != 0) {
    TraceEvent& ev = tracer_->EmitSpanRoot(TracepointId::kSyscall, ctx.pid, ctx.span);
    ev.a = static_cast<uint64_t>(ctx.nr);
    ev.code = static_cast<int>(err);
    ev.dur = dur_ns;
    ev.tick = ctx.start_tick;
    ev.sname = SysnoName(ctx.nr);
    if (seccomp_denied) {
      ev.flags |= kTraceFlagSeccompDenied | kTraceFlagDenied;
    } else if (err != Errno::kOk) {
      ev.flags |= kTraceFlagDenied;
    }
    if (ctx.comm != nullptr) {
      ev.comm.assign(*ctx.comm);  // reuses the slot's capacity
    } else {
      ev.comm.assign("?");
    }
    ev.detail = std::move(ctx.args);
  }
  if (ctx.span != 0) {
    tracer_->EndSpan(ctx.pid, ctx.span);
  }
}

SyscallGate::ExemplarShard& SyscallGate::MyExemplarShard() {
  struct TlCache {
    uint64_t gate_id = 0;
    ExemplarShard* shard = nullptr;
  };
  thread_local TlCache cache;
  if (cache.gate_id == id_) {
    return *cache.shard;
  }
  std::lock_guard<std::mutex> lk(exemplar_mu_);
  std::thread::id me = std::this_thread::get_id();
  for (const std::unique_ptr<ExemplarShard>& s : exemplar_shards_) {
    if (s->owner == me) {
      cache = {id_, s.get()};
      return *s;
    }
  }
  exemplar_shards_.push_back(std::make_unique<ExemplarShard>());
  ExemplarShard& shard = *exemplar_shards_.back();
  shard.owner = me;
  cache = {id_, &shard};
  return shard;
}

void SyscallGate::RecordExemplar(Sysno nr, uint64_t dur_ticks, uint64_t dur_ns,
                                 uint64_t span, int pid) {
  ExemplarShard& shard = MyExemplarShard();
  std::unique_ptr<SysnoExemplars>& slot = shard.per_sysno[static_cast<size_t>(nr)];
  if (slot == nullptr) {
    slot = std::make_unique<SysnoExemplars>();
  }
  SysnoExemplars& res = *slot;
  if (res.used < kExemplarSlots) {
    res.slots[res.used++] = {dur_ticks, dur_ns, span, pid};
  } else {
    // Warm-reservoir fast path: STRICTLY slower than the cached minimum
    // replaces it; ties keep the incumbent (earliest call wins), which is
    // what makes the kept set deterministic under a deterministic clock.
    if (dur_ticks < res.min_ticks ||
        (dur_ticks == res.min_ticks && dur_ns <= res.min_ns)) {
      return;
    }
    size_t min_idx = 0;
    for (size_t i = 1; i < kExemplarSlots; ++i) {
      const ExemplarRecord& a = res.slots[i];
      const ExemplarRecord& b = res.slots[min_idx];
      if (a.dur_ticks < b.dur_ticks ||
          (a.dur_ticks == b.dur_ticks && a.dur_ns < b.dur_ns)) {
        min_idx = i;
      }
    }
    res.slots[min_idx] = {dur_ticks, dur_ns, span, pid};
  }
  if (res.used < kExemplarSlots) {
    return;  // min cache only matters once the reservoir is full
  }
  res.min_ticks = res.slots[0].dur_ticks;
  res.min_ns = res.slots[0].dur_ns;
  for (size_t i = 1; i < kExemplarSlots; ++i) {
    const ExemplarRecord& a = res.slots[i];
    if (a.dur_ticks < res.min_ticks ||
        (a.dur_ticks == res.min_ticks && a.dur_ns < res.min_ns)) {
      res.min_ticks = a.dur_ticks;
      res.min_ns = a.dur_ns;
    }
  }
}

std::vector<SyscallGate::ExemplarRecord> SyscallGate::ExemplarsFor(Sysno nr) const {
  std::vector<ExemplarRecord> all;
  {
    std::lock_guard<std::mutex> lk(exemplar_mu_);
    for (const std::unique_ptr<ExemplarShard>& shard : exemplar_shards_) {
      const std::unique_ptr<SysnoExemplars>& res = shard->per_sysno[static_cast<size_t>(nr)];
      if (res == nullptr) {
        continue;
      }
      for (size_t i = 0; i < res->used; ++i) {
        all.push_back(res->slots[i]);
      }
    }
  }
  // Slowest first; span breaks ties so the merged top-K is stable.
  std::sort(all.begin(), all.end(), [](const ExemplarRecord& a, const ExemplarRecord& b) {
    if (a.dur_ticks != b.dur_ticks) return a.dur_ticks > b.dur_ticks;
    if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
    return a.span < b.span;
  });
  if (all.size() > kExemplarSlots) {
    all.resize(kExemplarSlots);
  }
  return all;
}

std::vector<SyscallGate::TraceRecord> SyscallGate::TraceSnapshot() const {
  std::vector<TraceRecord> out;
  if (tracer_ == nullptr) {
    return out;
  }
  for (const TraceEvent& ev : tracer_->Snapshot()) {
    if (ev.tp != TracepointId::kSyscall) {
      continue;
    }
    TraceRecord rec;
    rec.seq = ev.seq;
    rec.tick = ev.tick;
    rec.pid = ev.pid;
    rec.nr = static_cast<Sysno>(ev.a);
    rec.err = static_cast<Errno>(ev.code);
    rec.dur_ns = ev.dur;
    rec.seccomp_denied = (ev.flags & kTraceFlagSeccompDenied) != 0;
    rec.comm = ev.comm;
    rec.args = ev.detail;
    out.push_back(std::move(rec));
  }
  return out;
}

void SyscallGate::ClearTrace() {
  if (tracer_ != nullptr) {
    tracer_->Clear();
  }
}

void SyscallGate::ResetStats() {
  for (PerSyscall& s : stats_) {
    s.calls.store(0, std::memory_order_relaxed);
    s.errors.store(0, std::memory_order_relaxed);
    s.seccomp_denied.store(0, std::memory_order_relaxed);
    s.rule_evals.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    s.total_ticks.store(0, std::memory_order_relaxed);
    s.lat_ticks.Reset();
    s.lat_ns.Reset();
  }
  std::lock_guard<std::mutex> lk(exemplar_mu_);
  for (const std::unique_ptr<ExemplarShard>& shard : exemplar_shards_) {
    for (std::unique_ptr<SysnoExemplars>& res : shard->per_sysno) {
      res.reset();
    }
  }
}

std::string SyscallGate::FormatStats() const {
  // Stable columnar format, one row per syscall that has been called at
  // least once (plus a totals row), modeled on /proc/net/snmp.
  std::string out =
      "# nr name calls errors seccomp_denied total_ns total_ticks\n";
  uint64_t calls = 0, errors = 0, denied = 0;
  for (Sysno nr : AllSysnos()) {
    const PerSyscall& s = stats_[static_cast<size_t>(nr)];
    if (s.calls == 0) continue;
    calls += s.calls;
    errors += s.errors;
    denied += s.seccomp_denied;
    out += StrFormat("%d %s %llu %llu %llu %llu %llu\n", static_cast<int>(nr),
                     SysnoName(nr), (unsigned long long)s.calls,
                     (unsigned long long)s.errors,
                     (unsigned long long)s.seccomp_denied,
                     (unsigned long long)s.total_ns,
                     (unsigned long long)s.total_ticks);
  }
  out += StrFormat("total: calls=%llu errors=%llu seccomp_denied=%llu\n",
                   (unsigned long long)calls, (unsigned long long)errors,
                   (unsigned long long)denied);
  return out;
}

std::string SyscallGate::FormatTrace() const {
  return tracer_ != nullptr ? tracer_->Format() : std::string();
}

void SyscallGate::CollectMetrics(MetricsBuilder& b) const {
  for (Sysno nr : AllSysnos()) {
    const PerSyscall& s = stats_[static_cast<size_t>(nr)];
    if (s.calls == 0) {
      continue;
    }
    MetricLabels labels = {{"syscall", SysnoName(nr)}};
    b.Counter("protego_syscall_calls_total", "Syscalls dispatched through the gate",
              labels, s.calls);
    b.Counter("protego_syscall_errors_total", "Syscalls that returned an errno", labels,
              s.errors);
    b.Counter("protego_syscall_seccomp_denied_total",
              "Syscalls killed by the task seccomp filter at entry", labels,
              s.seccomp_denied);
    if (s.rule_evals != 0) {
      b.Counter("protego_seccomp_rule_evals_total",
                "Argument-predicate rules evaluated by seccomp at entry", labels,
                s.rule_evals);
    }
    // The tick histogram carries the tail exemplars: each kept slowest-call
    // record renders on the bucket line its duration falls into, with span
    // and pid labels for cross-referencing the trace.
    std::vector<MetricExemplar> exemplars;
    for (const ExemplarRecord& ex : ExemplarsFor(nr)) {
      exemplars.push_back(MetricExemplar{
          {{"span", StrFormat("%llu", (unsigned long long)ex.span)},
           {"pid", StrFormat("%d", ex.pid)}},
          ex.dur_ticks});
    }
    b.HistoEx("protego_syscall_latency_ticks",
              "Per-syscall latency in virtual clock ticks", labels, s.lat_ticks,
              std::move(exemplars));
    if (s.lat_ns.count() > 0) {
      b.Histo("protego_syscall_latency_ns",
              "Per-syscall wall-clock latency in nanoseconds (profiling runs)", labels,
              s.lat_ns);
    }
  }
}

}  // namespace protego
