// The unified syscall entry path.
//
// Every public Kernel syscall routes through a single SyscallGate, mirroring
// Linux's syscall entry: a dispatch-table identity (Sysno, the Linux x86-64
// numbers), a per-call SyscallContext, and an EnterSyscall()/ExitSyscall()
// pair around the body. The gate is where cross-cutting policy and
// observability live, in this order:
//
//   1. seccomp-style filtering — a per-task filter, consulted BEFORE any
//      DAC or LSM work (as on Linux, where seccomp runs at syscall entry,
//      ahead of the security hooks). A filter is an allow bitset over
//      syscall numbers, optionally refined by per-syscall ARGUMENT RULES:
//      each rule is a conjunction of libseccomp-style predicates
//      (EQ/NE/LT/GE/MASKED_EQ on args 0-2, plus a pre-resolved path-class
//      comparison driven by a per-filter prefix table), and a syscall with
//      rules is allowed iff ANY rule matches. The number-only bitset test
//      stays the hot path; rule evaluation only runs for syscalls that
//      actually carry rules. Installation is a one-way latch: filters can
//      only ever be narrowed, never widened or removed — intersecting two
//      predicate filters conjoins their rule lists (cross product), so the
//      result admits only calls both filters admitted.
//   2. accounting — per-syscall hit/error counters, latency totals, and
//      log2-bucket latency histograms (exported at /proc/protego/metrics).
//   3. tracing — each call opens a decision span on the kernel-wide Tracer;
//      LSM/VFS/netfilter events emitted during the body are stamped with the
//      span id, and the syscall's own record (the span root) is emitted at
//      exit. /proc/protego/trace renders the resulting derivation trees;
//      stats live at /proc/protego/syscall_stats.
//
// Seccomp-killed calls (the filter refuses the syscall at entry) follow ONE
// consistent semantic everywhere:
//   - stats: counted in calls, errors, and seccomp_denied;
//   - trace: recorded as a span root with the seccomp_denied flag and EPERM;
//   - latency: EXCLUDED from totals and histograms — the body never ran, so
//     a duration would be meaningless and would skew the distributions.
// So for any syscall: lat_ticks.count() == calls - seccomp_denied.
//
// The gate is deliberately cheap: counters are flat arrays indexed by
// syscall number, trace slots are preallocated and reused, and argument
// strings are only materialized when the syscall tracepoint is enabled.
//
// Per-syscall dispatch: instead of re-deriving "is tracing on? is this
// syscall in the traced set? is timing on?" from scattered flags on every
// call, the gate folds the whole observability configuration into one
// uint8_t dispatch word per syscall number (dispatch_[nr]), rebuilt lazily
// whenever the tracer's config generation or the gate's own local
// generation moves. The hot path then pays TWO relaxed generation loads
// plus ONE indexed byte load to learn everything it needs:
//
//   kDispatchTrace    — emit a span root for this call (set only when the
//                       master switch, the kSyscall point, AND the
//                       per-syscall traced bitset all agree);
//   kDispatchSampled  — tracing is head-sampled (rate > 1): draw from the
//                       per-thread seeded stream once at entry and, on a
//                       "drop" draw, clear kDispatchTrace before any span
//                       or argument work happens;
//   kDispatchTimed    — take the two monotonic clock reads (wallclock
//                       timing on AND this syscall in the timed bitset);
//   kDispatchExemplar — feed the tail-exemplar reservoir. Deliberately
//                       NOT affected by sampling: the reservoir's whole
//                       point is that the K slowest calls per syscall stay
//                       explainable even when head sampling dropped their
//                       trace.

#ifndef SRC_KERNEL_SYSCALL_H_
#define SRC_KERNEL_SYSCALL_H_

#include <atomic>
#include <bitset>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/attribution.h"
#include "src/base/clock.h"
#include "src/base/metrics.h"
#include "src/base/result.h"
#include "src/base/tracepoint.h"
#include "src/fault/fault.h"
#include "src/kernel/sched_iface.h"

namespace protego {

struct Task;
class MetricsBuilder;

// Syscall numbers, with Linux x86-64 values so traces read like strace.
// kClone stands in for the fork+execve+waitpid composite (Kernel::Spawn).
enum class Sysno : uint16_t {
  kRead = 0,
  kWrite = 1,
  kOpen = 2,
  kClose = 3,
  kStat = 4,
  kIoctl = 16,
  kAccess = 21,
  kGetPid = 39,
  kSocket = 41,
  kConnect = 42,
  kSendTo = 44,
  kRecvFrom = 45,
  kBind = 49,
  kListen = 50,
  kClone = 56,
  kExecve = 59,
  kWait4 = 61,  // Kernel::WaitPid (collect an async child's exit status)
  kFlock = 73,
  kGetDents = 78,
  kRename = 82,
  kMkdir = 83,
  kUnlink = 87,
  kSymlink = 88,
  kChmod = 90,
  kChown = 92,
  kGetRlimit = 97,
  kSetuid = 105,
  kSetgid = 106,
  kSetreuid = 113,  // Kernel::Seteuid (glibc implements seteuid via setreuid)
  kSetgroups = 116,
  kSetRlimit = 160,
  kMount = 165,
  kUmount2 = 166,
  kUnshare = 272,
  kSeccomp = 317,
};

// Dispatch-table width: one slot per possible syscall number.
inline constexpr size_t kSysnoSlots = 320;

// "open", "mount", ... — the strace-style name.
const char* SysnoName(Sysno nr);

// Reverse lookup for filter text and /proc command grammars.
std::optional<Sysno> SysnoFromName(std::string_view name);

// Every syscall number the gate dispatches, ascending (for serialization).
const std::vector<Sysno>& AllSysnos();

// Comparison operators for one argument predicate, mirroring libseccomp's
// SCMP_CMP_* set (SNIPPETS §1: SCMP_A0(SCMP_CMP_EQ, 3)).
enum class SeccompCmp : uint8_t {
  kEq,        // arg == value
  kNe,        // arg != value
  kLt,        // arg <  value
  kGe,        // arg >= value
  kMaskedEq,  // (arg & mask) == value
};

const char* SeccompCmpName(SeccompCmp cmp);

// The virtual argument slot holding the pre-resolved path class: the
// syscall's primary path argument mapped through the filter's prefix table
// (longest match wins; 0 = no prefix matched). Path-class predicates must
// use kEq — equality survives filter intersection (a merged prefix table
// can only steal matches, never create them), the other comparators would
// not.
inline constexpr uint8_t kSeccompArgPath = 3;

// One predicate over one argument slot.
struct SeccompPredicate {
  uint8_t arg = 0;  // 0..2 = raw args; kSeccompArgPath = path class
  SeccompCmp cmp = SeccompCmp::kEq;
  uint64_t value = 0;
  uint64_t mask = 0;  // kMaskedEq only

  bool operator==(const SeccompPredicate& o) const {
    return arg == o.arg && cmp == o.cmp && value == o.value && mask == o.mask;
  }
};

// A conjunction of predicates: the rule matches when every predicate holds.
// A syscall's rule list is a disjunction — any matching rule allows the call.
struct SeccompRule {
  std::vector<SeccompPredicate> preds;

  bool operator==(const SeccompRule& o) const { return preds == o.preds; }
};

// The raw argument view of one syscall, threaded from the Kernel wrappers
// through the gate so predicate filters (and the synthesis recorder) see
// the call the way strace would. All pointers borrow from the caller's
// frame and are only dereferenced on slow paths (rule evaluation against a
// path class, trace recording).
struct SyscallArgs {
  uint64_t a[3] = {0, 0, 0};
  const std::string* path = nullptr;  // primary path argument (possibly relative)
  const std::string* cwd = nullptr;   // resolution base for a relative path
  const std::string* str1 = nullptr;  // secondary string (mount source, rename dest, ...)
  const std::string* str2 = nullptr;  // tertiary string (mount fstype)
  const std::vector<std::string>* list = nullptr;  // argv / mount options
};

// A per-task seccomp-style filter: an allow bitset over syscall numbers,
// optionally refined with per-syscall argument rules. Tasks start with no
// filter (everything allowed); Kernel::SeccompSetFilter installs one, and
// reinstallation intersects with the existing filter so privilege can only
// ever shrink (the prctl-style one-way latch).
class SeccompFilter {
 public:
  // Conservative ceiling on the per-syscall rule list after intersection:
  // if the cross product of two rule lists exceeds this, the syscall is
  // denied outright (clearing the bit tightens, never widens).
  static constexpr size_t kMaxRulesPerSysno = 64;

  // The installable description of a filter. `rules` maps syscall number to
  // its OR-of-AND rule list; `path_classes` maps path prefixes to the class
  // ids path predicates compare against.
  struct Spec {
    std::bitset<kSysnoSlots> allowed;
    std::map<uint16_t, std::vector<SeccompRule>> rules;
    std::vector<std::pair<std::string, uint64_t>> path_classes;
  };

  SeccompFilter() = default;

  static SeccompFilter AllowList(const std::vector<Sysno>& allowed);

  // Validates and builds: rule sysnos must be allowed and in range, arg
  // indices 0..2 or kSeccompArgPath, path-class predicates kEq-only with a
  // class id present in `path_classes`, class ids nonzero and unique.
  static Result<SeccompFilter> FromSpec(const Spec& spec);

  // Parses the re-installable text rendering (see Render). Grammar:
  //   class <id> <prefix>
  //   allow <syscall>
  //   allow <syscall> if <pred> [&& <pred>]...
  //   <pred> := arg0|arg1|arg2|path eq|ne|lt|ge <uint>
  //           | arg0|arg1|arg2 masked_eq <mask> <value>
  // '#' starts a comment; values accept decimal or 0x-hex.
  static Result<Spec> ParseSpec(std::string_view text);

  // Number-only check (ignores argument rules): is the syscall admissible
  // for at least some arguments?
  bool Allows(Sysno nr) const { return allowed_[static_cast<size_t>(nr)]; }

  // Full check. For syscalls without rules this is the same single bitset
  // test as Allows(nr); otherwise evaluates the rule list and adds the
  // number of rules inspected to *rule_evals.
  bool AllowsArgs(Sysno nr, const SyscallArgs& args, uint32_t* rule_evals) const {
    size_t i = static_cast<size_t>(nr);
    if (!allowed_[i]) {
      return false;
    }
    if (!has_rules_[i]) {
      return true;
    }
    return EvalRules(static_cast<uint16_t>(i), args, rule_evals);
  }

  // The one-way latch: narrows this filter to the conjunction of both.
  // Bitsets intersect; where both sides carry rules for a syscall the rule
  // lists cross-multiply (every kept rule implies a rule of EACH side), and
  // prefix tables merge by prefix string with class ids remapped.
  void IntersectWith(const SeccompFilter& other);

  size_t allowed_count() const { return allowed_.count(); }
  bool has_any_rules() const { return has_rules_.any(); }
  size_t rule_count() const;
  const std::vector<std::pair<std::string, uint64_t>>& path_classes() const {
    return path_classes_;
  }

  // Renders the filter as re-installable policy text (ParseSpec-compatible,
  // byte-stable for identical filters).
  std::string Render() const;

 private:
  bool EvalRules(uint16_t nr, const SyscallArgs& args, uint32_t* rule_evals) const;
  // Longest-prefix match of the call's (absolutized) path argument against
  // the class table; 0 when there is no path or no prefix matches.
  uint64_t PathClassOf(const SyscallArgs& args) const;

  std::bitset<kSysnoSlots> allowed_;
  std::bitset<kSysnoSlots> has_rules_;
  std::map<uint16_t, std::vector<SeccompRule>> rules_;
  // Sorted by descending prefix length (then lexicographic) so the first
  // match is the longest.
  std::vector<std::pair<std::string, uint64_t>> path_classes_;
};

// Per-call state carried from EnterSyscall to ExitSyscall.
struct SyscallContext {
  Sysno nr{};
  int pid = 0;
  const std::string* comm = nullptr;  // borrowed from the task
  uint64_t start_tick = 0;            // virtual clock at entry
  uint64_t start_ns = 0;              // monotonic wall clock at entry (if timed)
  uint64_t span = 0;                  // decision span opened at entry (0 = untraced)
  uint8_t dispatch = 0;               // resolved dispatch word (kDispatch* bits)
  bool prev_muted = false;            // thread-mute state saved at entry
  std::string args;                   // formatted only when this call traces
};

class SyscallGate {
 public:
  static constexpr size_t kTraceCapacity = 256;

  // Dispatch-word bits (see the file comment). Resolved once per call.
  static constexpr uint8_t kDispatchTrace = 1 << 0;
  static constexpr uint8_t kDispatchExemplar = 1 << 1;
  static constexpr uint8_t kDispatchTimed = 1 << 2;
  static constexpr uint8_t kDispatchSampled = 1 << 3;

  // Tail-exemplar reservoir depth: the K slowest calls kept per syscall.
  static constexpr size_t kExemplarSlots = 4;

  // All fields are relaxed atomics: in parallel mode N task threads retire
  // syscalls concurrently, and the stats path must stay lock-free. Readers
  // (stats export, /proc) see per-field-consistent totals, which is the same
  // contract /proc/stat offers on SMP Linux.
  struct PerSyscall {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> errors{0};          // calls that returned a nonzero errno
    std::atomic<uint64_t> seccomp_denied{0};  // refused by the task's filter (subset of errors)
    std::atomic<uint64_t> rule_evals{0};      // argument rules inspected by predicate filters
    std::atomic<uint64_t> total_ns{0};        // wall-clock latency total (when timing is on)
    std::atomic<uint64_t> total_ticks{0};     // virtual-clock latency total
    Histogram lat_ticks;                      // virtual-clock latency distribution
    Histogram lat_ns;                         // wall-clock distribution (when timing is on)
  };

  // One syscall as the trace-driven synthesizer sees it: the caller's
  // identity, the raw argument words, and the string arguments copied out
  // (path absolutized against the task's cwd). Built only when a recorder
  // is attached.
  struct SyscallObservation {
    int pid = 0;
    Sysno nr{};
    Errno err = Errno::kOk;
    uint32_t ruid = 0;
    uint32_t euid = 0;
    uint64_t a0 = 0, a1 = 0, a2 = 0;
    std::string exe;   // task.exe_path at the time of the call
    std::string comm;
    std::string path;  // absolutized primary path argument ("" = none)
    std::string str1;
    std::string str2;
    std::vector<std::string> list;
  };
  using SyscallRecorder = std::function<void(const SyscallObservation&)>;

  // One row of the legacy structured trace view: the span-root (syscall)
  // events of the shared Tracer ring, reprojected into the pre-tracepoint
  // record shape. Kept so existing tests/tools keep working.
  struct TraceRecord {
    uint64_t seq = 0;
    uint64_t tick = 0;
    int pid = 0;
    Sysno nr{};
    Errno err = Errno::kOk;
    uint64_t dur_ns = 0;
    bool seccomp_denied = false;
    std::string comm;
    std::string args;
  };

  explicit SyscallGate(const Clock* clock);

  // Attaches the kernel-wide tracer (the Kernel does this at boot). Without
  // one, the gate still filters and accounts but emits no trace events.
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    BumpLocalGen();
  }
  Tracer* tracer() { return tracer_; }

  // Attaches the per-layer latency profiler. Detached (nullptr) or disabled,
  // every LayerScope on the entry path stays inert.
  void set_profiler(LayerProfiler* profiler) { profiler_ = profiler; }
  LayerProfiler* profiler() { return profiler_; }

  // Attaches the fault-injection registry: the gate stamps the per-call
  // {pid, sysno} fault context and evaluates the syscall_entry site before
  // running the body. Detached (nullptr) costs nothing.
  void set_faults(FaultRegistry* faults) { faults_ = faults; }
  FaultRegistry* faults() { return faults_; }

  // Attaches a deterministic scheduler: every syscall entry becomes a yield
  // point (the scheduler may hand the token to another task before the body
  // runs). Detached (nullptr) by default — the sequential fast path pays one
  // null check per syscall.
  void set_scheduler(TaskScheduler* scheduler) { scheduler_ = scheduler; }
  TaskScheduler* scheduler() { return scheduler_; }

  // Master switch. When off, the gate neither filters nor accounts — this
  // exists ONLY as the microbenchmark's no-gate baseline; a disabled gate
  // does not enforce seccomp filters.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Tracing toggle: forwards to the shared Tracer's master switch (the
  // /proc/protego/trace "on"/"off" commands land here).
  bool trace_enabled() const { return tracer_ != nullptr && tracer_->enabled(); }
  void set_trace_enabled(bool on) {
    if (tracer_ != nullptr) {
      tracer_->set_enabled(on);
    }
  }

  // Wall-clock latency accounting (two monotonic clock reads per syscall).
  // Off by default — latency totals normally come from the free virtual
  // clock; profiling sessions opt in to nanosecond timing.
  bool wallclock_timing() const { return wallclock_timing_; }
  void set_wallclock_timing(bool on) {
    wallclock_timing_ = on;
    BumpLocalGen();
  }

  // --- Per-syscall traced/timed sets -----------------------------------------
  //
  // Both default to all-set, so the pre-existing global toggles behave
  // unchanged; /proc/protego/trace "?syscalls=mount,execve" narrows the
  // traced set to the control-plane calls the operator cares about, which
  // is what makes "always-on" affordable: untraced syscalls resolve a
  // dispatch word with the trace bit clear and never touch the span map.

  bool syscall_traced(Sysno nr) const {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    return traced_syscalls_[static_cast<size_t>(nr)];
  }
  void SetSyscallTraced(Sysno nr, bool traced) {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    traced_syscalls_[static_cast<size_t>(nr)] = traced;
    BumpLocalGen();
  }
  void SetAllSyscallsTraced(bool traced) {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    if (traced) {
      traced_syscalls_.set();
    } else {
      traced_syscalls_.reset();
    }
    BumpLocalGen();
  }

  bool syscall_timed(Sysno nr) const {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    return timed_syscalls_[static_cast<size_t>(nr)];
  }
  void SetSyscallTimed(Sysno nr, bool timed) {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    timed_syscalls_[static_cast<size_t>(nr)] = timed;
    BumpLocalGen();
  }
  void SetAllSyscallsTimed(bool timed) {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
    if (timed) {
      timed_syscalls_.set();
    } else {
      timed_syscalls_.reset();
    }
    BumpLocalGen();
  }

  // Tail-exemplar reservoir toggle (on by default; costs one compare per
  // call once a syscall's reservoir is warm). Requires a tracer (exemplars
  // ride the tracer's master switch so a fully-off tracer pays nothing).
  bool exemplars_enabled() const { return exemplars_enabled_; }
  void set_exemplars_enabled(bool on) {
    exemplars_enabled_ = on;
    BumpLocalGen();
  }

  // One kept tail exemplar: the slowest calls per syscall, with enough
  // identity (span, pid) to cross-reference the trace.
  struct ExemplarRecord {
    uint64_t dur_ticks = 0;
    uint64_t dur_ns = 0;
    uint64_t span = 0;
    int pid = 0;
  };
  // Top-K exemplars for one syscall, slowest first (merged across thread
  // shards; exact when emitters are quiescent, like TraceSnapshot).
  std::vector<ExemplarRecord> ExemplarsFor(Sysno nr) const;

  // Resolves the dispatch word for one syscall number, rebuilding the table
  // first if either generation moved. Hot path: two relaxed loads and one
  // indexed byte load.
  uint8_t Dispatch(Sysno nr) {
    uint64_t tracer_gen = tracer_ != nullptr ? tracer_->config_gen() : 0;
    if (built_tracer_gen_.load(std::memory_order_relaxed) != tracer_gen ||
        built_local_gen_.load(std::memory_order_relaxed) !=
            local_gen_.load(std::memory_order_relaxed)) {
      RebuildDispatch(tracer_gen);
    }
    return dispatch_[static_cast<size_t>(nr)].load(std::memory_order_relaxed);
  }

  // Seccomp denials are forwarded here (the kernel wires this to Audit).
  void set_audit_sink(std::function<void(std::string)> sink) {
    audit_sink_ = std::move(sink);
  }

  // Attaches the trace-driven synthesis recorder: every retired syscall
  // (including seccomp denials) is mirrored to it as a SyscallObservation.
  // Detached (the default) the entry path pays one relaxed flag load. Must
  // only be swapped while no task threads are inside the gate; the recorder
  // itself must be thread-safe in parallel mode.
  void set_recorder(SyscallRecorder recorder) {
    recorder_ = std::move(recorder);
    has_recorder_.store(static_cast<bool>(recorder_), std::memory_order_release);
  }
  // Lets wrappers whose bodies consume their argument containers (execve
  // moves argv) make a recording copy only when someone is listening.
  bool recorder_attached() const {
    return has_recorder_.load(std::memory_order_relaxed);
  }

  const PerSyscall& stats(Sysno nr) const { return stats_[static_cast<size_t>(nr)]; }
  uint64_t TotalCalls() const;

  // Trace records (syscall span roots only), oldest first.
  std::vector<TraceRecord> TraceSnapshot() const;
  void ClearTrace();
  uint64_t trace_seq() const { return tracer_ != nullptr ? tracer_->seq() : 0; }
  // Events overwritten since the last clear (ring capacity exceeded).
  uint64_t trace_dropped() const { return tracer_ != nullptr ? tracer_->dropped() : 0; }

  // /proc/protego/syscall_stats and /proc/protego/trace bodies.
  std::string FormatStats() const;
  std::string FormatTrace() const;
  void ResetStats();

  // Reports per-syscall counters and latency histograms to the metrics
  // registry (protego_syscall_* families).
  void CollectMetrics(MetricsBuilder& b) const;

  // --- The entry path ---------------------------------------------------------
  //
  // Templated on the task type only to avoid a header cycle (task.h includes
  // this header for SeccompFilter); the single instantiation is Task.

  // Resolves the dispatch word for this call, applying the head-sampling
  // decision: when the syscall point is sampled (rate > 1), one draw from
  // the calling thread's seeded stream decides — a "drop" clears the trace
  // bit BEFORE any span or argument work, so sampled-out calls pay only the
  // draw. The exemplar bit survives sampling by design.
  uint8_t ResolveDispatch(Sysno nr) {
    uint8_t dispatch = Dispatch(nr);
    if ((dispatch & (kDispatchTrace | kDispatchSampled)) ==
            (kDispatchTrace | kDispatchSampled) &&
        !tracer_->SampleKeep(TracepointId::kSyscall)) {
      dispatch &= static_cast<uint8_t>(~kDispatchTrace);
    }
    return dispatch;
  }

  // Stamps the context, opens the decision span, and consults the task's
  // seccomp filter. Returns false (after recording the denial) if the filter
  // refuses the syscall — the caller must fail with EPERM without touching
  // DAC or the LSM stack. ctx.dispatch must already be resolved
  // (ResolveDispatch) — span bookkeeping keys off the trace bit, so calls
  // whose dispatch word says "no trace" never touch the span map.
  template <typename TaskT>
  bool EnterSyscall(SyscallContext& ctx, const TaskT& task, Sysno nr,
                    const SyscallArgs& sargs) {
    ctx.nr = nr;
    ctx.pid = task.pid;
    ctx.comm = &task.comm;
    ctx.start_tick = clock_->Now();
    if ((ctx.dispatch & kDispatchTrace) != 0) {
      ctx.span = tracer_->BeginSpan(ctx.pid);
    }
    // An untraced call mutes the span-scoped decision points for its
    // duration (they would be orphan noise and still pay sampling draws);
    // ExitSyscall / the denial path restore the saved state, so nested
    // syscalls compose.
    ctx.prev_muted = Tracer::SwapThreadMute((ctx.dispatch & kDispatchTrace) == 0);
    bool denied = false;
    if (task.seccomp != nullptr) {
      LayerScope seccomp_scope(profiler_, Layer::kSeccomp);
      uint32_t evals = 0;
      denied = !task.seccomp->AllowsArgs(nr, sargs, &evals);
      if (evals != 0) {
        stats_[static_cast<size_t>(nr)].rule_evals.fetch_add(evals,
                                                             std::memory_order_relaxed);
      }
    }
    if (denied) {
      RecordDenial(ctx);
      Tracer::SwapThreadMute(ctx.prev_muted);
      return false;
    }
    if ((ctx.dispatch & kDispatchTimed) != 0) {
      ctx.start_ns = MonotonicNanos();
    }
    return true;
  }

  // Accounts the completed syscall, emits the span-root trace event, and
  // closes the span.
  void ExitSyscall(SyscallContext& ctx, Errno err);

  // Wraps one syscall body. `sargs` is the raw argument view consumed by
  // predicate filters and the synthesis recorder; `args_fn() -> std::string`
  // is only invoked when the syscall tracepoint is enabled; `body() ->
  // Result<T>` is the pre-existing syscall implementation (DAC + LSM +
  // work).
  template <typename T, typename TaskT, typename ArgsFn, typename BodyFn>
  Result<T> Run(TaskT& task, Sysno nr, SyscallArgs sargs, ArgsFn&& args_fn,
                BodyFn&& body) {
    if (scheduler_ != nullptr) {
      // The yield point: under the deterministic scheduler every syscall
      // entry is a potential context switch, BEFORE any gate work, so the
      // trace/stats a schedule produces reflect the order the scheduler
      // chose.
      scheduler_->OnSyscallEntry(task.pid, nr);
    }
    if (!enabled_) {
      return body();
    }
    // The gate frame is the attribution ROOT: everything the syscall does
    // (seccomp, DAC, LSM, VFS, netfilter, the body, and the observability
    // pipeline itself) nests inside it, so summed per-layer self time
    // telescopes back to this frame's inclusive time.
    LayerScope gate_scope(profiler_, Layer::kGate);
    SyscallContext ctx;
    ctx.dispatch = ResolveDispatch(nr);
    if ((ctx.dispatch & kDispatchTrace) != 0) {
      ctx.args = args_fn();
    }
    sargs.cwd = &task.cwd;
    // Identity is captured at ENTRY: an execve must be attributed to the
    // image that issued it (whose filter admitted the call), not the image
    // it becomes, and a setuid to the credentials it held when it asked.
    EntrySnapshot snap;
    const bool recording = has_recorder_.load(std::memory_order_relaxed);
    if (recording) {
      snap = SnapshotTask(task);
    }
    if (!EnterSyscall(ctx, task, nr, sargs)) {
      if (recording) {
        RecordObservation(snap, nr, sargs, Errno::kEPERM);
      }
      return Error(Errno::kEPERM, std::string("seccomp: ") + SysnoName(nr));
    }
    if (faults_ != nullptr && faults_->any_enabled()) {
      // Stamp the fault context for the body's duration so pid/syscall
      // filters on nested sites (vfs/lsm/fd alloc) match this call. The
      // previous context is restored on exit — syscalls nest via
      // Spawn/Execve, and the outer call's filters must survive.
      FaultContext prev =
          faults_->SwapContext(FaultContext{task.pid, static_cast<int>(nr)});
      Errno fault = faults_->Evaluate(FaultSite::kSyscallEntry);
      if (fault != Errno::kOk) {
        ExitSyscall(ctx, fault);
        faults_->SwapContext(prev);
        return Error(fault,
                     std::string("fault-injected at syscall entry: ") + SysnoName(nr));
      }
      Result<T> r = body();
      ExitSyscall(ctx, r.code());
      faults_->SwapContext(prev);
      if (recording) {
        RecordObservation(snap, nr, sargs, r.code());
      }
      return r;
    }
    Result<T> r = body();
    ExitSyscall(ctx, r.code());
    if (recording) {
      RecordObservation(snap, nr, sargs, r.code());
    }
    return r;
  }

  // getpid(2) cannot fail, so it gets an infallible fast path. A filter that
  // denies getpid yields -1 (and the denial is traced) rather than an errno.
  template <typename TaskT>
  int RunGetPid(const TaskT& task) {
    if (scheduler_ != nullptr) {
      scheduler_->OnSyscallEntry(task.pid, Sysno::kGetPid);
    }
    if (!enabled_) {
      return task.pid;
    }
    LayerScope gate_scope(profiler_, Layer::kGate);
    SyscallContext ctx;
    ctx.dispatch = ResolveDispatch(Sysno::kGetPid);
    SyscallArgs sargs;
    EntrySnapshot snap;
    const bool recording = has_recorder_.load(std::memory_order_relaxed);
    if (recording) {
      snap = SnapshotTask(task);
    }
    if (!EnterSyscall(ctx, task, Sysno::kGetPid, sargs)) {
      if (recording) {
        RecordObservation(snap, Sysno::kGetPid, sargs, Errno::kEPERM);
      }
      return -1;
    }
    ExitSyscall(ctx, Errno::kOk);
    if (recording) {
      RecordObservation(snap, Sysno::kGetPid, sargs, Errno::kOk);
    }
    return task.pid;
  }

 private:
  // One syscall's tail reservoir: the K slowest calls seen by one thread.
  // min_* cache the smallest kept key so a warm reservoir rejects a typical
  // call with one compare.
  struct SysnoExemplars {
    ExemplarRecord slots[kExemplarSlots];
    size_t used = 0;
    uint64_t min_ticks = 0;
    uint64_t min_ns = 0;
  };
  // Per-thread exemplar shard (single writer, same discipline as the
  // Tracer's ring shards): per-sysno reservoirs allocated lazily, so a
  // thread that never calls mount never pays for a mount reservoir.
  struct ExemplarShard {
    std::thread::id owner;
    std::unique_ptr<SysnoExemplars> per_sysno[kSysnoSlots];
  };

  // The caller-side identity of one syscall, captured at entry (see Run).
  struct EntrySnapshot {
    int pid = 0;
    uint32_t ruid = 0;
    uint32_t euid = 0;
    std::string exe;
    std::string comm;
    std::string cwd;
  };
  template <typename TaskT>
  static EntrySnapshot SnapshotTask(const TaskT& task) {
    EntrySnapshot snap;
    snap.pid = task.pid;
    snap.ruid = task.cred.ruid;
    snap.euid = task.cred.euid;
    snap.exe = task.exe_path;
    snap.comm = task.comm;
    snap.cwd = task.cwd;
    return snap;
  }

  // Mirrors one retired call to the synthesis recorder. String arguments
  // are copied out here — the observation must outlive the caller's frame —
  // and a relative path is absolutized against the entry-time cwd so
  // enforcement and synthesis agree on path classes.
  void RecordObservation(const EntrySnapshot& snap, Sysno nr, const SyscallArgs& sargs,
                         Errno err) {
    SyscallObservation ob;
    ob.pid = snap.pid;
    ob.nr = nr;
    ob.err = err;
    ob.ruid = snap.ruid;
    ob.euid = snap.euid;
    ob.a0 = sargs.a[0];
    ob.a1 = sargs.a[1];
    ob.a2 = sargs.a[2];
    ob.exe = snap.exe;
    ob.comm = snap.comm;
    if (sargs.path != nullptr) {
      if (!sargs.path->empty() && (*sargs.path)[0] == '/') {
        ob.path = *sargs.path;
      } else {
        ob.path = snap.cwd + "/" + *sargs.path;
      }
    }
    if (sargs.str1 != nullptr) {
      ob.str1 = *sargs.str1;
    }
    if (sargs.str2 != nullptr) {
      ob.str2 = *sargs.str2;
    }
    if (sargs.list != nullptr) {
      ob.list = *sargs.list;
    }
    recorder_(ob);
  }

  void RecordDenial(SyscallContext& ctx);
  // Emits the span-root event for the completed call (consumes ctx.args)
  // and closes the span.
  void RecordTrace(SyscallContext& ctx, Errno err, uint64_t dur_ns, bool seccomp_denied);
  // Offers one completed call to the calling thread's tail reservoir.
  void RecordExemplar(Sysno nr, uint64_t dur_ticks, uint64_t dur_ns, uint64_t span,
                      int pid);
  ExemplarShard& MyExemplarShard();

  void BumpLocalGen() { local_gen_.fetch_add(1, std::memory_order_relaxed); }
  void RebuildDispatch(uint64_t tracer_gen);

  const Clock* clock_;
  Tracer* tracer_ = nullptr;
  FaultRegistry* faults_ = nullptr;
  TaskScheduler* scheduler_ = nullptr;
  LayerProfiler* profiler_ = nullptr;
  bool enabled_ = true;
  bool wallclock_timing_ = false;
  bool exemplars_enabled_ = true;
  PerSyscall stats_[kSysnoSlots] = {};
  std::function<void(std::string)> audit_sink_;
  SyscallRecorder recorder_;
  std::atomic<bool> has_recorder_{false};

  // --- Dispatch table ---------------------------------------------------------
  // dispatch_[nr] is the resolved word; the two built_* generations record
  // the configuration it was built from. local_gen_ covers gate-local knobs
  // (bitsets, timing, exemplars); the tracer's config_gen covers the master
  // switch, the point mask, and sample rates.
  std::atomic<uint8_t> dispatch_[kSysnoSlots] = {};
  std::atomic<uint64_t> local_gen_{1};
  std::atomic<uint64_t> built_local_gen_{0};
  std::atomic<uint64_t> built_tracer_gen_{~uint64_t{0}};
  mutable std::mutex dispatch_mu_;  // guards the bitsets and rebuilds
  std::bitset<kSysnoSlots> traced_syscalls_;
  std::bitset<kSysnoSlots> timed_syscalls_;

  // --- Exemplar reservoir -----------------------------------------------------
  uint64_t id_;  // process-unique, for the thread-local shard cache
  mutable std::mutex exemplar_mu_;  // guards exemplar_shards_ growth + reads
  std::vector<std::unique_ptr<ExemplarShard>> exemplar_shards_;
};

}  // namespace protego

#endif  // SRC_KERNEL_SYSCALL_H_
