// The unified syscall entry path.
//
// Every public Kernel syscall routes through a single SyscallGate, mirroring
// Linux's syscall entry: a dispatch-table identity (Sysno, the Linux x86-64
// numbers), a per-call SyscallContext, and an EnterSyscall()/ExitSyscall()
// pair around the body. The gate is where cross-cutting policy and
// observability live, in this order:
//
//   1. seccomp-style filtering — a per-task allow bitset, consulted BEFORE
//      any DAC or LSM work (as on Linux, where seccomp runs at syscall
//      entry, ahead of the security hooks). Installation is a one-way
//      latch: filters can only ever be narrowed, never widened or removed.
//   2. accounting — per-syscall hit/error counters and latency totals.
//   3. tracing — a bounded structured ring of recent calls (strace-shaped),
//      exported at /proc/protego/trace; stats at /proc/protego/syscall_stats.
//
// The gate is deliberately cheap: counters are flat arrays indexed by
// syscall number, trace slots are preallocated and reused, and argument
// strings are only materialized when tracing is enabled.

#ifndef SRC_KERNEL_SYSCALL_H_
#define SRC_KERNEL_SYSCALL_H_

#include <bitset>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/result.h"

namespace protego {

struct Task;

// Syscall numbers, with Linux x86-64 values so traces read like strace.
// kClone stands in for the fork+execve+waitpid composite (Kernel::Spawn).
enum class Sysno : uint16_t {
  kRead = 0,
  kWrite = 1,
  kOpen = 2,
  kClose = 3,
  kStat = 4,
  kIoctl = 16,
  kAccess = 21,
  kGetPid = 39,
  kSocket = 41,
  kConnect = 42,
  kSendTo = 44,
  kRecvFrom = 45,
  kBind = 49,
  kListen = 50,
  kClone = 56,
  kExecve = 59,
  kGetDents = 78,
  kRename = 82,
  kMkdir = 83,
  kUnlink = 87,
  kChmod = 90,
  kChown = 92,
  kSetuid = 105,
  kSetgid = 106,
  kSetreuid = 113,  // Kernel::Seteuid (glibc implements seteuid via setreuid)
  kSetgroups = 116,
  kMount = 165,
  kUmount2 = 166,
  kUnshare = 272,
  kSeccomp = 317,
};

// Dispatch-table width: one slot per possible syscall number.
inline constexpr size_t kSysnoSlots = 320;

// "open", "mount", ... — the strace-style name.
const char* SysnoName(Sysno nr);

// Every syscall number the gate dispatches, ascending (for serialization).
const std::vector<Sysno>& AllSysnos();

// A per-task seccomp-style allow list over syscall numbers. Tasks start
// with no filter (everything allowed); Kernel::SeccompSetFilter installs
// one, and reinstallation intersects with the existing filter so privilege
// can only ever shrink (the prctl-style one-way latch).
class SeccompFilter {
 public:
  static SeccompFilter AllowList(const std::vector<Sysno>& allowed);

  bool Allows(Sysno nr) const { return allowed_[static_cast<size_t>(nr)]; }
  void IntersectWith(const SeccompFilter& other) { allowed_ &= other.allowed_; }
  size_t allowed_count() const { return allowed_.count(); }

 private:
  std::bitset<kSysnoSlots> allowed_;
};

// Per-call state carried from EnterSyscall to ExitSyscall.
struct SyscallContext {
  Sysno nr{};
  int pid = 0;
  const std::string* comm = nullptr;  // borrowed from the task
  uint64_t start_tick = 0;            // virtual clock at entry
  uint64_t start_ns = 0;              // monotonic wall clock at entry (if timed)
  std::string args;                   // formatted only when tracing is enabled
};

class SyscallGate {
 public:
  static constexpr size_t kTraceCapacity = 256;

  struct PerSyscall {
    uint64_t calls = 0;
    uint64_t errors = 0;          // calls that returned a nonzero errno
    uint64_t seccomp_denied = 0;  // refused by the task's filter (subset of errors)
    uint64_t total_ns = 0;        // wall-clock latency total (when timing is on)
    uint64_t total_ticks = 0;     // virtual-clock latency total
  };

  // One structured trace record (the /proc/protego/trace row).
  struct TraceRecord {
    uint64_t seq = 0;
    uint64_t tick = 0;
    int pid = 0;
    Sysno nr{};
    Errno err = Errno::kOk;
    uint64_t dur_ns = 0;
    bool seccomp_denied = false;
    std::string comm;
    std::string args;
  };

  explicit SyscallGate(const Clock* clock) : clock_(clock) {
    trace_ring_.resize(kTraceCapacity);
  }

  // Master switch. When off, the gate neither filters nor accounts — this
  // exists ONLY as the microbenchmark's no-gate baseline; a disabled gate
  // does not enforce seccomp filters.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  bool trace_enabled() const { return trace_enabled_; }
  void set_trace_enabled(bool on) { trace_enabled_ = on; }

  // Wall-clock latency accounting (two monotonic clock reads per syscall).
  // Off by default — latency totals normally come from the free virtual
  // clock; profiling sessions opt in to nanosecond timing.
  bool wallclock_timing() const { return wallclock_timing_; }
  void set_wallclock_timing(bool on) { wallclock_timing_ = on; }

  // Seccomp denials are forwarded here (the kernel wires this to Audit).
  void set_audit_sink(std::function<void(std::string)> sink) {
    audit_sink_ = std::move(sink);
  }

  const PerSyscall& stats(Sysno nr) const { return stats_[static_cast<size_t>(nr)]; }
  uint64_t TotalCalls() const;

  // Trace records, oldest first.
  std::vector<TraceRecord> TraceSnapshot() const;
  void ClearTrace();
  uint64_t trace_seq() const { return trace_seq_; }
  // Records overwritten since the last clear (ring capacity exceeded).
  uint64_t trace_dropped() const {
    return trace_seq_ > kTraceCapacity ? trace_seq_ - kTraceCapacity : 0;
  }

  // /proc/protego/syscall_stats and /proc/protego/trace bodies.
  std::string FormatStats() const;
  std::string FormatTrace() const;
  void ResetStats();

  // --- The entry path ---------------------------------------------------------
  //
  // Templated on the task type only to avoid a header cycle (task.h includes
  // this header for SeccompFilter); the single instantiation is Task.

  // Stamps the context and consults the task's seccomp filter. Returns false
  // (after recording the denial) if the filter refuses the syscall — the
  // caller must fail with EPERM without touching DAC or the LSM stack.
  template <typename TaskT>
  bool EnterSyscall(SyscallContext& ctx, const TaskT& task, Sysno nr) {
    ctx.nr = nr;
    ctx.pid = task.pid;
    ctx.comm = &task.comm;
    ctx.start_tick = clock_->Now();
    if (task.seccomp != nullptr && !task.seccomp->Allows(nr)) {
      RecordDenial(ctx);
      return false;
    }
    if (wallclock_timing_) {
      ctx.start_ns = MonotonicNanos();
    }
    return true;
  }

  // Accounts the completed syscall and appends a trace record.
  void ExitSyscall(SyscallContext& ctx, Errno err);

  // Wraps one syscall body. `args_fn() -> std::string` is only invoked when
  // tracing is enabled; `body() -> Result<T>` is the pre-existing syscall
  // implementation (DAC + LSM + work).
  template <typename T, typename TaskT, typename ArgsFn, typename BodyFn>
  Result<T> Run(TaskT& task, Sysno nr, ArgsFn&& args_fn, BodyFn&& body) {
    if (!enabled_) {
      return body();
    }
    SyscallContext ctx;
    if (trace_enabled_) {
      ctx.args = args_fn();
    }
    if (!EnterSyscall(ctx, task, nr)) {
      return Error(Errno::kEPERM, std::string("seccomp: ") + SysnoName(nr));
    }
    Result<T> r = body();
    ExitSyscall(ctx, r.code());
    return r;
  }

  // getpid(2) cannot fail, so it gets an infallible fast path. A filter that
  // denies getpid yields -1 (and the denial is traced) rather than an errno.
  template <typename TaskT>
  int RunGetPid(const TaskT& task) {
    if (!enabled_) {
      return task.pid;
    }
    SyscallContext ctx;
    if (!EnterSyscall(ctx, task, Sysno::kGetPid)) {
      return -1;
    }
    ExitSyscall(ctx, Errno::kOk);
    return task.pid;
  }

 private:
  void RecordDenial(SyscallContext& ctx);
  // Consumes ctx.args (moved into the ring slot).
  void RecordTrace(SyscallContext& ctx, Errno err, uint64_t dur_ns, bool seccomp_denied);

  const Clock* clock_;
  bool enabled_ = true;
  bool trace_enabled_ = true;
  bool wallclock_timing_ = false;
  PerSyscall stats_[kSysnoSlots] = {};
  std::vector<TraceRecord> trace_ring_;  // fixed kTraceCapacity slots, reused
  uint64_t trace_seq_ = 0;               // next sequence number
  std::function<void(std::string)> audit_sink_;
};

}  // namespace protego

#endif  // SRC_KERNEL_SYSCALL_H_
