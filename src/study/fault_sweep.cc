#include "src/study/fault_sweep.h"

#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/conc/explore.h"
#include "src/vfs/types.h"

namespace protego {

namespace {

constexpr const char* kFaultProc = "/proc/protego/fault_inject";

// Aborts on harness-setup failure: a sweep that cannot even arm its fault
// site would otherwise report vacuous passes.
void Must(const Result<Unit>& r, const char* what) {
  if (!r.ok()) {
    LogError(StrFormat("fault_sweep: %s: %s", what, r.error().ToString().c_str()));
    abort();
  }
}

// Credential signature: after a FAILED privileged transition, any drift in
// these fields is retained privilege.
std::string CredSig(const Cred& c) {
  return StrFormat("uid=%u/%u/%u/%u gid=%u/%u/%u/%u caps=%llx/%llx;", c.ruid, c.euid, c.suid,
                   c.fsuid, c.rgid, c.egid, c.sgid, c.fsgid,
                   (unsigned long long)c.effective.bits(),
                   (unsigned long long)c.permitted.bits());
}

uint64_t CountFaultEvents(const Tracer& tracer) {
  uint64_t n = 0;
  for (const TraceEvent& ev : tracer.Snapshot()) {
    if (ev.tp == TracepointId::kFaultInject) {
      ++n;
    }
  }
  return n;
}

// What one run of a site scenario observed beyond the common audits. The
// fingerprint folds in every scenario-specific observable; the replay audit
// requires it to be identical across two fresh runs of the same tuple.
struct SiteOutcome {
  Errno observed = Errno::kOk;
  bool contract_ok = true;  // scenario-specific assertions beyond the errno
  std::string fingerprint;
  std::string detail;
};

struct SiteScenario {
  FaultSite site;
  const char* name;
  Errno expected;
  // The fault_inject directive; built after login so pid filters can
  // reference the (deterministic) session pids.
  std::function<std::string(Task& root, Task& alice)> config;
  std::function<SiteOutcome(SimSystem&, Task& root, Task& alice)> drive;
};

// One full observation: fresh system, enable the site through the real
// control file, drive the workload, audit the aftermath.
struct RunObservation {
  SiteOutcome outcome;
  uint64_t injections = 0;
  uint64_t trace_hits = 0;
  bool fd_ok = false;
  bool vfs_ok = false;
  bool cred_ok = false;
  std::string config_line;
  std::string detail;
};

RunObservation ObserveOnce(const SiteScenario& sc) {
  RunObservation obs;
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  Task& root = sys.Login("root");
  Task& alice = sys.Login("alice");
  obs.config_line = sc.config(root, alice);

  auto enabled = k.WriteWholeFile(root, kFaultProc, obs.config_line + "\n");
  if (!enabled.ok()) {
    obs.detail = "enabling the site failed: " + enabled.error().ToString();
    obs.outcome.contract_ok = false;
    return obs;
  }
  // Count trace events from the moment the site is armed, so ring eviction
  // by the (long) boot/login prologue cannot hide an injection.
  k.tracer().Clear();

  size_t root_fds = root.fds.size();
  size_t alice_fds = alice.fds.size();
  size_t orphans_before = k.vfs().orphan_count();
  std::string creds_before = CredSig(root.cred) + CredSig(alice.cred);

  obs.outcome = sc.drive(sys, root, alice);

  obs.injections = k.faults().injected(sc.site);
  obs.trace_hits = CountFaultEvents(k.tracer());
  obs.fd_ok = root.fds.size() == root_fds && alice.fds.size() == alice_fds;
  if (!obs.fd_ok) {
    obs.detail += StrFormat("fd leak: root %zu->%zu alice %zu->%zu; ", root_fds,
                            root.fds.size(), alice_fds, alice.fds.size());
  }
  Result<Unit> audit = k.vfs().AuditBlockAccounting();
  bool orphans_stable = k.vfs().orphan_count() == orphans_before;
  obs.vfs_ok = audit.ok() && orphans_stable;
  if (!audit.ok()) {
    obs.detail += "block audit: " + audit.error().ToString() + "; ";
  }
  if (!orphans_stable) {
    obs.detail += StrFormat("orphans %zu->%zu; ", orphans_before, k.vfs().orphan_count());
  }
  obs.cred_ok = CredSig(root.cred) + CredSig(alice.cred) == creds_before;
  if (!obs.cred_ok) {
    obs.detail += "session credentials drifted; ";
  }
  return obs;
}

FaultSiteAudit RunSite(const SiteScenario& sc) {
  FaultSiteAudit audit;
  audit.site = sc.site;
  audit.scenario = sc.name;
  audit.expected = sc.expected;

  RunObservation first = ObserveOnce(sc);
  RunObservation second = ObserveOnce(sc);  // identical tuple, fresh system

  audit.config_line = first.config_line;
  audit.observed = first.outcome.observed;
  audit.errno_ok = first.outcome.observed == sc.expected && first.outcome.contract_ok;
  audit.injections = first.injections;
  audit.trace_hits = first.trace_hits;
  audit.trace_ok = first.trace_hits == first.injections;
  audit.no_fd_leak = first.fd_ok;
  audit.vfs_ok = first.vfs_ok;
  audit.no_cred_retention = first.cred_ok;
  audit.replay_ok = first.outcome.observed == second.outcome.observed &&
                    first.outcome.fingerprint == second.outcome.fingerprint &&
                    first.injections == second.injections;
  audit.detail = first.detail + first.outcome.detail;
  if (!first.outcome.contract_ok && audit.detail.empty()) {
    audit.detail = "scenario contract violated";
  }
  if (!audit.replay_ok) {
    audit.detail += StrFormat("replay diverged: {%s|%s|%llu} vs {%s|%s|%llu}; ",
                              ErrnoName(first.outcome.observed),
                              first.outcome.fingerprint.c_str(),
                              (unsigned long long)first.injections,
                              ErrnoName(second.outcome.observed),
                              second.outcome.fingerprint.c_str(),
                              (unsigned long long)second.injections);
  }
  return audit;
}

// --- Per-site scenarios -------------------------------------------------------

std::vector<SiteScenario> BuildScenarios() {
  std::vector<SiteScenario> scenarios;

  // vnode allocation: creating a file fails with ENOMEM and leaves no
  // half-created directory entry behind.
  scenarios.push_back(
      {FaultSite::kVfsVnodeAlloc, "alice creates /tmp/sweep_new (O_CREAT)", Errno::kENOMEM,
       [](Task&, Task&) { return std::string("site=vfs_vnode_alloc error=ENOMEM times=1"); },
       [](SimSystem& sys, Task&, Task& alice) {
         SiteOutcome out;
         Kernel& k = sys.kernel();
         auto fd = k.Open(alice, "/tmp/sweep_new", kOCreat | kOWrOnly, 0644);
         if (fd.ok()) {
           (void)k.Close(alice, fd.value());
           out.contract_ok = false;
           out.detail = "create succeeded despite vnode fault; ";
         } else {
           out.observed = fd.error().code();
         }
         bool exists = k.vfs().Resolve("/tmp/sweep_new").ok();
         if (exists) {
           out.contract_ok = false;
           out.detail += "half-created file left behind; ";
         }
         out.fingerprint = StrFormat("exists=%d", exists ? 1 : 0);
         return out;
       }});

  // Block allocation: the open creates an empty file, the write fails with
  // ENOSPC, and no partial data is retained.
  scenarios.push_back(
      {FaultSite::kVfsBlockAlloc, "alice writes /tmp/sweep_data", Errno::kENOSPC,
       [](Task&, Task&) { return std::string("site=vfs_block_alloc error=ENOSPC times=1"); },
       [](SimSystem& sys, Task&, Task& alice) {
         SiteOutcome out;
         Kernel& k = sys.kernel();
         auto w = k.WriteWholeFile(alice, "/tmp/sweep_data", "sweep payload");
         if (w.ok()) {
           out.contract_ok = false;
           out.detail = "write succeeded despite block fault; ";
         } else {
           out.observed = w.error().code();
         }
         auto node = k.vfs().Resolve("/tmp/sweep_data");
         size_t size = node.ok() ? node.value()->inode().data.size() : 0;
         if (size != 0) {
           out.contract_ok = false;
           out.detail += StrFormat("partial write retained (%zu bytes); ", size);
         }
         out.fingerprint = StrFormat("exists=%d size=%zu", node.ok() ? 1 : 0, size);
         return out;
       }});

  // fd-table slot: the open fails with EMFILE before any fd is installed,
  // and the very next open (budget exhausted) succeeds.
  scenarios.push_back(
      {FaultSite::kFdAlloc, "alice opens /etc/passwd", Errno::kEMFILE,
       [](Task&, Task&) { return std::string("site=fd_alloc error=EMFILE times=1"); },
       [](SimSystem& sys, Task&, Task& alice) {
         SiteOutcome out;
         Kernel& k = sys.kernel();
         auto fd = k.Open(alice, "/etc/passwd", kORdOnly);
         if (fd.ok()) {
           (void)k.Close(alice, fd.value());
           out.contract_ok = false;
           out.detail = "open succeeded despite fd fault; ";
         } else {
           out.observed = fd.error().code();
         }
         auto retry = k.Open(alice, "/etc/passwd", kORdOnly);
         bool retry_ok = retry.ok();
         if (retry_ok) {
           (void)k.Close(alice, retry.value());
         } else {
           out.contract_ok = false;
           out.detail += "retry after exhausted budget failed; ";
         }
         out.fingerprint = StrFormat("retry=%d", retry_ok ? 1 : 0);
         return out;
       }});

  // Syscall-gate entry, pid- and syscall-filtered: alice's open dies with
  // EIO before the body runs; root's identical open is untouched.
  scenarios.push_back(
      {FaultSite::kSyscallEntry, "alice open() under pid+syscall filter", Errno::kEIO,
       [](Task&, Task& alice) {
         return StrFormat("site=syscall_entry error=EIO syscall=open pid=%d", alice.pid);
       },
       [](SimSystem& sys, Task& root, Task& alice) {
         SiteOutcome out;
         Kernel& k = sys.kernel();
         auto rfd = k.Open(root, "/etc/passwd", kORdOnly);
         bool root_ok = rfd.ok();
         if (root_ok) {
           (void)k.Close(root, rfd.value());
         } else {
           out.contract_ok = false;
           out.detail = "root open caught by alice-filtered site; ";
         }
         auto afd = k.Open(alice, "/etc/passwd", kORdOnly);
         if (afd.ok()) {
           (void)k.Close(alice, afd.value());
           out.contract_ok = false;
           out.detail += "alice open succeeded despite entry fault; ";
         } else {
           out.observed = afd.error().code();
         }
         out.fingerprint = StrFormat("root_ok=%d", root_ok ? 1 : 0);
         return out;
       }});

  // LSM hook dispatch fails CLOSED: a whitelist-permitted mount is denied
  // (EPERM, not the injected errno — the fault never reaches the caller,
  // the deny verdict does), nothing is cached, and the next attempt (budget
  // exhausted) is granted by the unchanged policy.
  scenarios.push_back(
      {FaultSite::kLsmHook, "alice mounts the cdrom, sb_mount faulted", Errno::kEPERM,
       [](Task&, Task&) {
         return std::string("site=lsm_hook error=EIO hook=sb_mount times=1");
       },
       [](SimSystem& sys, Task&, Task& alice) {
         SiteOutcome out;
         Kernel& k = sys.kernel();
         auto m1 = k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"});
         if (m1.ok()) {
           out.contract_ok = false;
           out.detail = "mount succeeded despite hook fault; ";
         } else {
           out.observed = m1.error().code();
         }
         uint64_t fail_closed = k.lsm().fail_closed_denials();
         if (fail_closed != 1) {
           out.contract_ok = false;
           out.detail += StrFormat("fail_closed_denials=%llu (want 1); ",
                                   (unsigned long long)fail_closed);
         }
         auto m2 = k.Mount(alice, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"});
         bool retry_ok = m2.ok();
         if (retry_ok) {
           (void)k.Umount(alice, "/media/cdrom");
         } else {
           out.contract_ok = false;
           out.detail += "policy-permitted mount still denied after fault; ";
         }
         out.fingerprint = StrFormat("fail_closed=%llu retry=%d",
                                     (unsigned long long)fail_closed, retry_ok ? 1 : 0);
         return out;
       }});

  // Netfilter chain evaluation fails CLOSED: the ping's packet is dropped
  // without consulting any rule; the send syscall itself succeeds (packets
  // vanish, syscalls don't fail) so ping reports loss and exits nonzero.
  scenarios.push_back(
      {FaultSite::kNetfilterEval, "alice pings the gateway, OUTPUT eval faulted",
       Errno::kOk,
       [](Task&, Task&) { return std::string("site=netfilter_eval error=EIO times=1"); },
       [](SimSystem& sys, Task&, Task& alice) {
         SiteOutcome out;
         auto ping = sys.RunCapture(alice, "/bin/ping", {"ping", "10.0.0.2", "1"});
         out.observed = ping.error;
         if (ping.exit_code == 0) {
           out.contract_ok = false;
           out.detail = "ping reported success through a failed-closed chain; ";
         }
         uint64_t drops = sys.kernel().net().netfilter().fail_closed_drops();
         if (drops < 1) {
           out.contract_ok = false;
           out.detail += "no fail-closed drop recorded; ";
         }
         out.fingerprint = StrFormat("exit=%d drops=%llu", ping.exit_code,
                                     (unsigned long long)drops);
         return out;
       }});

  // Policy-table compilation: the /proc write fails with ENOMEM, the
  // previous table stays in force byte-identically, the generation does not
  // move, and the next (fault-exhausted) identical write swaps cleanly.
  scenarios.push_back(
      {FaultSite::kPolicyCompile, "root rewrites /proc/protego/mounts", Errno::kENOMEM,
       [](Task&, Task&) { return std::string("site=policy_compile error=ENOMEM times=1"); },
       [](SimSystem& sys, Task& root, Task&) {
         SiteOutcome out;
         Kernel& k = sys.kernel();
         std::string before = k.ReadWholeFile(root, "/proc/protego/mounts").value_or("");
         uint64_t gen_before = k.lsm().policy_generation();
         auto w = k.WriteWholeFile(root, "/proc/protego/mounts", before);
         if (w.ok()) {
           out.contract_ok = false;
           out.detail = "swap succeeded despite compile fault; ";
         } else {
           out.observed = w.error().code();
         }
         std::string after = k.ReadWholeFile(root, "/proc/protego/mounts").value_or("!");
         uint64_t gen_after = k.lsm().policy_generation();
         bool identical = after == before;
         bool gen_stable = gen_after == gen_before;
         if (!identical) {
           out.contract_ok = false;
           out.detail += "table not byte-identical after failed swap; ";
         }
         if (!gen_stable) {
           out.contract_ok = false;
           out.detail += "generation moved on a failed swap; ";
         }
         auto retry = k.WriteWholeFile(root, "/proc/protego/mounts", before);
         bool retry_ok = retry.ok() && k.lsm().policy_generation() == gen_before + 1;
         if (!retry_ok) {
           out.contract_ok = false;
           out.detail += "fault-exhausted swap did not complete; ";
         }
         out.fingerprint = StrFormat("identical=%d gen_stable=%d retry=%d", identical ? 1 : 0,
                                     gen_stable ? 1 : 0, retry_ok ? 1 : 0);
         return out;
       }});

  // Auth-service round trip: sudo's authentication exchange dies before the
  // prompt; the delegation is refused, the target command never runs, and
  // no credential material leaks into the session transcript.
  scenarios.push_back(
      {FaultSite::kAuthRoundTrip, "alice runs sudo id, auth faulted", Errno::kOk,
       [](Task&, Task&) { return std::string("site=auth_round_trip error=EIO times=1"); },
       [](SimSystem& sys, Task&, Task& alice) {
         SiteOutcome out;
         auto run = sys.RunCapture(alice, "/usr/bin/sudo", {"sudo", "/usr/bin/id"});
         out.observed = run.error;
         if (run.exit_code == 0) {
           out.contract_ok = false;
           out.detail = "sudo succeeded without authentication; ";
         }
         if (run.out.find("uid=0") != std::string::npos) {
           out.contract_ok = false;
           out.detail += "delegated command ran as root; ";
         }
         if (run.out.find("$sim$") != std::string::npos ||
             run.err.find("$sim$") != std::string::npos) {
           out.contract_ok = false;
           out.detail += "password-hash material leaked; ";
         }
         uint64_t granted =
             sys.lsm() != nullptr ? sys.lsm()->stats().setuid_allowed.load() : 0;
         if (granted != 0) {
           out.contract_ok = false;
           out.detail += "setuid granted under auth fault; ";
         }
         out.fingerprint =
             StrFormat("exit=%d granted=%llu", run.exit_code, (unsigned long long)granted);
         return out;
       }});

  return scenarios;
}

// --- Deep check: transactional swap rollback ---------------------------------

// Proves ISSUE acceptance: a fault during a policy swap rolls back — same
// generation, same verdicts, and the per-task decision cache still serves
// its pre-fault entries (coherent because the generation never moved).
std::pair<bool, std::string> CheckSwapRollback() {
  SimSystem sys(SimMode::kProtego);
  Kernel& k = sys.kernel();
  // This check's whole point is decision-cache coherence across a rolled
  // back swap; force the cache on despite the deliberately tiny tables.
  k.lsm().set_cache_bypass_enabled(false);
  Task& root = sys.Login("root");
  Task& alice = sys.Login("alice");

  auto probe = [&]() -> std::string {
    // Two fixed verdict probes: one grant, one denial.
    bool can_read = k.ReadWholeFile(alice, "/etc/passwd").ok();
    bool can_write = k.WriteWholeFile(alice, "/etc/fstab", "x").ok();
    return StrFormat("read=%d write=%d", can_read ? 1 : 0, can_write ? 1 : 0);
  };

  std::string verdicts_before = probe();
  (void)probe();  // second round populates + hits the decision cache
  uint64_t hits_warm = k.lsm().decision_cache_hits();
  uint64_t gen_before = k.lsm().policy_generation();
  std::string table = k.ReadWholeFile(root, "/proc/protego/ports").value_or("");

  Must(k.WriteWholeFile(root, kFaultProc, "site=policy_compile error=ENOMEM times=1\n"),
       "arming policy_compile");
  auto failed = k.WriteWholeFile(root, "/proc/protego/ports", table);
  if (failed.ok()) {
    return {false, "swap unexpectedly succeeded under fault"};
  }
  if (failed.error().code() != Errno::kENOMEM) {
    return {false, StrFormat("swap failed with %s, want ENOMEM",
                             ErrnoName(failed.error().code()))};
  }
  if (k.lsm().policy_generation() != gen_before) {
    return {false, "generation moved on failed swap"};
  }
  std::string verdicts_after = probe();
  if (verdicts_after != verdicts_before) {
    return {false, StrFormat("verdicts changed across failed swap: %s vs %s",
                             verdicts_before.c_str(), verdicts_after.c_str())};
  }
  uint64_t hits_after = k.lsm().decision_cache_hits();
  if (hits_after <= hits_warm) {
    return {false, "decision cache went cold after a rolled-back swap"};
  }
  // The fault budget is exhausted; the same write must now swap and bump.
  Must(k.WriteWholeFile(root, "/proc/protego/ports", table), "post-fault swap");
  if (k.lsm().policy_generation() != gen_before + 1) {
    return {false, "completed swap did not bump the generation"};
  }
  if (probe() != verdicts_before) {
    return {false, "verdicts changed after identical-content swap"};
  }
  return {true, StrFormat("gen=%llu verdicts=%s cache_hits=%llu->%llu",
                          (unsigned long long)gen_before, verdicts_before.c_str(),
                          (unsigned long long)hits_warm, (unsigned long long)hits_after)};
}

// --- Deep check: deterministic-scheduler replay ------------------------------

// Two schedulable tasks race through an open/close loop while the fd_alloc
// site injects probabilistically (seeded splitmix64). Under the same
// recorded {scheduler seed, site seed} the interleaving — and therefore
// exactly which task absorbs which injection — replays bit-identically.
class FaultReplayRun : public conc::ScenarioRun {
 public:
  explicit FaultReplayRun(std::string* fingerprint_out)
      : fingerprint_out_(fingerprint_out),
        sys_(std::make_unique<SimSystem>(SimMode::kProtego)) {
    Kernel& k = sys_->kernel();
    Must(k.InstallBinary("/usr/bin/openloop", 0755, kRootUid, kRootGid,
                         [](ProcessContext& ctx) {
                           int failures = 0;
                           for (int i = 0; i < 6; ++i) {
                             auto fd = ctx.kernel.Open(ctx.task, "/etc/passwd", kORdOnly);
                             if (fd.ok()) {
                               (void)ctx.kernel.Close(ctx.task, fd.value());
                             } else {
                               ++failures;
                             }
                           }
                           return failures;
                         }),
         "installing openloop");
    session_ = &sys_->Login("alice");
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.error = Errno::kEIO;
    cfg.prob_num = 1;
    cfg.prob_den = 2;
    cfg.seed = 99;
    Must(k.faults().Configure(FaultSite::kFdAlloc, cfg), "configuring fd_alloc");
  }

  Kernel& kernel() override { return sys_->kernel(); }

  void RegisterTasks(TaskScheduler& /*sched*/) override {
    pid_a_ = sys_->kernel()
                 .SpawnAsync(*session_, "/usr/bin/openloop", {"openloop"}, {})
                 .value_or(-1);
    pid_b_ = sys_->kernel()
                 .SpawnAsync(*session_, "/usr/bin/openloop", {"openloop"}, {})
                 .value_or(-1);
  }

  std::optional<std::string> CheckInvariant() override {
    Kernel& k = sys_->kernel();
    int exit_a = pid_a_ > 0 ? k.WaitPid(*session_, pid_a_).value_or(-1) : -1;
    int exit_b = pid_b_ > 0 ? k.WaitPid(*session_, pid_b_).value_or(-1) : -1;
    *fingerprint_out_ = StrFormat(
        "exits=%d,%d inj=%llu eval=%llu", exit_a, exit_b,
        (unsigned long long)k.faults().injected(FaultSite::kFdAlloc),
        (unsigned long long)k.faults().evaluations(FaultSite::kFdAlloc));
    return std::nullopt;
  }

 private:
  std::string* fingerprint_out_;
  std::unique_ptr<SimSystem> sys_;
  Task* session_ = nullptr;
  int pid_a_ = -1;
  int pid_b_ = -1;
};

std::pair<bool, std::string> CheckDetReplay() {
  conc::ScheduleTrace trace;
  trace.mode = conc::SchedMode::kRandom;
  trace.seed = 1234;
  std::string fp1, fp2;
  auto run_once = [&](std::string* slot) {
    conc::ScenarioFactory factory = [slot]() {
      return std::make_unique<FaultReplayRun>(slot);
    };
    return conc::Replay(factory, trace);
  };
  auto v1 = run_once(&fp1);
  auto v2 = run_once(&fp2);
  if (v1.has_value() || v2.has_value()) {
    return {false, "replay run reported a violation: " + v1.value_or(v2.value_or(""))};
  }
  if (fp1.empty() || fp1 != fp2) {
    return {false, StrFormat("schedule replay diverged: '%s' vs '%s'", fp1.c_str(),
                             fp2.c_str())};
  }
  return {true, "seed=1234 " + fp1};
}

}  // namespace

bool FaultSweepReport::all_ok() const {
  if (!swap_rollback_ok || !det_replay_ok || sites.size() != kFaultSiteCount) {
    return false;
  }
  for (const FaultSiteAudit& site : sites) {
    if (!site.ok()) {
      return false;
    }
  }
  return true;
}

std::string FaultSweepReport::Format() const {
  std::string out = "fault sweep: single-site injection at every registered site\n";
  for (const FaultSiteAudit& s : sites) {
    out += StrFormat(
        "  %-16s %-4s expect=%s observed=%s inj=%llu trace=%llu "
        "fd=%s vfs=%s cred=%s replay=%s  (%s)\n",
        FaultSiteName(s.site), s.ok() ? "ok" : "FAIL", ErrnoName(s.expected),
        ErrnoName(s.observed), (unsigned long long)s.injections,
        (unsigned long long)s.trace_hits, s.no_fd_leak ? "ok" : "LEAK",
        s.vfs_ok ? "ok" : "LEAK", s.no_cred_retention ? "ok" : "RETAINED",
        s.replay_ok ? "ok" : "DIVERGED", s.scenario.c_str());
    if (!s.ok() && !s.detail.empty()) {
      out += "      " + s.detail + "\n";
    }
  }
  out += StrFormat("  swap-rollback    %-4s %s\n", swap_rollback_ok ? "ok" : "FAIL",
                   swap_detail.c_str());
  out += StrFormat("  det-replay       %-4s %s\n", det_replay_ok ? "ok" : "FAIL",
                   det_detail.c_str());
  return out;
}

FaultSweepReport RunFaultSweep() {
  FaultSweepReport report;
  for (const SiteScenario& sc : BuildScenarios()) {
    report.sites.push_back(RunSite(sc));
  }
  auto [swap_ok, swap_detail] = CheckSwapRollback();
  report.swap_rollback_ok = swap_ok;
  report.swap_detail = std::move(swap_detail);
  auto [det_ok, det_detail] = CheckDetReplay();
  report.det_replay_ok = det_ok;
  report.det_detail = std::move(det_detail);
  return report;
}

}  // namespace protego
