// Table 6: the historical-vulnerability corpus — the 40 CVEs the paper
// identifies as privilege-escalation bugs in setuid-to-root binaries — and
// the harness that replays each one against both system configurations.
//
// Each corpus entry models the CVE's class (buffer overflow, env-var
// injection, format string, race) as a control-hijack at the utility's
// documented vulnerable point; the hijacked code then runs the attacker
// payload (src/userland/util.h) with whatever credentials the utility holds
// at that point. The question the harness answers per CVE is the paper's:
// does the vulnerable code still run with privilege?

#ifndef SRC_STUDY_CVES_H_
#define SRC_STUDY_CVES_H_

#include <string>
#include <vector>

#include "src/sim/system.h"

namespace protego {

struct CveEntry {
  std::string cve_id;
  std::string package;       // Table 6 row label
  std::string binary;        // simulated binary carrying the bug
  std::vector<std::string> extra_argv;  // arguments reaching the bug
  // Who launches the vulnerable program. Utilities are launched by the
  // unprivileged attacker ("alice"); daemons (exim) are launched by init
  // (root) in stock mode and by their service account under Protego, with
  // the attacker supplying only the malicious input.
  std::string invoker_linux = "alice";
  std::string invoker_protego = "alice";
};

// All 40 privilege-escalation CVEs from Table 6.
const std::vector<CveEntry>& CveCorpus();

// Table 6's "Total CVEs" column: lifetime CVE counts per utility row
// (618 total across the 28 studied binaries, §5.2). "-" rows in the paper
// (CVEs spanning multiple packages) carry 0 here.
struct CveTotalsRow {
  std::string package;
  int total_cves = 0;  // 0 renders as "-"
};
const std::vector<CveTotalsRow>& CveTotals();

// One replayed exploit.
struct ExploitOutcome {
  std::string cve_id;
  bool triggered = false;        // the payload ran (vulnerable point reached)
  bool escalated = false;        // a root-only action succeeded
  std::vector<std::string> succeeded_actions;
};

// Runs one corpus entry against `sys`.
ExploitOutcome RunExploit(SimSystem& sys, const CveEntry& entry);

// Runs the whole corpus; returns outcomes in corpus order.
std::vector<ExploitOutcome> RunCorpus(SimSystem& sys);

}  // namespace protego

#endif  // SRC_STUDY_CVES_H_
