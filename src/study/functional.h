// §5.3 / Table 7: the functional-equivalence suite.
//
// Each scenario drives one or more setuid command-line utilities through a
// realistic interaction (including password entry on the session terminal)
// and folds the observable outcome — exit status, normalized output, and
// state probes — into a canonical transcript. Running the same scenario on
// the stock system and on Protego must produce identical transcripts: the
// paper's "same output and effects on both systems".
//
// Password prompts are excluded from the transcript: WHO asks (the trusted
// binary vs. the kernel-launched authentication utility) is exactly the
// mechanism that changed; WHAT the user can do must not change.
//
// The scenarios double as the coverage workload for Table 7's gcov analog.

#ifndef SRC_STUDY_FUNCTIONAL_H_
#define SRC_STUDY_FUNCTIONAL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sim/system.h"

namespace protego {

struct FunctionalScenario {
  std::string name;
  // Runs the interaction and returns the canonical transcript.
  std::function<std::string(SimSystem&)> run;
};

const std::vector<FunctionalScenario>& FunctionalSuite();

// Strips authentication dialogue and error-message wording (which §4.3
// documents as legitimately different) while keeping semantics: exit codes,
// stdout payloads, state probes, and whether stderr was empty.
std::string NormalizeTranscript(const std::string& transcript);

// Runs every scenario on a fresh system of each mode; returns
// (scenario name, linux transcript, protego transcript) triples.
struct EquivalenceResult {
  std::string name;
  std::string linux_transcript;
  std::string protego_transcript;
  bool equivalent = false;
};
std::vector<EquivalenceResult> RunEquivalenceSuite();

}  // namespace protego

#endif  // SRC_STUDY_FUNCTIONAL_H_
