// The trace-driven synthesis study (the closed loop): trace the utilities
// under stock Protego policy, synthesize policy from the traces alone,
// install the synthesized policy on FRESH systems, and gate on three
// claims:
//
//   1. determinism — the same seed renders byte-identical policy text
//      across repeated runs and across ExecMode::kDeterministic /
//      ExecMode::kParallel collection;
//   2. functionality — every functional scenario produces the same
//      normalized transcript on stock Linux and on Protego running ONLY
//      the synthesized policy (tables swapped through /proc/protego,
//      argument filters attached per binary);
//   3. containment — the 40-CVE corpus replayed under the synthesized
//      policy escalates nowhere.

#ifndef SRC_STUDY_SYNTH_STUDY_H_
#define SRC_STUDY_SYNTH_STUDY_H_

#include <string>
#include <vector>

#include "src/synth/install.h"
#include "src/synth/synthesizer.h"
#include "src/synth/trace_recorder.h"

namespace protego::synth {

// Trace + synthesize in one step.
SynthesizedPolicy SynthesizePolicy(uint64_t seed, ExecMode mode);

struct SynthStudyResult {
  bool determinism_ok = false;
  bool functional_ok = false;
  bool cves_contained = false;

  std::string policy_text;  // canonical render of the synthesized policy
  std::vector<std::string> functional_mismatches;  // scenario names
  int cve_total = 0;
  int cve_escalated = 0;
  std::vector<std::string> escalated_cves;

  std::string report;  // paper-style summary table

  bool ok() const { return determinism_ok && functional_ok && cves_contained; }
};

// `determinism_reps` controls how many deterministic-mode re-collections
// feed the byte-identity check (a parallel-mode collection is always added).
SynthStudyResult RunSynthStudy(uint64_t seed, int determinism_reps = 3);

}  // namespace protego::synth

#endif  // SRC_STUDY_SYNTH_STUDY_H_
