// Tables 1 & 2: trusted-computing-base accounting.
//
// Two ledgers:
//   * the paper's numbers (embedded), for side-by-side reporting;
//   * this reproduction's own numbers, counted from the source tree at
//     runtime (non-blank, non-comment lines), mapped component-for-
//     component onto Table 2's rows.

#ifndef SRC_STUDY_LOC_ACCOUNTING_H_
#define SRC_STUDY_LOC_ACCOUNTING_H_

#include <string>
#include <vector>

namespace protego {

struct LocRow {
  std::string section;      // Kernel / Trusted Services / Utilities
  std::string component;
  std::string description;
  int paper_lines = 0;            // Table 2's number
  std::vector<std::string> files; // this repo's implementing files
};

const std::vector<LocRow>& LocLedger();

// Counts non-blank, non-comment lines in one file under `source_root`.
// Returns 0 when unreadable.
int CountLines(const std::string& source_root, const std::string& relative_path);

// Sum of CountLines over a row's files.
int CountRow(const std::string& source_root, const LocRow& row);

// The paper's Table 1 deprivileging claims.
struct TcbSummary {
  int paper_deprivileged = 12717;     // net lines of code de-privileged
  int paper_total_changed = 2598;     // Table 2 grand total
  int paper_previously_trusted = 15047;
  double paper_coverage_pct = 89.5;
  int paper_exploits = 40;
  int paper_syscalls_changed = 8;
};
TcbSummary PaperSummary();

}  // namespace protego

#endif  // SRC_STUDY_LOC_ACCOUNTING_H_
