#include "src/study/loc_accounting.h"

#include <fstream>

#include "src/base/strings.h"

namespace protego {

const std::vector<LocRow>& LocLedger() {
  static const std::vector<LocRow> kLedger = {
      {"Kernel", "Linux", "Additional LSM hooks, /proc filesystem interface.", 415,
       {"src/lsm/module.h", "src/lsm/stack.h", "src/lsm/stack.cc", "src/protego/proc_iface.h",
        "src/protego/proc_iface.cc"}},
      {"Kernel", "Protego LSM module",
       "Implement security policies, called by additional LSM hooks in Linux.", 200,
       {"src/protego/protego_lsm.h", "src/protego/protego_lsm.cc"}},
      {"Kernel", "Netfilter", "Extensions for raw sockets.", 100,
       {"src/protego/default_rules.h", "src/protego/default_rules.cc"}},
      {"Trusted Services", "Monitoring daemon",
       "Trusted process that monitors changes in policy-relevant configuration files. "
       "Required only for backwards compatibility.",
       400, {"src/services/monitor_daemon.h", "src/services/monitor_daemon.cc"}},
      {"Trusted Services", "Authentication utility",
       "Trusted binary launched by the kernel to authenticate user sessions, password "
       "protected groups. Code refactored from login and newgrp.",
       1200, {"src/services/auth_service.h", "src/services/auth_service.cc"}},
      {"Utilities", "iptables", "Extension for raw sockets.", 175,
       {"src/net/netfilter.h", "src/net/netfilter.cc"}},
      {"Utilities", "vipw", "Modified to edit per-user files instead of a shared database "
       "file.", 40, {}},
      {"Utilities", "dmcrypt-get-device", "Switch to /sys to read underlying device "
       "information.", 4, {}},
      {"Utilities", "mount/umount, sudo, pppd", "Disable hard-coded root uid checks.", -25,
       {}},
  };
  return kLedger;
}

int CountLines(const std::string& source_root, const std::string& relative_path) {
  std::ifstream in(source_root + "/" + relative_path);
  if (!in.is_open()) {
    return 0;
  }
  int count = 0;
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    std::string_view body = Trim(line);
    if (body.empty()) {
      continue;
    }
    if (in_block_comment) {
      if (body.find("*/") != std::string_view::npos) {
        in_block_comment = false;
      }
      continue;
    }
    if (StartsWith(body, "//") || StartsWith(body, "#")) {
      continue;  // comments and preprocessor noise both excluded, as the
                 // paper's conservative counting does
    }
    if (StartsWith(body, "/*")) {
      if (body.find("*/") == std::string_view::npos) {
        in_block_comment = true;
      }
      continue;
    }
    ++count;
  }
  return count;
}

int CountRow(const std::string& source_root, const LocRow& row) {
  int total = 0;
  for (const std::string& file : row.files) {
    total += CountLines(source_root, file);
  }
  return total;
}

TcbSummary PaperSummary() { return TcbSummary{}; }

}  // namespace protego
