// Table 4: the setuid policy study — for each privileged interface, the
// kernel policy, the system policy administrators actually want, the
// security concern, and Protego's approach. Each row also carries an
// executable check pair: a scenario the SYSTEM POLICY permits (must succeed
// for an unprivileged user on Protego) and one it forbids (must fail on
// both systems).

#ifndef SRC_STUDY_POLICY_MATRIX_H_
#define SRC_STUDY_POLICY_MATRIX_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sim/system.h"

namespace protego {

struct PolicyScenarioResult {
  bool permitted_case_ok = false;  // safe subset works for users on Protego
  bool forbidden_case_ok = false;  // unsafe operation still refused
  std::string detail;
};

struct PolicyMatrixRow {
  std::string interface_name;
  std::string used_by;
  std::string kernel_policy;
  std::string system_policy;
  std::string security_concern;
  std::string protego_approach;
  // Runs both cases against a Protego-mode system.
  std::function<PolicyScenarioResult(SimSystem&)> check;
};

const std::vector<PolicyMatrixRow>& PolicyMatrix();

}  // namespace protego

#endif  // SRC_STUDY_POLICY_MATRIX_H_
