// TOCTTOU race corpus (§5's race-condition CVE class, made executable).
//
// The classic symlink-swap attack against a check-then-open setuid binary:
// the victim validates a pathname (ownership check via stat, or an
// access(2) probe) and then opens it, while the attacker atomically
// rename(2)s a symlink to a root-only secret over the validated path inside
// the check/use window. Against a setuid-root victim the open runs with
// euid 0, so the swapped link dereferences to the secret and the victim
// leaks it into its world-readable report.
//
// Under Protego the same binary carries no setuid bit: it opens the file
// with the invoker's own fsuid, so even the "winning" interleaving is
// denied by ordinary DAC at the use site — the race window still exists,
// but there is no privilege to steal through it. The schedule explorer
// (src/conc) makes both claims checkable: bounded-exhaustive search FINDS a
// violating interleaving against the stock system and finds NONE under
// Protego.

#ifndef SRC_STUDY_RACES_H_
#define SRC_STUDY_RACES_H_

#include "src/conc/explore.h"
#include "src/sim/system.h"

namespace protego {

// What the victim's check looks like; both are real-world idioms from the
// race CVEs in Table 6.
enum class TocttouVariant {
  kStatThenOpen,    // stat() + st_uid ownership check, then open()
  kAccessThenOpen,  // access(R_OK) with real uid, then open() with euid
};

const char* TocttouVariantName(TocttouVariant variant);

// The root-only content the attacker is after; the invariant checks the
// victim's report for it.
inline constexpr const char* kTocttouSecret = "TOP-SECRET-ROOT-ONLY";

// Paths the scenario uses (exported for tests and the example binary).
inline constexpr const char* kTocttouSecretPath = "/etc/secret";
inline constexpr const char* kTocttouJobPath = "/tmp/job";
inline constexpr const char* kTocttouReportPath = "/tmp/report";

// Builds the scenario factory: each run boots a fresh SimSystem in `mode`,
// installs the victim (`/usr/bin/filereport`, setuid root in stock mode,
// plain 0755 under Protego) and the attacker (`/usr/bin/swapjob`), and
// launches both as schedulable tasks from alice's session. The invariant
// fails iff the victim's report contains the secret.
conc::ScenarioFactory MakeTocttouScenario(SimMode mode, TocttouVariant variant);

// Lost-update scenario for the shared credential database: two concurrent
// chfn runs (root editing alice's and bob's gecos fields) each do a
// whole-file read-modify-write of /etc/passwd. With the advisory flock held
// across the RMW (with_flock=true, the shipped behavior) both edits survive
// every bounded interleaving and no schedule deadlocks; with locking
// disabled via PROTEGO_NO_FLOCK=1 (with_flock=false) the explorer finds a
// schedule where the second writer clobbers the first editor's record.
inline constexpr const char* kLostUpdateGecosAlice = "Alice Lovelace";
inline constexpr const char* kLostUpdateGecosBob = "Bob Babbage";
conc::ScenarioFactory MakePasswdLostUpdateScenario(bool with_flock);

}  // namespace protego

#endif  // SRC_STUDY_RACES_H_
