#include "src/study/popularity.h"

namespace protego {

const std::vector<PopularityRow>& PopularityTable() {
  static const std::vector<PopularityRow> kTable = {
      {"mount", 100.00, 99.75, true},
      {"login", 99.99, 99.82, true},
      {"passwd", 99.97, 99.84, true},
      {"iputils-ping", 99.87, 99.60, true},
      {"openssh-client", 99.54, 99.48, true},
      {"eject", 99.68, 90.95, true},
      {"sudo", 99.48, 74.34, true},
      {"ppp", 99.54, 45.65, true},
      {"iputils-tracepath", 99.78, 13.06, true},
      {"mtr-tiny", 99.54, 11.79, true},
      {"iputils-arping", 99.60, 3.55, true},
      {"libc-bin", 50.14, 86.15, true},
      {"fping", 27.70, 12.42, true},
      {"nfs-common", 9.76, 82.89, true},
      {"ecryptfs-utils", 11.64, 0.72, true},
      {"virtualbox", 10.56, 7.78, false},
      {"kppp", 10.11, 4.97, false},
      {"cifs-utils", 2.59, 19.23, false},
      {"tcptraceroute", 0.33, 23.38, false},
      {"chromium-browser", 0.48, 8.49, false},
  };
  return kTable;
}

double WeightedAverage(const PopularityRow& row) {
  const double total = static_cast<double>(kUbuntuSystems + kDebianSystems);
  return (row.ubuntu_pct * static_cast<double>(kUbuntuSystems) +
          row.debian_pct * static_cast<double>(kDebianSystems)) /
         total;
}

double StudyCoveragePercent() {
  // The paper investigates all packages at least as popular as
  // ecryptfs-utils; systems whose setuid surface includes anything rarer
  // are "uncovered". The dominant uncovered package bounds the estimate.
  double most_popular_uninvestigated = 0;
  for (const PopularityRow& row : PopularityTable()) {
    if (!row.investigated) {
      double avg = WeightedAverage(row);
      if (avg > most_popular_uninvestigated) {
        most_popular_uninvestigated = avg;
      }
    }
  }
  return 100.0 - most_popular_uninvestigated;
}

namespace {

// splitmix64: deterministic, seedable, and good enough for sampling.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool Bernoulli(uint64_t* state, double pct) {
  // Compare against a 53-bit uniform draw.
  double u = static_cast<double>(NextRandom(state) >> 11) * (1.0 / 9007199254740992.0);
  return u * 100.0 < pct;
}

}  // namespace

SyntheticSurveyResult RunSyntheticSurvey(uint64_t n_ubuntu, uint64_t n_debian, uint64_t seed) {
  const std::vector<PopularityRow>& table = PopularityTable();
  std::vector<uint64_t> ubuntu_hits(table.size(), 0);
  std::vector<uint64_t> debian_hits(table.size(), 0);
  uint64_t state = seed * 0x2545F4914F6CDD1DULL + 1;

  for (uint64_t s = 0; s < n_ubuntu; ++s) {
    for (size_t i = 0; i < table.size(); ++i) {
      if (Bernoulli(&state, table[i].ubuntu_pct)) {
        ++ubuntu_hits[i];
      }
    }
  }
  for (uint64_t s = 0; s < n_debian; ++s) {
    for (size_t i = 0; i < table.size(); ++i) {
      if (Bernoulli(&state, table[i].debian_pct)) {
        ++debian_hits[i];
      }
    }
  }

  SyntheticSurveyResult result;
  result.systems_sampled = n_ubuntu + n_debian;
  for (size_t i = 0; i < table.size(); ++i) {
    PopularityRow row = table[i];
    row.ubuntu_pct = n_ubuntu == 0 ? 0
                                   : 100.0 * static_cast<double>(ubuntu_hits[i]) /
                                         static_cast<double>(n_ubuntu);
    row.debian_pct = n_debian == 0 ? 0
                                   : 100.0 * static_cast<double>(debian_hits[i]) /
                                         static_cast<double>(n_debian);
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace protego
