// Table 8: the long tail — the 67 Ubuntu packages (91 binaries) containing
// setuid-to-root binaries that §4's study did not cover, grouped by the
// interface that requires privilege, and whether Protego's existing
// abstractions already address that interface (§5.4).

#ifndef SRC_STUDY_REMAINING_H_
#define SRC_STUDY_REMAINING_H_

#include <string>
#include <vector>

namespace protego {

struct RemainingGroup {
  std::string interface_name;
  int binary_count = 0;
  bool addressed_by_protego = false;  // below the table's double line if false
  std::string notes;
};

const std::vector<RemainingGroup>& RemainingBinaries();

// Totals the paper reports: 91 binaries, 77 already addressed.
int RemainingTotal();
int RemainingAddressed();

}  // namespace protego

#endif  // SRC_STUDY_REMAINING_H_
