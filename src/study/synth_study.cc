#include "src/study/synth_study.h"

#include "src/base/strings.h"
#include "src/study/cves.h"
#include "src/study/functional.h"

namespace protego::synth {

SynthesizedPolicy SynthesizePolicy(uint64_t seed, ExecMode mode) {
  TraceCorpus corpus = CollectTraces(seed, mode);
  SynthContext ctx = ReferenceContext();
  return Synthesize(corpus, ctx);
}

SynthStudyResult RunSynthStudy(uint64_t seed, int determinism_reps) {
  SynthStudyResult result;

  // --- 1. Determinism: N deterministic collections + one parallel one must
  // render byte-identical policy text.
  SynthesizedPolicy policy = SynthesizePolicy(seed, ExecMode::kDeterministic);
  result.policy_text = policy.Render();
  result.determinism_ok = true;
  for (int rep = 1; rep < determinism_reps; ++rep) {
    if (SynthesizePolicy(seed, ExecMode::kDeterministic).Render() != result.policy_text) {
      result.determinism_ok = false;
    }
  }
  if (SynthesizePolicy(seed, ExecMode::kParallel).Render() != result.policy_text) {
    result.determinism_ok = false;
  }

  // --- 2. Functional equivalence under the synthesized-only policy.
  result.functional_ok = true;
  for (const FunctionalScenario& scenario : SynthWorkload()) {
    std::string linux_transcript;
    {
      SimSystem linux_sys(SimMode::kLinux);
      linux_transcript = NormalizeTranscript(scenario.run(linux_sys));
    }
    std::string protego_transcript;
    {
      SimSystem protego_sys(SimMode::kProtego);
      if (!InstallSynthesized(protego_sys, policy).ok()) {
        result.functional_ok = false;
        result.functional_mismatches.push_back(scenario.name + " (install failed)");
        continue;
      }
      protego_transcript = NormalizeTranscript(scenario.run(protego_sys));
    }
    if (linux_transcript != protego_transcript) {
      result.functional_ok = false;
      result.functional_mismatches.push_back(scenario.name);
    }
  }

  // --- 3. CVE containment under the synthesized-only policy.
  {
    SimSystem sys(SimMode::kProtego);
    result.cves_contained = InstallSynthesized(sys, policy).ok();
    for (const ExploitOutcome& outcome : RunCorpus(sys)) {
      ++result.cve_total;
      if (outcome.escalated) {
        ++result.cve_escalated;
        result.escalated_cves.push_back(outcome.cve_id);
        result.cves_contained = false;
      }
    }
  }

  size_t total_rules = 0;
  for (const UtilityFilter& f : policy.filters) {
    for (const auto& [nr, rules] : f.spec.rules) {
      total_rules += rules.size();
    }
  }
  result.report = StrFormat(
      "synthesis study (seed=%llu)\n"
      "  filters synthesized:   %zu binaries, %zu predicate rules\n"
      "  mount whitelist rows:  %zu\n"
      "  bind table rows:       %zu\n"
      "  sudoers rules:         %zu (+%zu group, %zu delegation, %zu reauth)\n"
      "  determinism:           %s\n"
      "  functional scenarios:  %s (%zu mismatch)\n"
      "  CVE containment:       %d/%d contained\n",
      static_cast<unsigned long long>(seed), policy.filters.size(), total_rules,
      policy.mounts.size(), policy.ports.size(), policy.sudoers.rules.size(),
      policy.sudoers.password_groups.size(), policy.sudoers.file_delegations.size(),
      policy.sudoers.reauth_read_globs.size(), result.determinism_ok ? "ok" : "FAILED",
      result.functional_ok ? "ok" : "FAILED", result.functional_mismatches.size(),
      result.cve_total - result.cve_escalated, result.cve_total);
  return result;
}

}  // namespace protego::synth
