// Table 3: setuid-package installation statistics from the Debian and
// Ubuntu popularity-contest surveys (§3.3).
//
// Two reproductions:
//   * exact — the survey percentages embedded as data; the weighted average
//     and the 89.5% coverage claim are recomputed arithmetically.
//   * synthetic — a population of simulated systems is sampled with the
//     per-distribution install probabilities and the table is re-derived
//     from the sample, reproducing the survey pipeline end to end.

#ifndef SRC_STUDY_POPULARITY_H_
#define SRC_STUDY_POPULARITY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace protego {

struct PopularityRow {
  std::string package;
  double ubuntu_pct = 0;  // % of surveyed Ubuntu systems installing it
  double debian_pct = 0;
  bool investigated = false;  // in the paper's fully-studied set ("through
                              // ecryptfs-utils")
};

// Survey sizes reported in §3.3.
inline constexpr uint64_t kUbuntuSystems = 2502647;
inline constexpr uint64_t kDebianSystems = 134020;

// The paper's 20 most-installed setuid packages, with survey percentages.
const std::vector<PopularityRow>& PopularityTable();

// Weighted average across both surveys for one row.
double WeightedAverage(const PopularityRow& row);

// Fraction of systems fully covered by the study — the paper's 89.5%:
// one minus the weighted share of systems carrying at least one
// uninvestigated setuid package, approximated as the paper does by the
// most popular uninvestigated package.
double StudyCoveragePercent();

// Synthetic survey: samples `n_ubuntu` + `n_debian` simulated systems with
// the table's install probabilities (deterministic for a given seed) and
// recomputes the per-package weighted averages.
struct SyntheticSurveyResult {
  std::vector<PopularityRow> rows;  // recomputed percentages
  uint64_t systems_sampled = 0;
};
SyntheticSurveyResult RunSyntheticSurvey(uint64_t n_ubuntu, uint64_t n_debian, uint64_t seed);

}  // namespace protego

#endif  // SRC_STUDY_POPULARITY_H_
