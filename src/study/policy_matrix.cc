#include "src/study/policy_matrix.h"

#include "src/base/strings.h"
#include "src/net/ioctl_codes.h"

namespace protego {

namespace {

PolicyScenarioResult SocketScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  Task& alice = sys.Login("alice");
  // Permitted: an unprivileged user sends safe ICMP over a raw socket.
  auto ping = sys.RunCapture(alice, "/bin/ping", {"ping", "10.0.0.2", "1"});
  r.permitted_case_ok =
      ping.exit_code == 0 && ping.out.find("1 packets transmitted, 1 received") !=
                                  std::string::npos;
  // Forbidden: a raw socket spoofing TCP from another process's port. The
  // packet is dropped by the netfilter extension, so the victim socket
  // never sees it.
  Task& attacker = sys.Login("bob");
  auto victim_fd = sys.kernel().SocketCall(alice, kAfInet, kSockStream, 0);
  bool spoof_blocked = false;
  if (victim_fd.ok() && sys.kernel().BindCall(alice, victim_fd.value(), 8080).ok()) {
    auto raw = sys.kernel().SocketCall(attacker, kAfInet, kSockRaw, kProtoTcp);
    if (raw.ok()) {
      Packet spoof;
      spoof.l4_proto = kProtoTcp;
      spoof.src_port = 8080;  // alice's port
      spoof.dst_ip = kLocalhostIp;
      spoof.dst_port = 9;
      uint64_t dropped_before = sys.kernel().net().packets_dropped();
      (void)sys.kernel().SendCall(attacker, raw.value(), spoof);
      spoof_blocked = sys.kernel().net().packets_dropped() > dropped_before;
    }
  }
  r.forbidden_case_ok = spoof_blocked;
  r.detail = "raw ICMP allowed; spoofed-src TCP dropped by netfilter";
  return r;
}

PolicyScenarioResult PppScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  Task& alice = sys.Login("alice");
  // Permitted: configure an unused modem and add a non-conflicting route.
  auto ok = sys.RunCapture(alice, "/usr/sbin/pppd",
                           {"pppd", "--opt=bsdcomp", "--connect=172.16.0.1,172.16.0.2",
                            "--route=172.16.0.0/16"});
  r.permitted_case_ok = ok.exit_code == 0;
  // Forbidden: a route that conflicts with the existing LAN route.
  auto bad = sys.RunCapture(alice, "/usr/sbin/pppd",
                            {"pppd", "--connect=172.17.0.1,172.17.0.2",
                             "--route=10.0.0.0/16"});
  r.forbidden_case_ok = bad.exit_code != 0;
  r.detail = "non-conflicting route added; conflicting route refused";
  return r;
}

PolicyScenarioResult DmcryptScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  Task& alice = sys.Login("alice");
  auto out = sys.RunCapture(alice, "/usr/bin/dmcrypt-get-device", {"dmcrypt-get-device",
                                                                   "dm-0"});
  r.permitted_case_ok = out.exit_code == 0 && out.out.find("/dev/sda3") != std::string::npos;
  // Forbidden: the key must not be obtainable by an unprivileged user.
  bool key_leaked = out.out.find("deadbeef") != std::string::npos;
  auto fd = sys.kernel().Open(alice, "/dev/mapper/control", kORdWr);
  bool ioctl_blocked = true;
  if (fd.ok()) {
    auto status = sys.kernel().Ioctl(alice, fd.value(), kDmTableStatus, "dm-0");
    ioctl_blocked = !status.ok();
  }
  r.forbidden_case_ok = !key_leaked && ioctl_blocked;
  r.detail = "device name via /sys; key-bearing ioctl still EPERM";
  return r;
}

PolicyScenarioResult BindScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  // Permitted: the allocated instance binds its low port without privilege.
  Task& exim = sys.Login("exim");
  auto ok = sys.RunCapture(exim, "/usr/sbin/eximd", {"eximd"});
  r.permitted_case_ok = ok.exit_code == 0 && ok.out.find("listening on port 25") !=
                                                  std::string::npos;
  // Forbidden: another binary cannot squat on the allocated port — not even
  // with root privilege.
  Task& root = sys.Login("root");
  auto bad = sys.RunCapture(root, "/usr/sbin/httpd", {"httpd", "--port=25"});
  r.forbidden_case_ok = bad.exit_code != 0;
  r.detail = "exim binds 25 unprivileged; httpd (even as root) cannot";
  return r;
}

PolicyScenarioResult MountScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  Task& alice = sys.Login("alice");
  auto ok = sys.RunCapture(alice, "/bin/mount", {"mount", "/dev/cdrom"});
  bool mounted = sys.kernel().vfs().FindMount("/media/cdrom") != nullptr;
  (void)sys.RunCapture(alice, "/bin/umount", {"umount", "/media/cdrom"});
  r.permitted_case_ok = ok.exit_code == 0 && mounted;
  // Forbidden: mounting over a trusted directory.
  auto bad = sys.kernel().Mount(alice, "/dev/cdrom", "/etc", "iso9660", {"ro"});
  r.forbidden_case_ok = !bad.ok();
  r.detail = "whitelisted cdrom mount works; mount over /etc refused";
  return r;
}

PolicyScenarioResult SetuidScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  // Permitted: bob runs lpr as alice under the delegation rule.
  Task& root = sys.Login("root");
  (void)sys.kernel().WriteWholeFile(root, "/home/alice/doc.txt", "hello", false, 0644);
  (void)sys.kernel().Chown(root, "/home/alice/doc.txt", 1000, 1000);
  Task& bob = sys.Login("bob");
  bob.terminal->QueueInput("bobpw");
  auto ok = sys.RunCapture(bob, "/usr/bin/sudo",
                           {"sudo", "--user=alice", "/usr/bin/lpr", "/home/alice/doc.txt"});
  r.permitted_case_ok =
      ok.exit_code == 0 && ok.out.find("as uid=1000") != std::string::npos;
  // Forbidden: bob cannot run anything else as alice (least privilege),
  // even though stock sudo would have given his process full root first.
  Task& bob2 = sys.Login("bob");
  bob2.terminal->QueueInput("bobpw");
  auto bad = sys.RunCapture(bob2, "/usr/bin/sudo",
                            {"sudo", "--user=alice", "/bin/cat", "/home/alice/doc.txt"});
  r.forbidden_case_ok = bad.exit_code != 0;
  r.detail = "delegated lpr works; undelegated cat as alice refused";
  return r;
}

PolicyScenarioResult CredentialDbScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  // Permitted: alice changes her own shell without privilege.
  Task& alice = sys.Login("alice");
  auto ok = sys.RunCapture(alice, "/usr/bin/chsh", {"chsh", "/bin/bash"});
  r.permitted_case_ok = ok.exit_code == 0;
  // Forbidden: alice cannot modify bob's record.
  auto bad = sys.RunCapture(alice, "/usr/bin/chsh", {"chsh", "/bin/bash", "bob"});
  bool fragment_safe = true;
  auto direct = sys.kernel().WriteWholeFile(alice, "/etc/passwds/bob", "bob:x:0:0:::/bin/sh\n");
  fragment_safe = !direct.ok();
  r.forbidden_case_ok = bad.exit_code != 0 && fragment_safe;
  r.detail = "own record editable; other records protected by DAC";
  return r;
}

PolicyScenarioResult HostKeyScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  Task& alice = sys.Login("alice");
  auto ok = sys.RunCapture(alice, "/usr/lib/ssh-keysign", {"ssh-keysign", "alice-pubkey"});
  r.permitted_case_ok = ok.exit_code == 0 && ok.out.find("signature ") == 0;
  // Forbidden: alice cannot read the host key itself, with any tool.
  auto bad = sys.kernel().ReadWholeFile(alice, "/etc/ssh/ssh_host_key");
  r.forbidden_case_ok = !bad.ok();
  r.detail = "signature obtainable; key unreadable outside ssh-keysign";
  return r;
}

PolicyScenarioResult VideoScenario(SimSystem& sys) {
  PolicyScenarioResult r;
  Task& alice = sys.Login("alice");
  auto ok = sys.RunCapture(alice, "/usr/bin/xserver", {"xserver", "--mode=1280x1024"});
  r.permitted_case_ok = ok.exit_code == 0;
  // Forbidden: garbage video state is rejected by the kernel (KMS), so a
  // misbehaving X cannot wedge the hardware.
  auto bad = sys.RunCapture(alice, "/usr/bin/xserver", {"xserver", "--mode=garbage"});
  r.forbidden_case_ok = bad.exit_code != 0;
  r.detail = "unprivileged X sets a valid mode; invalid mode rejected by KMS";
  return r;
}

}  // namespace

const std::vector<PolicyMatrixRow>& PolicyMatrix() {
  static const std::vector<PolicyMatrixRow> kMatrix = {
      {"socket", "ping, ping6, arping, mtr, traceroute6 iputils",
       "Creating raw or packet sockets requires CAP_NET_RAW.",
       "Users may send and receive safe, non TCP/UDP packets, such as ICMP.",
       "Raw sockets allow one to send packets that appear to come from a socket owned by "
       "another process.",
       "Allow any user to create a raw or packet socket, but outgoing packets are subject to "
       "firewall rules that filter unsafe packets.",
       SocketScenario},
      {"ioctl (ppp)", "pppd",
       "Only the administrator may configure modem hardware or modify routing tables.",
       "A user may configure a modem (if not in use) and add routes that don't conflict with "
       "existing routes.",
       "Protect the integrity of routes for unrelated applications.",
       "Add LSM hooks that verify routes do not conflict with old rules when requested by "
       "non-root users.",
       PppScenario},
      {"ioctl (dmcrypt)", "dmcrypt-get-device",
       "Require CAP_SYS_ADMIN to read dmcrypt metadata.",
       "Any user may read the public portion of dmcrypt metadata (e.g., device set).",
       "The same ioctl discloses both the physical devices and the encryption keys.",
       "Abandon this ioctl for a /sys file that only discloses the physical devices.",
       DmcryptScenario},
      {"bind", "procmail, sensible-mda, exim4",
       "Require CAP_NET_BIND_SERVICE to bind to ports < 1024.",
       "Mail server should generally run without root privilege.",
       "Prevent untrustworthy applications from running on well-known ports.",
       "System policies allocating low-numbered ports to specific (binary, userid) pairs.",
       BindScenario},
      {"mount, umount", "fusermount, mount, umount",
       "Mounting or unmounting a file system requires CAP_SYS_ADMIN.",
       "Any user may mount or unmount entries in /etc/fstab with the user(s) option.",
       "Protect the integrity of trusted directories (e.g., /etc, /lib).",
       "Add LSM hooks that permit anyone to mount a white-listed file system with safe "
       "locations and options.",
       MountScenario},
      {"setuid, setgid",
       "polkit-agent-helper-1, sudo, pkexec, dbus-daemon-launch-helper, su, sudoedit, newgrp",
       "Only allowed with CAP_SETUID.",
       "Permit delegation of commands as configured by administrator, in some cases require "
       "recent reauthentication.",
       "Require authentication and authorization to execute as another user.",
       "Add LSM hooks that check delegation rules encoded in files like /etc/sudoers, and a "
       "kernel abstraction for recency.",
       SetuidScenario},
      {"credential databases", "chfn, chsh, gpasswd, lppasswd, passwd",
       "Only root can modify these files (or read /etc/shadow).",
       "A user may change her own entry to update password, shell, etc.",
       "Prevent users from accessing or modifying each other's accounts.",
       "Fragment the database to per-user or per-group configuration files, matching DAC "
       "granularity.",
       CredentialDbScenario},
      {"host private ssh key", "ssh-keysign",
       "Only root may read the key (FS permissions).",
       "Allow non-root users to sign their public key with the host key.",
       "A user should be able to acquire a host key signature without copying the host key.",
       "Restrict file access to specific binaries instead of, or in addition to, user IDs.",
       HostKeyScenario},
      {"video driver control state", "X",
       "Root must set the video card control state, required by older drivers.",
       "Any user may start an X server.",
       "An untrustworthy application could misconfigure another application's video state.",
       "Linux now context switches video devices in the kernel, called KMS.",
       VideoScenario},
  };
  return kMatrix;
}

}  // namespace protego
