// Reached-syscall-surface summaries over macro-workload profiles — the seed
// of the KASR-style attack-surface-reduction study (ROADMAP item 4): which
// slice of the syscall table does each workload actually exercise, and how
// much smaller is it than the gate's full dispatch surface?

#ifndef SRC_STUDY_SURFACE_H_
#define SRC_STUDY_SURFACE_H_

#include <string>
#include <vector>

#include "src/kernel/syscall.h"
#include "src/workload/workload.h"

namespace protego {

// One workload's reached surface, reduced from its gate histogram.
struct SurfaceProfile {
  std::string workload;
  std::vector<Sysno> reached;  // ascending syscall numbers with calls > 0
  uint64_t total_calls = 0;
  // reached / dispatchable: the fraction of the gate's syscall surface a
  // deny-by-default filter synthesized from this profile would keep open.
  double surface_fraction = 0;
};

SurfaceProfile SurfaceFromProfile(std::string workload,
                                  const workload::SyscallProfile& profile);

// Fixed-width table: one row per profile with the reached count, total
// calls, surface fraction, and the allow-list itself.
std::string FormatSurfaceTable(const std::vector<SurfaceProfile>& profiles);

}  // namespace protego

#endif  // SRC_STUDY_SURFACE_H_
