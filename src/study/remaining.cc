#include "src/study/remaining.h"

namespace protego {

const std::vector<RemainingGroup>& RemainingBinaries() {
  static const std::vector<RemainingGroup> kGroups = {
      {"socket", 14, true, "raw/packet sockets: covered by the netfilter extension (§4.1.1)"},
      {"bind", 23, true, "low ports: covered by /etc/bind allocations (§4.1.3)"},
      {"mount", 3, true, "covered by the mount whitelist (§4.2)"},
      {"setuid, setgid", 24, true, "covered by kernel delegation rules (§4.3)"},
      {"video driver control state", 13, true, "obviated by KMS (§4.5)"},
      {"chroot/namespace", 6, false,
       "unprivileged namespaces in Linux >= 3.8 remove the need (§4.6)"},
      {"miscellaneous", 8, false,
       "3 system administration (reboot/modules/network), 5 VirtualBox custom device"},
  };
  return kGroups;
}

int RemainingTotal() {
  int total = 0;
  for (const RemainingGroup& g : RemainingBinaries()) {
    total += g.binary_count;
  }
  return total;
}

int RemainingAddressed() {
  int total = 0;
  for (const RemainingGroup& g : RemainingBinaries()) {
    if (g.addressed_by_protego) {
      total += g.binary_count;
    }
  }
  return total;
}

}  // namespace protego
