#include "src/study/cves.h"

#include "src/base/strings.h"
#include "src/userland/daemon_utils.h"

namespace protego {

const std::vector<CveEntry>& CveCorpus() {
  static const std::vector<CveEntry> kCorpus = [] {
    std::vector<CveEntry> corpus;
    auto add = [&corpus](std::string id, std::string package, std::string binary,
                         std::vector<std::string> argv, std::string invoker_linux = "alice",
                         std::string invoker_protego = "alice") {
      CveEntry e;
      e.cve_id = std::move(id);
      e.package = std::move(package);
      e.binary = std::move(binary);
      e.extra_argv = std::move(argv);
      e.invoker_linux = std::move(invoker_linux);
      e.invoker_protego = std::move(invoker_protego);
      corpus.push_back(std::move(e));
    };

    // ping: reply-parsing overflows.
    for (const char* id :
         {"CVE-1999-1208", "CVE-2000-1213", "CVE-2000-1214", "CVE-2001-0499"}) {
      add(id, "ping", "/bin/ping", {"10.0.0.2", "1"});
    }
    // traceroute.
    for (const char* id : {"CVE-2005-2071", "CVE-2011-0765"}) {
      add(id, "traceroute", "/usr/bin/traceroute", {"10.0.0.2"});
    }
    // mount/umount option parsing.
    add("CVE-2006-2183", "mount,umount", "/bin/mount",
        {"/dev/cdrom", "--options=AAAA%n%n%n"});
    add("CVE-2007-5191", "mount,umount", "/bin/mount",
        {"/dev/cdrom", "--options=overflow"});
    // mtr.
    for (const char* id : {"CVE-2000-0172", "CVE-2002-0497", "CVE-2004-1224"}) {
      add(id, "mtr", "/usr/bin/mtr", {"10.0.0.2"});
    }
    // sendmail (modeled by the simulated MTA): remote input reaches the
    // daemon, which runs as root on stock systems.
    for (const char* id : {"CVE-1999-0130", "CVE-1999-0203"}) {
      // Modeled on the system's active MTA binary; the vulnerable surface
      // (message parsing with delivery privilege) is the same.
      add(id, "sendmail", "/usr/sbin/eximd", {"--deliver=alice:<evil>"}, "root", "exim");
    }
    // exim.
    for (const char* id : {"CVE-2010-2023", "CVE-2010-2024"}) {
      add(id, "exim", "/usr/sbin/eximd", {"--deliver=alice:<evil>"}, "root", "exim");
    }
    // sudo environment/argument handling.
    for (const char* id : {"CVE-2001-0279", "CVE-2002-0043", "CVE-2002-0184", "CVE-2009-0034",
                           "CVE-2010-2956"}) {
      add(id, "sudo", "/usr/bin/sudo", {"/usr/bin/id"});
    }
    add("CVE-2004-1689", "sudoedit", "/usr/bin/sudoedit", {"/etc/motd"});
    // newgrp.
    for (const char* id : {"CVE-1999-0050", "CVE-2000-0730", "CVE-2000-0755", "CVE-2001-0379",
                           "CVE-2004-1328", "CVE-2005-0816"}) {
      add(id, "newgrp", "/usr/bin/newgrp", {"staff"});
    }
    // passwd / su / chsh / chfn.
    add("CVE-2006-3378", "passwd", "/usr/bin/passwd", {});
    add("CVE-2003-0784", "passwd,su", "/usr/bin/passwd", {});
    add("CVE-2000-0996", "su", "/bin/su", {"bob"});
    add("CVE-2002-0816", "su", "/bin/su", {"bob"});
    add("CVE-2002-1616", "chsh,chfn,su,passwd", "/usr/bin/chsh", {"/bin/sh"});
    add("CVE-2005-1335", "chsh,chfn", "/usr/bin/chfn", {"Evil Name"});
    add("CVE-2011-0721", "chsh,chfn", "/usr/bin/chsh", {"/bin/sh"});
    // dbus / policykit helpers.
    add("CVE-2012-3524", "dbus", "/usr/lib/dbus-daemon-launch-helper", {"/usr/bin/id"});
    add("CVE-2011-1485", "pkexec,policykit", "/usr/bin/pkexec", {"/usr/bin/id"});
    add("CVE-2011-4945", "pkexec,policykit", "/usr/bin/pkexec", {"/usr/bin/id"});
    // X server.
    add("CVE-2002-0517", "X", "/usr/bin/xserver", {"--mode=800x600"});
    add("CVE-2006-4447", "X", "/usr/bin/xserver", {"--mode=800x600"});
    // Capability-handling bug (historically hit sendmail).
    add("CVE-2000-0506", "capabilities", "/usr/sbin/eximd", {"--deliver=alice:<evil>"},
        "root", "exim");
    return corpus;
  }();
  return kCorpus;
}

const std::vector<CveTotalsRow>& CveTotals() {
  static const std::vector<CveTotalsRow> kTotals = {
      {"ping", 84},          {"traceroute", 26},
      {"mount,umount", 114}, {"mtr", 4},
      {"sendmail", 84},      {"exim", 21},
      {"sudo", 61},          {"sudoedit", 3},
      {"newgrp", 7},         {"passwd", 87},
      {"passwd,su", 0},      {"su", 31},
      {"chsh,chfn,su,passwd", 0},
      {"chsh,chfn", 10},     {"dbus", 22},
      {"pkexec,policykit", 24},
      {"X", 33},             {"capabilities", 7},
  };
  return kTotals;
}

ExploitOutcome RunExploit(SimSystem& sys, const CveEntry& entry) {
  ExploitOutcome outcome;
  outcome.cve_id = entry.cve_id;

  const std::string& invoker =
      sys.mode() == SimMode::kLinux ? entry.invoker_linux : entry.invoker_protego;
  Task& session = sys.Login(invoker);

  std::vector<std::string> argv = {entry.binary};
  for (const std::string& a : entry.extra_argv) {
    argv.push_back(a);
  }
  argv.push_back("--exploit=" + entry.cve_id);
  auto out = sys.RunCapture(session, entry.binary, argv);

  // Actions that require root: succeeding at any of them from hijacked code
  // is a privilege escalation (the attacker starts unprivileged).
  static const char* kEscalationActions[] = {"overwrite_shadow", "install_rootkit",
                                             "tamper_etc", "setuid_root", "mount_over_etc",
                                             "hijack_route"};
  for (const std::string& line : Split(out.out, '\n')) {
    if (!StartsWith(line, "EXPLOIT ")) {
      continue;
    }
    outcome.triggered = true;
    auto kv = Split(line.substr(8), '=');
    if (kv.size() == 2 && kv[1] == "ok") {
      outcome.succeeded_actions.push_back(kv[0]);
      for (const char* action : kEscalationActions) {
        if (kv[0] == action) {
          outcome.escalated = true;
        }
      }
    }
  }
  sys.kernel().ReapTask(session.pid);
  return outcome;
}

std::vector<ExploitOutcome> RunCorpus(SimSystem& sys) {
  std::vector<ExploitOutcome> outcomes;
  for (const CveEntry& entry : CveCorpus()) {
    outcomes.push_back(RunExploit(sys, entry));
  }
  return outcomes;
}

}  // namespace protego
