#include "src/study/surface.h"

#include "src/base/strings.h"

namespace protego {

SurfaceProfile SurfaceFromProfile(std::string workload,
                                  const workload::SyscallProfile& profile) {
  SurfaceProfile out;
  out.workload = std::move(workload);
  for (Sysno nr : AllSysnos()) {
    const uint64_t calls = profile.calls[static_cast<size_t>(nr)];
    if (calls == 0) {
      continue;
    }
    out.reached.push_back(nr);
    out.total_calls += calls;
  }
  const size_t dispatchable = AllSysnos().size();
  out.surface_fraction =
      dispatchable > 0 ? static_cast<double>(out.reached.size()) / dispatchable : 0;
  return out;
}

std::string FormatSurfaceTable(const std::vector<SurfaceProfile>& profiles) {
  std::string out = StrFormat("%-14s %8s %12s %8s  %s\n", "workload", "reached",
                              "calls", "surface", "allow-list");
  for (const SurfaceProfile& p : profiles) {
    std::string allow;
    for (Sysno nr : p.reached) {
      if (!allow.empty()) {
        allow += ',';
      }
      allow += SysnoName(nr);
    }
    out += StrFormat("%-14s %8zu %12llu %7.0f%%  %s\n", p.workload.c_str(),
                     p.reached.size(), (unsigned long long)p.total_calls,
                     p.surface_fraction * 100.0, allow.c_str());
  }
  return out;
}

}  // namespace protego
