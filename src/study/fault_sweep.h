// The error-path sweep (the robustness counterpart of the functional
// suite): for every registered fault site, boot a fresh Protego system,
// enable single-site injection through the real /proc/protego/fault_inject
// control file, drive a workload that crosses the site, and audit the
// wreckage:
//
//   * errno contract   — the failing operation surfaces exactly the
//                        configured (or fail-closed) errno;
//   * no fd leak       — every task's fd table is back to its pre-fault size;
//   * no vnode leak    — the VFS block-accounting audit balances and the
//                        orphan list did not grow;
//   * no retained privilege — session credentials are byte-identical after a
//                        failed privileged transition;
//   * trace/metrics consistency — injections counted by the registry equal
//                        the kFaultInject events in the decision trace;
//   * replayability    — re-running the identical {seed, site-config} tuple
//                        on a fresh system reproduces the identical outcome.
//
// Two deeper checks ride along: a transactional policy-swap rollback proof
// (generation, verdicts, and decision cache all unperturbed by a fault
// mid-swap) and a DetScheduler replay proof (a seeded two-task schedule with
// probabilistic injection is bit-identical across runs).

#ifndef SRC_STUDY_FAULT_SWEEP_H_
#define SRC_STUDY_FAULT_SWEEP_H_

#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/sim/system.h"

namespace protego {

// The audited outcome of one site's single-site injection scenario.
struct FaultSiteAudit {
  FaultSite site = FaultSite::kCount;
  std::string scenario;     // what workload was driven
  std::string config_line;  // the directive written (the replay tuple)
  Errno expected = Errno::kOk;  // errno the failing operation must surface
  Errno observed = Errno::kOk;
  bool errno_ok = false;     // observed == expected AND scenario contract held
  uint64_t injections = 0;   // registry count; must be >= 1
  uint64_t trace_hits = 0;   // kFaultInject events in the decision trace
  bool trace_ok = false;     // trace_hits == injections
  bool no_fd_leak = false;
  bool vfs_ok = false;       // block audit balances, orphan list stable
  bool no_cred_retention = false;
  bool replay_ok = false;    // identical outcome on a fresh identical run
  std::string detail;        // diagnostics for whichever audit failed

  bool ok() const {
    return errno_ok && injections >= 1 && trace_ok && no_fd_leak && vfs_ok &&
           no_cred_retention && replay_ok;
  }
};

struct FaultSweepReport {
  std::vector<FaultSiteAudit> sites;  // one entry per FaultSite
  bool swap_rollback_ok = false;      // fault mid-swap rolls back provably
  std::string swap_detail;
  bool det_replay_ok = false;  // seeded scheduler + probabilistic injection replays
  std::string det_detail;

  bool all_ok() const;
  // Human-readable table, one line per site plus the deep checks.
  std::string Format() const;
};

// Runs the full sweep. Every registered site is exercised at least once;
// the report says which audits (if any) failed and why.
FaultSweepReport RunFaultSweep();

}  // namespace protego

#endif  // SRC_STUDY_FAULT_SWEEP_H_
