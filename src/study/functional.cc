#include "src/study/functional.h"

#include "src/base/hash.h"
#include "src/base/strings.h"
#include "src/config/passwd_db.h"

namespace protego {

namespace {

// Runs one command in `session`, queueing terminal input first, and appends
// a canonical record to `transcript`.
void Step(SimSystem& sys, Task& session, std::string* transcript, const std::string& label,
          const std::string& path, std::vector<std::string> argv,
          std::vector<std::string> terminal_input = {}) {
  for (std::string& line : terminal_input) {
    session.terminal->QueueInput(std::move(line));
  }
  auto out = sys.RunCapture(session, path, std::move(argv));
  *transcript += StrFormat("[%s] exit=%d stderr=%s\n", label.c_str(), out.exit_code,
                           out.err.empty() ? "empty" : "present");
  *transcript += out.out;
  if (!EndsWith(*transcript, "\n")) {
    *transcript += "\n";
  }
}

// Appends an out-of-band state probe (mode-agnostic by construction).
void Probe(std::string* transcript, const std::string& label, const std::string& value) {
  *transcript += "[probe:" + label + "] " + value + "\n";
}

// Reads the current shadow hash for `user`, from whichever database this
// mode maintains (the monitoring daemon keeps them in sync under Protego,
// so /etc/shadow works for both — which is itself part of the test).
std::string ShadowHashOf(SimSystem& sys, const std::string& user) {
  Task& root = sys.Login("root");
  auto content = sys.kernel().ReadWholeFile(root, "/etc/shadow");
  if (!content.ok()) {
    return "<unreadable>";
  }
  auto entries = ParseShadow(content.value());
  if (entries.ok()) {
    for (const ShadowEntry& e : entries.value()) {
      if (e.name == user) {
        return e.hash;
      }
    }
  }
  return "<absent>";
}

std::string PasswdFieldOf(SimSystem& sys, const std::string& user, int field) {
  Task& root = sys.Login("root");
  auto content = sys.kernel().ReadWholeFile(root, "/etc/passwd");
  if (!content.ok()) {
    return "<unreadable>";
  }
  for (const std::string& line : Split(content.value(), '\n')) {
    auto f = Split(line, ':');
    if (f.size() == 7 && f[0] == user) {
      return f[static_cast<size_t>(field)];
    }
  }
  return "<absent>";
}

// --- Scenarios -----------------------------------------------------------------

std::string MountLifecycle(SimSystem& sys) {
  std::string t;
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "mount-cdrom", "/bin/mount", {"mount", "/dev/cdrom"});
  Probe(&t, "mounted", sys.kernel().vfs().FindMount("/media/cdrom") ? "yes" : "no");
  Step(sys, alice, &t, "read-media", "/bin/cat", {"cat", "/media/cdrom/README"});
  Step(sys, alice, &t, "umount-cdrom", "/bin/umount", {"umount", "/media/cdrom"});
  Probe(&t, "mounted-after", sys.kernel().vfs().FindMount("/media/cdrom") ? "yes" : "no");
  Step(sys, alice, &t, "mount-denied", "/bin/mount", {"mount", "/dev/sda2", "/mnt/backup"});
  Step(sys, alice, &t, "mount-usage", "/bin/mount", {"mount"});
  Step(sys, alice, &t, "mount-unknown", "/bin/mount", {"mount", "/dev/nosuch"});
  // A corrupted fstab must fail cleanly (and, under Protego, leave the
  // in-kernel whitelist untouched thanks to parse-validate-swap).
  Task& root = sys.Login("root");
  auto saved_fstab = sys.kernel().ReadWholeFile(root, "/etc/fstab");
  (void)sys.kernel().WriteWholeFile(root, "/etc/fstab", "this is : not fstab");
  Step(sys, alice, &t, "mount-bad-fstab", "/bin/mount", {"mount", "/dev/cdrom"});
  (void)sys.kernel().WriteWholeFile(root, "/etc/fstab", saved_fstab.value_or(""));
  Step(sys, alice, &t, "umount-not-mounted", "/bin/umount", {"umount", "/media/usb"});
  Step(sys, alice, &t, "umount-usage", "/bin/umount", {"umount"});
  return t;
}

std::string UmountUsersOption(SimSystem& sys) {
  // "users": anyone may unmount, not just the mounter.
  std::string t;
  Task& alice = sys.Login("alice");
  Task& bob = sys.Login("bob");
  Step(sys, alice, &t, "alice-mounts-usb", "/bin/mount", {"mount", "/dev/sdb1"});
  Step(sys, bob, &t, "bob-unmounts-usb", "/bin/umount", {"umount", "/media/usb"});
  Probe(&t, "usb-mounted", sys.kernel().vfs().FindMount("/media/usb") ? "yes" : "no");
  // "user" (cdrom): a different user may NOT unmount.
  Step(sys, alice, &t, "alice-mounts-cdrom", "/bin/mount", {"mount", "/dev/cdrom"});
  Step(sys, bob, &t, "bob-cannot-unmount", "/bin/umount", {"umount", "/media/cdrom"});
  Probe(&t, "cdrom-still-mounted", sys.kernel().vfs().FindMount("/media/cdrom") ? "yes" : "no");
  Step(sys, alice, &t, "alice-unmounts", "/bin/umount", {"umount", "/media/cdrom"});
  return t;
}

std::string PingFamily(SimSystem& sys) {
  std::string t;
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "ping-gateway", "/bin/ping", {"ping", "10.0.0.2", "2"});
  // Routable subnet, but nobody home: the probe times out.
  Step(sys, alice, &t, "ping-silent-host", "/bin/ping", {"ping", "10.0.0.99", "1"});
  Step(sys, alice, &t, "ping-usage", "/bin/ping", {"ping"});
  Step(sys, alice, &t, "ping-bad-host", "/bin/ping", {"ping", "not-an-ip"});
  Step(sys, alice, &t, "ping-unroutable", "/bin/ping", {"ping", "203.0.113.9", "1"});
  Step(sys, alice, &t, "traceroute-web", "/usr/bin/traceroute", {"traceroute", "93.184.216.34"});
  Step(sys, alice, &t, "arping-gateway", "/usr/bin/arping", {"arping", "10.0.0.2"});
  Step(sys, alice, &t, "mtr-gateway", "/usr/bin/mtr", {"mtr", "10.0.0.2"});
  return t;
}

std::string SudoNopasswd(SimSystem& sys) {
  std::string t;
  Task& charlie = sys.Login("charlie");
  Step(sys, charlie, &t, "charlie-id-as-root", "/usr/bin/sudo", {"sudo", "/usr/bin/id"});
  return t;
}

std::string SudoAdminWithPassword(SimSystem& sys) {
  std::string t;
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "alice-admin-id", "/usr/bin/sudo", {"sudo", "/usr/bin/id"},
       {"alicepw"});
  // Within the 5-minute window: no password needed.
  Step(sys, alice, &t, "alice-admin-id-recent", "/usr/bin/sudo", {"sudo", "/usr/bin/id"});
  // After the window expires, authentication is required again (and the
  // queue is empty, so it fails).
  sys.kernel().clock().Advance(600);
  Step(sys, alice, &t, "alice-admin-id-expired", "/usr/bin/sudo", {"sudo", "/usr/bin/id"});
  return t;
}

std::string SudoDelegation(SimSystem& sys) {
  std::string t;
  Task& root = sys.Login("root");
  (void)sys.kernel().WriteWholeFile(root, "/home/alice/doc.txt", "hello", false, 0644);
  (void)sys.kernel().Chown(root, "/home/alice/doc.txt", 1000, 1000);
  Task& bob = sys.Login("bob");
  Step(sys, bob, &t, "bob-lpr-as-alice", "/usr/bin/sudo",
       {"sudo", "--user=alice", "/usr/bin/lpr", "/home/alice/doc.txt"}, {"bobpw"});
  Step(sys, bob, &t, "bob-cat-as-alice-denied", "/usr/bin/sudo",
       {"sudo", "--user=alice", "/bin/cat", "/home/alice/doc.txt"});
  Step(sys, bob, &t, "bob-unknown-user", "/usr/bin/sudo",
       {"sudo", "--user=nosuch", "/usr/bin/id"});
  Step(sys, bob, &t, "sudo-usage", "/usr/bin/sudo", {"sudo"});
  return t;
}

std::string SuFlows(SimSystem& sys) {
  std::string t;
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "alice-su-bob", "/bin/su", {"su", "bob"}, {"bobpw"});
  Step(sys, alice, &t, "alice-su-bob-badpw", "/bin/su", {"su", "bob"},
       {"wrong", "wrong", "wrong"});
  Step(sys, alice, &t, "su-unknown", "/bin/su", {"su", "nosuch"});
  Step(sys, alice, &t, "alice-su-bob-cmd", "/bin/su", {"su", "bob", "/usr/bin/id"},
       {"bobpw"});
  return t;
}

std::string NewgrpFlows(SimSystem& sys) {
  std::string t;
  Task& alice = sys.Login("alice");
  // alice is a listed member of staff: no password needed.
  Step(sys, alice, &t, "alice-newgrp-staff", "/usr/bin/newgrp", {"newgrp", "staff"});
  // bob is not a member; staff is password-protected.
  Task& bob = sys.Login("bob");
  Step(sys, bob, &t, "bob-newgrp-staff-pw", "/usr/bin/newgrp", {"newgrp", "staff"},
       {"staffpw"});
  Task& bob2 = sys.Login("bob");
  Step(sys, bob2, &t, "bob-newgrp-staff-bad", "/usr/bin/newgrp", {"newgrp", "staff"},
       {"wrong", "wrong", "wrong"});
  // mail has no group password and bob is not a member: always refused.
  Task& bob3 = sys.Login("bob");
  Step(sys, bob3, &t, "bob-newgrp-mail", "/usr/bin/newgrp", {"newgrp", "mail"});
  Step(sys, bob3, &t, "newgrp-unknown", "/usr/bin/newgrp", {"newgrp", "nosuch"});
  Step(sys, bob3, &t, "newgrp-usage", "/usr/bin/newgrp", {"newgrp"});
  return t;
}

std::string PasswdChange(SimSystem& sys) {
  std::string t;
  std::string before = ShadowHashOf(sys, "alice");
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "alice-passwd", "/usr/bin/passwd", {"passwd"},
       {"alicepw", "newsecret"});
  std::string after = ShadowHashOf(sys, "alice");
  Probe(&t, "hash-changed", before != after ? "yes" : "no");
  Probe(&t, "new-password-verifies", VerifyPassword("newsecret", after) ? "yes" : "no");
  Probe(&t, "old-password-verifies", VerifyPassword("alicepw", after) ? "yes" : "no");
  // bob cannot change alice's password.
  Task& bob = sys.Login("bob");
  Step(sys, bob, &t, "bob-passwd-alice-denied", "/usr/bin/passwd", {"passwd", "alice"});
  Probe(&t, "alice-hash-intact", ShadowHashOf(sys, "alice") == after ? "yes" : "no");
  // Wrong current password: the change is refused.
  Task& charlie = sys.Login("charlie");
  Step(sys, charlie, &t, "charlie-passwd-badpw", "/usr/bin/passwd", {"passwd"}, {"wrong"});
  // (Named temporary sidesteps GCC 12's -Wrestrict false positive,
  // PR105651, on the inlined string append.)
  std::string charlie_hash = ShadowHashOf(sys, "charlie");
  Probe(&t, "charlie-password-unchanged",
        VerifyPassword("charliepw", charlie_hash) ? "yes" : "no");
  // A process whose uid has no account cannot use passwd at all.
  Task& ghost = sys.kernel().CreateTask("ghost", Cred::ForUser(5000, 5000), bob.terminal);
  ghost.cwd = "/";
  Step(sys, ghost, &t, "ghost-passwd", "/usr/bin/passwd", {"passwd"});
  return t;
}

std::string ChshChfn(SimSystem& sys) {
  std::string t;
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "chsh-valid", "/usr/bin/chsh", {"chsh", "/bin/bash"});
  Probe(&t, "shell", PasswdFieldOf(sys, "alice", 6));
  Step(sys, alice, &t, "chsh-invalid", "/usr/bin/chsh", {"chsh", "/bin/evil"});
  Probe(&t, "shell-unchanged", PasswdFieldOf(sys, "alice", 6));
  Step(sys, alice, &t, "chsh-other-denied", "/usr/bin/chsh", {"chsh", "/bin/bash", "bob"});
  Probe(&t, "bob-shell", PasswdFieldOf(sys, "bob", 6));
  Step(sys, alice, &t, "chfn-self", "/usr/bin/chfn", {"chfn", "Alice A. Alison"});
  Probe(&t, "gecos", PasswdFieldOf(sys, "alice", 4));
  Step(sys, alice, &t, "chfn-other-denied", "/usr/bin/chfn", {"chfn", "Evil", "bob"});
  Step(sys, alice, &t, "chsh-usage", "/usr/bin/chsh", {"chsh"});
  Step(sys, alice, &t, "chfn-usage", "/usr/bin/chfn", {"chfn"});
  // Even root cannot edit a record that does not exist.
  Task& root = sys.Login("root");
  Step(sys, root, &t, "root-chsh-ghost", "/usr/bin/chsh", {"chsh", "/bin/bash", "ghost"});
  Step(sys, root, &t, "root-chfn-ghost", "/usr/bin/chfn", {"chfn", "Ghost", "ghost"});
  return t;
}

std::string GpasswdFlows(SimSystem& sys) {
  std::string t;
  // alice administers staff (first member).
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "alice-gpasswd-staff", "/usr/bin/gpasswd",
       {"gpasswd", "staff", "newgrouppw"});
  // The new group password admits non-members via newgrp.
  Task& bob = sys.Login("bob");
  Step(sys, bob, &t, "bob-newgrp-newpw", "/usr/bin/newgrp", {"newgrp", "staff"},
       {"newgrouppw"});
  // bob administers nothing.
  Task& bob2 = sys.Login("bob");
  Step(sys, bob2, &t, "bob-gpasswd-denied", "/usr/bin/gpasswd",
       {"gpasswd", "staff", "evilpw"});
  Step(sys, bob2, &t, "gpasswd-unknown", "/usr/bin/gpasswd", {"gpasswd", "nosuch", "x"});
  Step(sys, bob2, &t, "gpasswd-usage", "/usr/bin/gpasswd", {"gpasswd"});
  return t;
}

std::string SudoeditFlow(SimSystem& sys) {
  std::string t;
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "alice-sudoedit-motd", "/usr/bin/sudoedit", {"sudoedit", "/etc/motd"},
       {"Welcome to protego!", "alicepw"});
  Task& root = sys.Login("root");
  auto motd = sys.kernel().ReadWholeFile(root, "/etc/motd");
  Probe(&t, "motd", motd.ok() ? std::string(Trim(motd.value())) : "<absent>");
  // bob has no rule covering tee on /etc.
  Task& bob = sys.Login("bob");
  Step(sys, bob, &t, "bob-sudoedit-denied", "/usr/bin/sudoedit", {"sudoedit", "/etc/motd"},
       {"Evil contents", "bobpw"});
  Step(sys, bob, &t, "sudoedit-usage", "/usr/bin/sudoedit", {"sudoedit"});
  return t;
}

std::string VipwFlow(SimSystem& sys) {
  std::string t;
  Task& root = sys.Login("root");
  Step(sys, root, &t, "root-vipw", "/usr/sbin/vipw", {"vipw"},
       {"charlie:x:1002:1002:Charles:/home/charlie:/bin/bash"});
  Probe(&t, "charlie-shell", PasswdFieldOf(sys, "charlie", 6));
  Step(sys, root, &t, "vipw-bad-record", "/usr/sbin/vipw", {"vipw"}, {"not-a-record"});
  return t;
}

}  // namespace

const std::vector<FunctionalScenario>& FunctionalSuite() {
  static const std::vector<FunctionalScenario> kSuite = {
      {"mount_lifecycle", MountLifecycle},
      {"umount_users_option", UmountUsersOption},
      {"ping_family", PingFamily},
      {"sudo_nopasswd", SudoNopasswd},
      {"sudo_admin_password", SudoAdminWithPassword},
      {"sudo_delegation", SudoDelegation},
      {"su_flows", SuFlows},
      {"newgrp_flows", NewgrpFlows},
      {"passwd_change", PasswdChange},
      {"chsh_chfn", ChshChfn},
      {"gpasswd_flows", GpasswdFlows},
      {"sudoedit_flow", SudoeditFlow},
      {"vipw_flow", VipwFlow},
  };
  return kSuite;
}

std::string NormalizeTranscript(const std::string& transcript) {
  std::string out;
  for (const std::string& raw_line : Split(transcript, '\n')) {
    std::string line = raw_line;
    // Prompts have no trailing newline, so program output may share the
    // line; strip the prompt text and keep the rest.
    for (const char* prompt_head : {"[sudo] password for ", "[protego] password for "}) {
      size_t pos = line.find(prompt_head);
      while (pos != std::string::npos) {
        size_t colon = line.find(": ", pos);
        if (colon == std::string::npos) {
          line.erase(pos);
          break;
        }
        line.erase(pos, colon + 2 - pos);
        pos = line.find(prompt_head);
      }
    }
    for (const char* literal :
         {"Current password: ", "New password: ", "Password: ", "Sorry, try again."}) {
      size_t pos;
      while ((pos = line.find(literal)) != std::string::npos) {
        line.erase(pos, std::string(literal).size());
      }
    }
    if (Trim(line).empty()) {
      continue;
    }
    out += line;
    out += "\n";
  }
  return out;
}

std::vector<EquivalenceResult> RunEquivalenceSuite() {
  std::vector<EquivalenceResult> results;
  for (const FunctionalScenario& scenario : FunctionalSuite()) {
    EquivalenceResult r;
    r.name = scenario.name;
    {
      SimSystem linux_sys(SimMode::kLinux);
      r.linux_transcript = NormalizeTranscript(scenario.run(linux_sys));
    }
    {
      SimSystem protego_sys(SimMode::kProtego);
      r.protego_transcript = NormalizeTranscript(scenario.run(protego_sys));
    }
    r.equivalent = r.linux_transcript == r.protego_transcript;
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace protego
