#include "src/study/races.h"

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/vfs/types.h"

namespace protego {

namespace {

// The victim: a report generator that validates the job file belongs to its
// invoker, then opens it — the canonical check-then-use bug. The check and
// the open are separate syscalls, so a schedulable attacker can run between
// them.
int FilereportMain(ProcessContext& ctx, TocttouVariant variant) {
  std::string job = ctx.Flag("file").value_or(kTocttouJobPath);
  std::string out = ctx.Flag("out").value_or(kTocttouReportPath);

  // --- CHECK ---------------------------------------------------------------
  if (variant == TocttouVariant::kStatThenOpen) {
    auto st = ctx.kernel.Stat(ctx.task, job);
    if (!st.ok()) {
      ctx.Err(StrFormat("filereport: cannot stat %s\n", job.c_str()));
      return 1;
    }
    if (st.value().uid != ctx.task.cred.ruid) {
      ctx.Err(StrFormat("filereport: %s is not your file\n", job.c_str()));
      return 1;
    }
  } else {
    // access(2) checks with the REAL uid — precisely so setuid programs can
    // ask "could my invoker read this?". The answer is stale by the time of
    // the open, which is why access-then-open is its own CVE class.
    auto chk = ctx.kernel.Access(ctx.task, job, kMayRead);
    if (!chk.ok()) {
      ctx.Err(StrFormat("filereport: %s not readable by you\n", job.c_str()));
      return 1;
    }
  }

  // --- USE (the open runs with the victim's effective credentials) ---------
  auto fd = ctx.kernel.Open(ctx.task, job, kORdOnly, 0);
  if (!fd.ok()) {
    ctx.Err(StrFormat("filereport: open %s: %s\n", job.c_str(),
                      ErrnoName(fd.error().code())));
    return 1;
  }
  auto data = ctx.kernel.Read(ctx.task, fd.value());
  (void)ctx.kernel.Close(ctx.task, fd.value());
  if (!data.ok()) {
    return 1;
  }
  if (!ctx.kernel.WriteWholeFile(ctx.task, out, data.value()).ok()) {
    return 1;
  }
  ctx.Out(StrFormat("filereport: %zu bytes -> %s\n", data.value().size(), out.c_str()));
  return 0;
}

// The attacker: one atomic rename(2) that drops a pre-made symlink to the
// secret over the validated job path.
int SwapjobMain(ProcessContext& ctx) {
  std::string link = ctx.Flag("link").value_or("/tmp/evil");
  std::string target = ctx.Flag("over").value_or(kTocttouJobPath);
  auto r = ctx.kernel.Rename(ctx.task, link, target);
  if (!r.ok()) {
    ctx.Err(StrFormat("swapjob: rename: %s\n", ErrnoName(r.error().code())));
    return 1;
  }
  return 0;
}

class TocttouRun : public conc::ScenarioRun {
 public:
  TocttouRun(SimMode mode, TocttouVariant variant)
      : sys_(std::make_unique<SimSystem>(mode)) {
    Kernel& k = sys_->kernel();
    // The prize: root-only data the invoker cannot read directly.
    Must(k.vfs().CreateFile(kTocttouSecretPath, 0600, kRootUid, kRootGid,
                            std::string(kTocttouSecret) + "\n"));
    // The bait: a job file genuinely owned by the attacker, so the victim's
    // ownership check passes legitimately.
    const SimUser* alice = sys_->FindUser("alice");
    Must(k.vfs().CreateFile(kTocttouJobPath, 0644, alice->uid, alice->gid,
                            "benign job data\n"));
    Must(k.vfs().CreateSymlink("/tmp/evil", kTocttouSecretPath, alice->uid, alice->gid));
    // Setuid root on the stock system; a plain binary under Protego (and
    // under the capability rework, which also strips the bit).
    uint32_t victim_mode = mode == SimMode::kLinux ? 04755 : 0755;
    Must(k.InstallBinary("/usr/bin/filereport", victim_mode, kRootUid, kRootGid,
                         [variant](ProcessContext& ctx) {
                           return FilereportMain(ctx, variant);
                         }));
    Must(k.InstallBinary("/usr/bin/swapjob", 0755, kRootUid, kRootGid, SwapjobMain));
    session_ = &sys_->Login("alice");
  }

  Kernel& kernel() override { return sys_->kernel(); }

  void RegisterTasks(TaskScheduler& /*sched*/) override {
    // SpawnAsync registers each child as a schedulable unit with the
    // attached scheduler; the interleaving of their syscalls is then
    // entirely the explorer's choice.
    auto victim = sys_->kernel().SpawnAsync(*session_, "/usr/bin/filereport",
                                            {"filereport"}, {});
    auto attacker = sys_->kernel().SpawnAsync(*session_, "/usr/bin/swapjob",
                                              {"swapjob"}, {});
    victim_pid_ = victim.value_or(-1);
    attacker_pid_ = attacker.value_or(-1);
  }

  std::optional<std::string> CheckInvariant() override {
    if (victim_pid_ > 0) {
      (void)sys_->kernel().WaitPid(*session_, victim_pid_);
    }
    if (attacker_pid_ > 0) {
      (void)sys_->kernel().WaitPid(*session_, attacker_pid_);
    }
    auto report = sys_->kernel().vfs().ReadFile(kTocttouReportPath);
    if (report.ok() && report.value().find(kTocttouSecret) != std::string::npos) {
      return StrFormat("victim leaked %s into world-readable %s", kTocttouSecretPath,
                       kTocttouReportPath);
    }
    return std::nullopt;
  }

 private:
  template <typename T>
  static void Must(Result<T> r) {
    if (!r.ok()) {
      LogError("TocttouRun setup: " + r.error().ToString());
      abort();
    }
  }

  std::unique_ptr<SimSystem> sys_;
  Task* session_ = nullptr;
  int victim_pid_ = -1;
  int attacker_pid_ = -1;
};

// Two whole-file rewriters of /etc/passwd racing each other. Root runs both
// so no reauthentication prompts get in the way; the interesting state is
// purely the shared database file.
class PasswdLostUpdateRun : public conc::ScenarioRun {
 public:
  explicit PasswdLostUpdateRun(bool with_flock)
      : sys_(std::make_unique<SimSystem>(SimMode::kLinux)), with_flock_(with_flock) {
    session_ = &sys_->Login("root");
  }

  Kernel& kernel() override { return sys_->kernel(); }

  void RegisterTasks(TaskScheduler& /*sched*/) override {
    std::map<std::string, std::string> env;
    if (!with_flock_) {
      env["PROTEGO_NO_FLOCK"] = "1";
    }
    a_pid_ = sys_->kernel()
                 .SpawnAsync(*session_, "/usr/bin/chfn",
                             {"chfn", kLostUpdateGecosAlice, "alice"}, env)
                 .value_or(-1);
    b_pid_ = sys_->kernel()
                 .SpawnAsync(*session_, "/usr/bin/chfn",
                             {"chfn", kLostUpdateGecosBob, "bob"}, env)
                 .value_or(-1);
  }

  std::optional<std::string> CheckInvariant() override {
    std::string failures;
    for (int pid : {a_pid_, b_pid_}) {
      if (pid <= 0) {
        continue;
      }
      auto status = sys_->kernel().WaitPid(*session_, pid);
      if (!status.ok()) {
        failures += StrFormat("pid %d: %s; ", pid, status.error().ToString().c_str());
      } else if (status.value() != 0) {
        failures += StrFormat("pid %d exited %d; ", pid, status.value());
      }
    }
    if (with_flock_ && !failures.empty()) {
      // With locking, every schedule must terminate cleanly — a deadlocked
      // flock would surface here as EDEADLK or a nonzero exit.
      return "chfn did not complete cleanly: " + failures;
    }
    if (!with_flock_ && !failures.empty()) {
      // Without locking, schedules also exist where a reader catches the
      // other updater's truncate-then-write window and fails LOUDLY. Those
      // are a symptom of the same missing lock, but the hunt here is for the
      // scarier SILENT lost update: both editors report success, yet one
      // edit is gone.
      return std::nullopt;
    }
    auto passwd = sys_->kernel().vfs().ReadFile("/etc/passwd");
    if (!passwd.ok()) {
      return std::string("/etc/passwd unreadable after updates");
    }
    bool alice_kept = passwd.value().find(kLostUpdateGecosAlice) != std::string::npos;
    bool bob_kept = passwd.value().find(kLostUpdateGecosBob) != std::string::npos;
    if (!alice_kept || !bob_kept) {
      return StrFormat("lost update: alice=%s bob=%s in final /etc/passwd",
                       alice_kept ? "kept" : "lost", bob_kept ? "kept" : "lost");
    }
    return std::nullopt;
  }

 private:
  std::unique_ptr<SimSystem> sys_;
  bool with_flock_;
  Task* session_ = nullptr;
  int a_pid_ = -1;
  int b_pid_ = -1;
};

}  // namespace

const char* TocttouVariantName(TocttouVariant variant) {
  switch (variant) {
    case TocttouVariant::kStatThenOpen: return "stat-then-open";
    case TocttouVariant::kAccessThenOpen: return "access-then-open";
  }
  return "?";
}

conc::ScenarioFactory MakeTocttouScenario(SimMode mode, TocttouVariant variant) {
  return [mode, variant] { return std::make_unique<TocttouRun>(mode, variant); };
}

conc::ScenarioFactory MakePasswdLostUpdateScenario(bool with_flock) {
  return [with_flock] { return std::make_unique<PasswdLostUpdateRun>(with_flock); };
}

}  // namespace protego
