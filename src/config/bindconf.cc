#include "src/config/bindconf.h"

#include "src/base/lexer.h"
#include "src/base/strings.h"

namespace protego {

std::string BindConfEntry::ToString() const {
  return StrFormat("%u %s %u", port, binary.c_str(), uid);
}

Result<std::vector<BindConfEntry>> ParseBindConf(std::string_view content) {
  std::vector<BindConfEntry> entries;
  for (const ConfigLine& line : LexConfig(content)) {
    std::vector<std::string> fields = LexFields(line.text);
    if (fields.size() != 3) {
      return Error(Errno::kEINVAL,
                   StrFormat("/etc/bind line %d: expected <port> <binary> <uid>",
                             line.line_number));
    }
    auto port = ParseUint(fields[0]);
    auto uid = ParseUint(fields[2]);
    if (!port || *port == 0 || *port >= 1024) {
      return Error(Errno::kEINVAL,
                   StrFormat("/etc/bind line %d: port must be 1..1023", line.line_number));
    }
    if (fields[1].empty() || fields[1][0] != '/') {
      return Error(Errno::kEINVAL,
                   StrFormat("/etc/bind line %d: binary must be absolute", line.line_number));
    }
    if (!uid) {
      return Error(Errno::kEINVAL, StrFormat("/etc/bind line %d: bad uid", line.line_number));
    }
    // A port may carry several (binary, uid) allocations; only a literal
    // repeat of an existing allocation is a configuration error.
    for (const BindConfEntry& prev : entries) {
      if (prev.port == *port && prev.binary == fields[1] && prev.uid == *uid) {
        return Error(Errno::kEINVAL,
                     StrFormat("/etc/bind line %d: duplicate allocation %llu %s %llu",
                               line.line_number, static_cast<unsigned long long>(*port),
                               fields[1].c_str(), static_cast<unsigned long long>(*uid)));
      }
    }
    entries.push_back(BindConfEntry{static_cast<uint16_t>(*port), fields[1],
                                    static_cast<Uid>(*uid)});
  }
  return entries;
}

std::string SerializeBindConf(const std::vector<BindConfEntry>& entries) {
  std::string out = "# <port> <binary> <uid>\n";
  for (const BindConfEntry& e : entries) {
    out += e.ToString() + "\n";
  }
  return out;
}

}  // namespace protego
