#include "src/config/bindconf.h"

#include <set>

#include "src/base/lexer.h"
#include "src/base/strings.h"

namespace protego {

std::string BindConfEntry::ToString() const {
  return StrFormat("%u %s %u", port, binary.c_str(), uid);
}

Result<std::vector<BindConfEntry>> ParseBindConf(std::string_view content) {
  std::vector<BindConfEntry> entries;
  std::set<uint16_t> seen;
  for (const ConfigLine& line : LexConfig(content)) {
    std::vector<std::string> fields = LexFields(line.text);
    if (fields.size() != 3) {
      return Error(Errno::kEINVAL,
                   StrFormat("/etc/bind line %d: expected <port> <binary> <uid>",
                             line.line_number));
    }
    auto port = ParseUint(fields[0]);
    auto uid = ParseUint(fields[2]);
    if (!port || *port == 0 || *port >= 1024) {
      return Error(Errno::kEINVAL,
                   StrFormat("/etc/bind line %d: port must be 1..1023", line.line_number));
    }
    if (fields[1].empty() || fields[1][0] != '/') {
      return Error(Errno::kEINVAL,
                   StrFormat("/etc/bind line %d: binary must be absolute", line.line_number));
    }
    if (!uid) {
      return Error(Errno::kEINVAL, StrFormat("/etc/bind line %d: bad uid", line.line_number));
    }
    if (!seen.insert(static_cast<uint16_t>(*port)).second) {
      return Error(Errno::kEINVAL,
                   StrFormat("/etc/bind line %d: duplicate port %llu", line.line_number,
                             static_cast<unsigned long long>(*port)));
    }
    entries.push_back(BindConfEntry{static_cast<uint16_t>(*port), fields[1],
                                    static_cast<Uid>(*uid)});
  }
  return entries;
}

std::string SerializeBindConf(const std::vector<BindConfEntry>& entries) {
  std::string out = "# <port> <binary> <uid>\n";
  for (const BindConfEntry& e : entries) {
    out += e.ToString() + "\n";
  }
  return out;
}

}  // namespace protego
