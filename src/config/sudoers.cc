#include "src/config/sudoers.h"

#include <algorithm>

#include "src/base/lexer.h"
#include "src/base/strings.h"

namespace protego {

bool SudoRule::RunasMatches(const std::string& target) const {
  for (const std::string& r : runas) {
    if (r == "ALL" || r == target) {
      return true;
    }
  }
  return false;
}

bool SudoRule::CommandMatches(const std::string& command_line) const {
  for (const std::string& c : commands) {
    if (c == "ALL" || GlobMatch(c, command_line)) {
      return true;
    }
    // A bare binary path also matches an invocation with no arguments and
    // any invocation of that binary followed by arguments.
    if (!c.empty() && c.find('*') == std::string::npos &&
        StartsWith(command_line, c + " ")) {
      return true;
    }
  }
  return false;
}

std::string SudoRule::ToString() const {
  const char* tag = nopasswd ? "NOPASSWD: " : (targetpw ? "TARGETPW: " : "");
  return StrFormat("%s ALL=(%s) %s%s", user.c_str(), Join(runas, ",").c_str(), tag,
                   Join(commands, ", ").c_str());
}

namespace {

Result<Unit> ParseLine(const ConfigLine& line, SudoersPolicy* policy) {
  std::vector<std::string> fields = LexFields(line.text);
  if (fields.empty()) {
    return OkUnit();
  }

  if (fields[0] == "Defaults") {
    // Defaults key=value[, key=value]...
    std::string rest(Trim(line.text.substr(8)));
    for (const std::string& clause : Split(rest, ',')) {
      std::string_view c = Trim(clause);
      if (StartsWith(c, "timestamp_timeout=")) {
        auto v = ParseUint(c.substr(18));
        if (!v) {
          return Error(Errno::kEINVAL,
                       StrFormat("sudoers line %d: bad timestamp_timeout", line.line_number));
        }
        policy->timestamp_timeout_sec = *v * 60;  // sudo expresses it in minutes
      } else if (StartsWith(c, "env_keep=")) {
        std::string val(c.substr(9));
        if (val.size() >= 2 && val.front() == '"' && val.back() == '"') {
          val = val.substr(1, val.size() - 2);
        }
        policy->env_keep = SplitWhitespace(val);
      }
      // Unknown Defaults clauses are ignored, as sudo does for plugins.
    }
    return OkUnit();
  }

  if (fields[0] == "Group_Auth") {
    if (fields.size() != 2) {
      return Error(Errno::kEINVAL, StrFormat("sudoers line %d: Group_Auth <group>",
                                             line.line_number));
    }
    policy->password_groups.push_back(fields[1]);
    return OkUnit();
  }

  if (fields[0] == "File_Delegate") {
    if (fields.size() != 4 || (fields[3] != "r" && fields[3] != "rw" && fields[3] != "w")) {
      return Error(Errno::kEINVAL,
                   StrFormat("sudoers line %d: File_Delegate <binary> <glob> <r|w|rw>",
                             line.line_number));
    }
    FileDelegation d;
    d.binary = fields[1];
    d.path_glob = fields[2];
    if (fields[3].find('r') != std::string::npos) {
      d.allow_may |= kMayRead;
    }
    if (fields[3].find('w') != std::string::npos) {
      d.allow_may |= kMayWrite;
    }
    policy->file_delegations.push_back(std::move(d));
    return OkUnit();
  }

  if (fields[0] == "Reauth_Read") {
    if (fields.size() != 2) {
      return Error(Errno::kEINVAL,
                   StrFormat("sudoers line %d: Reauth_Read <glob>", line.line_number));
    }
    policy->reauth_read_globs.push_back(fields[1]);
    return OkUnit();
  }

  // Classic rule: user HOST=(runas) [NOPASSWD:] cmd[, cmd]...
  SudoRule rule;
  rule.user = fields[0];
  size_t eq = line.text.find('=');
  if (eq == std::string::npos) {
    return Error(Errno::kEINVAL, StrFormat("sudoers line %d: missing '='", line.line_number));
  }
  // Keep the backing string alive: every later string_view slices into it.
  std::string_view rest = Trim(std::string_view(line.text).substr(eq + 1));
  if (!rest.empty() && rest[0] == '(') {
    size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      return Error(Errno::kEINVAL, StrFormat("sudoers line %d: unclosed runas list",
                                             line.line_number));
    }
    for (const std::string& r : Split(rest.substr(1, close - 1), ',')) {
      rule.runas.push_back(std::string(Trim(r)));
    }
    rest = Trim(rest.substr(close + 1));
  } else {
    rule.runas = {"root"};  // sudo's default runas
  }
  if (StartsWith(rest, "NOPASSWD:")) {
    rule.nopasswd = true;
    rest = Trim(rest.substr(9));
  } else if (StartsWith(rest, "TARGETPW:")) {
    rule.targetpw = true;
    rest = Trim(rest.substr(9));
  } else if (StartsWith(rest, "PASSWD:")) {
    rest = Trim(rest.substr(7));
  }
  if (rest.empty()) {
    return Error(Errno::kEINVAL, StrFormat("sudoers line %d: no commands", line.line_number));
  }
  for (const std::string& c : Split(rest, ',')) {
    std::string cmd(Trim(c));
    if (!cmd.empty()) {
      rule.commands.push_back(std::move(cmd));
    }
  }
  policy->rules.push_back(std::move(rule));
  return OkUnit();
}

}  // namespace

Result<SudoersPolicy> ParseSudoers(std::string_view content) {
  SudoersPolicy policy;
  for (const ConfigLine& line : LexConfig(content)) {
    RETURN_IF_ERROR(ParseLine(line, &policy));
  }
  return policy;
}

Result<SudoersPolicy> ParseSudoersWithFragments(std::string_view main_content,
                                                const std::vector<std::string>& fragments) {
  ASSIGN_OR_RETURN(SudoersPolicy policy, ParseSudoers(main_content));
  for (const std::string& fragment : fragments) {
    ASSIGN_OR_RETURN(SudoersPolicy extra, ParseSudoers(fragment));
    for (auto& r : extra.rules) {
      policy.rules.push_back(std::move(r));
    }
    for (auto& g : extra.password_groups) {
      policy.password_groups.push_back(std::move(g));
    }
    for (auto& d : extra.file_delegations) {
      policy.file_delegations.push_back(std::move(d));
    }
    for (auto& g : extra.reauth_read_globs) {
      policy.reauth_read_globs.push_back(std::move(g));
    }
  }
  return policy;
}

std::string SerializeSudoers(const SudoersPolicy& policy) {
  std::string out;
  out += StrFormat("Defaults timestamp_timeout=%llu\n",
                   static_cast<unsigned long long>(policy.timestamp_timeout_sec / 60));
  out += "Defaults env_keep=\"" + Join(policy.env_keep, " ") + "\"\n";
  for (const std::string& g : policy.password_groups) {
    out += "Group_Auth " + g + "\n";
  }
  for (const FileDelegation& d : policy.file_delegations) {
    std::string may;
    if (d.allow_may & kMayRead) {
      may += "r";
    }
    if (d.allow_may & kMayWrite) {
      may += "w";
    }
    out += StrFormat("File_Delegate %s %s %s\n", d.binary.c_str(), d.path_glob.c_str(),
                     may.c_str());
  }
  for (const std::string& g : policy.reauth_read_globs) {
    out += "Reauth_Read " + g + "\n";
  }
  for (const SudoRule& r : policy.rules) {
    out += r.ToString() + "\n";
  }
  return out;
}

}  // namespace protego
