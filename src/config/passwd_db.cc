#include "src/config/passwd_db.h"

#include "src/base/strings.h"

namespace protego {

std::string PasswdEntry::ToLine() const {
  return StrFormat("%s:x:%u:%u:%s:%s:%s", name.c_str(), uid, gid, gecos.c_str(), home.c_str(),
                   shell.c_str());
}

std::string ShadowEntry::ToLine() const {
  return StrFormat("%s:%s:%llu:::::", name.c_str(), hash.c_str(),
                   static_cast<unsigned long long>(last_change));
}

std::string GroupEntry::ToLine() const {
  return StrFormat("%s:%s:%u:%s", name.c_str(), password_hash.c_str(), gid,
                   Join(members, ",").c_str());
}

Result<PasswdEntry> ParsePasswdLine(std::string_view line) {
  std::vector<std::string> f = Split(line, ':');
  if (f.size() != 7) {
    return Error(Errno::kEINVAL, "passwd record: " + std::string(line));
  }
  auto uid = ParseUint(f[2]);
  auto gid = ParseUint(f[3]);
  if (f[0].empty() || !uid || !gid) {
    return Error(Errno::kEINVAL, "passwd record: " + std::string(line));
  }
  PasswdEntry e;
  e.name = f[0];
  e.uid = static_cast<Uid>(*uid);
  e.gid = static_cast<Gid>(*gid);
  e.gecos = f[4];
  e.home = f[5];
  e.shell = f[6];
  return e;
}

Result<std::vector<PasswdEntry>> ParsePasswd(std::string_view content) {
  std::vector<PasswdEntry> entries;
  for (const std::string& line : Split(content, '\n')) {
    if (Trim(line).empty()) {
      continue;
    }
    ASSIGN_OR_RETURN(PasswdEntry e, ParsePasswdLine(line));
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string SerializePasswd(const std::vector<PasswdEntry>& entries) {
  std::string out;
  for (const PasswdEntry& e : entries) {
    out += e.ToLine() + "\n";
  }
  return out;
}

Result<ShadowEntry> ParseShadowLine(std::string_view line) {
  std::vector<std::string> f = Split(line, ':');
  if (f.size() < 3 || f[0].empty()) {
    return Error(Errno::kEINVAL, "shadow record: " + std::string(line));
  }
  ShadowEntry e;
  e.name = f[0];
  e.hash = f[1];
  e.last_change = ParseUint(f[2]).value_or(0);
  return e;
}

Result<std::vector<ShadowEntry>> ParseShadow(std::string_view content) {
  std::vector<ShadowEntry> entries;
  for (const std::string& line : Split(content, '\n')) {
    if (Trim(line).empty()) {
      continue;
    }
    ASSIGN_OR_RETURN(ShadowEntry e, ParseShadowLine(line));
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string SerializeShadow(const std::vector<ShadowEntry>& entries) {
  std::string out;
  for (const ShadowEntry& e : entries) {
    out += e.ToLine() + "\n";
  }
  return out;
}

Result<GroupEntry> ParseGroupLine(std::string_view line) {
  std::vector<std::string> f = Split(line, ':');
  if (f.size() != 4 || f[0].empty()) {
    return Error(Errno::kEINVAL, "group record: " + std::string(line));
  }
  auto gid = ParseUint(f[2]);
  if (!gid) {
    return Error(Errno::kEINVAL, "group record: " + std::string(line));
  }
  GroupEntry e;
  e.name = f[0];
  e.password_hash = f[1];
  e.gid = static_cast<Gid>(*gid);
  if (!f[3].empty()) {
    e.members = Split(f[3], ',');
  }
  return e;
}

Result<std::vector<GroupEntry>> ParseGroup(std::string_view content) {
  std::vector<GroupEntry> entries;
  for (const std::string& line : Split(content, '\n')) {
    if (Trim(line).empty()) {
      continue;
    }
    ASSIGN_OR_RETURN(GroupEntry e, ParseGroupLine(line));
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string SerializeGroup(const std::vector<GroupEntry>& entries) {
  std::string out;
  for (const GroupEntry& e : entries) {
    out += e.ToLine() + "\n";
  }
  return out;
}

UserDb::UserDb(std::vector<PasswdEntry> users, std::vector<ShadowEntry> shadows,
               std::vector<GroupEntry> groups)
    : users_(std::move(users)), shadows_(std::move(shadows)), groups_(std::move(groups)) {}

const PasswdEntry* UserDb::FindUser(const std::string& name) const {
  for (const PasswdEntry& e : users_) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

const PasswdEntry* UserDb::FindUid(Uid uid) const {
  for (const PasswdEntry& e : users_) {
    if (e.uid == uid) {
      return &e;
    }
  }
  return nullptr;
}

const ShadowEntry* UserDb::FindShadow(const std::string& name) const {
  for (const ShadowEntry& e : shadows_) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

const GroupEntry* UserDb::FindGroup(const std::string& name) const {
  for (const GroupEntry& e : groups_) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

const GroupEntry* UserDb::FindGid(Gid gid) const {
  for (const GroupEntry& e : groups_) {
    if (e.gid == gid) {
      return &e;
    }
  }
  return nullptr;
}

std::vector<std::string> UserDb::GroupsOf(const std::string& user) const {
  std::vector<std::string> out;
  for (const GroupEntry& g : groups_) {
    for (const std::string& m : g.members) {
      if (m == user) {
        out.push_back(g.name);
        break;
      }
    }
  }
  return out;
}

}  // namespace protego
