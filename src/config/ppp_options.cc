#include "src/config/ppp_options.h"

#include <algorithm>

#include "src/base/lexer.h"
#include "src/base/strings.h"

namespace protego {

bool PppOptions::IsSafeOption(const std::string& opt) const {
  // "mtu 1400" style options match on the keyword.
  std::string keyword = SplitWhitespace(opt).empty() ? opt : SplitWhitespace(opt)[0];
  return std::find(safe_options.begin(), safe_options.end(), keyword) != safe_options.end();
}

Result<PppOptions> ParsePppOptions(std::string_view content) {
  PppOptions options;
  for (const ConfigLine& line : LexConfig(content)) {
    std::vector<std::string> fields = LexFields(line.text);
    if (fields.empty()) {
      continue;
    }
    if (fields[0] == "userroutes") {
      options.user_routes = true;
    } else if (fields[0] == "nouserroutes") {
      options.user_routes = false;
    } else if (fields[0] == "userdialout") {
      options.user_dialout = true;
    } else if (fields[0] == "nouserdialout") {
      options.user_dialout = false;
    } else if (fields[0] == "safeopt" && fields.size() == 2) {
      options.safe_options.push_back(fields[1]);
    } else {
      return Error(Errno::kEINVAL,
                   StrFormat("ppp options line %d: unknown directive '%s'", line.line_number,
                             fields[0].c_str()));
    }
  }
  return options;
}

std::string SerializePppOptions(const PppOptions& options) {
  std::string out;
  out += options.user_routes ? "userroutes\n" : "nouserroutes\n";
  out += options.user_dialout ? "userdialout\n" : "nouserdialout\n";
  for (const std::string& opt : options.safe_options) {
    out += "safeopt " + opt + "\n";
  }
  return out;
}

}  // namespace protego
