#include "src/config/fstab.h"

#include <algorithm>

#include "src/base/lexer.h"
#include "src/base/strings.h"

namespace protego {

bool FstabEntry::HasOption(const std::string& opt) const {
  return std::find(options.begin(), options.end(), opt) != options.end();
}

bool FstabEntry::UserMountable() const { return HasOption("user") || HasOption("users"); }

bool FstabEntry::AnyUserMayUnmount() const { return HasOption("users"); }

std::string FstabEntry::ToString() const {
  return StrFormat("%s %s %s %s", device.c_str(), mountpoint.c_str(), fstype.c_str(),
                   Join(options, ",").c_str());
}

Result<std::vector<FstabEntry>> ParseFstab(std::string_view content) {
  std::vector<FstabEntry> entries;
  for (const ConfigLine& line : LexConfig(content)) {
    std::vector<std::string> fields = LexFields(line.text);
    // device mountpoint fstype options [dump [pass]]
    if (fields.size() < 4 || fields.size() > 6) {
      return Error(Errno::kEINVAL,
                   StrFormat("fstab line %d: expected 4-6 fields", line.line_number));
    }
    FstabEntry entry;
    entry.device = fields[0];
    entry.mountpoint = fields[1];
    entry.fstype = fields[2];
    entry.options = Split(fields[3], ',');
    if (entry.mountpoint.empty() || entry.mountpoint[0] != '/') {
      return Error(Errno::kEINVAL,
                   StrFormat("fstab line %d: mountpoint must be absolute", line.line_number));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string SerializeFstab(const std::vector<FstabEntry>& entries) {
  std::string out = "# <device> <mountpoint> <fstype> <options>\n";
  for (const FstabEntry& e : entries) {
    out += e.ToString() + "\n";
  }
  return out;
}

}  // namespace protego
