// /etc/ppp/options parser (§4.1.2). Declares which pppd behaviours the
// administrator permits for unprivileged users: safe session options are
// always fine; route additions need the "userroutes" grant.

#ifndef SRC_CONFIG_PPP_OPTIONS_H_
#define SRC_CONFIG_PPP_OPTIONS_H_

#include <string>
#include <vector>

#include "src/base/result.h"

namespace protego {

struct PppOptions {
  // Options any user may set on an unused modem (compression, congestion
  // control, etc.). Defaults mirror pppd's "safe when non-root" list.
  std::vector<std::string> safe_options = {"novj", "bsdcomp", "deflate", "noccp", "mtu", "mru"};

  // May unprivileged users add non-conflicting routes over a ppp link?
  bool user_routes = false;

  // May unprivileged users bring up a link at all (defaultroute excluded)?
  bool user_dialout = true;

  bool IsSafeOption(const std::string& opt) const;
};

Result<PppOptions> ParsePppOptions(std::string_view content);

std::string SerializePppOptions(const PppOptions& options);

}  // namespace protego

#endif  // SRC_CONFIG_PPP_OPTIONS_H_
