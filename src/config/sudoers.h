// /etc/sudoers parser, plus the Protego extensions (§4.3) that explicate
// policies previously hard-coded in other setuid binaries:
//
//   Classic rules:    alice ALL=(bob) NOPASSWD: /usr/bin/lpr *
//   su-style rules:   ALL ALL=(ALL) TARGETPW: ALL
//                     (authenticate with the TARGET user's password, as su does)
//   Defaults:         Defaults timestamp_timeout=5, env_keep="PATH TERM"
//   Group auth:       Group_Auth staff            (newgrp: password-protected group)
//   File delegation:  File_Delegate /usr/bin/ssh-keysign /etc/ssh/host_key r
//                     (grants ONE binary access to ONE sensitive file)
//   Reauth files:     Reauth_Read /etc/shadows/*  (reading requires recent auth)

#ifndef SRC_CONFIG_SUDOERS_H_
#define SRC_CONFIG_SUDOERS_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/vfs/types.h"

namespace protego {

// One classic sudoers rule: who may run what as whom.
struct SudoRule {
  std::string user;                  // username, "%group", or "ALL"
  std::vector<std::string> runas;    // target users, or {"ALL"}
  std::vector<std::string> commands; // command globs (argv joined), or {"ALL"}
  bool nopasswd = false;
  bool targetpw = false;  // authenticate the target user, not the invoker (su)

  bool RunasMatches(const std::string& target) const;
  bool CommandMatches(const std::string& command_line) const;
  std::string ToString() const;
};

// Protego extension: one binary granted access to one sensitive file.
struct FileDelegation {
  std::string binary;
  std::string path_glob;
  int allow_may = 0;  // kMayRead / kMayWrite bits
};

struct SudoersPolicy {
  std::vector<SudoRule> rules;
  std::vector<std::string> password_groups;   // Group_Auth entries
  std::vector<FileDelegation> file_delegations;
  std::vector<std::string> reauth_read_globs; // Reauth_Read entries
  uint64_t timestamp_timeout_sec = 300;       // sudo's 5-minute default
  std::vector<std::string> env_keep = {"PATH", "TERM", "HOME", "USER", "LANG"};
};

Result<SudoersPolicy> ParseSudoers(std::string_view content);

// Parses a main file plus the contents of sudoers.d fragments, in order.
Result<SudoersPolicy> ParseSudoersWithFragments(std::string_view main_content,
                                                const std::vector<std::string>& fragments);

std::string SerializeSudoers(const SudoersPolicy& policy);

}  // namespace protego

#endif  // SRC_CONFIG_SUDOERS_H_
