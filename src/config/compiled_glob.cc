#include "src/config/compiled_glob.h"

#include "src/base/strings.h"

namespace protego {

CompiledGlob::CompiledGlob(std::string pattern) : pattern_(std::move(pattern)) {
  if (pattern_.find('?') != std::string::npos) {
    kind_ = Kind::kGeneral;
    return;
  }
  size_t star = pattern_.find('*');
  if (star == std::string::npos) {
    kind_ = Kind::kLiteral;
    return;
  }
  if (pattern_.find('*', star + 1) != std::string::npos) {
    kind_ = Kind::kGeneral;
    return;
  }
  head_ = pattern_.substr(0, star);
  tail_ = pattern_.substr(star + 1);
  if (tail_.empty()) {
    kind_ = Kind::kPrefix;
  } else if (head_.empty()) {
    kind_ = Kind::kSuffix;
  } else {
    kind_ = Kind::kPrefixSuffix;
  }
}

bool CompiledGlob::Matches(std::string_view text) const {
  switch (kind_) {
    case Kind::kLiteral:
      return text == pattern_;
    case Kind::kPrefix:
      return StartsWith(text, head_);
    case Kind::kSuffix:
      return EndsWith(text, tail_);
    case Kind::kPrefixSuffix:
      // The star must cover a (possibly empty) middle: head and tail may
      // not overlap, hence the length check before the two compares.
      return text.size() >= head_.size() + tail_.size() && StartsWith(text, head_) &&
             EndsWith(text, tail_);
    case Kind::kGeneral:
      return GlobMatch(pattern_, text);
  }
  return false;
}

}  // namespace protego
