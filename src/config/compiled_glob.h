// A glob pattern compiled once at policy-load time.
//
// Policy tables are swapped wholesale through /proc/protego, so pattern
// analysis can happen at swap time instead of on every hook invocation. The
// overwhelmingly common shapes in fstab/sudoers policy are literals
// ("/dev/cdrom"), single-star prefixes ("/etc/shadows/*"), suffixes and
// prefix/suffix pairs ("/home/*/mnt"); those compile down to length checks
// plus memcmp, sidestepping the generic backtracking matcher entirely.
// Anything with '?' or multiple stars falls back to GlobMatch.

#ifndef SRC_CONFIG_COMPILED_GLOB_H_
#define SRC_CONFIG_COMPILED_GLOB_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace protego {

class CompiledGlob {
 public:
  CompiledGlob() = default;
  explicit CompiledGlob(std::string pattern);

  bool Matches(std::string_view text) const;

  // True when the pattern contains no wildcards (matching is equality, so
  // the pattern can serve as an exact-index key).
  bool is_literal() const { return kind_ == Kind::kLiteral; }
  const std::string& pattern() const { return pattern_; }

 private:
  enum class Kind : uint8_t {
    kLiteral,       // no wildcard: text == pattern
    kPrefix,        // "head*":     text starts with head
    kSuffix,        // "*tail":     text ends with tail
    kPrefixSuffix,  // "head*tail": both, without overlap
    kGeneral,       // anything else: GlobMatch
  };

  std::string pattern_;
  std::string head_;  // literal run before the single '*'
  std::string tail_;  // literal run after it
  Kind kind_ = Kind::kLiteral;
};

}  // namespace protego

#endif  // SRC_CONFIG_COMPILED_GLOB_H_
