// /etc/fstab parser. The "user"/"users" options are the operational
// constraints administrators set for unprivileged mounting (§2): an fstab
// entry carrying them may be mounted by a non-root user ("user": only the
// mounting user may unmount; "users": anyone may unmount).

#ifndef SRC_CONFIG_FSTAB_H_
#define SRC_CONFIG_FSTAB_H_

#include <string>
#include <vector>

#include "src/base/result.h"

namespace protego {

struct FstabEntry {
  std::string device;      // e.g. /dev/cdrom
  std::string mountpoint;  // e.g. /media/cdrom
  std::string fstype;      // e.g. iso9660
  std::vector<std::string> options;

  bool HasOption(const std::string& opt) const;
  // True when "user" or "users" is present.
  bool UserMountable() const;
  // True when "users" (anyone may unmount) is present.
  bool AnyUserMayUnmount() const;

  std::string ToString() const;
};

// Parses fstab content. Malformed lines fail the whole parse (the paper's
// proc-interface uses parse-validate-swap semantics; a bad file must not be
// half-applied).
Result<std::vector<FstabEntry>> ParseFstab(std::string_view content);

std::string SerializeFstab(const std::vector<FstabEntry>& entries);

}  // namespace protego

#endif  // SRC_CONFIG_FSTAB_H_
