// /etc/bind parser (§4.1.3): maps each TCP/UDP port below 1024 to the
// application instances allowed to bind it, each identified by
// (binary path, uid). A port usually carries one allocation, but may list
// several (e.g. a service that can run under either of two accounts).
//
// Grammar, one mapping per line:
//   <port> <binary-path> <uid>
//   25 /usr/sbin/exim4 0
//   80 /usr/sbin/httpd 33

#ifndef SRC_CONFIG_BINDCONF_H_
#define SRC_CONFIG_BINDCONF_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/vfs/types.h"

namespace protego {

struct BindConfEntry {
  uint16_t port = 0;
  std::string binary;
  Uid uid = 0;

  std::string ToString() const;
};

// Parses /etc/bind. Rejects ports >= 1024, relative binary paths, and
// literally duplicated allocations (same port, binary, and uid).
Result<std::vector<BindConfEntry>> ParseBindConf(std::string_view content);

std::string SerializeBindConf(const std::vector<BindConfEntry>& entries);

}  // namespace protego

#endif  // SRC_CONFIG_BINDCONF_H_
