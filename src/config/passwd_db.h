// Credential-database records and (de)serialization: /etc/passwd,
// /etc/shadow, /etc/group — both the legacy shared files and the per-record
// fragmented layout Protego introduces (§4.4: /etc/passwds/<user>, etc.).

#ifndef SRC_CONFIG_PASSWD_DB_H_
#define SRC_CONFIG_PASSWD_DB_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/vfs/types.h"

namespace protego {

struct PasswdEntry {
  std::string name;
  Uid uid = 0;
  Gid gid = 0;
  std::string gecos;  // full name / office ("chfn" edits this)
  std::string home;
  std::string shell;  // "chsh" edits this

  std::string ToLine() const;  // "name:x:uid:gid:gecos:home:shell"
};

struct ShadowEntry {
  std::string name;
  std::string hash;  // "$sim$salt$hex", "!" = locked, "" = no password
  uint64_t last_change = 0;

  std::string ToLine() const;  // "name:hash:lastchg:::::"
};

struct GroupEntry {
  std::string name;
  Gid gid = 0;
  std::string password_hash;  // newgrp password-protected groups
  std::vector<std::string> members;

  std::string ToLine() const;  // "name:hash:gid:member1,member2"
};

Result<std::vector<PasswdEntry>> ParsePasswd(std::string_view content);
Result<PasswdEntry> ParsePasswdLine(std::string_view line);
std::string SerializePasswd(const std::vector<PasswdEntry>& entries);

Result<std::vector<ShadowEntry>> ParseShadow(std::string_view content);
Result<ShadowEntry> ParseShadowLine(std::string_view line);
std::string SerializeShadow(const std::vector<ShadowEntry>& entries);

Result<std::vector<GroupEntry>> ParseGroup(std::string_view content);
Result<GroupEntry> ParseGroupLine(std::string_view line);
std::string SerializeGroup(const std::vector<GroupEntry>& entries);

// An in-memory view over the three databases with the lookups the
// delegation and authentication machinery needs.
class UserDb {
 public:
  UserDb() = default;
  UserDb(std::vector<PasswdEntry> users, std::vector<ShadowEntry> shadows,
         std::vector<GroupEntry> groups);

  const PasswdEntry* FindUser(const std::string& name) const;
  const PasswdEntry* FindUid(Uid uid) const;
  const ShadowEntry* FindShadow(const std::string& name) const;
  const GroupEntry* FindGroup(const std::string& name) const;
  const GroupEntry* FindGid(Gid gid) const;

  // All group names listing `user` as a member.
  std::vector<std::string> GroupsOf(const std::string& user) const;

  const std::vector<PasswdEntry>& users() const { return users_; }
  const std::vector<ShadowEntry>& shadows() const { return shadows_; }
  const std::vector<GroupEntry>& groups() const { return groups_; }

 private:
  std::vector<PasswdEntry> users_;
  std::vector<ShadowEntry> shadows_;
  std::vector<GroupEntry> groups_;
};

}  // namespace protego

#endif  // SRC_CONFIG_PASSWD_DB_H_
