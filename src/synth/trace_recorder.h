// Trace collection for policy synthesis (§6 of the reproduction's DESIGN).
//
// The synthesizer never reads hand-written policy: its only input is what
// the utilities were OBSERVED to do. This module drives every functional
// scenario — plus the daemon/delegation drivers the functional suite does
// not cover — on a fresh Protego system with the syscall-gate recorder and
// the kernel authentication observer attached, and folds the per-scenario
// event streams into a TraceCorpus.
//
// Determinism contract: each scenario runs on its OWN SimSystem, so its
// event stream is a pure function of the scenario. The corpus keys streams
// by scenario name (sorted map); collecting under the deterministic driver
// and collecting with one OS thread per scenario therefore yield identical
// corpora, which is what makes synthesized policy text byte-identical
// across ExecMode::kDeterministic and ExecMode::kParallel.

#ifndef SRC_SYNTH_TRACE_RECORDER_H_
#define SRC_SYNTH_TRACE_RECORDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/kernel/exec_mode.h"
#include "src/kernel/syscall.h"
#include "src/study/functional.h"

namespace protego::synth {

// One recorded event: a syscall entry/exit observation, or one
// authentication round trip through the trusted agent.
struct SynthEvent {
  enum class Kind { kSyscall, kAuth };
  Kind kind = Kind::kSyscall;

  // kind == kSyscall
  SyscallGate::SyscallObservation sys;

  // kind == kAuth: the kernel asked the agent to authenticate `auth_pid`
  // against `auth_accounts`; `auth_ok` reports the outcome.
  int auth_pid = 0;
  std::vector<Uid> auth_accounts;
  bool auth_ok = false;
  Uid auth_as = 0;  // the account that authenticated (valid when auth_ok)
};

// Per-scenario event streams from one full tracing run.
struct TraceCorpus {
  uint64_t seed = 0;
  // Scenario name -> ordered event stream. std::map so iteration (and
  // therefore synthesis) is independent of collection order.
  std::map<std::string, std::vector<SynthEvent>> streams;

  size_t TotalEvents() const;
};

// The drivers the synthesizer needs beyond FunctionalSuite(): privileged
// daemons binding low ports (eximd, httpd) and the file-delegation client
// (ssh-keysign). Each scenario picks the invoker per mode the same way the
// CVE corpus does: daemons launch as root on stock Linux and as their
// service account under Protego.
const std::vector<FunctionalScenario>& SynthExtraScenarios();

// FunctionalSuite() + SynthExtraScenarios(), the full tracing workload.
std::vector<FunctionalScenario> SynthWorkload();

// Runs every workload scenario on a fresh SimSystem(kProtego) with the
// recorder attached and returns the folded corpus. kDeterministic collects
// sequentially; kParallel runs one OS thread per scenario.
TraceCorpus CollectTraces(uint64_t seed, ExecMode mode);

}  // namespace protego::synth

#endif  // SRC_SYNTH_TRACE_RECORDER_H_
