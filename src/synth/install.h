// Installs a synthesized policy into a live system through the same
// surfaces an administrator would use: the /proc/protego policy files
// (parse-validate-swap) for the mount whitelist, bind table, and delegation
// policy, and Kernel::RegisterBinaryFilter for the per-binary argument
// filters (attached on the next exec of each binary, AppArmor-style).
//
// Nothing is written to /etc: the point of the synthesized-only studies is
// that the KERNEL policy in force came from traces alone, while the shared
// configuration both stacks read stays stock.

#ifndef SRC_SYNTH_INSTALL_H_
#define SRC_SYNTH_INSTALL_H_

#include "src/base/result.h"
#include "src/sim/system.h"
#include "src/synth/synthesizer.h"

namespace protego::synth {

struct InstallOptions {
  bool filters = true;   // register per-binary seccomp filters
  bool policies = true;  // swap in mounts/ports/sudoers tables
};

Result<Unit> InstallSynthesized(SimSystem& sys, const SynthesizedPolicy& policy,
                                const InstallOptions& options = {});

}  // namespace protego::synth

#endif  // SRC_SYNTH_INSTALL_H_
