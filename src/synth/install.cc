#include "src/synth/install.h"

namespace protego::synth {

Result<Unit> InstallSynthesized(SimSystem& sys, const SynthesizedPolicy& policy,
                                const InstallOptions& options) {
  if (sys.mode() != SimMode::kProtego) {
    return Error(Errno::kEINVAL, "synthesized policy requires a Protego system");
  }
  Kernel& kernel = sys.kernel();
  if (options.policies) {
    Task& root = sys.Login("root");
    RETURN_IF_ERROR(
        kernel.WriteWholeFile(root, "/proc/protego/mounts", policy.mounts_text));
    RETURN_IF_ERROR(kernel.WriteWholeFile(root, "/proc/protego/ports", policy.ports_text));
    RETURN_IF_ERROR(
        kernel.WriteWholeFile(root, "/proc/protego/sudoers", policy.sudoers_text));
  }
  if (options.filters) {
    for (const UtilityFilter& f : policy.filters) {
      ASSIGN_OR_RETURN(SeccompFilter filter, SeccompFilter::FromSpec(f.spec));
      kernel.RegisterBinaryFilter(f.exe, std::move(filter));
    }
  }
  return OkUnit();
}

}  // namespace protego::synth
