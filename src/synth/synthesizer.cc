#include "src/synth/synthesizer.h"

#include <algorithm>
#include <memory>
#include <set>

#include "src/base/strings.h"
#include "src/config/passwd_db.h"
#include "src/protego/protego_lsm.h"
#include "src/sim/system.h"
#include "src/vfs/types.h"

namespace protego::synth {

std::string SynthContext::UserName(Uid uid) const {
  auto it = user_names.find(uid);
  return it != user_names.end() ? it->second : StrFormat("#%u", uid);
}

std::string SynthContext::GroupName(Gid gid) const {
  auto it = group_names.find(gid);
  return it != group_names.end() ? it->second : StrFormat("#%u", gid);
}

SynthContext ReferenceContext() {
  auto sys = std::make_shared<SimSystem>(SimMode::kProtego);
  SynthContext ctx;
  Task& root = sys->Login("root");
  if (auto content = sys->kernel().ReadWholeFile(root, "/etc/passwd"); content.ok()) {
    if (auto entries = ParsePasswd(content.value()); entries.ok()) {
      for (const PasswdEntry& e : entries.value()) {
        ctx.user_names[e.uid] = e.name;
      }
    }
  }
  if (auto content = sys->kernel().ReadWholeFile(root, "/etc/group"); content.ok()) {
    if (auto entries = ParseGroup(content.value()); entries.ok()) {
      for (const GroupEntry& e : entries.value()) {
        ctx.group_names[e.gid] = e.name;
      }
    }
  }
  // The probe captures the pristine system: metadata of files created or
  // chmodded during a traced scenario is deliberately invisible (such files
  // are scenario working state, not protected system objects).
  ctx.stat = [sys](const std::string& path) -> std::optional<SynthContext::FileMeta> {
    auto entry = sys->kernel().vfs().Resolve(path);
    if (!entry.ok()) {
      return std::nullopt;
    }
    SynthContext::FileMeta meta;
    meta.uid = entry.value()->inode().uid;
    meta.mode = entry.value()->inode().mode;
    return meta;
  };
  return ctx;
}

const UtilityFilter* SynthesizedPolicy::FilterFor(const std::string& exe) const {
  for (const UtilityFilter& f : filters) {
    if (f.exe == exe) {
      return &f;
    }
  }
  return nullptr;
}

std::string SynthesizedPolicy::Render() const {
  std::string out = StrFormat("# synthesized policy v1 seed=%llu\n",
                              static_cast<unsigned long long>(seed));
  for (const UtilityFilter& f : filters) {
    out += "== filter " + f.exe + " ==\n";
    out += f.text;
  }
  out += "== mounts ==\n";
  out += mounts_text;
  out += "== ports ==\n";
  out += ports_text;
  out += "== sudoers ==\n";
  out += sudoers_text;
  return out;
}

SynthStats& GlobalSynthStats() {
  static SynthStats* stats = new SynthStats();
  return *stats;
}

void SynthStats::CollectMetrics(MetricsBuilder& b) const {
  b.Counter("protego_synth_runs_total", "Policy synthesis passes completed", {},
            runs.load(std::memory_order_relaxed));
  b.Counter("protego_synth_observations_total",
            "Syscall observations consumed by policy synthesis", {},
            observations.load(std::memory_order_relaxed));
  b.Counter("protego_synth_filters_total", "Per-binary seccomp filters synthesized", {},
            filters.load(std::memory_order_relaxed));
  b.Counter("protego_synth_filter_rules_total",
            "Argument predicate rules emitted into synthesized filters", {},
            filter_rules.load(std::memory_order_relaxed));
  b.Counter("protego_synth_path_classes_total",
            "Path-prefix classes emitted into synthesized filters", {},
            path_classes.load(std::memory_order_relaxed));
  b.Counter("protego_synth_policy_rows_total",
            "Mount, bind-table, and sudoers rows synthesized", {},
            policy_rows.load(std::memory_order_relaxed));
}

void SynthStats::Reset() {
  runs.store(0, std::memory_order_relaxed);
  observations.store(0, std::memory_order_relaxed);
  filters.store(0, std::memory_order_relaxed);
  filter_rules.store(0, std::memory_order_relaxed);
  path_classes.store(0, std::memory_order_relaxed);
  policy_rows.store(0, std::memory_order_relaxed);
}

namespace {

using Observation = SyscallGate::SyscallObservation;

// --- Filter synthesis ----------------------------------------------------------

// Ceilings beyond which predicate synthesis degrades to a plain allow: an
// installable filter must stay well under SeccompFilter::kMaxRulesPerSysno
// so the one-way latch can still intersect it with another filter.
constexpr size_t kMaxSynthClasses = 48;
constexpr size_t kMaxSynthRulesPerSysno = 32;

bool TakesPath(Sysno nr) {
  switch (nr) {
    case Sysno::kOpen:
    case Sysno::kStat:
    case Sysno::kAccess:
    case Sysno::kGetDents:
    case Sysno::kUnlink:
    case Sysno::kMkdir:
    case Sysno::kChmod:
    case Sysno::kChown:
    case Sysno::kRename:
    case Sysno::kSymlink:
    case Sysno::kClone:
    case Sysno::kExecve:
    case Sysno::kMount:
    case Sysno::kUmount2:
      return true;
    default:
      return false;
  }
}

bool TakesFd(Sysno nr) {
  switch (nr) {
    case Sysno::kRead:
    case Sysno::kWrite:
    case Sysno::kClose:
    case Sysno::kIoctl:
    case Sysno::kFlock:
    case Sysno::kConnect:
    case Sysno::kSendTo:
    case Sysno::kRecvFrom:
    case Sysno::kBind:
    case Sysno::kListen:
      return true;
    default:
      return false;
  }
}

SeccompPredicate PathPred(uint64_t class_id) {
  SeccompPredicate p;
  p.arg = kSeccompArgPath;
  p.cmp = SeccompCmp::kEq;
  p.value = class_id;
  return p;
}

SeccompPredicate ArgPred(uint8_t arg, SeccompCmp cmp, uint64_t value, uint64_t mask = 0) {
  SeccompPredicate p;
  p.arg = arg;
  p.cmp = cmp;
  p.value = value;
  p.mask = mask;
  return p;
}

std::string DirOf(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos || slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

// Synthesizes one binary's filter from everything it was observed to call.
// Observed calls are admitted whether they succeeded or not: a call the
// utility legitimately issues and handles the error of (a denied mount, a
// probing stat) must keep reaching DAC/LSM so the error stays the same.
UtilityFilter SynthesizeFilter(const std::string& exe,
                               const std::vector<const Observation*>& obs,
                               SynthStats& stats) {
  SeccompFilter::Spec spec;

  // Path classes: group observed paths by directory; a directory touched
  // through three or more distinct paths becomes one "dir/" prefix class
  // (the utility clearly works on that directory), otherwise each path gets
  // an exact class.
  std::map<std::string, std::set<std::string>> by_dir;
  for (const Observation* ob : obs) {
    if (TakesPath(ob->nr) && !ob->path.empty()) {
      by_dir[DirOf(ob->path)].insert(ob->path);
    }
  }
  std::set<std::string> prefixes;
  for (const auto& [dir, paths] : by_dir) {
    if (paths.size() >= 3 && dir != "/") {
      prefixes.insert(dir + "/");
    } else {
      prefixes.insert(paths.begin(), paths.end());
    }
  }
  bool use_paths = !prefixes.empty() && prefixes.size() <= kMaxSynthClasses;
  std::map<std::string, uint64_t> class_of;  // prefix -> id
  if (use_paths) {
    uint64_t next_id = 1;
    for (const std::string& prefix : prefixes) {
      spec.path_classes.emplace_back(prefix, next_id);
      class_of[prefix] = next_id;
      ++next_id;
    }
    stats.path_classes.fetch_add(spec.path_classes.size(), std::memory_order_relaxed);
  }
  // Longest prefix wins, mirroring SeccompFilter::PathClassOf.
  auto class_for_path = [&class_of](const std::string& path) -> uint64_t {
    uint64_t best = 0;
    size_t best_len = 0;
    for (const auto& [prefix, id] : class_of) {
      if (prefix.size() >= best_len && path.compare(0, prefix.size(), prefix) == 0) {
        best = id;
        best_len = prefix.size();
      }
    }
    return best;
  };

  // Per-syscall argument shapes.
  for (Sysno nr : AllSysnos()) {
    std::vector<const Observation*> calls;
    for (const Observation* ob : obs) {
      if (ob->nr == nr) {
        calls.push_back(ob);
      }
    }
    if (calls.empty()) {
      continue;  // never observed -> denied outright
    }
    spec.allowed.set(static_cast<size_t>(nr));

    std::vector<SeccompRule> rules;
    bool encodable = true;
    if (TakesPath(nr) && use_paths) {
      if (nr == Sysno::kOpen) {
        // One rule per path class, with the flag bits confined to the
        // union observed for that class: (flags & ~union) == 0.
        std::map<uint64_t, uint64_t> flags_union;  // class -> union of a1
        for (const Observation* ob : calls) {
          if (ob->path.empty()) {
            encodable = false;
            break;
          }
          flags_union[class_for_path(ob->path)] |= ob->a1;
        }
        for (const auto& [cls, flag_bits] : flags_union) {
          SeccompRule r;
          r.preds.push_back(PathPred(cls));
          r.preds.push_back(ArgPred(1, SeccompCmp::kMaskedEq, 0, ~flag_bits));
          rules.push_back(std::move(r));
        }
      } else {
        std::set<uint64_t> classes;
        for (const Observation* ob : calls) {
          if (ob->path.empty()) {
            encodable = false;
            break;
          }
          classes.insert(class_for_path(ob->path));
        }
        for (uint64_t cls : classes) {
          SeccompRule r;
          r.preds.push_back(PathPred(cls));
          rules.push_back(std::move(r));
        }
      }
    } else if (nr == Sysno::kSocket) {
      std::set<std::pair<uint64_t, uint64_t>> shapes;
      for (const Observation* ob : calls) {
        shapes.insert({ob->a0, ob->a1});
      }
      for (const auto& [family, type] : shapes) {
        SeccompRule r;
        r.preds.push_back(ArgPred(0, SeccompCmp::kEq, family));
        r.preds.push_back(ArgPred(1, SeccompCmp::kEq, type));
        rules.push_back(std::move(r));
      }
    } else if (nr == Sysno::kBind) {
      uint64_t max_fd = 0;
      std::set<uint64_t> ports;
      for (const Observation* ob : calls) {
        max_fd = std::max(max_fd, ob->a0);
        ports.insert(ob->a1);
      }
      uint64_t fd_bound = ((max_fd / 4) + 1) * 4;
      for (uint64_t port : ports) {
        SeccompRule r;
        r.preds.push_back(ArgPred(0, SeccompCmp::kLt, fd_bound));
        r.preds.push_back(ArgPred(1, SeccompCmp::kEq, port));
        rules.push_back(std::move(r));
      }
    } else if (TakesFd(nr)) {
      uint64_t max_fd = 0;
      for (const Observation* ob : calls) {
        max_fd = std::max(max_fd, ob->a0);
      }
      SeccompRule r;
      r.preds.push_back(ArgPred(0, SeccompCmp::kLt, ((max_fd / 4) + 1) * 4));
      rules.push_back(std::move(r));
    } else if (nr == Sysno::kSetuid || nr == Sysno::kSetgid) {
      std::set<uint64_t> ids;
      for (const Observation* ob : calls) {
        ids.insert(ob->a0);
      }
      for (uint64_t id : ids) {
        SeccompRule r;
        r.preds.push_back(ArgPred(0, SeccompCmp::kEq, id));
        rules.push_back(std::move(r));
      }
    } else if (nr == Sysno::kSetreuid) {
      std::set<uint64_t> ids;
      for (const Observation* ob : calls) {
        ids.insert(ob->a1);
      }
      for (uint64_t id : ids) {
        SeccompRule r;
        r.preds.push_back(ArgPred(1, SeccompCmp::kEq, id));
        rules.push_back(std::move(r));
      }
    }
    // Anything else observed (getpid, wait4, unshare, rlimits, setgroups,
    // seccomp) stays a plain allow: their argument spaces are either
    // harmless or vary legitimately run to run.

    if (encodable && !rules.empty() && rules.size() <= kMaxSynthRulesPerSysno) {
      stats.filter_rules.fetch_add(rules.size(), std::memory_order_relaxed);
      spec.rules[static_cast<uint16_t>(nr)] = std::move(rules);
    }
  }

  UtilityFilter f;
  f.exe = exe;
  f.spec = std::move(spec);
  auto built = SeccompFilter::FromSpec(f.spec);
  // FromSpec can only fail on malformed specs; everything above emits
  // well-formed ones. Degrade to a ruleless allow-list if it ever does.
  if (!built.ok()) {
    f.spec.rules.clear();
    f.spec.path_classes.clear();
    built = SeccompFilter::FromSpec(f.spec);
  }
  f.text = built.value().Render();
  stats.filters.fetch_add(1, std::memory_order_relaxed);
  return f;
}

// --- Delegation (sudoers) synthesis --------------------------------------------

std::string Basename(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool IsSudoLike(const std::string& exe) {
  std::string base = Basename(exe);
  return base == "sudo" || base == "sudoedit" || base == "pkexec";
}

// Replaces home-relative path arguments with a per-home glob, the one
// generalization a trace supports: the invoker was delegated work on that
// user's files, not on one specific file name.
std::string GeneralizeArg(const std::string& arg) {
  if (StartsWith(arg, "/home/")) {
    size_t slash = arg.find('/', 6);
    if (slash != std::string::npos && slash + 1 < arg.size()) {
      return arg.substr(0, slash + 1) + "*";
    }
  }
  return arg;
}

bool DacReadAllows(const SynthContext::FileMeta& meta, Uid euid) {
  if (euid == 0 || (euid == meta.uid && (meta.mode & 0400) != 0)) {
    return true;
  }
  // Group membership is invisible to an observation; counting the group
  // bit as readable errs toward NOT synthesizing a delegation.
  return (meta.mode & 0044) != 0;
}

// The delegation glob a protected read generalizes to: fragment databases
// widen to the whole directory (the service reads whichever fragment the
// request names), anything else stays the exact path.
std::string DelegationGlob(const std::string& path) {
  std::string dir = DirOf(path);
  if (dir == "/etc/shadows" || dir == "/etc/groups" || dir == "/etc/passwds") {
    return dir + "/*";
  }
  return path;
}

struct SudoersEvidence {
  bool targetpw = false;
  std::set<Gid> auth_groups;
  // (user, runas) pairs with an immediate-auth ALL grant.
  std::set<std::pair<std::string, std::string>> all_rules;
  // (user, runas, command, nopasswd) command-restricted grants.
  std::set<std::tuple<std::string, std::string, std::string, bool>> command_rules;
  std::set<std::pair<std::string, std::string>> delegations;  // (binary, glob)
  std::set<std::string> reauth_globs;
};

void CollectSudoersEvidence(const std::vector<SynthEvent>& events, const SynthContext& ctx,
                            SudoersEvidence* ev) {
  // Stream-order scan state.
  std::map<int, const Observation*> first_obs;          // pid -> first syscall obs
  for (const SynthEvent& e : events) {
    if (e.kind != SynthEvent::Kind::kSyscall) {
      continue;
    }
    if (first_obs.find(e.sys.pid) == first_obs.end()) {
      first_obs[e.sys.pid] = &e.sys;
    }
  }
  auto ruid_of = [&first_obs](int pid) -> std::optional<Uid> {
    auto it = first_obs.find(pid);
    if (it == first_obs.end()) {
      return std::nullopt;
    }
    return it->second->ruid;
  };

  // Authentication round trips: target-account auth is su semantics, group
  // accounts are newgrp semantics.
  for (const SynthEvent& e : events) {
    if (e.kind != SynthEvent::Kind::kAuth || !e.auth_ok) {
      continue;
    }
    for (Uid account : e.auth_accounts) {
      if (account >= kGroupAuthBase) {
        ev->auth_groups.insert(static_cast<Gid>(account - kGroupAuthBase));
      } else if (auto invoker = ruid_of(e.auth_pid);
                 invoker.has_value() && account != *invoker) {
        ev->targetpw = true;
      }
    }
  }
  // Delegation rules from sudo-family pids. The stream is in syscall
  // COMPLETION order — nested calls finish first, so the sudo pid's own
  // execve record (entry-snapshotted as the invoking shell's image) lands
  // AFTER everything sudo itself did. A per-pid "current exe" is therefore
  // meaningless; instead each successful setuid whose entry snapshot shows a
  // sudo-family image marks one delegation attempt, anchored at that event.
  //
  // Authentication placement distinguishes the rule shapes: an ALL rule
  // authenticates the invoker on the sudo pid itself at setuid time, while a
  // command rule defers authentication to the exec — which happens in the
  // spawned child, so the AUTH round trip lands on the child pid that
  // execve'd the command.
  std::map<int, std::string> execve_path;  // child pid -> first successful exec
  for (const SynthEvent& e : events) {
    if (e.kind == SynthEvent::Kind::kSyscall && e.sys.nr == Sysno::kExecve &&
        e.sys.err == Errno::kOk && execve_path.find(e.sys.pid) == execve_path.end()) {
      execve_path[e.sys.pid] = e.sys.path;
    }
  }
  auto self_auth = [&events](int pid, Uid invoker) {
    for (const SynthEvent& e : events) {
      if (e.kind == SynthEvent::Kind::kAuth && e.auth_pid == pid && e.auth_ok &&
          std::find(e.auth_accounts.begin(), e.auth_accounts.end(), invoker) !=
              e.auth_accounts.end()) {
        return true;
      }
    }
    return false;
  };
  auto child_auth = [&events, &execve_path](Uid invoker, const std::string& command_path) {
    for (const SynthEvent& e : events) {
      if (e.kind != SynthEvent::Kind::kAuth || !e.auth_ok ||
          std::find(e.auth_accounts.begin(), e.auth_accounts.end(), invoker) ==
              e.auth_accounts.end()) {
        continue;
      }
      auto it = execve_path.find(e.auth_pid);
      if (it != execve_path.end() && it->second == command_path) {
        return true;
      }
    }
    return false;
  };
  for (size_t i = 0; i < events.size(); ++i) {
    const SynthEvent& e = events[i];
    if (e.kind != SynthEvent::Kind::kSyscall || e.sys.nr != Sysno::kSetuid ||
        e.sys.err != Errno::kOk || !IsSudoLike(e.sys.exe) || e.sys.ruid == 0) {
      continue;  // root needs no delegation rule
    }
    const int pid = e.sys.pid;
    const Uid invoker = e.sys.ruid;
    const std::string user = ctx.UserName(invoker);
    const std::string runas = ctx.UserName(static_cast<Uid>(e.sys.a0));
    if (self_auth(pid, invoker)) {
      ev->all_rules.insert({user, runas});
      continue;
    }
    // Deferred grant: the commands this sudo pid launched after the
    // transition (its clone records carry the command path and argv).
    for (size_t j = i + 1; j < events.size(); ++j) {
      const SynthEvent& c = events[j];
      if (c.kind != SynthEvent::Kind::kSyscall || c.sys.pid != pid ||
          c.sys.nr != Sysno::kClone || c.sys.err != Errno::kOk || c.sys.exe != e.sys.exe) {
        continue;
      }
      std::string command = c.sys.path;
      for (size_t a = 1; a < c.sys.list.size(); ++a) {
        command += " " + GeneralizeArg(c.sys.list[a]);
      }
      ev->command_rules.insert({user, runas, command, !child_auth(invoker, c.sys.path)});
    }
  }

  // Protected reads: delegations and reauthentication gates.
  auto same_pid_invoker_auth = [&events](int pid, Uid ruid) {
    for (const SynthEvent& e : events) {
      if (e.kind == SynthEvent::Kind::kAuth && e.auth_pid == pid &&
          std::find(e.auth_accounts.begin(), e.auth_accounts.end(), ruid) !=
              e.auth_accounts.end()) {
        return true;
      }
    }
    return false;
  };
  for (const SynthEvent& e : events) {
    if (e.kind != SynthEvent::Kind::kSyscall || e.sys.nr != Sysno::kOpen ||
        e.sys.err != Errno::kOk || (e.sys.a1 & kOAccMode) != kORdOnly) {
      continue;
    }
    const Observation& ob = e.sys;
    if (StartsWith(ob.path, "/etc/shadows/")) {
      if (ob.euid == ob.ruid && same_pid_invoker_auth(ob.pid, ob.ruid)) {
        // The invoker proved presence for their own fragment: that is the
        // reauthentication gate in action.
        ev->reauth_globs.insert("/etc/shadows/*");
      } else if (!ob.exe.empty()) {
        ev->delegations.insert({ob.exe, DelegationGlob(ob.path)});
      }
      continue;
    }
    if (ctx.stat) {
      auto meta = ctx.stat(ob.path);
      if (meta.has_value() && !DacReadAllows(*meta, ob.euid) && !ob.exe.empty()) {
        // The read succeeded although plain DAC cannot explain it: only a
        // per-binary delegation reproduces that.
        ev->delegations.insert({ob.exe, DelegationGlob(ob.path)});
      }
    }
  }
}

SudoersPolicy SynthesizeSudoers(const TraceCorpus& corpus, const SynthContext& ctx,
                                SynthStats& stats) {
  SudoersEvidence ev;
  for (const auto& [name, events] : corpus.streams) {
    CollectSudoersEvidence(events, ctx, &ev);
  }

  SudoersPolicy sp;  // Defaults (timeout, env_keep) are sudo's own defaults.
  if (ev.targetpw) {
    SudoRule r;
    r.user = "ALL";
    r.runas = {"ALL"};
    r.commands = {"ALL"};
    r.targetpw = true;
    sp.rules.push_back(std::move(r));
  }
  for (const auto& [user, runas] : ev.all_rules) {
    SudoRule r;
    r.user = user;
    r.runas = {runas};
    r.commands = {"ALL"};
    sp.rules.push_back(std::move(r));
  }
  for (const auto& [user, runas, command, nopasswd] : ev.command_rules) {
    // An ALL grant for the same (user, runas) subsumes any command rule.
    if (ev.all_rules.count({user, runas}) != 0) {
      continue;
    }
    SudoRule r;
    r.user = user;
    r.runas = {runas};
    r.commands = {command};
    r.nopasswd = nopasswd;
    sp.rules.push_back(std::move(r));
  }
  for (Gid gid : ev.auth_groups) {
    sp.password_groups.push_back(ctx.GroupName(gid));
  }
  for (const auto& [binary, glob] : ev.delegations) {
    FileDelegation d;
    d.binary = binary;
    d.path_glob = glob;
    d.allow_may = kMayRead;
    sp.file_delegations.push_back(std::move(d));
  }
  sp.reauth_read_globs.assign(ev.reauth_globs.begin(), ev.reauth_globs.end());
  stats.policy_rows.fetch_add(sp.rules.size() + sp.password_groups.size() +
                                  sp.file_delegations.size() + sp.reauth_read_globs.size(),
                              std::memory_order_relaxed);
  return sp;
}

// --- Mount and bind-table synthesis --------------------------------------------

std::vector<FstabEntry> SynthesizeMounts(const TraceCorpus& corpus, SynthStats& stats) {
  std::map<std::pair<std::string, std::string>, FstabEntry> entries;
  for (const auto& [name, events] : corpus.streams) {
    for (const SynthEvent& e : events) {
      if (e.kind != SynthEvent::Kind::kSyscall || e.sys.nr != Sysno::kMount ||
          e.sys.err != Errno::kOk) {
        continue;
      }
      FstabEntry entry;
      entry.device = e.sys.str1;
      entry.mountpoint = e.sys.path;
      entry.fstype = e.sys.str2;
      entry.options = e.sys.list;
      if (entry.options.empty()) {
        entry.options = {"defaults"};
      }
      entries.emplace(std::make_pair(entry.device, entry.mountpoint), std::move(entry));
    }
  }
  std::vector<FstabEntry> out;
  for (auto& [key, entry] : entries) {
    out.push_back(std::move(entry));
  }
  stats.policy_rows.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

std::vector<BindConfEntry> SynthesizePorts(const TraceCorpus& corpus, SynthStats& stats) {
  std::set<std::tuple<uint16_t, std::string, Uid>> rows;
  for (const auto& [name, events] : corpus.streams) {
    for (const SynthEvent& e : events) {
      if (e.kind != SynthEvent::Kind::kSyscall || e.sys.nr != Sysno::kBind ||
          e.sys.err != Errno::kOk) {
        continue;
      }
      if (e.sys.a1 == 0 || e.sys.a1 >= 1024 || e.sys.exe.empty()) {
        continue;  // unprivileged ports need no table row
      }
      rows.insert({static_cast<uint16_t>(e.sys.a1), e.sys.exe, e.sys.euid});
    }
  }
  std::vector<BindConfEntry> out;
  for (const auto& [port, binary, uid] : rows) {
    BindConfEntry entry;
    entry.port = port;
    entry.binary = binary;
    entry.uid = uid;
    out.push_back(std::move(entry));
  }
  stats.policy_rows.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

}  // namespace

SynthesizedPolicy Synthesize(const TraceCorpus& corpus, const SynthContext& ctx) {
  SynthStats& stats = GlobalSynthStats();
  stats.runs.fetch_add(1, std::memory_order_relaxed);

  SynthesizedPolicy p;
  p.seed = corpus.seed;

  // Per-binary observation slices, keyed (and therefore emitted) in sorted
  // exe order.
  std::map<std::string, std::vector<const Observation*>> by_exe;
  for (const auto& [name, events] : corpus.streams) {
    for (const SynthEvent& e : events) {
      if (e.kind != SynthEvent::Kind::kSyscall) {
        continue;
      }
      stats.observations.fetch_add(1, std::memory_order_relaxed);
      if (!e.sys.exe.empty()) {
        by_exe[e.sys.exe].push_back(&e.sys);
      }
    }
  }
  for (const auto& [exe, obs] : by_exe) {
    p.filters.push_back(SynthesizeFilter(exe, obs, stats));
  }

  p.mounts = SynthesizeMounts(corpus, stats);
  p.ports = SynthesizePorts(corpus, stats);
  p.sudoers = SynthesizeSudoers(corpus, ctx, stats);

  p.mounts_text = SerializeFstab(p.mounts);
  p.ports_text = SerializeBindConf(p.ports);
  p.sudoers_text = SerializeSudoers(p.sudoers);
  return p;
}

}  // namespace protego::synth
