// The closed-loop policy synthesizer: TraceCorpus in, installable policy
// out. No hand-written policy flows through this module — every emitted
// row is justified by an observation in the corpus.
//
// Outputs, mirroring the four Protego policy surfaces:
//   * per-binary argument-aware seccomp filters (text in the
//     /proc/protego/seccomp grammar, installable via
//     Kernel::RegisterBinaryFilter),
//   * the mount whitelist   (/proc/protego/mounts payload),
//   * the bind table        (/proc/protego/ports payload),
//   * the delegation policy (/proc/protego/sudoers payload).
//
// Minimization rules (DESIGN.md §14):
//   filters  — a syscall never observed for a binary is denied outright;
//              an observed one is admitted only under predicates covering
//              the observed argument shapes (path classes, flag masks, fd
//              bounds, exact ids/ports). Predicate synthesis degrades to a
//              plain allow only when the shape set is too large to encode.
//   mounts   — only (device, mountpoint) pairs somebody successfully
//              mounted, with the options they mounted with.
//   ports    — only (port, binary, uid) rows somebody successfully bound.
//   sudoers  — rules reconstructed from authentication round trips
//              correlated with the credential transitions they unlocked;
//              NOPASSWD only when no authentication was observed, TARGETPW
//              only when target-account authentication was observed.
//
// Determinism: synthesis is a pure function of the corpus (all internal
// containers are ordered), so the same corpus renders byte-identical text.

#ifndef SRC_SYNTH_SYNTHESIZER_H_
#define SRC_SYNTH_SYNTHESIZER_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/config/bindconf.h"
#include "src/config/fstab.h"
#include "src/config/sudoers.h"
#include "src/kernel/syscall.h"
#include "src/synth/trace_recorder.h"

namespace protego::synth {

// What the synthesizer may know about the system besides the traces: name
// databases (to render uids/gids as sudoers principals) and a stat probe
// against a PRISTINE system (to recognize reads that plain DAC cannot
// explain — those become File_Delegate rules).
struct SynthContext {
  struct FileMeta {
    Uid uid = 0;
    uint32_t mode = 0;
  };
  std::map<Uid, std::string> user_names;
  std::map<Gid, std::string> group_names;
  std::function<std::optional<FileMeta>(const std::string&)> stat;

  std::string UserName(Uid uid) const;
  std::string GroupName(Gid gid) const;
};

// Builds a SynthContext from a freshly booted Protego system (the closure
// keeps the system alive).
SynthContext ReferenceContext();

// One binary's synthesized argument-aware filter.
struct UtilityFilter {
  std::string exe;
  SeccompFilter::Spec spec;
  std::string text;  // SeccompFilter::Render(), re-parseable
};

struct SynthesizedPolicy {
  uint64_t seed = 0;
  std::vector<UtilityFilter> filters;  // sorted by exe
  std::vector<FstabEntry> mounts;
  std::vector<BindConfEntry> ports;
  SudoersPolicy sudoers;

  // Installable payloads (config-grammar serializations).
  std::string mounts_text;
  std::string ports_text;
  std::string sudoers_text;

  const UtilityFilter* FilterFor(const std::string& exe) const;

  // The whole policy as one normative document; the determinism gate
  // compares these byte-for-byte across runs and exec modes.
  std::string Render() const;
};

SynthesizedPolicy Synthesize(const TraceCorpus& corpus, const SynthContext& ctx);

// Process-wide synthesis counters, exported as protego_synth_* families.
struct SynthStats {
  std::atomic<uint64_t> runs{0};
  std::atomic<uint64_t> observations{0};
  std::atomic<uint64_t> filters{0};
  std::atomic<uint64_t> filter_rules{0};
  std::atomic<uint64_t> path_classes{0};
  std::atomic<uint64_t> policy_rows{0};

  void CollectMetrics(MetricsBuilder& b) const;
  void Reset();
};
SynthStats& GlobalSynthStats();

}  // namespace protego::synth

#endif  // SRC_SYNTH_SYNTHESIZER_H_
