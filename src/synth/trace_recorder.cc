#include "src/synth/trace_recorder.h"

#include <thread>

#include "src/base/strings.h"
#include "src/sim/system.h"

namespace protego::synth {

namespace {

// Same canonical record shape as the functional suite's Step(), so the
// extra scenarios fold into the equivalence machinery unchanged.
void Step(SimSystem& sys, Task& session, std::string* transcript, const std::string& label,
          const std::string& path, std::vector<std::string> argv,
          std::vector<std::string> terminal_input = {}) {
  for (std::string& line : terminal_input) {
    session.terminal->QueueInput(std::move(line));
  }
  auto out = sys.RunCapture(session, path, std::move(argv));
  *transcript += StrFormat("[%s] exit=%d stderr=%s\n", label.c_str(), out.exit_code,
                           out.err.empty() ? "empty" : "present");
  *transcript += out.out;
  if (!EndsWith(*transcript, "\n")) {
    *transcript += "\n";
  }
}

void Probe(std::string* transcript, const std::string& label, const std::string& value) {
  *transcript += "[probe:" + label + "] " + value + "\n";
}

// Daemons launch as root on stock Linux (init starts them, and they need
// root to bind < 1024) and as their service account under Protego, where
// the bind table carries the privilege instead.
Task& DaemonSession(SimSystem& sys, const std::string& service_account) {
  return sys.Login(sys.mode() == SimMode::kProtego ? service_account : "root");
}

std::string EximDeliver(SimSystem& sys) {
  std::string t;
  Task& exim = DaemonSession(sys, "exim");
  Step(sys, exim, &t, "exim-deliver", "/usr/sbin/eximd",
       {"eximd", "--deliver=alice:hello alice"});
  Task& root = sys.Login("root");
  auto spool = sys.kernel().ReadWholeFile(root, "/var/mail/alice");
  Probe(&t, "spool-delivered",
        spool.ok() && spool.value().find("hello alice") != std::string::npos ? "yes" : "no");
  return t;
}

std::string HttpdServe(SimSystem& sys) {
  std::string t;
  Task& www = DaemonSession(sys, "www-data");
  Step(sys, www, &t, "httpd-serve", "/usr/sbin/httpd", {"httpd", "--port=80"});
  return t;
}

std::string KeysignDelegation(SimSystem& sys) {
  std::string t;
  // The delegation client runs as an ordinary user in BOTH modes: on stock
  // Linux the binary is setuid root; under Protego a File_Delegate rule
  // grants exactly this binary read access to the host key.
  Task& alice = sys.Login("alice");
  Step(sys, alice, &t, "keysign", "/usr/lib/ssh-keysign", {"ssh-keysign", "pubkey-blob"});
  return t;
}

}  // namespace

size_t TraceCorpus::TotalEvents() const {
  size_t n = 0;
  for (const auto& [name, events] : streams) {
    n += events.size();
  }
  return n;
}

const std::vector<FunctionalScenario>& SynthExtraScenarios() {
  static const std::vector<FunctionalScenario>* scenarios = new std::vector<FunctionalScenario>{
      {"synth_exim_deliver", EximDeliver},
      {"synth_httpd_serve", HttpdServe},
      {"synth_keysign_delegation", KeysignDelegation},
  };
  return *scenarios;
}

std::vector<FunctionalScenario> SynthWorkload() {
  std::vector<FunctionalScenario> all = FunctionalSuite();
  const std::vector<FunctionalScenario>& extra = SynthExtraScenarios();
  all.insert(all.end(), extra.begin(), extra.end());
  return all;
}

namespace {

// Traces one scenario on its own fresh Protego system. The stream is a
// pure function of the scenario: nothing from other scenarios (or other
// threads) can interleave into it.
std::vector<SynthEvent> TraceScenario(const FunctionalScenario& scenario) {
  std::vector<SynthEvent> events;
  SimSystem sys(SimMode::kProtego);
  sys.syscalls().set_recorder([&events](const SyscallGate::SyscallObservation& ob) {
    SynthEvent e;
    e.kind = SynthEvent::Kind::kSyscall;
    e.sys = ob;
    events.push_back(std::move(e));
  });
  sys.kernel().SetAuthObserver(
      [&events](int pid, const std::vector<Uid>& accounts, std::optional<Uid> authenticated) {
        SynthEvent e;
        e.kind = SynthEvent::Kind::kAuth;
        e.auth_pid = pid;
        e.auth_accounts = accounts;
        e.auth_ok = authenticated.has_value();
        e.auth_as = authenticated.value_or(0);
        events.push_back(std::move(e));
      });
  (void)scenario.run(sys);
  // Detach before teardown so destructor-time syscalls don't dangle into
  // the (already captured) stream.
  sys.syscalls().set_recorder(nullptr);
  sys.kernel().SetAuthObserver(nullptr);
  return events;
}

}  // namespace

TraceCorpus CollectTraces(uint64_t seed, ExecMode mode) {
  std::vector<FunctionalScenario> workload = SynthWorkload();

  TraceCorpus corpus;
  corpus.seed = seed;

  if (mode == ExecMode::kParallel) {
    std::vector<std::vector<SynthEvent>> slots(workload.size());
    std::vector<std::thread> threads;
    threads.reserve(workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      threads.emplace_back(
          [&slots, &workload, i]() { slots[i] = TraceScenario(workload[i]); });
    }
    for (std::thread& th : threads) {
      th.join();
    }
    for (size_t i = 0; i < workload.size(); ++i) {
      corpus.streams[workload[i].name] = std::move(slots[i]);
    }
  } else {
    for (const FunctionalScenario& scenario : workload) {
      corpus.streams[scenario.name] = TraceScenario(scenario);
    }
  }
  return corpus;
}

}  // namespace protego::synth
