// Ordered composition of security modules, mirroring how Linux stacks the
// capability module ahead of the loaded LSM. The stack is what the kernel's
// syscall layer consults; swapping the stack is how the benchmarks compare
// "Linux + AppArmor" against "Linux + AppArmor + Protego".
//
// PR 2 adds a stack-level decision cache: for the cacheable hooks
// (inode_permission, sb_mount, socket_bind) the combined verdict is stored
// in the calling task's LsmDecisionCache keyed by (hook, request signature)
// and tagged with the stack's policy-generation counter. Any module policy
// swap bumps the generation (SecurityModule::BumpPolicyGeneration), which
// invalidates every cached verdict atomically — the cache can never serve a
// verdict computed under a superseded policy. Hooks whose decisions carry
// side effects or depend on mutable kernel state (authentication, pending
// setuid, mount/route tables) are never cached; see DESIGN.md §7.
//
// PR 3 adds observability (DESIGN.md §8): with a Tracer attached, every
// dispatch emits one kLsmHook event per consulted module (module name +
// verdict) and one kLsmDecision event for the combined verdict (flagged
// cache hit/miss for the cacheable hooks) — all stamped with the calling
// syscall's decision span. Per-hook invocation counts, latency histograms,
// and per-module verdict tallies are reported via CollectMetrics().

#ifndef SRC_LSM_STACK_H_
#define SRC_LSM_STACK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/base/attribution.h"
#include "src/base/clock.h"
#include "src/base/metrics.h"
#include "src/base/tracepoint.h"
#include "src/fault/fault.h"
#include "src/lsm/module.h"

namespace protego {

// Hook identities for per-hook invocation accounting.
enum class LsmHook : uint8_t {
  kInodePermission = 0,
  kSbMount,
  kSbUmount,
  kSocketCreate,
  kSocketBind,
  kTaskFixSetuid,
  kBprmCheck,
  kFileIoctl,
  kCount,  // sentinel
};

// "inode_permission", "sb_mount", ... — the hook's kernel-style name.
const char* LsmHookName(LsmHook hook);

class LsmStack {
 public:
  LsmStack();

  // Appends a module; earlier modules are consulted first.
  void Register(std::unique_ptr<SecurityModule> module);

  // Module by name, or nullptr. Used by /proc plumbing and tests.
  SecurityModule* Find(const char* name);

  // AND over modules: every module must permit the capability.
  bool Capable(const Task& task, Capability cap) const;

  // Combine per-hook verdicts: kDeny wins, then kAllow, then kDefault.
  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may) const;
  HookVerdict SbMount(const Task& task, const MountRequest& req) const;
  HookVerdict SbUmount(const Task& task, const std::string& mountpoint) const;
  HookVerdict SocketCreate(const Task& task, const SocketRequest& req) const;
  HookVerdict SocketBind(const Task& task, const BindRequest& req) const;
  HookVerdict TaskFixSetuid(Task& task, const SetuidRequest& req,
                            SetuidDisposition* disposition) const;
  HookVerdict BprmCheck(Task& task, const std::string& path, const Inode& inode,
                        const std::vector<std::string>& argv, ExecControl* control) const;
  HookVerdict FileIoctl(const Task& task, const IoctlRequest& req) const;

  size_t size() const { return modules_.size(); }

  // Times the stack was consulted for `hook` since boot (cache hits
  // included — a hit is still a consultation). Lets the syscall gate tests
  // prove seccomp denials short-circuit BEFORE any LSM work.
  uint64_t HookInvocations(LsmHook hook) const {
    return hook_counts_[static_cast<size_t>(hook)].load(std::memory_order_relaxed);
  }
  uint64_t TotalHookInvocations() const;

  // --- Observability ----------------------------------------------------------

  // Attaches the kernel-wide tracer (hook/decision events) and the virtual
  // clock (per-hook latency histograms). The Kernel wires this at boot.
  void AttachObservability(Tracer* tracer, const Clock* clock) {
    tracer_ = tracer;
    clock_ = clock;
  }

  // Attaches the per-layer latency profiler: each dispatch runs under an
  // `lsm` frame, with the decision-cache probe nested as its own
  // `decision_cache` frame.
  void set_profiler(LayerProfiler* profiler) { profiler_ = profiler; }

  // Attaches the fault-injection registry. A fault injected at the kLsmHook
  // site makes the dispatch fail CLOSED — the combined verdict is kDeny, no
  // module is consulted, nothing is cached, and the denial is counted in
  // fail_closed_denials(). Availability is sacrificed for safety: a hook
  // that cannot decide must refuse (the paper's core safety claim).
  void set_faults(FaultRegistry* faults) { faults_ = faults; }

  // Dispatches denied because a fault was injected at the hook site.
  uint64_t fail_closed_denials() const {
    return fail_closed_.load(std::memory_order_relaxed);
  }

  // Per-hook latency distribution in virtual clock ticks.
  const Histogram& HookLatency(LsmHook hook) const {
    return hook_lat_[static_cast<size_t>(hook)];
  }

  // Combined verdicts module `i` returned, indexed by HookVerdict value.
  uint64_t ModuleVerdicts(size_t module_index, HookVerdict v) const {
    return module_verdicts_[module_index][static_cast<size_t>(v)].load(
        std::memory_order_relaxed);
  }

  // Reports hook invocation counters, latency histograms, per-module
  // verdict tallies, and decision-cache counters (protego_lsm_* families).
  void CollectMetrics(MetricsBuilder& b) const;

  // --- Decision cache ---------------------------------------------------------

  // Monotonic counter tagged onto every cached verdict; starts at 1 so no
  // empty cache slot (generation 0) can ever match. Release/acquire ordering
  // pairs with the RCU-style engine publication in ProtegoLsm: the engine
  // pointer is stored (release) BEFORE the generation is bumped (release),
  // so any reader that observes generation G (acquire) also observes at
  // least the engine published for G.
  uint64_t policy_generation() const {
    return policy_generation_.load(std::memory_order_acquire);
  }
  void BumpPolicyGeneration() {
    policy_generation_.fetch_add(1, std::memory_order_release);
  }

  void set_decision_cache_enabled(bool enabled) { decision_cache_enabled_ = enabled; }
  bool decision_cache_enabled() const { return decision_cache_enabled_; }

  uint64_t decision_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t decision_cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t decision_cache_bypasses() const {
    return cache_bypasses_.load(std::memory_order_relaxed);
  }

  // --- Adaptive small-table bypass --------------------------------------------
  //
  // Below this many total policy rules (summed over every module's
  // PolicyRuleCount), the cacheable hooks skip the cache entirely. The
  // cache's value at small sizes hinges on hit rate: a hit is cheaper than
  // even a small indexed walk, but a miss pays key hashing + probe + insert
  // ON TOP of the walk — pure tax. Small tables see exactly the traffic
  // where misses dominate (boot defaults, one-shot administrative requests,
  // working sets that churn the 64-slot per-task cache), which is how the
  // original BENCH_policy_engine.json baseline regressed to 0.51x on
  // inode_permission at 16-entry tables. The bench's inode_permission_miss
  // rows price this case directly; the compiled+cache-forced rows price the
  // hit-heavy extreme the bypass gives up. The decision is recomputed
  // lazily whenever the policy generation changes.
  static constexpr size_t kCacheBypassThreshold = 64;

  // True when the cacheable hooks are currently bypassing the decision
  // cache because the installed policy tables are small.
  bool decision_cache_bypass_active() const { return CacheBypass(); }

  // Forces the adaptive bypass off (cache always engages). For tests and
  // benches that exercise cache mechanics against deliberately tiny
  // policy tables; production code leaves it adaptive.
  void set_cache_bypass_enabled(bool enabled) {
    bypass_enabled_.store(enabled, std::memory_order_relaxed);
  }

 private:
  static HookVerdict Combine(HookVerdict acc, HookVerdict v);

  void Count(LsmHook hook) const { hook_counts_[static_cast<size_t>(hook)]++; }

  // The fail-closed gate every dispatch runs after Count(): true when a
  // fault fired for `hook`, in which case the caller must return kDeny
  // immediately (the denial has been counted and traced).
  bool FaultDeny(LsmHook hook, int pid) const;

  // Emits the per-module kLsmHook event (no-op when the point is off).
  void TraceModule(LsmHook hook, const SecurityModule& module, HookVerdict v,
                   int pid) const;
  // Emits the combined kLsmDecision event; `cache_flags` is 0,
  // kTraceFlagCacheHit, or kTraceFlagCacheMiss.
  void TraceDecision(LsmHook hook, HookVerdict combined, uint32_t cache_flags,
                     int pid) const;

  // Probes `task`'s cache; returns true on hit. On miss the caller
  // dispatches and calls CacheInsert if every module left the request
  // cacheable. Key 0 disables caching for that request.
  // `gen` is the policy generation snapshotted ONCE at dispatch entry and
  // threaded through both calls: a policy swap that lands mid-walk must tag
  // the inserted verdict with the generation the walk actually ran under,
  // never the post-swap generation (a stale verdict under a fresh tag would
  // be an unexpirable wrong answer).
  bool CacheLookup(const Task& task, uint64_t key, uint64_t gen,
                   HookVerdict* verdict) const;
  void CacheInsert(const Task& task, uint64_t key, uint64_t gen,
                   HookVerdict verdict) const;

  // Request-signature keys (FNV-1a over hook id, stack id, request fields,
  // and the deciding credentials). Never return 0.
  uint64_t InodeKey(const Task& task, const std::string& path, int may) const;
  uint64_t MountKey(const Task& task, const MountRequest& req) const;
  uint64_t BindKey(const Task& task, const BindRequest& req) const;

  // Recomputes (lazily, once per generation) whether the small-table bypass
  // is in effect. Safe to race: the recomputation is idempotent.
  bool CacheBypass() const;

  std::vector<std::unique_ptr<SecurityModule>> modules_;
  // mutable: accounting from the const hook methods. All counters are
  // relaxed atomics — parallel-mode tasks dispatch hooks concurrently.
  mutable std::atomic<uint64_t> hook_counts_[static_cast<size_t>(LsmHook::kCount)] = {};
  mutable Histogram hook_lat_[static_cast<size_t>(LsmHook::kCount)];
  // Per-module verdict tallies, indexed [module][verdict]. A deque because
  // arrays of atomics are pinned in place (no relocation on growth).
  mutable std::deque<std::array<std::atomic<uint64_t>, 3>> module_verdicts_;

  Tracer* tracer_ = nullptr;
  const Clock* clock_ = nullptr;
  LayerProfiler* profiler_ = nullptr;
  FaultRegistry* faults_ = nullptr;
  mutable std::atomic<uint64_t> fail_closed_{0};  // fault-injected dispatches denied

  // Salted into every cache key so a task consulted by two different stacks
  // (benchmark comparisons, tests) can never cross-hit.
  uint64_t stack_id_ = 0;
  std::atomic<uint64_t> policy_generation_{1};
  bool decision_cache_enabled_ = true;
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
  mutable std::atomic<uint64_t> cache_bypasses_{0};
  // Small-table bypass memo: the generation it was computed for (0 = never)
  // and the verdict.
  mutable std::atomic<uint64_t> bypass_gen_{0};
  mutable std::atomic<bool> bypass_{false};
  std::atomic<bool> bypass_enabled_{true};
};

}  // namespace protego

#endif  // SRC_LSM_STACK_H_
