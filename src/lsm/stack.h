// Ordered composition of security modules, mirroring how Linux stacks the
// capability module ahead of the loaded LSM. The stack is what the kernel's
// syscall layer consults; swapping the stack is how the benchmarks compare
// "Linux + AppArmor" against "Linux + AppArmor + Protego".

#ifndef SRC_LSM_STACK_H_
#define SRC_LSM_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/lsm/module.h"

namespace protego {

// Hook identities for per-hook invocation accounting.
enum class LsmHook : uint8_t {
  kInodePermission = 0,
  kSbMount,
  kSbUmount,
  kSocketCreate,
  kSocketBind,
  kTaskFixSetuid,
  kBprmCheck,
  kFileIoctl,
  kCount,  // sentinel
};

class LsmStack {
 public:
  // Appends a module; earlier modules are consulted first.
  void Register(std::unique_ptr<SecurityModule> module);

  // Module by name, or nullptr. Used by /proc plumbing and tests.
  SecurityModule* Find(const char* name);

  // AND over modules: every module must permit the capability.
  bool Capable(const Task& task, Capability cap) const;

  // Combine per-hook verdicts: kDeny wins, then kAllow, then kDefault.
  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may) const;
  HookVerdict SbMount(const Task& task, const MountRequest& req) const;
  HookVerdict SbUmount(const Task& task, const std::string& mountpoint) const;
  HookVerdict SocketCreate(const Task& task, const SocketRequest& req) const;
  HookVerdict SocketBind(const Task& task, const BindRequest& req) const;
  HookVerdict TaskFixSetuid(Task& task, const SetuidRequest& req,
                            SetuidDisposition* disposition) const;
  HookVerdict BprmCheck(Task& task, const std::string& path, const Inode& inode,
                        const std::vector<std::string>& argv, ExecControl* control) const;
  HookVerdict FileIoctl(const Task& task, const IoctlRequest& req) const;

  size_t size() const { return modules_.size(); }

  // Times the stack was consulted for `hook` since boot. Lets the syscall
  // gate tests prove seccomp denials short-circuit BEFORE any LSM work.
  uint64_t HookInvocations(LsmHook hook) const {
    return hook_counts_[static_cast<size_t>(hook)];
  }
  uint64_t TotalHookInvocations() const;

 private:
  static HookVerdict Combine(HookVerdict acc, HookVerdict v);

  void Count(LsmHook hook) const { hook_counts_[static_cast<size_t>(hook)]++; }

  std::vector<std::unique_ptr<SecurityModule>> modules_;
  // mutable: accounting from the const hook methods.
  mutable uint64_t hook_counts_[static_cast<size_t>(LsmHook::kCount)] = {};
};

}  // namespace protego

#endif  // SRC_LSM_STACK_H_
