// Per-task LSM decision cache (an AVC in miniature, after SELinux).
//
// The stack-level hook dispatcher (src/lsm/stack.cc) caches the combined
// verdict of cacheable hooks keyed by a hash of the request signature, so a
// task repeating the same mediated operation pays one hash probe instead of
// a module walk over compiled policy (let alone a linear scan). Entries are
// validated against the stack's policy-generation counter: any policy swap
// bumps the generation and thereby invalidates every cached verdict at once,
// preserving the parse-validate-swap atomicity of /proc/protego.
//
// The cache lives on Task (the kernel clears it on credential changes and
// exec, where the request signatures would go stale) and is deliberately
// tiny and direct-mapped: collisions just evict, correctness only depends on
// key+generation equality on the probe.
//
// Kept dependency-free so src/kernel/task.h can embed it without pulling in
// the LSM headers (module.h already includes task.h).

#ifndef SRC_LSM_DECISION_CACHE_H_
#define SRC_LSM_DECISION_CACHE_H_

#include <cstddef>
#include <cstdint>

namespace protego {

class LsmDecisionCache {
 public:
  static constexpr size_t kSlots = 64;  // power of two

  // Probes for `key` under `generation`. Returns true and sets *verdict
  // (a HookVerdict cast to uint8_t) on a hit. `key` must be nonzero.
  bool Lookup(uint64_t key, uint64_t generation, uint8_t* verdict) const {
    const Slot& slot = slots_[key & (kSlots - 1)];
    if (slot.key != key || slot.generation != generation) {
      return false;
    }
    *verdict = slot.verdict;
    return true;
  }

  void Insert(uint64_t key, uint64_t generation, uint8_t verdict) {
    Slot& slot = slots_[key & (kSlots - 1)];
    slot.key = key;
    slot.generation = generation;
    slot.verdict = verdict;
  }

  // Drops every entry (credential change / exec).
  void Clear() {
    for (Slot& slot : slots_) {
      slot = Slot{};
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;  // 0 = empty
    uint64_t generation = 0;
    uint8_t verdict = 0;
  };
  Slot slots_[kSlots];
};

}  // namespace protego

#endif  // SRC_LSM_DECISION_CACHE_H_
