// A small AppArmor-like module: per-binary path profiles with glob file
// rules and a capability bound. This is the baseline MAC layer the paper
// compares against ("Linux with AppArmor") and the module Protego extends.
//
// As on stock Ubuntu, binaries without a profile run unconfined; the module
// still pays the hook-traversal cost on every mediated operation, which is
// what the Table 5 baseline measures.

#ifndef SRC_LSM_APPARMOR_H_
#define SRC_LSM_APPARMOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/lsm/module.h"

namespace protego {

// One file access rule inside a profile.
struct AaFileRule {
  std::string glob;  // path pattern
  int allow_may = 0; // kMayRead|kMayWrite|kMayExec bits granted
};

// Confinement profile for one binary.
struct AaProfile {
  std::string binary;  // absolute path of the confined program
  bool enforce = true; // false = complain mode (log only)
  std::vector<AaFileRule> file_rules;
  CapSet capability_bound;  // caps the confined program may use
  bool bound_caps = false;  // whether capability_bound applies
};

class AppArmorModule : public SecurityModule {
 public:
  const char* name() const override { return "apparmor"; }

  void LoadProfile(AaProfile profile);
  void RemoveProfile(const std::string& binary);
  const AaProfile* FindProfile(const std::string& binary) const;
  size_t profile_count() const { return profiles_.size(); }

  // Denials recorded in complain mode (and enforce mode), for audit tests.
  const std::vector<std::string>& denials() const { return denials_; }
  void ClearDenials() { denials_.clear(); }

  bool CapablePermitted(const Task& task, Capability cap) override;
  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may, bool* cacheable) override;

 private:
  std::map<std::string, AaProfile> profiles_;
  std::vector<std::string> denials_;
};

}  // namespace protego

#endif  // SRC_LSM_APPARMOR_H_
