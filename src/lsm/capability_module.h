// The commoncap module: Linux's default capability semantics, always first
// in the stack. A capability is permitted iff it is in the task's effective
// set (root tasks get the full set at exec time; see Kernel::Execve).

#ifndef SRC_LSM_CAPABILITY_MODULE_H_
#define SRC_LSM_CAPABILITY_MODULE_H_

#include "src/lsm/module.h"

namespace protego {

class CapabilityModule : public SecurityModule {
 public:
  const char* name() const override { return "capability"; }

  bool CapablePermitted(const Task& task, Capability cap) override {
    return task.cred.effective.Has(cap);
  }
};

}  // namespace protego

#endif  // SRC_LSM_CAPABILITY_MODULE_H_
