// The Linux Security Module hook surface modeled by this simulation.
//
// Linux 3.6 hard-codes capability checks inside the 8 system calls the paper
// studies; Protego's kernel patch adds LSM hooks at those decision points so
// a module can express object-based policy. This header defines those hooks.
//
// Verdict semantics: a module with no opinion returns kDefault, in which case
// the kernel falls back to its legacy capability check. kAllow grants the
// operation even where the legacy check would refuse (this is the Protego
// extension — policy migrated INTO the kernel), and kDeny refuses regardless.
// Across a stack of modules, any kDeny wins; otherwise any kAllow wins;
// otherwise the legacy check decides.

#ifndef SRC_LSM_MODULE_H_
#define SRC_LSM_MODULE_H_

#include <map>
#include <string>
#include <vector>

#include "src/kernel/capability.h"
#include "src/kernel/task.h"
#include "src/vfs/inode.h"

namespace protego {

enum class HookVerdict {
  kDefault,  // no opinion; legacy kernel policy applies
  kAllow,    // grant, overriding the legacy capability check
  kDeny,     // refuse
};

const char* HookVerdictName(HookVerdict v);

// Parameters of a mount(2) request, as seen by the sb_mount hook.
struct MountRequest {
  std::string source;
  std::string mountpoint;
  std::string fstype;
  std::vector<std::string> options;
};

// Parameters of setuid(2)/setgid(2), as seen by task_fix_setuid.
struct SetuidRequest {
  bool is_gid = false;
  Uid target_uid = 0;
  Gid target_gid = 0;
};

// Out-parameters a module may set when allowing a setuid request.
struct SetuidDisposition {
  // Record a pending setuid-on-exec instead of switching now (§4.3).
  bool defer_to_exec = false;
  // For immediate transitions: also switch the primary gid (stock su/login
  // call setgid while still root; a deprivileged binary cannot).
  bool has_gid = false;
  Gid gid = 0;
};

// Parameters of socket(2).
struct SocketRequest {
  int family = 0;    // AF_INET / AF_PACKET (see src/net/packet.h)
  int type = 0;      // SOCK_STREAM / SOCK_DGRAM / SOCK_RAW
  int protocol = 0;  // IPPROTO_*
};

// Parameters of bind(2).
struct BindRequest {
  uint16_t port = 0;
  std::string binary_path;  // task->exe_path, the application instance key
  int netns = 0;            // 0 = the real system port namespace
};

// Parameters of an ioctl(2) on a device or socket.
struct IoctlRequest {
  std::string target;   // device path ("/dev/ppp") or "socket"
  uint32_t request = 0; // request code (see src/net/ioctl_codes.h)
  std::string arg;      // serialized argument (e.g. a route spec)
};

// Mutable exec state a bprm_check hook may adjust: the credentials the new
// image will run with and the environment it inherits.
struct ExecControl {
  Cred* cred = nullptr;
  std::map<std::string, std::string>* env = nullptr;
  bool close_non_std_fds = false;
};

class LsmStack;

// Interface implemented by security modules (commoncap, AppArmor, Protego).
//
// The InodePermission/SbMount/SocketBind hooks take a `cacheable`
// out-parameter: the stack caches their combined verdict per task (see
// src/lsm/decision_cache.h) and a module whose decision depends on anything
// beyond (policy tables, request, credentials) — authentication recency,
// mount/route state, per-object ownership, audit side effects — must clear
// the flag. Modules may only ever clear it, never set it back to true.
// PolicyRuleCount() return value meaning "cost unknown" — a stack with any
// such module never engages the small-table cache bypass.
inline constexpr size_t kPolicyRuleCountUnknown = static_cast<size_t>(-1);

class SecurityModule {
 public:
  virtual ~SecurityModule() = default;

  virtual const char* name() const = 0;

  // Called by LsmStack::Register; lets a module invalidate stack-level
  // cached verdicts when its policy changes.
  void AttachStack(LsmStack* stack) { stack_ = stack; }

  // Total installed policy rules this module consults per hook dispatch.
  // The stack sums this across modules to decide whether caching a verdict
  // is worth more than just re-walking the (tiny) tables; see
  // LsmStack::kCacheBypassThreshold. Stateless modules (capability checks,
  // hardcoded rules) are free — the default 0. Modules whose dispatch cost
  // does not scale with a rule table should return kPolicyRuleCountUnknown.
  virtual size_t PolicyRuleCount() const { return 0; }

  // security_capable(): may this task use `cap`? All stacked modules must
  // agree; the capability module implements the commoncap rule.
  virtual bool CapablePermitted(const Task& task, Capability cap) {
    (void)task;
    (void)cap;
    return true;
  }

  // inode_permission(): DAC has NOT yet been consulted; kDeny refuses even
  // what DAC would allow, kAllow bypasses DAC (used for delegation rules
  // that grant specific binaries access to specific files, §4.4/§4.6).
  virtual HookVerdict InodePermission(Task& task, const std::string& path,
                                      const Inode& inode, int may, bool* cacheable) {
    (void)task;
    (void)path;
    (void)inode;
    (void)may;
    (void)cacheable;
    return HookVerdict::kDefault;
  }

  virtual HookVerdict SbMount(const Task& task, const MountRequest& req, bool* cacheable) {
    (void)task;
    (void)req;
    (void)cacheable;
    return HookVerdict::kDefault;
  }

  virtual HookVerdict SbUmount(const Task& task, const std::string& mountpoint) {
    (void)task;
    (void)mountpoint;
    return HookVerdict::kDefault;
  }

  virtual HookVerdict SocketCreate(const Task& task, const SocketRequest& req) {
    (void)task;
    (void)req;
    return HookVerdict::kDefault;
  }

  virtual HookVerdict SocketBind(const Task& task, const BindRequest& req, bool* cacheable) {
    (void)task;
    (void)req;
    (void)cacheable;
    return HookVerdict::kDefault;
  }

  virtual HookVerdict TaskFixSetuid(Task& task, const SetuidRequest& req,
                                    SetuidDisposition* disposition) {
    (void)task;
    (void)req;
    (void)disposition;
    return HookVerdict::kDefault;
  }

  // bprm_check_security(): called during execve after the kernel computed
  // the provisional post-exec credentials (setuid-bit already applied).
  virtual HookVerdict BprmCheck(Task& task, const std::string& path, const Inode& inode,
                                const std::vector<std::string>& argv, ExecControl* control) {
    (void)task;
    (void)path;
    (void)inode;
    (void)argv;
    (void)control;
    return HookVerdict::kDefault;
  }

  virtual HookVerdict FileIoctl(const Task& task, const IoctlRequest& req) {
    (void)task;
    (void)req;
    return HookVerdict::kDefault;
  }

 protected:
  // Bumps the attached stack's policy-generation counter, invalidating all
  // cached verdicts. Call from every policy mutation (defined in stack.cc).
  void BumpPolicyGeneration();

 private:
  LsmStack* stack_ = nullptr;
};

}  // namespace protego

#endif  // SRC_LSM_MODULE_H_
