#include "src/lsm/stack.h"

#include <cstring>

namespace protego {

namespace {

// Incremental 64-bit FNV-1a for cache-key construction.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t MixU64(uint64_t h, uint64_t v) { return MixBytes(h, &v, sizeof(v)); }

uint64_t MixStr(uint64_t h, const std::string& s) {
  // Length first, so ("ab","c") and ("a","bc") cannot collide by
  // concatenation.
  h = MixU64(h, s.size());
  return MixBytes(h, s.data(), s.size());
}

uint64_t NonZero(uint64_t h) { return h == 0 ? 1 : h; }

// Observes the virtual-clock duration of one hook dispatch on destruction.
struct HookTimer {
  HookTimer(const Clock* clock, Histogram* lat)
      : clock_(clock), lat_(lat), t0_(clock != nullptr ? clock->Now() : 0) {}
  ~HookTimer() {
    if (clock_ != nullptr) {
      lat_->Observe(clock_->Now() - t0_);
    }
  }
  const Clock* clock_;
  Histogram* lat_;
  uint64_t t0_;
};

}  // namespace

const char* HookVerdictName(HookVerdict v) {
  switch (v) {
    case HookVerdict::kDefault: return "DEFAULT";
    case HookVerdict::kAllow: return "ALLOW";
    case HookVerdict::kDeny: return "DENY";
  }
  return "?";
}

const char* LsmHookName(LsmHook hook) {
  switch (hook) {
    case LsmHook::kInodePermission: return "inode_permission";
    case LsmHook::kSbMount: return "sb_mount";
    case LsmHook::kSbUmount: return "sb_umount";
    case LsmHook::kSocketCreate: return "socket_create";
    case LsmHook::kSocketBind: return "socket_bind";
    case LsmHook::kTaskFixSetuid: return "task_fix_setuid";
    case LsmHook::kBprmCheck: return "bprm_check";
    case LsmHook::kFileIoctl: return "file_ioctl";
    case LsmHook::kCount: break;
  }
  return "?";
}

void SecurityModule::BumpPolicyGeneration() {
  if (stack_ != nullptr) {
    stack_->BumpPolicyGeneration();
  }
}

LsmStack::LsmStack() {
  // Process-wide monotonic stack id: tasks outliving one stack and being
  // consulted by another (the benchmarks do this) must never cross-hit.
  // Atomic: fleet workers construct kernels (and their stacks) concurrently.
  static std::atomic<uint64_t> next_stack_id{1};
  stack_id_ = next_stack_id.fetch_add(1, std::memory_order_relaxed);
}

void LsmStack::Register(std::unique_ptr<SecurityModule> module) {
  module->AttachStack(this);
  modules_.push_back(std::move(module));
  module_verdicts_.emplace_back();
  // A new module's tables change what the bypass heuristic should decide.
  bypass_gen_.store(0, std::memory_order_relaxed);
}

SecurityModule* LsmStack::Find(const char* name) {
  for (const auto& m : modules_) {
    if (std::strcmp(m->name(), name) == 0) {
      return m.get();
    }
  }
  return nullptr;
}

uint64_t LsmStack::TotalHookInvocations() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& c : hook_counts_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

bool LsmStack::Capable(const Task& task, Capability cap) const {
  for (const auto& m : modules_) {
    if (!m->CapablePermitted(task, cap)) {
      return false;
    }
  }
  return true;
}

HookVerdict LsmStack::Combine(HookVerdict acc, HookVerdict v) {
  if (acc == HookVerdict::kDeny || v == HookVerdict::kDeny) {
    return HookVerdict::kDeny;
  }
  if (acc == HookVerdict::kAllow || v == HookVerdict::kAllow) {
    return HookVerdict::kAllow;
  }
  return HookVerdict::kDefault;
}

// --- Observability ----------------------------------------------------------------

void LsmStack::TraceModule(LsmHook hook, const SecurityModule& module, HookVerdict v,
                           int pid) const {
  // The caller hoisted the Enabled() check; the head-sampling draw stays
  // per-emission so each module event is an independent sampling decision.
  if (!tracer_->SampleKeep(TracepointId::kLsmHook)) {
    return;
  }
  TraceEvent& ev = tracer_->Emit(TracepointId::kLsmHook, pid);
  ev.a = static_cast<uint64_t>(hook);
  ev.sname = LsmHookName(hook);
  ev.sdetail = module.name();
  ev.svalue = HookVerdictName(v);
  if (v == HookVerdict::kDeny) {
    ev.flags |= kTraceFlagDenied;
  }
}

void LsmStack::TraceDecision(LsmHook hook, HookVerdict combined, uint32_t cache_flags,
                             int pid) const {
  if (tracer_ == nullptr || !tracer_->ShouldEmit(TracepointId::kLsmDecision)) {
    return;
  }
  TraceEvent& ev = tracer_->Emit(TracepointId::kLsmDecision, pid);
  ev.a = static_cast<uint64_t>(hook);
  ev.flags = cache_flags;
  ev.sname = LsmHookName(hook);
  ev.svalue = HookVerdictName(combined);
  if (combined == HookVerdict::kDeny) {
    ev.flags |= kTraceFlagDenied;
  }
}

bool LsmStack::FaultDeny(LsmHook hook, int pid) const {
  if (faults_ == nullptr || !faults_->any_enabled()) {
    return false;
  }
  Errno e = faults_->Evaluate(FaultSite::kLsmHook, static_cast<int>(hook));
  if (e == Errno::kOk) {
    return false;
  }
  // Fail closed: an undecidable hook refuses. The verdict is NOT cached —
  // it reflects the injected fault, not policy.
  fail_closed_.fetch_add(1, std::memory_order_relaxed);
  TraceDecision(hook, HookVerdict::kDeny, 0, pid);
  return true;
}

void LsmStack::CollectMetrics(MetricsBuilder& b) const {
  for (size_t h = 0; h < static_cast<size_t>(LsmHook::kCount); ++h) {
    if (hook_counts_[h] == 0) {
      continue;
    }
    MetricLabels labels = {{"hook", LsmHookName(static_cast<LsmHook>(h))}};
    b.Counter("protego_lsm_hook_invocations_total",
              "LSM stack consultations per hook (cache hits included)", labels,
              hook_counts_[h]);
    b.Histo("protego_lsm_hook_latency_ticks",
            "Per-hook dispatch latency in virtual clock ticks", labels, hook_lat_[h]);
  }
  for (size_t i = 0; i < modules_.size(); ++i) {
    for (size_t v = 0; v < 3; ++v) {
      if (module_verdicts_[i][v] == 0) {
        continue;
      }
      b.Counter("protego_lsm_module_verdicts_total",
                "Verdicts returned by each security module",
                {{"module", modules_[i]->name()},
                 {"verdict", HookVerdictName(static_cast<HookVerdict>(v))}},
                module_verdicts_[i][v]);
    }
  }
  b.Counter("protego_lsm_decision_cache_hits_total",
            "Combined verdicts served from the per-task decision cache", {},
            decision_cache_hits());
  b.Counter("protego_lsm_decision_cache_misses_total",
            "Decision-cache probes that fell through to module dispatch", {},
            decision_cache_misses());
  b.Counter("protego_lsm_decision_cache_bypasses_total",
            "Cacheable dispatches that skipped the cache (small-table bypass)", {},
            decision_cache_bypasses());
  b.Gauge("protego_policy_generation",
          "Policy generation counter (bumped on every policy swap)", {},
          static_cast<double>(policy_generation()));
}

// --- Decision cache ---------------------------------------------------------------

bool LsmStack::CacheBypass() const {
  if (!bypass_enabled_.load(std::memory_order_relaxed)) {
    return false;
  }
  uint64_t gen = policy_generation_.load(std::memory_order_acquire);
  if (bypass_gen_.load(std::memory_order_acquire) != gen) {
    // Recompute for this generation. Unknown-cost modules veto the bypass;
    // a swap racing this recomputation just triggers another one.
    size_t total = 0;
    bool bypass = true;
    for (const auto& m : modules_) {
      size_t n = m->PolicyRuleCount();
      if (n == kPolicyRuleCountUnknown) {
        bypass = false;
        break;
      }
      total += n;
    }
    bypass = bypass && total < kCacheBypassThreshold;
    bypass_.store(bypass, std::memory_order_relaxed);
    bypass_gen_.store(gen, std::memory_order_release);
  }
  return bypass_.load(std::memory_order_relaxed);
}

bool LsmStack::CacheLookup(const Task& task, uint64_t key, uint64_t gen,
                           HookVerdict* verdict) const {
  uint8_t raw = 0;
  if (!task.lsm_cache.Lookup(key, gen, &raw)) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  *verdict = static_cast<HookVerdict>(raw);
  return true;
}

void LsmStack::CacheInsert(const Task& task, uint64_t key, uint64_t gen,
                           HookVerdict verdict) const {
  task.lsm_cache.Insert(key, gen, static_cast<uint8_t>(verdict));
}

uint64_t LsmStack::InodeKey(const Task& task, const std::string& path, int may) const {
  uint64_t h = kFnvOffset;
  h = MixU64(h, static_cast<uint64_t>(LsmHook::kInodePermission));
  h = MixU64(h, stack_id_);
  h = MixStr(h, path);
  h = MixU64(h, static_cast<uint64_t>(may));
  h = MixStr(h, task.exe_path);
  h = MixU64(h, task.cred.fsuid);
  h = MixU64(h, task.cred.euid);
  return NonZero(h);
}

uint64_t LsmStack::MountKey(const Task& task, const MountRequest& req) const {
  uint64_t h = kFnvOffset;
  h = MixU64(h, static_cast<uint64_t>(LsmHook::kSbMount));
  h = MixU64(h, stack_id_);
  h = MixStr(h, req.source);
  h = MixStr(h, req.mountpoint);
  h = MixStr(h, req.fstype);
  for (const std::string& opt : req.options) {
    h = MixStr(h, opt);
  }
  h = MixU64(h, task.cred.ruid);
  h = MixU64(h, task.cred.euid);
  return NonZero(h);
}

uint64_t LsmStack::BindKey(const Task& task, const BindRequest& req) const {
  uint64_t h = kFnvOffset;
  h = MixU64(h, static_cast<uint64_t>(LsmHook::kSocketBind));
  h = MixU64(h, stack_id_);
  h = MixU64(h, req.port);
  h = MixU64(h, static_cast<uint64_t>(req.netns));
  h = MixStr(h, req.binary_path);
  h = MixU64(h, task.cred.euid);
  return NonZero(h);
}

// --- Hook dispatch ----------------------------------------------------------------
//
// Each dispatch follows the same shape: count + time the consultation, probe
// the decision cache (cacheable hooks), then walk the modules — tallying and
// tracing each module's verdict — and trace the combined decision.

HookVerdict LsmStack::InodePermission(Task& task, const std::string& path,
                                      const Inode& inode, int may) const {
  LayerScope lsm_scope(profiler_, Layer::kLsm);
  Count(LsmHook::kInodePermission);
  HookTimer timer(clock_, &hook_lat_[static_cast<size_t>(LsmHook::kInodePermission)]);
  if (FaultDeny(LsmHook::kInodePermission, task.pid)) {
    return HookVerdict::kDeny;
  }
  uint64_t key = 0;
  uint64_t gen = 0;
  HookVerdict cached;
  if (decision_cache_enabled_) {
    LayerScope cache_scope(profiler_, Layer::kDecisionCache);
    if (CacheBypass()) {
      cache_bypasses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Snapshot the generation ONCE; lookup and insert both use it so a
      // policy swap landing mid-walk can never tag a pre-swap verdict with
      // the post-swap generation.
      gen = policy_generation();
      key = InodeKey(task, path, may);
      if (CacheLookup(task, key, gen, &cached)) {
        TraceDecision(LsmHook::kInodePermission, cached, kTraceFlagCacheHit, task.pid);
        return cached;
      }
    }
  }
  bool cacheable = true;
  const bool trace_hooks = tracer_ != nullptr && tracer_->Enabled(TracepointId::kLsmHook);
  HookVerdict acc = HookVerdict::kDefault;
  for (size_t i = 0; i < modules_.size(); ++i) {
    HookVerdict v = modules_[i]->InodePermission(task, path, inode, may, &cacheable);
    module_verdicts_[i][static_cast<size_t>(v)]++;
    if (trace_hooks) {
      TraceModule(LsmHook::kInodePermission, *modules_[i], v, task.pid);
    }
    acc = Combine(acc, v);
  }
  if (key != 0 && cacheable) {
    CacheInsert(task, key, gen, acc);
  }
  TraceDecision(LsmHook::kInodePermission, acc,
                key != 0 ? kTraceFlagCacheMiss : 0, task.pid);
  return acc;
}

HookVerdict LsmStack::SbMount(const Task& task, const MountRequest& req) const {
  LayerScope lsm_scope(profiler_, Layer::kLsm);
  Count(LsmHook::kSbMount);
  HookTimer timer(clock_, &hook_lat_[static_cast<size_t>(LsmHook::kSbMount)]);
  if (FaultDeny(LsmHook::kSbMount, task.pid)) {
    return HookVerdict::kDeny;
  }
  uint64_t key = 0;
  uint64_t gen = 0;
  HookVerdict cached;
  if (decision_cache_enabled_) {
    LayerScope cache_scope(profiler_, Layer::kDecisionCache);
    if (CacheBypass()) {
      cache_bypasses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Snapshot the generation ONCE; lookup and insert both use it so a
      // policy swap landing mid-walk can never tag a pre-swap verdict with
      // the post-swap generation.
      gen = policy_generation();
      key = MountKey(task, req);
      if (CacheLookup(task, key, gen, &cached)) {
        TraceDecision(LsmHook::kSbMount, cached, kTraceFlagCacheHit, task.pid);
        return cached;
      }
    }
  }
  bool cacheable = true;
  const bool trace_hooks = tracer_ != nullptr && tracer_->Enabled(TracepointId::kLsmHook);
  HookVerdict acc = HookVerdict::kDefault;
  for (size_t i = 0; i < modules_.size(); ++i) {
    HookVerdict v = modules_[i]->SbMount(task, req, &cacheable);
    module_verdicts_[i][static_cast<size_t>(v)]++;
    if (trace_hooks) {
      TraceModule(LsmHook::kSbMount, *modules_[i], v, task.pid);
    }
    acc = Combine(acc, v);
  }
  if (key != 0 && cacheable) {
    CacheInsert(task, key, gen, acc);
  }
  TraceDecision(LsmHook::kSbMount, acc, key != 0 ? kTraceFlagCacheMiss : 0,
                task.pid);
  return acc;
}

HookVerdict LsmStack::SbUmount(const Task& task, const std::string& mountpoint) const {
  LayerScope lsm_scope(profiler_, Layer::kLsm);
  Count(LsmHook::kSbUmount);
  HookTimer timer(clock_, &hook_lat_[static_cast<size_t>(LsmHook::kSbUmount)]);
  if (FaultDeny(LsmHook::kSbUmount, task.pid)) {
    return HookVerdict::kDeny;
  }
  const bool trace_hooks = tracer_ != nullptr && tracer_->Enabled(TracepointId::kLsmHook);
  HookVerdict acc = HookVerdict::kDefault;
  for (size_t i = 0; i < modules_.size(); ++i) {
    HookVerdict v = modules_[i]->SbUmount(task, mountpoint);
    module_verdicts_[i][static_cast<size_t>(v)]++;
    if (trace_hooks) {
      TraceModule(LsmHook::kSbUmount, *modules_[i], v, task.pid);
    }
    acc = Combine(acc, v);
  }
  TraceDecision(LsmHook::kSbUmount, acc, 0, task.pid);
  return acc;
}

HookVerdict LsmStack::SocketCreate(const Task& task, const SocketRequest& req) const {
  LayerScope lsm_scope(profiler_, Layer::kLsm);
  Count(LsmHook::kSocketCreate);
  HookTimer timer(clock_, &hook_lat_[static_cast<size_t>(LsmHook::kSocketCreate)]);
  if (FaultDeny(LsmHook::kSocketCreate, task.pid)) {
    return HookVerdict::kDeny;
  }
  const bool trace_hooks = tracer_ != nullptr && tracer_->Enabled(TracepointId::kLsmHook);
  HookVerdict acc = HookVerdict::kDefault;
  for (size_t i = 0; i < modules_.size(); ++i) {
    HookVerdict v = modules_[i]->SocketCreate(task, req);
    module_verdicts_[i][static_cast<size_t>(v)]++;
    if (trace_hooks) {
      TraceModule(LsmHook::kSocketCreate, *modules_[i], v, task.pid);
    }
    acc = Combine(acc, v);
  }
  TraceDecision(LsmHook::kSocketCreate, acc, 0, task.pid);
  return acc;
}

HookVerdict LsmStack::SocketBind(const Task& task, const BindRequest& req) const {
  LayerScope lsm_scope(profiler_, Layer::kLsm);
  Count(LsmHook::kSocketBind);
  HookTimer timer(clock_, &hook_lat_[static_cast<size_t>(LsmHook::kSocketBind)]);
  if (FaultDeny(LsmHook::kSocketBind, task.pid)) {
    return HookVerdict::kDeny;
  }
  uint64_t key = 0;
  uint64_t gen = 0;
  HookVerdict cached;
  if (decision_cache_enabled_) {
    LayerScope cache_scope(profiler_, Layer::kDecisionCache);
    if (CacheBypass()) {
      cache_bypasses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Snapshot the generation ONCE; lookup and insert both use it so a
      // policy swap landing mid-walk can never tag a pre-swap verdict with
      // the post-swap generation.
      gen = policy_generation();
      key = BindKey(task, req);
      if (CacheLookup(task, key, gen, &cached)) {
        TraceDecision(LsmHook::kSocketBind, cached, kTraceFlagCacheHit, task.pid);
        return cached;
      }
    }
  }
  bool cacheable = true;
  const bool trace_hooks = tracer_ != nullptr && tracer_->Enabled(TracepointId::kLsmHook);
  HookVerdict acc = HookVerdict::kDefault;
  for (size_t i = 0; i < modules_.size(); ++i) {
    HookVerdict v = modules_[i]->SocketBind(task, req, &cacheable);
    module_verdicts_[i][static_cast<size_t>(v)]++;
    if (trace_hooks) {
      TraceModule(LsmHook::kSocketBind, *modules_[i], v, task.pid);
    }
    acc = Combine(acc, v);
  }
  if (key != 0 && cacheable) {
    CacheInsert(task, key, gen, acc);
  }
  TraceDecision(LsmHook::kSocketBind, acc,
                key != 0 ? kTraceFlagCacheMiss : 0, task.pid);
  return acc;
}

HookVerdict LsmStack::TaskFixSetuid(Task& task, const SetuidRequest& req,
                                    SetuidDisposition* disposition) const {
  LayerScope lsm_scope(profiler_, Layer::kLsm);
  Count(LsmHook::kTaskFixSetuid);
  HookTimer timer(clock_, &hook_lat_[static_cast<size_t>(LsmHook::kTaskFixSetuid)]);
  if (FaultDeny(LsmHook::kTaskFixSetuid, task.pid)) {
    return HookVerdict::kDeny;
  }
  const bool trace_hooks = tracer_ != nullptr && tracer_->Enabled(TracepointId::kLsmHook);
  HookVerdict acc = HookVerdict::kDefault;
  for (size_t i = 0; i < modules_.size(); ++i) {
    HookVerdict v = modules_[i]->TaskFixSetuid(task, req, disposition);
    module_verdicts_[i][static_cast<size_t>(v)]++;
    if (trace_hooks) {
      TraceModule(LsmHook::kTaskFixSetuid, *modules_[i], v, task.pid);
    }
    acc = Combine(acc, v);
  }
  TraceDecision(LsmHook::kTaskFixSetuid, acc, 0, task.pid);
  return acc;
}

HookVerdict LsmStack::BprmCheck(Task& task, const std::string& path, const Inode& inode,
                                const std::vector<std::string>& argv, ExecControl* control) const {
  LayerScope lsm_scope(profiler_, Layer::kLsm);
  Count(LsmHook::kBprmCheck);
  HookTimer timer(clock_, &hook_lat_[static_cast<size_t>(LsmHook::kBprmCheck)]);
  if (FaultDeny(LsmHook::kBprmCheck, task.pid)) {
    return HookVerdict::kDeny;
  }
  const bool trace_hooks = tracer_ != nullptr && tracer_->Enabled(TracepointId::kLsmHook);
  HookVerdict acc = HookVerdict::kDefault;
  for (size_t i = 0; i < modules_.size(); ++i) {
    HookVerdict v = modules_[i]->BprmCheck(task, path, inode, argv, control);
    module_verdicts_[i][static_cast<size_t>(v)]++;
    if (trace_hooks) {
      TraceModule(LsmHook::kBprmCheck, *modules_[i], v, task.pid);
    }
    acc = Combine(acc, v);
  }
  TraceDecision(LsmHook::kBprmCheck, acc, 0, task.pid);
  return acc;
}

HookVerdict LsmStack::FileIoctl(const Task& task, const IoctlRequest& req) const {
  LayerScope lsm_scope(profiler_, Layer::kLsm);
  Count(LsmHook::kFileIoctl);
  HookTimer timer(clock_, &hook_lat_[static_cast<size_t>(LsmHook::kFileIoctl)]);
  if (FaultDeny(LsmHook::kFileIoctl, task.pid)) {
    return HookVerdict::kDeny;
  }
  const bool trace_hooks = tracer_ != nullptr && tracer_->Enabled(TracepointId::kLsmHook);
  HookVerdict acc = HookVerdict::kDefault;
  for (size_t i = 0; i < modules_.size(); ++i) {
    HookVerdict v = modules_[i]->FileIoctl(task, req);
    module_verdicts_[i][static_cast<size_t>(v)]++;
    if (trace_hooks) {
      TraceModule(LsmHook::kFileIoctl, *modules_[i], v, task.pid);
    }
    acc = Combine(acc, v);
  }
  TraceDecision(LsmHook::kFileIoctl, acc, 0, task.pid);
  return acc;
}

}  // namespace protego
