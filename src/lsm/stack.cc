#include "src/lsm/stack.h"

#include <cstring>

namespace protego {

namespace {

// Incremental 64-bit FNV-1a for cache-key construction.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t MixU64(uint64_t h, uint64_t v) { return MixBytes(h, &v, sizeof(v)); }

uint64_t MixStr(uint64_t h, const std::string& s) {
  // Length first, so ("ab","c") and ("a","bc") cannot collide by
  // concatenation.
  h = MixU64(h, s.size());
  return MixBytes(h, s.data(), s.size());
}

uint64_t NonZero(uint64_t h) { return h == 0 ? 1 : h; }

}  // namespace

const char* HookVerdictName(HookVerdict v) {
  switch (v) {
    case HookVerdict::kDefault: return "DEFAULT";
    case HookVerdict::kAllow: return "ALLOW";
    case HookVerdict::kDeny: return "DENY";
  }
  return "?";
}

void SecurityModule::BumpPolicyGeneration() {
  if (stack_ != nullptr) {
    stack_->BumpPolicyGeneration();
  }
}

LsmStack::LsmStack() {
  // Process-wide monotonic stack id: tasks outliving one stack and being
  // consulted by another (the benchmarks do this) must never cross-hit.
  static uint64_t next_stack_id = 1;
  stack_id_ = next_stack_id++;
}

void LsmStack::Register(std::unique_ptr<SecurityModule> module) {
  module->AttachStack(this);
  modules_.push_back(std::move(module));
}

SecurityModule* LsmStack::Find(const char* name) {
  for (const auto& m : modules_) {
    if (std::strcmp(m->name(), name) == 0) {
      return m.get();
    }
  }
  return nullptr;
}

uint64_t LsmStack::TotalHookInvocations() const {
  uint64_t total = 0;
  for (uint64_t c : hook_counts_) {
    total += c;
  }
  return total;
}

bool LsmStack::Capable(const Task& task, Capability cap) const {
  for (const auto& m : modules_) {
    if (!m->CapablePermitted(task, cap)) {
      return false;
    }
  }
  return true;
}

HookVerdict LsmStack::Combine(HookVerdict acc, HookVerdict v) {
  if (acc == HookVerdict::kDeny || v == HookVerdict::kDeny) {
    return HookVerdict::kDeny;
  }
  if (acc == HookVerdict::kAllow || v == HookVerdict::kAllow) {
    return HookVerdict::kAllow;
  }
  return HookVerdict::kDefault;
}

// --- Decision cache ---------------------------------------------------------------

bool LsmStack::CacheLookup(const Task& task, uint64_t key, HookVerdict* verdict) const {
  uint8_t raw = 0;
  if (!task.lsm_cache.Lookup(key, policy_generation_, &raw)) {
    ++cache_misses_;
    return false;
  }
  ++cache_hits_;
  *verdict = static_cast<HookVerdict>(raw);
  return true;
}

void LsmStack::CacheInsert(const Task& task, uint64_t key, HookVerdict verdict) const {
  task.lsm_cache.Insert(key, policy_generation_, static_cast<uint8_t>(verdict));
}

uint64_t LsmStack::InodeKey(const Task& task, const std::string& path, int may) const {
  uint64_t h = kFnvOffset;
  h = MixU64(h, static_cast<uint64_t>(LsmHook::kInodePermission));
  h = MixU64(h, stack_id_);
  h = MixStr(h, path);
  h = MixU64(h, static_cast<uint64_t>(may));
  h = MixStr(h, task.exe_path);
  h = MixU64(h, task.cred.fsuid);
  h = MixU64(h, task.cred.euid);
  return NonZero(h);
}

uint64_t LsmStack::MountKey(const Task& task, const MountRequest& req) const {
  uint64_t h = kFnvOffset;
  h = MixU64(h, static_cast<uint64_t>(LsmHook::kSbMount));
  h = MixU64(h, stack_id_);
  h = MixStr(h, req.source);
  h = MixStr(h, req.mountpoint);
  h = MixStr(h, req.fstype);
  for (const std::string& opt : req.options) {
    h = MixStr(h, opt);
  }
  h = MixU64(h, task.cred.ruid);
  h = MixU64(h, task.cred.euid);
  return NonZero(h);
}

uint64_t LsmStack::BindKey(const Task& task, const BindRequest& req) const {
  uint64_t h = kFnvOffset;
  h = MixU64(h, static_cast<uint64_t>(LsmHook::kSocketBind));
  h = MixU64(h, stack_id_);
  h = MixU64(h, req.port);
  h = MixU64(h, static_cast<uint64_t>(req.netns));
  h = MixStr(h, req.binary_path);
  h = MixU64(h, task.cred.euid);
  return NonZero(h);
}

// --- Hook dispatch ----------------------------------------------------------------

HookVerdict LsmStack::InodePermission(Task& task, const std::string& path,
                                      const Inode& inode, int may) const {
  Count(LsmHook::kInodePermission);
  uint64_t key = 0;
  HookVerdict cached;
  if (decision_cache_enabled_) {
    key = InodeKey(task, path, may);
    if (CacheLookup(task, key, &cached)) {
      return cached;
    }
  }
  bool cacheable = true;
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->InodePermission(task, path, inode, may, &cacheable));
  }
  if (key != 0 && cacheable) {
    CacheInsert(task, key, acc);
  }
  return acc;
}

HookVerdict LsmStack::SbMount(const Task& task, const MountRequest& req) const {
  Count(LsmHook::kSbMount);
  uint64_t key = 0;
  HookVerdict cached;
  if (decision_cache_enabled_) {
    key = MountKey(task, req);
    if (CacheLookup(task, key, &cached)) {
      return cached;
    }
  }
  bool cacheable = true;
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->SbMount(task, req, &cacheable));
  }
  if (key != 0 && cacheable) {
    CacheInsert(task, key, acc);
  }
  return acc;
}

HookVerdict LsmStack::SbUmount(const Task& task, const std::string& mountpoint) const {
  Count(LsmHook::kSbUmount);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->SbUmount(task, mountpoint));
  }
  return acc;
}

HookVerdict LsmStack::SocketCreate(const Task& task, const SocketRequest& req) const {
  Count(LsmHook::kSocketCreate);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->SocketCreate(task, req));
  }
  return acc;
}

HookVerdict LsmStack::SocketBind(const Task& task, const BindRequest& req) const {
  Count(LsmHook::kSocketBind);
  uint64_t key = 0;
  HookVerdict cached;
  if (decision_cache_enabled_) {
    key = BindKey(task, req);
    if (CacheLookup(task, key, &cached)) {
      return cached;
    }
  }
  bool cacheable = true;
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->SocketBind(task, req, &cacheable));
  }
  if (key != 0 && cacheable) {
    CacheInsert(task, key, acc);
  }
  return acc;
}

HookVerdict LsmStack::TaskFixSetuid(Task& task, const SetuidRequest& req,
                                    SetuidDisposition* disposition) const {
  Count(LsmHook::kTaskFixSetuid);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->TaskFixSetuid(task, req, disposition));
  }
  return acc;
}

HookVerdict LsmStack::BprmCheck(Task& task, const std::string& path, const Inode& inode,
                                const std::vector<std::string>& argv, ExecControl* control) const {
  Count(LsmHook::kBprmCheck);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->BprmCheck(task, path, inode, argv, control));
  }
  return acc;
}

HookVerdict LsmStack::FileIoctl(const Task& task, const IoctlRequest& req) const {
  Count(LsmHook::kFileIoctl);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->FileIoctl(task, req));
  }
  return acc;
}

}  // namespace protego
