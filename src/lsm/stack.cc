#include "src/lsm/stack.h"

#include <cstring>

namespace protego {

const char* HookVerdictName(HookVerdict v) {
  switch (v) {
    case HookVerdict::kDefault: return "DEFAULT";
    case HookVerdict::kAllow: return "ALLOW";
    case HookVerdict::kDeny: return "DENY";
  }
  return "?";
}

void LsmStack::Register(std::unique_ptr<SecurityModule> module) {
  modules_.push_back(std::move(module));
}

SecurityModule* LsmStack::Find(const char* name) {
  for (const auto& m : modules_) {
    if (std::strcmp(m->name(), name) == 0) {
      return m.get();
    }
  }
  return nullptr;
}

uint64_t LsmStack::TotalHookInvocations() const {
  uint64_t total = 0;
  for (uint64_t c : hook_counts_) {
    total += c;
  }
  return total;
}

bool LsmStack::Capable(const Task& task, Capability cap) const {
  for (const auto& m : modules_) {
    if (!m->CapablePermitted(task, cap)) {
      return false;
    }
  }
  return true;
}

HookVerdict LsmStack::Combine(HookVerdict acc, HookVerdict v) {
  if (acc == HookVerdict::kDeny || v == HookVerdict::kDeny) {
    return HookVerdict::kDeny;
  }
  if (acc == HookVerdict::kAllow || v == HookVerdict::kAllow) {
    return HookVerdict::kAllow;
  }
  return HookVerdict::kDefault;
}

HookVerdict LsmStack::InodePermission(Task& task, const std::string& path,
                                      const Inode& inode, int may) const {
  Count(LsmHook::kInodePermission);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->InodePermission(task, path, inode, may));
  }
  return acc;
}

HookVerdict LsmStack::SbMount(const Task& task, const MountRequest& req) const {
  Count(LsmHook::kSbMount);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->SbMount(task, req));
  }
  return acc;
}

HookVerdict LsmStack::SbUmount(const Task& task, const std::string& mountpoint) const {
  Count(LsmHook::kSbUmount);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->SbUmount(task, mountpoint));
  }
  return acc;
}

HookVerdict LsmStack::SocketCreate(const Task& task, const SocketRequest& req) const {
  Count(LsmHook::kSocketCreate);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->SocketCreate(task, req));
  }
  return acc;
}

HookVerdict LsmStack::SocketBind(const Task& task, const BindRequest& req) const {
  Count(LsmHook::kSocketBind);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->SocketBind(task, req));
  }
  return acc;
}

HookVerdict LsmStack::TaskFixSetuid(Task& task, const SetuidRequest& req,
                                    SetuidDisposition* disposition) const {
  Count(LsmHook::kTaskFixSetuid);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->TaskFixSetuid(task, req, disposition));
  }
  return acc;
}

HookVerdict LsmStack::BprmCheck(Task& task, const std::string& path, const Inode& inode,
                                const std::vector<std::string>& argv, ExecControl* control) const {
  Count(LsmHook::kBprmCheck);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->BprmCheck(task, path, inode, argv, control));
  }
  return acc;
}

HookVerdict LsmStack::FileIoctl(const Task& task, const IoctlRequest& req) const {
  Count(LsmHook::kFileIoctl);
  HookVerdict acc = HookVerdict::kDefault;
  for (const auto& m : modules_) {
    acc = Combine(acc, m->FileIoctl(task, req));
  }
  return acc;
}

}  // namespace protego
