#include "src/lsm/apparmor.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace protego {

void AppArmorModule::LoadProfile(AaProfile profile) {
  std::string key = profile.binary;
  profiles_[key] = std::move(profile);
  BumpPolicyGeneration();
}

void AppArmorModule::RemoveProfile(const std::string& binary) {
  profiles_.erase(binary);
  BumpPolicyGeneration();
}

const AaProfile* AppArmorModule::FindProfile(const std::string& binary) const {
  auto it = profiles_.find(binary);
  return it == profiles_.end() ? nullptr : &it->second;
}

bool AppArmorModule::CapablePermitted(const Task& task, Capability cap) {
  const AaProfile* profile = FindProfile(task.exe_path);
  if (profile == nullptr || !profile->bound_caps) {
    return true;  // unconfined
  }
  if (profile->capability_bound.Has(cap)) {
    return true;
  }
  denials_.push_back(StrFormat("apparmor: %s denied %s for %s", profile->binary.c_str(),
                               CapabilityName(cap), task.comm.c_str()));
  if (!profile->enforce) {
    return true;  // complain mode: log but allow
  }
  LogAudit(denials_.back());
  return false;
}

HookVerdict AppArmorModule::InodePermission(Task& task, const std::string& path,
                                            const Inode& inode, int may, bool* cacheable) {
  (void)inode;
  const AaProfile* profile = FindProfile(task.exe_path);
  if (profile == nullptr) {
    return HookVerdict::kDefault;
  }
  // Confined decisions append to the denial log (and complain mode exists
  // to record every event), so they must re-execute each time.
  *cacheable = false;
  int granted = 0;
  for (const AaFileRule& rule : profile->file_rules) {
    if (GlobMatch(rule.glob, path)) {
      granted |= rule.allow_may;
    }
  }
  if ((granted & may) == may) {
    return HookVerdict::kDefault;  // profile permits; DAC still applies
  }
  denials_.push_back(StrFormat("apparmor: %s denied %s may=%d for %s", profile->binary.c_str(),
                               path.c_str(), may, task.comm.c_str()));
  if (!profile->enforce) {
    return HookVerdict::kDefault;
  }
  LogAudit(denials_.back());
  return HookVerdict::kDeny;
}

}  // namespace protego
