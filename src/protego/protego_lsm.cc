#include "src/protego/protego_lsm.h"

#include <algorithm>
#include <utility>

#include "src/base/strings.h"
#include "src/kernel/kernel.h"
#include "src/net/routing.h"

namespace protego {

namespace {

// Mount options a user may add beyond what the whitelist entry grants;
// each strictly reduces privilege.
const char* kSafeExtraMountOptions[] = {"ro", "nosuid", "nodev", "noexec"};

bool IsSafeExtraOption(const std::string& opt) {
  for (const char* safe : kSafeExtraMountOptions) {
    if (opt == safe) {
      return true;
    }
  }
  return false;
}

}  // namespace

ProtegoLsm::Policy ProtegoLsm::CloneTablesLocked() const {
  PolicyRef cur = policy();
  Policy next;
  next.mount_whitelist = cur->mount_whitelist;
  next.bind_table = cur->bind_table;
  next.delegation = cur->delegation;
  next.user_db = cur->user_db;
  next.ppp_options = cur->ppp_options;
  return next;
}

Result<Unit> ProtegoLsm::CompileAndPublish(Policy next) {
  // Compile into the staged snapshot so a failure part-way through (an
  // injected kPolicyCompile fault standing in for OOM during index
  // construction) publishes nothing — the live snapshot is untouched. Two
  // fault evaluation points — before any index is built and after half of
  // them — so the sweep can prove that a fault at either boundary rolls
  // back identically.
  FaultRegistry* faults = kernel_ != nullptr ? &kernel_->faults() : nullptr;
  if (faults != nullptr && faults->any_enabled()) {
    RETURN_IF_ERROR(faults->Check(FaultSite::kPolicyCompile, "policy compile (start)"));
  }
  next.engine.bind.Build(next.bind_table);
  next.engine.mount.Build(next.mount_whitelist);
  if (faults != nullptr && faults->any_enabled()) {
    RETURN_IF_ERROR(faults->Check(FaultSite::kPolicyCompile, "policy compile (mid-swap)"));
  }
  next.engine.files.Build(next.delegation);
  next.engine.sudoers.Build(next.delegation, next.user_db);
  // Publish-then-bump: the mutex release publishes the new snapshot before
  // the (release) generation bump, so a hook that snapshots the generation
  // (acquire) and sees G is guaranteed to load at least generation G's
  // snapshot — a cached verdict tagged G can never have been computed
  // against an older policy. The displaced snapshot is retired once the
  // last in-flight reader drops its PolicyRef.
  {
    std::lock_guard<std::mutex> lk(policy_mu_);
    policy_ = std::make_shared<const Policy>(std::move(next));
  }
  // Any swap invalidates every cached verdict, keeping parse-validate-swap
  // atomic from the hooks' point of view. Only reached on success: a failed
  // swap must leave cached verdicts valid (they still match the engine).
  BumpPolicyGeneration();
  return OkUnit();
}

Result<Unit> ProtegoLsm::SetMountPolicy(std::vector<FstabEntry> whitelist) {
  std::lock_guard<std::mutex> lk(swap_mu_);
  Policy next = CloneTablesLocked();
  next.mount_whitelist = std::move(whitelist);
  return CompileAndPublish(std::move(next));
}

Result<Unit> ProtegoLsm::SetBindTable(std::vector<BindConfEntry> table) {
  std::lock_guard<std::mutex> lk(swap_mu_);
  Policy next = CloneTablesLocked();
  next.bind_table = std::move(table);
  return CompileAndPublish(std::move(next));
}

Result<Unit> ProtegoLsm::SetDelegation(SudoersPolicy policy) {
  std::lock_guard<std::mutex> lk(swap_mu_);
  Policy next = CloneTablesLocked();
  next.delegation = std::move(policy);
  return CompileAndPublish(std::move(next));
}

Result<Unit> ProtegoLsm::SetUserDb(UserDb db) {
  std::lock_guard<std::mutex> lk(swap_mu_);
  Policy next = CloneTablesLocked();
  next.user_db = std::move(db);
  return CompileAndPublish(std::move(next));
}

Result<Unit> ProtegoLsm::SetPppOptions(PppOptions options) {
  std::lock_guard<std::mutex> lk(swap_mu_);
  Policy next = CloneTablesLocked();
  next.ppp_options = std::move(options);
  return CompileAndPublish(std::move(next));
}

size_t ProtegoLsm::PolicyRuleCount() const {
  PolicyRef pol = policy();
  return pol->mount_whitelist.size() + pol->bind_table.size() + pol->delegation.rules.size() +
         pol->delegation.file_delegations.size() + pol->delegation.reauth_read_globs.size();
}

// --- Mount (§4.2) ---------------------------------------------------------------

bool ProtegoLsm::MountEntryGrants(const FstabEntry& entry, bool glob_mountpoint,
                                  const Task& task, const MountRequest& req,
                                  bool* cacheable) const {
  // Every requested option must be granted by the entry or be a
  // privilege-reducing extra.
  for (const std::string& opt : req.options) {
    if (!entry.HasOption(opt) && !IsSafeExtraOption(opt)) {
      return false;
    }
  }
  // Glob entries ("fuse /home/*/mnt fuse user") grant per-user
  // mountpoints: the actual directory must belong to the requester, or
  // anyone could graft a filesystem into someone else's home. Consulting
  // live VFS ownership makes the verdict uncacheable (a chown must be able
  // to change the answer).
  if (glob_mountpoint) {
    *cacheable = false;
    auto target = kernel_->vfs().Resolve(req.mountpoint);
    if (!target.ok() || target.value()->inode().uid != task.cred.ruid) {
      return false;
    }
  }
  return true;
}

HookVerdict ProtegoLsm::SbMount(const Task& task, const MountRequest& req, bool* cacheable) {
  if (kernel_->Capable(task, Capability::kSysAdmin)) {
    return HookVerdict::kDefault;  // administrator path is unchanged
  }
  PolicyRef pol_ref = policy();  // ONE snapshot for the whole dispatch
  const Policy& pol = *pol_ref;
  bool granted = false;
  if (compiled_engine_enabled()) {
    pol.engine.mount.ForEachMatch(req.source, req.mountpoint, req.fstype,
                                  [&](const CompiledFstabRule& rule) {
                                    granted = MountEntryGrants(rule.entry, rule.glob_mountpoint,
                                                               task, req, cacheable);
                                    return granted;
                                  });
  } else {
    for (const FstabEntry& entry : pol.mount_whitelist) {
      // Policy entries may use globs (e.g. "fuse /home/*/mnt fuse user");
      // literal fstab entries match exactly.
      if (!entry.UserMountable() || !GlobMatch(entry.device, req.source) ||
          !GlobMatch(entry.mountpoint, req.mountpoint) || !GlobMatch(entry.fstype, req.fstype)) {
        continue;
      }
      bool glob_mountpoint = entry.mountpoint.find('*') != std::string::npos;
      if (MountEntryGrants(entry, glob_mountpoint, task, req, cacheable)) {
        granted = true;
        break;
      }
    }
  }
  if (granted) {
    ++stats_.mount_allowed;
    kernel_->Audit(StrFormat("protego: user mount %s on %s allowed (uid=%u)", req.source.c_str(),
                       req.mountpoint.c_str(), task.cred.ruid));
    return HookVerdict::kAllow;
  }
  ++stats_.mount_denied;
  return HookVerdict::kDefault;  // falls through to the CAP_SYS_ADMIN refusal
}

HookVerdict ProtegoLsm::SbUmount(const Task& task, const std::string& mountpoint) {
  if (kernel_->Capable(task, Capability::kSysAdmin)) {
    return HookVerdict::kDefault;
  }
  const MountEntry* mount = kernel_->vfs().FindMount(mountpoint);
  if (mount == nullptr) {
    return HookVerdict::kDefault;
  }
  PolicyRef pol_ref = policy();
  const Policy& pol = *pol_ref;
  // May THIS user unmount? "users" entries let anyone; "user" entries only
  // the task that mounted (live mount-table state — never cached).
  bool granted = false;
  if (compiled_engine_enabled()) {
    pol.engine.mount.ForEachMountpointMatch(mountpoint, [&](const CompiledFstabRule& rule) {
      granted = rule.any_user_may_unmount || mount->mounter == task.cred.ruid;
      return granted;
    });
  } else {
    for (const FstabEntry& entry : pol.mount_whitelist) {
      if (!entry.UserMountable() || !GlobMatch(entry.mountpoint, mountpoint)) {
        continue;
      }
      if (entry.AnyUserMayUnmount() || mount->mounter == task.cred.ruid) {
        granted = true;
        break;
      }
    }
  }
  if (granted) {
    ++stats_.umount_allowed;
    return HookVerdict::kAllow;
  }
  ++stats_.umount_denied;
  return HookVerdict::kDefault;
}

// --- Raw sockets (§4.1.1) ---------------------------------------------------------

HookVerdict ProtegoLsm::SocketCreate(const Task& task, const SocketRequest& req) {
  (void)task;
  if (req.type == kSockRaw || req.family == kAfPacket) {
    // Any user may create a raw or packet socket; what they can SEND is
    // constrained by the default netfilter rules (see default_rules.cc).
    ++stats_.raw_sockets_allowed;
    return HookVerdict::kAllow;
  }
  return HookVerdict::kDefault;
}

// --- Bind (§4.1.3) -----------------------------------------------------------------

HookVerdict ProtegoLsm::SocketBind(const Task& task, const BindRequest& req, bool* cacheable) {
  (void)cacheable;  // pure function of (policy, request, creds): cacheable
  if (req.netns != 0) {
    // A port inside a sandbox namespace is not the system's well-known
    // port; allocations do not apply there.
    return HookVerdict::kDefault;
  }
  if (req.port >= 1024) {
    return HookVerdict::kDefault;
  }
  PolicyRef pol_ref = policy();
  const Policy& pol = *pol_ref;
  // The port may carry several (binary, uid) allocations; EVERY entry for
  // the port must be considered before denying — denying at the first
  // non-matching entry would make later allocations of the port dead policy.
  bool allocated = false;
  if (compiled_engine_enabled()) {
    const std::vector<BindConfEntry>* allocations = pol.engine.bind.Find(req.port);
    if (allocations != nullptr) {
      allocated = true;
      for (const BindConfEntry& entry : *allocations) {
        if (entry.binary == req.binary_path && entry.uid == task.cred.euid) {
          ++stats_.bind_allowed;
          return HookVerdict::kAllow;
        }
      }
    }
  } else {
    for (const BindConfEntry& entry : pol.bind_table) {
      if (entry.port != req.port) {
        continue;
      }
      allocated = true;
      if (entry.binary == req.binary_path && entry.uid == task.cred.euid) {
        ++stats_.bind_allowed;
        return HookVerdict::kAllow;
      }
    }
  }
  if (allocated) {
    // The port is allocated and this task is none of its instances: ONLY
    // the configured (binary, uid) pairs may bind it — root privilege does
    // not override an allocation, which is what stops a compromised web
    // server from becoming a mail server.
    ++stats_.bind_denied;
    kernel_->Audit(StrFormat("protego: bind(%u) denied: port allocated, requested by %s uid=%u",
                       req.port, req.binary_path.c_str(), task.cred.euid));
    return HookVerdict::kDeny;
  }
  return HookVerdict::kDefault;  // unallocated port: legacy CAP_NET_BIND_SERVICE rule
}

// --- setuid/setgid delegation (§4.3) -------------------------------------------------

bool ProtegoLsm::RuleSubjectMatches(const Policy& pol, const SudoRule& rule,
                                    const std::string& user_name) const {
  if (rule.user == "ALL" || rule.user == user_name) {
    return true;
  }
  if (!rule.user.empty() && rule.user[0] == '%') {
    const GroupEntry* group = pol.user_db.FindGroup(rule.user.substr(1));
    if (group != nullptr) {
      return std::find(group->members.begin(), group->members.end(), user_name) !=
             group->members.end();
    }
  }
  return false;
}

std::vector<const SudoRule*> ProtegoLsm::MatchingRules(const Policy& pol, Uid invoking_uid,
                                                       const std::string& target) const {
  std::vector<const SudoRule*> matches;
  const PasswdEntry* invoker = pol.user_db.FindUid(invoking_uid);
  if (invoker == nullptr) {
    return matches;
  }
  if (compiled_engine_enabled()) {
    // The index pre-resolved subject matching (exact names, %group
    // membership, ALL) at build time; only runas filtering remains.
    for (size_t i : pol.engine.sudoers.RulesForUser(invoker->name)) {
      const SudoRule& rule = pol.delegation.rules[i];
      if (rule.RunasMatches(target)) {
        matches.push_back(&rule);
      }
    }
    return matches;
  }
  for (const SudoRule& rule : pol.delegation.rules) {
    if (RuleSubjectMatches(pol, rule, invoker->name) && rule.RunasMatches(target)) {
      matches.push_back(&rule);
    }
  }
  return matches;
}

bool ProtegoLsm::RuleCommandMatches(const Policy& pol, const SudoRule* rule,
                                    const std::string& command_line) const {
  // The pointer-to-index translation requires that `rule` point into THIS
  // snapshot's rules vector — MatchingRules and RuleCommandMatches must be
  // handed the same PolicyRef the caller loaded at dispatch entry.
  if (compiled_engine_enabled() && !pol.delegation.rules.empty() &&
      rule >= pol.delegation.rules.data() &&
      rule < pol.delegation.rules.data() + pol.delegation.rules.size()) {
    return pol.engine.sudoers.CommandMatches(
        static_cast<size_t>(rule - pol.delegation.rules.data()), command_line);
  }
  return rule->CommandMatches(command_line);
}

bool ProtegoLsm::EnsureAuthenticated(const Policy& pol, Task& task, Uid account) const {
  uint64_t now = kernel_->clock().Now();
  if (task.RecentlyAuthenticated(account, now, pol.delegation.timestamp_timeout_sec)) {
    return true;
  }
  // The kernel launches the trusted authentication utility on the task's
  // terminal; success stamps task.auth_times.
  return kernel_->Authenticate(task, account);
}

HookVerdict ProtegoLsm::TaskFixSetuid(Task& task, const SetuidRequest& req,
                                      SetuidDisposition* disposition) {
  PolicyRef pol_ref = policy();
  const Policy& pol = *pol_ref;
  if (req.is_gid) {
    if (kernel_->Capable(task, Capability::kSetgid)) {
      return HookVerdict::kDefault;
    }
    if (req.target_gid == task.cred.rgid || req.target_gid == task.cred.sgid) {
      return HookVerdict::kDefault;  // always legal; legacy path handles it
    }
    const GroupEntry* group = pol.user_db.FindGid(req.target_gid);
    const PasswdEntry* user = pol.user_db.FindUid(task.cred.ruid);
    if (group == nullptr || user == nullptr) {
      return HookVerdict::kDefault;
    }
    // Listed members may join without a password (newgrp semantics).
    if (std::find(group->members.begin(), group->members.end(), user->name) !=
        group->members.end()) {
      ++stats_.setuid_allowed;
      return HookVerdict::kAllow;
    }
    // Password-protected groups: authenticate against the group password.
    bool password_protected =
        std::find(pol.delegation.password_groups.begin(), pol.delegation.password_groups.end(),
                  group->name) != pol.delegation.password_groups.end();
    if (password_protected && !group->password_hash.empty()) {
      if (EnsureAuthenticated(pol, task, kGroupAuthBase + req.target_gid)) {
        ++stats_.setuid_allowed;
        return HookVerdict::kAllow;
      }
      ++stats_.setuid_denied;
      return HookVerdict::kDeny;
    }
    return HookVerdict::kDefault;
  }

  // uid case.
  if (kernel_->Capable(task, Capability::kSetuid)) {
    return HookVerdict::kDefault;  // privileged path unchanged
  }
  if (req.target_uid == task.cred.ruid || req.target_uid == task.cred.suid) {
    return HookVerdict::kDefault;  // legal under stock rules
  }
  const PasswdEntry* target = pol.user_db.FindUid(req.target_uid);
  if (target == nullptr) {
    return HookVerdict::kDefault;
  }
  std::vector<const SudoRule*> rules = MatchingRules(pol, task.cred.ruid, target->name);
  if (rules.empty()) {
    return HookVerdict::kDefault;  // no delegation: legacy EPERM
  }

  std::vector<const SudoRule*> all_command_rules;
  bool restricted_rule_exists = false;
  for (const SudoRule* rule : rules) {
    bool is_all = false;
    for (const std::string& c : rule->commands) {
      if (c == "ALL") {
        is_all = true;
        break;
      }
    }
    if (is_all) {
      all_command_rules.push_back(rule);
    } else {
      restricted_rule_exists = true;
    }
  }

  if (restricted_rule_exists || all_command_rules.empty()) {
    // Command-restricted delegation exists: privilege must not change
    // before exec, so report success, record the pending transition, and
    // enforce (including any ALL rules) at execve, where the command is
    // known. This is the paper's setuid-on-exec mechanism.
    disposition->defer_to_exec = true;
    ++stats_.setuid_deferred;
    return HookVerdict::kAllow;
  }

  // Authentication requirement across the granting rules: NOPASSWD needs
  // nothing; TARGETPW rules accept the target's password (su); plain rules
  // accept the invoker's (sudo). When several rules grant, any candidate
  // password satisfies — ONE prompt, verified against the candidate set.
  bool authenticated = false;
  std::vector<Uid> candidates;
  for (const SudoRule* rule : all_command_rules) {
    if (rule->nopasswd) {
      authenticated = true;
      break;
    }
    Uid account = rule->targetpw ? req.target_uid : task.cred.ruid;
    if (std::find(candidates.begin(), candidates.end(), account) == candidates.end()) {
      candidates.push_back(account);
    }
  }
  if (!authenticated) {
    uint64_t now = kernel_->clock().Now();
    for (Uid account : candidates) {
      if (task.RecentlyAuthenticated(account, now, pol.delegation.timestamp_timeout_sec)) {
        authenticated = true;
        break;
      }
    }
  }
  if (!authenticated) {
    authenticated = kernel_->AuthenticateAny(task, candidates).has_value();
  }
  if (authenticated) {
    // Immediate full transition, including the target's primary group
    // (what stock su/login did with setgid while still root).
    disposition->has_gid = true;
    disposition->gid = target->gid;
    ++stats_.setuid_allowed;
    kernel_->Audit(StrFormat("protego: setuid %u -> %u allowed by delegation", task.cred.ruid,
                       req.target_uid));
    return HookVerdict::kAllow;
  }
  ++stats_.setuid_denied;
  kernel_->Audit(StrFormat("protego: setuid(%u) denied: authentication failed for uid=%u",
                     req.target_uid, task.cred.ruid));
  return HookVerdict::kDeny;
}

HookVerdict ProtegoLsm::BprmCheck(Task& task, const std::string& path, const Inode& inode,
                                  const std::vector<std::string>& argv, ExecControl* control) {
  (void)inode;
  if (!task.pending_setuid.active) {
    return HookVerdict::kDefault;
  }
  PolicyRef pol_ref = policy();
  const Policy& pol = *pol_ref;
  const PendingSetuid& pending = task.pending_setuid;

  if (pending.has_gid) {
    // Deferred setgid (password-protected group joins are immediate; this
    // path exists for symmetric gid delegation rules).
    control->cred->rgid = control->cred->egid = control->cred->sgid = control->cred->fsgid =
        pending.target_gid;
    ++stats_.exec_transitions;
    return HookVerdict::kAllow;
  }

  const PasswdEntry* target = pol.user_db.FindUid(pending.target_uid);
  if (target == nullptr) {
    ++stats_.exec_denied;
    return HookVerdict::kDeny;
  }
  std::string command_line = path;
  for (size_t i = 1; i < argv.size(); ++i) {
    command_line += " " + argv[i];
  }
  std::vector<const SudoRule*> rules = MatchingRules(pol, task.cred.ruid, target->name);
  std::vector<const SudoRule*> granting;
  for (const SudoRule* rule : rules) {
    if (RuleCommandMatches(pol, rule, command_line)) {
      granting.push_back(rule);
    }
  }
  if (granting.empty()) {
    ++stats_.exec_denied;
    kernel_->Audit(StrFormat("protego: exec '%s' as %s denied for uid=%u (no matching rule)",
                       command_line.c_str(), target->name.c_str(), task.cred.ruid));
    return HookVerdict::kDeny;
  }
  // Same one-prompt/any-candidate authentication as the immediate path.
  bool authenticated = false;
  std::vector<Uid> candidates;
  for (const SudoRule* rule : granting) {
    if (rule->nopasswd) {
      authenticated = true;
      break;
    }
    Uid account = rule->targetpw ? pending.target_uid : task.cred.ruid;
    if (std::find(candidates.begin(), candidates.end(), account) == candidates.end()) {
      candidates.push_back(account);
    }
  }
  if (!authenticated) {
    uint64_t now = kernel_->clock().Now();
    for (Uid account : candidates) {
      if (task.RecentlyAuthenticated(account, now, pol.delegation.timestamp_timeout_sec)) {
        authenticated = true;
        break;
      }
    }
  }
  if (!authenticated) {
    authenticated = kernel_->AuthenticateAny(task, candidates).has_value();
  }
  if (!authenticated) {
    ++stats_.exec_denied;
    return HookVerdict::kDeny;
  }

  // All checks passed: apply the full transition to the new image only.
  Cred& cred = *control->cred;
  cred.ruid = cred.euid = cred.suid = cred.fsuid = pending.target_uid;
  cred.rgid = cred.egid = cred.sgid = cred.fsgid = target->gid;
  cred.groups.clear();
  if (pending.target_uid == kRootUid) {
    cred.permitted = CapSet::All();
    cred.effective = CapSet::All();
  } else {
    cred.permitted.Clear();
    cred.effective.Clear();
  }

  // Restrict inheritance into the delegated command: sanitize the
  // environment to the env_keep whitelist and drop non-standard fds.
  if (control->env != nullptr) {
    for (auto it = control->env->begin(); it != control->env->end();) {
      bool keep = std::find(pol.delegation.env_keep.begin(), pol.delegation.env_keep.end(),
                            it->first) != pol.delegation.env_keep.end();
      it = keep ? std::next(it) : control->env->erase(it);
    }
  }
  control->close_non_std_fds = true;

  ++stats_.exec_transitions;
  kernel_->Audit(StrFormat("protego: exec '%s' as %s (uid %u -> %u)", command_line.c_str(),
                     target->name.c_str(), task.cred.ruid, pending.target_uid));
  return HookVerdict::kAllow;
}

// --- File delegations and reauthentication-gated reads (§4.4/§4.6) -------------------

HookVerdict ProtegoLsm::InodePermission(Task& task, const std::string& path, const Inode& inode,
                                        int may, bool* cacheable) {
  (void)inode;
  PolicyRef pol_ref = policy();
  const Policy& pol = *pol_ref;
  // Per-binary file delegations first (also how the trusted authentication
  // utility and monitoring daemon read shadow files without recursion).
  bool reauth_gated = false;
  if (compiled_engine_enabled()) {
    const std::vector<CompiledDelegation>* delegations =
        pol.engine.files.FindDelegations(task.exe_path);
    if (delegations != nullptr) {
      for (const CompiledDelegation& d : *delegations) {
        if (d.path.Matches(path) && (may & ~d.allow_may) == 0) {
          ++stats_.file_delegations;
          return HookVerdict::kAllow;
        }
      }
    }
    reauth_gated = (may & kMayRead) != 0 && pol.engine.files.ReauthGated(path);
  } else {
    for (const FileDelegation& d : pol.delegation.file_delegations) {
      if (d.binary == task.exe_path && GlobMatch(d.path_glob, path) &&
          (may & ~d.allow_may) == 0) {
        ++stats_.file_delegations;
        return HookVerdict::kAllow;
      }
    }
    if ((may & kMayRead) != 0) {
      for (const std::string& glob : pol.delegation.reauth_read_globs) {
        if (GlobMatch(glob, path)) {
          reauth_gated = true;
          break;
        }
      }
    }
  }
  if (reauth_gated) {
    // The verdict hinges on authentication recency (and a possible password
    // exchange), which a cached answer would silently extend forever.
    *cacheable = false;
    ++stats_.reauth_reads;
    // Paper §4.6: the reauthentication challenge is for the LOGGED-IN user
    // — the invoker proves they are still at the keyboard. Prompting for
    // the file owner's password would demand root's password of everyone.
    if (EnsureAuthenticated(pol, task, task.cred.ruid)) {
      return HookVerdict::kDefault;  // recency satisfied; DAC still applies
    }
    kernel_->Audit(StrFormat("protego: read of %s denied: reauthentication failed (uid=%u)",
                       path.c_str(), task.cred.ruid));
    return HookVerdict::kDeny;
  }
  return HookVerdict::kDefault;
}

// --- pppd ioctls: routes and modem options (§4.1.2) -----------------------------------

HookVerdict ProtegoLsm::FileIoctl(const Task& task, const IoctlRequest& req) {
  PolicyRef pol_ref = policy();
  const Policy& pol = *pol_ref;
  if (req.target == "socket") {
    switch (req.request) {
      case kSiocAddRt: {
        if (kernel_->Capable(task, Capability::kNetAdmin)) {
          return HookVerdict::kDefault;
        }
        if (!pol.ppp_options.user_routes) {
          return HookVerdict::kDefault;  // legacy EPERM
        }
        auto route = ParseRouteSpec(req.arg);
        if (!route.ok()) {
          return HookVerdict::kDefault;
        }
        if (kernel_->net().routes().Conflicts(route.value())) {
          ++stats_.route_denied;
          kernel_->Audit(StrFormat("protego: route %s denied: conflicts with existing route (uid=%u)",
                             route.value().ToString().c_str(), task.cred.ruid));
          return HookVerdict::kDeny;
        }
        ++stats_.route_allowed;
        return HookVerdict::kAllow;
      }
      case kSiocDelRt: {
        if (kernel_->Capable(task, Capability::kNetAdmin)) {
          return HookVerdict::kDefault;
        }
        auto fields = SplitWhitespace(req.arg);
        if (fields.empty()) {
          return HookVerdict::kDefault;
        }
        auto dst = ParseDstSpec(fields[0]);
        if (!dst.ok()) {
          return HookVerdict::kDefault;
        }
        // A user may remove only routes she added.
        for (const RouteEntry& e : kernel_->net().routes().entries()) {
          if (e.dst == dst.value().first && e.prefix_len == dst.value().second &&
              e.added_by == task.cred.ruid) {
            return HookVerdict::kAllow;
          }
        }
        return HookVerdict::kDefault;
      }
      default:
        return HookVerdict::kDefault;
    }
  }

  if (req.target == "/dev/ppp") {
    if (kernel_->Capable(task, Capability::kNetAdmin)) {
      return HookVerdict::kDefault;
    }
    if (!pol.ppp_options.user_dialout) {
      return HookVerdict::kDefault;  // legacy EPERM in the driver
    }
    // Fine-grained option/in-use checks happen in the ppp driver, which
    // receives this verdict (see sim/devices.cc).
    return HookVerdict::kAllow;
  }

  // dm-crypt control and anything else: Protego's approach for dmcrypt is
  // the /sys interface, not relaxing the privileged ioctl (§4, Table 4).
  return HookVerdict::kDefault;
}

}  // namespace protego
