#include "src/protego/protego_lsm.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/kernel/kernel.h"
#include "src/net/routing.h"

namespace protego {

namespace {

// Mount options a user may add beyond what the whitelist entry grants;
// each strictly reduces privilege.
const char* kSafeExtraMountOptions[] = {"ro", "nosuid", "nodev", "noexec"};

bool IsSafeExtraOption(const std::string& opt) {
  for (const char* safe : kSafeExtraMountOptions) {
    if (opt == safe) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<Unit> ProtegoLsm::RecompilePolicies() {
  // Compile into a fresh engine so a failure part-way through (an injected
  // kPolicyCompile fault standing in for OOM during index construction)
  // leaves the live engine_ untouched. Two fault evaluation points — before
  // any index is built and after half of them — so the sweep can prove that
  // a fault at either boundary rolls back identically.
  FaultRegistry* faults = kernel_ != nullptr ? &kernel_->faults() : nullptr;
  if (faults != nullptr && faults->any_enabled()) {
    RETURN_IF_ERROR(faults->Check(FaultSite::kPolicyCompile, "policy compile (start)"));
  }
  PolicyEngine fresh;
  fresh.bind.Build(bind_table_);
  fresh.mount.Build(mount_whitelist_);
  if (faults != nullptr && faults->any_enabled()) {
    RETURN_IF_ERROR(faults->Check(FaultSite::kPolicyCompile, "policy compile (mid-swap)"));
  }
  fresh.files.Build(delegation_);
  fresh.sudoers.Build(delegation_, user_db_);
  engine_ = std::move(fresh);
  // Any swap invalidates every cached verdict, keeping parse-validate-swap
  // atomic from the hooks' point of view. Only reached on success: a failed
  // swap must leave cached verdicts valid (they still match engine_).
  BumpPolicyGeneration();
  return OkUnit();
}

Result<Unit> ProtegoLsm::SetMountPolicy(std::vector<FstabEntry> whitelist) {
  std::vector<FstabEntry> prev = std::move(mount_whitelist_);
  mount_whitelist_ = std::move(whitelist);
  Result<Unit> compiled = RecompilePolicies();
  if (!compiled.ok()) {
    mount_whitelist_ = std::move(prev);
  }
  return compiled;
}

Result<Unit> ProtegoLsm::SetBindTable(std::vector<BindConfEntry> table) {
  std::vector<BindConfEntry> prev = std::move(bind_table_);
  bind_table_ = std::move(table);
  Result<Unit> compiled = RecompilePolicies();
  if (!compiled.ok()) {
    bind_table_ = std::move(prev);
  }
  return compiled;
}

Result<Unit> ProtegoLsm::SetDelegation(SudoersPolicy policy) {
  SudoersPolicy prev = std::move(delegation_);
  delegation_ = std::move(policy);
  Result<Unit> compiled = RecompilePolicies();
  if (!compiled.ok()) {
    delegation_ = std::move(prev);
  }
  return compiled;
}

Result<Unit> ProtegoLsm::SetUserDb(UserDb db) {
  UserDb prev = std::move(user_db_);
  user_db_ = std::move(db);
  Result<Unit> compiled = RecompilePolicies();
  if (!compiled.ok()) {
    user_db_ = std::move(prev);
  }
  return compiled;
}

Result<Unit> ProtegoLsm::SetPppOptions(PppOptions options) {
  PppOptions prev = std::move(ppp_options_);
  ppp_options_ = std::move(options);
  Result<Unit> compiled = RecompilePolicies();
  if (!compiled.ok()) {
    ppp_options_ = std::move(prev);
  }
  return compiled;
}

// --- Mount (§4.2) ---------------------------------------------------------------

bool ProtegoLsm::MountEntryGrants(const FstabEntry& entry, bool glob_mountpoint,
                                  const Task& task, const MountRequest& req,
                                  bool* cacheable) const {
  // Every requested option must be granted by the entry or be a
  // privilege-reducing extra.
  for (const std::string& opt : req.options) {
    if (!entry.HasOption(opt) && !IsSafeExtraOption(opt)) {
      return false;
    }
  }
  // Glob entries ("fuse /home/*/mnt fuse user") grant per-user
  // mountpoints: the actual directory must belong to the requester, or
  // anyone could graft a filesystem into someone else's home. Consulting
  // live VFS ownership makes the verdict uncacheable (a chown must be able
  // to change the answer).
  if (glob_mountpoint) {
    *cacheable = false;
    auto target = kernel_->vfs().Resolve(req.mountpoint);
    if (!target.ok() || target.value()->inode().uid != task.cred.ruid) {
      return false;
    }
  }
  return true;
}

HookVerdict ProtegoLsm::SbMount(const Task& task, const MountRequest& req, bool* cacheable) {
  if (kernel_->Capable(task, Capability::kSysAdmin)) {
    return HookVerdict::kDefault;  // administrator path is unchanged
  }
  bool granted = false;
  if (compiled_enabled_) {
    engine_.mount.ForEachMatch(req.source, req.mountpoint, req.fstype,
                               [&](const CompiledFstabRule& rule) {
                                 granted = MountEntryGrants(rule.entry, rule.glob_mountpoint,
                                                            task, req, cacheable);
                                 return granted;
                               });
  } else {
    for (const FstabEntry& entry : mount_whitelist_) {
      // Policy entries may use globs (e.g. "fuse /home/*/mnt fuse user");
      // literal fstab entries match exactly.
      if (!entry.UserMountable() || !GlobMatch(entry.device, req.source) ||
          !GlobMatch(entry.mountpoint, req.mountpoint) || !GlobMatch(entry.fstype, req.fstype)) {
        continue;
      }
      bool glob_mountpoint = entry.mountpoint.find('*') != std::string::npos;
      if (MountEntryGrants(entry, glob_mountpoint, task, req, cacheable)) {
        granted = true;
        break;
      }
    }
  }
  if (granted) {
    ++stats_.mount_allowed;
    kernel_->Audit(StrFormat("protego: user mount %s on %s allowed (uid=%u)", req.source.c_str(),
                       req.mountpoint.c_str(), task.cred.ruid));
    return HookVerdict::kAllow;
  }
  ++stats_.mount_denied;
  return HookVerdict::kDefault;  // falls through to the CAP_SYS_ADMIN refusal
}

HookVerdict ProtegoLsm::SbUmount(const Task& task, const std::string& mountpoint) {
  if (kernel_->Capable(task, Capability::kSysAdmin)) {
    return HookVerdict::kDefault;
  }
  const MountEntry* mount = kernel_->vfs().FindMount(mountpoint);
  if (mount == nullptr) {
    return HookVerdict::kDefault;
  }
  // May THIS user unmount? "users" entries let anyone; "user" entries only
  // the task that mounted (live mount-table state — never cached).
  bool granted = false;
  if (compiled_enabled_) {
    engine_.mount.ForEachMountpointMatch(mountpoint, [&](const CompiledFstabRule& rule) {
      granted = rule.any_user_may_unmount || mount->mounter == task.cred.ruid;
      return granted;
    });
  } else {
    for (const FstabEntry& entry : mount_whitelist_) {
      if (!entry.UserMountable() || !GlobMatch(entry.mountpoint, mountpoint)) {
        continue;
      }
      if (entry.AnyUserMayUnmount() || mount->mounter == task.cred.ruid) {
        granted = true;
        break;
      }
    }
  }
  if (granted) {
    ++stats_.umount_allowed;
    return HookVerdict::kAllow;
  }
  ++stats_.umount_denied;
  return HookVerdict::kDefault;
}

// --- Raw sockets (§4.1.1) ---------------------------------------------------------

HookVerdict ProtegoLsm::SocketCreate(const Task& task, const SocketRequest& req) {
  (void)task;
  if (req.type == kSockRaw || req.family == kAfPacket) {
    // Any user may create a raw or packet socket; what they can SEND is
    // constrained by the default netfilter rules (see default_rules.cc).
    ++stats_.raw_sockets_allowed;
    return HookVerdict::kAllow;
  }
  return HookVerdict::kDefault;
}

// --- Bind (§4.1.3) -----------------------------------------------------------------

HookVerdict ProtegoLsm::SocketBind(const Task& task, const BindRequest& req, bool* cacheable) {
  (void)cacheable;  // pure function of (policy, request, creds): cacheable
  if (req.netns != 0) {
    // A port inside a sandbox namespace is not the system's well-known
    // port; allocations do not apply there.
    return HookVerdict::kDefault;
  }
  if (req.port >= 1024) {
    return HookVerdict::kDefault;
  }
  // The port may carry several (binary, uid) allocations; EVERY entry for
  // the port must be considered before denying — denying at the first
  // non-matching entry would make later allocations of the port dead policy.
  bool allocated = false;
  if (compiled_enabled_) {
    const std::vector<BindConfEntry>* allocations = engine_.bind.Find(req.port);
    if (allocations != nullptr) {
      allocated = true;
      for (const BindConfEntry& entry : *allocations) {
        if (entry.binary == req.binary_path && entry.uid == task.cred.euid) {
          ++stats_.bind_allowed;
          return HookVerdict::kAllow;
        }
      }
    }
  } else {
    for (const BindConfEntry& entry : bind_table_) {
      if (entry.port != req.port) {
        continue;
      }
      allocated = true;
      if (entry.binary == req.binary_path && entry.uid == task.cred.euid) {
        ++stats_.bind_allowed;
        return HookVerdict::kAllow;
      }
    }
  }
  if (allocated) {
    // The port is allocated and this task is none of its instances: ONLY
    // the configured (binary, uid) pairs may bind it — root privilege does
    // not override an allocation, which is what stops a compromised web
    // server from becoming a mail server.
    ++stats_.bind_denied;
    kernel_->Audit(StrFormat("protego: bind(%u) denied: port allocated, requested by %s uid=%u",
                       req.port, req.binary_path.c_str(), task.cred.euid));
    return HookVerdict::kDeny;
  }
  return HookVerdict::kDefault;  // unallocated port: legacy CAP_NET_BIND_SERVICE rule
}

// --- setuid/setgid delegation (§4.3) -------------------------------------------------

bool ProtegoLsm::RuleSubjectMatches(const SudoRule& rule, const std::string& user_name) const {
  if (rule.user == "ALL" || rule.user == user_name) {
    return true;
  }
  if (!rule.user.empty() && rule.user[0] == '%') {
    const GroupEntry* group = user_db_.FindGroup(rule.user.substr(1));
    if (group != nullptr) {
      return std::find(group->members.begin(), group->members.end(), user_name) !=
             group->members.end();
    }
  }
  return false;
}

std::vector<const SudoRule*> ProtegoLsm::MatchingRules(Uid invoking_uid,
                                                       const std::string& target) const {
  std::vector<const SudoRule*> matches;
  const PasswdEntry* invoker = user_db_.FindUid(invoking_uid);
  if (invoker == nullptr) {
    return matches;
  }
  if (compiled_enabled_) {
    // The index pre-resolved subject matching (exact names, %group
    // membership, ALL) at build time; only runas filtering remains.
    for (size_t i : engine_.sudoers.RulesForUser(invoker->name)) {
      const SudoRule& rule = delegation_.rules[i];
      if (rule.RunasMatches(target)) {
        matches.push_back(&rule);
      }
    }
    return matches;
  }
  for (const SudoRule& rule : delegation_.rules) {
    if (RuleSubjectMatches(rule, invoker->name) && rule.RunasMatches(target)) {
      matches.push_back(&rule);
    }
  }
  return matches;
}

bool ProtegoLsm::RuleCommandMatches(const SudoRule* rule, const std::string& command_line) const {
  if (compiled_enabled_ && !delegation_.rules.empty() && rule >= delegation_.rules.data() &&
      rule < delegation_.rules.data() + delegation_.rules.size()) {
    return engine_.sudoers.CommandMatches(static_cast<size_t>(rule - delegation_.rules.data()),
                                          command_line);
  }
  return rule->CommandMatches(command_line);
}

bool ProtegoLsm::EnsureAuthenticated(Task& task, Uid account) const {
  uint64_t now = kernel_->clock().Now();
  if (task.RecentlyAuthenticated(account, now, delegation_.timestamp_timeout_sec)) {
    return true;
  }
  // The kernel launches the trusted authentication utility on the task's
  // terminal; success stamps task.auth_times.
  return kernel_->Authenticate(task, account);
}

HookVerdict ProtegoLsm::TaskFixSetuid(Task& task, const SetuidRequest& req,
                                      SetuidDisposition* disposition) {
  if (req.is_gid) {
    if (kernel_->Capable(task, Capability::kSetgid)) {
      return HookVerdict::kDefault;
    }
    if (req.target_gid == task.cred.rgid || req.target_gid == task.cred.sgid) {
      return HookVerdict::kDefault;  // always legal; legacy path handles it
    }
    const GroupEntry* group = user_db_.FindGid(req.target_gid);
    const PasswdEntry* user = user_db_.FindUid(task.cred.ruid);
    if (group == nullptr || user == nullptr) {
      return HookVerdict::kDefault;
    }
    // Listed members may join without a password (newgrp semantics).
    if (std::find(group->members.begin(), group->members.end(), user->name) !=
        group->members.end()) {
      ++stats_.setuid_allowed;
      return HookVerdict::kAllow;
    }
    // Password-protected groups: authenticate against the group password.
    bool password_protected =
        std::find(delegation_.password_groups.begin(), delegation_.password_groups.end(),
                  group->name) != delegation_.password_groups.end();
    if (password_protected && !group->password_hash.empty()) {
      if (EnsureAuthenticated(task, kGroupAuthBase + req.target_gid)) {
        ++stats_.setuid_allowed;
        return HookVerdict::kAllow;
      }
      ++stats_.setuid_denied;
      return HookVerdict::kDeny;
    }
    return HookVerdict::kDefault;
  }

  // uid case.
  if (kernel_->Capable(task, Capability::kSetuid)) {
    return HookVerdict::kDefault;  // privileged path unchanged
  }
  if (req.target_uid == task.cred.ruid || req.target_uid == task.cred.suid) {
    return HookVerdict::kDefault;  // legal under stock rules
  }
  const PasswdEntry* target = user_db_.FindUid(req.target_uid);
  if (target == nullptr) {
    return HookVerdict::kDefault;
  }
  std::vector<const SudoRule*> rules = MatchingRules(task.cred.ruid, target->name);
  if (rules.empty()) {
    return HookVerdict::kDefault;  // no delegation: legacy EPERM
  }

  std::vector<const SudoRule*> all_command_rules;
  bool restricted_rule_exists = false;
  for (const SudoRule* rule : rules) {
    bool is_all = false;
    for (const std::string& c : rule->commands) {
      if (c == "ALL") {
        is_all = true;
        break;
      }
    }
    if (is_all) {
      all_command_rules.push_back(rule);
    } else {
      restricted_rule_exists = true;
    }
  }

  if (restricted_rule_exists || all_command_rules.empty()) {
    // Command-restricted delegation exists: privilege must not change
    // before exec, so report success, record the pending transition, and
    // enforce (including any ALL rules) at execve, where the command is
    // known. This is the paper's setuid-on-exec mechanism.
    disposition->defer_to_exec = true;
    ++stats_.setuid_deferred;
    return HookVerdict::kAllow;
  }

  // Authentication requirement across the granting rules: NOPASSWD needs
  // nothing; TARGETPW rules accept the target's password (su); plain rules
  // accept the invoker's (sudo). When several rules grant, any candidate
  // password satisfies — ONE prompt, verified against the candidate set.
  bool authenticated = false;
  std::vector<Uid> candidates;
  for (const SudoRule* rule : all_command_rules) {
    if (rule->nopasswd) {
      authenticated = true;
      break;
    }
    Uid account = rule->targetpw ? req.target_uid : task.cred.ruid;
    if (std::find(candidates.begin(), candidates.end(), account) == candidates.end()) {
      candidates.push_back(account);
    }
  }
  if (!authenticated) {
    uint64_t now = kernel_->clock().Now();
    for (Uid account : candidates) {
      if (task.RecentlyAuthenticated(account, now, delegation_.timestamp_timeout_sec)) {
        authenticated = true;
        break;
      }
    }
  }
  if (!authenticated) {
    authenticated = kernel_->AuthenticateAny(task, candidates).has_value();
  }
  if (authenticated) {
    // Immediate full transition, including the target's primary group
    // (what stock su/login did with setgid while still root).
    disposition->has_gid = true;
    disposition->gid = target->gid;
    ++stats_.setuid_allowed;
    kernel_->Audit(StrFormat("protego: setuid %u -> %u allowed by delegation", task.cred.ruid,
                       req.target_uid));
    return HookVerdict::kAllow;
  }
  ++stats_.setuid_denied;
  kernel_->Audit(StrFormat("protego: setuid(%u) denied: authentication failed for uid=%u",
                     req.target_uid, task.cred.ruid));
  return HookVerdict::kDeny;
}

HookVerdict ProtegoLsm::BprmCheck(Task& task, const std::string& path, const Inode& inode,
                                  const std::vector<std::string>& argv, ExecControl* control) {
  (void)inode;
  if (!task.pending_setuid.active) {
    return HookVerdict::kDefault;
  }
  const PendingSetuid& pending = task.pending_setuid;

  if (pending.has_gid) {
    // Deferred setgid (password-protected group joins are immediate; this
    // path exists for symmetric gid delegation rules).
    control->cred->rgid = control->cred->egid = control->cred->sgid = control->cred->fsgid =
        pending.target_gid;
    ++stats_.exec_transitions;
    return HookVerdict::kAllow;
  }

  const PasswdEntry* target = user_db_.FindUid(pending.target_uid);
  if (target == nullptr) {
    ++stats_.exec_denied;
    return HookVerdict::kDeny;
  }
  std::string command_line = path;
  for (size_t i = 1; i < argv.size(); ++i) {
    command_line += " " + argv[i];
  }
  std::vector<const SudoRule*> rules = MatchingRules(task.cred.ruid, target->name);
  std::vector<const SudoRule*> granting;
  for (const SudoRule* rule : rules) {
    if (RuleCommandMatches(rule, command_line)) {
      granting.push_back(rule);
    }
  }
  if (granting.empty()) {
    ++stats_.exec_denied;
    kernel_->Audit(StrFormat("protego: exec '%s' as %s denied for uid=%u (no matching rule)",
                       command_line.c_str(), target->name.c_str(), task.cred.ruid));
    return HookVerdict::kDeny;
  }
  // Same one-prompt/any-candidate authentication as the immediate path.
  bool authenticated = false;
  std::vector<Uid> candidates;
  for (const SudoRule* rule : granting) {
    if (rule->nopasswd) {
      authenticated = true;
      break;
    }
    Uid account = rule->targetpw ? pending.target_uid : task.cred.ruid;
    if (std::find(candidates.begin(), candidates.end(), account) == candidates.end()) {
      candidates.push_back(account);
    }
  }
  if (!authenticated) {
    uint64_t now = kernel_->clock().Now();
    for (Uid account : candidates) {
      if (task.RecentlyAuthenticated(account, now, delegation_.timestamp_timeout_sec)) {
        authenticated = true;
        break;
      }
    }
  }
  if (!authenticated) {
    authenticated = kernel_->AuthenticateAny(task, candidates).has_value();
  }
  if (!authenticated) {
    ++stats_.exec_denied;
    return HookVerdict::kDeny;
  }

  // All checks passed: apply the full transition to the new image only.
  Cred& cred = *control->cred;
  cred.ruid = cred.euid = cred.suid = cred.fsuid = pending.target_uid;
  cred.rgid = cred.egid = cred.sgid = cred.fsgid = target->gid;
  cred.groups.clear();
  if (pending.target_uid == kRootUid) {
    cred.permitted = CapSet::All();
    cred.effective = CapSet::All();
  } else {
    cred.permitted.Clear();
    cred.effective.Clear();
  }

  // Restrict inheritance into the delegated command: sanitize the
  // environment to the env_keep whitelist and drop non-standard fds.
  if (control->env != nullptr) {
    for (auto it = control->env->begin(); it != control->env->end();) {
      bool keep = std::find(delegation_.env_keep.begin(), delegation_.env_keep.end(),
                            it->first) != delegation_.env_keep.end();
      it = keep ? std::next(it) : control->env->erase(it);
    }
  }
  control->close_non_std_fds = true;

  ++stats_.exec_transitions;
  kernel_->Audit(StrFormat("protego: exec '%s' as %s (uid %u -> %u)", command_line.c_str(),
                     target->name.c_str(), task.cred.ruid, pending.target_uid));
  return HookVerdict::kAllow;
}

// --- File delegations and reauthentication-gated reads (§4.4/§4.6) -------------------

HookVerdict ProtegoLsm::InodePermission(Task& task, const std::string& path, const Inode& inode,
                                        int may, bool* cacheable) {
  (void)inode;
  // Per-binary file delegations first (also how the trusted authentication
  // utility and monitoring daemon read shadow files without recursion).
  bool reauth_gated = false;
  if (compiled_enabled_) {
    const std::vector<CompiledDelegation>* delegations =
        engine_.files.FindDelegations(task.exe_path);
    if (delegations != nullptr) {
      for (const CompiledDelegation& d : *delegations) {
        if (d.path.Matches(path) && (may & ~d.allow_may) == 0) {
          ++stats_.file_delegations;
          return HookVerdict::kAllow;
        }
      }
    }
    reauth_gated = (may & kMayRead) != 0 && engine_.files.ReauthGated(path);
  } else {
    for (const FileDelegation& d : delegation_.file_delegations) {
      if (d.binary == task.exe_path && GlobMatch(d.path_glob, path) &&
          (may & ~d.allow_may) == 0) {
        ++stats_.file_delegations;
        return HookVerdict::kAllow;
      }
    }
    if ((may & kMayRead) != 0) {
      for (const std::string& glob : delegation_.reauth_read_globs) {
        if (GlobMatch(glob, path)) {
          reauth_gated = true;
          break;
        }
      }
    }
  }
  if (reauth_gated) {
    // The verdict hinges on authentication recency (and a possible password
    // exchange), which a cached answer would silently extend forever.
    *cacheable = false;
    ++stats_.reauth_reads;
    // Paper §4.6: the reauthentication challenge is for the LOGGED-IN user
    // — the invoker proves they are still at the keyboard. Prompting for
    // the file owner's password would demand root's password of everyone.
    if (EnsureAuthenticated(task, task.cred.ruid)) {
      return HookVerdict::kDefault;  // recency satisfied; DAC still applies
    }
    kernel_->Audit(StrFormat("protego: read of %s denied: reauthentication failed (uid=%u)",
                       path.c_str(), task.cred.ruid));
    return HookVerdict::kDeny;
  }
  return HookVerdict::kDefault;
}

// --- pppd ioctls: routes and modem options (§4.1.2) -----------------------------------

HookVerdict ProtegoLsm::FileIoctl(const Task& task, const IoctlRequest& req) {
  if (req.target == "socket") {
    switch (req.request) {
      case kSiocAddRt: {
        if (kernel_->Capable(task, Capability::kNetAdmin)) {
          return HookVerdict::kDefault;
        }
        if (!ppp_options_.user_routes) {
          return HookVerdict::kDefault;  // legacy EPERM
        }
        auto route = ParseRouteSpec(req.arg);
        if (!route.ok()) {
          return HookVerdict::kDefault;
        }
        if (kernel_->net().routes().Conflicts(route.value())) {
          ++stats_.route_denied;
          kernel_->Audit(StrFormat("protego: route %s denied: conflicts with existing route (uid=%u)",
                             route.value().ToString().c_str(), task.cred.ruid));
          return HookVerdict::kDeny;
        }
        ++stats_.route_allowed;
        return HookVerdict::kAllow;
      }
      case kSiocDelRt: {
        if (kernel_->Capable(task, Capability::kNetAdmin)) {
          return HookVerdict::kDefault;
        }
        auto fields = SplitWhitespace(req.arg);
        if (fields.empty()) {
          return HookVerdict::kDefault;
        }
        auto dst = ParseDstSpec(fields[0]);
        if (!dst.ok()) {
          return HookVerdict::kDefault;
        }
        // A user may remove only routes she added.
        for (const RouteEntry& e : kernel_->net().routes().entries()) {
          if (e.dst == dst.value().first && e.prefix_len == dst.value().second &&
              e.added_by == task.cred.ruid) {
            return HookVerdict::kAllow;
          }
        }
        return HookVerdict::kDefault;
      }
      default:
        return HookVerdict::kDefault;
    }
  }

  if (req.target == "/dev/ppp") {
    if (kernel_->Capable(task, Capability::kNetAdmin)) {
      return HookVerdict::kDefault;
    }
    if (!ppp_options_.user_dialout) {
      return HookVerdict::kDefault;  // legacy EPERM in the driver
    }
    // Fine-grained option/in-use checks happen in the ppp driver, which
    // receives this verdict (see sim/devices.cc).
    return HookVerdict::kAllow;
  }

  // dm-crypt control and anything else: Protego's approach for dmcrypt is
  // the /sys interface, not relaxing the privileged ioctl (§4, Table 4).
  return HookVerdict::kDefault;
}

}  // namespace protego
