#include "src/protego/dmcrypt.h"

#include "src/base/strings.h"
#include "src/kernel/kernel.h"

namespace protego {

namespace {
constexpr uint32_t kDmMajor = 10;
constexpr uint32_t kDmControlMinor = 236;
}  // namespace

const DmCryptVolume* DmCryptTable::Find(const std::string& name) const {
  for (const DmCryptVolume& v : volumes_) {
    if (v.name == name) {
      return &v;
    }
  }
  return nullptr;
}

Result<Unit> InstallDmCrypt(Kernel* kernel, std::shared_ptr<DmCryptTable> table) {
  Vfs& vfs = kernel->vfs();
  RETURN_IF_ERROR(vfs.EnsureDirs("/dev/mapper"));
  RETURN_IF_ERROR(vfs.CreateDevice("/dev/mapper/control", 0600, kRootUid, kRootGid,
                                   /*block=*/false, kDmMajor, kDmControlMinor));

  // Legacy interface: one ioctl returns device + key, so the whole thing is
  // root-only. A deprivileged dmcrypt-get-device cannot use it.
  kernel->RegisterIoctlHandler(
      kDmMajor, kDmControlMinor,
      [kernel, table](Task& task, uint32_t request, const std::string& arg,
                      HookVerdict verdict) -> Result<std::string> {
        if (request != kDmTableStatus) {
          return Error(Errno::kENOTTY);
        }
        if (verdict != HookVerdict::kAllow && !kernel->Capable(task, Capability::kSysAdmin)) {
          return Error(Errno::kEPERM, "DM_TABLE_STATUS requires CAP_SYS_ADMIN");
        }
        const DmCryptVolume* volume = table->Find(arg);
        if (volume == nullptr) {
          return Error(Errno::kENXIO, "no such dm volume: " + arg);
        }
        // The interface-design flaw, faithfully reproduced: public and
        // secret data come back in one blob.
        return StrFormat("device=%s key=%s", volume->underlying.c_str(),
                         volume->key_hex.c_str());
      });

  // Protego interface: /sys exposes only the public portion, world-readable.
  for (const DmCryptVolume& volume : table->volumes()) {
    std::string name = volume.name;
    SyntheticOps ops;
    ops.read = [table, name]() {
      const DmCryptVolume* v = table->Find(name);
      return v == nullptr ? std::string() : v->underlying + "\n";
    };
    RETURN_IF_ERROR(
        vfs.CreateSynthetic("/sys/block/" + name + "/slaves", 0444, std::move(ops)));
  }
  return OkUnit();
}

}  // namespace protego
