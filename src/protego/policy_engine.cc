#include "src/protego/policy_engine.h"

#include <algorithm>

#include "src/base/hash.h"
#include "src/base/strings.h"

namespace protego {

// --- BindIndex --------------------------------------------------------------------

void BindIndex::Build(const std::vector<BindConfEntry>& table) {
  by_port_.clear();
  for (const BindConfEntry& entry : table) {
    by_port_[entry.port].push_back(entry);
  }
}

const std::vector<BindConfEntry>* BindIndex::Find(uint16_t port) const {
  auto it = by_port_.find(port);
  return it == by_port_.end() ? nullptr : &it->second;
}

// --- MountIndex -------------------------------------------------------------------

uint64_t MountIndex::TripleKey(const std::string& device, const std::string& mountpoint,
                               const std::string& fstype) {
  // '\n' cannot appear in parsed fstab fields, so it is a safe separator.
  return Fnv1a(device + "\n" + mountpoint + "\n" + fstype);
}

void MountIndex::Build(const std::vector<FstabEntry>& whitelist) {
  rules_.clear();
  exact_.clear();
  glob_rules_.clear();
  exact_mountpoint_.clear();
  glob_mountpoint_rules_.clear();
  for (const FstabEntry& entry : whitelist) {
    if (!entry.UserMountable()) {
      continue;  // root-only entries never reach the hook's decision
    }
    CompiledFstabRule rule;
    rule.entry = entry;
    rule.device = CompiledGlob(entry.device);
    rule.mountpoint = CompiledGlob(entry.mountpoint);
    rule.fstype = CompiledGlob(entry.fstype);
    rule.any_user_may_unmount = entry.AnyUserMayUnmount();
    rule.glob_mountpoint = entry.mountpoint.find('*') != std::string::npos;
    size_t idx = rules_.size();
    rules_.push_back(std::move(rule));
    const CompiledFstabRule& stored = rules_[idx];
    if (stored.device.is_literal() && stored.mountpoint.is_literal() &&
        stored.fstype.is_literal()) {
      exact_[TripleKey(entry.device, entry.mountpoint, entry.fstype)].push_back(idx);
    } else {
      glob_rules_.push_back(idx);
    }
    if (stored.mountpoint.is_literal()) {
      exact_mountpoint_[entry.mountpoint].push_back(idx);
    } else {
      glob_mountpoint_rules_.push_back(idx);
    }
  }
}

// --- FileRuleIndex ----------------------------------------------------------------

void FileRuleIndex::Build(const SudoersPolicy& policy) {
  by_binary_.clear();
  reauth_.clear();
  for (const FileDelegation& d : policy.file_delegations) {
    by_binary_[d.binary].push_back(CompiledDelegation{CompiledGlob(d.path_glob), d.allow_may});
  }
  for (const std::string& glob : policy.reauth_read_globs) {
    reauth_.emplace_back(glob);
  }
}

const std::vector<CompiledDelegation>* FileRuleIndex::FindDelegations(
    const std::string& binary) const {
  auto it = by_binary_.find(binary);
  return it == by_binary_.end() ? nullptr : &it->second;
}

bool FileRuleIndex::ReauthGated(const std::string& path) const {
  for (const CompiledGlob& glob : reauth_) {
    if (glob.Matches(path)) {
      return true;
    }
  }
  return false;
}

// --- SudoersIndex -----------------------------------------------------------------

void SudoersIndex::Build(const SudoersPolicy& policy, const UserDb& db) {
  rules_.clear();
  by_user_.clear();
  all_subject_rules_.clear();
  for (size_t i = 0; i < policy.rules.size(); ++i) {
    const SudoRule& rule = policy.rules[i];
    CompiledRule compiled;
    for (const std::string& c : rule.commands) {
      if (c == "ALL") {
        compiled.all_commands = true;
      }
      CompiledCommand cc;
      cc.glob = CompiledGlob(c);
      if (!c.empty() && c.find('*') == std::string::npos) {
        cc.bare_prefix = c + " ";
      }
      compiled.commands.push_back(std::move(cc));
    }
    rules_.push_back(std::move(compiled));

    if (rule.user == "ALL") {
      all_subject_rules_.push_back(i);
    } else if (!rule.user.empty() && rule.user[0] == '%') {
      const GroupEntry* group = db.FindGroup(rule.user.substr(1));
      if (group != nullptr) {
        for (const std::string& member : group->members) {
          by_user_[member].push_back(i);
        }
      }
    } else {
      by_user_[rule.user].push_back(i);
    }
  }
}

std::vector<size_t> SudoersIndex::RulesForUser(const std::string& user_name) const {
  std::vector<size_t> merged;
  auto it = by_user_.find(user_name);
  if (it != by_user_.end()) {
    merged = it->second;
  }
  // A user can appear via several groups; both sources are ascending per
  // bucket but need merging and deduplication into one ordered list.
  merged.insert(merged.end(), all_subject_rules_.begin(), all_subject_rules_.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

bool SudoersIndex::CommandMatches(size_t rule_index, const std::string& command_line) const {
  const CompiledRule& rule = rules_[rule_index];
  if (rule.all_commands) {
    return true;
  }
  for (const CompiledCommand& cc : rule.commands) {
    if (cc.glob.Matches(command_line)) {
      return true;
    }
    if (!cc.bare_prefix.empty() && StartsWith(command_line, cc.bare_prefix)) {
      return true;
    }
  }
  return false;
}

}  // namespace protego
