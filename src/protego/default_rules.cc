#include "src/protego/default_rules.h"

namespace protego {

void InstallDefaultRawSocketRules(Netfilter* netfilter) {
  auto raw_rule = [](NfMatch match, NfVerdict verdict) {
    match.from_raw_socket = true;
    NfRule rule;
    rule.chain = NfChain::kOutput;
    rule.match = std::move(match);
    rule.verdict = verdict;
    rule.comment = kProtegoRawRuleTag;
    return rule;
  };

  // 1. Spoofed source ports are never acceptable.
  {
    NfMatch m;
    m.src_port_owned_by_other = true;
    netfilter->Append(raw_rule(std::move(m), NfVerdict::kDrop));
  }
  // 2. ICMP echo request/reply are the classic safe raw packets.
  {
    NfMatch m;
    m.l4_proto = kProtoIcmp;
    m.icmp_type = kIcmpEchoRequest;
    netfilter->Append(raw_rule(std::move(m), NfVerdict::kAccept));
  }
  {
    NfMatch m;
    m.l4_proto = kProtoIcmp;
    m.icmp_type = kIcmpEchoReply;
    netfilter->Append(raw_rule(std::move(m), NfVerdict::kAccept));
  }
  // 3. Traceroute's high-port UDP probes.
  {
    NfMatch m;
    m.l4_proto = kProtoUdp;
    m.dst_port_min = 33434;
    netfilter->Append(raw_rule(std::move(m), NfVerdict::kAccept));
  }
  // 4. ARP requests (arping).
  {
    NfMatch m;
    m.l4_proto = kProtoArp;
    netfilter->Append(raw_rule(std::move(m), NfVerdict::kAccept));
  }
  // 5. Everything else raw is unsafe by default.
  for (int proto : {kProtoTcp, kProtoUdp, kProtoIcmp}) {
    NfMatch m;
    m.l4_proto = proto;
    netfilter->Append(raw_rule(std::move(m), NfVerdict::kDrop));
  }
}

void RemoveDefaultRawSocketRules(Netfilter* netfilter) {
  netfilter->DeleteByComment(kProtegoRawRuleTag);
}

}  // namespace protego
