#include "src/protego/proc_iface.h"

#include "src/base/strings.h"
#include "src/config/passwd_db.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall.h"
#include "src/lsm/stack.h"
#include "src/protego/protego_lsm.h"

namespace protego {

namespace {

std::optional<int> LsmHookFromName(std::string_view name) {
  for (size_t i = 0; i < static_cast<size_t>(LsmHook::kCount); ++i) {
    if (name == LsmHookName(static_cast<LsmHook>(i))) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

}  // namespace

Result<std::vector<FaultDirective>> ParseFaultDirectives(std::string_view content) {
  std::vector<FaultDirective> directives;
  for (const std::string& raw_line : Split(content, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens[0] == "reset") {
      if (tokens.size() != 1) {
        return Error(Errno::kEINVAL, "fault_inject: reset takes no arguments");
      }
      FaultDirective d;
      d.kind = FaultDirective::Kind::kReset;
      directives.push_back(d);
      continue;
    }
    FaultDirective d;
    size_t first_kv = 0;
    if (tokens[0] == "off") {
      d.kind = FaultDirective::Kind::kOff;
      first_kv = 1;
    }
    bool have_site = false;
    bool have_error = false;
    for (size_t i = first_kv; i < tokens.size(); ++i) {
      const std::string& token = tokens[i];
      size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return Error(Errno::kEINVAL, "fault_inject token: " + token);
      }
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "site") {
        std::optional<FaultSite> site = FaultSiteFromName(value);
        if (!site) {
          return Error(Errno::kEINVAL, "fault_inject site: " + value);
        }
        d.site = *site;
        have_site = true;
      } else if (key == "error") {
        std::optional<Errno> e = ErrnoFromName(value);
        if (!e || *e == Errno::kOk) {
          return Error(Errno::kEINVAL, "fault_inject error: " + value);
        }
        d.config.error = *e;
        have_error = true;
      } else if (key == "prob") {
        std::vector<std::string> frac = Split(value, '/');
        std::optional<uint64_t> num = frac.size() == 2 ? ParseUint(frac[0]) : std::nullopt;
        std::optional<uint64_t> den = frac.size() == 2 ? ParseUint(frac[1]) : std::nullopt;
        if (!num || !den || *den == 0 || *num > *den) {
          return Error(Errno::kEINVAL, "fault_inject prob: " + value);
        }
        d.config.prob_num = *num;
        d.config.prob_den = *den;
      } else if (key == "interval") {
        std::optional<uint64_t> v = ParseUint(value);
        if (!v || *v == 0) {
          return Error(Errno::kEINVAL, "fault_inject interval: " + value);
        }
        d.config.interval = *v;
      } else if (key == "times") {
        std::optional<uint64_t> v = ParseUint(value);
        if (!v) {
          return Error(Errno::kEINVAL, "fault_inject times: " + value);
        }
        d.config.times = *v;
      } else if (key == "pid") {
        std::optional<uint64_t> v = ParseUint(value);
        if (!v) {
          return Error(Errno::kEINVAL, "fault_inject pid: " + value);
        }
        d.config.pid = static_cast<int>(*v);
      } else if (key == "syscall" || key == "sysno") {
        // By name ("open") or by number ("2") — Format() emits the numeric
        // form, so the read body must parse back.
        std::optional<int> nr;
        if (std::optional<Sysno> parsed = SysnoFromName(value)) {
          nr = static_cast<int>(*parsed);
        }
        if (!nr) {
          std::optional<uint64_t> v = ParseUint(value);
          if (!v) {
            return Error(Errno::kEINVAL, "fault_inject syscall: " + value);
          }
          nr = static_cast<int>(*v);
        }
        d.config.sysno = *nr;
      } else if (key == "hook") {
        std::optional<int> hook = LsmHookFromName(value);
        if (!hook) {
          std::optional<uint64_t> v = ParseUint(value);
          if (!v) {
            return Error(Errno::kEINVAL, "fault_inject hook: " + value);
          }
          hook = static_cast<int>(*v);
        }
        d.config.hook = *hook;
      } else if (key == "seed") {
        std::optional<uint64_t> v = ParseUint(value);
        if (!v) {
          return Error(Errno::kEINVAL, "fault_inject seed: " + value);
        }
        d.config.seed = *v;
      } else {
        return Error(Errno::kEINVAL, "fault_inject key: " + key);
      }
    }
    if (!have_site) {
      return Error(Errno::kEINVAL, "fault_inject: directive needs site=");
    }
    if (d.kind == FaultDirective::Kind::kConfigure) {
      if (!have_error) {
        return Error(Errno::kEINVAL, "fault_inject: directive needs error=");
      }
      d.config.enabled = true;
    }
    directives.push_back(d);
  }
  return directives;
}

std::string SerializeUserDbSections(const UserDb& db) {
  std::string out = "[passwd]\n";
  out += SerializePasswd(db.users());
  out += "[shadow]\n";
  out += SerializeShadow(db.shadows());
  out += "[group]\n";
  out += SerializeGroup(db.groups());
  return out;
}

Result<UserDb> ParseUserDbSections(std::string_view content) {
  std::string passwd_part, shadow_part, group_part;
  std::string* current = nullptr;
  for (const std::string& line : Split(content, '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed == "[passwd]") {
      current = &passwd_part;
    } else if (trimmed == "[shadow]") {
      current = &shadow_part;
    } else if (trimmed == "[group]") {
      current = &group_part;
    } else if (!trimmed.empty()) {
      if (current == nullptr) {
        return Error(Errno::kEINVAL, "userdb: content before section header");
      }
      current->append(trimmed);
      current->push_back('\n');
    }
  }
  ASSIGN_OR_RETURN(auto users, ParsePasswd(passwd_part));
  ASSIGN_OR_RETURN(auto shadows, ParseShadow(shadow_part));
  ASSIGN_OR_RETURN(auto groups, ParseGroup(group_part));
  return UserDb(std::move(users), std::move(shadows), std::move(groups));
}

Result<TraceFilter> ParseTraceQuery(std::string_view query) {
  if (query.empty() || query[0] != '?') {
    return Error(Errno::kEINVAL, "trace filter: expected leading '?'");
  }
  TraceFilter filter;
  std::string_view rest = query.substr(1);
  if (rest.empty()) {
    return filter;  // "?" resets to match-everything
  }
  for (const std::string& pair : Split(rest, '&')) {
    if (pair == "since") {
      filter.since = 0;  // bare "since" resets the cursor
      continue;
    }
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Error(Errno::kEINVAL, "trace filter token: " + pair);
    }
    std::string key = pair.substr(0, eq);
    std::string value = pair.substr(eq + 1);
    if (key == "pid") {
      auto v = ParseUint(value);
      if (!v) {
        return Error(Errno::kEINVAL, "trace filter pid: " + value);
      }
      filter.pid = static_cast<int>(*v);
    } else if (key == "syscall") {
      if (value.empty()) {
        return Error(Errno::kEINVAL, "trace filter syscall: empty");
      }
      filter.syscall = value;
    } else if (key == "span") {
      auto v = ParseUint(value);
      if (!v || *v == 0) {
        return Error(Errno::kEINVAL, "trace filter span: " + value);
      }
      filter.span = *v;
    } else if (key == "since") {
      auto v = ParseUint(value);
      if (!v) {
        return Error(Errno::kEINVAL, "trace filter since: " + value);
      }
      filter.since = *v;
    } else {
      return Error(Errno::kEINVAL, "trace filter key: " + key);
    }
  }
  return filter;
}

namespace {

// "syscall" | "lsm_hook" | ... -> TracepointId, for the trace file's
// sample= command.
std::optional<TracepointId> TracepointFromName(std::string_view name) {
  for (size_t i = 0; i < kTracepointCount; ++i) {
    TracepointId tp = static_cast<TracepointId>(i);
    if (name == TracepointName(tp)) {
      return tp;
    }
  }
  return std::nullopt;
}

// Parses the value of a `syscalls=` / `timed=` trace command:
// "all" | "none" | comma-separated syscall names. EINVAL names the first
// unknown syscall; nothing is applied until the whole list validates.
struct SyscallSetSpec {
  bool all = false;             // "all"
  std::vector<Sysno> members;   // explicit list ("none" = empty)
};

Result<SyscallSetSpec> ParseSyscallSet(const char* what, std::string_view value) {
  SyscallSetSpec spec;
  if (value == "all") {
    spec.all = true;
    return spec;
  }
  if (value == "none") {
    return spec;
  }
  if (value.empty()) {
    return Error(Errno::kEINVAL, StrFormat("trace %s: expected all|none|name,...", what));
  }
  for (const std::string& name : Split(value, ',')) {
    bool found = false;
    for (Sysno nr : AllSysnos()) {
      if (name == SysnoName(nr)) {
        spec.members.push_back(nr);
        found = true;
        break;
      }
    }
    if (!found) {
      return Error(Errno::kEINVAL, StrFormat("trace %s: unknown syscall: %s", what,
                                             name.c_str()));
    }
  }
  return spec;
}

}  // namespace

Result<Unit> InstallProtegoProcFiles(Kernel* kernel, ProtegoLsm* lsm) {
  Vfs& vfs = kernel->vfs();

  SyntheticOps mounts_ops;
  mounts_ops.read = [lsm]() { return SerializeFstab(lsm->mount_policy()); };
  mounts_ops.write = [lsm](std::string_view data) -> Result<Unit> {
    ASSIGN_OR_RETURN(auto entries, ParseFstab(data));
    return lsm->SetMountPolicy(std::move(entries));
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/mounts", 0600, std::move(mounts_ops)));

  SyntheticOps ports_ops;
  ports_ops.read = [lsm]() { return SerializeBindConf(lsm->bind_table()); };
  ports_ops.write = [lsm](std::string_view data) -> Result<Unit> {
    ASSIGN_OR_RETURN(auto entries, ParseBindConf(data));
    return lsm->SetBindTable(std::move(entries));
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/ports", 0600, std::move(ports_ops)));

  SyntheticOps sudoers_ops;
  sudoers_ops.read = [lsm]() { return SerializeSudoers(lsm->delegation()); };
  sudoers_ops.write = [lsm](std::string_view data) -> Result<Unit> {
    ASSIGN_OR_RETURN(auto policy, ParseSudoers(data));
    return lsm->SetDelegation(std::move(policy));
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/sudoers", 0600, std::move(sudoers_ops)));

  SyntheticOps ppp_ops;
  ppp_ops.read = [lsm]() { return SerializePppOptions(lsm->ppp_options()); };
  ppp_ops.write = [lsm](std::string_view data) -> Result<Unit> {
    ASSIGN_OR_RETURN(auto options, ParsePppOptions(data));
    return lsm->SetPppOptions(std::move(options));
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/ppp", 0600, std::move(ppp_ops)));

  SyntheticOps userdb_ops;
  userdb_ops.read = [lsm]() { return SerializeUserDbSections(lsm->user_db()); };
  userdb_ops.write = [lsm](std::string_view data) -> Result<Unit> {
    ASSIGN_OR_RETURN(UserDb db, ParseUserDbSections(data));
    return lsm->SetUserDb(std::move(db));
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/userdb", 0600, std::move(userdb_ops)));

  SyntheticOps status_ops;
  status_ops.read = [kernel, lsm]() {
    const ProtegoStats& s = lsm->stats();
    std::string out;
    out += StrFormat("mount_allowed %llu\n", (unsigned long long)s.mount_allowed);
    out += StrFormat("mount_denied %llu\n", (unsigned long long)s.mount_denied);
    out += StrFormat("umount_allowed %llu\n", (unsigned long long)s.umount_allowed);
    out += StrFormat("umount_denied %llu\n", (unsigned long long)s.umount_denied);
    out += StrFormat("bind_allowed %llu\n", (unsigned long long)s.bind_allowed);
    out += StrFormat("bind_denied %llu\n", (unsigned long long)s.bind_denied);
    out += StrFormat("setuid_allowed %llu\n", (unsigned long long)s.setuid_allowed);
    out += StrFormat("setuid_deferred %llu\n", (unsigned long long)s.setuid_deferred);
    out += StrFormat("setuid_denied %llu\n", (unsigned long long)s.setuid_denied);
    out += StrFormat("exec_transitions %llu\n", (unsigned long long)s.exec_transitions);
    out += StrFormat("exec_denied %llu\n", (unsigned long long)s.exec_denied);
    out += StrFormat("raw_sockets_allowed %llu\n", (unsigned long long)s.raw_sockets_allowed);
    out += StrFormat("route_allowed %llu\n", (unsigned long long)s.route_allowed);
    out += StrFormat("route_denied %llu\n", (unsigned long long)s.route_denied);
    out += StrFormat("file_delegations %llu\n", (unsigned long long)s.file_delegations);
    out += StrFormat("reauth_reads %llu\n", (unsigned long long)s.reauth_reads);
    out += StrFormat("audit_dropped %llu\n", (unsigned long long)kernel->audit_dropped());
    // Policy-engine state: the generation every policy swap bumps, and the
    // stack-level decision-cache counters it invalidates.
    out += StrFormat("policy_generation %llu\n",
                     (unsigned long long)kernel->lsm().policy_generation());
    out += StrFormat("decision_cache_hits %llu\n",
                     (unsigned long long)kernel->lsm().decision_cache_hits());
    out += StrFormat("decision_cache_misses %llu\n",
                     (unsigned long long)kernel->lsm().decision_cache_misses());
    // Fail-closed accounting: dispatches denied / packets dropped because a
    // fault was injected at the decision point (ISSUE: degrade gracefully).
    out += StrFormat("lsm_fail_closed_denials %llu\n",
                     (unsigned long long)kernel->lsm().fail_closed_denials());
    out += StrFormat("netfilter_fail_closed_drops %llu\n",
                     (unsigned long long)kernel->net().netfilter().fail_closed_drops());
    out += StrFormat("fault_injections %llu\n",
                     (unsigned long long)kernel->faults().total_injected());
    return out;
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/status", 0444, std::move(status_ops)));

  // Audit trail: the kernel's security-decision ring buffer, root-only.
  SyntheticOps audit_ops;
  audit_ops.read = [kernel]() {
    std::string out;
    for (const std::string& record : kernel->audit_log()) {
      out += record;
      out += "\n";
    }
    return out;
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/audit", 0400, std::move(audit_ops)));

  // Per-syscall counters from the unified entry path, world-readable like
  // /proc/stat.
  SyntheticOps stats_ops;
  stats_ops.read = [kernel]() { return kernel->syscalls().FormatStats(); };
  RETURN_IF_ERROR(
      vfs.CreateSynthetic("/proc/protego/syscall_stats", 0444, std::move(stats_ops)));

  // Recent-event trace ring. Root-only (it exposes other tasks' activity);
  // writing "clear" drops the ring, "on"/"off" toggle tracing, and a query
  // string ("?pid=12&syscall=mount&span=3&since=100", any subset) sets the
  // read-side filter applied by subsequent reads. Writing "?" alone clears
  // the filter; a bare "since" inside a query resets just the cursor.
  // Control commands: "sample=<point|all>:<rate>" sets 1-in-N head sampling,
  // "seed=N" reseeds the sampling streams (replayable, like fault_inject),
  // and "syscalls=..." / "timed=..." (all|none|name,name) set the
  // per-syscall trace/timing dispatch sets.
  SyntheticOps trace_ops;
  trace_ops.read = [kernel]() { return kernel->syscalls().FormatTrace(); };
  trace_ops.write = [kernel](std::string_view data) -> Result<Unit> {
    std::string_view cmd = Trim(data);
    if (cmd == "clear") {
      kernel->syscalls().ClearTrace();
    } else if (cmd == "on") {
      kernel->syscalls().set_trace_enabled(true);
    } else if (cmd == "off") {
      kernel->syscalls().set_trace_enabled(false);
    } else if (!cmd.empty() && cmd[0] == '?') {
      ASSIGN_OR_RETURN(TraceFilter filter, ParseTraceQuery(cmd));
      kernel->tracer().set_read_filter(std::move(filter));
    } else if (StartsWith(cmd, "sample=")) {
      // sample=<point>:<rate> or sample=all:<rate> — head-sampling rate
      // (1-in-N; 0/1 = keep everything).
      std::string_view spec = cmd.substr(7);
      size_t colon = spec.find(':');
      if (colon == std::string_view::npos) {
        return Error(Errno::kEINVAL, "trace sample: expected <point|all>:<rate>");
      }
      std::string_view point = spec.substr(0, colon);
      auto rate = ParseUint(spec.substr(colon + 1));
      if (!rate || *rate > UINT32_MAX) {
        return Error(Errno::kEINVAL,
                     "trace sample rate: " + std::string(spec.substr(colon + 1)));
      }
      if (point == "all") {
        kernel->tracer().set_all_sample_rates(static_cast<uint32_t>(*rate));
      } else {
        auto tp = TracepointFromName(point);
        if (!tp) {
          return Error(Errno::kEINVAL, "trace sample point: " + std::string(point));
        }
        kernel->tracer().set_sample_rate(*tp, static_cast<uint32_t>(*rate));
      }
    } else if (StartsWith(cmd, "seed=")) {
      auto seed = ParseUint(cmd.substr(5));
      if (!seed) {
        return Error(Errno::kEINVAL, "trace seed: " + std::string(cmd.substr(5)));
      }
      kernel->tracer().set_sample_seed(*seed);
    } else if (StartsWith(cmd, "syscalls=")) {
      // Per-syscall trace dispatch set: which syscalls may open spans and
      // emit kSyscall roots. Validated in full before anything is applied.
      ASSIGN_OR_RETURN(SyscallSetSpec spec, ParseSyscallSet("syscalls", cmd.substr(9)));
      SyscallGate& gate = kernel->syscalls();
      gate.SetAllSyscallsTraced(spec.all);
      for (Sysno nr : spec.members) {
        gate.SetSyscallTraced(nr, true);
      }
    } else if (StartsWith(cmd, "timed=")) {
      // Per-syscall wall-clock timing set (only consulted when wallclock
      // timing is enabled).
      ASSIGN_OR_RETURN(SyscallSetSpec spec, ParseSyscallSet("timed", cmd.substr(6)));
      SyscallGate& gate = kernel->syscalls();
      gate.SetAllSyscallsTimed(spec.all);
      for (Sysno nr : spec.members) {
        gate.SetSyscallTimed(nr, true);
      }
    } else {
      return Error(Errno::kEINVAL,
                   "trace: expected clear|on|off|sample=|seed=|syscalls=|timed=|?k=v&...");
    }
    return OkUnit();
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/trace", 0600, std::move(trace_ops)));

  // Per-layer latency attribution: a folded-stack profile of where decision
  // time is spent (gate / seccomp / lsm / decision_cache / dac / vfs /
  // netfilter / fault_registry / observer). Off by default; "on" arms the
  // profiler, "clear" zeroes accumulated frames.
  SyntheticOps profile_ops;
  profile_ops.read = [kernel]() { return kernel->profiler().FormatProfile(); };
  profile_ops.write = [kernel](std::string_view data) -> Result<Unit> {
    std::string_view cmd = Trim(data);
    if (cmd == "on") {
      kernel->profiler().set_enabled(true);
    } else if (cmd == "off") {
      kernel->profiler().set_enabled(false);
    } else if (cmd == "clear") {
      kernel->profiler().Reset();
    } else {
      return Error(Errno::kEINVAL, "profile: expected on|off|clear");
    }
    return OkUnit();
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/profile", 0600, std::move(profile_ops)));

  // Fault-injection control file, root-only. Reads render the enabled
  // sites as re-writable directive lines (the recorded {seed, site-config}
  // replay tuple) plus counter comments; writes are parsed and validated in
  // full before any directive is applied, so a rejected write leaves the
  // registry byte-identical.
  SyntheticOps fault_ops;
  fault_ops.read = [kernel]() { return kernel->faults().Format(); };
  fault_ops.write = [kernel](std::string_view data) -> Result<Unit> {
    ASSIGN_OR_RETURN(std::vector<FaultDirective> directives, ParseFaultDirectives(data));
    FaultRegistry& faults = kernel->faults();
    for (const FaultDirective& d : directives) {
      switch (d.kind) {
        case FaultDirective::Kind::kReset:
          faults.Reset();
          break;
        case FaultDirective::Kind::kOff:
          faults.Disable(d.site);
          break;
        case FaultDirective::Kind::kConfigure:
          // Cannot fail: ParseFaultDirectives already enforced Configure's
          // constraints, keeping the apply loop failure-free (atomic).
          RETURN_IF_ERROR(faults.Configure(d.site, d.config));
          break;
      }
    }
    return OkUnit();
  };
  RETURN_IF_ERROR(
      vfs.CreateSynthetic("/proc/protego/fault_inject", 0600, std::move(fault_ops)));

  // Per-task seccomp filters, root-only: one section per live task that
  // carries a filter, rendered in the same installable text form
  // SeccompFilter::ParseSpec accepts. Writing "?pid=N" narrows subsequent
  // reads to that pid ("?" clears the filter); anything else is EINVAL.
  auto seccomp_read_pid = std::make_shared<std::atomic<int>>(-1);
  SyntheticOps seccomp_ops;
  seccomp_ops.read = [kernel, seccomp_read_pid]() {
    const int want = seccomp_read_pid->load(std::memory_order_relaxed);
    std::string out;
    kernel->ForEachTask([&](const Task& task) {
      if (task.seccomp == nullptr || (want >= 0 && task.pid != want)) {
        return;
      }
      out += StrFormat("# pid=%d comm=%s exe=%s\n", task.pid, task.comm.c_str(),
                       task.exe_path.c_str());
      out += task.seccomp->Render();
    });
    return out;
  };
  seccomp_ops.write = [seccomp_read_pid](std::string_view data) -> Result<Unit> {
    std::string_view cmd = Trim(data);
    if (cmd == "?") {
      seccomp_read_pid->store(-1, std::memory_order_relaxed);
      return OkUnit();
    }
    if (StartsWith(cmd, "?pid=")) {
      std::string_view value = cmd.substr(5);
      int pid = 0;
      if (!value.empty() && value.find_first_not_of("0123456789") == std::string_view::npos) {
        for (char c : value) {
          pid = pid * 10 + (c - '0');
        }
        seccomp_read_pid->store(pid, std::memory_order_relaxed);
        return OkUnit();
      }
      return Error(Errno::kEINVAL, "seccomp: pid must be a nonnegative integer");
    }
    return Error(Errno::kEINVAL, "seccomp: expected ? or ?pid=N");
  };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/seccomp", 0600, std::move(seccomp_ops)));

  // Metrics registry in Prometheus text exposition format, world-readable
  // like /proc/stat. The JSON form is reached programmatically
  // (kernel->metrics().Json()) by the bench harness.
  SyntheticOps metrics_ops;
  metrics_ops.read = [kernel]() { return kernel->metrics().PrometheusText(); };
  RETURN_IF_ERROR(vfs.CreateSynthetic("/proc/protego/metrics", 0444, std::move(metrics_ops)));

  // Protego's own policy-outcome counters, re-exported through the registry
  // so the legacy /proc/protego/status numbers and the metrics file can never
  // disagree (they read the same ProtegoStats fields).
  kernel->metrics().AddCollector([lsm](MetricsBuilder& b) {
    const ProtegoStats& s = lsm->stats();
    const char* help = "Protego policy decisions by operation and outcome.";
    auto row = [&](const char* op, const char* outcome, uint64_t n) {
      b.Counter("protego_policy_decisions_total", help, {{"op", op}, {"outcome", outcome}}, n);
    };
    row("mount", "allowed", s.mount_allowed);
    row("mount", "denied", s.mount_denied);
    row("umount", "allowed", s.umount_allowed);
    row("umount", "denied", s.umount_denied);
    row("bind", "allowed", s.bind_allowed);
    row("bind", "denied", s.bind_denied);
    row("setuid", "allowed", s.setuid_allowed);
    row("setuid", "deferred", s.setuid_deferred);
    row("setuid", "denied", s.setuid_denied);
    row("exec", "transition", s.exec_transitions);
    row("exec", "denied", s.exec_denied);
    row("raw_socket", "allowed", s.raw_sockets_allowed);
    row("route", "allowed", s.route_allowed);
    row("route", "denied", s.route_denied);
    row("file", "delegated", s.file_delegations);
    b.Counter("protego_reauth_reads_total",
              "Reads of re-authentication state by the auth agent.", {}, s.reauth_reads);
  });

  return OkUnit();
}

}  // namespace protego
