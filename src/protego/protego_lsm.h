// The Protego security module (the paper's core contribution, §2/§4).
//
// Protego migrates the policies previously encoded in setuid-to-root
// binaries into the kernel:
//   * mount/umount  — whitelist of user-mountable fstab entries (§4.2)
//   * socket        — any user may create raw/packet sockets; outgoing
//                     packets are filtered by netfilter rules (§4.1.1)
//   * bind          — low ports allocated to (binary, uid) pairs (§4.1.3)
//   * setuid/setgid — delegation rules from /etc/sudoers, with deferred
//                     setuid-on-exec and authentication recency (§4.3)
//   * ioctl         — non-conflicting user routes and safe modem options
//                     for pppd (§4.1.2)
//   * files         — per-binary file delegations (ssh-keysign) and
//                     reauthentication-gated reads (shadow files) (§4.4/4.6)
//
// Policy tables are replaced wholesale (parse-validate-swap) through the
// /proc/protego interface (src/protego/proc_iface.h) by the administrator
// or the monitoring daemon.
//
// Concurrency (parallel mode): all policy state — the raw tables AND the
// compiled engine built from them — lives in one immutable Policy snapshot
// published RCU-style behind a pointer-copy mutex. Hooks take the snapshot
// reference once at dispatch entry (the critical section is one shared_ptr
// copy — no table work ever happens under the lock) and thread that single
// snapshot through every helper, so a reader never blocks a swap for longer
// than the pointer copy and never observes a half-swapped policy. (A
// std::atomic<shared_ptr> would express the same protocol, but libstdc++'s
// _Sp_atomic unlocks its reader spinlock with a relaxed fetch_sub, which
// ThreadSanitizer — and a strict reading of the memory model — rejects; a
// plain mutex costs the same and is provably clean.) Writers build a
// complete successor snapshot off to the side and publish it with one
// pointer swap; the old snapshot is retired when the last in-flight reader
// drops its reference (shared_ptr refcount = the grace period). This also
// sidesteps re-entrancy:
// hooks nest syscalls (EnsureAuthenticated spawns the authentication
// utility, whose syscalls re-enter the hooks), which a reader-writer lock
// could self-deadlock on but a snapshot pointer cannot.

#ifndef SRC_PROTEGO_PROTEGO_LSM_H_
#define SRC_PROTEGO_PROTEGO_LSM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/config/bindconf.h"
#include "src/config/fstab.h"
#include "src/config/passwd_db.h"
#include "src/config/ppp_options.h"
#include "src/config/sudoers.h"
#include "src/lsm/module.h"
#include "src/protego/policy_engine.h"

namespace protego {

class Kernel;

// Authentication-recency key for a password-protected group: group
// authentications share the per-task auth_times map with user
// authentications, offset so gids cannot collide with uids.
inline constexpr Uid kGroupAuthBase = 0x40000000;

// Per-hook decision counters, exported via /proc/protego/status. Relaxed
// atomics: parallel-mode hooks bump these concurrently; readers tolerate
// the usual scrape-time skew.
struct ProtegoStats {
  std::atomic<uint64_t> mount_allowed{0};
  std::atomic<uint64_t> mount_denied{0};
  std::atomic<uint64_t> umount_allowed{0};
  std::atomic<uint64_t> umount_denied{0};
  std::atomic<uint64_t> bind_allowed{0};
  std::atomic<uint64_t> bind_denied{0};
  std::atomic<uint64_t> setuid_deferred{0};
  std::atomic<uint64_t> setuid_allowed{0};
  std::atomic<uint64_t> setuid_denied{0};
  std::atomic<uint64_t> exec_transitions{0};
  std::atomic<uint64_t> exec_denied{0};
  std::atomic<uint64_t> raw_sockets_allowed{0};
  std::atomic<uint64_t> route_allowed{0};
  std::atomic<uint64_t> route_denied{0};
  std::atomic<uint64_t> file_delegations{0};
  std::atomic<uint64_t> reauth_reads{0};
};

class ProtegoLsm : public SecurityModule {
 public:
  // One immutable policy snapshot: the raw tables (authoritative, still
  // serialized back out through /proc) plus the compiled engine built from
  // exactly these tables. The engine's indices may hold pointers into the
  // snapshot's own vectors, which is safe because a snapshot is never
  // mutated after publication and outlives every reader holding its ref.
  struct Policy {
    std::vector<FstabEntry> mount_whitelist;
    std::vector<BindConfEntry> bind_table;
    SudoersPolicy delegation;
    UserDb user_db;
    PppOptions ppp_options;
    PolicyEngine engine;
  };
  using PolicyRef = std::shared_ptr<const Policy>;

  // `kernel` is used for mount-table lookups, routing state, and invoking
  // the trusted authentication utility. Must outlive the module.
  explicit ProtegoLsm(Kernel* kernel)
      : kernel_(kernel), policy_(std::make_shared<const Policy>()) {}

  const char* name() const override { return "protego"; }

  // --- Policy configuration (called by the /proc interface) -----------------
  //
  // Each swap is transactional: the successor snapshot is built with the new
  // raw table spliced in, its compiled indices are rebuilt, and only if
  // compilation succeeds is the snapshot published and the policy generation
  // bumped. On failure (including an injected kPolicyCompile fault) nothing
  // is published — the live snapshot, the generation, and every cached
  // verdict stay exactly as they were. Writers serialize on a mutex so two
  // concurrent swaps cannot lose each other's tables; readers never block.

  [[nodiscard]] Result<Unit> SetMountPolicy(std::vector<FstabEntry> whitelist);
  [[nodiscard]] Result<Unit> SetBindTable(std::vector<BindConfEntry> table);
  [[nodiscard]] Result<Unit> SetDelegation(SudoersPolicy policy);
  [[nodiscard]] Result<Unit> SetUserDb(UserDb db);
  [[nodiscard]] Result<Unit> SetPppOptions(PppOptions options);

  // When enabled (the default), hooks consult the compiled indices built at
  // swap time; when disabled they linear-scan the raw tables. The scan path
  // is kept as the semantic reference — parity tests compare the two, and
  // policy_engine_bench uses it as the baseline. Both paths produce
  // identical verdicts.
  void set_compiled_engine_enabled(bool enabled) {
    compiled_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool compiled_engine_enabled() const {
    return compiled_enabled_.load(std::memory_order_relaxed);
  }

  // The current snapshot. The mutex makes the publication in
  // CompileAndPublish visible (it is released there before the generation
  // bump), so a reader that observed generation G also observes at least
  // generation G's engine. The critical section is one shared_ptr copy.
  PolicyRef policy() const {
    std::lock_guard<std::mutex> lk(policy_mu_);
    return policy_;
  }

  // Table accessors return copies of the current snapshot's tables: a const
  // reference into a snapshot could outlive it once a swap retires it.
  std::vector<FstabEntry> mount_policy() const { return policy()->mount_whitelist; }
  std::vector<BindConfEntry> bind_table() const { return policy()->bind_table; }
  SudoersPolicy delegation() const { return policy()->delegation; }
  UserDb user_db() const { return policy()->user_db; }
  PppOptions ppp_options() const { return policy()->ppp_options; }
  const ProtegoStats& stats() const { return stats_; }

  // Total raw-table rows across every policy table: drives the LSM stack's
  // adaptive decision-cache bypass (tiny tables are cheaper to evaluate
  // than to cache).
  size_t PolicyRuleCount() const override;

  // --- LSM hooks -------------------------------------------------------------

  HookVerdict SbMount(const Task& task, const MountRequest& req, bool* cacheable) override;
  HookVerdict SbUmount(const Task& task, const std::string& mountpoint) override;
  HookVerdict SocketCreate(const Task& task, const SocketRequest& req) override;
  HookVerdict SocketBind(const Task& task, const BindRequest& req, bool* cacheable) override;
  HookVerdict TaskFixSetuid(Task& task, const SetuidRequest& req,
                            SetuidDisposition* disposition) override;
  HookVerdict BprmCheck(Task& task, const std::string& path, const Inode& inode,
                        const std::vector<std::string>& argv, ExecControl* control) override;
  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may, bool* cacheable) override;
  HookVerdict FileIoctl(const Task& task, const IoctlRequest& req) override;

 private:
  // Copies the current snapshot's raw tables into a fresh staging Policy
  // (engine left empty — CompileAndPublish rebuilds it). Caller must hold
  // swap_mu_.
  Policy CloneTablesLocked() const;

  // Rebuilds every compiled index inside `next` from its raw tables, then
  // publishes the snapshot (release) and bumps the policy generation —
  // IN THAT ORDER, so a reader observing the new generation also observes
  // the new engine. Fails only on an injected kPolicyCompile fault, in
  // which case nothing is published. Caller must hold swap_mu_.
  [[nodiscard]] Result<Unit> CompileAndPublish(Policy next);

  // Names matching `user` in a sudoers rule subject: exact name, %group
  // membership, or ALL. `pol` is the snapshot the caller is evaluating.
  bool RuleSubjectMatches(const Policy& pol, const SudoRule& rule,
                          const std::string& user_name) const;

  // All delegation rules applying to (invoking user, target user). The
  // returned pointers point into `pol` — the caller's snapshot keeps them
  // alive, and RuleCommandMatches must be handed the SAME snapshot (it
  // turns the pointers back into indices into pol.delegation.rules).
  std::vector<const SudoRule*> MatchingRules(const Policy& pol, Uid invoking_uid,
                                             const std::string& target) const;

  // Command match for a rule returned by MatchingRules (compiled or scan).
  bool RuleCommandMatches(const Policy& pol, const SudoRule* rule,
                          const std::string& command_line) const;

  // Shared per-entry mount evaluation once device/mountpoint/fstype have
  // matched: option vetting plus the per-user ownership check for
  // glob-mountpoint entries (which clears *cacheable).
  bool MountEntryGrants(const FstabEntry& entry, bool glob_mountpoint, const Task& task,
                        const MountRequest& req, bool* cacheable) const;

  // Enforces the recency requirement: recent auth of the invoking user, or
  // a fresh password exchange via the kernel-launched authentication
  // utility. Non-const task: a successful exchange stamps auth_times.
  bool EnsureAuthenticated(const Policy& pol, Task& task, Uid account) const;

  Kernel* kernel_;
  // Guards only the pointer itself; snapshots are immutable once published.
  mutable std::mutex policy_mu_;
  PolicyRef policy_;
  std::mutex swap_mu_;  // serializes writers (clone → compile → publish)
  std::atomic<bool> compiled_enabled_{true};
  mutable ProtegoStats stats_;
};

}  // namespace protego

#endif  // SRC_PROTEGO_PROTEGO_LSM_H_
