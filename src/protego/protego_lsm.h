// The Protego security module (the paper's core contribution, §2/§4).
//
// Protego migrates the policies previously encoded in setuid-to-root
// binaries into the kernel:
//   * mount/umount  — whitelist of user-mountable fstab entries (§4.2)
//   * socket        — any user may create raw/packet sockets; outgoing
//                     packets are filtered by netfilter rules (§4.1.1)
//   * bind          — low ports allocated to (binary, uid) pairs (§4.1.3)
//   * setuid/setgid — delegation rules from /etc/sudoers, with deferred
//                     setuid-on-exec and authentication recency (§4.3)
//   * ioctl         — non-conflicting user routes and safe modem options
//                     for pppd (§4.1.2)
//   * files         — per-binary file delegations (ssh-keysign) and
//                     reauthentication-gated reads (shadow files) (§4.4/4.6)
//
// Policy tables are replaced wholesale (parse-validate-swap) through the
// /proc/protego interface (src/protego/proc_iface.h) by the administrator
// or the monitoring daemon.

#ifndef SRC_PROTEGO_PROTEGO_LSM_H_
#define SRC_PROTEGO_PROTEGO_LSM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/config/bindconf.h"
#include "src/config/fstab.h"
#include "src/config/passwd_db.h"
#include "src/config/ppp_options.h"
#include "src/config/sudoers.h"
#include "src/lsm/module.h"
#include "src/protego/policy_engine.h"

namespace protego {

class Kernel;

// Authentication-recency key for a password-protected group: group
// authentications share the per-task auth_times map with user
// authentications, offset so gids cannot collide with uids.
inline constexpr Uid kGroupAuthBase = 0x40000000;

// Per-hook decision counters, exported via /proc/protego/status.
struct ProtegoStats {
  uint64_t mount_allowed = 0;
  uint64_t mount_denied = 0;
  uint64_t umount_allowed = 0;
  uint64_t umount_denied = 0;
  uint64_t bind_allowed = 0;
  uint64_t bind_denied = 0;
  uint64_t setuid_deferred = 0;
  uint64_t setuid_allowed = 0;
  uint64_t setuid_denied = 0;
  uint64_t exec_transitions = 0;
  uint64_t exec_denied = 0;
  uint64_t raw_sockets_allowed = 0;
  uint64_t route_allowed = 0;
  uint64_t route_denied = 0;
  uint64_t file_delegations = 0;
  uint64_t reauth_reads = 0;
};

class ProtegoLsm : public SecurityModule {
 public:
  // `kernel` is used for mount-table lookups, routing state, and invoking
  // the trusted authentication utility. Must outlive the module.
  explicit ProtegoLsm(Kernel* kernel) : kernel_(kernel) {}

  const char* name() const override { return "protego"; }

  // --- Policy configuration (called by the /proc interface) -----------------
  //
  // Each swap is transactional: the new raw table is staged, the compiled
  // indices are rebuilt into a fresh engine, and only if compilation
  // succeeds does the engine move into place and the policy generation
  // bump. On failure (including an injected kPolicyCompile fault) the
  // previous raw table is restored, engine_ and the generation are left
  // untouched, and every cached verdict remains valid — hooks never observe
  // a half-swapped policy.

  [[nodiscard]] Result<Unit> SetMountPolicy(std::vector<FstabEntry> whitelist);
  [[nodiscard]] Result<Unit> SetBindTable(std::vector<BindConfEntry> table);
  [[nodiscard]] Result<Unit> SetDelegation(SudoersPolicy policy);
  [[nodiscard]] Result<Unit> SetUserDb(UserDb db);
  [[nodiscard]] Result<Unit> SetPppOptions(PppOptions options);

  // When enabled (the default), hooks consult the compiled indices built at
  // swap time; when disabled they linear-scan the raw tables. The scan path
  // is kept as the semantic reference — parity tests compare the two, and
  // policy_engine_bench uses it as the baseline. Both paths produce
  // identical verdicts.
  void set_compiled_engine_enabled(bool enabled) { compiled_enabled_ = enabled; }
  bool compiled_engine_enabled() const { return compiled_enabled_; }

  const std::vector<FstabEntry>& mount_policy() const { return mount_whitelist_; }
  const std::vector<BindConfEntry>& bind_table() const { return bind_table_; }
  const SudoersPolicy& delegation() const { return delegation_; }
  const UserDb& user_db() const { return user_db_; }
  const PppOptions& ppp_options() const { return ppp_options_; }
  const ProtegoStats& stats() const { return stats_; }

  // --- LSM hooks -------------------------------------------------------------

  HookVerdict SbMount(const Task& task, const MountRequest& req, bool* cacheable) override;
  HookVerdict SbUmount(const Task& task, const std::string& mountpoint) override;
  HookVerdict SocketCreate(const Task& task, const SocketRequest& req) override;
  HookVerdict SocketBind(const Task& task, const BindRequest& req, bool* cacheable) override;
  HookVerdict TaskFixSetuid(Task& task, const SetuidRequest& req,
                            SetuidDisposition* disposition) override;
  HookVerdict BprmCheck(Task& task, const std::string& path, const Inode& inode,
                        const std::vector<std::string>& argv, ExecControl* control) override;
  HookVerdict InodePermission(Task& task, const std::string& path, const Inode& inode,
                              int may, bool* cacheable) override;
  HookVerdict FileIoctl(const Task& task, const IoctlRequest& req) override;

 private:
  // Rebuilds every compiled index from the raw tables into a fresh engine
  // and, on success, swaps it in and invalidates cached verdicts. Called by
  // each Set*Policy (parse-validate-SWAP-compile). Fails only on an
  // injected kPolicyCompile fault; the caller rolls the raw table back.
  [[nodiscard]] Result<Unit> RecompilePolicies();

  // Names matching `user` in a sudoers rule subject: exact name, %group
  // membership, or ALL.
  bool RuleSubjectMatches(const SudoRule& rule, const std::string& user_name) const;

  // All delegation rules applying to (invoking user, target user).
  std::vector<const SudoRule*> MatchingRules(Uid invoking_uid, const std::string& target) const;

  // Command match for a rule returned by MatchingRules (compiled or scan).
  bool RuleCommandMatches(const SudoRule* rule, const std::string& command_line) const;

  // Shared per-entry mount evaluation once device/mountpoint/fstype have
  // matched: option vetting plus the per-user ownership check for
  // glob-mountpoint entries (which clears *cacheable).
  bool MountEntryGrants(const FstabEntry& entry, bool glob_mountpoint, const Task& task,
                        const MountRequest& req, bool* cacheable) const;

  // Enforces the recency requirement: recent auth of the invoking user, or
  // a fresh password exchange via the kernel-launched authentication
  // utility. Non-const task: a successful exchange stamps auth_times.
  bool EnsureAuthenticated(Task& task, Uid account) const;

  Kernel* kernel_;
  std::vector<FstabEntry> mount_whitelist_;
  std::vector<BindConfEntry> bind_table_;
  SudoersPolicy delegation_;
  UserDb user_db_;
  PppOptions ppp_options_;
  PolicyEngine engine_;
  bool compiled_enabled_ = true;
  mutable ProtegoStats stats_;
};

}  // namespace protego

#endif  // SRC_PROTEGO_PROTEGO_LSM_H_
