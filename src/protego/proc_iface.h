// The /proc/protego configuration interface (§2, Figure 1).
//
// Five root-owned synthetic files with simple grammars configure the
// Protego LSM; the monitoring daemon (or the administrator directly)
// writes them. Writes are parse-validate-swap: a malformed table is
// rejected with EINVAL and the previous policy stays in force.
//
//   /proc/protego/mounts  — fstab grammar, user-mountable whitelist
//   /proc/protego/ports   — /etc/bind grammar, port -> (binary, uid)
//   /proc/protego/sudoers — sudoers grammar (incl. Protego extensions)
//   /proc/protego/ppp     — ppp options grammar
//   /proc/protego/userdb  — sectioned passwd/shadow/group snapshot
//   /proc/protego/status  — read-only decision counters
//   /proc/protego/metrics — Prometheus text exposition of the registry
//   /proc/protego/trace   — decision-span trees; writable control file

#ifndef SRC_PROTEGO_PROC_IFACE_H_
#define SRC_PROTEGO_PROC_IFACE_H_

#include "src/base/result.h"
#include "src/base/tracepoint.h"

namespace protego {

class Kernel;
class ProtegoLsm;

// Creates the /proc/protego files in `kernel`'s VFS, wired to `lsm`.
// Both must outlive the filesystem.
Result<Unit> InstallProtegoProcFiles(Kernel* kernel, ProtegoLsm* lsm);

// Parses a /proc/protego/trace filter write: "?pid=N&syscall=name&span=N"
// (any subset, any order). "?" alone yields the match-everything filter.
// Unknown keys and malformed numbers are EINVAL.
Result<TraceFilter> ParseTraceQuery(std::string_view query);

// Serializes / parses the /proc/protego/userdb sectioned format.
std::string SerializeUserDbSections(const class UserDb& db);
Result<class UserDb> ParseUserDbSections(std::string_view content);

}  // namespace protego

#endif  // SRC_PROTEGO_PROC_IFACE_H_
