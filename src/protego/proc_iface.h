// The /proc/protego configuration interface (§2, Figure 1).
//
// Five root-owned synthetic files with simple grammars configure the
// Protego LSM; the monitoring daemon (or the administrator directly)
// writes them. Writes are parse-validate-swap: a malformed table is
// rejected with EINVAL and the previous policy stays in force.
//
//   /proc/protego/mounts  — fstab grammar, user-mountable whitelist
//   /proc/protego/ports   — /etc/bind grammar, port -> (binary, uid)
//   /proc/protego/sudoers — sudoers grammar (incl. Protego extensions)
//   /proc/protego/ppp     — ppp options grammar
//   /proc/protego/userdb  — sectioned passwd/shadow/group snapshot
//   /proc/protego/status  — read-only decision counters
//   /proc/protego/metrics — Prometheus text exposition of the registry
//   /proc/protego/trace   — decision-span trees; writable control file
//   /proc/protego/fault_inject — deterministic fault-site configuration

#ifndef SRC_PROTEGO_PROC_IFACE_H_
#define SRC_PROTEGO_PROC_IFACE_H_

#include <vector>

#include "src/base/result.h"
#include "src/base/tracepoint.h"
#include "src/fault/fault.h"

namespace protego {

class Kernel;
class ProtegoLsm;

// One parsed /proc/protego/fault_inject directive. Exactly one of the three
// kinds per line:
//   site=<name> error=<ERRNO> [prob=N/M] [interval=N] [times=N]
//                [pid=N] [syscall=<name>|sysno=N] [hook=<name>|N] [seed=N]
//   off site=<name>
//   reset
struct FaultDirective {
  enum class Kind { kConfigure, kOff, kReset };
  Kind kind = Kind::kConfigure;
  FaultSite site = FaultSite::kCount;
  FaultConfig config;
};

// Parses a full fault_inject write into directives, validating every line
// (including the constraints Configure() enforces) before anything is
// applied — a failed parse leaves the registry byte-identical. Blank lines
// and '#' comments are skipped; the read side's counter comments re-parse
// cleanly, so a saved snapshot can be written back verbatim for replay.
Result<std::vector<FaultDirective>> ParseFaultDirectives(std::string_view content);

// Creates the /proc/protego files in `kernel`'s VFS, wired to `lsm`.
// Both must outlive the filesystem.
Result<Unit> InstallProtegoProcFiles(Kernel* kernel, ProtegoLsm* lsm);

// Parses a /proc/protego/trace filter write: "?pid=N&syscall=name&span=N"
// (any subset, any order). "?" alone yields the match-everything filter.
// Unknown keys and malformed numbers are EINVAL.
Result<TraceFilter> ParseTraceQuery(std::string_view query);

// Serializes / parses the /proc/protego/userdb sectioned format.
std::string SerializeUserDbSections(const class UserDb& db);
Result<class UserDb> ParseUserDbSections(std::string_view content);

}  // namespace protego

#endif  // SRC_PROTEGO_PROC_IFACE_H_
