// Protego's default netfilter ruleset for unprivileged raw sockets (§4.1.1).
//
// With Protego, ANY user may create a raw or packet socket; these rules
// define which packets such sockets may emit. The defaults encode the safe
// packets exported by the studied setuid binaries (ping, traceroute,
// arping, mtr); the administrator may change them via iptables.

#ifndef SRC_PROTEGO_DEFAULT_RULES_H_
#define SRC_PROTEGO_DEFAULT_RULES_H_

#include "src/net/netfilter.h"

namespace protego {

// Comment tag on every default rule, so `iptables -D` can manage them.
inline constexpr char kProtegoRawRuleTag[] = "protego-raw-default";

// Appends the default OUTPUT-chain rules:
//   1. DROP  raw packets whose TCP/UDP source port belongs to another uid
//            (spoofing a socket owned by another process)
//   2. ACCEPT raw ICMP echo-request / echo-reply        (ping, mtr)
//   3. ACCEPT raw UDP with dst port >= 33434            (traceroute probes)
//   4. ACCEPT raw ARP                                   (arping)
//   5. DROP  all remaining raw TCP / UDP / ICMP packets
void InstallDefaultRawSocketRules(Netfilter* netfilter);

// Removes the default rules (used by ablation benchmarks).
void RemoveDefaultRawSocketRules(Netfilter* netfilter);

}  // namespace protego

#endif  // SRC_PROTEGO_DEFAULT_RULES_H_
