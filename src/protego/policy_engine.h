// Compiled policy representations for the Protego LSM.
//
// The /proc/protego interface swaps policy tables wholesale
// (parse-validate-swap), which makes swap time the natural place to compile
// them: every swap rebuilds these indices, and the hot hooks then run hash
// probes and precompiled matchers instead of linear scans with generic glob
// matching. The raw tables stay authoritative (proc reads serialize them);
// the indices are derived data and carry no policy of their own.
//
//   * BindIndex     — /etc/bind entries hashed by port (§4.1.3)
//   * MountIndex    — user-mountable fstab entries: wildcard-free rules
//                     hashed by (device, mountpoint, fstype), glob rules
//                     kept separately with precompiled matchers (§4.2)
//   * FileRuleIndex — file delegations partitioned by grantee binary,
//                     reauth-read globs precompiled (§4.4/§4.6)
//   * SudoersIndex  — delegation rules bucketed by subject user (group
//                     subjects expanded against the user db at build time)
//                     with precompiled command globs (§4.3)

#ifndef SRC_PROTEGO_POLICY_ENGINE_H_
#define SRC_PROTEGO_POLICY_ENGINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/config/bindconf.h"
#include "src/config/compiled_glob.h"
#include "src/config/fstab.h"
#include "src/config/passwd_db.h"
#include "src/config/sudoers.h"

namespace protego {

// --- Bind (§4.1.3) ----------------------------------------------------------------

class BindIndex {
 public:
  void Build(const std::vector<BindConfEntry>& table);

  // All allocations of `port`, or nullptr when the port is unallocated.
  const std::vector<BindConfEntry>* Find(uint16_t port) const;

 private:
  std::unordered_map<uint16_t, std::vector<BindConfEntry>> by_port_;
};

// --- Mount (§4.2) -----------------------------------------------------------------

// One user-mountable fstab rule with its matchers compiled.
struct CompiledFstabRule {
  FstabEntry entry;
  CompiledGlob device;
  CompiledGlob mountpoint;
  CompiledGlob fstype;
  bool any_user_may_unmount = false;
  // Rule grants per-user mountpoints ("/home/*/mnt"): the hook must verify
  // directory ownership, which also makes the decision uncacheable.
  bool glob_mountpoint = false;
};

class MountIndex {
 public:
  void Build(const std::vector<FstabEntry>& whitelist);

  // Invokes `fn(rule)` for every rule whose device/mountpoint/fstype match;
  // stops early when fn returns true. Wildcard-free rules come from a hash
  // probe, glob rules from a (typically tiny) residual list.
  template <typename Fn>
  void ForEachMatch(const std::string& device, const std::string& mountpoint,
                    const std::string& fstype, Fn&& fn) const {
    auto it = exact_.find(TripleKey(device, mountpoint, fstype));
    if (it != exact_.end()) {
      for (size_t idx : it->second) {
        const CompiledFstabRule& rule = rules_[idx];
        // The uint64 key can collide across triples; the matchers confirm.
        if (rule.device.Matches(device) && rule.mountpoint.Matches(mountpoint) &&
            rule.fstype.Matches(fstype) && fn(rule)) {
          return;
        }
      }
    }
    for (size_t idx : glob_rules_) {
      const CompiledFstabRule& rule = rules_[idx];
      if (rule.device.Matches(device) && rule.mountpoint.Matches(mountpoint) &&
          rule.fstype.Matches(fstype) && fn(rule)) {
        return;
      }
    }
  }

  // Same, keyed on mountpoint alone (the sb_umount question).
  template <typename Fn>
  void ForEachMountpointMatch(const std::string& mountpoint, Fn&& fn) const {
    auto it = exact_mountpoint_.find(mountpoint);
    if (it != exact_mountpoint_.end()) {
      for (size_t idx : it->second) {
        if (fn(rules_[idx])) {
          return;
        }
      }
    }
    for (size_t idx : glob_mountpoint_rules_) {
      const CompiledFstabRule& rule = rules_[idx];
      if (rule.mountpoint.Matches(mountpoint) && fn(rule)) {
        return;
      }
    }
  }

 private:
  static uint64_t TripleKey(const std::string& device, const std::string& mountpoint,
                            const std::string& fstype);

  std::vector<CompiledFstabRule> rules_;  // user-mountable rules only
  std::unordered_map<uint64_t, std::vector<size_t>> exact_;
  std::vector<size_t> glob_rules_;  // any wildcard in any field
  std::unordered_map<std::string, std::vector<size_t>> exact_mountpoint_;
  std::vector<size_t> glob_mountpoint_rules_;
};

// --- File delegations + reauth reads (§4.4/§4.6) ----------------------------------

struct CompiledDelegation {
  CompiledGlob path;
  int allow_may = 0;
};

class FileRuleIndex {
 public:
  void Build(const SudoersPolicy& policy);

  // Delegations granted to `binary`, or nullptr (the common case: one hash
  // probe and the whole delegation table is off the path).
  const std::vector<CompiledDelegation>* FindDelegations(const std::string& binary) const;

  bool has_reauth_rules() const { return !reauth_.empty(); }
  bool ReauthGated(const std::string& path) const;

 private:
  std::unordered_map<std::string, std::vector<CompiledDelegation>> by_binary_;
  std::vector<CompiledGlob> reauth_;
};

// --- Sudoers delegation (§4.3) ----------------------------------------------------

class SudoersIndex {
 public:
  // Needs the user db to expand %group subjects; rebuilt when either the
  // sudoers policy or the user db swaps.
  void Build(const SudoersPolicy& policy, const UserDb& db);

  // Indices into policy.rules whose subject covers `user_name`, ascending —
  // the same rules, in the same order, a full scan would select.
  std::vector<size_t> RulesForUser(const std::string& user_name) const;

  // Compiled equivalent of SudoRule::CommandMatches for rule `rule_index`.
  bool CommandMatches(size_t rule_index, const std::string& command_line) const;

 private:
  struct CompiledCommand {
    CompiledGlob glob;
    // Wildcard-free command specs also match "command arg...": the spec
    // plus a trailing space, precomputed (empty when not applicable).
    std::string bare_prefix;
  };
  struct CompiledRule {
    bool all_commands = false;
    std::vector<CompiledCommand> commands;
  };

  std::vector<CompiledRule> rules_;
  std::unordered_map<std::string, std::vector<size_t>> by_user_;  // exact + group-expanded
  std::vector<size_t> all_subject_rules_;  // subject "ALL"
};

// Everything the Protego hooks consult, rebuilt on each policy swap.
struct PolicyEngine {
  BindIndex bind;
  MountIndex mount;
  FileRuleIndex files;
  SudoersIndex sudoers;
};

}  // namespace protego

#endif  // SRC_PROTEGO_POLICY_ENGINE_H_
