// dm-crypt device metadata and the two interfaces to it (§4, Table 4):
//
//   * The legacy DM_TABLE_STATUS ioctl on /dev/mapper/control discloses the
//     underlying device AND the encryption key in one blob, so it must stay
//     CAP_SYS_ADMIN-only. This is the interface-design flaw that forced
//     dmcrypt-get-device to be setuid root.
//   * Protego's replacement: a world-readable /sys/block/<name>/slaves file
//     exposing only the public portion (the underlying device), so
//     dmcrypt-get-device needs no privilege at all (the paper's 4-line fix).

#ifndef SRC_PROTEGO_DMCRYPT_H_
#define SRC_PROTEGO_DMCRYPT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace protego {

class Kernel;

struct DmCryptVolume {
  std::string name;        // e.g. "dm-0"
  std::string underlying;  // e.g. "/dev/sda3" — public
  std::string key_hex;     // encryption key — secret
};

class DmCryptTable {
 public:
  void AddVolume(DmCryptVolume volume) { volumes_.push_back(std::move(volume)); }
  const DmCryptVolume* Find(const std::string& name) const;
  const std::vector<DmCryptVolume>& volumes() const { return volumes_; }

 private:
  std::vector<DmCryptVolume> volumes_;
};

// Installs /dev/mapper/control (char 10:236) with the legacy ioctl handler,
// and one /sys/block/<name>/slaves file per volume. `table` is shared with
// the handlers.
Result<Unit> InstallDmCrypt(Kernel* kernel, std::shared_ptr<DmCryptTable> table);

}  // namespace protego

#endif  // SRC_PROTEGO_DMCRYPT_H_
