// Core identity and mode-bit types for the simulated filesystem, mirroring
// the Linux definitions (including the setuid bit 04000 that this whole
// paper is about).

#ifndef SRC_VFS_TYPES_H_
#define SRC_VFS_TYPES_H_

#include <cstdint>
#include <string>

namespace protego {

using Uid = uint32_t;
using Gid = uint32_t;

inline constexpr Uid kRootUid = 0;
inline constexpr Gid kRootGid = 0;

// File type bits (high bits of st_mode), Linux values.
inline constexpr uint32_t kIfMask = 0170000;
inline constexpr uint32_t kIfReg = 0100000;
inline constexpr uint32_t kIfDir = 0040000;
inline constexpr uint32_t kIfChr = 0020000;
inline constexpr uint32_t kIfBlk = 0060000;
inline constexpr uint32_t kIfFifo = 0010000;
inline constexpr uint32_t kIfLnk = 0120000;
inline constexpr uint32_t kIfSock = 0140000;

// Permission/special bits.
inline constexpr uint32_t kSetUidBit = 04000;  // the setuid bit this paper obviates
inline constexpr uint32_t kSetGidBit = 02000;
inline constexpr uint32_t kStickyBit = 01000;
inline constexpr uint32_t kPermMask = 07777;

// Access request bits for permission checks (match Linux MAY_*).
inline constexpr int kMayExec = 1;
inline constexpr int kMayWrite = 2;
inline constexpr int kMayRead = 4;

// open(2) flags (subset).
inline constexpr int kORdOnly = 0;
inline constexpr int kOWrOnly = 1;
inline constexpr int kORdWr = 2;
inline constexpr int kOAccMode = 3;
inline constexpr int kOCreat = 0100;
inline constexpr int kOExcl = 0200;
inline constexpr int kOTrunc = 01000;
inline constexpr int kOAppend = 02000;
inline constexpr int kOCloExec = 02000000;

inline bool IsDirMode(uint32_t mode) { return (mode & kIfMask) == kIfDir; }
inline bool IsRegMode(uint32_t mode) { return (mode & kIfMask) == kIfReg; }
inline bool IsLnkMode(uint32_t mode) { return (mode & kIfMask) == kIfLnk; }
inline bool IsDeviceMode(uint32_t mode) {
  uint32_t type = mode & kIfMask;
  return type == kIfChr || type == kIfBlk;
}

// Renders mode as "drwxr-xr-x" style, with s/S for setuid/setgid bits, the
// way ls(1) shows the attack surface this paper studies.
std::string ModeString(uint32_t mode);

}  // namespace protego

#endif  // SRC_VFS_TYPES_H_
