// The simulated virtual filesystem: a directory tree of Vnodes, a mount
// table, path resolution with mount crossing, and inotify-style watches.
//
// The VFS performs no permission checks; the kernel layer (src/kernel)
// applies DAC + LSM policy and then calls into these primitives, exactly as
// the Linux VFS relies on callers having passed inode_permission().
//
// Locking (parallel mode):
//   * tree_mu_ (reader-writer): the directory structure — children maps,
//     parent links, mount covers, the mount table, and the orphan list.
//     Resolution and PathOf take it shared; create/unlink/rename/mount and
//     chmod/chown-style metadata updates take it unique. Striped per-path
//     dentry locks would admit more write parallelism, but structural
//     writes are rare in every workload we model, so one tree lock with
//     striped DATA locks (below) captures the win at a fraction of the
//     deadlock surface.
//   * data_mu_[ino % kDataStripes]: file contents, mtime, and the block
//     charge flag. Reads take the stripe shared, writes unique — so N
//     threads stream N different files without touching the tree lock's
//     writer path. Safe without the tree lock because unlinked vnodes are
//     kept alive on the orphan list (a Vnode* never dangles).
//   * Watch callbacks NEVER run under a lock: mutations queue events and
//     the public entry points dispatch them after unlocking, because
//     watchers (the monitoring daemon) re-enter the VFS from their
//     callbacks. Lock order is tree_mu_ before data stripe; neither is
//     held across user callbacks (watches, synthetic file generators).
//   * Returned Vnode* remain valid forever (orphan pinning); inode METADATA
//     (mode/uid/gid) is guarded by tree_mu_ via the SetInode* helpers, and
//     scalar counters are relaxed atomics.

#ifndef SRC_VFS_VFS_H_
#define SRC_VFS_VFS_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/clock.h"
#include "src/base/result.h"
#include "src/base/attribution.h"
#include "src/base/tracepoint.h"
#include "src/fault/fault.h"
#include "src/vfs/inode.h"

namespace protego {

class Vfs;
struct MountEntry;

// A node in the directory tree (directory entry + inode). Mount roots are
// detached Vnode trees owned by their MountEntry.
class Vnode {
 public:
  Vnode(std::string name, Inode inode) : name_(std::move(name)), inode_(std::move(inode)) {}

  Vnode(const Vnode&) = delete;
  Vnode& operator=(const Vnode&) = delete;

  const std::string& name() const { return name_; }
  Inode& inode() { return inode_; }
  const Inode& inode() const { return inode_; }
  Vnode* parent() const { return parent_; }

  // Child by name within this directory; nullptr if absent. Does not cross
  // mounts — Vfs::Resolve handles mount traversal. Caller must hold the
  // tree lock (or be single-threaded bootstrap code).
  Vnode* Lookup(std::string_view child) const;

  // Adds a child entry to this directory. Fails with EEXIST/ENOTDIR.
  // Same locking contract as Lookup.
  Result<Vnode*> AddChild(std::string name, Inode inode);

  // Names of all children, sorted (directories only).
  std::vector<std::string> ListNames() const;

  bool HasChildren() const { return !children_.empty(); }

 private:
  friend class Vfs;

  std::string name_;
  Inode inode_;
  Vnode* parent_ = nullptr;
  std::map<std::string, std::unique_ptr<Vnode>> children_;

  // Non-null when a filesystem is mounted over this directory.
  MountEntry* covered_by_ = nullptr;
  // Non-null when this node is the root of a mounted filesystem.
  MountEntry* mount_root_of_ = nullptr;
};

// One row of the mount table.
struct MountEntry {
  std::string source;      // backing device or pseudo-source ("proc", "tmpfs")
  std::string mountpoint;  // normalized absolute path
  std::string fstype;
  std::vector<std::string> options;
  Uid mounter = kRootUid;  // uid that performed the mount (for user umount)

  std::unique_ptr<Vnode> root;  // the mounted filesystem's tree
  Vnode* covered = nullptr;     // the directory this mount covers
};

// Populates a freshly mounted filesystem's root (e.g. an iso9660 image's
// contents for a CD-ROM device).
using MountPopulator = std::function<void(Vnode* root)>;

// Filesystem change events delivered to watchers (inotify analog).
enum class FsEvent {
  kCreated,
  kModified,
  kDeleted,
};

const char* FsEventName(FsEvent event);

using WatchCallback = std::function<void(FsEvent, const std::string& path)>;

class Vfs {
 public:
  // Creates a filesystem containing only "/".
  explicit Vfs(Clock* clock = nullptr);

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // Attaches the kernel-wide tracer: mount-table changes emit kVfsMount
  // events (stamped with the calling syscall's span).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Per-layer latency attribution: path resolution runs under a `vfs`
  // frame. Detached or disabled, resolution pays a pointer test.
  void set_profiler(LayerProfiler* profiler) { profiler_ = profiler; }

  // Attaches the fault-injection registry: vnode allocation (ENOMEM) and
  // block allocation (ENOSPC) become injectable fault sites.
  void set_faults(FaultRegistry* faults) { faults_ = faults; }

  // Path resolutions performed since boot (exported as a metric).
  uint64_t resolves() const { return resolves_.load(std::memory_order_relaxed); }

  // --- Block accounting ------------------------------------------------------
  //
  // Regular-file data bytes are charged against a filesystem-wide quota
  // (a crude but sufficient stand-in for per-fs block counts): CreateNode
  // charges a new file's initial contents, WriteNode charges growth and
  // releases shrinkage, and growing past the quota fails with ENOSPC.
  // Orphaned vnodes (unlinked/renamed-over while possibly still open) KEEP
  // their charge — as on a real filesystem, an unlinked inode's blocks are
  // freed only when the last reference dies, which in this simulation is
  // Vfs destruction. Files created by bootstrap populators that bypass
  // CreateNode are charged lazily on their first quota-aware write.

  // 0 = unlimited (the default; quota enforcement is opt-in).
  void set_block_quota(uint64_t bytes) { block_quota_ = bytes; }
  uint64_t block_quota() const { return block_quota_; }
  uint64_t bytes_used() const { return bytes_used_.load(std::memory_order_relaxed); }
  size_t orphan_count() const;

  // Recomputes charged bytes by walking the tree, every mount, and the
  // orphan list, and cross-checks against the incremental bytes_used()
  // counter. EIO with a diagnostic on divergence — the fault-sweep harness
  // runs this after every scenario. Expects data writers to be quiescent.
  Result<Unit> AuditBlockAccounting() const;

  // --- Path resolution -----------------------------------------------------

  // Collapses ".", "..", duplicate slashes. `path` must be absolute.
  static std::string Normalize(std::string_view path);

  // Symlink chains longer than this fail with ELOOP (Linux uses 40; the
  // simulation's filesystems are small enough that 8 suffices).
  static constexpr int kMaxSymlinkDepth = 8;

  // Resolves an absolute path to its Vnode, crossing mountpoints and
  // following symlinks (including the final component; use ResolveNoFollow
  // for lstat-style leaf access).
  Result<Vnode*> Resolve(std::string_view path) const;

  // Like Resolve, but does not follow a symlink in the FINAL component
  // (intermediate symlinks are still followed).
  Result<Vnode*> ResolveNoFollow(std::string_view path) const;

  // Resolves all but the last component; returns (parent dir, leaf name).
  Result<std::pair<Vnode*, std::string>> ResolveParent(std::string_view path) const;

  // Absolute path of a node (inverse of Resolve; accounts for mounts).
  std::string PathOf(const Vnode* node) const;

  // --- Node creation / removal / mutation ----------------------------------

  Result<Vnode*> CreateFile(std::string_view path, uint32_t perms, Uid uid, Gid gid,
                            std::string data = "");
  Result<Vnode*> CreateDir(std::string_view path, uint32_t perms, Uid uid, Gid gid);
  // Creates a symbolic link at `path` pointing at `target` (not required to
  // exist — dangling links are legal, as on Linux). Mode is always 0777.
  Result<Vnode*> CreateSymlink(std::string_view path, std::string_view target, Uid uid,
                               Gid gid);
  Result<Vnode*> CreateDevice(std::string_view path, uint32_t perms, Uid uid, Gid gid,
                              bool block, uint32_t major, uint32_t minor);

  // Creates a synthetic (procfs-style) file whose content is generated by
  // `ops`. Missing parent directories are created root-owned 0755.
  Result<Vnode*> CreateSynthetic(std::string_view path, uint32_t perms, SyntheticOps ops);

  // Creates any missing directories along `path` (mkdir -p), root 0755.
  Result<Vnode*> EnsureDirs(std::string_view path);

  Result<Unit> Unlink(std::string_view path);
  Result<Unit> Rename(std::string_view from, std::string_view to);

  // Reads file content (regular data or synthetic generator).
  Result<std::string> ReadNode(const Vnode* node) const;

  // Replaces or appends file content; fires kModified.
  Result<Unit> WriteNode(Vnode* node, std::string_view data, bool append);

  // Directory listing under the tree lock (kernel getdents path).
  Result<std::vector<std::string>> ListDir(const Vnode* node) const;

  // Inode metadata snapshot/update helpers (chmod/chown/stat paths): the
  // kernel must not poke node->inode() fields directly in parallel mode.
  Inode SnapshotInode(const Vnode* node) const;
  // Replaces the permission bits, preserving the file-type bits.
  void SetInodeMode(Vnode* node, uint32_t perms);
  // Changes ownership; clears setuid/setgid bits as on Linux when `clear_sbits`.
  void SetInodeOwner(Vnode* node, Uid uid, Gid gid, bool clear_sbits);

  // Path-based conveniences used by bootstrap code and trusted services.
  Result<std::string> ReadFile(std::string_view path) const;
  Result<Unit> WriteFile(std::string_view path, std::string_view data);

  // --- Mounts ---------------------------------------------------------------

  // Grafts a new filesystem over the directory at `mountpoint`.
  Result<Unit> AddMount(std::string_view mountpoint, std::string source, std::string fstype,
                        std::vector<std::string> options, Uid mounter,
                        const MountPopulator& populate);

  // Removes the mount at `mountpoint`. EINVAL if nothing is mounted there.
  Result<Unit> RemoveMount(std::string_view mountpoint);

  // Mount covering `mountpoint`, or nullptr.
  const MountEntry* FindMount(std::string_view mountpoint) const;

  const std::vector<std::unique_ptr<MountEntry>>& mounts() const { return mounts_; }

  // --- Watches (inotify analog) ----------------------------------------------

  // Invokes `cb` for events on `path` or anything beneath it. Returns a
  // watch id for RemoveWatch. Callbacks run with no VFS lock held.
  int AddWatch(std::string path, WatchCallback cb);
  void RemoveWatch(int watch_id);

 private:
  // Queued filesystem events, dispatched after the tree lock is released.
  using PendingEvents = std::vector<std::pair<FsEvent, std::string>>;

  static constexpr size_t kDataStripes = 16;
  std::shared_mutex& DataStripe(uint64_t ino) const {
    return data_mu_[ino % kDataStripes];
  }

  Vnode* root() const { return root_.get(); }
  // Lock-free internals; callers hold tree_mu_ (shared for resolution,
  // unique for mutation).
  Result<Vnode*> ResolveInternal(std::string_view path, bool want_parent,
                                 std::string* leaf_out, bool follow_leaf = true) const;
  std::string PathOfLocked(const Vnode* node) const;
  Result<Vnode*> CreateNodeLocked(std::string_view path, Inode inode, PendingEvents* events);
  Result<Vnode*> EnsureDirsLocked(std::string_view path);
  const MountEntry* FindMountLocked(std::string_view mountpoint) const;
  // Releases the block charge of every charged inode under `node` (used
  // when a whole mount tree is destroyed).
  void UnchargeTree(Vnode* node);
  // Runs matching watch callbacks for each queued event. MUST be called
  // with no VFS lock held (callbacks re-enter the VFS).
  void DispatchEvents(PendingEvents& events) const;
  uint64_t NextIno() { return next_ino_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t NowMtime() const { return clock_ ? clock_->Now() : 0; }

  struct Watch {
    int id;
    std::string path;
    WatchCallback callback;
  };

  Clock* clock_;
  Tracer* tracer_ = nullptr;
  LayerProfiler* profiler_ = nullptr;
  FaultRegistry* faults_ = nullptr;
  uint64_t block_quota_ = 0;  // 0 = unlimited; set at boot, read-only after
  std::atomic<uint64_t> bytes_used_{0};     // charged regular-file data bytes
  mutable std::atomic<uint64_t> resolves_{0};  // accounting from const Resolve()
  mutable std::shared_mutex tree_mu_;          // directory structure + metadata
  mutable std::shared_mutex data_mu_[kDataStripes];  // file contents by ino
  mutable std::mutex watch_mu_;                // watch list
  std::unique_ptr<Vnode> root_;
  // Vnodes unlinked or displaced by rename stay alive here until the Vfs is
  // destroyed: open file descriptions hold raw Vnode*, and on a real system
  // an open inode outlives its last directory entry.
  std::vector<std::unique_ptr<Vnode>> orphans_;
  std::vector<std::unique_ptr<MountEntry>> mounts_;
  std::vector<Watch> watches_;
  std::atomic<uint64_t> next_ino_{2};  // 1 is the root inode, per ext tradition
  std::atomic<int> next_watch_id_{1};
};

}  // namespace protego

#endif  // SRC_VFS_VFS_H_
