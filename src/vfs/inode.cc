#include "src/vfs/inode.h"

namespace protego {

std::string ModeString(uint32_t mode) {
  std::string out;
  uint32_t type = mode & kIfMask;
  switch (type) {
    case kIfDir: out.push_back('d'); break;
    case kIfChr: out.push_back('c'); break;
    case kIfBlk: out.push_back('b'); break;
    case kIfFifo: out.push_back('p'); break;
    case kIfLnk: out.push_back('l'); break;
    case kIfSock: out.push_back('s'); break;
    default: out.push_back('-'); break;
  }
  auto triad = [&](uint32_t shift, bool special, char special_char) {
    uint32_t bits = (mode >> shift) & 07;
    out.push_back((bits & 04) ? 'r' : '-');
    out.push_back((bits & 02) ? 'w' : '-');
    if (special) {
      out.push_back((bits & 01) ? special_char : static_cast<char>(special_char - 32));
    } else {
      out.push_back((bits & 01) ? 'x' : '-');
    }
  };
  triad(6, (mode & kSetUidBit) != 0, 's');
  triad(3, (mode & kSetGidBit) != 0, 's');
  triad(0, (mode & kStickyBit) != 0, 't');
  return out;
}

bool DacPermits(const Inode& inode, Uid uid, const std::function<bool(Gid)>& in_group, int may) {
  // Snapshot once so a chmod racing this check yields coherent old-or-new
  // bits, never a mix of the two.
  uint32_t mode = inode.ModeRelaxed();
  Uid owner = inode.uid.load(std::memory_order_relaxed);
  Gid group = inode.gid.load(std::memory_order_relaxed);
  uint32_t bits;
  if (uid == owner) {
    bits = (mode >> 6) & 07;
  } else if (in_group && in_group(group)) {
    bits = (mode >> 3) & 07;
  } else {
    bits = mode & 07;
  }
  if ((may & kMayRead) && !(bits & 04)) {
    return false;
  }
  if ((may & kMayWrite) && !(bits & 02)) {
    return false;
  }
  if ((may & kMayExec) && !(bits & 01)) {
    return false;
  }
  return true;
}

}  // namespace protego
