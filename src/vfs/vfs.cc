#include "src/vfs/vfs.h"

#include <algorithm>

#include "src/base/strings.h"

namespace protego {

const char* FsEventName(FsEvent event) {
  switch (event) {
    case FsEvent::kCreated: return "CREATED";
    case FsEvent::kModified: return "MODIFIED";
    case FsEvent::kDeleted: return "DELETED";
  }
  return "?";
}

Vnode* Vnode::Lookup(std::string_view child) const {
  auto it = children_.find(std::string(child));
  return it == children_.end() ? nullptr : it->second.get();
}

Result<Vnode*> Vnode::AddChild(std::string name, Inode inode) {
  if (!inode_.IsDir()) {
    return Error(Errno::kENOTDIR, name_);
  }
  if (children_.count(name) != 0) {
    return Error(Errno::kEEXIST, name);
  }
  auto node = std::make_unique<Vnode>(name, std::move(inode));
  node->parent_ = this;
  Vnode* raw = node.get();
  children_.emplace(std::move(name), std::move(node));
  return raw;
}

std::vector<std::string> Vnode::ListNames() const {
  std::vector<std::string> names;
  names.reserve(children_.size());
  for (const auto& [name, node] : children_) {
    names.push_back(name);
  }
  return names;
}

Vfs::Vfs(Clock* clock) : clock_(clock) {
  Inode root_inode;
  root_inode.ino = 1;
  root_inode.mode = kIfDir | 0755;
  root_.reset(new Vnode("", std::move(root_inode)));
}

std::string Vfs::Normalize(std::string_view path) {
  std::vector<std::string> stack;
  for (const std::string& part : Split(path, '/')) {
    if (part.empty() || part == ".") {
      continue;
    }
    if (part == "..") {
      if (!stack.empty()) {
        stack.pop_back();
      }
      continue;
    }
    stack.push_back(part);
  }
  if (stack.empty()) {
    return "/";
  }
  return "/" + Join(stack, "/");
}

Result<Vnode*> Vfs::ResolveInternal(std::string_view path, bool want_parent,
                                    std::string* leaf_out, bool follow_leaf) const {
  LayerScope vfs_scope(profiler_, Layer::kVfs);
  if (path.empty() || path[0] != '/') {
    return Error(Errno::kEINVAL, "path must be absolute: " + std::string(path));
  }
  std::string normalized = Normalize(path);
  std::vector<std::string> parts = Split(normalized.substr(1), '/');
  if (normalized == "/") {
    parts.clear();
  }
  if (want_parent) {
    if (parts.empty()) {
      return Error(Errno::kEINVAL, "cannot take parent of /");
    }
    *leaf_out = parts.back();
    parts.pop_back();
  }

  // Each symlink followed consumes one unit of budget; a cycle exhausts it
  // and surfaces as ELOOP, as in Linux's nested_symlinks limit.
  int links_left = kMaxSymlinkDepth;
  while (true) {
    Vnode* node = root_.get();
    while (node->covered_by_ != nullptr) {
      node = node->covered_by_->root.get();
    }
    bool restarted = false;
    for (size_t i = 0; i < parts.size(); ++i) {
      const std::string& part = parts[i];
      if (!node->inode().IsDir()) {
        return Error(Errno::kENOTDIR, normalized);
      }
      Vnode* child = node->Lookup(part);
      if (child == nullptr) {
        return Error(Errno::kENOENT, normalized);
      }
      while (child->covered_by_ != nullptr) {
        child = child->covered_by_->root.get();
      }
      bool is_leaf = i + 1 == parts.size();
      if (child->inode().IsSymlink() && (!is_leaf || follow_leaf)) {
        if (--links_left < 0) {
          return Error(Errno::kELOOP, normalized);
        }
        // Splice the target in front of the remaining components and walk
        // again from the root (relative targets resolve against `node`).
        const std::string& target = child->inode().data;
        std::string rebuilt = !target.empty() && target[0] == '/'
                                  ? target
                                  : PathOfLocked(node) + "/" + target;
        for (size_t j = i + 1; j < parts.size(); ++j) {
          rebuilt += "/" + parts[j];
        }
        normalized = Normalize(rebuilt);
        parts = Split(normalized.substr(1), '/');
        if (normalized == "/") {
          parts.clear();
        }
        restarted = true;
        break;
      }
      node = child;
    }
    if (!restarted) {
      return node;
    }
  }
}

Result<Vnode*> Vfs::Resolve(std::string_view path) const {
  resolves_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lk(tree_mu_);
  std::string unused;
  return ResolveInternal(path, /*want_parent=*/false, &unused);
}

Result<Vnode*> Vfs::ResolveNoFollow(std::string_view path) const {
  resolves_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lk(tree_mu_);
  std::string unused;
  return ResolveInternal(path, /*want_parent=*/false, &unused, /*follow_leaf=*/false);
}

Result<std::pair<Vnode*, std::string>> Vfs::ResolveParent(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lk(tree_mu_);
  std::string leaf;
  ASSIGN_OR_RETURN(Vnode * parent, ResolveInternal(path, /*want_parent=*/true, &leaf));
  return std::make_pair(parent, leaf);
}

std::string Vfs::PathOf(const Vnode* node) const {
  std::shared_lock<std::shared_mutex> lk(tree_mu_);
  return PathOfLocked(node);
}

std::string Vfs::PathOfLocked(const Vnode* node) const {
  std::vector<std::string> parts;
  const Vnode* cur = node;
  while (cur != nullptr) {
    if (cur->mount_root_of_ != nullptr) {
      // Mount roots splice in at their mountpoint path.
      std::string prefix = cur->mount_root_of_->mountpoint;
      std::reverse(parts.begin(), parts.end());
      if (parts.empty()) {
        return prefix;
      }
      if (prefix == "/") {
        prefix.clear();
      }
      return prefix + "/" + Join(parts, "/");
    }
    if (cur->parent_ == nullptr) {
      break;  // real root
    }
    parts.push_back(cur->name_);
    cur = cur->parent_;
  }
  std::reverse(parts.begin(), parts.end());
  return "/" + Join(parts, "/");
}

Result<Vnode*> Vfs::CreateNodeLocked(std::string_view path, Inode inode,
                                     PendingEvents* events) {
  // The single vnode-allocation choke point: every Create* routes through
  // here, so one fault site models inode/dentry cache exhaustion.
  if (faults_ != nullptr && faults_->any_enabled()) {
    RETURN_IF_ERROR(faults_->Check(FaultSite::kVfsVnodeAlloc, "vfs vnode allocation"));
  }
  std::string leaf;
  ASSIGN_OR_RETURN(Vnode * parent, ResolveInternal(path, /*want_parent=*/true, &leaf));
  // A regular file's initial contents are charged against the block quota;
  // the checks run before the vnode is linked in so a refused create leaves
  // no partial state, and the charge lands only after AddChild succeeds.
  bool charge = inode.IsReg() && inode.synthetic == nullptr;
  uint64_t size = charge ? inode.data.size() : 0;
  if (charge && size > 0) {
    if (faults_ != nullptr && faults_->any_enabled()) {
      RETURN_IF_ERROR(faults_->Check(FaultSite::kVfsBlockAlloc, "vfs block allocation"));
    }
    if (block_quota_ != 0 &&
        bytes_used_.load(std::memory_order_relaxed) + size > block_quota_) {
      return Error(Errno::kENOSPC, std::string(path));
    }
  }
  inode.ino = NextIno();
  inode.mtime = NowMtime();
  ASSIGN_OR_RETURN(Vnode * node, parent->AddChild(leaf, std::move(inode)));
  if (charge) {
    bytes_used_.fetch_add(size, std::memory_order_relaxed);
    node->inode().charged = true;
  }
  events->emplace_back(FsEvent::kCreated, PathOfLocked(node));
  return node;
}

Result<Vnode*> Vfs::CreateFile(std::string_view path, uint32_t perms, Uid uid, Gid gid,
                               std::string data) {
  Inode inode;
  inode.mode = kIfReg | (perms & kPermMask);
  inode.uid = uid;
  inode.gid = gid;
  inode.data = std::move(data);
  PendingEvents events;
  Result<Vnode*> node = [&] {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    return CreateNodeLocked(path, std::move(inode), &events);
  }();
  DispatchEvents(events);
  return node;
}

Result<Vnode*> Vfs::CreateDir(std::string_view path, uint32_t perms, Uid uid, Gid gid) {
  Inode inode;
  inode.mode = kIfDir | (perms & kPermMask);
  inode.uid = uid;
  inode.gid = gid;
  PendingEvents events;
  Result<Vnode*> node = [&] {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    return CreateNodeLocked(path, std::move(inode), &events);
  }();
  DispatchEvents(events);
  return node;
}

Result<Vnode*> Vfs::CreateSymlink(std::string_view path, std::string_view target, Uid uid,
                                  Gid gid) {
  if (target.empty()) {
    return Error(Errno::kEINVAL, "empty symlink target");
  }
  Inode inode;
  inode.mode = kIfLnk | 0777;
  inode.uid = uid;
  inode.gid = gid;
  inode.data = std::string(target);
  PendingEvents events;
  Result<Vnode*> node = [&] {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    return CreateNodeLocked(path, std::move(inode), &events);
  }();
  DispatchEvents(events);
  return node;
}

Result<Vnode*> Vfs::CreateDevice(std::string_view path, uint32_t perms, Uid uid, Gid gid,
                                 bool block, uint32_t major, uint32_t minor) {
  Inode inode;
  inode.mode = (block ? kIfBlk : kIfChr) | (perms & kPermMask);
  inode.uid = uid;
  inode.gid = gid;
  inode.rdev_major = major;
  inode.rdev_minor = minor;
  PendingEvents events;
  Result<Vnode*> node = [&] {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    return CreateNodeLocked(path, std::move(inode), &events);
  }();
  DispatchEvents(events);
  return node;
}

Result<Vnode*> Vfs::CreateSynthetic(std::string_view path, uint32_t perms, SyntheticOps ops) {
  std::string normalized = Normalize(path);
  Inode inode;
  inode.mode = kIfReg | (perms & kPermMask);
  inode.synthetic = std::make_shared<SyntheticOps>(std::move(ops));
  PendingEvents events;
  Result<Vnode*> node = [&]() -> Result<Vnode*> {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    size_t slash = normalized.find_last_of('/');
    if (slash > 0) {
      RETURN_IF_ERROR(EnsureDirsLocked(normalized.substr(0, slash)));
    }
    return CreateNodeLocked(normalized, std::move(inode), &events);
  }();
  DispatchEvents(events);
  return node;
}

Result<Vnode*> Vfs::EnsureDirs(std::string_view path) {
  std::unique_lock<std::shared_mutex> lk(tree_mu_);
  return EnsureDirsLocked(path);
}

Result<Vnode*> Vfs::EnsureDirsLocked(std::string_view path) {
  std::string normalized = Normalize(path);
  if (normalized == "/") {
    return root_.get();
  }
  Vnode* node = root_.get();
  while (node->covered_by_ != nullptr) {
    node = node->covered_by_->root.get();
  }
  for (const std::string& part : Split(normalized.substr(1), '/')) {
    Vnode* child = node->Lookup(part);
    if (child == nullptr) {
      Inode inode;
      inode.ino = NextIno();
      inode.mode = kIfDir | 0755;
      inode.mtime = NowMtime();
      ASSIGN_OR_RETURN(child, node->AddChild(part, std::move(inode)));
    }
    while (child->covered_by_ != nullptr) {
      child = child->covered_by_->root.get();
    }
    if (!child->inode().IsDir()) {
      return Error(Errno::kENOTDIR, normalized);
    }
    node = child;
  }
  return node;
}

Result<Unit> Vfs::Unlink(std::string_view path) {
  PendingEvents events;
  Result<Unit> result = [&]() -> Result<Unit> {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    std::string leaf;
    ASSIGN_OR_RETURN(Vnode * parent, ResolveInternal(path, /*want_parent=*/true, &leaf));
    Vnode* child = parent->Lookup(leaf);
    if (child == nullptr) {
      return Error(Errno::kENOENT, std::string(path));
    }
    if (child->covered_by_ != nullptr) {
      return Error(Errno::kEBUSY, std::string(path));
    }
    if (child->inode().IsDir() && child->HasChildren()) {
      return Error(Errno::kENOTEMPTY, std::string(path));
    }
    std::string full = PathOfLocked(child);
    auto child_it = parent->children_.find(leaf);
    orphans_.push_back(std::move(child_it->second));
    parent->children_.erase(child_it);
    events.emplace_back(FsEvent::kDeleted, std::move(full));
    return OkUnit();
  }();
  DispatchEvents(events);
  return result;
}

Result<Unit> Vfs::Rename(std::string_view from, std::string_view to) {
  PendingEvents events;
  Result<Unit> result = [&]() -> Result<Unit> {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    std::string from_leaf;
    ASSIGN_OR_RETURN(Vnode * from_parent,
                     ResolveInternal(from, /*want_parent=*/true, &from_leaf));
    Vnode* source = from_parent->Lookup(from_leaf);
    if (source == nullptr) {
      return Error(Errno::kENOENT, std::string(from));
    }
    if (source->covered_by_ != nullptr || source->mount_root_of_ != nullptr) {
      return Error(Errno::kEBUSY, std::string(from));
    }
    std::string to_leaf;
    ASSIGN_OR_RETURN(Vnode * to_parent, ResolveInternal(to, /*want_parent=*/true, &to_leaf));
    if (!to_parent->inode().IsDir()) {
      return Error(Errno::kENOTDIR, std::string(to));
    }
    Vnode* existing = to_parent->Lookup(to_leaf);
    if (existing != nullptr) {
      if (existing->inode().IsDir() && existing->HasChildren()) {
        return Error(Errno::kENOTEMPTY, std::string(to));
      }
      auto existing_it = to_parent->children_.find(to_leaf);
      orphans_.push_back(std::move(existing_it->second));
      to_parent->children_.erase(existing_it);
    }
    std::string old_path = PathOfLocked(source);
    auto it = from_parent->children_.find(from_leaf);
    std::unique_ptr<Vnode> moved = std::move(it->second);
    from_parent->children_.erase(it);
    moved->name_ = to_leaf;
    moved->parent_ = to_parent;
    Vnode* raw = moved.get();
    to_parent->children_.emplace(to_leaf, std::move(moved));
    events.emplace_back(FsEvent::kDeleted, std::move(old_path));
    events.emplace_back(FsEvent::kCreated, PathOfLocked(raw));
    return OkUnit();
  }();
  DispatchEvents(events);
  return result;
}

Result<std::string> Vfs::ReadNode(const Vnode* node) const {
  const Inode& inode = node->inode();
  if (inode.IsDir()) {
    return Error(Errno::kEISDIR, PathOf(node));
  }
  // The synthetic pointer and the file-type bits are immutable after
  // creation, so both checks above are lock-free; generators run with NO
  // VFS lock held (they call back into the kernel and the LSM).
  if (inode.synthetic != nullptr) {
    if (!inode.synthetic->read) {
      return Error(Errno::kEINVAL, "synthetic file is write-only");
    }
    return inode.synthetic->read();
  }
  std::shared_lock<std::shared_mutex> lk(DataStripe(inode.ino));
  return inode.data;
}

Result<Unit> Vfs::WriteNode(Vnode* node, std::string_view data, bool append) {
  Inode& inode = node->inode();
  if (inode.IsDir()) {
    return Error(Errno::kEISDIR, PathOf(node));
  }
  // Taken before the data stripe (lock order: tree_mu_ then stripe; here
  // they are simply never held together). The path is used for error
  // diagnostics and the kModified event.
  std::string path = PathOf(node);
  if (inode.synthetic != nullptr) {
    if (!inode.synthetic->write) {
      return Error(Errno::kEACCES, "synthetic file is read-only");
    }
    // The write handler may re-enter the VFS (policy reloads resolve and
    // read config files), so it runs with no lock held.
    RETURN_IF_ERROR(inode.synthetic->write(data));
    std::unique_lock<std::shared_mutex> lk(DataStripe(inode.ino));
    inode.mtime = NowMtime();
  } else {
    std::unique_lock<std::shared_mutex> lk(DataStripe(inode.ino));
    // Block accounting: charge growth (fault site + quota check BEFORE the
    // data mutates — a refused write leaves the file byte-identical),
    // release shrinkage. Files populated outside CreateNode are charged in
    // full on their first write here. The quota check is check-then-add
    // across stripes, so concurrent growers may overshoot the quota by one
    // write each — the same slop a real filesystem's per-CPU free-block
    // estimates exhibit.
    uint64_t old_charged = inode.charged ? inode.data.size() : 0;
    uint64_t new_size = append ? inode.data.size() + data.size() : data.size();
    if (inode.IsReg() && new_size > old_charged) {
      if (faults_ != nullptr && faults_->any_enabled()) {
        RETURN_IF_ERROR(faults_->Check(FaultSite::kVfsBlockAlloc, "vfs block allocation"));
      }
      if (block_quota_ != 0 && bytes_used_.load(std::memory_order_relaxed) - old_charged +
                                       new_size >
                                   block_quota_) {
        return Error(Errno::kENOSPC, path);
      }
    }
    if (inode.IsReg()) {
      // Unsigned wraparound makes this one fetch_add correct for both
      // growth and shrinkage.
      bytes_used_.fetch_add(new_size - old_charged, std::memory_order_relaxed);
      inode.charged = true;
    }
    if (append) {
      inode.data.append(data);
    } else {
      inode.data.assign(data);
    }
    inode.mtime = NowMtime();
  }
  PendingEvents events;
  events.emplace_back(FsEvent::kModified, std::move(path));
  DispatchEvents(events);
  return OkUnit();
}

Result<std::vector<std::string>> Vfs::ListDir(const Vnode* node) const {
  std::shared_lock<std::shared_mutex> lk(tree_mu_);
  if (!node->inode().IsDir()) {
    return Error(Errno::kENOTDIR, PathOfLocked(node));
  }
  return node->ListNames();
}

Inode Vfs::SnapshotInode(const Vnode* node) const {
  std::shared_lock<std::shared_mutex> tree_lk(tree_mu_);
  std::shared_lock<std::shared_mutex> data_lk(DataStripe(node->inode().ino));
  return node->inode();
}

void Vfs::SetInodeMode(Vnode* node, uint32_t perms) {
  std::unique_lock<std::shared_mutex> lk(tree_mu_);
  node->inode().mode = (node->inode().mode & kIfMask) | (perms & kPermMask);
}

void Vfs::SetInodeOwner(Vnode* node, Uid uid, Gid gid, bool clear_sbits) {
  std::unique_lock<std::shared_mutex> lk(tree_mu_);
  Inode& inode = node->inode();
  inode.uid = uid;
  inode.gid = gid;
  if (clear_sbits) {
    inode.mode &= ~(kSetUidBit | kSetGidBit);
  }
}

Result<std::string> Vfs::ReadFile(std::string_view path) const {
  ASSIGN_OR_RETURN(Vnode * node, Resolve(path));
  return ReadNode(node);
}

Result<Unit> Vfs::WriteFile(std::string_view path, std::string_view data) {
  ASSIGN_OR_RETURN(Vnode * node, Resolve(path));
  return WriteNode(node, data, /*append=*/false);
}

Result<Unit> Vfs::AddMount(std::string_view mountpoint, std::string source, std::string fstype,
                           std::vector<std::string> options, Uid mounter,
                           const MountPopulator& populate) {
  std::string trace_detail;
  {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    // Stacked mounts are rejected to keep the simulation's umount unambiguous
    // (Resolve descends through covers, so also check the mount table).
    if (FindMountLocked(mountpoint) != nullptr) {
      return Error(Errno::kEBUSY, std::string(mountpoint));
    }
    std::string unused;
    ASSIGN_OR_RETURN(Vnode * target,
                     ResolveInternal(mountpoint, /*want_parent=*/false, &unused));
    if (!target->inode().IsDir()) {
      return Error(Errno::kENOTDIR, std::string(mountpoint));
    }
    if (target->covered_by_ != nullptr) {
      return Error(Errno::kEBUSY, std::string(mountpoint));
    }

    auto entry = std::make_unique<MountEntry>();
    entry->source = std::move(source);
    entry->mountpoint = Normalize(mountpoint);
    entry->fstype = std::move(fstype);
    entry->options = std::move(options);
    entry->mounter = mounter;
    entry->covered = target;

    Inode root_inode;
    root_inode.ino = NextIno();
    root_inode.mode = kIfDir | 0755;
    entry->root.reset(new Vnode("", std::move(root_inode)));
    entry->root->mount_root_of_ = entry.get();
    if (populate) {
      // Populators fill the detached new tree via Vnode::AddChild directly;
      // they do not re-enter the Vfs API.
      populate(entry->root.get());
    }

    target->covered_by_ = entry.get();
    trace_detail = StrFormat("%s on %s type %s", entry->source.c_str(),
                             entry->mountpoint.c_str(), entry->fstype.c_str());
    mounts_.push_back(std::move(entry));
  }
  if (tracer_ != nullptr && tracer_->ShouldEmit(TracepointId::kVfsMount)) {
    TraceEvent& ev = tracer_->Emit(TracepointId::kVfsMount, 0);
    ev.sname = "mount";
    ev.detail = trace_detail;
  }
  return OkUnit();
}

Result<Unit> Vfs::RemoveMount(std::string_view mountpoint) {
  std::string normalized = Normalize(mountpoint);
  bool removed = false;
  {
    std::unique_lock<std::shared_mutex> lk(tree_mu_);
    for (auto it = mounts_.begin(); it != mounts_.end(); ++it) {
      if ((*it)->mountpoint == normalized) {
        (*it)->covered->covered_by_ = nullptr;
        // The mount's tree is destroyed with its entry; release its charges.
        UnchargeTree((*it)->root.get());
        mounts_.erase(it);
        removed = true;
        break;
      }
    }
  }
  if (!removed) {
    return Error(Errno::kEINVAL, "not mounted: " + normalized);
  }
  if (tracer_ != nullptr && tracer_->ShouldEmit(TracepointId::kVfsMount)) {
    TraceEvent& ev = tracer_->Emit(TracepointId::kVfsMount, 0);
    ev.sname = "umount";
    ev.detail = normalized;
  }
  return OkUnit();
}

const MountEntry* Vfs::FindMount(std::string_view mountpoint) const {
  std::shared_lock<std::shared_mutex> lk(tree_mu_);
  return FindMountLocked(mountpoint);
}

const MountEntry* Vfs::FindMountLocked(std::string_view mountpoint) const {
  std::string normalized = Normalize(mountpoint);
  for (const auto& entry : mounts_) {
    if (entry->mountpoint == normalized) {
      return entry.get();
    }
  }
  return nullptr;
}

size_t Vfs::orphan_count() const {
  std::shared_lock<std::shared_mutex> lk(tree_mu_);
  return orphans_.size();
}

int Vfs::AddWatch(std::string path, WatchCallback cb) {
  int id = next_watch_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(watch_mu_);
  watches_.push_back(Watch{id, Normalize(path), std::move(cb)});
  return id;
}

void Vfs::RemoveWatch(int watch_id) {
  std::lock_guard<std::mutex> lk(watch_mu_);
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(),
                                [&](const Watch& w) { return w.id == watch_id; }),
                 watches_.end());
}

void Vfs::UnchargeTree(Vnode* node) {
  if (node == nullptr) {
    return;
  }
  Inode& inode = node->inode();
  if (inode.charged) {
    bytes_used_.fetch_sub(inode.data.size(), std::memory_order_relaxed);
    inode.charged = false;
  }
  for (auto& [name, child] : node->children_) {
    UnchargeTree(child.get());
  }
}

namespace {

// Sums charged data bytes under `node`, descending into covering mounts'
// trees is NOT needed here — mount trees are walked from their MountEntry.
uint64_t ChargedBytesUnder(const Vnode* node) {
  uint64_t total = 0;
  if (node->inode().charged) {
    total += node->inode().data.size();
  }
  for (const std::string& name : node->ListNames()) {
    total += ChargedBytesUnder(node->Lookup(name));
  }
  return total;
}

}  // namespace

Result<Unit> Vfs::AuditBlockAccounting() const {
  // Takes the tree lock only: the walk reads file data sizes, so callers
  // (the fault-sweep harness, tests) run it with data writers quiescent.
  std::shared_lock<std::shared_mutex> lk(tree_mu_);
  uint64_t recomputed = ChargedBytesUnder(root_.get());
  for (const auto& mount : mounts_) {
    recomputed += ChargedBytesUnder(mount->root.get());
  }
  for (const auto& orphan : orphans_) {
    recomputed += ChargedBytesUnder(orphan.get());
  }
  uint64_t counter = bytes_used_.load(std::memory_order_relaxed);
  if (recomputed != counter) {
    return Error(Errno::kEIO,
                 StrFormat("block accounting divergence: counter=%llu recomputed=%llu",
                           (unsigned long long)counter, (unsigned long long)recomputed));
  }
  return OkUnit();
}

void Vfs::DispatchEvents(PendingEvents& events) const {
  if (events.empty()) {
    return;
  }
  for (auto& [event, path] : events) {
    // Copy the matching watches under the watch lock, then invoke with no
    // lock held: a callback may add/remove watches or re-enter the VFS.
    std::vector<Watch> active;
    {
      std::lock_guard<std::mutex> lk(watch_mu_);
      active = watches_;
    }
    for (const Watch& watch : active) {
      bool match = path == watch.path ||
                   (StartsWith(path, watch.path) && path.size() > watch.path.size() &&
                    (watch.path == "/" || path[watch.path.size()] == '/'));
      if (match) {
        watch.callback(event, path);
      }
    }
  }
}

}  // namespace protego
