// In-memory inode for the simulated filesystem.

#ifndef SRC_VFS_INODE_H_
#define SRC_VFS_INODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/vfs/types.h"

namespace protego {

// Callbacks backing a synthetic (procfs/sysfs-style) file. Reads are
// generated on demand; writes are interpreted by the owning subsystem
// (e.g. the Protego LSM's /proc/protego/mounts policy file).
struct SyntheticOps {
  std::function<std::string()> read;
  std::function<Result<Unit>(std::string_view)> write;
};

// A file's metadata and (for regular files) contents. Owned by a Vnode.
//
// mode/uid/gid are lock-free atomics: chmod/chown store new values under
// the VFS tree lock while permission checks on other task threads read
// them without any lock — exactly the access-check-vs-chmod TOCTTOU window
// the race corpus exercises. The atomics keep that window a *semantic*
// race (old-or-new value, as on Linux) rather than a data race. All other
// fields are guarded by the VFS locks. std::atomic's operator=()/&=()/
// implicit load keep existing call sites (`inode.mode & kIfMask`,
// `mode &= ~kSetUidBit`) source-compatible.
struct Inode {
  uint64_t ino = 0;
  std::atomic<uint32_t> mode{0};  // type bits | permission bits (incl. setuid 04000)
  std::atomic<Uid> uid{kRootUid};
  std::atomic<Gid> gid{kRootGid};
  uint32_t nlink = 1;
  uint64_t mtime = 0;
  std::string data;  // regular-file contents; symlink target for kIfLnk

  // Device node identity (kIfChr/kIfBlk only).
  uint32_t rdev_major = 0;
  uint32_t rdev_minor = 0;

  // Non-null for synthetic files; reads/writes bypass `data`.
  std::shared_ptr<SyntheticOps> synthetic;

  // True when this inode's `data` bytes are charged against the VFS block
  // quota (regular non-synthetic files created through Vfs::CreateNode or
  // written through Vfs::WriteNode). Bootstrap populators that bypass
  // CreateNode leave it false; the first quota-aware write charges in full.
  bool charged = false;

  // Atomic members delete the implicit copy operations; Stat/snapshot
  // paths still copy inodes by value, so restore them field-wise.
  Inode() = default;
  Inode(const Inode& other) { *this = other; }
  Inode& operator=(const Inode& other) {
    if (this == &other) {
      return *this;
    }
    ino = other.ino;
    mode.store(other.mode.load(std::memory_order_relaxed), std::memory_order_relaxed);
    uid.store(other.uid.load(std::memory_order_relaxed), std::memory_order_relaxed);
    gid.store(other.gid.load(std::memory_order_relaxed), std::memory_order_relaxed);
    nlink = other.nlink;
    mtime = other.mtime;
    data = other.data;
    rdev_major = other.rdev_major;
    rdev_minor = other.rdev_minor;
    synthetic = other.synthetic;
    charged = other.charged;
    return *this;
  }

  uint32_t ModeRelaxed() const { return mode.load(std::memory_order_relaxed); }
  bool IsDir() const { return IsDirMode(ModeRelaxed()); }
  bool IsReg() const { return IsRegMode(ModeRelaxed()); }
  bool IsSymlink() const { return IsLnkMode(ModeRelaxed()); }
  bool IsDevice() const { return IsDeviceMode(ModeRelaxed()); }
  bool IsSetUid() const { return (ModeRelaxed() & kSetUidBit) != 0; }
  bool IsSetGid() const { return (ModeRelaxed() & kSetGidBit) != 0; }
  uint32_t Perms() const { return ModeRelaxed() & kPermMask; }
};

// Pure DAC permission check against one identity. `in_group` must report
// whether the caller's gid or supplementary groups include a gid.
// CAP_DAC_OVERRIDE-style bypass is layered above this by the kernel.
bool DacPermits(const Inode& inode, Uid uid, const std::function<bool(Gid)>& in_group, int may);

}  // namespace protego

#endif  // SRC_VFS_INODE_H_
