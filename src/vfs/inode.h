// In-memory inode for the simulated filesystem.

#ifndef SRC_VFS_INODE_H_
#define SRC_VFS_INODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/vfs/types.h"

namespace protego {

// Callbacks backing a synthetic (procfs/sysfs-style) file. Reads are
// generated on demand; writes are interpreted by the owning subsystem
// (e.g. the Protego LSM's /proc/protego/mounts policy file).
struct SyntheticOps {
  std::function<std::string()> read;
  std::function<Result<Unit>(std::string_view)> write;
};

// A file's metadata and (for regular files) contents. Owned by a Vnode.
struct Inode {
  uint64_t ino = 0;
  uint32_t mode = 0;  // type bits | permission bits (incl. setuid 04000)
  Uid uid = kRootUid;
  Gid gid = kRootGid;
  uint32_t nlink = 1;
  uint64_t mtime = 0;
  std::string data;  // regular-file contents; symlink target for kIfLnk

  // Device node identity (kIfChr/kIfBlk only).
  uint32_t rdev_major = 0;
  uint32_t rdev_minor = 0;

  // Non-null for synthetic files; reads/writes bypass `data`.
  std::shared_ptr<SyntheticOps> synthetic;

  // True when this inode's `data` bytes are charged against the VFS block
  // quota (regular non-synthetic files created through Vfs::CreateNode or
  // written through Vfs::WriteNode). Bootstrap populators that bypass
  // CreateNode leave it false; the first quota-aware write charges in full.
  bool charged = false;

  bool IsDir() const { return IsDirMode(mode); }
  bool IsReg() const { return IsRegMode(mode); }
  bool IsSymlink() const { return IsLnkMode(mode); }
  bool IsDevice() const { return IsDeviceMode(mode); }
  bool IsSetUid() const { return (mode & kSetUidBit) != 0; }
  bool IsSetGid() const { return (mode & kSetGidBit) != 0; }
  uint32_t Perms() const { return mode & kPermMask; }
};

// Pure DAC permission check against one identity. `in_group` must report
// whether the caller's gid or supplementary groups include a gid.
// CAP_DAC_OVERRIDE-style bypass is layered above this by the kernel.
bool DacPermits(const Inode& inode, Uid uid, const std::function<bool(Gid)>& in_group, int may);

}  // namespace protego

#endif  // SRC_VFS_INODE_H_
