// Shared measurement harness for the Table 5 reproduction and ablations.
//
// Methodology: each row measures the SAME operation on two freshly booted
// systems whose only difference is the LSM stack ("Linux + AppArmor" vs
// "+ Protego"), reporting mean ns/op and relative overhead. Iteration
// counts auto-scale until a row accumulates a minimum wall-clock budget,
// then the run is repeated to report a spread (the paper's +/- column).

#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/system.h"

namespace protego {

struct Measurement {
  double mean_ns = 0;
  double best_ns = 0;    // fastest repeat — the stable cross-boot comparator
  double spread_ns = 0;  // half-width of min..max across repeats
  uint64_t iterations = 0;
};

// Times `op` (already bound to its system/state). `op` should perform ONE
// operation per call.
inline Measurement MeasureNs(const std::function<void()>& op, int repeats = 5,
                             double min_batch_ms = 10.0) {
  using Clock = std::chrono::steady_clock;
  // Warm-up + batch sizing.
  uint64_t batch = 1;
  for (;;) {
    auto start = Clock::now();
    for (uint64_t i = 0; i < batch; ++i) {
      op();
    }
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (ms >= min_batch_ms || batch >= (1u << 22)) {
      break;
    }
    batch *= 4;
  }
  double best = 1e300;
  double worst = 0;
  double total = 0;
  for (int r = 0; r < repeats; ++r) {
    auto start = Clock::now();
    for (uint64_t i = 0; i < batch; ++i) {
      op();
    }
    double ns = std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
                static_cast<double>(batch);
    best = std::min(best, ns);
    worst = std::max(worst, ns);
    total += ns;
  }
  Measurement m;
  m.mean_ns = total / repeats;
  m.best_ns = best;
  m.spread_ns = (worst - best) / 2.0;
  m.iterations = batch * static_cast<uint64_t>(repeats);
  return m;
}

// One comparison row: the op factory receives the system and its session
// task and returns the operation closure.
using OpFactory = std::function<std::function<void()>(SimSystem&, Task&)>;

struct ComparisonRow {
  std::string name;
  Measurement linux_m;
  Measurement protego_m;

  double OverheadPct() const {
    if (linux_m.mean_ns <= 0) {
      return 0;
    }
    return 100.0 * (protego_m.mean_ns - linux_m.mean_ns) / linux_m.mean_ns;
  }
};

inline ComparisonRow CompareModes(const std::string& name, const OpFactory& factory,
                                  const std::string& session_user = "root") {
  ComparisonRow row;
  row.name = name;
  {
    SimSystem sys(SimMode::kLinux);
    Task& session = sys.Login(session_user);
    auto op = factory(sys, session);
    row.linux_m = MeasureNs(op);
  }
  {
    SimSystem sys(SimMode::kProtego);
    Task& session = sys.Login(session_user);
    auto op = factory(sys, session);
    row.protego_m = MeasureNs(op);
  }
  return row;
}

inline void PrintComparisonHeader(const char* unit) {
  std::printf("%-18s %12s %8s %12s %8s %8s\n", "Test", (std::string("Linux ") + unit).c_str(),
              "+/-", (std::string("Protego ") + unit).c_str(), "+/-", "% OH");
  std::printf("%s\n", std::string(72, '-').c_str());
}

inline void PrintComparisonRow(const ComparisonRow& row, double scale = 1e-3) {
  // scale 1e-3: ns -> us, matching lmbench's microsecond reporting.
  std::printf("%-18s %12.3f %8.3f %12.3f %8.3f %7.2f%%\n", row.name.c_str(),
              row.linux_m.mean_ns * scale, row.linux_m.spread_ns * scale,
              row.protego_m.mean_ns * scale, row.protego_m.spread_ns * scale,
              row.OverheadPct());
}

}  // namespace protego

#endif  // BENCH_HARNESS_H_
