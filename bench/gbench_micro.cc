// google-benchmark registration of the key syscall paths, for profiling-
// grade statistics (the paper-style comparison table lives in
// table5_lmbench). Run with --benchmark_filter=... as usual.

#include <benchmark/benchmark.h>

#include "src/net/ioctl_codes.h"
#include "src/sim/system.h"

namespace protego {
namespace {

SimMode ModeOf(const benchmark::State& state) {
  return state.range(0) == 0 ? SimMode::kLinux : SimMode::kProtego;
}

void SetModeLabel(benchmark::State& state) {
  state.SetLabel(state.range(0) == 0 ? "linux" : "protego");
}

void BM_Stat(benchmark::State& state) {
  SimSystem sys(ModeOf(state));
  Task& task = sys.Login("alice");
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.kernel().Stat(task, "/etc/hosts"));
  }
}
BENCHMARK(BM_Stat)->Arg(0)->Arg(1);

void BM_OpenClose(benchmark::State& state) {
  SimSystem sys(ModeOf(state));
  Task& task = sys.Login("alice");
  SetModeLabel(state);
  for (auto _ : state) {
    auto fd = sys.kernel().Open(task, "/etc/hosts", kORdOnly);
    (void)sys.kernel().Close(task, fd.value());
  }
}
BENCHMARK(BM_OpenClose)->Arg(0)->Arg(1);

void BM_MountUmount(benchmark::State& state) {
  SimSystem sys(ModeOf(state));
  Task& task = sys.Login("root");
  SetModeLabel(state);
  for (auto _ : state) {
    (void)sys.kernel().Mount(task, "/dev/cdrom", "/media/cdrom", "iso9660", {"ro"});
    (void)sys.kernel().Umount(task, "/media/cdrom");
  }
}
BENCHMARK(BM_MountUmount)->Arg(0)->Arg(1);

void BM_Setuid(benchmark::State& state) {
  SimSystem sys(ModeOf(state));
  Task& task = sys.Login("root");
  SetModeLabel(state);
  for (auto _ : state) {
    (void)sys.kernel().Setuid(task, kRootUid);
  }
}
BENCHMARK(BM_Setuid)->Arg(0)->Arg(1);

void BM_Bind(benchmark::State& state) {
  SimSystem sys(ModeOf(state));
  Task& task = sys.Login("root");
  SetModeLabel(state);
  for (auto _ : state) {
    auto fd = sys.kernel().SocketCall(task, kAfInet, kSockStream, 0);
    (void)sys.kernel().BindCall(task, fd.value(), 8080);
    (void)sys.kernel().Close(task, fd.value());
  }
}
BENCHMARK(BM_Bind)->Arg(0)->Arg(1);

void BM_Ioctl(benchmark::State& state) {
  SimSystem sys(ModeOf(state));
  Task& task = sys.Login("root");
  int fd = sys.kernel().Open(task, "/dev/ppp", kORdWr).value();
  (void)sys.kernel().Ioctl(task, fd, kPppIocNewUnit, "");
  SetModeLabel(state);
  for (auto _ : state) {
    (void)sys.kernel().Ioctl(task, fd, kPppIocSFlags, "0 novj");
  }
}
BENCHMARK(BM_Ioctl)->Arg(0)->Arg(1);

void BM_SpawnId(benchmark::State& state) {
  SimSystem sys(ModeOf(state));
  Task& task = sys.Login("alice");
  SetModeLabel(state);
  for (auto _ : state) {
    task.stdout_buf.clear();
    task.terminal->ClearOutput();
    (void)sys.kernel().Spawn(task, "/usr/bin/id", {"id"}, {});
  }
}
BENCHMARK(BM_SpawnId)->Arg(0)->Arg(1);

// Null syscall (getpid) through the gate: Arg encodes the gate config —
// 0 = gate disabled (no-gate baseline), 1 = gate on with tracing off,
// 2 = gate on with tracing on. Measures pure entry-path overhead.
void BM_GetPidGate(benchmark::State& state) {
  SimSystem sys(SimMode::kProtego);
  Task& task = sys.Login("alice");
  SyscallGate& gate = sys.syscalls();
  switch (state.range(0)) {
    case 0:
      gate.set_enabled(false);
      state.SetLabel("no-gate");
      break;
    case 1:
      gate.set_trace_enabled(false);
      state.SetLabel("gate+stats");
      break;
    default:
      gate.set_trace_enabled(true);
      state.SetLabel("gate+stats+trace");
      break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.kernel().GetPid(task));
  }
}
BENCHMARK(BM_GetPidGate)->Arg(0)->Arg(1)->Arg(2);

void BM_UdpLoopback(benchmark::State& state) {
  SimSystem sys(ModeOf(state));
  Task& task = sys.Login("alice");
  Kernel& k = sys.kernel();
  int server = k.SocketCall(task, kAfInet, kSockDgram, 0).value();
  (void)k.BindCall(task, server, 7001);
  int client = k.SocketCall(task, kAfInet, kSockDgram, 0).value();
  SetModeLabel(state);
  for (auto _ : state) {
    Packet p;
    p.l4_proto = kProtoUdp;
    p.dst_ip = kLocalhostIp;
    p.dst_port = 7001;
    (void)k.SendCall(task, client, p);
    (void)k.RecvCall(task, server);
  }
}
BENCHMARK(BM_UdpLoopback)->Arg(0)->Arg(1);

}  // namespace
}  // namespace protego

BENCHMARK_MAIN();
