// Table 3: setuid-package installation statistics — exact recomputation of
// the weighted averages from the survey data, plus an end-to-end synthetic
// re-survey over a sampled population.

#include <cstdio>

#include "src/study/popularity.h"

namespace protego {
namespace {

void Run() {
  std::printf("=== Table 3 reproduction: setuid package popularity ===\n");
  std::printf("(surveys: %llu Ubuntu + %llu Debian systems)\n\n",
              static_cast<unsigned long long>(kUbuntuSystems),
              static_cast<unsigned long long>(kDebianSystems));

  std::printf("%-20s %10s %10s %10s | %10s %10s %10s\n", "Package", "Ubuntu%", "Debian%",
              "Wt.Avg%", "synUbu%", "synDeb%", "synAvg%");
  std::printf("%s\n", std::string(92, '-').c_str());

  // Synthetic population: 1% sample of each survey, same ratios.
  const uint64_t n_ubuntu = kUbuntuSystems / 100;
  const uint64_t n_debian = kDebianSystems / 100;
  SyntheticSurveyResult synth = RunSyntheticSurvey(n_ubuntu, n_debian, /*seed=*/20140413);

  const auto& table = PopularityTable();
  for (size_t i = 0; i < table.size(); ++i) {
    const PopularityRow& row = table[i];
    const PopularityRow& srow = synth.rows[i];
    double synth_avg = (srow.ubuntu_pct * static_cast<double>(kUbuntuSystems) +
                        srow.debian_pct * static_cast<double>(kDebianSystems)) /
                       static_cast<double>(kUbuntuSystems + kDebianSystems);
    std::printf("%-20s %10.2f %10.2f %10.2f | %10.2f %10.2f %10.2f%s\n", row.package.c_str(),
                row.ubuntu_pct, row.debian_pct, WeightedAverage(row), srow.ubuntu_pct,
                srow.debian_pct, synth_avg, row.investigated ? "" : "  (uninvestigated)");
  }
  std::printf("%s\n", std::string(92, '-').c_str());
  std::printf("Synthetic population sampled: %llu systems\n",
              static_cast<unsigned long long>(synth.systems_sampled));
  std::printf("Study coverage (systems fully covered by the 28-binary study): %.1f%% "
              "(paper: 89.5%%)\n",
              StudyCoveragePercent());
}

}  // namespace
}  // namespace protego

int main() {
  protego::Run();
  return 0;
}
