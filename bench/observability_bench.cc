// Tracing overhead through the kernel-wide tracepoint subsystem, emitted as
// BENCH_observability.json.
//
// Configurations measured (gate always on, stats always counted):
//   tracing-off   tracer master switch off — the enable-bit fast path;
//                 target: within noise of the stats config of
//                 BENCH_syscall_gate.json (~0% overhead)
//   syscall-only  only the syscall tracepoint enabled (boot-style strace view)
//   all-on        every tracepoint enabled (LSM hooks, decisions, capable,
//                 VFS, netfilter, cred changes); target: <10% overhead
//
// Workloads: getpid(2) (null syscall: one span + one event), stat(2) (path
// resolution + inode_permission hooks), and a policy-denied mount(2) (the
// hook-heaviest path: module verdicts + decision + capable events).
//
// The output also embeds the metrics registry's JSON export, exercising the
// machine-readable side of /proc/protego/metrics.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/sim/system.h"

namespace protego {
namespace {

struct TraceConfig {
  const char* name;
  bool master;
  bool all_points;  // false = syscall tracepoint only
};

constexpr TraceConfig kConfigs[] = {
    {"tracing-off", false, false},
    {"syscall-only", true, false},
    {"all-on", true, true},
};

void Apply(Tracer& tracer, const TraceConfig& cfg) {
  tracer.set_enabled(cfg.master);
  for (size_t i = 0; i < kTracepointCount; ++i) {
    TracepointId tp = static_cast<TracepointId>(i);
    tracer.set_point_enabled(tp, cfg.all_points || tp == TracepointId::kSyscall);
  }
}

template <typename Fn>
double NsPerOp(Fn&& fn, int iters, int reps) {
  for (int i = 0; i < iters / 4; ++i) {  // warmup: touch caches, grow buffers
    fn();
  }
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    uint64_t t0 = MonotonicNanos();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    uint64_t t1 = MonotonicNanos();
    best = std::min(best, static_cast<double>(t1 - t0) / iters);
  }
  return best;
}

struct Row {
  std::string workload;
  std::string config;
  double ns_per_op = 0;
  double overhead_pct = 0;  // vs the tracing-off row of the same workload
};

}  // namespace
}  // namespace protego

int main(int argc, char** argv) {
  using namespace protego;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_observability.json";
  constexpr int kIters = 200000;
  constexpr int kReps = 9;

  SimSystem sys(SimMode::kProtego);
  Task& task = sys.Login("alice");
  Kernel& k = sys.kernel();
  Tracer& tracer = k.tracer();

  struct Workload {
    const char* name;
    int iters;
    std::function<void()> op;
  };
  volatile int sink = 0;
  std::vector<Workload> workloads;
  workloads.push_back({"getpid", kIters, [&] { sink = k.GetPid(task); }});
  workloads.push_back({"stat", kIters / 10, [&] { (void)k.Stat(task, "/etc/hosts"); }});
  workloads.push_back(
      {"mount-denied", kIters / 10,
       [&] { (void)k.Mount(task, "/dev/sda1", "/mnt", "ext4", {}); }});

  std::vector<Row> rows;
  for (const Workload& w : workloads) {
    double baseline = 0;
    for (const TraceConfig& cfg : kConfigs) {
      Apply(tracer, cfg);
      double ns = NsPerOp(w.op, w.iters, kReps);
      if (!cfg.master) {
        baseline = ns;
      }
      Row row;
      row.workload = w.name;
      row.config = cfg.name;
      row.ns_per_op = ns;
      row.overhead_pct = baseline > 0 ? (ns - baseline) / baseline * 100.0 : 0;
      rows.push_back(row);
      std::printf("%-12s %-13s %8.2f ns/op  %+7.1f%%\n", w.name, cfg.name, ns,
                  row.overhead_pct);
    }
  }
  (void)sink;
  Apply(tracer, kConfigs[2]);  // restore boot defaults (everything on)

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"observability\",\n  \"unit\": \"ns/op\",\n");
  std::fprintf(f, "  \"reps\": %d,\n  \"rows\": [\n", kReps);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"config\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"overhead_pct\": %.1f}%s\n",
                 rows[i].workload.c_str(), rows[i].config.c_str(), rows[i].ns_per_op,
                 rows[i].overhead_pct, i + 1 < rows.size() ? "," : "");
  }
  // The machine-readable metrics snapshot after the run (per-syscall and
  // per-hook latency histograms included).
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", k.metrics().Json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
